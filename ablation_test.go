package eul3d

import (
	"math/rand"
	"testing"

	"eul3d/internal/euler"
	"eul3d/internal/graph"
	"eul3d/internal/meshgen"
	"eul3d/internal/parti"
	"eul3d/internal/partition"
	"eul3d/internal/reorder"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: node
// renumbering (Section 4.2), partitioner choice (Section 4.1), and
// incremental communication schedules (Section 4.3). Each benchmark
// measures the real effect in this Go implementation, complementing the
// machine-model numbers in the tables.

// benchResidual measures the full residual evaluation on the given mesh.
func benchResidual(b *testing.B, build func(b *testing.B) *euler.Disc) {
	d := build(b)
	w := make([]euler.State, d.M.NV())
	d.InitUniform(w)
	// Perturb so the pressure switch does real work.
	rng := rand.New(rand.NewSource(1))
	for i := range w {
		w[i][0] *= 1 + 0.01*rng.Float64()
	}
	res := make([]euler.State, d.M.NV())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Residual(w, res)
	}
}

// BenchmarkAblationOrderingNatural: residual on the generator's natural
// (structured) vertex ordering.
func BenchmarkAblationOrderingNatural(b *testing.B) {
	benchResidual(b, func(b *testing.B) *euler.Disc {
		m, err := meshgen.Channel(meshgen.DefaultChannel(32, 16, 12, 17))
		if err != nil {
			b.Fatal(err)
		}
		return euler.NewDisc(m, euler.DefaultParams(0.675, 0))
	})
}

// BenchmarkAblationOrderingScrambled: residual after randomly permuting
// the vertex numbering — the cache-hostile baseline of Section 4.2.
func BenchmarkAblationOrderingScrambled(b *testing.B) {
	benchResidual(b, func(b *testing.B) *euler.Disc {
		m, err := meshgen.Channel(meshgen.DefaultChannel(32, 16, 12, 17))
		if err != nil {
			b.Fatal(err)
		}
		perm := make([]int32, m.NV())
		for i := range perm {
			perm[i] = int32(i)
		}
		rand.New(rand.NewSource(3)).Shuffle(len(perm), func(i, j int) {
			perm[i], perm[j] = perm[j], perm[i]
		})
		sm, err := reorder.ApplyToMesh(m, perm)
		if err != nil {
			b.Fatal(err)
		}
		return euler.NewDisc(sm, euler.DefaultParams(0.675, 0))
	})
}

// BenchmarkAblationOrderingRCM: residual after reverse Cuthill-McKee
// renumbering of the scrambled mesh — the paper's node reordering fix.
func BenchmarkAblationOrderingRCM(b *testing.B) {
	benchResidual(b, func(b *testing.B) *euler.Disc {
		m, err := meshgen.Channel(meshgen.DefaultChannel(32, 16, 12, 17))
		if err != nil {
			b.Fatal(err)
		}
		perm := make([]int32, m.NV())
		for i := range perm {
			perm[i] = int32(i)
		}
		rand.New(rand.NewSource(3)).Shuffle(len(perm), func(i, j int) {
			perm[i], perm[j] = perm[j], perm[i]
		})
		sm, err := reorder.ApplyToMesh(m, perm)
		if err != nil {
			b.Fatal(err)
		}
		rm, err := reorder.RCMMesh(sm)
		if err != nil {
			b.Fatal(err)
		}
		return euler.NewDisc(rm, euler.DefaultParams(0.675, 0))
	})
}

// BenchmarkAblationPartitioners compares the communication volume (ghost
// values per exchange) induced by the three partitioning strategies at 32
// parts — the quantity the paper's partitioner choice minimizes.
func BenchmarkAblationPartitioners(b *testing.B) {
	m, err := meshgen.Channel(meshgen.DefaultChannel(24, 12, 8, 17))
	if err != nil {
		b.Fatal(err)
	}
	g, err := graph.FromEdges(m.NV(), m.Edges)
	if err != nil {
		b.Fatal(err)
	}
	for _, method := range []partition.Method{partition.Spectral, partition.Inertial, partition.BFSGreedy} {
		b.Run(method.String(), func(b *testing.B) {
			var items, cut int
			for i := 0; i < b.N; i++ {
				part, err := partition.Partition(g, m.X, 32, method, 1)
				if err != nil {
					b.Fatal(err)
				}
				d, err := parti.NewDist(part, 32)
				if err != nil {
					b.Fatal(err)
				}
				gs := parti.NewGhostSpace(d)
				refs := make([][]int32, 32)
				for _, e := range m.Edges {
					p := part[e[0]]
					refs[p] = append(refs[p], e[0], e[1])
				}
				sch := parti.BuildSchedule(gs, refs)
				items = sch.Items()
				cut = partition.Evaluate(part, m.Edges, 32).EdgeCut
			}
			b.ReportMetric(float64(items), "ghosts/exchange")
			b.ReportMetric(float64(cut), "edgecut")
		})
	}
}

// BenchmarkAblationIncrementalSchedules compares the per-cycle gather
// volume with and without the incremental-schedule optimization: without
// it, every consecutive loop pair re-fetches its full reference set.
func BenchmarkAblationIncrementalSchedules(b *testing.B) {
	m, err := meshgen.Channel(meshgen.DefaultChannel(24, 12, 8, 17))
	if err != nil {
		b.Fatal(err)
	}
	g, err := graph.FromEdges(m.NV(), m.Edges)
	if err != nil {
		b.Fatal(err)
	}
	part, err := partition.Partition(g, m.X, 32, partition.Spectral, 1)
	if err != nil {
		b.Fatal(err)
	}
	refs := make([][]int32, 32)
	for _, e := range m.Edges {
		p := part[e[0]]
		refs[p] = append(refs[p], e[0], e[1])
	}
	var withOpt, without int
	for i := 0; i < b.N; i++ {
		d, err := parti.NewDist(part, 32)
		if err != nil {
			b.Fatal(err)
		}
		// With: one schedule, the second loop reuses all ghosts.
		gs := parti.NewGhostSpace(d)
		first := parti.BuildSchedule(gs, refs)
		second, _ := parti.BuildIncremental(gs, refs)
		withOpt = first.Items() + second.Items()
		// Without: each loop builds its own ghost region from scratch.
		gs1 := parti.NewGhostSpace(d)
		s1 := parti.BuildSchedule(gs1, refs)
		gs2 := parti.NewGhostSpace(d)
		s2 := parti.BuildSchedule(gs2, refs)
		without = s1.Items() + s2.Items()
	}
	b.ReportMetric(float64(withOpt), "ghosts-incremental")
	b.ReportMetric(float64(without), "ghosts-naive")
}
