module eul3d

go 1.22
