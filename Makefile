GO ?= go

.PHONY: all build test race verify bench clean

all: build

build:
	$(GO) build ./...

# Tier-1: the whole repo must build and every test must pass.
test:
	$(GO) test ./...

# Race-check the concurrency-bearing packages: the simulated interconnect,
# the PARTI executors with self-healing receives, and the MIMD solver with
# its recovery orchestrator.
race:
	$(GO) test -race ./internal/simnet/... ./internal/parti/... ./internal/dmsolver/...

verify: build
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/simnet/... ./internal/parti/... ./internal/dmsolver/...

bench:
	$(GO) test -run XXX -bench . -benchtime 1x ./...

clean:
	$(GO) clean ./...
