GO ?= go

.PHONY: all build test race verify serve-smoke cluster-smoke store-smoke trace-smoke scenario-smoke adapt-smoke bench bench-check clean

all: build

build:
	$(GO) build ./...

# Tier-1: the whole repo must build and every test must pass.
test:
	$(GO) test ./...

# Race-check the concurrency-bearing packages: the simulated interconnect,
# the PARTI executors with self-healing receives, the MIMD solver with its
# recovery orchestrator, the shared-memory worker-pool engine (single-grid
# and pooled multigrid, V- and W-cycles), the transfer operators the
# pooled multigrid scatters in parallel, the flight-recorder tracer
# whose rings are written from every worker concurrently, the cluster
# coordinator with its health monitors and handoff machinery, the
# scenario harness that drives every engine over the presets, the
# content-addressed artifact store hit from every HTTP handler at once,
# and the adaptive driver that rebuilds the pooled engine between epochs.
race:
	$(GO) test -race ./internal/simnet/... ./internal/parti/... ./internal/dmsolver/... ./internal/smsolver/... ./internal/multigrid/... ./internal/serve/... ./internal/trace/... ./internal/cluster/... ./internal/scenario/... ./internal/store/... ./internal/adapt/...

# End-to-end serving smoke: build eul3dd, start it on a random port, run a
# channel-mesh job to completion, check /metrics, then SIGTERM it mid-job
# and verify the drain checkpoint resumes on restart.
serve-smoke:
	$(GO) test -run TestServeSmoke -count 1 -v ./cmd/eul3dd

# End-to-end fault-tolerance smoke: build eul3dd and eul3dc, start three
# checkpointing nodes plus the coordinator, kill -9 the node running a job
# mid-solve, and verify the dead node is marked unhealthy within the
# heartbeat threshold and every job completes bitwise identical to a
# single-node reference run.
cluster-smoke:
	$(GO) test -run TestClusterSmoke -count 1 -v ./cmd/eul3dc

# End-to-end artifact-store smoke: upload a mesh once to the coordinator,
# solve it by content hash (the coordinator pushes the blob to the chosen
# node), kill -9 that node after a checkpoint, and verify the job finishes
# on the survivor — mesh and checkpoint both travelling as hash references
# — bitwise identical to an uninterrupted reference run.
store-smoke:
	$(GO) test -run TestStoreSmoke -count 1 -v ./cmd/eul3dc

# Flight-recorder smoke: build eul3d, run it traced on the shared-memory
# and fault-injected distributed paths, and validate every emitted file as
# loadable Chrome trace JSON (including the automatic incident dump).
trace-smoke:
	$(GO) test -run TestTraceSmoke -count 1 -v ./cmd/eul3d

# End-to-end scenario smoke: build eul3dd, post the Sod shock tube over
# HTTP on the sequential engine and the pooled engine at workers 1/2/8,
# and check the L1 error against the exact Riemann solution stays under
# the committed tolerance with bitwise-identical pooled diagnostics.
scenario-smoke:
	$(GO) test -run TestScenarioSmoke -count 1 -v ./cmd/eul3dd

# End-to-end adaptive-solve smoke: build eul3d, run the Sod preset with
# -adapt on the pooled engine, and assert the epoch count, cells refined,
# mesh conformity, the incremental-vs-from-scratch rebuild comparison,
# and the scenario physics check on the adapted mesh.
adapt-smoke:
	$(GO) test -run TestAdaptSmoke -count 1 -v ./cmd/eul3d

# Full gate: vet, all tests, race pass, short fuzz smokes on the
# fault-spec parser, the exact Riemann solver, the artifact blob frame
# decoder and the refinement midpoint table (errors, never panics), and
# the serving, cluster, artifact-store, tracing, scenario and adaptive
# smoke tests.
verify: build
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/simnet/... ./internal/parti/... ./internal/dmsolver/... ./internal/smsolver/... ./internal/multigrid/... ./internal/serve/... ./internal/trace/... ./internal/cluster/... ./internal/scenario/... ./internal/store/... ./internal/adapt/...
	$(GO) test -run '^$$' -fuzz FuzzParseFaultSpec -fuzztime 2s ./internal/simnet
	$(GO) test -run '^$$' -fuzz FuzzRiemann -fuzztime 2s ./internal/scenario
	$(GO) test -run '^$$' -fuzz FuzzArtifactDecode -fuzztime 2s ./internal/store
	$(GO) test -run '^$$' -fuzz FuzzMidpointTable -fuzztime 2s ./internal/refine
	$(GO) test -run TestServeSmoke -count 1 ./cmd/eul3dd
	$(GO) test -run TestClusterSmoke -count 1 ./cmd/eul3dc
	$(GO) test -run TestStoreSmoke -count 1 ./cmd/eul3dc
	$(GO) test -run TestTraceSmoke -count 1 ./cmd/eul3d
	$(GO) test -run TestScenarioSmoke -count 1 ./cmd/eul3dd
	$(GO) test -run TestAdaptSmoke -count 1 ./cmd/eul3d
	$(MAKE) bench-check

# Benchmarks: the Go micro-benchmarks plus the shared-memory scaling run,
# which writes its results to BENCH_smsolver.json.
bench:
	$(GO) test -run XXX -bench . -benchtime 1x ./...
	$(GO) run ./cmd/benchsm -out BENCH_smsolver.json

# Benchmark-honesty gate: a short strict benchsm pass that refuses to run
# any series with more workers than the host has CPUs (a GOMAXPROCS-blind
# series time-slices its workers on one core and records fictional
# speedups), plus a check that the committed BENCH_smsolver.json contains
# no series whose recorded gomaxprocs is below its worker count.
bench-check:
	$(GO) run ./cmd/benchsm -strict -workers auto -nx 10 -ny 6 -nz 4 \
		-steps 4 -warmup 1 -levels 2 -cycles 3 -out /tmp/bench-check.json
	$(GO) run ./cmd/benchcheck BENCH_smsolver.json /tmp/bench-check.json

clean:
	$(GO) clean ./...
