// Package eul3d's root benchmark suite: one benchmark per table and figure
// of the paper's evaluation section. Each benchmark regenerates its
// experiment end to end (mesh generation, preprocessing, solver or machine
// model) at a reduced scale so that `go test -bench=.` completes in
// minutes; cmd/benchtables runs the same experiments at the full default
// scale and beyond (-scale).
package eul3d

import (
	"sync"
	"testing"

	"eul3d/internal/dmsolver"
	"eul3d/internal/euler"
	"eul3d/internal/graph"
	"eul3d/internal/machine"
	"eul3d/internal/meshgen"
	"eul3d/internal/multigrid"
	"eul3d/internal/partition"
	"eul3d/internal/smsolver"
	"eul3d/internal/tables"
)

// benchConfig is the reduced-scale workload for the root benchmarks.
func benchConfig() tables.Config {
	return tables.Config{
		NX: 24, NY: 12, NZ: 8,
		Levels:   3,
		Mach:     0.768,
		AlphaDeg: 1.116,
		Seed:     17,
		Cycles:   100,
		Stages:   5, DissStages: 2, NSmooth: 2,
	}
}

func benchTable1(b *testing.B, strategy tables.Strategy) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := tables.Table1(cfg, strategy, &machine.C90)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) != 5 {
			b.Fatal("bad table")
		}
		if i == 0 {
			b.Logf("\n%s", t.String())
		}
	}
}

// BenchmarkTable1a regenerates Table 1a: Y-MP C90 speeds, single grid.
func BenchmarkTable1a(b *testing.B) { benchTable1(b, tables.SingleGrid) }

// BenchmarkTable1b regenerates Table 1b: Y-MP C90 speeds, V-cycle.
func BenchmarkTable1b(b *testing.B) { benchTable1(b, tables.VCycle) }

// BenchmarkTable1c regenerates Table 1c: Y-MP C90 speeds, W-cycle.
func BenchmarkTable1c(b *testing.B) { benchTable1(b, tables.WCycle) }

func benchTable2(b *testing.B, strategy tables.Strategy) {
	cfg := benchConfig()
	nodes := []int{16, 32}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := tables.Table2(cfg, strategy, nodes, partition.Spectral, &machine.Delta)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) != 2 {
			b.Fatal("bad table")
		}
		if i == 0 {
			b.Logf("\n%s", t.String())
		}
	}
}

// BenchmarkTable2a regenerates Table 2a: Touchstone Delta speeds, single
// grid (reduced node counts; cmd/benchtables runs 256/512).
func BenchmarkTable2a(b *testing.B) { benchTable2(b, tables.SingleGrid) }

// BenchmarkTable2b regenerates Table 2b: Delta speeds, V-cycle.
func BenchmarkTable2b(b *testing.B) { benchTable2(b, tables.VCycle) }

// BenchmarkTable2c regenerates Table 2c: Delta speeds, W-cycle.
func BenchmarkTable2c(b *testing.B) { benchTable2(b, tables.WCycle) }

// BenchmarkFigure1 regenerates the multigrid cycle diagrams of Figure 1.
func BenchmarkFigure1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(tables.Figure1()) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFigure2 runs the convergence-history experiment of Figure 2
// (single grid vs V vs W) for a short horizon per iteration.
func BenchmarkFigure2(b *testing.B) {
	cfg := benchConfig()
	cfg.Cycles = 20
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := tables.Figure2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Series) != 3 {
			b.Fatal("missing series")
		}
	}
}

// BenchmarkFigure3 regenerates the mesh-sequence statistics of Figure 3.
func BenchmarkFigure3(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := tables.Figure3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(s) == 0 {
			b.Fatal("empty figure")
		}
	}
}

var fig4Once struct {
	sync.Once
	mg  *multigrid.Solver
	err error
}

// BenchmarkFigure4 extracts the Mach-contour raster of Figure 4 from a
// converged W-cycle solution (computed once, outside the timed loop).
func BenchmarkFigure4(b *testing.B) {
	fig4Once.Do(func() {
		cfg := benchConfig()
		meshes, err := cfg.Meshes(tables.WCycle)
		if err != nil {
			fig4Once.err = err
			return
		}
		mg, err := multigrid.New(meshes, euler.DefaultParams(cfg.Mach, cfg.AlphaDeg), 2)
		if err != nil {
			fig4Once.err = err
			return
		}
		for c := 0; c < 60; c++ {
			mg.Cycle()
		}
		fig4Once.mg = mg
	})
	if fig4Once.err != nil {
		b.Fatal(fig4Once.err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := tables.Figure4(fig4Once.mg, 78, 24)
		if f.MaxM <= 0 {
			b.Fatal("bad Mach field")
		}
	}
}

// BenchmarkSolverCycle measures the raw cost of one W-cycle on the bench
// mesh — the unit of work behind every table.
func BenchmarkSolverCycle(b *testing.B) {
	cfg := benchConfig()
	meshes, err := cfg.Meshes(tables.WCycle)
	if err != nil {
		b.Fatal(err)
	}
	mg, err := multigrid.New(meshes, euler.DefaultParams(cfg.Mach, cfg.AlphaDeg), 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mg.Cycle()
	}
}

// BenchmarkEdgeLoop measures the core convective edge kernel in isolation:
// the loop the whole paper is about vectorizing and distributing.
func BenchmarkEdgeLoop(b *testing.B) {
	m, err := meshgen.Channel(meshgen.DefaultChannel(24, 12, 8, 17))
	if err != nil {
		b.Fatal(err)
	}
	p := euler.DefaultParams(0.768, 1.116)
	d := euler.NewDisc(m, p)
	w := make([]euler.State, m.NV())
	d.InitUniform(w)
	res := make([]euler.State, m.NV())
	b.SetBytes(int64(m.NE()) * 16) // two endpoint indices per edge
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Residual(w, res)
	}
}

// BenchmarkSharedMemoryStep measures one colored-parallel time step (the
// shared-memory port's unit of work) at GOMAXPROCS workers.
func BenchmarkSharedMemoryStep(b *testing.B) {
	m, err := meshgen.Channel(meshgen.DefaultChannel(24, 12, 8, 17))
	if err != nil {
		b.Fatal(err)
	}
	s, err := smsolver.New(m, euler.DefaultParams(0.768, 1.116), 0)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	w := make([]euler.State, m.NV())
	s.InitUniform(w)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(w, nil)
	}
}

// BenchmarkDistributedCycle measures one distributed single-grid cycle on
// 16 simulated nodes, including all PARTI exchanges (sequential
// orchestration; the concurrent MIMD mode moves identical traffic).
func BenchmarkDistributedCycle(b *testing.B) {
	m, err := meshgen.Channel(meshgen.DefaultChannel(24, 12, 8, 17))
	if err != nil {
		b.Fatal(err)
	}
	g, err := graph.FromEdges(m.NV(), m.Edges)
	if err != nil {
		b.Fatal(err)
	}
	part, err := partition.Partition(g, m.X, 16, partition.Spectral, 1)
	if err != nil {
		b.Fatal(err)
	}
	dm, err := dmsolver.NewSingle(m, part, 16, euler.DefaultParams(0.768, 1.116))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dm.Cycle(); err != nil {
			b.Fatal(err)
		}
	}
}
