package main

import (
	"fmt"
	"log"
	"os"

	"eul3d/internal/adapt"
	"eul3d/internal/euler"
	"eul3d/internal/mesh"
	"eul3d/internal/meshio"
	"eul3d/internal/scenario"
	"eul3d/internal/trace"
)

type adaptOpts struct {
	budget    int
	interval  int
	epochs    int
	indicator string
	frac      float64
	workers   int
	cycles    int
	tol       float64
	logEvery  int
	scenName  string
	stats     bool
	history   string
	saveSol   string
	saveVTK   string
	mach      float64
	alpha     float64
	tracer    *trace.Tracer
	tracePath string
}

// runAdaptive is the -adapt path: a single-grid solve interleaved with
// indicator-driven refinement epochs (internal/adapt). The engine is
// rebuilt incrementally after every epoch; the run reports the
// incremental-vs-from-scratch build comparison per epoch.
func runAdaptive(p euler.Params, sc *scenario.Scenario, loadSeq func(int) ([]*mesh.Mesh, error), o adaptOpts) {
	seq, err := loadSeq(1)
	if err != nil {
		log.Fatalf("eul3d: %v", err)
	}
	m := seq[0]
	fmt.Printf("mesh: %d points, %d tetrahedra, %d edges\n", m.NV(), m.NT(), m.NE())

	var w []euler.State
	if sc != nil {
		w = sc.InitialState(m)
	} else {
		w = make([]euler.State, m.NV())
		for i := range w {
			w[i] = p.Freestream
		}
	}
	engine := "single"
	if o.workers > 0 {
		engine = "sm"
		fmt.Printf("adaptive solve: pooled engine, %d workers\n", o.workers)
	} else {
		fmt.Printf("adaptive solve: sequential engine\n")
	}
	fmt.Printf("adaptation: indicator %s, interval %d, max %d epochs, frac %.2f\n",
		o.indicator, o.interval, o.epochs, o.frac)

	res, err := adapt.Run(adapt.Options{
		Mesh: m, Init: w, Params: p,
		Engine: engine, Workers: o.workers,
		Steps: o.cycles, Tolerance: o.tol,
		Budget: o.budget, Interval: o.interval, MaxEpochs: o.epochs,
		Indicator: o.indicator, Frac: o.frac,
		LogEvery: o.logEvery, Log: os.Stdout,
		Trace: o.tracer,
	})
	if err != nil {
		writeTrace(o.tracer, o.tracePath)
		log.Fatalf("eul3d: %v", err)
	}
	writeTrace(o.tracer, o.tracePath)
	checkDivergence(o.scenName, res.History, res.Solution)

	fmt.Printf("\nfinished after %d steps: residual %.3e -> %.3e",
		res.Steps, res.InitialNorm, res.FinalNorm)
	if res.Converged {
		fmt.Printf(" [converged]")
	}
	fmt.Println()
	fmt.Printf("adaptation: %d epochs, %d cells refined (%d -> %d tetrahedra, %d -> %d points)\n",
		len(res.Epochs), res.CellsRefined, m.NT(), res.Mesh.NT(), m.NV(), res.Mesh.NV())
	for i, ep := range res.Epochs {
		line := fmt.Sprintf("  epoch %d @ step %d: marked %d, cells %d -> %d (%d red, %d green), %d edge colors reused, rebuild %.2fms",
			i+1, ep.Step, ep.Marked, ep.CellsBefore, ep.CellsAfter, ep.Red, ep.Green, ep.ReusedColors,
			float64(ep.RebuildNS)/1e6)
		if ep.ScratchNS > 0 {
			line += fmt.Sprintf(" (from-scratch build: %.2fms)", float64(ep.ScratchNS)/1e6)
		}
		if ep.Dt > 0 {
			line += fmt.Sprintf(", dt %.3e", ep.Dt)
		}
		fmt.Println(line)
	}
	if err := res.Mesh.Validate(1e-9); err != nil {
		log.Fatalf("eul3d: adapted mesh failed validation: %v", err)
	}
	fmt.Println("adaptive mesh conformity validated")

	g := p.Gas
	maxM := 0.0
	for _, wi := range res.Solution {
		if mm := g.Mach(wi); mm > maxM {
			maxM = mm
		}
	}
	fmt.Printf("max local Mach number: %.3f\n", maxM)

	if sc != nil {
		d := sc.Diagnose(res.Mesh, res.Solution, res.FinalNorm)
		fmt.Printf("\nscenario %s diagnostics (on the adapted mesh):\n", sc.Name)
		if d.L1Density >= 0 {
			fmt.Printf("  L1 density error vs exact solution: %.6g (tolerance %.3g)\n", d.L1Density, sc.L1Tol)
		}
		fmt.Printf("  min density %.6g, min pressure %.6g\n", d.Min[0], d.MinPressure)
		if d.ProbeLabel != "" {
			fmt.Printf("  %s: %.6g (analytic %.6g)\n", d.ProbeLabel, d.ProbeGot, d.ProbeWant)
		}
		if err := sc.Check(d); err != nil {
			log.Fatalf("eul3d: scenario check failed: %v", err)
		}
		fmt.Println("scenario check passed")
	}

	if o.stats {
		fmt.Printf("\nadaptation-phase breakdown:\n%s", res.Stats)
	}
	writeHistory(o.history, res.History)
	if o.saveSol != "" {
		if err := meshio.SaveSolution(o.saveSol, o.mach, o.alpha, res.Solution); err != nil {
			log.Fatalf("eul3d: %v", err)
		}
		fmt.Printf("solution written to %s\n", o.saveSol)
	}
	if o.saveVTK != "" {
		if err := meshio.SaveVTK(o.saveVTK, res.Mesh, p.Gas, res.Solution, "", nil); err != nil {
			log.Fatalf("eul3d: %v", err)
		}
		fmt.Printf("VTK written to %s\n", o.saveVTK)
	}
}
