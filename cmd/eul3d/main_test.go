package main

import (
	"errors"
	"math"
	"os"
	"os/exec"
	"strings"
	"testing"

	"eul3d/internal/euler"
)

// checkDivergence calls os.Exit, so the failing paths run in a re-exec'd
// copy of the test binary. Each mode checks that the report localizes the
// blow-up: the first non-finite field and vertex, plus the scenario name
// when one is set.
func TestCheckDivergenceExit(t *testing.T) {
	if h := os.Getenv("EUL3D_TEST_DIVERGE"); h != "" {
		switch h {
		case "nan":
			checkDivergence("", []float64{1, 0.5, math.NaN()}, []euler.State{
				{1, 0, 0, 0, 2.5},
				{1, math.NaN(), 0, 0, 2.5},
			})
		case "inf":
			checkDivergence("sod", []float64{1, math.Inf(1)}, []euler.State{
				{1, 0, 0, 0, math.Inf(1)},
			})
		}
		os.Exit(0) // checkDivergence should have exited already
	}

	for mode, want := range map[string][]string{
		"nan": {"solution diverged", "first non-finite value is rho-u at vertex 1"},
		"inf": {`scenario "sod" diverged`, "first non-finite value is rho-E at vertex 0"},
	} {
		cmd := exec.Command(os.Args[0], "-test.run=TestCheckDivergenceExit")
		cmd.Env = append(os.Environ(), "EUL3D_TEST_DIVERGE="+mode)
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("%s history: exited 0, want nonzero\n%s", mode, out)
		}
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("%s history: %v", mode, err)
		}
		if code := ee.ExitCode(); code == 0 {
			t.Errorf("%s history: exit code %d, want nonzero", mode, code)
		}
		for _, w := range want {
			if !strings.Contains(string(out), w) {
				t.Errorf("%s history: output missing %q:\n%s", mode, w, out)
			}
		}
	}
}

// A clean (finite) history must not exit, whatever the solution holds.
func TestCheckDivergenceClean(t *testing.T) {
	checkDivergence("", []float64{1, 0.5, 0.25, 1e-9}, []euler.State{{1, 0, 0, 0, 2.5}})
	checkDivergence("sod", nil, nil)
}

// firstNonFinite scans vertex-major: the lowest offending vertex wins,
// and within a vertex the lowest field.
func TestFirstNonFinite(t *testing.T) {
	if v, f := firstNonFinite(nil); v != -1 || f != -1 {
		t.Fatalf("empty solution: got (%d,%d), want (-1,-1)", v, f)
	}
	w := []euler.State{
		{1, 0, 0, 0, 2.5},
		{1, 0, math.Inf(-1), 0, math.NaN()},
		{math.NaN(), 0, 0, 0, 2.5},
	}
	if v, f := firstNonFinite(w); v != 1 || f != 2 {
		t.Fatalf("got vertex %d field %d, want 1/2 (rho-v)", v, f)
	}
}
