package main

import (
	"errors"
	"math"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// checkDivergence calls os.Exit, so the failing paths run in a re-exec'd
// copy of the test binary.
func TestCheckDivergenceExit(t *testing.T) {
	if h := os.Getenv("EUL3D_TEST_DIVERGE"); h != "" {
		switch h {
		case "nan":
			checkDivergence([]float64{1, 0.5, math.NaN()})
		case "inf":
			checkDivergence([]float64{1, math.Inf(1)})
		}
		os.Exit(0) // checkDivergence should have exited already
	}

	for _, mode := range []string{"nan", "inf"} {
		cmd := exec.Command(os.Args[0], "-test.run=TestCheckDivergenceExit")
		cmd.Env = append(os.Environ(), "EUL3D_TEST_DIVERGE="+mode)
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("%s history: exited 0, want nonzero\n%s", mode, out)
		}
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("%s history: %v", mode, err)
		}
		if code := ee.ExitCode(); code == 0 {
			t.Errorf("%s history: exit code %d, want nonzero", mode, code)
		}
		if !strings.Contains(string(out), "solution diverged") {
			t.Errorf("%s history: no clear divergence message in output:\n%s", mode, out)
		}
	}
}

// A clean (finite) history must not exit.
func TestCheckDivergenceClean(t *testing.T) {
	checkDivergence([]float64{1, 0.5, 0.25, 1e-9})
	checkDivergence(nil)
}
