// Command eul3d is the end-to-end flow solver: it generates the transonic
// bump-channel mesh sequence, runs the selected solution strategy (single
// grid, multigrid V-cycle or W-cycle) and reports the convergence history
// and flow-field summary.
//
// Usage:
//
//	eul3d -nx 32 -ny 16 -nz 12 -levels 4 -strategy w -mach 0.768 -alpha 1.116 -cycles 300
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"eul3d/internal/euler"
	"eul3d/internal/mesh"
	"eul3d/internal/meshgen"
	"eul3d/internal/meshio"
	"eul3d/internal/solver"
	"eul3d/internal/tables"
)

func main() {
	var (
		nx       = flag.Int("nx", 32, "fine-mesh cells in x")
		ny       = flag.Int("ny", 16, "fine-mesh cells in y")
		nz       = flag.Int("nz", 12, "fine-mesh cells in z")
		levels   = flag.Int("levels", 4, "multigrid levels (ignored for -strategy single)")
		strategy = flag.String("strategy", "w", "solution strategy: single, v or w")
		mach     = flag.Float64("mach", 0.768, "freestream Mach number")
		alpha    = flag.Float64("alpha", 1.116, "angle of attack in degrees")
		cycles   = flag.Int("cycles", 300, "maximum solver cycles")
		tol      = flag.Float64("tol", 1e-6, "relative residual tolerance (0 = run all cycles)")
		seed     = flag.Int64("seed", 17, "mesh jitter seed")
		logEvery = flag.Int("log-every", 25, "cycles between progress lines (0 = silent)")
		contours = flag.Bool("contours", false, "print ASCII Mach contours of the final solution")
		meshPfx  = flag.String("mesh-prefix", "", "load meshes from <prefix>.L<level>.mesh (see cmd/meshgen) instead of generating")
		saveSol  = flag.String("save-solution", "", "write the converged fine-grid solution to this file")
		saveVTK  = flag.String("save-vtk", "", "write mesh + solution as a legacy VTK file (ParaView)")
		initSol  = flag.String("init-solution", "", "warm-start from a saved solution file")
		fmg      = flag.Int("fmg", 0, "full-multigrid initialization: cycles per coarse level (0 = off)")
		history  = flag.String("history", "", "write the residual history as CSV to this file")
	)
	flag.Parse()

	p := euler.DefaultParams(*mach, *alpha)
	spec := meshgen.DefaultChannel(*nx, *ny, *nz, *seed)

	loadSeq := func(levels int) ([]*mesh.Mesh, error) {
		if *meshPfx == "" {
			return meshgen.Sequence(spec, levels)
		}
		out := make([]*mesh.Mesh, levels)
		for l := 0; l < levels; l++ {
			m, err := meshio.LoadMesh(fmt.Sprintf("%s.L%d.mesh", *meshPfx, l))
			if err != nil {
				return nil, err
			}
			out[l] = m
		}
		return out, nil
	}

	var st *solver.Steady
	switch *strategy {
	case "single":
		seq, err := loadSeq(1)
		if err != nil {
			log.Fatalf("eul3d: %v", err)
		}
		m := seq[0]
		fmt.Printf("mesh: %d points, %d tetrahedra, %d edges\n", m.NV(), m.NT(), m.NE())
		st = solver.NewSingleGrid(m, p)
	case "v", "w":
		seq, err := loadSeq(*levels)
		if err != nil {
			log.Fatalf("eul3d: %v", err)
		}
		for l, m := range seq {
			fmt.Printf("level %d: %d points, %d tetrahedra, %d edges\n", l, m.NV(), m.NT(), m.NE())
		}
		gamma := 1
		if *strategy == "w" {
			gamma = 2
		}
		var err2 error
		st, err2 = solver.NewMultigrid(seq, p, gamma)
		if err2 != nil {
			log.Fatalf("eul3d: %v", err2)
		}
		fmt.Printf("multigrid: %d levels, %s-cycle, %.2f work units per cycle, %.0f%% memory overhead\n",
			*levels, *strategy, st.MG.WorkUnits(), 100*st.MG.MemoryOverhead())
	default:
		log.Fatalf("eul3d: unknown strategy %q (want single, v or w)", *strategy)
	}

	if *fmg > 0 {
		if st.MG == nil {
			log.Fatalf("eul3d: -fmg requires a multigrid strategy")
		}
		st.MG.FMGInit(*fmg)
		fmt.Printf("full-multigrid initialization: %d cycles per coarse level\n", *fmg)
	}
	if *initSol != "" {
		_, _, w0, err := meshio.LoadSolution(*initSol)
		if err != nil {
			log.Fatalf("eul3d: %v", err)
		}
		if err := st.SetInitial(w0); err != nil {
			log.Fatalf("eul3d: %v", err)
		}
		fmt.Printf("warm start from %s\n", *initSol)
	}

	res, err := st.Run(solver.Options{
		MaxCycles: *cycles,
		Tolerance: *tol,
		LogEvery:  *logEvery,
		Log:       os.Stdout,
	})
	if err != nil {
		log.Fatalf("eul3d: %v", err)
	}
	fmt.Printf("\nfinished after %d cycles: residual %.3e -> %.3e (%.1f orders)",
		res.Cycles, res.InitialNorm, res.FinalNorm, res.Ordersof10)
	if res.Converged {
		fmt.Printf(" [converged]")
	}
	fmt.Println()

	g := p.Gas
	maxM := 0.0
	for _, w := range res.FineSolution {
		if m := g.Mach(w); m > maxM {
			maxM = m
		}
	}
	fmt.Printf("max local Mach number: %.3f\n", maxM)

	if *history != "" {
		var b strings.Builder
		b.WriteString("cycle,residual\n")
		for c, n := range res.History {
			fmt.Fprintf(&b, "%d,%.8e\n", c, n)
		}
		if err := os.WriteFile(*history, []byte(b.String()), 0o644); err != nil {
			log.Fatalf("eul3d: %v", err)
		}
		fmt.Printf("history written to %s\n", *history)
	}
	if *saveSol != "" {
		if err := meshio.SaveSolution(*saveSol, *mach, *alpha, res.FineSolution); err != nil {
			log.Fatalf("eul3d: %v", err)
		}
		fmt.Printf("solution written to %s\n", *saveSol)
	}
	if *saveVTK != "" {
		var fineMesh *mesh.Mesh
		if st.MG != nil {
			fineMesh = st.MG.Fine().Disc.M
		} else {
			// Single grid: the solution indexes the generated/loaded mesh.
			seq, err := loadSeq(1)
			if err != nil {
				log.Fatalf("eul3d: %v", err)
			}
			fineMesh = seq[0]
		}
		if err := meshio.SaveVTK(*saveVTK, fineMesh, p.Gas, res.FineSolution, "", nil); err != nil {
			log.Fatalf("eul3d: %v", err)
		}
		fmt.Printf("VTK written to %s\n", *saveVTK)
	}

	if *contours && st.MG != nil {
		f := tables.Figure4(st.MG, 78, 24)
		fmt.Println("\nMach contours on the mid-span plane:")
		fmt.Print(f.ASCII())
	} else if *contours {
		fmt.Println("(-contours requires a multigrid strategy)")
	}
}
