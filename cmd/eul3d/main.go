// Command eul3d is the end-to-end flow solver: it generates the transonic
// bump-channel mesh sequence, runs the selected solution strategy (single
// grid, multigrid V-cycle or W-cycle) and reports the convergence history
// and flow-field summary. With -nproc it runs the distributed-memory
// solver on simulated nodes instead, with optional fault injection
// (-faults), periodic checkpointing (-checkpoint) and restart (-resume).
//
// Usage:
//
//	eul3d -nx 32 -ny 16 -nz 12 -levels 4 -strategy w -mach 0.768 -alpha 1.116 -cycles 300
//	eul3d -nproc 8 -faults seed=7,drop=2,corrupt=1,crash=3@40 -checkpoint run.ckpt -checkpoint-every 25
//	eul3d -resume run.ckpt
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strings"

	"eul3d/internal/dmsolver"
	"eul3d/internal/euler"
	"eul3d/internal/graph"
	"eul3d/internal/mesh"
	"eul3d/internal/meshgen"
	"eul3d/internal/meshio"
	"eul3d/internal/partition"
	"eul3d/internal/scenario"
	"eul3d/internal/simnet"
	"eul3d/internal/solver"
	"eul3d/internal/tables"
	"eul3d/internal/trace"
)

func main() {
	var (
		nx       = flag.Int("nx", 32, "fine-mesh cells in x")
		ny       = flag.Int("ny", 16, "fine-mesh cells in y")
		nz       = flag.Int("nz", 12, "fine-mesh cells in z")
		levels   = flag.Int("levels", 4, "multigrid levels (ignored for -strategy single)")
		strategy = flag.String("strategy", "w", "solution strategy: single, v or w")
		scenName = flag.String("scenario", "", "run a named verification preset from internal/scenario (\"list\" prints them); replaces the mesh and flow flags")
		mach     = flag.Float64("mach", 0.768, "freestream Mach number")
		alpha    = flag.Float64("alpha", 1.116, "angle of attack in degrees")
		cycles   = flag.Int("cycles", 300, "maximum solver cycles")
		tol      = flag.Float64("tol", 1e-6, "relative residual tolerance (0 = run all cycles)")
		seed     = flag.Int64("seed", 17, "mesh jitter seed")
		logEvery = flag.Int("log-every", 25, "cycles between progress lines (0 = silent)")
		contours = flag.Bool("contours", false, "print ASCII Mach contours of the final solution")
		workers  = flag.Int("workers", 0, "shared-memory worker-pool solver with this many workers (0 = sequential); works with every strategy")
		stats    = flag.Bool("stats", false, "print the per-phase wall-clock / Mflops breakdown after the run")
		meshPfx  = flag.String("mesh-prefix", "", "load meshes from <prefix>.L<level>.mesh (see cmd/meshgen) instead of generating")
		saveSol  = flag.String("save-solution", "", "write the converged fine-grid solution to this file")
		saveVTK  = flag.String("save-vtk", "", "write mesh + solution as a legacy VTK file (ParaView)")
		initSol  = flag.String("init-solution", "", "warm-start from a saved solution file")
		fmg      = flag.Int("fmg", 0, "full-multigrid initialization: cycles per coarse level (0 = off)")
		history  = flag.String("history", "", "write the residual history as CSV to this file")
		tracePth = flag.String("trace", "", "write a Chrome trace-event JSON timeline of the run to this file (load in Perfetto or chrome://tracing)")

		adaptOn   = flag.Bool("adapt", false, "adaptive solve: refine the mesh during the run driven by an error indicator (single-grid; -workers selects the pooled engine)")
		adaptBud  = flag.Int("adapt-budget", 0, "with -adapt: cell budget (0 = 4x the starting cell count)")
		adaptIntv = flag.Int("adapt-interval", 50, "with -adapt: steps between adaptation epochs")
		adaptEp   = flag.Int("adapt-epochs", 2, "with -adapt: maximum refinement epochs")
		adaptInd  = flag.String("adapt-indicator", "density", "with -adapt: error indicator (density, pressure or residual)")
		adaptFrac = flag.Float64("adapt-frac", 0.1, "with -adapt: fraction of cells marked per epoch")

		nproc     = flag.Int("nproc", 0, "simulated processors for the distributed solver (0 = in-process sequential solver)")
		mimd      = flag.Bool("mimd", false, "with -nproc: run one goroutine per simulated processor (true MIMD mode)")
		faultSpec = flag.String("faults", "", "with -nproc: seeded fault-injection spec, e.g. seed=7,drop=2,dup=1,corrupt=1,delay=1,reorder=1,crash=2@40")
		ckptPath  = flag.String("checkpoint", "", "write periodic atomic checkpoints to this file")
		ckptEvery = flag.Int("checkpoint-every", 25, "cycles between checkpoints (with -checkpoint)")
		resume    = flag.String("resume", "", "restart from a checkpoint file written by -checkpoint")
	)
	flag.Parse()

	p := euler.DefaultParams(*mach, *alpha)
	spec := meshgen.DefaultChannel(*nx, *ny, *nz, *seed)

	var sc *scenario.Scenario
	if *scenName != "" {
		if *scenName == "list" {
			for _, n := range scenario.Names() {
				s, _ := scenario.Get(n)
				fmt.Printf("%-8s %s\n", n, s.Description)
			}
			return
		}
		var err error
		if sc, err = scenario.Get(*scenName); err != nil {
			log.Fatalf("eul3d: %v", err)
		}
		for flagName, on := range map[string]bool{
			"-nproc":         *nproc > 0,
			"-mesh-prefix":   *meshPfx != "",
			"-resume":        *resume != "",
			"-init-solution": *initSol != "",
			"-fmg":           *fmg > 0,
		} {
			if on {
				log.Fatalf("eul3d: -scenario fixes the mesh and initial state and is incompatible with %s", flagName)
			}
		}
		p = sc.Params()
		// The preset's step count and tolerance are defaults, not law:
		// explicit -cycles/-tol still win.
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		if !explicit["cycles"] {
			*cycles = sc.Steps
		}
		if !explicit["tol"] {
			*tol = sc.Tol
		}
		if sc.Unsteady && *strategy != "single" {
			if explicit["strategy"] {
				fmt.Printf("scenario %s is time-accurate; forcing -strategy single\n", sc.Name)
			}
			*strategy = "single"
		}
		if *levels > sc.MaxLevels {
			*levels = sc.MaxLevels
		}
		fmt.Printf("scenario %s: %s\n", sc.Name, sc.Description)
	}

	loadSeq := func(levels int) ([]*mesh.Mesh, error) {
		if sc != nil {
			return sc.Meshes(levels)
		}
		if *meshPfx == "" {
			return meshgen.Sequence(spec, levels)
		}
		out := make([]*mesh.Mesh, levels)
		for l := 0; l < levels; l++ {
			m, err := meshio.LoadMesh(fmt.Sprintf("%s.L%d.mesh", *meshPfx, l))
			if err != nil {
				return nil, err
			}
			out[l] = m
		}
		return out, nil
	}

	var ck *meshio.Checkpoint
	if *resume != "" {
		var err error
		ck, err = meshio.LoadCheckpoint(*resume)
		if err != nil {
			log.Fatalf("eul3d: %v", err)
		}
		if ck.Mach != *mach || ck.AlphaDeg != *alpha {
			fmt.Printf("resume: checkpoint was run at mach %g alpha %g; using those\n", ck.Mach, ck.AlphaDeg)
			*mach, *alpha = ck.Mach, ck.AlphaDeg
			p = euler.DefaultParams(*mach, *alpha)
		}
		fmt.Printf("resuming from %s at cycle %d\n", *resume, ck.Cycle)
	}

	if *faultSpec != "" && *nproc <= 0 {
		log.Fatalf("eul3d: -faults requires the distributed solver (-nproc)")
	}
	var tracer *trace.Tracer
	if *tracePth != "" {
		tracer = trace.New(1 << 14)
	}
	if *adaptOn {
		for flagName, on := range map[string]bool{
			"-nproc":         *nproc > 0,
			"-fmg":           *fmg > 0,
			"-resume":        *resume != "",
			"-init-solution": *initSol != "",
			"-contours":      *contours,
		} {
			if on {
				log.Fatalf("eul3d: -adapt is incompatible with %s", flagName)
			}
		}
		if *strategy != "single" {
			explicit := map[string]bool{}
			flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
			if explicit["strategy"] {
				log.Fatalf("eul3d: -adapt runs on a single grid; use -strategy single (-workers selects the pooled engine)")
			}
			*strategy = "single"
		}
		runAdaptive(p, sc, loadSeq, adaptOpts{
			budget: *adaptBud, interval: *adaptIntv, epochs: *adaptEp,
			indicator: *adaptInd, frac: *adaptFrac,
			workers: *workers, cycles: *cycles, tol: *tol, logEvery: *logEvery,
			scenName: *scenName, stats: *stats,
			history: *history, saveSol: *saveSol, saveVTK: *saveVTK,
			mach: *mach, alpha: *alpha,
			tracer: tracer, tracePath: *tracePth,
		})
		return
	}
	if *nproc > 0 {
		runDistributed(p, loadSeq, ck, distOpts{
			strategy: *strategy, levels: *levels, nproc: *nproc, mimd: *mimd,
			faults: *faultSpec, cycles: *cycles, tol: *tol, logEvery: *logEvery,
			ckptPath: *ckptPath, ckptEvery: *ckptEvery,
			mach: *mach, alpha: *alpha,
			history: *history, saveSol: *saveSol, saveVTK: *saveVTK,
			tracer: tracer, tracePath: *tracePth,
		})
		return
	}

	var st *solver.Steady
	var fineMesh *mesh.Mesh
	switch *strategy {
	case "single":
		seq, err := loadSeq(1)
		if err != nil {
			log.Fatalf("eul3d: %v", err)
		}
		m := seq[0]
		fineMesh = m
		fmt.Printf("mesh: %d points, %d tetrahedra, %d edges\n", m.NV(), m.NT(), m.NE())
		if *workers > 0 {
			st, err = solver.NewSharedMemory(m, p, *workers)
			if err != nil {
				log.Fatalf("eul3d: %v", err)
			}
			defer st.Close()
			fmt.Printf("shared-memory solver: %d workers\n", *workers)
		} else {
			st = solver.NewSingleGrid(m, p)
		}
	case "v", "w":
		seq, err := loadSeq(*levels)
		if err != nil {
			log.Fatalf("eul3d: %v", err)
		}
		fineMesh = seq[0]
		for l, m := range seq {
			fmt.Printf("level %d: %d points, %d tetrahedra, %d edges\n", l, m.NV(), m.NT(), m.NE())
		}
		gamma := 1
		if *strategy == "w" {
			gamma = 2
		}
		if *workers > 0 {
			st, err = solver.NewSharedMemoryMultigrid(seq, p, gamma, *workers)
			if err != nil {
				log.Fatalf("eul3d: %v", err)
			}
			defer st.Close()
			fmt.Printf("pooled multigrid: %d levels, %s-cycle, %d workers\n", *levels, *strategy, *workers)
		} else {
			st, err = solver.NewMultigrid(seq, p, gamma)
			if err != nil {
				log.Fatalf("eul3d: %v", err)
			}
			fmt.Printf("multigrid: %d levels, %s-cycle, %.2f work units per cycle, %.0f%% memory overhead\n",
				*levels, *strategy, st.MG.WorkUnits(), 100*st.MG.MemoryOverhead())
		}
	default:
		log.Fatalf("eul3d: unknown strategy %q (want single, v or w)", *strategy)
	}

	if *fmg > 0 {
		if st.MG == nil {
			if *workers > 0 {
				log.Fatalf("eul3d: -fmg is not supported by the pooled multigrid; drop -workers")
			}
			log.Fatalf("eul3d: -fmg requires a multigrid strategy")
		}
		st.MG.FMGInit(*fmg)
		fmt.Printf("full-multigrid initialization: %d cycles per coarse level\n", *fmg)
	}
	if *initSol != "" {
		_, _, w0, err := meshio.LoadSolution(*initSol)
		if err != nil {
			log.Fatalf("eul3d: %v", err)
		}
		if err := st.SetInitial(w0); err != nil {
			log.Fatalf("eul3d: %v", err)
		}
		fmt.Printf("warm start from %s\n", *initSol)
	}
	if ck != nil {
		if err := st.Restore(ck); err != nil {
			log.Fatalf("eul3d: %v", err)
		}
	}
	if sc != nil {
		if err := st.SetInitial(sc.InitialState(fineMesh)); err != nil {
			log.Fatalf("eul3d: %v", err)
		}
	}
	if tracer != nil {
		if st.SetTrace(tracer) {
			fmt.Printf("flight recorder armed; trace goes to %s\n", *tracePth)
		} else {
			fmt.Printf("(-trace: strategy %q without -workers has no traced stepper; trace will be empty)\n", *strategy)
		}
	}

	res, err := st.Run(solver.Options{
		MaxCycles: *cycles,
		Tolerance: *tol,
		LogEvery:  *logEvery,
		Log:       os.Stdout,

		CheckpointEvery: *ckptEvery,
		CheckpointPath:  *ckptPath,
		Mach:            *mach,
		AlphaDeg:        *alpha,
	})
	if err != nil {
		writeTrace(tracer, *tracePth)
		log.Fatalf("eul3d: %v", err)
	}
	writeTrace(tracer, *tracePth)
	checkDivergence(*scenName, res.History, res.FineSolution)
	fmt.Printf("\nfinished after %d cycles: residual %.3e -> %.3e (%.1f orders)",
		res.Cycles, res.InitialNorm, res.FinalNorm, res.Ordersof10)
	if res.Converged {
		fmt.Printf(" [converged]")
	}
	fmt.Println()

	g := p.Gas
	maxM := 0.0
	for _, w := range res.FineSolution {
		if m := g.Mach(w); m > maxM {
			maxM = m
		}
	}
	fmt.Printf("max local Mach number: %.3f\n", maxM)

	if sc != nil {
		d := sc.Diagnose(fineMesh, res.FineSolution, res.FinalNorm)
		fmt.Printf("\nscenario %s diagnostics:\n", sc.Name)
		if d.L1Density >= 0 {
			fmt.Printf("  L1 density error vs exact solution: %.6g (tolerance %.3g)\n", d.L1Density, sc.L1Tol)
		}
		fmt.Printf("  min density %.6g, min pressure %.6g\n", d.Min[0], d.MinPressure)
		if d.ProbeLabel != "" {
			fmt.Printf("  %s: %.6g (analytic %.6g)\n", d.ProbeLabel, d.ProbeGot, d.ProbeWant)
		}
		if err := sc.Check(d); err != nil {
			log.Fatalf("eul3d: scenario check failed: %v", err)
		}
		fmt.Println("scenario check passed")
	}

	if *stats {
		fmt.Printf("\nper-phase breakdown (analytic flop counts):\n%s", st.Stats())
	}

	writeHistory(*history, res.History)
	if *saveSol != "" {
		if err := meshio.SaveSolution(*saveSol, *mach, *alpha, res.FineSolution); err != nil {
			log.Fatalf("eul3d: %v", err)
		}
		fmt.Printf("solution written to %s\n", *saveSol)
	}
	if *saveVTK != "" {
		if err := meshio.SaveVTK(*saveVTK, fineMesh, p.Gas, res.FineSolution, "", nil); err != nil {
			log.Fatalf("eul3d: %v", err)
		}
		fmt.Printf("VTK written to %s\n", *saveVTK)
	}

	if *contours && st.MG != nil {
		f := tables.Figure4(st.MG, 78, 24)
		fmt.Println("\nMach contours on the mid-span plane:")
		fmt.Print(f.ASCII())
	} else if *contours {
		fmt.Println("(-contours requires the sequential multigrid strategy)")
	}
}

type distOpts struct {
	strategy  string
	levels    int
	nproc     int
	mimd      bool
	faults    string
	cycles    int
	tol       float64
	logEvery  int
	ckptPath  string
	ckptEvery int
	mach      float64
	alpha     float64
	history   string
	saveSol   string
	saveVTK   string
	tracer    *trace.Tracer
	tracePath string
}

// runDistributed is the fault-tolerant distributed path: spectral
// partition per level, PARTI schedules, and the recovery orchestrator
// around the simulated-interconnect solve.
func runDistributed(p euler.Params, loadSeq func(int) ([]*mesh.Mesh, error), ck *meshio.Checkpoint, o distOpts) {
	nlev := o.levels
	gamma := 0
	switch o.strategy {
	case "single":
		nlev = 1
	case "v":
		gamma = 1
	case "w":
		gamma = 2
	default:
		log.Fatalf("eul3d: unknown strategy %q (want single, v or w)", o.strategy)
	}
	seq, err := loadSeq(nlev)
	if err != nil {
		log.Fatalf("eul3d: %v", err)
	}
	parts := make([][]int32, nlev)
	for l, m := range seq {
		g, err := graph.FromEdges(m.NV(), m.Edges)
		if err != nil {
			log.Fatalf("eul3d: %v", err)
		}
		parts[l], err = partition.Partition(g, m.X, o.nproc, partition.Spectral, 1)
		if err != nil {
			log.Fatalf("eul3d: %v", err)
		}
		q := partition.Evaluate(parts[l], m.Edges, o.nproc)
		fmt.Printf("level %d: %d points over %d processors, %v\n", l, m.NV(), o.nproc, q)
	}

	var s *dmsolver.Solver
	if nlev == 1 {
		s, err = dmsolver.NewSingle(seq[0], parts[0], o.nproc, p)
	} else {
		s, err = dmsolver.NewMultigrid(seq, parts, o.nproc, p, gamma)
	}
	if err != nil {
		log.Fatalf("eul3d: %v", err)
	}

	var plan *simnet.FaultPlan
	if o.faults != "" {
		plan, err = simnet.ParseFaultSpec(o.faults)
		if err != nil {
			log.Fatalf("eul3d: %v", err)
		}
		s.Fabric.SetFaultPlan(plan)
		fmt.Printf("fault injection armed: %s\n", o.faults)
	}

	mode := "sequential orchestration"
	if o.mimd {
		mode = "MIMD (goroutine per processor)"
	}
	fmt.Printf("distributed solve: %d simulated processors, %s\n", o.nproc, mode)

	incident := ""
	if o.tracer != nil {
		s.SetTrace(o.tracer)
		incident = incidentPath(o.tracePath)
		fmt.Printf("flight recorder armed; trace goes to %s, incident dumps to %s\n", o.tracePath, incident)
	}

	res, err := s.Run(dmsolver.RunOptions{
		MaxCycles:       o.cycles,
		Tolerance:       o.tol,
		LogEvery:        o.logEvery,
		Log:             os.Stdout,
		Concurrent:      o.mimd,
		CheckpointEvery: o.ckptEvery,
		CheckpointPath:  o.ckptPath,
		Mach:            o.mach,
		AlphaDeg:        o.alpha,
		Resume:          ck,
		IncidentPath:    incident,
	})
	if err != nil {
		writeTrace(o.tracer, o.tracePath)
		log.Fatalf("eul3d: %v", err)
	}
	writeTrace(o.tracer, o.tracePath)
	checkDivergence("", res.History, res.FineSolution)

	fmt.Printf("\nfinished after %d cycles: residual %.3e -> %.3e (%.1f orders)",
		res.Cycles, res.InitialNorm, res.FinalNorm, res.Ordersof10)
	if res.Converged {
		fmt.Printf(" [converged]")
	}
	fmt.Println()
	msgs, bytes := s.Fabric.TotalStats()
	fmt.Printf("traffic: %d messages, %.2f MB, %d healed by retransmission\n",
		msgs, float64(bytes)/1e6, s.Fabric.Resends())
	if res.Recoveries > 0 || res.CFLBackoffs > 0 {
		fmt.Printf("recovery: %d checkpoint restores after node crashes, %d CFL backoffs\n",
			res.Recoveries, res.CFLBackoffs)
	}
	if plan != nil {
		st := plan.Stats()
		fmt.Printf("faults injected: %d drops, %d duplicates, %d corruptions, %d delays, %d reorders, %d crashes (%d scheduled never fired)\n",
			st.Drops, st.Duplicates, st.Corruptions, st.Delays, st.Reorders, st.Crashes, plan.Unfired())
	}

	writeHistory(o.history, res.History)
	if o.saveSol != "" {
		if err := meshio.SaveSolution(o.saveSol, o.mach, o.alpha, res.FineSolution); err != nil {
			log.Fatalf("eul3d: %v", err)
		}
		fmt.Printf("solution written to %s\n", o.saveSol)
	}
	if o.saveVTK != "" {
		if err := meshio.SaveVTK(o.saveVTK, seq[0], p.Gas, res.FineSolution, "", nil); err != nil {
			log.Fatalf("eul3d: %v", err)
		}
		fmt.Printf("VTK written to %s\n", o.saveVTK)
	}
}

// writeTrace dumps the flight recorder to path as Chrome trace JSON.
func writeTrace(tr *trace.Tracer, path string) {
	if tr == nil || path == "" {
		return
	}
	if err := tr.WriteChromeFile(path); err != nil {
		log.Fatalf("eul3d: writing trace: %v", err)
	}
	fmt.Printf("trace written to %s (%d tracks); load it in Perfetto or chrome://tracing\n",
		path, len(tr.Tracks()))
}

// incidentPath derives the flight-recorder incident dump path from the
// -trace path: out.json -> out.incident.json. Keeping them separate means
// a crash dump survives even after the final trace overwrites nothing.
func incidentPath(tracePath string) string {
	if ext := ".json"; strings.HasSuffix(tracePath, ext) {
		return strings.TrimSuffix(tracePath, ext) + ".incident" + ext
	}
	return tracePath + ".incident"
}

// divergeFields names the conserved variables for divergence reports.
var divergeFields = [euler.NVar]string{"rho", "rho-u", "rho-v", "rho-w", "rho-E"}

// firstNonFinite locates the first NaN/Inf value in the solution, in
// vertex-major order; (-1, -1) when every value is finite.
func firstNonFinite(w []euler.State) (vertex, field int) {
	for i, s := range w {
		for k := 0; k < euler.NVar; k++ {
			if math.IsNaN(s[k]) || math.IsInf(s[k], 0) {
				return i, k
			}
		}
	}
	return -1, -1
}

// checkDivergence aborts with a nonzero exit when the residual history
// contains a NaN or Inf: the run has blown up and the flow-field summary
// that would follow is meaningless. The report names the first offending
// field and vertex in the final solution (and the scenario, when one is
// running) so the blow-up can be localized; the usual culprits are a
// freestream condition outside the scheme's stable range, a time step
// past the stability limit or a badly distorted mesh.
func checkDivergence(scenarioName string, hist []float64, w []euler.State) {
	for c, n := range hist {
		if !math.IsNaN(n) && !math.IsInf(n, 0) {
			continue
		}
		what := "solution"
		if scenarioName != "" {
			what = fmt.Sprintf("scenario %q", scenarioName)
		}
		msg := fmt.Sprintf("eul3d: %s diverged: residual norm %g at cycle %d", what, n, c+1)
		if i, k := firstNonFinite(w); i >= 0 {
			msg += fmt.Sprintf("; first non-finite value is %s at vertex %d", divergeFields[k], i)
		}
		fmt.Fprintf(os.Stderr, "%s; try a lower -mach or -alpha, a smaller time step, or a less distorted mesh (-seed)\n", msg)
		os.Exit(1)
	}
}

func writeHistory(path string, hist []float64) {
	if path == "" {
		return
	}
	var b strings.Builder
	b.WriteString("cycle,residual\n")
	for c, n := range hist {
		fmt.Fprintf(&b, "%d,%.8e\n", c, n)
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		log.Fatalf("eul3d: %v", err)
	}
	fmt.Printf("history written to %s\n", path)
}
