package main

import (
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestAdaptSmoke is the end-to-end adaptive-solve smoke test behind
// `make adapt-smoke`: build the eul3d binary, run the Sod preset with
// adaptation on the pooled engine, and assert the epoch count, mesh
// conformity, and the scenario physics check from the program output.
func TestAdaptSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke test skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "eul3d")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building eul3d: %v\n%s", err, out)
	}

	run := exec.Command(bin, "-scenario", "sod", "-adapt",
		"-adapt-interval", "50", "-adapt-epochs", "2",
		"-workers", "2", "-log-every", "0")
	out, err := run.CombinedOutput()
	if err != nil {
		t.Fatalf("adaptive sod run: %v\n%s", err, out)
	}
	text := string(out)

	em := regexp.MustCompile(`adaptation: (\d+) epochs, (\d+) cells refined`).FindStringSubmatch(text)
	if em == nil {
		t.Fatalf("no adaptation summary in output:\n%s", text)
	}
	if n, _ := strconv.Atoi(em[1]); n < 2 {
		t.Fatalf("only %d adaptation epochs, want >= 2:\n%s", n, text)
	}
	if n, _ := strconv.Atoi(em[2]); n <= 0 {
		t.Fatalf("no cells refined:\n%s", text)
	}
	for _, want := range []string{
		"adaptive mesh conformity validated",
		"scenario check passed",
		"edge colors reused",
		"from-scratch build",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
	// The per-epoch lines carry the incremental-vs-scratch comparison; the
	// first epoch must report both figures.
	ep := regexp.MustCompile(`rebuild ([0-9.]+)ms \(from-scratch build: ([0-9.]+)ms\)`).FindStringSubmatch(text)
	if ep == nil {
		t.Fatalf("first epoch missing the rebuild comparison:\n%s", text)
	}
}
