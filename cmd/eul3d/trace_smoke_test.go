package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"eul3d/internal/trace"
)

// TestTraceSmoke is the end-to-end flight-recorder smoke test behind
// `make trace-smoke`: build the eul3d binary, run it with -trace on both
// the shared-memory and the fault-injected distributed paths, and check
// that every produced file is loadable Chrome trace JSON with the expected
// tracks.
func TestTraceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke test skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "eul3d")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building eul3d: %v\n%s", err, out)
	}

	validate := func(path string, wantTracks ...string) {
		t.Helper()
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("trace file missing: %v", err)
		}
		defer f.Close()
		if n, err := trace.Validate(f); err != nil {
			t.Fatalf("%s: invalid Chrome trace: %v", path, err)
		} else if n == 0 {
			t.Fatalf("%s: no events", path)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, tk := range wantTracks {
			if !strings.Contains(string(raw), `"name":"thread_name"`) ||
				!strings.Contains(string(raw), `"name":"`+tk+`"`) {
				t.Errorf("%s: track %q missing", path, tk)
			}
		}
	}

	// 1. Shared-memory pooled run: per-worker tracks with kernel spans.
	smTrace := filepath.Join(dir, "sm.json")
	sm := exec.Command(bin, "-nx", "10", "-ny", "5", "-nz", "4", "-strategy", "single",
		"-workers", "3", "-cycles", "10", "-tol", "0", "-log-every", "0", "-trace", smTrace)
	if out, err := sm.CombinedOutput(); err != nil {
		t.Fatalf("shared-memory run: %v\n%s", err, out)
	}
	validate(smTrace, "phases", "w0", "w1", "w2")

	// 2. Distributed run with an injected node crash: the comm timeline and
	// per-proc tracks in the main trace, plus the automatic incident dump
	// fired by the crash recovery.
	dmTrace := filepath.Join(dir, "dm.json")
	dm := exec.Command(bin, "-nx", "8", "-ny", "4", "-nz", "3", "-strategy", "single",
		"-nproc", "3", "-mimd", "-cycles", "10", "-tol", "0", "-log-every", "0",
		"-checkpoint-every", "2", "-faults", "seed=7,crash=1@4", "-trace", dmTrace)
	out, err := dm.CombinedOutput()
	if err != nil {
		t.Fatalf("distributed run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "restoring checkpoint") {
		t.Fatalf("injected crash did not trigger a recovery:\n%s", out)
	}
	validate(dmTrace, "p0", "p1", "p2", "events")

	incident := strings.TrimSuffix(dmTrace, ".json") + ".incident.json"
	validate(incident, "events")
	raw, _ := os.ReadFile(incident)
	for _, want := range []string{"node-crash", "recovery"} {
		if !strings.Contains(string(raw), `"name":"`+want+`"`) {
			t.Errorf("incident dump missing %q instant", want)
		}
	}
}
