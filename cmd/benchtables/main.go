// Command benchtables regenerates every table and figure of the paper's
// evaluation section:
//
//	Tables 1a-1c  Y-MP C90 wall clock / CPU seconds / MFlops, 1-16 CPUs
//	Tables 2a-2c  Touchstone Delta comm/comp/total seconds and MFlops,
//	              256 and 512 nodes
//	Figure 1      multigrid V- and W-cycle structures
//	Figure 2      convergence histories (single grid vs V vs W)
//	Figure 3      multigrid mesh sequence statistics
//	Figure 4      Mach contours of the converged transonic solution
//
// By default all experiments run at a reduced scale (see DESIGN.md);
// -scale multiplies the linear mesh resolution. Results print to stdout;
// -outdir additionally writes CSV/text artifacts.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"eul3d/internal/machine"
	"eul3d/internal/partition"
	"eul3d/internal/tables"
)

func main() {
	var (
		only   = flag.String("only", "", "run a single experiment: 1a,1b,1c,2a,2b,2c,fig1,fig2,fig3,fig4,claims,t2s (default: all; t2s only on request)")
		scale  = flag.Float64("scale", 1, "linear mesh-resolution multiplier for the tables")
		cycles = flag.Int("cycles", 0, "override cycle count (0 = paper's 100 for tables, 300 for figures)")
		outdir = flag.String("outdir", "", "directory for CSV/text artifacts (optional)")
		nodes  = flag.String("nodes", "256,512", "comma-separated Delta node counts for Tables 2a-2c")
	)
	flag.Parse()

	want := func(id string) bool { return *only == "" || *only == id }
	emit := func(name, content string) {
		fmt.Println(content)
		if *outdir != "" {
			if err := os.MkdirAll(*outdir, 0o755); err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(*outdir, name), []byte(content), 0o644); err != nil {
				log.Fatal(err)
			}
		}
	}

	cfg := tables.DefaultConfig().Scale(*scale)
	if *cycles > 0 {
		cfg.Cycles = *cycles
	}

	var nodeCounts []int
	for _, s := range strings.Split(*nodes, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil {
			log.Fatalf("benchtables: bad -nodes entry %q", s)
		}
		nodeCounts = append(nodeCounts, n)
	}

	type tableSpec struct {
		id       string
		strategy tables.Strategy
	}
	t1 := []tableSpec{{"1a", tables.SingleGrid}, {"1b", tables.VCycle}, {"1c", tables.WCycle}}
	for _, ts := range t1 {
		if !want(ts.id) {
			continue
		}
		start := time.Now()
		t, err := tables.Table1(cfg, ts.strategy, &machine.C90)
		if err != nil {
			log.Fatalf("table %s: %v", ts.id, err)
		}
		body := fmt.Sprintf("Table %s: %sspeedup@16 = %.1f, CPU-time inflation @16 = %.1f%%  (generated in %v)\n",
			ts.id, t.String(), t.Speedup(), 100*t.CPUInflation(), time.Since(start).Round(time.Millisecond))
		emit("table"+ts.id+".txt", body)
	}

	t2 := []tableSpec{{"2a", tables.SingleGrid}, {"2b", tables.VCycle}, {"2c", tables.WCycle}}
	for _, ts := range t2 {
		if !want(ts.id) {
			continue
		}
		start := time.Now()
		t, err := tables.Table2(cfg, ts.strategy, nodeCounts, partition.Spectral, &machine.Delta)
		if err != nil {
			log.Fatalf("table %s: %v", ts.id, err)
		}
		body := fmt.Sprintf("Table %s: %s(generated in %v)\n", ts.id, t.String(), time.Since(start).Round(time.Millisecond))
		emit("table"+ts.id+".txt", body)
	}

	if want("fig1") {
		emit("figure1.txt", "Figure 1:\n"+tables.Figure1())
	}

	var fig2 *tables.Figure2Result
	if want("fig2") || want("fig4") {
		fcfg := tables.Figure2Config()
		if *cycles > 0 {
			fcfg.Cycles = *cycles
		}
		start := time.Now()
		var err error
		fig2, err = tables.Figure2(fcfg)
		if err != nil {
			log.Fatalf("figure 2: %v", err)
		}
		if want("fig2") {
			var b strings.Builder
			fmt.Fprintf(&b, "Figure 2: convergence over %d cycles (fine mesh %dx%dx%d cells, M=%.3f, alpha=%.3f)\n",
				fcfg.Cycles, fcfg.NX, fcfg.NY, fcfg.NZ, fcfg.Mach, fcfg.AlphaDeg)
			for _, name := range []string{"single grid", "multigrid V cycle", "multigrid W cycle"} {
				fmt.Fprintf(&b, "  %-18s residual reduced %.1f orders of magnitude (%.2f work units/cycle)\n",
					name, fig2.OrdersReduced(name), fig2.WorkUnit[name])
			}
			fmt.Fprintf(&b, "(generated in %v)\n", time.Since(start).Round(time.Millisecond))
			emit("figure2.txt", b.String())
			if *outdir != "" {
				if err := os.WriteFile(filepath.Join(*outdir, "figure2.csv"), []byte(fig2.CSV()), 0o644); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	if want("fig3") {
		s, err := tables.Figure3(cfg)
		if err != nil {
			log.Fatalf("figure 3: %v", err)
		}
		emit("figure3.txt", "Figure 3:\n"+s)
	}

	if *only == "t2s" { // expensive: runs Figure 2 plus all six tables
		// Time-to-solution headline: cycle counts from a convergence study
		// at the full table scale (the single-grid cycle count is strongly
		// size-dependent), per-cycle seconds from the machine-model tables.
		fcfg := cfg
		fcfg.Cycles = 300
		if *cycles > 0 {
			fcfg.Cycles = *cycles
		}
		f2, err := tables.Figure2(fcfg)
		if err != nil {
			log.Fatalf("t2s: %v", err)
		}
		t1 := map[tables.Strategy]*tables.C90Table{}
		t2 := map[tables.Strategy]*tables.DeltaTable{}
		for _, st := range []tables.Strategy{tables.SingleGrid, tables.VCycle, tables.WCycle} {
			a, err := tables.Table1(cfg, st, &machine.C90)
			if err != nil {
				log.Fatalf("t2s: %v", err)
			}
			t1[st] = a
			b, err := tables.Table2(cfg, st, nodeCounts[len(nodeCounts)-1:], partition.Spectral, &machine.Delta)
			if err != nil {
				log.Fatalf("t2s: %v", err)
			}
			t2[st] = b
		}
		tts := tables.ComputeTimeToSolution(f2, 6, t1, t2)
		emit("time_to_solution.txt", tts.String())
	}

	if want("claims") {
		start := time.Now()
		c, err := tables.MeasureClaims(tables.ClaimsConfig(), 64)
		if err != nil {
			log.Fatalf("claims: %v", err)
		}
		emit("claims.txt", c.String()+fmt.Sprintf("(generated in %v)\n", time.Since(start).Round(time.Millisecond)))
	}

	if want("fig4") {
		f := tables.Figure4(fig2.WSolver, 78, 24)
		body := "Figure 4: Mach contours on the mid-span plane\n" + f.ASCII()
		emit("figure4.txt", body)
		if *outdir != "" {
			if err := os.WriteFile(filepath.Join(*outdir, "figure4.csv"), []byte(f.CSV()), 0o644); err != nil {
				log.Fatal(err)
			}
		}
	}
}
