// Command meshgen generates bump-channel tetrahedral meshes (optionally a
// whole multigrid sequence, optionally regularly refined), validates them,
// reports statistics and shape quality, and writes them as binary mesh
// files for cmd/eul3d to consume — the sequential preprocessing phase of
// Section 2.4.
package main

import (
	"flag"
	"fmt"
	"log"

	"eul3d/internal/mesh"
	"eul3d/internal/meshgen"
	"eul3d/internal/meshio"
	"eul3d/internal/refine"
)

func main() {
	var (
		nx     = flag.Int("nx", 32, "cells in x")
		ny     = flag.Int("ny", 16, "cells in y")
		nz     = flag.Int("nz", 12, "cells in z")
		levels = flag.Int("levels", 1, "multigrid levels to generate (finest first)")
		bump   = flag.Float64("bump", 0.06, "bump height as a fraction of channel height")
		jitter = flag.Float64("jitter", 0.12, "interior node jitter fraction")
		seed   = flag.Int64("seed", 17, "jitter seed")
		ref    = flag.Int("refine", 0, "apply N rounds of regular refinement to the finest level")
		out    = flag.String("o", "", "output file prefix (writes <prefix>.L<level>.mesh); empty = stats only")
	)
	flag.Parse()

	spec := meshgen.DefaultChannel(*nx, *ny, *nz, *seed)
	spec.BumpHeight = *bump
	spec.Jitter = *jitter

	seq, err := meshgen.Sequence(spec, *levels)
	if err != nil {
		log.Fatalf("meshgen: %v", err)
	}
	for r := 0; r < *ref; r++ {
		refined, err := refine.Uniform(seq[0])
		if err != nil {
			log.Fatalf("meshgen: refine round %d: %v", r+1, err)
		}
		seq = append([]*mesh.Mesh{refined}, seq...)
	}

	for l, m := range seq {
		if err := m.Validate(1e-9); err != nil {
			log.Fatalf("meshgen: level %d invalid: %v", l, err)
		}
		s := m.ComputeStats()
		q := refine.Quality(m)
		fmt.Printf("level %d: %8d points %9d tets %9d edges %7d bfaces  quality min/mean %.3f/%.3f\n",
			l, s.NVert, s.NTet, s.NEdge, s.NBFace, q.Min, q.Mean)
		if *out != "" {
			path := fmt.Sprintf("%s.L%d.mesh", *out, l)
			if err := meshio.SaveMesh(path, m); err != nil {
				log.Fatalf("meshgen: %v", err)
			}
			fmt.Printf("         wrote %s\n", path)
		}
	}
}
