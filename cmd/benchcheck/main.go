// Command benchcheck lints recorded benchsm artifacts for the honesty
// contract `make bench-check` gates on: every series must have been run
// with GOMAXPROCS pinned to its worker count (gomaxprocs >= workers), and
// any series whose worker count exceeds the recording host's CPU count
// must be marked invalid — its workers were time-slicing cores, so its
// speedup is fiction. Exits nonzero naming every violation.
//
// Usage: benchcheck FILE...
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
)

type series struct {
	Workers    int  `json:"workers"`
	GOMAXPROCS int  `json:"gomaxprocs"`
	Valid      bool `json:"valid"`
}

type artifact struct {
	NumCPU    int      `json:"num_cpu"`
	Results   []series `json:"results"`
	Multigrid *struct {
		Results []series `json:"results"`
	} `json:"multigrid"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchcheck: ")
	if len(os.Args) < 2 {
		log.Fatal("usage: benchcheck FILE...")
	}
	bad := 0
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		var a artifact
		if err := json.Unmarshal(data, &a); err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		all := a.Results
		if a.Multigrid != nil {
			all = append(all, a.Multigrid.Results...)
		}
		if len(all) == 0 {
			log.Printf("%s: no benchmark series recorded", path)
			bad++
			continue
		}
		for _, s := range all {
			switch {
			case s.GOMAXPROCS < s.Workers:
				log.Printf("%s: series workers=%d ran at gomaxprocs=%d — not pinned; its timings are not a parallel measurement",
					path, s.Workers, s.GOMAXPROCS)
				bad++
			case s.Valid && a.NumCPU > 0 && s.Workers > a.NumCPU:
				log.Printf("%s: series workers=%d marked valid on a %d-CPU host — oversubscribed series must be invalid",
					path, s.Workers, a.NumCPU)
				bad++
			}
		}
	}
	if bad > 0 {
		log.Fatalf("%d violation(s)", bad)
	}
	fmt.Printf("benchcheck: %d file(s) ok\n", len(os.Args)-1)
}
