// Command benchsm benchmarks the shared-memory worker-pool solver across a
// range of worker counts and writes the results as JSON (the artifact
// behind `make bench`). For each worker count it reports the wall clock
// per time step, the analytic computational rate (counted flops / measured
// seconds, the paper's Mflops methodology), the speedup relative to one
// worker, and the per-step allocation count — which the pool engine keeps
// at zero. With -levels > 1 a second series benchmarks full FAS multigrid
// cycles on the same worker pool (per-cycle wall clock, Mflops from the
// analytic cycle flop count, speedup, allocations), against a serial
// multigrid reference timed on the same meshes.
//
// Honesty contract: every series pins runtime.GOMAXPROCS to its worker
// count and records the effective value per result. A series asking for
// more workers than the host has CPUs cannot demonstrate parallel speedup
// — the workers time-slice one another — so it is marked "valid": false
// and excluded from speedup baselines (and rejected outright under
// -strict, the mode `make bench-check` gates on). An earlier revision of
// this tool ran every series at the parent's GOMAXPROCS (recorded once,
// globally), which silently produced a BENCH_smsolver.json full of ~1.0×
// "speedups" measured on a single scheduled core.
//
// Usage:
//
//	benchsm -nx 24 -ny 12 -nz 8 -steps 40 -workers auto -out BENCH_smsolver.json
//	benchsm -levels 3 -gamma 2 -cycles 20 -strict
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"eul3d/internal/euler"
	"eul3d/internal/flops"
	"eul3d/internal/meshgen"
	"eul3d/internal/multigrid"
	"eul3d/internal/smsolver"
	"eul3d/internal/trace"
)

type workerResult struct {
	Workers       int     `json:"workers"`
	GOMAXPROCS    int     `json:"gomaxprocs"` // effective GOMAXPROCS while this series ran
	Valid         bool    `json:"valid"`      // false when the host has fewer CPUs than workers
	NsPerStep     int64   `json:"ns_per_step"`
	Mflops        float64 `json:"mflops"`
	SpeedupVs1    float64 `json:"speedup_vs_1"`
	AllocsPerStep float64 `json:"allocs_per_step"`
}

type mgWorkerResult struct {
	Workers        int     `json:"workers"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
	Valid          bool    `json:"valid"`
	NsPerCycle     int64   `json:"ns_per_cycle"`
	Mflops         float64 `json:"mflops"`
	SpeedupVs1     float64 `json:"speedup_vs_1"`
	SpeedupVsSer   float64 `json:"speedup_vs_serial"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
}

type mgSeries struct {
	Levels         int              `json:"levels"`
	Gamma          int              `json:"gamma"`
	Cycles         int              `json:"cycles"`
	FlopsPerCycle  int64            `json:"flops_per_cycle"`
	SerialNsPerCyc int64            `json:"serial_ns_per_cycle"` // multigrid.Solver reference
	Results        []mgWorkerResult `json:"results"`
}

type report struct {
	Mesh struct {
		NX, NY, NZ int   `json:"-"`
		Vertices   int   `json:"vertices"`
		Edges      int   `json:"edges"`
		Tets       int   `json:"tets"`
		Seed       int64 `json:"seed"`
	} `json:"mesh"`
	NumCPU        int            `json:"num_cpu"`
	Steps         int            `json:"steps"`
	FlopsPerStep  int64          `json:"flops_per_step"`
	SerialNsPerSt int64          `json:"serial_ns_per_step"` // euler.Disc reference
	Results       []workerResult `json:"results"`
	Multigrid     *mgSeries      `json:"multigrid,omitempty"`
}

func main() {
	var (
		nx      = flag.Int("nx", 24, "mesh cells in x")
		ny      = flag.Int("ny", 12, "mesh cells in y")
		nz      = flag.Int("nz", 8, "mesh cells in z")
		seed    = flag.Int64("seed", 17, "mesh jitter seed")
		steps   = flag.Int("steps", 40, "timed steps per worker count")
		warmup  = flag.Int("warmup", 5, "untimed warm-up steps per worker count")
		workers = flag.String("workers", "auto", `comma-separated worker counts, or "auto" for doubling counts up to the host CPU count`)
		levels  = flag.Int("levels", 3, "multigrid levels for the pooled-multigrid series (<2 = skip)")
		gamma   = flag.Int("gamma", 2, "multigrid cycle index (1 = V, 2 = W)")
		cycles  = flag.Int("cycles", 20, "timed multigrid cycles per worker count")
		strict  = flag.Bool("strict", false, "exit nonzero instead of recording a series with workers > host CPUs")
		out     = flag.String("out", "BENCH_smsolver.json", "output JSON path")
		trcPath = flag.String("trace", "", "after the sweep, run a short traced burst at the highest worker count and write the Chrome trace timeline here")
	)
	flag.Parse()

	ncpu := runtime.NumCPU()
	spec := meshgen.DefaultChannel(*nx, *ny, *nz, *seed)
	m, err := meshgen.Channel(spec)
	if err != nil {
		log.Fatalf("benchsm: %v", err)
	}
	p := euler.DefaultParams(0.675, 0)

	var rep report
	rep.Mesh.Vertices, rep.Mesh.Edges, rep.Mesh.Tets = m.NV(), m.NE(), m.NT()
	rep.Mesh.Seed = *seed
	rep.NumCPU = ncpu
	rep.Steps = *steps
	rep.FlopsPerStep = flops.Step(int64(m.NV()), int64(m.NE()), int64(len(m.BFaces)),
		len(p.Stages), euler.DissipStages, p.NSmooth)

	workerList, err := parseWorkers(*workers, ncpu)
	if err != nil {
		log.Fatalf("benchsm: %v", err)
	}
	if *strict {
		for _, nw := range workerList {
			if nw > ncpu {
				log.Fatalf("benchsm: -strict: series workers=%d exceeds host CPU count %d — "+
					"its speedups would be fiction; drop the series or run on a bigger machine", nw, ncpu)
			}
		}
	}

	fmt.Printf("mesh: %d vertices, %d edges (host CPUs: %d)\n", m.NV(), m.NE(), ncpu)

	// Serial single-grid reference: the sequential euler.Disc stepper, no
	// pool, no colors — the baseline the paper's speedups are against.
	serialStep := func() int64 {
		d := euler.NewDisc(m, p)
		ws := euler.NewStepWorkspace(m.NV())
		w := make([]euler.State, m.NV())
		d.InitUniform(w)
		for i := 0; i < *warmup; i++ {
			d.Step(w, nil, ws)
		}
		t0 := time.Now()
		for i := 0; i < *steps; i++ {
			d.Step(w, nil, ws)
		}
		return time.Since(t0).Nanoseconds() / int64(*steps)
	}
	rep.SerialNsPerSt = serialStep()
	fmt.Printf("serial reference: %d ns/step\n", rep.SerialNsPerSt)
	fmt.Printf("%8s %11s %6s %14s %10s %10s %8s\n",
		"workers", "gomaxprocs", "valid", "ns/step", "Mflops", "speedup", "allocs")

	var base float64
	for _, nw := range workerList {
		// Pin the scheduler to the series' worker count: speedup at nw
		// workers is only meaningful when nw cores may actually run them.
		runtime.GOMAXPROCS(nw)
		gmp := runtime.GOMAXPROCS(0)
		valid := nw <= ncpu

		s, err := smsolver.New(m, p, nw)
		if err != nil {
			log.Fatalf("benchsm: %v", err)
		}
		w := make([]euler.State, m.NV())
		s.InitUniform(w)
		for i := 0; i < *warmup; i++ {
			s.Step(w, nil)
		}
		t0 := time.Now()
		for i := 0; i < *steps; i++ {
			s.Step(w, nil)
		}
		elapsed := time.Since(t0)
		allocs := testing.AllocsPerRun(3, func() { s.Step(w, nil) })
		s.Close()

		r := workerResult{
			Workers:       nw,
			GOMAXPROCS:    gmp,
			Valid:         valid,
			NsPerStep:     elapsed.Nanoseconds() / int64(*steps),
			AllocsPerStep: allocs,
		}
		perStep := elapsed.Seconds() / float64(*steps)
		r.Mflops = float64(rep.FlopsPerStep) / perStep / 1e6
		if base == 0 && valid && nw == 1 {
			base = perStep
		}
		if base != 0 {
			r.SpeedupVs1 = base / perStep
		}
		rep.Results = append(rep.Results, r)
		note := ""
		if !valid {
			note = "  INVALID: oversubscribed (host has only " + strconv.Itoa(ncpu) + " CPUs)"
		}
		fmt.Printf("%8d %11d %6v %14d %10.0f %10.2f %8.0f%s\n",
			r.Workers, r.GOMAXPROCS, r.Valid, r.NsPerStep, r.Mflops, r.SpeedupVs1, r.AllocsPerStep, note)
	}

	if *levels > 1 {
		seq, err := meshgen.Sequence(spec, *levels)
		if err != nil {
			log.Fatalf("benchsm: %v", err)
		}
		ser := &mgSeries{Levels: *levels, Gamma: *gamma, Cycles: *cycles}

		// Serial multigrid reference on the same mesh sequence — the bar a
		// pooled cycle must clear at every worker count.
		runtime.GOMAXPROCS(1)
		smg, err := multigrid.New(seq, p, *gamma)
		if err != nil {
			log.Fatalf("benchsm: %v", err)
		}
		for i := 0; i < *warmup; i++ {
			smg.Cycle()
		}
		t0 := time.Now()
		for i := 0; i < *cycles; i++ {
			smg.Cycle()
		}
		ser.SerialNsPerCyc = time.Since(t0).Nanoseconds() / int64(*cycles)

		fmt.Printf("\npooled multigrid: %d levels, gamma=%d (serial reference: %d ns/cycle)\n",
			*levels, *gamma, ser.SerialNsPerCyc)
		fmt.Printf("%8s %11s %6s %14s %10s %10s %10s %8s\n",
			"workers", "gomaxprocs", "valid", "ns/cycle", "Mflops", "speedup", "vs-serial", "allocs")
		var mgBase float64
		for _, nw := range workerList {
			runtime.GOMAXPROCS(nw)
			gmp := runtime.GOMAXPROCS(0)
			valid := nw <= ncpu

			mg, err := smsolver.NewMultigrid(seq, p, *gamma, nw)
			if err != nil {
				log.Fatalf("benchsm: %v", err)
			}
			ser.FlopsPerCycle = mg.CycleFlops()
			for i := 0; i < *warmup; i++ {
				mg.Cycle()
			}
			t0 := time.Now()
			for i := 0; i < *cycles; i++ {
				mg.Cycle()
			}
			elapsed := time.Since(t0)
			allocs := testing.AllocsPerRun(3, func() { mg.Cycle() })
			mg.Close()

			r := mgWorkerResult{
				Workers:        nw,
				GOMAXPROCS:     gmp,
				Valid:          valid,
				NsPerCycle:     elapsed.Nanoseconds() / int64(*cycles),
				AllocsPerCycle: allocs,
			}
			perCycle := elapsed.Seconds() / float64(*cycles)
			r.Mflops = float64(ser.FlopsPerCycle) / perCycle / 1e6
			if mgBase == 0 && valid && nw == 1 {
				mgBase = perCycle
			}
			if mgBase != 0 {
				r.SpeedupVs1 = mgBase / perCycle
			}
			r.SpeedupVsSer = float64(ser.SerialNsPerCyc) / 1e9 / perCycle
			ser.Results = append(ser.Results, r)
			note := ""
			if !valid {
				note = "  INVALID: oversubscribed"
			}
			fmt.Printf("%8d %11d %6v %14d %10.0f %10.2f %10.2f %8.0f%s\n",
				r.Workers, r.GOMAXPROCS, r.Valid, r.NsPerCycle, r.Mflops, r.SpeedupVs1, r.SpeedupVsSer, r.AllocsPerCycle, note)
		}
		rep.Multigrid = ser
	}

	// The benchmark sweep itself runs untraced (the numbers above are the
	// product); a separate short burst at the highest worker count records
	// the per-worker timeline for inspection in Perfetto.
	if *trcPath != "" {
		nw := workerList[len(workerList)-1]
		runtime.GOMAXPROCS(nw)
		s, err := smsolver.New(m, p, nw)
		if err != nil {
			log.Fatalf("benchsm: %v", err)
		}
		tr := trace.New(1 << 14)
		s.SetTrace(tr)
		w := make([]euler.State, m.NV())
		s.InitUniform(w)
		for i := 0; i < 5; i++ {
			s.Step(w, nil)
		}
		s.Close()
		if err := tr.WriteChromeFile(*trcPath); err != nil {
			log.Fatalf("benchsm: %v", err)
		}
		fmt.Printf("trace of 5 steps at %d workers written to %s\n", nw, *trcPath)
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		log.Fatalf("benchsm: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatalf("benchsm: %v", err)
	}
	fmt.Printf("written to %s\n", *out)
}

// parseWorkers expands the -workers flag: either an explicit
// comma-separated list, or "auto" — doubling counts 1,2,4,... up to and
// including the host CPU count, so the sweep never asks for a series the
// host cannot honestly run.
func parseWorkers(spec string, ncpu int) ([]int, error) {
	if strings.TrimSpace(spec) == "auto" {
		var list []int
		for nw := 1; nw < ncpu; nw *= 2 {
			list = append(list, nw)
		}
		return append(list, ncpu), nil
	}
	var list []int
	for _, tok := range strings.Split(spec, ",") {
		nw, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || nw < 1 {
			return nil, fmt.Errorf("bad -workers entry %q", tok)
		}
		list = append(list, nw)
	}
	return list, nil
}
