// Command benchsm benchmarks the shared-memory worker-pool solver across a
// range of worker counts and writes the results as JSON (the artifact
// behind `make bench`). For each worker count it reports the wall clock
// per time step, the analytic computational rate (counted flops / measured
// seconds, the paper's Mflops methodology), the speedup relative to one
// worker, and the per-step allocation count — which the pool engine keeps
// at zero. With -levels > 1 a second series benchmarks full FAS multigrid
// cycles on the same worker pool (per-cycle wall clock, Mflops from the
// analytic cycle flop count, speedup, allocations).
//
// Usage:
//
//	benchsm -nx 24 -ny 12 -nz 8 -steps 40 -workers 1,2,4,8 -out BENCH_smsolver.json
//	benchsm -levels 3 -gamma 2 -cycles 20
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"eul3d/internal/euler"
	"eul3d/internal/flops"
	"eul3d/internal/meshgen"
	"eul3d/internal/smsolver"
	"eul3d/internal/trace"
)

type workerResult struct {
	Workers       int     `json:"workers"`
	NsPerStep     int64   `json:"ns_per_step"`
	Mflops        float64 `json:"mflops"`
	SpeedupVs1    float64 `json:"speedup_vs_1"`
	AllocsPerStep float64 `json:"allocs_per_step"`
}

type mgWorkerResult struct {
	Workers        int     `json:"workers"`
	NsPerCycle     int64   `json:"ns_per_cycle"`
	Mflops         float64 `json:"mflops"`
	SpeedupVs1     float64 `json:"speedup_vs_1"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
}

type mgSeries struct {
	Levels        int              `json:"levels"`
	Gamma         int              `json:"gamma"`
	Cycles        int              `json:"cycles"`
	FlopsPerCycle int64            `json:"flops_per_cycle"`
	Results       []mgWorkerResult `json:"results"`
}

type report struct {
	Mesh struct {
		NX, NY, NZ int   `json:"-"`
		Vertices   int   `json:"vertices"`
		Edges      int   `json:"edges"`
		Tets       int   `json:"tets"`
		Seed       int64 `json:"seed"`
	} `json:"mesh"`
	GOMAXPROCS   int            `json:"gomaxprocs"`
	Steps        int            `json:"steps"`
	FlopsPerStep int64          `json:"flops_per_step"`
	Results      []workerResult `json:"results"`
	Multigrid    *mgSeries      `json:"multigrid,omitempty"`
}

func main() {
	var (
		nx      = flag.Int("nx", 24, "mesh cells in x")
		ny      = flag.Int("ny", 12, "mesh cells in y")
		nz      = flag.Int("nz", 8, "mesh cells in z")
		seed    = flag.Int64("seed", 17, "mesh jitter seed")
		steps   = flag.Int("steps", 40, "timed steps per worker count")
		warmup  = flag.Int("warmup", 5, "untimed warm-up steps per worker count")
		workers = flag.String("workers", "1,2,4,8", "comma-separated worker counts")
		levels  = flag.Int("levels", 3, "multigrid levels for the pooled-multigrid series (<2 = skip)")
		gamma   = flag.Int("gamma", 2, "multigrid cycle index (1 = V, 2 = W)")
		cycles  = flag.Int("cycles", 20, "timed multigrid cycles per worker count")
		out     = flag.String("out", "BENCH_smsolver.json", "output JSON path")
		trcPath = flag.String("trace", "", "after the sweep, run a short traced burst at the highest worker count and write the Chrome trace timeline here")
	)
	flag.Parse()

	spec := meshgen.DefaultChannel(*nx, *ny, *nz, *seed)
	m, err := meshgen.Channel(spec)
	if err != nil {
		log.Fatalf("benchsm: %v", err)
	}
	p := euler.DefaultParams(0.675, 0)

	var rep report
	rep.Mesh.Vertices, rep.Mesh.Edges, rep.Mesh.Tets = m.NV(), m.NE(), m.NT()
	rep.Mesh.Seed = *seed
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Steps = *steps
	rep.FlopsPerStep = flops.Step(int64(m.NV()), int64(m.NE()), int64(len(m.BFaces)),
		len(p.Stages), euler.DissipStages, p.NSmooth)

	fmt.Printf("mesh: %d vertices, %d edges (GOMAXPROCS=%d)\n",
		m.NV(), m.NE(), rep.GOMAXPROCS)
	fmt.Printf("%8s %14s %10s %10s %8s\n", "workers", "ns/step", "Mflops", "speedup", "allocs")

	var workerList []int
	for _, tok := range strings.Split(*workers, ",") {
		nw, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || nw < 1 {
			log.Fatalf("benchsm: bad -workers entry %q", tok)
		}
		workerList = append(workerList, nw)
	}

	var base float64
	for _, nw := range workerList {
		s, err := smsolver.New(m, p, nw)
		if err != nil {
			log.Fatalf("benchsm: %v", err)
		}
		w := make([]euler.State, m.NV())
		s.InitUniform(w)
		for i := 0; i < *warmup; i++ {
			s.Step(w, nil)
		}
		t0 := time.Now()
		for i := 0; i < *steps; i++ {
			s.Step(w, nil)
		}
		elapsed := time.Since(t0)
		allocs := testing.AllocsPerRun(3, func() { s.Step(w, nil) })
		s.Close()

		r := workerResult{
			Workers:       nw,
			NsPerStep:     elapsed.Nanoseconds() / int64(*steps),
			AllocsPerStep: allocs,
		}
		perStep := elapsed.Seconds() / float64(*steps)
		r.Mflops = float64(rep.FlopsPerStep) / perStep / 1e6
		if base == 0 {
			base = perStep
		}
		r.SpeedupVs1 = base / perStep
		rep.Results = append(rep.Results, r)
		fmt.Printf("%8d %14d %10.0f %10.2f %8.0f\n",
			r.Workers, r.NsPerStep, r.Mflops, r.SpeedupVs1, r.AllocsPerStep)
	}

	if *levels > 1 {
		seq, err := meshgen.Sequence(spec, *levels)
		if err != nil {
			log.Fatalf("benchsm: %v", err)
		}
		ser := &mgSeries{Levels: *levels, Gamma: *gamma, Cycles: *cycles}
		fmt.Printf("\npooled multigrid: %d levels, gamma=%d\n", *levels, *gamma)
		fmt.Printf("%8s %14s %10s %10s %8s\n", "workers", "ns/cycle", "Mflops", "speedup", "allocs")
		var mgBase float64
		for _, nw := range workerList {
			mg, err := smsolver.NewMultigrid(seq, p, *gamma, nw)
			if err != nil {
				log.Fatalf("benchsm: %v", err)
			}
			ser.FlopsPerCycle = mg.CycleFlops()
			for i := 0; i < *warmup; i++ {
				mg.Cycle()
			}
			t0 := time.Now()
			for i := 0; i < *cycles; i++ {
				mg.Cycle()
			}
			elapsed := time.Since(t0)
			allocs := testing.AllocsPerRun(3, func() { mg.Cycle() })
			mg.Close()

			r := mgWorkerResult{
				Workers:        nw,
				NsPerCycle:     elapsed.Nanoseconds() / int64(*cycles),
				AllocsPerCycle: allocs,
			}
			perCycle := elapsed.Seconds() / float64(*cycles)
			r.Mflops = float64(ser.FlopsPerCycle) / perCycle / 1e6
			if mgBase == 0 {
				mgBase = perCycle
			}
			r.SpeedupVs1 = mgBase / perCycle
			ser.Results = append(ser.Results, r)
			fmt.Printf("%8d %14d %10.0f %10.2f %8.0f\n",
				r.Workers, r.NsPerCycle, r.Mflops, r.SpeedupVs1, r.AllocsPerCycle)
		}
		rep.Multigrid = ser
	}

	// The benchmark sweep itself runs untraced (the numbers above are the
	// product); a separate short burst at the highest worker count records
	// the per-worker timeline for inspection in Perfetto.
	if *trcPath != "" {
		nw := workerList[len(workerList)-1]
		s, err := smsolver.New(m, p, nw)
		if err != nil {
			log.Fatalf("benchsm: %v", err)
		}
		tr := trace.New(1 << 14)
		s.SetTrace(tr)
		w := make([]euler.State, m.NV())
		s.InitUniform(w)
		for i := 0; i < 5; i++ {
			s.Step(w, nil)
		}
		s.Close()
		if err := tr.WriteChromeFile(*trcPath); err != nil {
			log.Fatalf("benchsm: %v", err)
		}
		fmt.Printf("trace of 5 steps at %d workers written to %s\n", nw, *trcPath)
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		log.Fatalf("benchsm: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatalf("benchsm: %v", err)
	}
	fmt.Printf("written to %s\n", *out)
}
