package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeSmoke is the end-to-end serving smoke test behind `make
// serve-smoke`: build the eul3dd binary, start it on a random port, run a
// small channel-mesh job to completion, check /metrics, then interrupt an
// in-flight job with SIGTERM and verify the drain checkpoint resumes to
// completion on restart.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "eul3dd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building eul3dd: %v\n%s", err, out)
	}
	stateDir := t.TempDir()

	srv := startServer(t, bin, stateDir)

	// 1. A small shared-memory job runs to completion.
	id := submit(t, srv.base, `{"mesh":{"nx":8,"ny":4,"nz":3,"seed":17},"mach":0.5,"alpha":1.0,
		"engine":"sm","workers":2,"cycles":40}`)
	v := pollUntil(t, srv.base, id, 30*time.Second, "completed")
	if v.Cycles != 40 {
		t.Fatalf("smoke job ran %d cycles, want 40", v.Cycles)
	}

	// 2. /metrics reflects the completed job and the governor cap.
	body := httpGet(t, srv.base+"/metrics")
	for _, want := range []string{
		"eul3dd_jobs_completed_total 1",
		"eul3dd_worker_budget 8",
		"eul3dd_engine_builds_total 1",
		"eul3dd_engine_mflops",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	if m := regexp.MustCompile(`(?m)^eul3dd_workers_peak (\d+)`).FindStringSubmatch(body); m == nil {
		t.Error("workers_peak missing from /metrics")
	} else if peak, _ := strconv.Atoi(m[1]); peak > 8 {
		t.Errorf("workers_peak %d exceeds budget 8", peak)
	}

	// 3. Start a longer job, let it make progress, SIGTERM the server.
	longID := submit(t, srv.base, `{"mesh":{"nx":10,"ny":5,"nz":4,"seed":3},"mach":0.5,
		"engine":"sm","workers":2,"cycles":3000}`)
	waitProgress(t, srv.base, longID, 10)
	if err := srv.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := srv.wait(30 * time.Second); err != nil {
		t.Fatalf("server did not exit cleanly after SIGTERM: %v", err)
	}
	if _, err := os.Stat(filepath.Join(stateDir, longID+".ckpt")); err != nil {
		t.Fatalf("drain checkpoint missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(stateDir, longID+".job.json")); err != nil {
		t.Fatalf("drain sidecar missing: %v", err)
	}

	// 4. Restart on the same state dir: the job resumes under its ID and
	// finishes all 3000 cycles.
	srv2 := startServer(t, bin, stateDir)
	v = pollUntil(t, srv2.base, longID, 120*time.Second, "completed")
	if v.Cycles != 3000 {
		t.Fatalf("resumed job ran %d cycles, want 3000", v.Cycles)
	}
	body = httpGet(t, srv2.base+"/metrics")
	if !strings.Contains(body, "eul3dd_jobs_resumed_total 1") {
		t.Errorf("restarted server does not report the resumed job:\n%s", body)
	}
	srv2.cmd.Process.Signal(syscall.SIGTERM)
	srv2.wait(30 * time.Second)
}

type server struct {
	cmd  *exec.Cmd
	base string
	done chan struct{} // closed when the process exits; exit error in err
	err  error
}

func (s *server) wait(d time.Duration) error {
	select {
	case <-s.done:
		return s.err
	case <-time.After(d):
		s.cmd.Process.Kill()
		return fmt.Errorf("timeout after %s", d)
	}
}

// startServer launches eul3dd on a random port and parses the port from
// its "listening on" line.
func startServer(t *testing.T, bin, stateDir string) *server {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-state-dir", stateDir,
		"-queue-cap", "8", "-runners", "2", "-worker-budget", "8")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	s := &server{cmd: cmd, done: make(chan struct{})}
	t.Cleanup(func() { cmd.Process.Kill(); <-s.done })
	go func() { s.err = cmd.Wait(); close(s.done) }()

	sc := bufio.NewScanner(stdout)
	linec := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if strings.Contains(line, "listening on") {
				linec <- line
				break
			}
		}
		// Drain the rest so the child never blocks on a full pipe.
		io.Copy(io.Discard, stdout)
	}()
	select {
	case line := <-linec:
		addr := line[strings.LastIndex(line, " ")+1:]
		s.base = "http://" + addr
	case <-time.After(20 * time.Second):
		t.Fatal("server did not announce its address")
	}
	// Wait for /healthz before use.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if resp, err := http.Get(s.base + "/healthz"); err == nil {
			resp.Body.Close()
			return s
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("server never became healthy")
	return nil
}

type jobView struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Cycles int    `json:"cycles"`
	Error  string `json:"error"`
}

func submit(t *testing.T, base, body string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/solve", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /v1/solve: %d %s", resp.StatusCode, b)
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v.ID
}

func getView(t *testing.T, base, id string) jobView {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func pollUntil(t *testing.T, base, id string, timeout time.Duration, want string) jobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var v jobView
	for time.Now().Before(deadline) {
		v = getView(t, base, id)
		if v.State == want {
			return v
		}
		if v.State == "failed" {
			t.Fatalf("job %s failed: %s", id, v.Error)
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("job %s stuck in %q (want %q)", id, v.State, want)
	return v
}

func waitProgress(t *testing.T, base, id string, cycles int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if getView(t, base, id).Cycles >= cycles {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s made no progress", id)
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}
