// Command eul3dd is the solver-as-a-service daemon: an HTTP front end
// over internal/serve's job scheduler and engine cache. Solve requests
// are queued with priorities and deadlines, run on cached engines (mesh +
// discretization + colorings + parked worker pool, shared across jobs of
// the same mesh), and observed or cancelled mid-flight. On SIGTERM the
// server drains gracefully: in-flight jobs are checkpointed to -state-dir
// in the standard meshio format and resume — bitwise identically — when
// the server restarts.
//
// Usage:
//
//	eul3dd -addr :8080 -state-dir /var/lib/eul3dd
//
//	curl -s localhost:8080/v1/solve -d '{"mesh":{"nx":16,"ny":8,"nz":6,"seed":17},
//	    "mach":0.768,"alpha":1.116,"engine":"sm","workers":4,"cycles":200}'
//	curl -s localhost:8080/v1/jobs/<id>
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"eul3d/internal/serve"
	"eul3d/internal/store"
	"eul3d/internal/trace"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address (host:0 picks a random port)")
		queueCap     = flag.Int("queue-cap", 16, "queued jobs admitted before 429s")
		runners      = flag.Int("runners", 2, "jobs solving concurrently")
		workerBudget = flag.Int("worker-budget", 8, "total pooled workers across concurrent jobs")
		cacheCap     = flag.Int("cache-cap", 4, "idle engines kept warm")
		stateDir     = flag.String("state-dir", "", "drain checkpoints + resume sidecars (empty disables resume)")
		ckptEvery    = flag.Int("checkpoint-every", 0, "checkpoint running jobs every N cycles (with -state-dir; survives SIGKILL, enables cluster handoff)")
		artDir       = flag.String("artifact-dir", "", "artifact-store disk tier (empty keeps uploads in memory only)")
		artMemMB     = flag.Int("artifact-mem-mb", 256, "artifact-store memory budget in MiB")
		artDiskMB    = flag.Int("artifact-disk-mb", 2048, "artifact-store disk budget in MiB (with -artifact-dir)")
		drainWait    = flag.Duration("drain-timeout", 30*time.Second, "grace period for SIGTERM drain")
		quiet        = flag.Bool("quiet", false, "suppress per-job logging")
		doTrace      = flag.Bool("trace", false, "enable the flight recorder; dump it as Chrome trace JSON at GET /debug/trace")
		traceRing    = flag.Int("trace-ring", 4096, "flight-recorder events retained per track (with -trace)")
		debug        = flag.Bool("debug", false, "expose Go profiling endpoints under /debug/pprof/")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "eul3dd: ", log.LstdFlags)
	if *quiet {
		logger.SetOutput(io.Discard)
	}
	if *stateDir != "" {
		if err := os.MkdirAll(*stateDir, 0o755); err != nil {
			logger.Fatal(err)
		}
	}

	var tracer *trace.Tracer
	if *doTrace {
		tracer = trace.New(*traceRing)
	}
	art, err := store.New(store.Config{
		Dir:        *artDir,
		MemBudget:  int64(*artMemMB) << 20,
		DiskBudget: int64(*artDiskMB) << 20,
	})
	if err != nil {
		logger.Fatalf("opening artifact store: %v", err)
	}
	sched := serve.NewScheduler(serve.Config{
		QueueCap:        *queueCap,
		Runners:         *runners,
		WorkerBudget:    *workerBudget,
		CacheCap:        *cacheCap,
		StateDir:        *stateDir,
		CheckpointEvery: *ckptEvery,
		Store:           art,
		Log:             logger,
		Trace:           tracer,
	})
	if n, err := sched.Recover(); err != nil {
		logger.Fatalf("recovering state dir: %v", err)
	} else if n > 0 {
		logger.Printf("resumed %d interrupted job(s) from %s", n, *stateDir)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	// The listening line goes to stdout unconditionally so wrappers (and
	// the smoke test) can discover a randomly chosen port.
	fmt.Printf("eul3dd listening on %s\n", ln.Addr())
	os.Stdout.Sync()

	var handler http.Handler = serve.NewAPI(sched).Handler()
	if *debug {
		// Mount the API beside the Go profiling endpoints; with the
		// pprof.Labels the scheduler sets on solver goroutines, CPU and
		// goroutine profiles break down by job and engine.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		logger.Printf("profiling endpoints enabled under /debug/pprof/")
	}
	srv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		logger.Printf("%s: draining (checkpointing in-flight jobs)", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		done := make(chan struct{})
		go func() { sched.Drain(); close(done) }()
		select {
		case <-done:
			logger.Printf("drain complete")
		case <-ctx.Done():
			logger.Printf("drain timed out after %s", *drainWait)
		}
		srv.Shutdown(ctx)
		cancel()
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Fatal(err)
		}
	}
}
