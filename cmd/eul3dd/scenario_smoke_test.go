package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"eul3d/internal/scenario"
)

// scenarioView is jobView plus the diagnostics block that scenario jobs
// carry in their JSON view.
type scenarioView struct {
	jobView
	Diagnostics *scenario.Diagnostics `json:"diagnostics"`
}

// TestScenarioSmoke is the end-to-end scenario check behind `make
// scenario-smoke`: the Sod preset posted over HTTP must come back with an
// L1 density error under the committed tolerance on the sequential engine
// and on the pooled engine at every worker count — with the pooled
// diagnostics bitwise identical across worker counts.
func TestScenarioSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke test skipped in -short mode")
	}
	sod, err := scenario.Get("sod")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "eul3dd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building eul3dd: %v\n%s", err, out)
	}
	srv := startServer(t, bin, t.TempDir())

	run := func(body string) scenario.Diagnostics {
		t.Helper()
		id := submit(t, srv.base, body)
		pollUntil(t, srv.base, id, 60*time.Second, "completed")
		resp, err := http.Get(srv.base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var v scenarioView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		if v.Diagnostics == nil {
			t.Fatalf("job %s completed without diagnostics", id)
		}
		return *v.Diagnostics
	}

	seq := run(`{"scenario":"sod"}`)
	if err := sod.Check(seq); err != nil {
		t.Errorf("sequential engine: %v", err)
	}
	t.Logf("sequential: L1 %.6g (tolerance %g)", seq.L1Density, sod.L1Tol)

	var ref *scenario.Diagnostics
	for _, workers := range []int{1, 2, 8} {
		d := run(fmt.Sprintf(`{"scenario":"sod","engine":"sm","workers":%d}`, workers))
		if err := sod.Check(d); err != nil {
			t.Errorf("pooled engine, %d workers: %v", workers, err)
		}
		if ref == nil {
			ref = &d
		} else if *ref != d {
			t.Errorf("pooled diagnostics differ across worker counts:\n  w1: %+v\n  w%d: %+v", *ref, workers, d)
		}
	}
}
