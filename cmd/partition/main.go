// Command partition partitions a bump-channel mesh across simulated
// processors with the paper's recursive spectral bisection (or the cheaper
// inertial / BFS-greedy baselines) and prints the quality report: edge cut,
// imbalance, boundary fraction, and the PARTI communication schedule the
// partition induces. It also times the partitioner relative to the flow
// solution, reproducing the paper's observation that spectral partitioning
// costs as much as a whole flow solve.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"eul3d/internal/flops"
	"eul3d/internal/graph"
	"eul3d/internal/machine"
	"eul3d/internal/meshgen"
	"eul3d/internal/parti"
	"eul3d/internal/partition"
)

func main() {
	var (
		nx     = flag.Int("nx", 32, "mesh cells in x")
		ny     = flag.Int("ny", 16, "mesh cells in y")
		nz     = flag.Int("nz", 12, "mesh cells in z")
		nparts = flag.Int("parts", 16, "number of partitions")
		method = flag.String("method", "spectral", "partitioner: spectral, inertial, greedy, or all (compare)")
		seed   = flag.Int64("seed", 17, "mesh and partitioner seed")
	)
	flag.Parse()

	m, err := meshgen.Channel(meshgen.DefaultChannel(*nx, *ny, *nz, *seed))
	if err != nil {
		log.Fatalf("partition: %v", err)
	}
	fmt.Printf("mesh: %d points, %d edges\n", m.NV(), m.NE())
	g, err := graph.FromEdges(m.NV(), m.Edges)
	if err != nil {
		log.Fatalf("partition: %v", err)
	}

	methods := map[string][]partition.Method{
		"spectral": {partition.Spectral},
		"inertial": {partition.Inertial},
		"greedy":   {partition.BFSGreedy},
		"all":      {partition.Spectral, partition.Inertial, partition.BFSGreedy},
	}[*method]
	if methods == nil {
		log.Fatalf("partition: unknown method %q", *method)
	}
	if len(methods) > 1 {
		// Comparison mode: quality and cost side by side.
		for _, meth := range methods {
			start := time.Now()
			part, err := partition.Partition(g, m.X, *nparts, meth, *seed)
			if err != nil {
				log.Fatalf("partition: %v", err)
			}
			q := partition.Evaluate(part, m.Edges, *nparts)
			fmt.Printf("%-10s %v  [%v]\n", meth, q, time.Since(start).Round(time.Millisecond))
		}
		return
	}
	meth := methods[0]

	start := time.Now()
	part, err := partition.Partition(g, m.X, *nparts, meth, *seed)
	if err != nil {
		log.Fatalf("partition: %v", err)
	}
	elapsed := time.Since(start)

	q := partition.Evaluate(part, m.Edges, *nparts)
	fmt.Printf("method: %s\n%v\npartitioning time: %v\n", meth, q, elapsed)

	// Communication schedule this partition induces for the flow solver.
	dist, err := parti.NewDist(part, *nparts)
	if err != nil {
		log.Fatalf("partition: %v", err)
	}
	gs := parti.NewGhostSpace(dist)
	refs := make([][]int32, *nparts)
	for _, e := range m.Edges {
		p := part[e[0]]
		refs[p] = append(refs[p], e[0], e[1])
	}
	sched := parti.BuildSchedule(gs, refs)
	fmt.Printf("flow-variable schedule: %d ghost values, %d messages per exchange\n",
		sched.Items(), sched.Messages())

	// The paper: "the expense of the partitioning operation has been found
	// to be comparable to the cost of a sequential flow solution."
	stepFlops := flops.Step(int64(m.NV()), int64(m.NE()), int64(len(m.BFaces)), 5, 2, 2)
	seqStep := float64(stepFlops) / machine.C90.RInf
	fmt.Printf("one sequential C90 solver cycle ~%.3fs; partitioning cost ~%.0f cycles\n",
		seqStep, elapsed.Seconds()/seqStep)
}
