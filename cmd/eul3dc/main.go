// Command eul3dc is the cluster coordinator: an HTTP front end over
// internal/cluster that routes solve jobs across a fleet of eul3dd nodes.
// Jobs are consistent-hashed by engine-cache key so hot meshes pin to
// nodes with warm engines (cold jobs steal to the least-loaded node);
// every node is health-checked with liveness probes, a missed-beat
// threshold and a flap-quarantining circuit breaker; and running jobs'
// periodic checkpoints are pulled off their nodes so that when a node is
// SIGKILLed or drained its jobs resume — bitwise identically — on a
// surviving node. With no routable node the coordinator sheds load with
// Retry-After instead of queueing.
//
// Usage:
//
//	eul3dd -addr :8081 -state-dir /tmp/n1 -checkpoint-every 25 &
//	eul3dd -addr :8082 -state-dir /tmp/n2 -checkpoint-every 25 &
//	eul3dc -addr :8080 -nodes n1=http://127.0.0.1:8081,n2=http://127.0.0.1:8082
//
//	curl -s localhost:8080/v1/solve -d '{"mesh":{"nx":16,"ny":8,"nz":6,"seed":17},
//	    "mach":0.768,"alpha":1.116,"engine":"sm","workers":2,"cycles":500}'
//	curl -s localhost:8080/v1/nodes
//	curl -s localhost:8080/metrics
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"eul3d/internal/cluster"
	"eul3d/internal/trace"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address (host:0 picks a random port)")
		nodes     = flag.String("nodes", "", "comma-separated nodes, name=url or bare url (more can register via POST /v1/nodes)")
		heartbeat = flag.Duration("heartbeat", time.Second, "liveness probe period")
		probeTO   = flag.Duration("probe-timeout", 0, "per-probe budget (default heartbeat/2)")
		missBeats = flag.Int("miss-threshold", 3, "consecutive missed beats before a node is unhealthy")
		recover_  = flag.Int("recover-beats", 2, "good beats required before a failed node is routable again")
		fetchInt  = flag.Duration("fetch-interval", 250*time.Millisecond, "per-job view + checkpoint poll period")
		retries   = flag.Int("retry-budget", 5, "dispatch attempts per placement round")
		quiet     = flag.Bool("quiet", false, "suppress per-job logging")
		doTrace   = flag.Bool("trace", false, "enable the flight recorder; dump at GET /debug/trace")
		traceRing = flag.Int("trace-ring", 4096, "flight-recorder events retained per track (with -trace)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "eul3dc: ", log.LstdFlags)
	if *quiet {
		logger.SetOutput(io.Discard)
	}
	var tracer *trace.Tracer
	if *doTrace {
		tracer = trace.New(*traceRing)
	}
	coord := cluster.New(cluster.Config{
		HeartbeatInterval: *heartbeat,
		ProbeTimeout:      *probeTO,
		MissThreshold:     *missBeats,
		RecoverBeats:      *recover_,
		FetchInterval:     *fetchInt,
		RetryBudget:       *retries,
		Log:               logger,
		Trace:             tracer,
	})
	defer coord.Close()

	for i, spec := range splitNonEmpty(*nodes) {
		name, url := fmt.Sprintf("n%d", i+1), spec
		if eq := strings.IndexByte(spec, '='); eq >= 0 {
			name, url = spec[:eq], spec[eq+1:]
		}
		if err := coord.AddNode(name, url); err != nil {
			logger.Fatalf("registering node %s: %v", spec, err)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	// The listening line goes to stdout unconditionally so wrappers (and
	// the smoke test) can discover a randomly chosen port.
	fmt.Printf("eul3dc listening on %s\n", ln.Addr())
	os.Stdout.Sync()

	srv := &http.Server{Handler: cluster.NewAPI(coord).Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		logger.Printf("%s: shutting down", sig)
		srv.Close()
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Fatal(err)
		}
	}
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
