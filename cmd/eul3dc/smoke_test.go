package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// Heartbeat settings for the smoke cluster: a dead node must be marked
// unhealthy within missThreshold beats.
const (
	smokeHeartbeat     = 100 * time.Millisecond
	smokeMissThreshold = 3
)

// TestClusterSmoke is the end-to-end fault-tolerance smoke test behind
// `make cluster-smoke`: build eul3dd and eul3dc, start three nodes and a
// coordinator, submit jobs, kill -9 the node running the long job
// mid-solve, and require (a) the coordinator marks the dead node unhealthy
// within the heartbeat threshold, and (b) every job completes with results
// bitwise identical to a single-node reference run.
func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke test skipped in -short mode")
	}
	bindir := t.TempDir()
	ddBin := filepath.Join(bindir, "eul3dd")
	dcBin := filepath.Join(bindir, "eul3dc")
	if out, err := exec.Command("go", "build", "-o", ddBin, "../eul3dd").CombinedOutput(); err != nil {
		t.Fatalf("building eul3dd: %v\n%s", err, out)
	}
	if out, err := exec.Command("go", "build", "-o", dcBin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building eul3dc: %v\n%s", err, out)
	}

	longJob := `{"mesh":{"nx":8,"ny":4,"nz":3,"seed":17},"mach":0.5,"alpha":1.0,"engine":"sm","workers":2,"cycles":6000}`
	shortJobs := []string{
		`{"mesh":{"nx":6,"ny":3,"nz":2,"seed":1},"mach":0.5,"engine":"single","cycles":300}`,
		`{"mesh":{"nx":6,"ny":3,"nz":2,"seed":2},"mach":0.5,"engine":"single","cycles":300}`,
	}

	// Reference: the long job on a lone node, no failures.
	refNode := startProc(t, ddBin, "eul3dd", "-addr", "127.0.0.1:0", "-state-dir", t.TempDir(),
		"-queue-cap", "8", "-runners", "2", "-worker-budget", "8")
	refID := submitJob(t, refNode.base, longJob)
	refView := pollJob(t, refNode.base, refID, 120*time.Second, "completed")
	if len(refView.History) != 6000 {
		t.Fatalf("reference history has %d entries, want 6000", len(refView.History))
	}
	refNode.cmd.Process.Signal(syscall.SIGTERM)

	// The cluster: three checkpointing nodes plus the coordinator.
	nodes := map[string]*proc{}
	nodeFlags := make([]string, 0, 3)
	for i := 1; i <= 3; i++ {
		name := fmt.Sprintf("n%d", i)
		p := startProc(t, ddBin, "eul3dd", "-addr", "127.0.0.1:0", "-state-dir", t.TempDir(),
			"-queue-cap", "8", "-runners", "2", "-worker-budget", "8", "-checkpoint-every", "20")
		nodes[name] = p
		nodeFlags = append(nodeFlags, name+"="+p.base)
	}
	coord := startProc(t, dcBin, "eul3dc", "-addr", "127.0.0.1:0",
		"-nodes", strings.Join(nodeFlags, ","),
		"-heartbeat", smokeHeartbeat.String(),
		"-miss-threshold", fmt.Sprint(smokeMissThreshold),
		"-probe-timeout", "2s",
		"-fetch-interval", "25ms")

	waitForRoutable(t, coord.base, 3)

	longID := submitJob(t, coord.base, longJob)
	var shortIDs []string
	for _, body := range shortJobs {
		shortIDs = append(shortIDs, submitJob(t, coord.base, body))
	}

	// Wait until the coordinator holds a checkpoint for the long job, then
	// kill -9 the node running it.
	victim := waitForCheckpoint(t, coord.base, longID)
	t.Logf("killing node %s (SIGKILL) with job %s checkpointed", victim, longID)
	killedAt := time.Now()
	if err := nodes[victim].cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}

	// The dead node must show unhealthy in /metrics within the miss
	// threshold (plus one beat of phase slack and scheduling headroom).
	wantState := fmt.Sprintf("eul3dc_node_state{node=%q} 3", victim)
	wantUp := fmt.Sprintf("eul3dc_node_up{node=%q} 0", victim)
	detectBudget := time.Duration(smokeMissThreshold+1)*smokeHeartbeat + 2*time.Second
	for {
		body := httpGetBody(t, coord.base+"/metrics")
		if strings.Contains(body, wantState) {
			if !strings.Contains(body, wantUp) {
				t.Errorf("/metrics marks %s unhealthy but still up", victim)
			}
			t.Logf("node %s marked unhealthy after %v", victim, time.Since(killedAt))
			break
		}
		if time.Since(killedAt) > detectBudget {
			t.Fatalf("node %s not marked unhealthy within %v:\n%s", victim, detectBudget, body)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Every job still completes; the long one on a surviving node, bitwise
	// identical to the reference.
	v := pollJob(t, coord.base, longID, 180*time.Second, "completed")
	if v.Node == victim {
		t.Fatalf("long job reports completion on the killed node %s", victim)
	}
	if v.Handoffs < 1 {
		t.Errorf("long job handoffs = %d, want >= 1", v.Handoffs)
	}
	if len(v.History) != len(refView.History) {
		t.Fatalf("history length %d after handoff, want %d", len(v.History), len(refView.History))
	}
	for i := range refView.History {
		if v.History[i] != refView.History[i] {
			t.Fatalf("history diverges from reference at cycle %d: %v != %v",
				i, v.History[i], refView.History[i])
		}
	}
	for _, id := range shortIDs {
		sv := pollJob(t, coord.base, id, 120*time.Second, "completed")
		if sv.Cycles != 300 {
			t.Fatalf("job %s ran %d cycles, want 300", id, sv.Cycles)
		}
	}

	// Cluster counters reflect the failure story.
	body := httpGetBody(t, coord.base+"/metrics")
	for _, counter := range []string{
		"eul3dc_jobs_completed_total 3",
		"eul3dc_handoffs_total",
		"eul3dc_checkpoint_pulls_total",
	} {
		if !strings.Contains(body, counter) {
			t.Errorf("/metrics missing %q:\n%s", counter, body)
		}
	}
	if m := regexp.MustCompile(`(?m)^eul3dc_handoffs_total (\d+)`).FindStringSubmatch(body); m == nil || m[1] == "0" {
		t.Errorf("no handoffs counted:\n%s", body)
	}

	coord.cmd.Process.Signal(syscall.SIGTERM)
	for name, p := range nodes {
		if name != victim {
			p.cmd.Process.Signal(syscall.SIGTERM)
		}
	}
}

type proc struct {
	cmd  *exec.Cmd
	base string
	done chan struct{}
}

// startProc launches a binary that announces "<name> listening on <addr>"
// on stdout and waits until its /healthz answers.
func startProc(t *testing.T, bin, name string, args ...string) *proc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &proc{cmd: cmd, done: make(chan struct{})}
	go func() { cmd.Wait(); close(p.done) }()
	t.Cleanup(func() {
		cmd.Process.Kill()
		select {
		case <-p.done:
		case <-time.After(10 * time.Second):
		}
	})

	sc := bufio.NewScanner(stdout)
	linec := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if strings.Contains(line, "listening on") {
				linec <- line
				break
			}
		}
		io.Copy(io.Discard, stdout)
	}()
	select {
	case line := <-linec:
		p.base = "http://" + line[strings.LastIndex(line, " ")+1:]
	case <-time.After(30 * time.Second):
		t.Fatalf("%s did not announce its address", name)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if resp, err := http.Get(p.base + "/healthz"); err == nil {
			resp.Body.Close()
			return p
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("%s never became healthy", name)
	return nil
}

// clusterJobView mirrors the coordinator's job JSON (a superset of the
// node view: placement, handoffs, checkpoint progress, full history).
type clusterJobView struct {
	ID              string    `json:"id"`
	State           string    `json:"state"`
	Cycles          int       `json:"cycles"`
	History         []float64 `json:"history"`
	Error           string    `json:"error"`
	Node            string    `json:"node"`
	Handoffs        int       `json:"handoffs"`
	CheckpointCycle int       `json:"checkpoint_cycle"`
}

func submitJob(t *testing.T, base, body string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/solve", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /v1/solve: %d %s", resp.StatusCode, b)
	}
	var v clusterJobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v.ID
}

func getJobView(t *testing.T, base, id string) clusterJobView {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v clusterJobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func pollJob(t *testing.T, base, id string, timeout time.Duration, want string) clusterJobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var v clusterJobView
	for time.Now().Before(deadline) {
		v = getJobView(t, base, id)
		if v.State == want {
			return v
		}
		if v.State == "failed" {
			t.Fatalf("job %s failed: %s", id, v.Error)
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("job %s stuck in %q (want %q)", id, v.State, want)
	return v
}

// waitForCheckpoint polls the coordinator until it has pulled a checkpoint
// for the job and returns the node the job is running on.
func waitForCheckpoint(t *testing.T, base, id string) string {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		v := getJobView(t, base, id)
		if v.CheckpointCycle > 0 && v.Node != "" {
			return v.Node
		}
		if v.State == "completed" {
			t.Fatal("long job finished before a checkpoint was pulled; raise its cycle count")
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("no checkpoint pulled within 60s")
	return ""
}

func waitForRoutable(t *testing.T, base string, want int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		var h struct {
			Routable int `json:"routable"`
		}
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			json.NewDecoder(resp.Body).Decode(&h)
			resp.Body.Close()
			if h.Routable >= want {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("coordinator never saw %d routable nodes", want)
}

func httpGetBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}
