package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"eul3d/internal/meshgen"
	"eul3d/internal/meshio"
	"eul3d/internal/store"
)

// putArtifact uploads bytes to an artifact endpoint and returns the hash
// the server computed.
func putArtifact(t *testing.T, base string, data []byte) string {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, base+"/v1/artifacts", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("PUT %s/v1/artifacts: %d %s", base, resp.StatusCode, b)
	}
	var v struct {
		Hash string `json:"hash"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v.Hash
}

// TestStoreSmoke is the end-to-end artifact-store smoke test behind
// `make store-smoke`: upload a mesh once to the coordinator, solve it by
// hash (the coordinator pushes the blob to whichever node placement
// picks), kill -9 that node mid-solve, and require the job to finish on
// the survivor — mesh and checkpoint both moving as hash references —
// with a history bitwise identical to an uninterrupted reference run.
func TestStoreSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke test skipped in -short mode")
	}
	bindir := t.TempDir()
	ddBin := filepath.Join(bindir, "eul3dd")
	dcBin := filepath.Join(bindir, "eul3dc")
	if out, err := exec.Command("go", "build", "-o", ddBin, "../eul3dd").CombinedOutput(); err != nil {
		t.Fatalf("building eul3dd: %v\n%s", err, out)
	}
	if out, err := exec.Command("go", "build", "-o", dcBin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building eul3dc: %v\n%s", err, out)
	}

	// The mesh travels as bytes, never as generator parameters.
	ms, err := meshgen.Sequence(meshgen.DefaultChannel(8, 4, 3, 17), 1)
	if err != nil {
		t.Fatal(err)
	}
	meshBytes, err := meshio.EncodeMesh(ms[0])
	if err != nil {
		t.Fatal(err)
	}
	wantHash := store.Sum(meshBytes)
	jobFor := func(hash string) string {
		return fmt.Sprintf(`{"mesh":{"hash":%q},"mach":0.5,"alpha":1.0,"engine":"sm","workers":2,"cycles":6000}`, hash)
	}

	// Reference: the same by-hash solve on a lone unkilled node, plus the
	// conditional-GET contract on its completed view.
	refNode := startProc(t, ddBin, "eul3dd", "-addr", "127.0.0.1:0",
		"-queue-cap", "8", "-runners", "2", "-worker-budget", "8")
	if got := putArtifact(t, refNode.base, meshBytes); got != wantHash {
		t.Fatalf("reference node hashed the mesh as %s, want %s", got, wantHash)
	}
	refID := submitJob(t, refNode.base, jobFor(wantHash))
	refView := pollJob(t, refNode.base, refID, 120*time.Second, "completed")
	if len(refView.History) != 6000 {
		t.Fatalf("reference history has %d entries, want 6000", len(refView.History))
	}
	func() {
		req, _ := http.NewRequest(http.MethodGet, refNode.base+"/v1/jobs/"+refID, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		etag := resp.Header.Get("ETag")
		if etag == "" {
			t.Fatal("completed job view has no ETag")
		}
		req2, _ := http.NewRequest(http.MethodGet, refNode.base+"/v1/jobs/"+refID, nil)
		req2.Header.Set("If-None-Match", etag)
		resp2, err := http.DefaultClient.Do(req2)
		if err != nil {
			t.Fatal(err)
		}
		resp2.Body.Close()
		if resp2.StatusCode != http.StatusNotModified {
			t.Fatalf("conditional GET with matching ETag: %d, want 304", resp2.StatusCode)
		}
	}()
	refNode.cmd.Process.Signal(syscall.SIGTERM)

	// The cluster: two checkpointing nodes with disk-backed stores, one
	// coordinator. The mesh is uploaded to the coordinator exactly once.
	nodes := map[string]*proc{}
	nodeFlags := make([]string, 0, 2)
	for i := 1; i <= 2; i++ {
		name := fmt.Sprintf("n%d", i)
		p := startProc(t, ddBin, "eul3dd", "-addr", "127.0.0.1:0", "-state-dir", t.TempDir(),
			"-artifact-dir", t.TempDir(),
			"-queue-cap", "8", "-runners", "2", "-worker-budget", "8", "-checkpoint-every", "20")
		nodes[name] = p
		nodeFlags = append(nodeFlags, name+"="+p.base)
	}
	coord := startProc(t, dcBin, "eul3dc", "-addr", "127.0.0.1:0",
		"-nodes", strings.Join(nodeFlags, ","),
		"-heartbeat", smokeHeartbeat.String(),
		"-miss-threshold", fmt.Sprint(smokeMissThreshold),
		"-probe-timeout", "2s",
		"-fetch-interval", "25ms")
	waitForRoutable(t, coord.base, 2)

	if got := putArtifact(t, coord.base, meshBytes); got != wantHash {
		t.Fatalf("coordinator hashed the mesh as %s, want %s", got, wantHash)
	}
	jobID := submitJob(t, coord.base, jobFor(wantHash))

	// Kill the node the job landed on once a checkpoint is in hand: the
	// handoff must move the mesh AND the checkpoint to the survivor by
	// hash (the dead node's disk store is unreachable).
	victim := waitForCheckpoint(t, coord.base, jobID)
	t.Logf("killing node %s (SIGKILL) with job %s checkpointed", victim, jobID)
	if err := nodes[victim].cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}

	v := pollJob(t, coord.base, jobID, 180*time.Second, "completed")
	if v.Node == victim {
		t.Fatalf("job reports completion on the killed node %s", victim)
	}
	if v.Handoffs < 1 {
		t.Errorf("handoffs = %d, want >= 1", v.Handoffs)
	}
	if len(v.History) != len(refView.History) {
		t.Fatalf("history length %d after handoff, want %d", len(v.History), len(refView.History))
	}
	for i := range refView.History {
		if v.History[i] != refView.History[i] {
			t.Fatalf("history diverges from reference at cycle %d: %v != %v",
				i, v.History[i], refView.History[i])
		}
	}

	// The uploaded artifact is still retrievable through the coordinator
	// (from its own cache or proxied off the survivor).
	aresp, err := http.Get(coord.base + "/v1/artifacts/" + wantHash)
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, _ := io.ReadAll(aresp.Body)
	aresp.Body.Close()
	if aresp.StatusCode != http.StatusOK || !bytes.Equal(gotBytes, meshBytes) {
		t.Fatalf("GET artifact after kill: status %d, %d bytes", aresp.StatusCode, len(gotBytes))
	}

	// The counters tell the upload-once story: one client upload, pushes
	// to the nodes placement picked, at least one handoff.
	body := httpGetBody(t, coord.base+"/metrics")
	if !strings.Contains(body, "eul3dc_artifact_uploads_total 1") {
		t.Errorf("/metrics missing the single artifact upload:\n%s", body)
	}
	for _, re := range []string{
		`(?m)^eul3dc_artifact_pushes_total ([1-9]\d*)`,
		`(?m)^eul3dc_handoffs_total ([1-9]\d*)`,
		`(?m)^eul3dc_checkpoint_pulls_total ([1-9]\d*)`,
	} {
		if regexp.MustCompile(re).FindString(body) == "" {
			t.Errorf("/metrics missing a nonzero %s:\n%s", re, body)
		}
	}

	coord.cmd.Process.Signal(syscall.SIGTERM)
	for name, p := range nodes {
		if name != victim {
			p.cmd.Process.Signal(syscall.SIGTERM)
		}
	}
}
