// Distributed: the Touchstone Delta port in miniature. Partition the mesh
// with recursive spectral bisection, build the PARTI communication
// schedules through the inspector, run the distributed solver on simulated
// nodes, and verify it reproduces the sequential answer bit-for-bit (to
// roundoff). Also demonstrates the incremental-schedule optimization and
// reports the communication statistics behind Tables 2a-2c.
package main

import (
	"fmt"
	"log"
	"math"

	"eul3d/internal/dmsolver"
	"eul3d/internal/euler"
	"eul3d/internal/graph"
	"eul3d/internal/meshgen"
	"eul3d/internal/parti"
	"eul3d/internal/partition"
)

func main() {
	const nodes = 16
	const cycles = 20

	m, err := meshgen.Channel(meshgen.DefaultChannel(16, 8, 6, 17))
	if err != nil {
		log.Fatal(err)
	}
	g, err := graph.FromEdges(m.NV(), m.Edges)
	if err != nil {
		log.Fatal(err)
	}

	// Recursive spectral bisection, as in the paper.
	part, err := partition.Partition(g, m.X, nodes, partition.Spectral, 1)
	if err != nil {
		log.Fatal(err)
	}
	q := partition.Evaluate(part, m.Edges, nodes)
	fmt.Printf("spectral partition over %d nodes: %v\n", nodes, q)

	// Inspector: what does the edge loop need from other processors?
	dist, err := parti.NewDist(part, nodes)
	if err != nil {
		log.Fatal(err)
	}
	gs := parti.NewGhostSpace(dist)
	refs := make([][]int32, nodes)
	for _, e := range m.Edges {
		p := part[e[0]]
		refs[p] = append(refs[p], e[0], e[1])
	}
	schedW := parti.BuildSchedule(gs, refs)
	fmt.Printf("flow-variable schedule: %d ghost values in %d messages per exchange\n",
		schedW.Items(), schedW.Messages())

	// Incremental schedule: the dissipation loops reference the very same
	// vertices, so a second schedule on top of the first fetches nothing —
	// the hash-table dedup of Section 4.3.
	_, reused := parti.BuildIncremental(gs, refs)
	fmt.Printf("incremental schedule for the dissipation loops: %d references reused, 0 new\n", reused)

	// Run distributed vs sequential and compare.
	params := euler.DefaultParams(0.675, 0)
	dm, err := dmsolver.NewSingle(m, part, nodes, params)
	if err != nil {
		log.Fatal(err)
	}
	seq := euler.NewDisc(m, params)
	wseq := make([]euler.State, m.NV())
	seq.InitUniform(wseq)
	ws := euler.NewStepWorkspace(m.NV())

	for c := 0; c < cycles; c++ {
		dmNorm, err := dm.Cycle()
		if err != nil {
			log.Fatal(err)
		}
		seqNorm := seq.Step(wseq, nil, ws)
		if c%5 == 0 {
			fmt.Printf("cycle %2d: distributed %.6e  sequential %.6e\n", c, dmNorm, seqNorm)
		}
	}

	// Concurrent MIMD mode: one goroutine per node, barrier-synchronized
	// exchanges — bitwise identical to the sequential orchestration.
	dmc, err := dmsolver.NewSingle(m, part, nodes, params)
	if err != nil {
		log.Fatal(err)
	}
	identical := true
	for c := 0; c < cycles; c++ {
		if _, err := dmc.CycleConcurrent(); err != nil {
			log.Fatal(err)
		}
	}
	wc := dmc.GatherSolution()
	wd := dm.GatherSolution()
	for i := range wc {
		if wc[i] != wd[i] {
			identical = false
			break
		}
	}
	fmt.Printf("\nconcurrent MIMD mode (goroutine per node): bitwise identical = %v\n", identical)

	// Max deviation between the two solutions.
	wdm := dm.GatherSolution()
	worst := 0.0
	for i := range wdm {
		for k := 0; k < euler.NVar; k++ {
			worst = math.Max(worst, math.Abs(wdm[i][k]-wseq[i][k]))
		}
	}
	fmt.Printf("\nmax |distributed - sequential| after %d cycles: %.2e\n", cycles, worst)

	msgs, bytes := dm.Fabric.TotalStats()
	fmt.Printf("traffic: %d messages, %.2f MB over %d cycles (%.1f kB/node/cycle)\n",
		msgs, float64(bytes)/1e6, cycles,
		float64(bytes)/1e3/float64(nodes)/float64(cycles))
	fmt.Printf("exchange phases per cycle: %+v\n", dm.Comm)
}
