// Transonic bump: the paper's flow condition (Mach 0.768, 1.116 degrees
// angle of attack) over the channel bump, solved to steady state with
// W-cycle multigrid, with shock capturing by the blended Laplacian/
// biharmonic dissipation. Prints the Mach contours of the mid-span plane
// (the Figure 4 analogue) and the wall pressure distribution.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"sort"

	"eul3d/internal/euler"
	"eul3d/internal/meshgen"
	"eul3d/internal/solver"
	"eul3d/internal/tables"
)

func main() {
	spec := meshgen.DefaultChannel(32, 16, 12, 17)
	meshes, err := meshgen.Sequence(spec, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fine mesh: %d points, %d tetrahedra\n", meshes[0].NV(), meshes[0].NT())

	params := euler.DefaultParams(0.768, 1.116)
	st, err := solver.NewMultigrid(meshes, params, 2)
	if err != nil {
		log.Fatal(err)
	}
	res, err := st.Run(solver.Options{
		MaxCycles: 250,
		Tolerance: 1e-6,
		LogEvery:  25,
		Log:       os.Stdout,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconverged %.1f orders in %d W-cycles\n", res.Ordersof10, res.Cycles)

	// Shock diagnosis: supersonic pocket over the bump.
	g := params.Gas
	super := 0
	maxM := 0.0
	for _, w := range res.FineSolution {
		m := g.Mach(w)
		if m > 1 {
			super++
		}
		maxM = math.Max(maxM, m)
	}
	fmt.Printf("max Mach %.3f; %d supersonic vertices (%.1f%% of the field)\n",
		maxM, super, 100*float64(super)/float64(len(res.FineSolution)))

	// Wall pressure coefficient along the bump (z near mid-span).
	type wallPt struct{ x, cp float64 }
	var wall []wallPt
	m := meshes[0]
	pInf := g.Pressure(params.Freestream)
	qInf := 0.5 * 0.768 * 0.768 // rho=1, |v| = M in this normalization
	for v, x := range m.X {
		if x.Y < 0.12 && math.Abs(x.Z-0.5) < 0.1 {
			cp := (g.Pressure(res.FineSolution[v]) - pInf) / qInf
			wall = append(wall, wallPt{x.X, cp})
		}
	}
	sort.Slice(wall, func(i, j int) bool { return wall[i].x < wall[j].x })
	fmt.Println("\nlower-wall pressure coefficient (x, -Cp):")
	for i := 0; i < len(wall); i += len(wall)/16 + 1 {
		n := int(20 * (0.5 - wall[i].cp))
		if n < 0 {
			n = 0
		}
		fmt.Printf("  x=%.2f %-7.3f %s\n", wall[i].x, -wall[i].cp, repeat('#', n))
	}

	fmt.Println("\nMach contours (mid-span plane, '*' = supersonic):")
	f := tables.Figure4(st.MG, 78, 22)
	fmt.Print(f.ASCII())
}

func repeat(c byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}
