// Quickstart: generate a small transonic bump-channel mesh, solve the
// Euler equations with W-cycle multigrid, and print the convergence
// history — the minimal end-to-end use of the library.
package main

import (
	"fmt"
	"log"
	"os"

	"eul3d/internal/euler"
	"eul3d/internal/meshgen"
	"eul3d/internal/solver"
)

func main() {
	// 1. A multigrid sequence of non-nested tetrahedral meshes over the
	//    bump channel: 3 levels, finest 16x8x6 cells.
	spec := meshgen.DefaultChannel(16, 8, 6, 1)
	spec.BumpHeight = 0.03 // a gentle bump this coarse mesh resolves well
	meshes, err := meshgen.Sequence(spec, 3)
	if err != nil {
		log.Fatal(err)
	}
	for l, m := range meshes {
		fmt.Printf("level %d: %6d points, %7d tets, %7d edges\n", l, m.NV(), m.NT(), m.NE())
	}

	// 2. The paper's scheme, here at a subcritical Mach 0.5 so this small
	//    demonstration mesh converges crisply (the transonic_bump example
	//    runs the paper's shocked condition on a finer grid).
	params := euler.DefaultParams(0.5, 0)

	// 3. A W-cycle multigrid steady solver.
	st, err := solver.NewMultigrid(meshes, params, 2)
	if err != nil {
		log.Fatal(err)
	}
	res, err := st.Run(solver.Options{
		MaxCycles: 1200,
		Tolerance: 1e-5,
		LogEvery:  20,
		Log:       os.Stdout,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d cycles: residual %.2e -> %.2e (%.1f orders reduced)\n",
		res.Cycles, res.InitialNorm, res.FinalNorm, res.Ordersof10)

	// 4. Inspect the flow: peak Mach number over the bump.
	maxMach := 0.0
	for _, w := range res.FineSolution {
		if m := params.Gas.Mach(w); m > maxMach {
			maxMach = m
		}
	}
	fmt.Printf("freestream Mach %.3f accelerates to %.3f over the bump\n",
		0.5, maxMach)
}
