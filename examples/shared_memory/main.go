// Shared memory: the Cray Y-MP C90 port in miniature (Section 3). The
// edge loops are split into recurrence-free color groups and chunked over
// goroutine workers — the role of the autotasking compiler on the C90 —
// and the result is bitwise identical for every worker count. The example
// prints the color structure, verifies determinism, and reports what the
// calibrated C90 model predicts for the same loop structure on 1-16 CPUs.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"eul3d/internal/color"
	"eul3d/internal/euler"
	"eul3d/internal/machine"
	"eul3d/internal/meshgen"
	"eul3d/internal/smsolver"
)

func main() {
	m, err := meshgen.Channel(meshgen.DefaultChannel(24, 12, 8, 17))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh: %d points, %d edges\n", m.NV(), m.NE())

	// The coloring that makes the edge loops vectorizable/parallel.
	col, err := color.Greedy(m.NV(), m.Edges)
	if err != nil {
		log.Fatal(err)
	}
	sizes := col.GroupSizes()
	minSz, maxSz := sizes[0], sizes[0]
	for _, s := range sizes {
		if s < minSz {
			minSz = s
		}
		if s > maxSz {
			maxSz = s
		}
	}
	fmt.Printf("edge coloring: %d groups, %d..%d edges each (paper: \"say 20 to 30\" groups)\n",
		col.NumColors(), minSz, maxSz)

	// Run the parallel solver with several worker counts; identical
	// residual histories demonstrate the race-free decomposition.
	p := euler.DefaultParams(0.675, 0)
	fmt.Printf("\nGOMAXPROCS = %d\n", runtime.GOMAXPROCS(0))
	var ref []float64
	var lastStats string
	for _, nw := range []int{1, 2, 4} {
		s, err := smsolver.New(m, p, nw)
		if err != nil {
			log.Fatal(err)
		}
		w := make([]euler.State, m.NV())
		s.InitUniform(w)
		start := time.Now()
		var norms []float64
		for c := 0; c < 20; c++ {
			norms = append(norms, s.Step(w, nil))
		}
		elapsed := time.Since(start)
		same := "reference"
		if ref != nil {
			same = "bitwise identical"
			for c := range norms {
				if norms[c] != ref[c] {
					same = "DIVERGED"
				}
			}
		} else {
			ref = norms
		}
		fmt.Printf("  %d workers: 20 cycles in %7v, final residual %.6e  [%s]\n",
			nw, elapsed.Round(time.Millisecond), norms[len(norms)-1], same)
		lastStats = s.Stats().String()
		s.Close()
	}

	// Per-phase breakdown of the last run (counted flops / measured time,
	// the paper's Mflops methodology).
	fmt.Printf("\nper-phase breakdown, 4 workers:\n%s", lastStats)

	// What the same loop structure costs on the modeled C90.
	fmt.Println("\ncalibrated Y-MP C90 model for this mesh (100 single-grid cycles):")
	fmt.Printf("%6s %12s %10s %8s\n", "CPUs", "Wall Clock", "CPU sec.", "MFlops")
	regions := c90Regions(m.NV(), sizes, len(m.BFaces))
	tot := machine.Flops(regions)
	for _, cpus := range []int{1, 2, 4, 8, 16} {
		wall, cpu := machine.C90.Time(regions, cpus)
		fmt.Printf("%6d %12.2f %10.2f %8.0f\n", cpus, 100*wall, 100*cpu, float64(tot)/wall/1e6)
	}
}

// c90Regions builds the per-cycle parallel-region list of one time step
// (a condensed version of the internal/tables decomposition).
func c90Regions(nv int, colorSizes []int, nbf int) []machine.Region {
	var r []machine.Region
	addColors := func(flopsPer int64, times int) {
		for t := 0; t < times; t++ {
			for _, s := range colorSizes {
				r = append(r, machine.Region{N: int64(s), FlopsPer: flopsPer})
			}
		}
	}
	addColors(48, 5)                                              // convective, 5 stages
	addColors(24, 2)                                              // dissipation pass 1
	addColors(66, 2)                                              // dissipation pass 2
	addColors(26, 1)                                              // time step
	addColors(10, 10)                                             // smoothing, 2 sweeps x 5 stages
	r = append(r, machine.Region{N: int64(nbf), FlopsPer: 44})    // boundary
	r = append(r, machine.Region{N: int64(nv) * 5, FlopsPer: 28}) // vertex work
	return r
}
