// Multigrid study: rerun the Figure 2 experiment — convergence histories
// of the single-grid scheme and the V- and W-cycle multigrid strategies on
// the same fine mesh — and print the per-cycle work units and memory
// overhead, reproducing the trade-off discussion of Sections 2.3 and 3.2.
package main

import (
	"fmt"
	"log"
	"math"

	"eul3d/internal/euler"
	"eul3d/internal/meshgen"
	"eul3d/internal/multigrid"
	"eul3d/internal/solver"
)

func main() {
	const cycles = 250
	spec := meshgen.DefaultChannel(32, 16, 12, 17)
	params := euler.DefaultParams(0.675, 0)

	type run struct {
		name    string
		history []float64
		work    float64
		mem     float64
	}
	var runs []run

	// Single grid.
	{
		m, err := meshgen.Channel(spec)
		if err != nil {
			log.Fatal(err)
		}
		st := solver.NewSingleGrid(m, params)
		res, err := st.Run(solver.Options{MaxCycles: cycles})
		if err != nil {
			log.Fatal(err)
		}
		runs = append(runs, run{"single grid", res.History, 1, 0})
	}

	// V- and W-cycles over a 4-level non-nested sequence.
	for _, gamma := range []int{1, 2} {
		meshes, err := meshgen.Sequence(spec, 4)
		if err != nil {
			log.Fatal(err)
		}
		mg, err := multigrid.New(meshes, params, gamma)
		if err != nil {
			log.Fatal(err)
		}
		name := "V-cycle"
		if gamma == 2 {
			name = "W-cycle"
		}
		var hist []float64
		for c := 0; c < cycles; c++ {
			hist = append(hist, mg.Cycle())
		}
		runs = append(runs, run{name, hist, mg.WorkUnits(), mg.MemoryOverhead()})
	}

	fmt.Printf("convergence history (normalized density residual), %d cycles:\n\n", cycles)
	fmt.Printf("%8s", "cycle")
	for _, r := range runs {
		fmt.Printf(" %14s", r.name)
	}
	fmt.Println()
	for c := 0; c < cycles; c += 25 {
		fmt.Printf("%8d", c)
		for _, r := range runs {
			fmt.Printf(" %14.3e", r.history[c]/r.history[0])
		}
		fmt.Println()
	}

	fmt.Println("\nsummary:")
	for _, r := range runs {
		last := r.history[len(r.history)-1] / r.history[0]
		orders := -math.Log10(last)
		fmt.Printf("  %-12s %.1f orders reduced, %.2f work units/cycle", r.name, orders, r.work)
		if r.mem > 0 {
			fmt.Printf(", +%.0f%% memory", 100*r.mem)
		}
		fmt.Println()
	}
	fmt.Println("\nThe paper's headline (Section 2.3): both multigrid cycles buy close to")
	fmt.Println("an order of magnitude in convergence for <2x the work per cycle.")
}
