// Package geom provides the small amount of 3-D vector and tetrahedral
// geometry needed by the unstructured Euler solver: vectors, tetrahedron
// volumes and centroids, triangle area normals, and barycentric-coordinate
// containment queries used by the multigrid transfer-operator search.
package geom

import "math"

// Vec3 is a point or vector in R^3.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + u.
func (v Vec3) Add(u Vec3) Vec3 { return Vec3{v.X + u.X, v.Y + u.Y, v.Z + u.Z} }

// Sub returns v - u.
func (v Vec3) Sub(u Vec3) Vec3 { return Vec3{v.X - u.X, v.Y - u.Y, v.Z - u.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the inner product v . u.
func (v Vec3) Dot(u Vec3) float64 { return v.X*u.X + v.Y*u.Y + v.Z*u.Z }

// Cross returns the cross product v x u.
func (v Vec3) Cross(u Vec3) Vec3 {
	return Vec3{
		v.Y*u.Z - v.Z*u.Y,
		v.Z*u.X - v.X*u.Z,
		v.X*u.Y - v.Y*u.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Normalized returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v Vec3) Normalized() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// TetVolume returns the signed volume of the tetrahedron (a,b,c,d):
// positive when (b-a, c-a, d-a) form a right-handed triple.
func TetVolume(a, b, c, d Vec3) float64 {
	return b.Sub(a).Cross(c.Sub(a)).Dot(d.Sub(a)) / 6
}

// TetCentroid returns the centroid of the tetrahedron (a,b,c,d).
func TetCentroid(a, b, c, d Vec3) Vec3 {
	return Vec3{
		(a.X + b.X + c.X + d.X) / 4,
		(a.Y + b.Y + c.Y + d.Y) / 4,
		(a.Z + b.Z + c.Z + d.Z) / 4,
	}
}

// TriAreaNormal returns the area-weighted normal of triangle (a,b,c):
// a vector normal to the triangle whose length equals its area, oriented
// by the right-hand rule on the vertex ordering.
func TriAreaNormal(a, b, c Vec3) Vec3 {
	return b.Sub(a).Cross(c.Sub(a)).Scale(0.5)
}

// TriCentroid returns the centroid of triangle (a,b,c).
func TriCentroid(a, b, c Vec3) Vec3 {
	return Vec3{(a.X + b.X + c.X) / 3, (a.Y + b.Y + c.Y) / 3, (a.Z + b.Z + c.Z) / 3}
}

// Barycentric returns the barycentric coordinates (l0,l1,l2,l3) of point p
// with respect to tetrahedron (a,b,c,d). The coordinates sum to 1 whenever
// the tetrahedron is non-degenerate; ok is false for a degenerate
// tetrahedron (zero volume).
func Barycentric(p, a, b, c, d Vec3) (l [4]float64, ok bool) {
	vol := TetVolume(a, b, c, d)
	if vol == 0 {
		return l, false
	}
	inv := 1 / vol
	l[0] = TetVolume(p, b, c, d) * inv
	l[1] = TetVolume(a, p, c, d) * inv
	l[2] = TetVolume(a, b, p, d) * inv
	l[3] = TetVolume(a, b, c, p) * inv
	return l, true
}

// InTet reports whether p lies inside (or on the boundary of, within tol)
// the tetrahedron (a,b,c,d). tol is an absolute slack on the barycentric
// coordinates; tol=0 tests strict containment of the closed tetrahedron.
func InTet(p, a, b, c, d Vec3, tol float64) bool {
	l, ok := Barycentric(p, a, b, c, d)
	if !ok {
		return false
	}
	for _, li := range l {
		if li < -tol {
			return false
		}
	}
	return true
}

// Clamp returns x limited to the interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
