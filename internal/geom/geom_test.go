package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVecOps(t *testing.T) {
	v := Vec3{1, 2, 3}
	u := Vec3{4, -5, 6}
	if got := v.Add(u); got != (Vec3{5, -3, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(u); got != (Vec3{-3, 7, -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(u); got != 4-10+18 {
		t.Errorf("Dot = %v", got)
	}
}

func TestCrossOrthogonality(t *testing.T) {
	f := func(vx, vy, vz, ux, uy, uz float64) bool {
		v := Vec3{vx, vy, vz}
		u := Vec3{ux, uy, uz}
		c := v.Cross(u)
		scale := v.Norm() * u.Norm()
		if scale == 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
			return true
		}
		return almostEq(c.Dot(v)/scale/(1+c.Norm()), 0, 1e-9) &&
			almostEq(c.Dot(u)/scale/(1+c.Norm()), 0, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNorm(t *testing.T) {
	if got := (Vec3{3, 4, 0}).Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	n := (Vec3{1, 2, 2}).Normalized()
	if !almostEq(n.Norm(), 1, 1e-15) {
		t.Errorf("Normalized().Norm() = %v", n.Norm())
	}
	z := Vec3{}
	if z.Normalized() != z {
		t.Error("Normalized zero vector should be zero")
	}
}

func TestTetVolumeUnit(t *testing.T) {
	// Unit right tetrahedron has volume 1/6.
	a := Vec3{0, 0, 0}
	b := Vec3{1, 0, 0}
	c := Vec3{0, 1, 0}
	d := Vec3{0, 0, 1}
	if got := TetVolume(a, b, c, d); !almostEq(got, 1.0/6, 1e-15) {
		t.Errorf("TetVolume = %v, want 1/6", got)
	}
	// Swapping two vertices flips the sign.
	if got := TetVolume(b, a, c, d); !almostEq(got, -1.0/6, 1e-15) {
		t.Errorf("TetVolume swapped = %v, want -1/6", got)
	}
}

func TestTetVolumeTranslationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		pts := make([]Vec3, 4)
		for j := range pts {
			pts[j] = Vec3{rng.Float64(), rng.Float64(), rng.Float64()}
		}
		shift := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		v0 := TetVolume(pts[0], pts[1], pts[2], pts[3])
		v1 := TetVolume(pts[0].Add(shift), pts[1].Add(shift), pts[2].Add(shift), pts[3].Add(shift))
		if !almostEq(v0, v1, 1e-12*(1+math.Abs(v0))) {
			t.Fatalf("volume not translation invariant: %v vs %v", v0, v1)
		}
	}
}

func TestTriAreaNormal(t *testing.T) {
	// Right triangle in the xy-plane with legs 2 and 3: area 3, normal +z.
	n := TriAreaNormal(Vec3{0, 0, 0}, Vec3{2, 0, 0}, Vec3{0, 3, 0})
	if !almostEq(n.Z, 3, 1e-15) || n.X != 0 || n.Y != 0 {
		t.Errorf("TriAreaNormal = %v, want (0,0,3)", n)
	}
}

func TestCentroids(t *testing.T) {
	c := TetCentroid(Vec3{0, 0, 0}, Vec3{4, 0, 0}, Vec3{0, 4, 0}, Vec3{0, 0, 4})
	if c != (Vec3{1, 1, 1}) {
		t.Errorf("TetCentroid = %v", c)
	}
	tc := TriCentroid(Vec3{0, 0, 0}, Vec3{3, 0, 0}, Vec3{0, 3, 0})
	if tc != (Vec3{1, 1, 0}) {
		t.Errorf("TriCentroid = %v", tc)
	}
}

func TestBarycentricReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := Vec3{0, 0, 0}
	b := Vec3{1, 0.1, 0}
	c := Vec3{0.2, 1, 0}
	d := Vec3{0.1, 0.3, 1}
	for i := 0; i < 200; i++ {
		p := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		l, ok := Barycentric(p, a, b, c, d)
		if !ok {
			t.Fatal("unexpected degenerate tet")
		}
		sum := l[0] + l[1] + l[2] + l[3]
		if !almostEq(sum, 1, 1e-9) {
			t.Fatalf("barycentric coords sum = %v, want 1", sum)
		}
		// Reconstruct p = sum l_i * vertex_i.
		rec := a.Scale(l[0]).Add(b.Scale(l[1])).Add(c.Scale(l[2])).Add(d.Scale(l[3]))
		if rec.Sub(p).Norm() > 1e-9*(1+p.Norm()) {
			t.Fatalf("reconstruction error: %v vs %v", rec, p)
		}
	}
}

func TestBarycentricDegenerate(t *testing.T) {
	a := Vec3{0, 0, 0}
	_, ok := Barycentric(Vec3{1, 1, 1}, a, a, a, a)
	if ok {
		t.Error("expected degenerate tetrahedron to report ok=false")
	}
}

func TestInTet(t *testing.T) {
	a := Vec3{0, 0, 0}
	b := Vec3{1, 0, 0}
	c := Vec3{0, 1, 0}
	d := Vec3{0, 0, 1}
	if !InTet(Vec3{0.2, 0.2, 0.2}, a, b, c, d, 0) {
		t.Error("centroid-ish point should be inside")
	}
	if InTet(Vec3{1, 1, 1}, a, b, c, d, 0) {
		t.Error("outside point reported inside")
	}
	// Vertex is on the boundary: contained with zero tolerance.
	if !InTet(a, a, b, c, d, 1e-12) {
		t.Error("vertex should be contained")
	}
	// Slightly outside but within tolerance.
	if !InTet(Vec3{-1e-9, 0.1, 0.1}, a, b, c, d, 1e-6) {
		t.Error("point within tol should be contained")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp broken")
	}
}
