package reorder

import (
	"fmt"

	"eul3d/internal/geom"
	"eul3d/internal/graph"
	"eul3d/internal/mesh"
)

// ApplyToMesh returns a copy of m with vertices renumbered by perm
// (perm[new] = old) and the edge-based structures rebuilt by Finish.
// Per-vertex data indexed by the old numbering maps to the new one through
// InversePerm.
func ApplyToMesh(m *mesh.Mesh, perm []int32) (*mesh.Mesh, error) {
	if len(perm) != m.NV() {
		return nil, fmt.Errorf("reorder: permutation length %d != vertex count %d", len(perm), m.NV())
	}
	inv := InversePerm(perm)
	out := &mesh.Mesh{
		X:      make([]geom.Vec3, m.NV()),
		Tets:   make([][4]int32, m.NT()),
		BFaces: make([]mesh.BFace, len(m.BFaces)),
	}
	for newID, old := range perm {
		out.X[newID] = m.X[old]
	}
	for ti, tet := range m.Tets {
		for k := 0; k < 4; k++ {
			out.Tets[ti][k] = inv[tet[k]]
		}
	}
	for fi, f := range m.BFaces {
		out.BFaces[fi].Kind = f.Kind
		for k := 0; k < 3; k++ {
			out.BFaces[fi].V[k] = inv[f.V[k]]
		}
	}
	if err := out.Finish(); err != nil {
		return nil, fmt.Errorf("reorder: %w", err)
	}
	return out, nil
}

// RCMMesh renumbers a finished mesh with reverse Cuthill–McKee — the
// paper's node renumbering, which places data of mesh-adjacent nodes in
// nearby memory locations.
func RCMMesh(m *mesh.Mesh) (*mesh.Mesh, error) {
	g, err := graph.FromEdges(m.NV(), m.Edges)
	if err != nil {
		return nil, err
	}
	return ApplyToMesh(m, CuthillMcKee(g, true))
}
