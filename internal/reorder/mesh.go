package reorder

import (
	"fmt"

	"eul3d/internal/color"
	"eul3d/internal/geom"
	"eul3d/internal/graph"
	"eul3d/internal/mesh"
)

// ApplyToMesh returns a copy of m with vertices renumbered by perm
// (perm[new] = old) and the edge-based structures rebuilt by Finish.
// Per-vertex data indexed by the old numbering maps to the new one through
// InversePerm.
func ApplyToMesh(m *mesh.Mesh, perm []int32) (*mesh.Mesh, error) {
	if len(perm) != m.NV() {
		return nil, fmt.Errorf("reorder: permutation length %d != vertex count %d", len(perm), m.NV())
	}
	inv := InversePerm(perm)
	out := &mesh.Mesh{
		X:      make([]geom.Vec3, m.NV()),
		Tets:   make([][4]int32, m.NT()),
		BFaces: make([]mesh.BFace, len(m.BFaces)),
	}
	for newID, old := range perm {
		out.X[newID] = m.X[old]
	}
	for ti, tet := range m.Tets {
		for k := 0; k < 4; k++ {
			out.Tets[ti][k] = inv[tet[k]]
		}
	}
	for fi, f := range m.BFaces {
		out.BFaces[fi].Kind = f.Kind
		for k := 0; k < 3; k++ {
			out.BFaces[fi].V[k] = inv[f.V[k]]
		}
	}
	if err := out.Finish(); err != nil {
		return nil, fmt.Errorf("reorder: %w", err)
	}
	return out, nil
}

// RCMMesh renumbers a finished mesh with reverse Cuthill–McKee — the
// paper's node renumbering, which places data of mesh-adjacent nodes in
// nearby memory locations.
func RCMMesh(m *mesh.Mesh) (*mesh.Mesh, error) {
	g, err := graph.FromEdges(m.NV(), m.Edges)
	if err != nil {
		return nil, err
	}
	return ApplyToMesh(m, CuthillMcKee(g, true))
}

// ColorCanonical returns a copy of m whose edge list (with its dual
// normals) and boundary-face list are permuted into color-group order,
// together with the identity-run colorings aligned with the new index
// order. On the canonical mesh a sequential loop over the edges visits
// each vertex's edges in exactly the color order the pooled shared-memory
// engine uses, so the colored-parallel solver built with these colorings
// (smsolver.NewColored / NewMultigridColored) is *bitwise identical* to
// the sequential solver, not merely roundoff-equal — the basis of the
// cross-engine conformance suite. Geometry, topology and control volumes
// are untouched (X, Tets, Vol are shared with m); only the iteration
// order of the element lists changes, which is solution-neutral for the
// sequential solver up to its own accumulation roundoff.
func ColorCanonical(m *mesh.Mesh) (*mesh.Mesh, *color.Coloring, *color.Coloring, error) {
	ec, err := color.Greedy(m.NV(), m.Edges)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("reorder: edge coloring: %w", err)
	}
	faces := make([][3]int32, len(m.BFaces))
	for i := range m.BFaces {
		faces[i] = m.BFaces[i].V
	}
	fc, err := color.GreedyFaces(m.NV(), faces)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("reorder: face coloring: %w", err)
	}
	out := &mesh.Mesh{
		X:        m.X,
		Tets:     m.Tets,
		Vol:      m.Vol,
		Edges:    make([][2]int32, len(m.Edges)),
		EdgeNorm: make([]geom.Vec3, len(m.EdgeNorm)),
		BFaces:   make([]mesh.BFace, len(m.BFaces)),
	}
	for at, ei := range ec.Order {
		out.Edges[at] = m.Edges[ei]
		out.EdgeNorm[at] = m.EdgeNorm[ei]
	}
	for at, fi := range fc.Order {
		out.BFaces[at] = m.BFaces[fi]
	}
	return out, color.IdentityRuns(ec.Start), color.IdentityRuns(fc.Start), nil
}
