package reorder

import (
	"testing"

	"eul3d/internal/graph"
	"eul3d/internal/meshgen"
)

func TestApplyToMeshPreservesGeometry(t *testing.T) {
	m, err := meshgen.Channel(meshgen.DefaultChannel(6, 4, 3, 5))
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdges(m.NV(), m.Edges)
	if err != nil {
		t.Fatal(err)
	}
	perm := CuthillMcKee(g, true)
	r, err := ApplyToMesh(m, perm)
	if err != nil {
		t.Fatal(err)
	}
	if r.NV() != m.NV() || r.NT() != m.NT() || r.NE() != m.NE() {
		t.Fatalf("counts changed: %d/%d/%d", r.NV(), r.NT(), r.NE())
	}
	// Total volume and per-vertex dual volumes (under the permutation)
	// must be preserved exactly.
	inv := InversePerm(perm)
	for old := range m.Vol {
		if m.Vol[old] != r.Vol[inv[old]] {
			t.Fatalf("dual volume of old vertex %d changed", old)
		}
	}
	if err := r.Validate(1e-10); err != nil {
		t.Fatal(err)
	}
}

func TestApplyToMeshRejectsBadPerm(t *testing.T) {
	m, err := meshgen.Channel(meshgen.DefaultChannel(3, 3, 3, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ApplyToMesh(m, []int32{0, 1, 2}); err == nil {
		t.Error("accepted short permutation")
	}
}

func TestRCMMeshReducesBandwidth(t *testing.T) {
	m, err := meshgen.Channel(meshgen.DefaultChannel(10, 6, 4, 5))
	if err != nil {
		t.Fatal(err)
	}
	// Scramble first so RCM has something to fix.
	perm := make([]int32, m.NV())
	for i := range perm {
		perm[i] = int32(i)
	}
	for i := len(perm) - 1; i > 0; i-- {
		j := (i*2654435761 + 17) % (i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	sm, err := ApplyToMesh(m, perm)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := RCMMesh(sm)
	if err != nil {
		t.Fatal(err)
	}
	gBefore, _ := graph.FromEdges(sm.NV(), sm.Edges)
	gAfter, _ := graph.FromEdges(rm.NV(), rm.Edges)
	if gAfter.Bandwidth() >= gBefore.Bandwidth() {
		t.Errorf("RCM did not reduce bandwidth: %d -> %d", gBefore.Bandwidth(), gAfter.Bandwidth())
	}
}
