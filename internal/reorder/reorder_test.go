package reorder

import (
	"math/rand"
	"testing"

	"eul3d/internal/graph"
	"eul3d/internal/meshgen"
)

func meshGraph(t *testing.T, nx, ny, nz int, seed int64) (*graph.CSR, [][2]int32) {
	t.Helper()
	m, err := meshgen.Channel(meshgen.DefaultChannel(nx, ny, nz, seed))
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdges(m.NV(), m.Edges)
	if err != nil {
		t.Fatal(err)
	}
	return g, m.Edges
}

func isPermutation(p []int32) bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || int(v) >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

func TestCuthillMcKeeIsPermutation(t *testing.T) {
	g, _ := meshGraph(t, 6, 4, 3, 1)
	for _, rev := range []bool{false, true} {
		p := CuthillMcKee(g, rev)
		if len(p) != g.N() || !isPermutation(p) {
			t.Fatalf("reverse=%v: not a permutation", rev)
		}
	}
}

func TestRCMReducesBandwidthOnShuffledMesh(t *testing.T) {
	g, edges := meshGraph(t, 10, 6, 4, 2)
	// Shuffle vertex labels to destroy the structured ordering.
	n := g.N()
	rng := rand.New(rand.NewSource(9))
	shuf := make([]int32, n)
	for i := range shuf {
		shuf[i] = int32(i)
	}
	rng.Shuffle(n, func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })
	shuffledEdges := RenumberEdges(edges, shuf)
	gs, err := graph.FromEdges(n, shuffledEdges)
	if err != nil {
		t.Fatal(err)
	}
	before := gs.Bandwidth()

	perm := CuthillMcKee(gs, true)
	inv := InversePerm(perm)
	g2, err := graph.FromEdges(n, RenumberEdges(shuffledEdges, inv))
	if err != nil {
		t.Fatal(err)
	}
	after := g2.Bandwidth()
	if after >= before {
		t.Errorf("RCM did not reduce bandwidth: %d -> %d", before, after)
	}
	if after > before/3 {
		t.Logf("note: RCM bandwidth %d -> %d (modest)", before, after)
	}
}

func TestCuthillMcKeeDisconnected(t *testing.T) {
	g, err := graph.FromEdges(6, [][2]int32{{0, 1}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	p := CuthillMcKee(g, false)
	if !isPermutation(p) {
		t.Fatal("disconnected graph: not a permutation")
	}
}

func TestInversePermRoundTrip(t *testing.T) {
	perm := []int32{2, 0, 3, 1}
	inv := InversePerm(perm)
	for newID, old := range perm {
		if inv[old] != int32(newID) {
			t.Fatalf("inv[%d] = %d, want %d", old, inv[old], newID)
		}
	}
}

func TestRenumberEdgesKeepsOrder(t *testing.T) {
	inv := []int32{3, 2, 1, 0}
	out := RenumberEdges([][2]int32{{0, 1}, {2, 3}}, inv)
	for _, e := range out {
		if e[0] >= e[1] {
			t.Errorf("edge %v not ordered", e)
		}
	}
	if out[0] != [2]int32{2, 3} || out[1] != [2]int32{0, 1} {
		t.Errorf("renumbered edges = %v", out)
	}
}

func TestSortEdgesByVertex(t *testing.T) {
	edges := [][2]int32{{5, 7}, {0, 3}, {0, 1}, {2, 4}}
	order := SortEdgesByVertex(edges)
	want := []int32{2, 1, 3, 0} // (0,1), (0,3), (2,4), (5,7)
	for i, o := range order {
		if o != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestReorderingImprovesCacheHitRate(t *testing.T) {
	// This reproduces the claim of Section 4.2: node renumbering plus edge
	// reordering substantially improves locality (the paper measured a 2x
	// rate improvement on the i860).
	_, edges := meshGraph(t, 24, 16, 12, 4)
	n := 25 * 17 * 13
	rng := rand.New(rand.NewSource(11))

	// Baseline: random vertex labels, random edge order.
	shuf := make([]int32, n)
	for i := range shuf {
		shuf[i] = int32(i)
	}
	rng.Shuffle(n, func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })
	scrambled := RenumberEdges(edges, shuf)
	edgeShuffle := make([]int32, len(edges))
	for i := range edgeShuffle {
		edgeShuffle[i] = int32(i)
	}
	rng.Shuffle(len(edgeShuffle), func(i, j int) {
		edgeShuffle[i], edgeShuffle[j] = edgeShuffle[j], edgeShuffle[i]
	})
	base := DeltaCache.HitRate(scrambled, edgeShuffle)

	// Optimized: RCM node renumbering + vertex-incidence edge ordering.
	gs, err := graph.FromEdges(n, scrambled)
	if err != nil {
		t.Fatal(err)
	}
	perm := CuthillMcKee(gs, true)
	renumbered := RenumberEdges(scrambled, InversePerm(perm))
	opt := DeltaCache.HitRate(renumbered, SortEdgesByVertex(renumbered))

	if opt <= base {
		t.Fatalf("reordering did not improve hit rate: %.3f -> %.3f", base, opt)
	}
	t.Logf("cache hit rate: scrambled %.3f -> reordered %.3f", base, opt)
}

func TestHitRateEdgeCases(t *testing.T) {
	if r := DeltaCache.HitRate(nil, nil); r != 0 {
		t.Errorf("empty hit rate = %v", r)
	}
	// Repeated access to the same edge should hit after the first touch.
	edges := [][2]int32{{0, 1}, {0, 1}, {0, 1}}
	if r := DeltaCache.HitRate(edges, nil); r < 0.5 {
		t.Errorf("repeat hit rate = %v", r)
	}
}
