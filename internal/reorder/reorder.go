// Package reorder implements the node renumbering and edge reordering
// optimizations of Section 4.2 of the paper. On the Intel Delta's i860
// processors the irregular access pattern of edge loops caused excessive
// cache misses; renumbering nodes so that mesh-adjacent nodes sit in nearby
// memory locations, and listing all edges incident on a vertex
// consecutively, improved the single-node computation rate by a factor of
// two. Here the same transformations are provided together with a simple
// cache model that quantifies the locality gain (consumed by the Delta
// machine model).
package reorder

import (
	"sort"

	"eul3d/internal/graph"
)

// CuthillMcKee returns a Cuthill–McKee permutation of the graph: perm[new]
// = old. Vertices are visited breadth-first from a pseudo-peripheral root
// of each component, neighbours in increasing-degree order. If reverse is
// true the classical Reverse Cuthill–McKee (RCM) ordering is returned.
func CuthillMcKee(g *graph.CSR, reverse bool) []int32 {
	n := g.N()
	perm := make([]int32, 0, n)
	visited := make([]bool, n)
	deg := make([]int32, n)
	for v := int32(0); int(v) < n; v++ {
		deg[v] = g.Degree(v)
	}
	for s := int32(0); int(s) < n; s++ {
		if visited[s] {
			continue
		}
		root := g.PseudoPeripheral(s)
		visited[root] = true
		perm = append(perm, root)
		for head := len(perm) - 1; head < len(perm); head++ {
			v := perm[head]
			nbrs := g.Neighbors(v)
			fresh := make([]int32, 0, len(nbrs))
			for _, w := range nbrs {
				if !visited[w] {
					visited[w] = true
					fresh = append(fresh, w)
				}
			}
			sort.Slice(fresh, func(i, j int) bool { return deg[fresh[i]] < deg[fresh[j]] })
			perm = append(perm, fresh...)
		}
	}
	if reverse {
		for i, j := 0, len(perm)-1; i < j; i, j = i+1, j-1 {
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	return perm
}

// InversePerm inverts a permutation given as perm[new] = old, returning
// inv[old] = new.
func InversePerm(perm []int32) []int32 {
	inv := make([]int32, len(perm))
	for newID, old := range perm {
		inv[old] = int32(newID)
	}
	return inv
}

// RenumberEdges maps an edge list through inv[old] = new, keeping each
// edge's endpoints ordered (i < j).
func RenumberEdges(edges [][2]int32, inv []int32) [][2]int32 {
	out := make([][2]int32, len(edges))
	for i, e := range edges {
		a, b := inv[e[0]], inv[e[1]]
		if a > b {
			a, b = b, a
		}
		out[i] = [2]int32{a, b}
	}
	return out
}

// SortEdgesByVertex reorders edges so that all edges incident on a vertex
// are listed consecutively (sorted by min endpoint, then max), which is the
// paper's edge reordering: "once the data for a vertex is brought into the
// cache it can be used a number of times before it is removed". The
// returned slice is a permutation of edge indices.
func SortEdgesByVertex(edges [][2]int32) []int32 {
	order := make([]int32, len(edges))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		ea, eb := edges[order[a]], edges[order[b]]
		if ea[0] != eb[0] {
			return ea[0] < eb[0]
		}
		return ea[1] < eb[1]
	})
	return order
}

// CacheModel is a direct-mapped cache approximation used to quantify the
// locality benefit of reordering, mirroring the i860's small data cache.
type CacheModel struct {
	Lines    int // number of cache lines
	LineSize int // vertices per line
}

// DeltaCache approximates the i860's 8 KB data cache holding 5-variable
// double-precision vertex states: 256 lines of 4 vertices.
var DeltaCache = CacheModel{Lines: 256, LineSize: 4}

// HitRate runs the edge access stream through the cache model (both
// endpoints of each edge in the given traversal order) and returns the
// fraction of vertex accesses that hit.
func (c CacheModel) HitRate(edges [][2]int32, order []int32) float64 {
	if len(edges) == 0 {
		return 0
	}
	tags := make([]int32, c.Lines)
	for i := range tags {
		tags[i] = -1
	}
	hits, total := 0, 0
	touch := func(v int32) {
		line := int(v) / c.LineSize
		slot := line % c.Lines
		total++
		if tags[slot] == int32(line) {
			hits++
		} else {
			tags[slot] = int32(line)
		}
	}
	if order == nil {
		for _, e := range edges {
			touch(e[0])
			touch(e[1])
		}
	} else {
		for _, ei := range order {
			touch(edges[ei][0])
			touch(edges[ei][1])
		}
	}
	return float64(hits) / float64(total)
}
