package cluster

import (
	"math/rand"
	"sync"
	"time"
)

// Backoff computes jittered exponential retry delays for coordinator→node
// calls. Delays double from Base up to Max, and each is jittered by ±Jitter
// (a fraction) so a burst of retries against a recovering node spreads out
// instead of arriving in lockstep. The jitter source is seeded, keeping
// tests deterministic.
type Backoff struct {
	Base   time.Duration
	Max    time.Duration
	Jitter float64

	mu  sync.Mutex
	rng *rand.Rand
}

// NewBackoff builds a backoff policy. Zero base/max fall back to
// 100ms/5s; jitter defaults to 0.5.
func NewBackoff(base, max time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	if seed == 0 {
		seed = 1
	}
	return &Backoff{Base: base, Max: max, Jitter: 0.5, rng: rand.New(rand.NewSource(seed))}
}

// Delay returns the jittered delay for the given zero-based attempt.
func (b *Backoff) Delay(attempt int) time.Duration {
	d := b.Base
	for i := 0; i < attempt && d < b.Max; i++ {
		d *= 2
	}
	if d > b.Max {
		d = b.Max
	}
	if b.Jitter > 0 {
		b.mu.Lock()
		f := 1 + b.Jitter*(2*b.rng.Float64()-1)
		b.mu.Unlock()
		d = time.Duration(float64(d) * f)
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// DelayAfter combines the exponential schedule with a server-provided
// Retry-After hint: the next sleep is never shorter than what the server
// asked for, so the coordinator honors explicit backpressure instead of
// hammering a node that just said it was full.
func (b *Backoff) DelayAfter(attempt int, retryAfter time.Duration) time.Duration {
	d := b.Delay(attempt)
	if retryAfter > d {
		return retryAfter
	}
	return d
}
