package cluster

import (
	"testing"
	"time"
)

func TestBackoffGrowthAndCap(t *testing.T) {
	b := NewBackoff(100*time.Millisecond, time.Second, 1)
	b.Jitter = 0 // exact schedule
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second, time.Second,
	}
	for attempt, w := range want {
		if got := b.Delay(attempt); got != w {
			t.Errorf("Delay(%d) = %v, want %v", attempt, got, w)
		}
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	b := NewBackoff(100*time.Millisecond, 5*time.Second, 42)
	for attempt := 0; attempt < 4; attempt++ {
		nominal := 100 * time.Millisecond << attempt
		lo := time.Duration(float64(nominal) * (1 - b.Jitter))
		hi := time.Duration(float64(nominal) * (1 + b.Jitter))
		for i := 0; i < 200; i++ {
			if d := b.Delay(attempt); d < lo || d > hi {
				t.Fatalf("Delay(%d) = %v outside jitter band [%v, %v]", attempt, d, lo, hi)
			}
		}
	}
	// Jitter can never push a delay to zero.
	tiny := NewBackoff(time.Millisecond, time.Second, 7)
	for i := 0; i < 100; i++ {
		if d := tiny.Delay(0); d < time.Millisecond {
			t.Fatalf("Delay floor violated: %v", d)
		}
	}
}

func TestBackoffSeedDeterminism(t *testing.T) {
	a, b := NewBackoff(0, 0, 99), NewBackoff(0, 0, 99)
	for i := 0; i < 20; i++ {
		if da, db := a.Delay(i), b.Delay(i); da != db {
			t.Fatalf("same seed diverged at attempt %d: %v vs %v", i, da, db)
		}
	}
}

func TestBackoffHonorsRetryAfter(t *testing.T) {
	b := NewBackoff(10*time.Millisecond, time.Second, 1)
	b.Jitter = 0
	// A server hint longer than the schedule wins...
	if got := b.DelayAfter(0, 2*time.Second); got != 2*time.Second {
		t.Errorf("DelayAfter with long hint = %v, want 2s", got)
	}
	// ...a shorter (or absent) hint falls back to the schedule.
	if got := b.DelayAfter(3, 5*time.Millisecond); got != 80*time.Millisecond {
		t.Errorf("DelayAfter with short hint = %v, want 80ms", got)
	}
	if got := b.DelayAfter(0, 0); got != 10*time.Millisecond {
		t.Errorf("DelayAfter with no hint = %v, want 10ms", got)
	}
}
