package cluster

import (
	"sync"
	"sync/atomic"
	"time"
)

// Status is a node's position in the health state machine.
//
//	Unknown ──beat ok──▶ Healthy ◀──────────────┐
//	   Healthy ──miss──▶ Suspect ──ok──▶ Healthy │ okStreak ≥ needOK
//	   Suspect ──miss×threshold──▶ Unhealthy ────┘
//	   any ──readyz "draining" / operator drain──▶ Draining
//
// Recovery from Unhealthy is gated by the circuit breaker: needOK
// consecutive good beats are required before the node is routable again,
// and every flap (a fresh failure within FlapWindow of the last recovery)
// doubles needOK up to MaxRecoverBeats — a node that oscillates gets
// quarantined for progressively longer.
type Status int32

const (
	StatusUnknown   Status = iota // registered, no beat yet
	StatusHealthy                 // beating; routable unless saturated
	StatusSuspect                 // missed beats below the threshold
	StatusUnhealthy               // missed ≥ threshold, or in breaker quarantine
	StatusDraining                // announced drain (or operator-drained): hand off, don't route
)

func (s Status) String() string {
	switch s {
	case StatusHealthy:
		return "healthy"
	case StatusSuspect:
		return "suspect"
	case StatusUnhealthy:
		return "unhealthy"
	case StatusDraining:
		return "draining"
	}
	return "unknown"
}

// beatResult is one liveness probe's outcome.
type beatResult struct {
	err       error // probe failed (timeout, refused connection, bad response)
	draining  bool  // /readyz answered 503 "draining"
	saturated bool  // /readyz answered 503 "saturated" (alive, queue full)
	load      int   // queued+running the node reported
}

// node is one registry entry. Health fields are guarded by mu; inflight is
// the coordinator's own count of jobs currently placed on the node (its
// work-stealing load signal, fresher than the beat-reported load).
type node struct {
	name   string
	url    string
	client *nodeClient

	inflight atomic.Int64

	mu          sync.Mutex
	status      Status
	manualDrain bool // operator-drained via the API; beats can't revive it
	saturated   bool
	missed      int // consecutive failed beats
	okStreak    int // consecutive good beats while unhealthy
	needOK      int // good beats required to close the breaker
	trips       int // times the breaker opened
	load        int // last beat-reported queued+running
	lastBeat    time.Time
	downSince   time.Time
	recoveredAt time.Time
}

// apply folds one beat into the state machine. It returns the node's new
// status and whether the beat caused a transition (for logging, tracing
// and handoff triggering).
func (n *node) apply(b beatResult, cfg *Config) (st Status, changed bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	prev := n.status
	switch {
	case n.manualDrain:
		n.status = StatusDraining
	case b.err != nil:
		n.missed++
		n.okStreak = 0
		switch {
		case n.missed >= cfg.MissThreshold && n.status != StatusUnhealthy && n.status != StatusDraining:
			if !n.recoveredAt.IsZero() && time.Since(n.recoveredAt) < cfg.FlapWindow {
				n.needOK *= 2
				if n.needOK > cfg.MaxRecoverBeats {
					n.needOK = cfg.MaxRecoverBeats
				}
			} else {
				n.needOK = cfg.RecoverBeats
			}
			n.trips++
			n.downSince = time.Now()
			n.status = StatusUnhealthy
		case n.status == StatusHealthy:
			n.status = StatusSuspect
		}
	case b.draining:
		n.missed, n.okStreak = 0, 0
		n.lastBeat = time.Now()
		n.status = StatusDraining
	default:
		n.missed = 0
		n.load = b.load
		n.saturated = b.saturated
		n.lastBeat = time.Now()
		switch n.status {
		case StatusHealthy:
		case StatusUnhealthy:
			n.okStreak++
			if n.okStreak >= n.needOK {
				n.okStreak = 0
				n.recoveredAt = time.Now()
				n.status = StatusHealthy
			}
		default: // Unknown, Suspect, or a Draining node that came back ready
			n.status = StatusHealthy
		}
	}
	return n.status, n.status != prev
}

// statusNow returns the current status.
func (n *node) statusNow() Status {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.status
}

// routable reports whether new work may be placed on the node.
func (n *node) routable() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.status == StatusHealthy && !n.saturated
}

// setManualDrain pins (or releases) the operator-drain override.
func (n *node) setManualDrain(on bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.manualDrain = on
	if on {
		n.status = StatusDraining
	}
}

// NodeView is the externally visible snapshot of a node.
type NodeView struct {
	Name      string `json:"name"`
	URL       string `json:"url"`
	Status    string `json:"status"`
	Saturated bool   `json:"saturated,omitempty"`
	Missed    int    `json:"missed_beats"`
	NeedOK    int    `json:"recover_beats_needed,omitempty"`
	Trips     int    `json:"breaker_trips"`
	Load      int    `json:"load"`     // last beat-reported queued+running
	Inflight  int    `json:"inflight"` // jobs this coordinator has placed here
	LastBeat  string `json:"last_beat,omitempty"`
}

// view snapshots the node.
func (n *node) view() NodeView {
	n.mu.Lock()
	defer n.mu.Unlock()
	v := NodeView{
		Name:      n.name,
		URL:       n.url,
		Status:    n.status.String(),
		Saturated: n.saturated,
		Missed:    n.missed,
		Trips:     n.trips,
		Load:      n.load,
		Inflight:  int(n.inflight.Load()),
	}
	if n.status == StatusUnhealthy {
		v.NeedOK = n.needOK - n.okStreak
	}
	if !n.lastBeat.IsZero() {
		v.LastBeat = n.lastBeat.UTC().Format(time.RFC3339Nano)
	}
	return v
}
