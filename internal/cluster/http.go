package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"eul3d/internal/serve"
	"eul3d/internal/store"
)

// API is the HTTP facade over a Coordinator:
//
//	POST   /v1/solve             submit a JobSpec; ?wait=1 (or "wait":true) blocks
//	GET    /v1/jobs/{id}         cluster job view (node, handoffs, checkpoint cycle)
//	DELETE /v1/jobs/{id}         cooperative cancellation (forwarded)
//	PUT    /v1/artifacts         upload bytes once; returns {"hash": ...}
//	GET    /v1/artifacts/{hash}  fetch an artifact (proxied from a node on a local miss)
//	GET    /v1/nodes             node registry with health states
//	POST   /v1/nodes             register a node: {"name":..., "url":...}
//	POST   /v1/nodes/{name}/drain  operator drain: stop routing, hand off
//	GET    /healthz              coordinator liveness
//	GET    /metrics              Prometheus-style text metrics
//	GET    /debug/trace          flight-recorder dump (Chrome trace-event JSON)
type API struct {
	c *Coordinator
}

// NewAPI wraps a coordinator.
func NewAPI(c *Coordinator) *API { return &API{c: c} }

// Handler builds the route table.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", a.handleSolve)
	mux.HandleFunc("GET /v1/jobs/{id}", a.handleGetJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", a.handleCancelJob)
	mux.HandleFunc("PUT /v1/artifacts", a.handleArtifactPut)
	mux.HandleFunc("GET /v1/artifacts/{hash}", a.handleArtifactGet)
	mux.HandleFunc("GET /v1/nodes", a.handleGetNodes)
	mux.HandleFunc("POST /v1/nodes", a.handleAddNode)
	mux.HandleFunc("POST /v1/nodes/{name}/drain", a.handleDrainNode)
	mux.HandleFunc("GET /healthz", a.handleHealthz)
	mux.HandleFunc("GET /metrics", a.handleMetrics)
	mux.HandleFunc("GET /debug/trace", a.handleTrace)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

type solveRequest struct {
	serve.JobSpec
	Wait bool `json:"wait,omitempty"`
}

func (a *API) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req solveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if r.URL.Query().Get("wait") == "1" {
		req.Wait = true
	}
	j, err := a.c.Submit(req.JobSpec)
	switch {
	case errors.Is(err, ErrNoHealthyNodes):
		// Degraded mode: shed with a hint instead of queueing unboundedly.
		w.Header().Set("Retry-After", strconv.Itoa(a.c.RetryAfterHint()))
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if !req.Wait {
		writeJSON(w, http.StatusAccepted, j.View())
		return
	}
	select {
	case <-j.Done():
		writeJSON(w, http.StatusOK, j.View())
	case <-r.Context().Done():
		writeJSON(w, http.StatusAccepted, j.View())
	}
}

func (a *API) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, err := a.c.Job(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

func (a *API) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j, err := a.c.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

// handleArtifactPut stores uploaded bytes in the coordinator's cache and
// answers with their content hash; placement pushes them to whichever
// node a referencing job lands on ("upload once, solve everywhere").
func (a *API) handleArtifactPut(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, store.MaxBlobSize))
	if err != nil {
		writeErr(w, http.StatusRequestEntityTooLarge, err)
		return
	}
	hash, err := a.c.store.Put(data)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	a.c.met.ArtifactUploads.Add(1)
	writeJSON(w, http.StatusCreated, map[string]any{"hash": hash, "bytes": len(data)})
}

// handleArtifactGet serves an artifact from the coordinator's cache,
// proxying from a live node on a local miss (GET patterns match HEAD too).
func (a *API) handleArtifactGet(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if !store.ValidHash(hash) {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("malformed artifact hash %q", hash))
		return
	}
	data, err := a.c.store.Get(hash)
	if err != nil {
		if data = a.c.proxyArtifact(hash, ""); data == nil {
			writeErr(w, http.StatusNotFound, fmt.Errorf("artifact %s not found", hash[:12]))
			return
		}
	}
	w.Header().Set("ETag", `"`+hash+`"`)
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Header().Set("Content-Type", "application/octet-stream")
	if r.Method == http.MethodHead {
		return
	}
	w.Write(data)
}

func (a *API) handleGetNodes(w http.ResponseWriter, r *http.Request) {
	views := a.c.NodeViews()
	sort.Slice(views, func(i, k int) bool { return views[i].Name < views[k].Name })
	writeJSON(w, http.StatusOK, views)
}

func (a *API) handleAddNode(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name string `json:"name"`
		URL  string `json:"url"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := a.c.AddNode(req.Name, req.URL); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "registered", "name": req.Name})
}

func (a *API) handleDrainNode(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := a.c.DrainNode(name); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "draining", "name": name})
}

func (a *API) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"nodes":    len(a.c.NodeViews()),
		"routable": a.c.routableCount(),
	})
}

// handleMetrics renders the cluster metrics in the Prometheus text format
// (hand-rolled, matching eul3dd's endpoint).
func (a *API) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var b strings.Builder
	m := a.c.Metrics()

	counter := func(name string, v int64, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("eul3dc_jobs_submitted_total", m.Submitted.Load(), "jobs accepted by the coordinator")
	counter("eul3dc_jobs_completed_total", m.Completed.Load(), "jobs completed on some node")
	counter("eul3dc_jobs_failed_total", m.Failed.Load(), "jobs failed")
	counter("eul3dc_jobs_cancelled_total", m.Cancelled.Load(), "jobs cancelled")
	counter("eul3dc_jobs_expired_total", m.Expired.Load(), "jobs past their deadline")
	counter("eul3dc_dispatches_total", m.Dispatches.Load(), "successful placements incl. handoffs")
	counter("eul3dc_dispatch_retries_total", m.Retries.Load(), "dispatch attempts retried with backoff")
	counter("eul3dc_handoffs_total", m.Handoffs.Load(), "jobs re-dispatched from a checkpoint")
	counter("eul3dc_steals_total", m.Steals.Load(), "cold jobs placed off-ring by load")
	counter("eul3dc_sheds_total", m.Sheds.Load(), "submissions shed in degraded mode")
	counter("eul3dc_checkpoint_pulls_total", m.CkptPulls.Load(), "checkpoints pulled off running nodes")
	counter("eul3dc_beat_misses_total", m.BeatMisses.Load(), "failed liveness probes")
	counter("eul3dc_coalesce_attach_total", m.CoalesceAttach.Load(), "submissions attached to an identical in-flight job")
	counter("eul3dc_coalesce_fanout_total", m.CoalesceFanout.Load(), "mirrored results delivered to attached submissions")
	counter("eul3dc_artifact_uploads_total", m.ArtifactUploads.Load(), "artifacts uploaded to the coordinator")
	counter("eul3dc_artifact_pushes_total", m.ArtifactPushes.Load(), "artifacts pushed to nodes at placement")
	counter("eul3dc_artifact_proxies_total", m.ArtifactProxies.Load(), "artifacts proxied between nodes")
	counter("eul3dc_hash_placements_total", m.HashPlacements.Load(), "placements rerouted to a node already holding the job's artifacts")

	st := a.c.Store().Stats()
	counter("eul3dc_artifact_hits_total", st.Hits, "artifact cache hits")
	counter("eul3dc_artifact_misses_total", st.Misses, "artifact cache misses")
	fmt.Fprintf(&b, "# HELP eul3dc_artifact_count artifacts in the coordinator cache\n# TYPE eul3dc_artifact_count gauge\neul3dc_artifact_count %d\n", a.c.Store().Len())
	fmt.Fprintf(&b, "# HELP eul3dc_artifact_mem_bytes bytes held in the coordinator cache\n# TYPE eul3dc_artifact_mem_bytes gauge\neul3dc_artifact_mem_bytes %d\n", a.c.Store().MemBytes())

	views := a.c.NodeViews()
	sort.Slice(views, func(i, k int) bool { return views[i].Name < views[k].Name })
	gaugeHead := func(name, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}
	gaugeHead("eul3dc_node_up", "1 while the node is routable (healthy and not saturated)")
	for _, v := range views {
		up := 0
		if v.Status == "healthy" && !v.Saturated {
			up = 1
		}
		fmt.Fprintf(&b, "eul3dc_node_up{node=%q} %d\n", v.Name, up)
	}
	gaugeHead("eul3dc_node_state", "health state machine position (0 unknown, 1 healthy, 2 suspect, 3 unhealthy, 4 draining)")
	for _, v := range views {
		fmt.Fprintf(&b, "eul3dc_node_state{node=%q} %d\n", v.Name, statusCode(v.Status))
	}
	gaugeHead("eul3dc_node_missed_beats", "consecutive failed probes")
	for _, v := range views {
		fmt.Fprintf(&b, "eul3dc_node_missed_beats{node=%q} %d\n", v.Name, v.Missed)
	}
	gaugeHead("eul3dc_node_load", "queued+running the node last reported")
	for _, v := range views {
		fmt.Fprintf(&b, "eul3dc_node_load{node=%q} %d\n", v.Name, v.Load)
	}
	gaugeHead("eul3dc_node_inflight", "jobs this coordinator has placed on the node")
	for _, v := range views {
		fmt.Fprintf(&b, "eul3dc_node_inflight{node=%q} %d\n", v.Name, v.Inflight)
	}
	gaugeHead("eul3dc_node_breaker_trips", "times the node's circuit breaker opened")
	for _, v := range views {
		fmt.Fprintf(&b, "eul3dc_node_breaker_trips{node=%q} %d\n", v.Name, v.Trips)
	}
	w.Write([]byte(b.String()))
}

func statusCode(s string) int {
	switch s {
	case "healthy":
		return int(StatusHealthy)
	case "suspect":
		return int(StatusSuspect)
	case "unhealthy":
		return int(StatusUnhealthy)
	case "draining":
		return int(StatusDraining)
	}
	return int(StatusUnknown)
}

// handleTrace streams the coordinator's flight recorder as Chrome
// trace-event JSON; 404 when tracing is disabled.
func (a *API) handleTrace(w http.ResponseWriter, r *http.Request) {
	tr := a.c.Tracer()
	if tr == nil {
		writeErr(w, http.StatusNotFound, errors.New("cluster: tracing disabled (start with -trace)"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := tr.WriteChrome(w); err != nil {
		a.c.cfg.Log.Printf("trace export: %v", err)
	}
}
