package cluster

import "sync/atomic"

// Metrics holds the coordinator's counters. All fields are atomic; the
// per-node gauges (status, load, inflight, breaker trips) are read live
// from the registry when /metrics renders.
type Metrics struct {
	Submitted  atomic.Int64 // jobs accepted by the coordinator
	Completed  atomic.Int64 // jobs that reached completed on some node
	Failed     atomic.Int64 // jobs that failed (node error, divergence, dispatch exhausted)
	Cancelled  atomic.Int64 // jobs cancelled via the coordinator
	Expired    atomic.Int64 // jobs that blew their deadline on a node
	Dispatches atomic.Int64 // successful placements (first placement + handoffs)
	Retries    atomic.Int64 // dispatch attempts that were retried (429/503/transport)
	Handoffs   atomic.Int64 // re-dispatches from a checkpoint after node death/drain
	Steals     atomic.Int64 // cold jobs placed off-ring on the least-loaded node
	Sheds      atomic.Int64 // submissions refused with Retry-After (no routable node)
	CkptPulls  atomic.Int64 // checkpoint snapshots pulled off running nodes
	BeatMisses atomic.Int64 // failed liveness probes across all nodes

	CoalesceAttach atomic.Int64 // submissions attached to an identical in-flight job
	CoalesceFanout atomic.Int64 // mirrored results delivered to attached submissions

	ArtifactUploads atomic.Int64 // artifacts PUT to the coordinator by clients
	ArtifactPushes  atomic.Int64 // artifacts pushed to nodes at placement time
	ArtifactProxies atomic.Int64 // artifacts fetched from one node on behalf of another
	HashPlacements  atomic.Int64 // placements rerouted to a node already holding the job's artifacts
}
