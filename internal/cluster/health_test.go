package cluster

import (
	"errors"
	"testing"
	"time"
)

var errBeat = errors.New("probe failed")

func healthCfg() *Config {
	cfg := &Config{MissThreshold: 3, RecoverBeats: 2, MaxRecoverBeats: 8, FlapWindow: time.Minute}
	cfg.fill()
	return cfg
}

func miss() beatResult       { return beatResult{err: errBeat} }
func ok(load int) beatResult { return beatResult{load: load} }
func drainBeat() beatResult  { return beatResult{draining: true} }
func saturated() beatResult  { return beatResult{saturated: true} }
func newTestNode() *node     { return &node{name: "n1", url: "http://x"} }
func feed(n *node, cfg *Config, beats ...beatResult) Status {
	st := n.statusNow()
	for _, b := range beats {
		st, _ = n.apply(b, cfg)
	}
	return st
}

func TestHealthBeatTransitions(t *testing.T) {
	cfg := healthCfg()
	cases := []struct {
		name  string
		beats []beatResult
		want  Status
	}{
		{"fresh node first ok", []beatResult{ok(0)}, StatusHealthy},
		{"fresh node first miss stays below threshold", []beatResult{miss()}, StatusUnknown},
		{"healthy one miss is suspect", []beatResult{ok(0), miss()}, StatusSuspect},
		{"suspect recovers on one ok", []beatResult{ok(0), miss(), miss(), ok(1)}, StatusHealthy},
		{"threshold misses open the breaker", []beatResult{ok(0), miss(), miss(), miss()}, StatusUnhealthy},
		{"one ok does not close the breaker", []beatResult{ok(0), miss(), miss(), miss(), ok(0)}, StatusUnhealthy},
		{"recover-beats oks close it", []beatResult{ok(0), miss(), miss(), miss(), ok(0), ok(0)}, StatusHealthy},
		{"a miss resets the recovery streak", []beatResult{ok(0), miss(), miss(), miss(), ok(0), miss(), ok(0)}, StatusUnhealthy},
		{"announced drain wins over ok history", []beatResult{ok(0), drainBeat()}, StatusDraining},
		{"drained node that comes back ready is healthy", []beatResult{drainBeat(), ok(0)}, StatusHealthy},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := newTestNode()
			if got := feed(n, cfg, tc.beats...); got != tc.want {
				t.Fatalf("after %d beats: %s, want %s", len(tc.beats), got, tc.want)
			}
		})
	}
}

func TestHealthRoutability(t *testing.T) {
	cfg := healthCfg()
	n := newTestNode()
	feed(n, cfg, ok(2))
	if !n.routable() {
		t.Fatal("healthy node not routable")
	}
	// Saturated: alive and healthy, but takes no new work.
	if st := feed(n, cfg, saturated()); st != StatusHealthy {
		t.Fatalf("saturated beat left status %s, want healthy", st)
	}
	if n.routable() {
		t.Fatal("saturated node still routable")
	}
	feed(n, cfg, ok(1))
	if !n.routable() {
		t.Fatal("node not routable after saturation cleared")
	}
	feed(n, cfg, miss())
	if n.routable() {
		t.Fatal("suspect node routable; new work must avoid it")
	}
}

// Flapping doubles the breaker's close requirement up to the cap: a node
// that dies again right after recovering needs progressively more
// consecutive good beats before it is trusted with work.
func TestHealthFlappingDoublesQuarantine(t *testing.T) {
	cfg := healthCfg() // RecoverBeats 2, MaxRecoverBeats 8
	n := newTestNode()

	die := func() { feed(n, cfg, miss(), miss(), miss()) }
	recoverNode := func() {
		deadline := time.Now().Add(time.Second)
		for n.statusNow() != StatusHealthy {
			feed(n, cfg, ok(0))
			if time.Now().After(deadline) {
				t.Fatal("node never recovered")
			}
		}
	}

	feed(n, cfg, ok(0))
	for i, wantNeed := range []int{2, 4, 8, 8} { // doubles, then caps
		die()
		n.mu.Lock()
		need, trips := n.needOK, n.trips
		n.mu.Unlock()
		if need != wantNeed {
			t.Fatalf("flap %d: needOK = %d, want %d", i, need, wantNeed)
		}
		if trips != i+1 {
			t.Fatalf("flap %d: trips = %d, want %d", i, trips, i+1)
		}
		// Exactly needOK-1 good beats must NOT close the breaker.
		for k := 0; k < wantNeed-1; k++ {
			if st := feed(n, cfg, ok(0)); st != StatusUnhealthy {
				t.Fatalf("flap %d: breaker closed after %d/%d good beats", i, k+1, wantNeed)
			}
		}
		recoverNode()
	}

	// A failure outside the flap window resets the penalty to RecoverBeats.
	n.mu.Lock()
	n.recoveredAt = time.Now().Add(-2 * cfg.FlapWindow)
	n.mu.Unlock()
	die()
	n.mu.Lock()
	need := n.needOK
	n.mu.Unlock()
	if need != cfg.RecoverBeats {
		t.Fatalf("needOK after quiet period = %d, want reset to %d", need, cfg.RecoverBeats)
	}
}

func TestHealthManualDrainPins(t *testing.T) {
	cfg := healthCfg()
	n := newTestNode()
	feed(n, cfg, ok(0))
	n.setManualDrain(true)
	if st := feed(n, cfg, ok(0), ok(0), ok(0)); st != StatusDraining {
		t.Fatalf("ok beats revived an operator-drained node: %s", st)
	}
	if n.routable() {
		t.Fatal("operator-drained node routable")
	}
	n.setManualDrain(false)
	if st := feed(n, cfg, ok(0)); st != StatusHealthy {
		t.Fatalf("released node not healthy after ok beat: %s", st)
	}
}
