package cluster

import (
	"crypto/sha256"
	"fmt"
	"reflect"
	"testing"
)

// keyN generates keys shaped like RouteKey's output (hex digests).
// Sequential "key-N" literals would be misleading here: they differ only
// in their final bytes, which FNV maps to near-identical ring positions,
// clustering whole runs of keys onto one point.
func keyN(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
	return fmt.Sprintf("%x", sum[:8])
}

func TestRingEmptyAndDuplicates(t *testing.T) {
	r := NewRing(8)
	if got := r.Order("k"); got != nil {
		t.Fatalf("empty ring Order = %v, want nil", got)
	}
	if got := r.Owner("k"); got != "" {
		t.Fatalf("empty ring Owner = %q, want empty", got)
	}
	r.Add("a")
	r.Add("a") // duplicate add is a no-op
	if r.Len() != 1 {
		t.Fatalf("Len after duplicate add = %d, want 1", r.Len())
	}
	r.Remove("missing") // no-op
	r.Remove("a")
	if r.Len() != 0 || r.Owner("k") != "" {
		t.Fatalf("ring not empty after removing sole member")
	}
}

func TestRingOrderDeterministicAndDistinct(t *testing.T) {
	members := []string{"n1", "n2", "n3", "n4", "n5"}
	a, b := NewRing(64), NewRing(64)
	for _, m := range members {
		a.Add(m)
	}
	// Insert in reverse: the ring must not depend on registration order.
	for i := len(members) - 1; i >= 0; i-- {
		b.Add(members[i])
	}
	for i := 0; i < 200; i++ {
		oa, ob := a.Order(keyN(i)), b.Order(keyN(i))
		if !reflect.DeepEqual(oa, ob) {
			t.Fatalf("key %d: order depends on insertion order: %v vs %v", i, oa, ob)
		}
		if len(oa) != len(members) {
			t.Fatalf("key %d: order has %d entries, want %d", i, len(oa), len(members))
		}
		seen := map[string]bool{}
		for _, m := range oa {
			if seen[m] {
				t.Fatalf("key %d: duplicate member %s in order %v", i, m, oa)
			}
			seen[m] = true
		}
		if oa[0] != a.Owner(keyN(i)) {
			t.Fatalf("key %d: Owner %q != Order[0] %q", i, a.Owner(keyN(i)), oa[0])
		}
	}
}

// Removing one member must remap only the keys it owned; everyone else's
// keys stay put (the property that keeps engine caches warm across
// membership changes).
func TestRingMinimalRemap(t *testing.T) {
	r := NewRing(64)
	for _, m := range []string{"n1", "n2", "n3", "n4", "n5"} {
		r.Add(m)
	}
	const keys = 2000
	before := make(map[string]string, keys)
	for i := 0; i < keys; i++ {
		before[keyN(i)] = r.Owner(keyN(i))
	}
	r.Remove("n3")
	moved := 0
	for i := 0; i < keys; i++ {
		after := r.Owner(keyN(i))
		switch {
		case before[keyN(i)] == "n3":
			if after == "n3" {
				t.Fatalf("key %d still owned by removed member", i)
			}
		case after != before[keyN(i)]:
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys not owned by n3 changed owner on its removal", moved)
	}
	// And failover is exactly the precomputed successor: Order[1] before
	// the removal is Owner after it.
	r2 := NewRing(64)
	for _, m := range []string{"n1", "n2", "n3", "n4", "n5"} {
		r2.Add(m)
	}
	for i := 0; i < keys; i++ {
		if before[keyN(i)] != "n3" {
			continue
		}
		succ := r2.Order(keyN(i))[1]
		if got := r.Owner(keyN(i)); got != succ {
			t.Fatalf("key %d failed over to %s, want ring successor %s", i, got, succ)
		}
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(64)
	members := []string{"n1", "n2", "n3", "n4", "n5"}
	for _, m := range members {
		r.Add(m)
	}
	const keys = 5000
	counts := map[string]int{}
	for i := 0; i < keys; i++ {
		counts[r.Owner(keyN(i))]++
	}
	// With 64 virtual points per member a 5-way split should put every
	// member within a loose band around keys/5; the guard is against
	// gross skew (one member owning almost nothing or almost everything).
	for _, m := range members {
		share := float64(counts[m]) / keys
		if share < 0.08 || share > 0.40 {
			t.Errorf("member %s owns %.1f%% of keys, want within [8%%, 40%%] (counts %v)", m, 100*share, counts)
		}
	}
}
