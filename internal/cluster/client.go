package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"eul3d/internal/serve"
)

// nodeClient speaks the eul3dd HTTP API for one node. All calls take a
// context; the coordinator bounds them with its probe timeout so a wedged
// node can't stall the health or watch loops.
type nodeClient struct {
	base string // e.g. http://127.0.0.1:8081
	hc   *http.Client
}

func newNodeClient(base string, hc *http.Client) *nodeClient {
	return &nodeClient{base: base, hc: hc}
}

// retryAfter parses a Retry-After header into a duration (0 when absent or
// malformed; only the delta-seconds form is produced by eul3dd).
func retryAfter(resp *http.Response) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if sec, err := strconv.Atoi(s); err == nil && sec > 0 {
			return time.Duration(sec) * time.Second
		}
	}
	return 0
}

// readyz probes the node's readiness endpoint.
func (nc *nodeClient) readyz(ctx context.Context) beatResult {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, nc.base+"/readyz", nil)
	if err != nil {
		return beatResult{err: err}
	}
	resp, err := nc.hc.Do(req)
	if err != nil {
		return beatResult{err: err}
	}
	defer resp.Body.Close()
	var v struct {
		Status  string `json:"status"`
		Queued  int    `json:"queued"`
		Running int    `json:"running"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&v); err != nil {
		return beatResult{err: fmt.Errorf("decoding readyz: %w", err)}
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		return beatResult{load: v.Queued + v.Running}
	case resp.StatusCode == http.StatusServiceUnavailable && v.Status == "draining":
		return beatResult{draining: true, load: v.Queued + v.Running}
	case resp.StatusCode == http.StatusServiceUnavailable && v.Status == "saturated":
		return beatResult{saturated: true, load: v.Queued + v.Running}
	}
	return beatResult{err: fmt.Errorf("readyz: unexpected status %d %q", resp.StatusCode, v.Status)}
}

// submitRequest mirrors eul3dd's solve body: the spec plus the handoff
// identity and resume checkpoint — by artifact hash when the node's store
// holds the checkpoint, inline base64 otherwise.
type submitRequest struct {
	serve.JobSpec
	ID         string `json:"id,omitempty"`
	Resume     string `json:"resume,omitempty"`
	ResumeHash string `json:"resume_hash,omitempty"`
}

// submit dispatches a job to the node. On 202 it returns the node's view.
// A non-2xx outcome is reported through code (with any Retry-After hint);
// err is reserved for transport failures.
func (nc *nodeClient) submit(ctx context.Context, sr submitRequest) (view serve.JobView, code int, after time.Duration, err error) {
	body, err := json.Marshal(sr)
	if err != nil {
		return view, 0, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, nc.base+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		return view, 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := nc.hc.Do(req)
	if err != nil {
		return view, 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return view, resp.StatusCode, retryAfter(resp), fmt.Errorf("node %s: %d %s", nc.base, resp.StatusCode, bytes.TrimSpace(b))
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return view, resp.StatusCode, 0, err
	}
	return view, resp.StatusCode, 0, nil
}

// view fetches a job's status.
func (nc *nodeClient) view(ctx context.Context, id string) (serve.JobView, error) {
	var v serve.JobView
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, nc.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return v, err
	}
	resp, err := nc.hc.Do(req)
	if err != nil {
		return v, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return v, fmt.Errorf("node %s: job %s: status %d", nc.base, id, resp.StatusCode)
	}
	return v, json.NewDecoder(resp.Body).Decode(&v)
}

// cancel requests cooperative cancellation of a job (best effort).
func (nc *nodeClient) cancel(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, nc.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := nc.hc.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// artifactHas reports whether the node's artifact store holds hash.
func (nc *nodeClient) artifactHas(ctx context.Context, hash string) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodHead, nc.base+"/v1/artifacts/"+hash, nil)
	if err != nil {
		return false, err
	}
	resp, err := nc.hc.Do(req)
	if err != nil {
		return false, err
	}
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil
	case http.StatusNotFound:
		return false, nil
	}
	return false, fmt.Errorf("node %s: artifact %s: status %d", nc.base, hash[:12], resp.StatusCode)
}

// artifactGet fetches an artifact's bytes. A (nil, nil) return means the
// node does not hold it.
func (nc *nodeClient) artifactGet(ctx context.Context, hash string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, nc.base+"/v1/artifacts/"+hash, nil)
	if err != nil {
		return nil, err
	}
	resp, err := nc.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("node %s: artifact %s: status %d", nc.base, hash[:12], resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 256<<20))
}

// artifactPut uploads bytes to the node's store, returning the hash the
// node computed (the caller verifies it matches the expected one).
func (nc *nodeClient) artifactPut(ctx context.Context, data []byte) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, nc.base+"/v1/artifacts", bytes.NewReader(data))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := nc.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return "", fmt.Errorf("node %s: artifact put: %d %s", nc.base, resp.StatusCode, bytes.TrimSpace(b))
	}
	var v struct {
		Hash string `json:"hash"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return "", err
	}
	return v.Hash, nil
}

// checkpoint pulls the job's latest periodic checkpoint. A (nil, nil)
// return means the node has no checkpoint yet.
func (nc *nodeClient) checkpoint(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, nc.base+"/v1/jobs/"+id+"/checkpoint", nil)
	if err != nil {
		return nil, err
	}
	resp, err := nc.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("node %s: checkpoint %s: status %d", nc.base, id, resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 64<<20))
}
