package cluster

import (
	"eul3d/internal/trace"
)

// Flight-recorder instrumentation of the coordinator. Each node gets a
// track carrying probe spans and state-transition instants (arg = the new
// Status), each job a track with dispatch/handoff/terminal instants — so a
// /debug/trace dump shows the cluster's failure-detection and re-routing
// decisions on the same timeline as the nodes' own solver traces.

const (
	nodeTrackCap = 512
	jobTrackCap  = 64
)

// clusterTrace holds the coordinator's interned phases; nil disables
// tracing (every method is nil-safe through trace.Track's nil receiver).
type clusterTrace struct {
	tr *trace.Tracer

	phProbe    trace.PhaseID // one liveness probe (span; arg = load)
	phMiss     trace.PhaseID // probe failed (instant; arg = consecutive misses)
	phState    trace.PhaseID // status transition (instant; arg = new Status)
	phDispatch trace.PhaseID // job placed on a node (instant; arg = attempt)
	phRetry    trace.PhaseID // dispatch attempt retried (instant; arg = attempt)
	phHandoff  trace.PhaseID // job re-dispatched from checkpoint (instant; arg = resume cycle)
	phCkpt     trace.PhaseID // checkpoint pulled (instant; arg = cycle)
	phShed     trace.PhaseID // submission shed, no routable node (instant)
	phDone     trace.PhaseID // job reached a terminal state (instant; arg = cycles)
	phAttach   trace.PhaseID // submission coalesced onto an in-flight job (instant; arg = parties)
	phFanout   trace.PhaseID // mirrored result delivered to a waiter (instant; arg = cycles)
}

func newClusterTrace(tr *trace.Tracer) *clusterTrace {
	if tr == nil {
		return nil
	}
	return &clusterTrace{
		tr:         tr,
		phProbe:    tr.Phase("probe"),
		phMiss:     tr.Phase("beat-miss"),
		phState:    tr.Phase("node-state"),
		phDispatch: tr.Phase("dispatch"),
		phRetry:    tr.Phase("dispatch-retry"),
		phHandoff:  tr.Phase("handoff"),
		phCkpt:     tr.Phase("checkpoint-pull"),
		phShed:     tr.Phase("shed"),
		phDone:     tr.Phase("job-done"),
		phAttach:   tr.Phase("coalesce-attach"),
		phFanout:   tr.Phase("coalesce-fanout"),
	}
}

func (t *clusterTrace) nodeTrack(name string) *trace.Track {
	if t == nil {
		return nil
	}
	return t.tr.TrackCap("node "+name, nodeTrackCap)
}

func (t *clusterTrace) jobTrack(id string) *trace.Track {
	if t == nil {
		return nil
	}
	return t.tr.TrackCap("job "+id, jobTrackCap)
}
