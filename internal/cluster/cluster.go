// Package cluster turns a fleet of eul3dd nodes into one fault-tolerant
// solving service. A Coordinator registers nodes, health-checks them with
// a heartbeat state machine (liveness probes, a missed-beat threshold, and
// a circuit breaker that quarantines flapping nodes for progressively
// longer), and routes jobs by consistent-hashing their engine-cache key —
// so repeat requests for a mesh land on the node whose engine cache is
// already warm — with work-stealing placement for cold keys.
//
// Robustness is the point: every coordinator→node call retries on a
// jittered exponential backoff that honors Retry-After hints, and each
// running job's periodic checkpoint is pulled off its node while it runs.
// When a node dies (SIGKILL, partition) or drains, its in-flight jobs are
// re-dispatched to healthy nodes from the last pulled checkpoint under
// their original IDs; because the solver is deterministic and checkpoints
// are bitwise-exact, a handed-off job's history and solution are bitwise
// identical to an uninterrupted single-node run. When no node is routable
// the coordinator degrades instead of queueing unboundedly: submissions
// are shed with a Retry-After hint until a node recovers.
//
// The paper's distributed runs assumed a fixed processor set that survives
// the whole computation; this layer removes that assumption at the service
// tier, the way asynchronous task-based solvers decouple work from the
// process topology.
package cluster

import (
	"bytes"
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"time"

	"eul3d/internal/meshio"
	"eul3d/internal/serve"
	"eul3d/internal/store"
	"eul3d/internal/trace"
)

// ErrNoHealthyNodes is returned by Submit while no node is routable; the
// HTTP layer maps it to 503 with a Retry-After hint (degraded mode: shed,
// don't queue).
var ErrNoHealthyNodes = errors.New("cluster: no healthy node available")

// ErrNotFound is returned for unknown job or node names.
var ErrNotFound = errors.New("cluster: not found")

// Config sizes a Coordinator.
type Config struct {
	HeartbeatInterval time.Duration // liveness probe period (default 1s)
	ProbeTimeout      time.Duration // per-probe budget (default interval/2)
	CallTimeout       time.Duration // submit/view/checkpoint call budget (default 5s)
	MissThreshold     int           // consecutive missed beats before unhealthy (default 3)
	RecoverBeats      int           // good beats to close the breaker (default 2)
	MaxRecoverBeats   int           // flap-penalty cap (default 32)
	FlapWindow        time.Duration // a re-failure within this of recovery doubles the quarantine (default 1m)
	FetchInterval     time.Duration // per-job view + checkpoint poll period (default 250ms)
	RetryBudget       int           // dispatch attempts per placement round (default 5)
	BackoffBase       time.Duration // first retry delay (default 100ms)
	BackoffMax        time.Duration // retry delay cap (default 5s)
	StealThreshold    int           // ring-owner load above which cold jobs steal (default 1)
	Replicas          int           // virtual nodes per member on the ring (default 64)
	ParkTimeout       time.Duration // how long an orphaned job waits for a node before failing (default 2m)
	Seed              int64         // backoff-jitter seed (0 = fixed default)
	Log               *log.Logger
	Trace             *trace.Tracer // nil disables coordinator tracing
}

func (c *Config) fill() {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = c.HeartbeatInterval / 2
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 5 * time.Second
	}
	if c.MissThreshold <= 0 {
		c.MissThreshold = 3
	}
	if c.RecoverBeats <= 0 {
		c.RecoverBeats = 2
	}
	if c.MaxRecoverBeats <= 0 {
		c.MaxRecoverBeats = 32
	}
	if c.FlapWindow <= 0 {
		c.FlapWindow = time.Minute
	}
	if c.FetchInterval <= 0 {
		c.FetchInterval = 250 * time.Millisecond
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 5
	}
	if c.StealThreshold <= 0 {
		c.StealThreshold = 1
	}
	if c.Replicas <= 0 {
		c.Replicas = 64
	}
	if c.ParkTimeout <= 0 {
		c.ParkTimeout = 2 * time.Minute
	}
	if c.Log == nil {
		c.Log = log.New(io.Discard, "", 0)
	}
}

// Coordinator is the cluster front end: node registry + health monitor +
// job router. Create with New, register nodes with AddNode, submit with
// Submit, and Close when done.
type Coordinator struct {
	cfg Config
	met *Metrics
	trc *clusterTrace
	bo  *Backoff
	hc  *http.Client

	// store caches artifacts passing through the coordinator — client
	// uploads, peer proxy fetches, pulled checkpoints — so placement can
	// push them to nodes without a round trip to wherever they came from.
	// Memory-only: the nodes own the durable tier.
	store *store.Store

	mu      sync.Mutex
	nodes   map[string]*node
	ring    *Ring
	jobs    map[string]*cjob
	warm    map[string]string // route key -> node the key's engine is warm on
	flights map[string]*cjob  // spec hash -> in-flight job new identical submissions attach to

	stopc   chan struct{}
	stopped bool
	wg      sync.WaitGroup
}

// New builds a coordinator with no nodes.
func New(cfg Config) *Coordinator {
	cfg.fill()
	return &Coordinator{
		cfg:     cfg,
		met:     &Metrics{},
		trc:     newClusterTrace(cfg.Trace),
		bo:      NewBackoff(cfg.BackoffBase, cfg.BackoffMax, cfg.Seed),
		hc:      &http.Client{},
		store:   store.NewMemory(),
		nodes:   make(map[string]*node),
		ring:    NewRing(cfg.Replicas),
		jobs:    make(map[string]*cjob),
		warm:    make(map[string]string),
		flights: make(map[string]*cjob),
		stopc:   make(chan struct{}),
	}
}

// Metrics returns the coordinator's counter block.
func (c *Coordinator) Metrics() *Metrics { return c.met }

// Store returns the coordinator's artifact cache.
func (c *Coordinator) Store() *store.Store { return c.store }

// Tracer returns the flight recorder (nil when tracing is disabled).
func (c *Coordinator) Tracer() *trace.Tracer { return c.cfg.Trace }

// AddNode registers a node and starts its heartbeat monitor. Re-adding an
// existing name updates its URL and clears an operator drain.
func (c *Coordinator) AddNode(name, url string) error {
	if name == "" || url == "" {
		return errors.New("cluster: node name and url required")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return errors.New("cluster: coordinator closed")
	}
	if n, ok := c.nodes[name]; ok {
		n.mu.Lock()
		n.url = url
		n.manualDrain = false
		n.mu.Unlock()
		n.client = newNodeClient(url, c.hc)
		return nil
	}
	n := &node{name: name, url: url, client: newNodeClient(url, c.hc)}
	c.nodes[name] = n
	c.ring.Add(name)
	c.wg.Add(1)
	go c.monitorNode(n)
	c.cfg.Log.Printf("node %s registered at %s", name, url)
	return nil
}

// DrainNode marks a node draining from the coordinator's side: no new
// work is routed to it and its in-flight jobs are handed off to healthy
// nodes from their last checkpoints (being cancelled on the drained node
// best-effort). The node's process is left running.
func (c *Coordinator) DrainNode(name string) error {
	c.mu.Lock()
	n, ok := c.nodes[name]
	c.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	n.setManualDrain(true)
	if tk := c.trc.nodeTrack(name); tk != nil {
		tk.Instant(c.trc.phState, time.Now(), int64(StatusDraining))
	}
	c.cfg.Log.Printf("node %s: operator drain", name)
	return nil
}

// NodeViews snapshots every registered node.
func (c *Coordinator) NodeViews() []NodeView {
	c.mu.Lock()
	names := make([]*node, 0, len(c.nodes))
	for _, n := range c.nodes {
		names = append(names, n)
	}
	c.mu.Unlock()
	out := make([]NodeView, 0, len(names))
	for _, n := range names {
		out = append(out, n.view())
	}
	return out
}

// Close stops the health monitors and job watchers. In-flight jobs keep
// running on their nodes; the coordinator simply stops observing them.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		c.wg.Wait()
		return
	}
	c.stopped = true
	close(c.stopc)
	c.mu.Unlock()
	c.wg.Wait()
}

// sleep waits d or until the coordinator closes; it reports false on close.
func (c *Coordinator) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.stopc:
		return false
	}
}

// --- health monitoring ----------------------------------------------------

// monitorNode is one node's heartbeat loop: probe /readyz every interval,
// fold the outcome into the health state machine, and trigger handoff when
// the node transitions into Unhealthy or Draining.
func (c *Coordinator) monitorNode(n *node) {
	defer c.wg.Done()
	tk := c.trc.nodeTrack(n.name)
	for {
		start := time.Now()
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
		b := n.client.readyz(ctx)
		cancel()
		if tk != nil {
			tk.Span(c.trc.phProbe, start, time.Now(), int64(b.load))
		}
		if b.err != nil {
			c.met.BeatMisses.Add(1)
			if tk != nil {
				n.mu.Lock()
				missed := n.missed + 1
				n.mu.Unlock()
				tk.Instant(c.trc.phMiss, time.Now(), int64(missed))
			}
		}
		st, changed := n.apply(b, &c.cfg)
		if changed {
			if tk != nil {
				tk.Instant(c.trc.phState, time.Now(), int64(st))
			}
			c.cfg.Log.Printf("node %s: %s", n.name, st)
			if st == StatusUnhealthy || st == StatusDraining {
				// The per-job watchers notice the status themselves; nothing
				// to push here. Dropping the warm pins stops fresh jobs from
				// preferring the dead node.
				c.dropPins(n.name)
			}
		}
		if !c.sleep(c.cfg.HeartbeatInterval) {
			return
		}
	}
}

// dropPins forgets warm-key pins to a node that stopped being routable.
func (c *Coordinator) dropPins(name string) {
	c.mu.Lock()
	for k, v := range c.warm {
		if v == name {
			delete(c.warm, k)
		}
	}
	c.mu.Unlock()
}

// routableCount returns how many nodes can accept work right now.
func (c *Coordinator) routableCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, nd := range c.nodes {
		if nd.routable() {
			n++
		}
	}
	return n
}

// RetryAfterHint is the shed hint in whole seconds: roughly one full
// failure-detection window, after which a recovered or newly registered
// node would be routable.
func (c *Coordinator) RetryAfterHint() int {
	d := time.Duration(c.cfg.MissThreshold) * c.cfg.HeartbeatInterval
	sec := int((d + time.Second - 1) / time.Second)
	if sec < 1 {
		sec = 1
	}
	return sec
}

// --- routing --------------------------------------------------------------

// RouteKey condenses the engine-identity fields of a spec — mesh, numeric
// parameters, engine kind, worker count — into the string the ring hashes.
// Two jobs with the same RouteKey share a cached engine on whichever node
// they land, so routing by it pins hot meshes to warm nodes. The spec must
// be validated (defaults normalized) first.
func RouteKey(spec serve.JobSpec) string {
	h := sha256.New()
	fmt.Fprintf(h, "scenario=%s|mesh=%s/%s/%d/%d/%d/%d|mach=%x|alpha=%x|engine=%s|workers=%d|levels=%d|cycle=%s",
		spec.Scenario, spec.Mesh.Hash, spec.Mesh.Path, spec.Mesh.NX, spec.Mesh.NY, spec.Mesh.NZ, spec.Mesh.Seed,
		spec.Mach, spec.AlphaDeg, spec.Engine, spec.Workers, spec.Levels, spec.Cycle)
	return hex.EncodeToString(h.Sum(nil)[:8])
}

// route picks the node for key, skipping exclude: the warm pin if
// routable, else the first routable node in ring order — and for cold keys
// whose ring owner is already loaded, the least-loaded routable node
// instead (work stealing). It reports (nil, false) when no node is
// routable.
func (c *Coordinator) route(key string, exclude map[string]bool) (*node, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if pin, ok := c.warm[key]; ok && !exclude[pin] {
		if n := c.nodes[pin]; n != nil && n.routable() {
			return n, true
		}
	}
	var owner *node
	for _, name := range c.ring.Order(key) {
		if exclude[name] {
			continue
		}
		if n := c.nodes[name]; n != nil && n.routable() {
			owner = n
			break
		}
	}
	if owner == nil {
		return nil, false
	}
	if _, warm := c.warm[key]; !warm && int(owner.inflight.Load()) >= c.cfg.StealThreshold {
		// Cold key on a busy owner: nothing is warm anywhere, so place it
		// wherever the queue is shortest.
		best := owner
		for name, n := range c.nodes {
			if exclude[name] || !n.routable() {
				continue
			}
			if n.inflight.Load() < best.inflight.Load() {
				best = n
			}
		}
		if best != owner {
			c.met.Steals.Add(1)
			owner = best
		}
	}
	return owner, true
}

// pin records that key's engine is now warm on node name.
func (c *Coordinator) pin(key, name string) {
	c.mu.Lock()
	c.warm[key] = name
	c.mu.Unlock()
}

// --- jobs -----------------------------------------------------------------

// cjob is one job tracked by the coordinator across placements — or, when
// primary is set, a coalesced waiter that never places at all: it mirrors
// the primary's terminal view when that run lands.
type cjob struct {
	ID       string
	Spec     serve.JobSpec
	key      string
	specHash string // coalescing key; identical live submissions attach here
	done     chan struct{}

	// Waiter-only fields (nil/unused on placed jobs).
	primary    *cjob
	cancelc    chan struct{}
	cancelOnce sync.Once

	mu        sync.Mutex
	node      string // current placement ("" while unplaced)
	view      serve.JobView
	ckpt      []byte // last pulled checkpoint, raw meshio bytes
	ckptHash  string // the checkpoint's key in the coordinator's store
	ckptCycle int
	handoffs  int
	cancelled bool // cancel requested through the coordinator
	parties   int  // coalescing: submissions still interested in this run
	dead      bool // last party left; the run is being cancelled
}

// join atomically admits one more party to this job's flight; it reports
// false when the flight can no longer be joined (all parties cancelled,
// or the run already finished).
func (j *cjob) join() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dead || j.parties <= 0 {
		return false
	}
	select {
	case <-j.done:
		return false
	default:
	}
	j.parties++
	return true
}

// Done returns a channel closed when the job reaches a terminal state (or
// the coordinator gives up on it).
func (j *cjob) Done() <-chan struct{} { return j.done }

// JobView is the coordinator's view of a job: the owning node's view plus
// placement and handoff bookkeeping.
type JobView struct {
	serve.JobView
	Node            string `json:"node,omitempty"`
	Handoffs        int    `json:"handoffs"`
	CheckpointCycle int    `json:"checkpoint_cycle,omitempty"`
}

// View snapshots the job.
func (j *cjob) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{JobView: j.view, Node: j.node, Handoffs: j.handoffs, CheckpointCycle: j.ckptCycle}
	v.ID, v.Spec = j.ID, j.Spec
	if v.State == "" {
		v.State = serve.StateQueued
	}
	return v
}

func newClusterJobID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err)
	}
	return "c" + hex.EncodeToString(b[:])
}

// Submit validates and accepts a job, returning ErrNoHealthyNodes (shed)
// while the cluster is fully degraded. Placement, retries and handoffs run
// asynchronously; watch the job through Done and View.
func (c *Coordinator) Submit(spec serve.JobSpec) (*cjob, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if c.routableCount() == 0 {
		c.met.Sheds.Add(1)
		if tk := c.trc.jobTrack("shed"); tk != nil {
			tk.Instant(c.trc.phShed, time.Now(), 0)
		}
		return nil, ErrNoHealthyNodes
	}
	specHash := spec.SpecHash()
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return nil, errors.New("cluster: coordinator closed")
	}
	if p := c.flights[specHash]; p != nil && p.join() {
		// An identical job is already in flight somewhere on the cluster:
		// attach instead of dispatching a duplicate run. The waiter is a
		// full job — pollable, cancellable — that mirrors the primary's
		// terminal view, which is bitwise identical to what its own run
		// would have produced.
		att := &cjob{
			ID:      newClusterJobID(),
			Spec:    spec,
			key:     RouteKey(spec),
			primary: p,
			cancelc: make(chan struct{}),
			done:    make(chan struct{}),
		}
		att.view.ID = att.ID
		att.view.State = serve.StateCoalesced
		att.view.CoalescedWith = p.ID
		c.jobs[att.ID] = att
		c.wg.Add(1)
		c.mu.Unlock()
		c.met.Submitted.Add(1)
		c.met.CoalesceAttach.Add(1)
		if tk := c.trc.jobTrack(att.ID); tk != nil {
			tk.Instant(c.trc.phAttach, time.Now(), 0)
		}
		c.cfg.Log.Printf("job %s: coalesced onto %s", att.ID, p.ID)
		go c.mirror(p, att)
		return att, nil
	}
	j := &cjob{ID: newClusterJobID(), Spec: spec, key: RouteKey(spec), specHash: specHash, done: make(chan struct{})}
	j.parties = 1
	c.jobs[j.ID] = j
	c.flights[specHash] = j
	c.wg.Add(1)
	c.mu.Unlock()
	c.met.Submitted.Add(1)
	go c.runJob(j)
	return j, nil
}

// mirror is a coalesced waiter's watcher: copy the primary's terminal
// view when its run lands, or detach on the waiter's own cancellation
// (the primary's run is cancelled only when its last party leaves).
func (c *Coordinator) mirror(p, att *cjob) {
	defer c.wg.Done()
	select {
	case <-p.done:
		pv := p.View()
		att.mu.Lock()
		att.view = pv.JobView
		att.view.ID = att.ID
		att.view.Spec = att.Spec
		att.view.CoalescedWith = p.ID
		att.node = pv.Node
		att.handoffs = pv.Handoffs
		att.ckptCycle = pv.CheckpointCycle
		att.mu.Unlock()
		c.met.CoalesceFanout.Add(1)
		if tk := c.trc.jobTrack(att.ID); tk != nil {
			tk.Instant(c.trc.phFanout, time.Now(), int64(pv.Cycles))
		}
		close(att.done)
	case <-att.cancelc:
		att.mu.Lock()
		att.view.State = serve.StateCancelled
		att.cancelled = true
		att.mu.Unlock()
		c.met.Cancelled.Add(1)
		if tk := c.trc.jobTrack(att.ID); tk != nil {
			tk.Instant(c.trc.phDone, time.Now(), 0)
		}
		close(att.done)
		c.leaveParty(p)
	}
}

// leaveParty drops one interested party from a flight; the last one out
// cancels the underlying run on its node.
func (c *Coordinator) leaveParty(j *cjob) {
	j.mu.Lock()
	j.parties--
	last := j.parties <= 0 && !j.dead
	if last {
		j.dead = true
		j.cancelled = true
	}
	name := j.node
	j.mu.Unlock()
	if !last {
		return
	}
	if n := c.nodeByName(name); n != nil {
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.CallTimeout)
		defer cancel()
		n.client.cancel(ctx, j.ID)
	}
}

// retireFlight deregisters a finished job's flight so late identical
// submissions start a fresh run instead of attaching to a closed one. It
// runs before the job's done channel closes.
func (c *Coordinator) retireFlight(j *cjob) {
	if j.specHash == "" {
		return
	}
	c.mu.Lock()
	if c.flights[j.specHash] == j {
		delete(c.flights, j.specHash)
	}
	c.mu.Unlock()
}

// Job looks a job up by ID.
func (c *Coordinator) Job(id string) (*cjob, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// Cancel requests cooperative cancellation. Coalesced flights are
// party-counted: cancelling a waiter (or the original submitter) detaches
// only that caller; the run on the node is cancelled when the last
// interested party leaves.
func (c *Coordinator) Cancel(id string) (*cjob, error) {
	j, err := c.Job(id)
	if err != nil {
		return nil, err
	}
	if j.primary != nil {
		j.cancelOnce.Do(func() { close(j.cancelc) })
		return j, nil
	}
	j.mu.Lock()
	if j.specHash != "" {
		if j.cancelled {
			j.mu.Unlock()
			return j, nil
		}
		j.cancelled = true
		j.mu.Unlock()
		c.leaveParty(j)
		return j, nil
	}
	j.cancelled = true
	name := j.node
	j.mu.Unlock()
	if n := c.nodeByName(name); n != nil {
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.CallTimeout)
		defer cancel()
		n.client.cancel(ctx, id)
	}
	return j, nil
}

func (c *Coordinator) nodeByName(name string) *node {
	if name == "" {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[name]
}

// watchOutcome is what one placement's watch loop ended with.
type watchOutcome int

const (
	watchDone    watchOutcome = iota // job terminal (or coordinator closed)
	watchHandoff                     // node died or drained: re-dispatch
)

// runJob drives one job across placements until it reaches a terminal
// state: place (with retries and stealing), watch (view + checkpoint
// polling), and on node death or drain loop back and hand off from the
// last pulled checkpoint.
func (c *Coordinator) runJob(j *cjob) {
	defer c.wg.Done()
	defer close(j.done)
	defer c.retireFlight(j) // before done closes: no attaching to a closed run
	parkDeadline := time.Now().Add(c.cfg.ParkTimeout)
	for {
		n, err := c.place(j)
		if err != nil {
			if errors.Is(err, ErrNoHealthyNodes) {
				// Degraded: every node is down or saturated. Park and retry
				// after a beat; fail only after ParkTimeout so a recovering
				// cluster picks orphans back up.
				if time.Now().After(parkDeadline) {
					c.failJob(j, "no healthy node within park timeout")
					return
				}
				if !c.sleep(c.cfg.HeartbeatInterval) {
					return
				}
				continue
			}
			c.failJob(j, err.Error())
			return
		}
		parkDeadline = time.Now().Add(c.cfg.ParkTimeout)
		switch c.watch(j, n) {
		case watchDone:
			return
		case watchHandoff:
			n.inflight.Add(-1)
			j.mu.Lock()
			j.node = ""
			j.handoffs++
			cycle := j.ckptCycle
			j.mu.Unlock()
			c.met.Handoffs.Add(1)
			if tk := c.trc.jobTrack(j.ID); tk != nil {
				tk.Instant(c.trc.phHandoff, time.Now(), int64(cycle))
			}
			// Best-effort cancel on the old node in case it is merely
			// drained or partitioned, not dead — the job's identity moves
			// with the coordinator, and a zombie duplicate would only waste
			// the old node's cycles.
			if n.statusNow() != StatusUnhealthy {
				ctx, cancel := context.WithTimeout(context.Background(), c.cfg.CallTimeout)
				n.client.cancel(ctx, j.ID)
				cancel()
			}
			c.cfg.Log.Printf("job %s: handing off from %s at checkpoint cycle %d", j.ID, n.name, cycle)
		}
	}
}

// place dispatches j to a routed node, retrying across the budget with
// jittered backoff and honoring Retry-After hints. Nodes that answer 429
// are excluded for the rest of the round, which is how a saturated ring
// owner's overflow spreads to its peers.
func (c *Coordinator) place(j *cjob) (*node, error) {
	exclude := make(map[string]bool)
	for attempt := 0; attempt < c.cfg.RetryBudget; attempt++ {
		select {
		case <-c.stopc:
			return nil, errors.New("cluster: coordinator closed")
		default:
		}
		n, ok := c.route(j.key, exclude)
		if !ok {
			return nil, ErrNoHealthyNodes
		}
		// Hash-aware placement: if the routed node would need the job's
		// artifacts pushed but a routable peer already holds them, place on
		// the holder instead — HEAD probes are cheap, blob pushes are not.
		if holder := c.artifactAffinity(j, n, exclude); holder != nil {
			n = holder
		}
		// A hash-named mesh must be on the node before the spec referencing
		// it lands there; a node the artifact cannot reach is excluded for
		// the round.
		if h := j.Spec.Mesh.Hash; h != "" {
			if err := c.ensureArtifact(n, h); err != nil {
				c.cfg.Log.Printf("job %s: mesh artifact for %s: %v", j.ID, n.name, err)
				exclude[n.name] = true
				c.met.Retries.Add(1)
				if tk := c.trc.jobTrack(j.ID); tk != nil {
					tk.Instant(c.trc.phRetry, time.Now(), int64(attempt))
				}
				if !c.sleep(c.bo.DelayAfter(attempt, 0)) {
					return nil, errors.New("cluster: coordinator closed")
				}
				continue
			}
		}
		sr := submitRequest{JobSpec: j.Spec, ID: j.ID}
		j.mu.Lock()
		ckpt, ckptHash := j.ckpt, j.ckptHash
		j.mu.Unlock()
		// Hand checkpoints over by reference when possible: push the blob
		// into the node's store and send only its hash. The inline base64
		// copy remains the fallback for nodes the artifact cannot reach.
		if ckptHash != "" && c.ensureArtifact(n, ckptHash) == nil {
			sr.ResumeHash = ckptHash
		} else if len(ckpt) > 0 {
			sr.Resume = encodeCheckpoint(ckpt)
		}
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.CallTimeout)
		view, code, after, err := n.client.submit(ctx, sr)
		cancel()
		if err == nil {
			n.inflight.Add(1)
			c.pin(j.key, n.name)
			j.mu.Lock()
			j.node = n.name
			j.view = view
			j.mu.Unlock()
			c.met.Dispatches.Add(1)
			if tk := c.trc.jobTrack(j.ID); tk != nil {
				tk.Instant(c.trc.phDispatch, time.Now(), int64(attempt))
			}
			c.cfg.Log.Printf("job %s: dispatched to %s (attempt %d)", j.ID, n.name, attempt)
			return n, nil
		}
		// Two failure shapes can still mean the node holds the job: a
		// transport error whose POST landed but whose response was lost,
		// and a duplicate-ID rejection from a node that flapped unhealthy
		// while the job kept running on it. Either way, if the node knows
		// the job, adopt that placement instead of failing — the job's
		// identity lives with the coordinator, not the placement attempt.
		if code == 0 || code == http.StatusBadRequest {
			vctx, vcancel := context.WithTimeout(context.Background(), c.cfg.CallTimeout)
			if v, verr := n.client.view(vctx, j.ID); verr == nil && v.ID == j.ID {
				vcancel()
				n.inflight.Add(1)
				c.pin(j.key, n.name)
				j.mu.Lock()
				j.node = n.name
				j.view = v
				j.mu.Unlock()
				c.met.Dispatches.Add(1)
				c.cfg.Log.Printf("job %s: adopted existing placement on %s", j.ID, n.name)
				return n, nil
			}
			vcancel()
		}
		switch {
		case code == http.StatusTooManyRequests:
			exclude[n.name] = true // full queue: steal to a peer this round
		case code == http.StatusServiceUnavailable:
			exclude[n.name] = true // draining or refusing: go elsewhere
		case code == http.StatusPreconditionFailed:
			exclude[n.name] = true // artifact vanished between push and submit
		case code >= 400 && code < 500:
			return nil, fmt.Errorf("cluster: node %s rejected job: %w", n.name, err)
		}
		c.met.Retries.Add(1)
		if tk := c.trc.jobTrack(j.ID); tk != nil {
			tk.Instant(c.trc.phRetry, time.Now(), int64(attempt))
		}
		if !c.sleep(c.bo.DelayAfter(attempt, after)) {
			return nil, errors.New("cluster: coordinator closed")
		}
	}
	// Budget exhausted without a placement: treat like full degradation so
	// the caller parks and retries rather than failing the job outright.
	return nil, ErrNoHealthyNodes
}

// watch polls the job's view and checkpoint on its node until the job
// reaches a terminal state or the node stops being a sane host for it.
func (c *Coordinator) watch(j *cjob, n *node) watchOutcome {
	misses := 0
	for {
		if !c.sleep(c.cfg.FetchInterval) {
			return watchDone
		}
		if st := n.statusNow(); st == StatusUnhealthy || st == StatusDraining {
			return watchHandoff
		}
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.CallTimeout)
		v, err := n.client.view(ctx, j.ID)
		cancel()
		if err != nil {
			// The health monitor owns death detection, but a node that
			// answers probes while losing job state (restarted without its
			// state dir, say) must also trigger a handoff eventually.
			misses++
			if misses > c.cfg.MissThreshold {
				return watchHandoff
			}
			continue
		}
		misses = 0
		j.mu.Lock()
		j.view = v
		j.mu.Unlock()
		switch v.State {
		case serve.StateCompleted, serve.StateFailed, serve.StateCancelled, serve.StateExpired:
			c.finishJob(j, n, v)
			return watchDone
		case serve.StateDrained:
			// The node checkpointed the job during its own graceful drain;
			// grab that final checkpoint if the process is still up, then
			// hand off.
			c.pullCheckpoint(j, n)
			return watchHandoff
		case serve.StateRunning:
			c.pullCheckpoint(j, n)
		}
	}
}

// pullCheckpoint fetches the job's latest periodic checkpoint from its
// node and keeps it if it parses (CRC-valid) and is newer than what we
// hold. The raw bytes are retained for re-upload on handoff.
func (c *Coordinator) pullCheckpoint(j *cjob, n *node) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.CallTimeout)
	raw, err := n.client.checkpoint(ctx, j.ID)
	cancel()
	if err != nil || len(raw) == 0 {
		return
	}
	ck, err := decodeCheckpoint(raw)
	if err != nil {
		return // torn or corrupt snapshot: keep the previous one
	}
	j.mu.Lock()
	if ck.Cycle > j.ckptCycle {
		j.ckpt = raw
		j.ckptCycle = ck.Cycle
		// Content-address the snapshot so a handoff can move it by hash;
		// if the cache later evicts it, the inline bytes still dispatch.
		if hash, err := c.store.Put(raw); err == nil {
			j.ckptHash = hash
		}
		c.met.CkptPulls.Add(1)
		if tk := c.trc.jobTrack(j.ID); tk != nil {
			tk.Instant(c.trc.phCkpt, time.Now(), int64(ck.Cycle))
		}
	}
	j.mu.Unlock()
}

// finishJob records a job's terminal view from its node.
func (c *Coordinator) finishJob(j *cjob, n *node, v serve.JobView) {
	n.inflight.Add(-1)
	j.mu.Lock()
	j.view = v
	j.mu.Unlock()
	switch v.State {
	case serve.StateCompleted:
		c.met.Completed.Add(1)
	case serve.StateCancelled:
		c.met.Cancelled.Add(1)
	case serve.StateExpired:
		c.met.Expired.Add(1)
	default:
		c.met.Failed.Add(1)
	}
	if tk := c.trc.jobTrack(j.ID); tk != nil {
		tk.Instant(c.trc.phDone, time.Now(), int64(v.Cycles))
	}
	c.cfg.Log.Printf("job %s: %s on %s (%d cycles)", j.ID, v.State, n.name, v.Cycles)
}

// failJob marks a job failed coordinator-side (no node view to mirror).
func (c *Coordinator) failJob(j *cjob, msg string) {
	j.mu.Lock()
	j.view.ID = j.ID
	j.view.State = serve.StateFailed
	j.view.Error = msg
	j.mu.Unlock()
	c.met.Failed.Add(1)
	c.cfg.Log.Printf("job %s: failed: %s", j.ID, msg)
}

// encodeCheckpoint / decodeCheckpoint translate between the raw meshio
// bytes the nodes serve and the base64 form the solve endpoint accepts.
func encodeCheckpoint(raw []byte) string {
	return base64.StdEncoding.EncodeToString(raw)
}

func decodeCheckpoint(raw []byte) (*meshio.Checkpoint, error) {
	return meshio.ReadCheckpoint(bytes.NewReader(raw))
}
