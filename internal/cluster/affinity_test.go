package cluster

import (
	"testing"

	"eul3d/internal/meshgen"
	"eul3d/internal/meshio"
	"eul3d/internal/serve"
	"eul3d/internal/store"
)

// Hash-aware placement: a job whose spec names a mesh artifact lands on
// the node that already holds the bytes, even when the ring would route
// it elsewhere — and because the holder is picked by HEAD probe, no
// artifact push happens at all.
func TestClusterHashAffinity(t *testing.T) {
	n1 := startNode(t, serve.Config{})
	n2 := startNode(t, serve.Config{})
	nodes := map[string]*testNode{"n1": n1, "n2": n2}
	c := New(fastCfg())
	defer c.Close()
	if err := c.AddNode("n1", n1.srv.URL); err != nil {
		t.Fatal(err)
	}
	if err := c.AddNode("n2", n2.srv.URL); err != nil {
		t.Fatal(err)
	}
	waitRoutable(t, c, 2)

	ms, err := meshgen.Sequence(meshgen.DefaultChannel(6, 3, 2, 9), 1)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := meshio.EncodeMesh(ms[0])
	if err != nil {
		t.Fatal(err)
	}

	spec := serve.JobSpec{
		Mesh:   serve.MeshSpec{Hash: store.Sum(blob)},
		Mach:   0.5,
		Engine: serve.KindSingle,
		Cycles: 30,
	}

	// Seed the artifact ONLY on the node the ring would not pick, so the
	// reroute is observable. The coordinator's own cache stays empty too:
	// if affinity failed, placement would have to proxy+push (bumping
	// ArtifactPushes), which the test asserts never happens.
	holder := "n2"
	if c.ring.Owner(RouteKey(spec)) == "n2" {
		holder = "n1"
	}
	if _, err := nodes[holder].sched.Store().Put(blob); err != nil {
		t.Fatal(err)
	}

	j := submitCluster(t, c, spec)
	v := waitClusterDone(t, j)
	if v.State != serve.StateCompleted {
		t.Fatalf("job ended %s: %s", v.State, v.Error)
	}
	if v.Node != holder {
		t.Errorf("job placed on %s, want artifact holder %s (ring owner %s)",
			v.Node, holder, c.ring.Owner(RouteKey(spec)))
	}
	m := c.Metrics()
	if got := m.HashPlacements.Load(); got < 1 {
		t.Errorf("HashPlacements counter %d, want >= 1", got)
	}
	if got := m.ArtifactPushes.Load(); got != 0 {
		t.Errorf("ArtifactPushes counter %d, want 0 (placement should follow the bytes)", got)
	}

	// A repeat of the same spec sticks to the holder through the warm
	// engine pin; affinity does not fight warmth.
	j2 := submitCluster(t, c, spec)
	v2 := waitClusterDone(t, j2)
	if v2.State != serve.StateCompleted {
		t.Fatalf("repeat job ended %s: %s", v2.State, v2.Error)
	}
	if v2.Node != holder {
		t.Errorf("repeat job placed on %s, want pinned holder %s", v2.Node, holder)
	}
}
