package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"eul3d/internal/meshgen"
	"eul3d/internal/meshio"
	"eul3d/internal/serve"
	"eul3d/internal/store"
)

func submitCluster(t *testing.T, c *Coordinator, spec serve.JobSpec) *cjob {
	t.Helper()
	j, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func waitClusterState(t *testing.T, j *cjob, want serve.JobState) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if j.View().State == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("cluster job %s stuck in %s, want %s", j.ID, j.View().State, want)
}

// Identical concurrent submissions to the coordinator dispatch exactly one
// run to the fleet; every submission receives the same bitwise result.
func TestClusterCoalesceDedup(t *testing.T) {
	n := startNode(t, serve.Config{Runners: 1})
	c := New(fastCfg())
	defer c.Close()
	if err := c.AddNode("n1", n.srv.URL); err != nil {
		t.Fatal(err)
	}
	waitRoutable(t, c, 1)

	spec := clusterSpec(5, 4000)
	leader := submitCluster(t, c, spec)
	waiters := make([]*cjob, 3)
	for i := range waiters {
		waiters[i] = submitCluster(t, c, spec)
		if got := waiters[i].View().CoalescedWith; got != leader.ID {
			t.Fatalf("waiter %d coalesced with %q, want %q", i, got, leader.ID)
		}
	}

	lv := waitClusterDone(t, leader)
	if lv.State != serve.StateCompleted {
		t.Fatalf("leader ended %s: %s", lv.State, lv.Error)
	}
	for i, w := range waiters {
		v := waitClusterDone(t, w)
		if v.State != serve.StateCompleted {
			t.Fatalf("waiter %d ended %s: %s", i, v.State, v.Error)
		}
		if v.CoalescedWith != leader.ID || v.ID == leader.ID {
			t.Errorf("waiter %d lost its identity: id %s coalesced_with %q", i, v.ID, v.CoalescedWith)
		}
		if len(v.History) != len(lv.History) {
			t.Fatalf("waiter %d history %d cycles, leader %d", i, len(v.History), len(lv.History))
		}
		for cyc := range v.History {
			if v.History[cyc] != lv.History[cyc] {
				t.Fatalf("waiter %d history diverges at cycle %d", i, cyc)
			}
		}
	}

	// The node saw exactly one submission: the duplicates never left the
	// coordinator.
	if got := n.sched.Metrics().Submitted.Load(); got != 1 {
		t.Errorf("node admitted %d jobs, want 1", got)
	}
	m := c.Metrics()
	if got := m.CoalesceAttach.Load(); got != 3 {
		t.Errorf("coalesce attaches %d, want 3", got)
	}
	if got := m.CoalesceFanout.Load(); got != 3 {
		t.Errorf("coalesce fanouts %d, want 3", got)
	}
	if got := m.Completed.Load(); got != 1 {
		t.Errorf("completed %d, want 1 (waiters are fanouts, not runs)", got)
	}

	// The flight is retired with the run: a late identical submission
	// starts fresh instead of attaching to the finished job.
	late := submitCluster(t, c, spec)
	if got := late.View().CoalescedWith; got != "" {
		t.Fatalf("late submission coalesced with finished job %q", got)
	}
	waitClusterDone(t, late)
}

// Party-counted cancellation at the coordinator: one waiter (or the
// original submitter) leaving keeps the run alive; the last party out
// cancels it on its node.
func TestClusterCoalesceCancelParties(t *testing.T) {
	n := startNode(t, serve.Config{Runners: 1})
	c := New(fastCfg())
	defer c.Close()
	if err := c.AddNode("n1", n.srv.URL); err != nil {
		t.Fatal(err)
	}
	waitRoutable(t, c, 1)

	spec := clusterSpec(6, 500000)
	leader := submitCluster(t, c, spec)
	waitClusterState(t, leader, serve.StateRunning)
	w1 := submitCluster(t, c, spec)
	w2 := submitCluster(t, c, spec)

	// Waiter 1 leaves: its own view is cancelled, the run is not.
	if _, err := c.Cancel(w1.ID); err != nil {
		t.Fatal(err)
	}
	select {
	case <-w1.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled waiter did not detach")
	}
	if st := w1.View().State; st != serve.StateCancelled {
		t.Fatalf("waiter state %s, want cancelled", st)
	}

	// The original submitter leaves: w2 still holds the run alive.
	if _, err := c.Cancel(leader.ID); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if st := leader.View().State; st != serve.StateRunning {
		t.Fatalf("leader state %s after submitter cancel, want running (w2 attached)", st)
	}

	// The last party leaves: the node's run is cancelled and everyone
	// left observes the terminal state.
	if _, err := c.Cancel(w2.ID); err != nil {
		t.Fatal(err)
	}
	lv := waitClusterDone(t, leader)
	wv := waitClusterDone(t, w2)
	if lv.State != serve.StateCancelled {
		t.Fatalf("leader ended %s, want cancelled", lv.State)
	}
	if wv.State != serve.StateCancelled {
		t.Fatalf("waiter 2 ended %s, want cancelled", wv.State)
	}
}

// Artifacts flow through the coordinator by hash: a client uploads mesh
// bytes once, solves by hash on whatever node placement picks (the
// coordinator pushes the blob there), and artifact GETs proxy from nodes
// that hold the bytes.
func TestClusterArtifactFlow(t *testing.T) {
	n1 := startNode(t, serve.Config{})
	n2 := startNode(t, serve.Config{})
	c := New(fastCfg())
	defer c.Close()
	if err := c.AddNode("n1", n1.srv.URL); err != nil {
		t.Fatal(err)
	}
	if err := c.AddNode("n2", n2.srv.URL); err != nil {
		t.Fatal(err)
	}
	waitRoutable(t, c, 2)
	api := httptest.NewServer(NewAPI(c).Handler())
	defer api.Close()

	// Upload the exact mesh clusterSpec(5, ...) would generate.
	ms, err := meshgen.Sequence(meshgen.DefaultChannel(6, 3, 2, 5), 1)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := meshio.EncodeMesh(ms[0])
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPut, api.URL+"/v1/artifacts", bytes.NewReader(blob))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var put struct {
		Hash string `json:"hash"`
	}
	if err := jsonDecodeBody(resp, &put); err != nil {
		t.Fatal(err)
	}
	if put.Hash != store.Sum(blob) {
		t.Fatalf("upload hash %s, want %s", put.Hash, store.Sum(blob))
	}

	// Solve by hash: placement pushes the artifact to the chosen node.
	spec := serve.JobSpec{
		Mesh:   serve.MeshSpec{Hash: put.Hash},
		Mach:   0.5,
		Engine: serve.KindSingle,
		Cycles: 50,
	}
	hj := submitCluster(t, c, spec)
	hv := waitClusterDone(t, hj)
	if hv.State != serve.StateCompleted {
		t.Fatalf("solve-by-hash ended %s: %s", hv.State, hv.Error)
	}
	if c.Metrics().ArtifactPushes.Load() < 1 {
		t.Error("placement did not push the mesh artifact to a node")
	}

	// Bitwise equality with the generator-spec run of the same mesh.
	dj := submitCluster(t, c, clusterSpec(5, 50))
	dv := waitClusterDone(t, dj)
	if dv.State != serve.StateCompleted {
		t.Fatalf("generator run ended %s: %s", dv.State, dv.Error)
	}
	if len(hv.History) != len(dv.History) {
		t.Fatalf("history %d vs %d cycles", len(hv.History), len(dv.History))
	}
	for cyc := range hv.History {
		if hv.History[cyc] != dv.History[cyc] {
			t.Fatalf("hash and generator runs diverge at cycle %d", cyc)
		}
	}

	// Proxy path: bytes that live only on a node are served through the
	// coordinator (and cached there).
	other := []byte("checkpoint-sized payload that lives on node 1 only")
	oreq, _ := http.NewRequest(http.MethodPut, n1.srv.URL+"/v1/artifacts", bytes.NewReader(other))
	oresp, err := http.DefaultClient.Do(oreq)
	if err != nil {
		t.Fatal(err)
	}
	var oput struct {
		Hash string `json:"hash"`
	}
	if err := jsonDecodeBody(oresp, &oput); err != nil {
		t.Fatal(err)
	}
	gresp, err := http.Get(api.URL + "/v1/artifacts/" + oput.Hash)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(gresp.Body)
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusOK || !bytes.Equal(got, other) {
		t.Fatalf("proxied GET: status %d, %d bytes", gresp.StatusCode, len(got))
	}
	if c.Metrics().ArtifactProxies.Load() < 1 {
		t.Error("coordinator served node-held bytes without counting a proxy")
	}

	// A hash nobody holds is a 404 through the API.
	absent := store.Sum([]byte("never uploaded"))
	aresp, err := http.Get(api.URL + "/v1/artifacts/" + absent)
	if err != nil {
		t.Fatal(err)
	}
	aresp.Body.Close()
	if aresp.StatusCode != http.StatusNotFound {
		t.Fatalf("absent artifact status %d, want 404", aresp.StatusCode)
	}
}

func jsonDecodeBody(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}
