package cluster

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"eul3d/internal/serve"
)

func jsonBody(s string) io.Reader { return strings.NewReader(s) }

// In-process cluster tests: real serve schedulers behind httptest servers
// play the nodes, so placement, health detection, checkpoint pulls and
// handoff run over genuine HTTP without spawning processes. (Process-level
// kill -9 coverage lives in the cmd/eul3dc smoke test.)

type testNode struct {
	sched *serve.Scheduler
	srv   *httptest.Server
}

func startNode(t *testing.T, cfg serve.Config) *testNode {
	t.Helper()
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 8
	}
	if cfg.Runners == 0 {
		cfg.Runners = 2
	}
	if cfg.WorkerBudget == 0 {
		cfg.WorkerBudget = 8
	}
	s := serve.NewScheduler(cfg)
	srv := httptest.NewServer(serve.NewAPI(s).Handler())
	n := &testNode{sched: s, srv: srv}
	t.Cleanup(n.kill)
	return n
}

// kill makes the node unreachable and tears down its scheduler; safe to
// call twice (cleanup after an explicit mid-test kill).
func (n *testNode) kill() {
	n.srv.Close()
	n.sched.Stop()
}

func fastCfg() Config {
	return Config{
		HeartbeatInterval: 25 * time.Millisecond,
		// Generous probe budget: every node here shares one CPU-saturated
		// test process, so a tight timeout would flap live nodes. Dead-node
		// detection stays fast — connection refused fails immediately.
		ProbeTimeout:  500 * time.Millisecond,
		CallTimeout:   5 * time.Second,
		MissThreshold: 3,
		RecoverBeats:  2,
		FetchInterval: 5 * time.Millisecond,
		BackoffBase:   5 * time.Millisecond,
		BackoffMax:    50 * time.Millisecond,
		ParkTimeout:   10 * time.Second,
	}
}

func waitRoutable(t *testing.T, c *Coordinator, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if c.routableCount() >= want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("only %d routable nodes, want %d (views %+v)", c.routableCount(), want, c.NodeViews())
}

func clusterSpec(seed int64, cycles int) serve.JobSpec {
	return serve.JobSpec{
		Mesh:   serve.MeshSpec{NX: 6, NY: 3, NZ: 2, Seed: seed},
		Mach:   0.5,
		Engine: serve.KindSingle,
		Cycles: cycles,
	}
}

func waitClusterDone(t *testing.T, j *cjob) JobView {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(120 * time.Second):
		t.Fatalf("cluster job %s stuck in %s", j.ID, j.View().State)
	}
	return j.View()
}

func TestClusterJobsCompleteAcrossNodes(t *testing.T) {
	n1 := startNode(t, serve.Config{})
	n2 := startNode(t, serve.Config{})
	c := New(fastCfg())
	defer c.Close()
	if err := c.AddNode("n1", n1.srv.URL); err != nil {
		t.Fatal(err)
	}
	if err := c.AddNode("n2", n2.srv.URL); err != nil {
		t.Fatal(err)
	}
	waitRoutable(t, c, 2)

	var jobs []*cjob
	for i := 0; i < 4; i++ {
		j, err := c.Submit(clusterSpec(int64(i+1), 50))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		v := waitClusterDone(t, j)
		if v.State != serve.StateCompleted {
			t.Fatalf("job %s ended %s: %s", j.ID, v.State, v.Error)
		}
		if v.Node == "" || len(v.History) != 50 {
			t.Fatalf("job %s: node %q, %d history entries", j.ID, v.Node, len(v.History))
		}
	}
	if got := c.Metrics().Completed.Load(); got != 4 {
		t.Errorf("completed counter %d, want 4", got)
	}

	// Warm affinity: repeats of one spec land on the node that built its
	// engine, regardless of ring position.
	a, err := c.Submit(clusterSpec(77, 40))
	if err != nil {
		t.Fatal(err)
	}
	va := waitClusterDone(t, a)
	b, err := c.Submit(clusterSpec(77, 40))
	if err != nil {
		t.Fatal(err)
	}
	vb := waitClusterDone(t, b)
	if va.Node != vb.Node {
		t.Errorf("warm key moved nodes: %s then %s", va.Node, vb.Node)
	}
}

func TestClusterShedsWithNoHealthyNode(t *testing.T) {
	c := New(fastCfg())
	defer c.Close()
	if _, err := c.Submit(clusterSpec(1, 10)); !errors.Is(err, ErrNoHealthyNodes) {
		t.Fatalf("submit with no nodes: %v, want ErrNoHealthyNodes", err)
	}
	// A registered-but-dead node must not change the answer.
	if err := c.AddNode("dead", "http://127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(clusterSpec(1, 10)); !errors.Is(err, ErrNoHealthyNodes) {
		t.Fatalf("submit with dead node: %v, want ErrNoHealthyNodes", err)
	}
	if got := c.Metrics().Sheds.Load(); got != 2 {
		t.Errorf("sheds counter %d, want 2", got)
	}

	// Over HTTP the shed is a 503 with a Retry-After hint.
	api := httptest.NewServer(NewAPI(c).Handler())
	defer api.Close()
	resp, err := http.Post(api.URL+"/v1/solve", "application/json",
		jsonBody(`{"mesh":{"nx":6,"ny":3,"nz":2,"seed":1},"mach":0.5,"engine":"single","cycles":10}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded submit: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("degraded 503 missing Retry-After")
	}
}

// TestClusterHandoffBitwise is the core fault-tolerance property at the
// package level: kill the node running a job after the coordinator has
// pulled a checkpoint, and the job must finish on the surviving node with
// a history bitwise identical to an uninterrupted single-node run.
func TestClusterHandoffBitwise(t *testing.T) {
	const cycles = 2000
	spec := clusterSpec(9, cycles)

	// Uninterrupted reference.
	ref := serve.NewScheduler(serve.Config{QueueCap: 4, Runners: 1, WorkerBudget: 4})
	defer ref.Stop()
	rj, err := ref.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-rj.Done():
	case <-time.After(120 * time.Second):
		t.Fatal("reference run did not finish")
	}
	want := rj.View().History
	if len(want) != cycles {
		t.Fatalf("reference history %d entries, want %d", len(want), cycles)
	}

	nodes := map[string]*testNode{
		"n1": startNode(t, serve.Config{StateDir: t.TempDir(), CheckpointEvery: 25}),
		"n2": startNode(t, serve.Config{StateDir: t.TempDir(), CheckpointEvery: 25}),
	}
	c := New(fastCfg())
	defer c.Close()
	for name, n := range nodes {
		if err := c.AddNode(name, n.srv.URL); err != nil {
			t.Fatal(err)
		}
	}
	waitRoutable(t, c, 2)

	j, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until a checkpoint has been pulled off the running node, so the
	// kill happens with handoff state in hand.
	deadline := time.Now().Add(60 * time.Second)
	var victim string
	for time.Now().Before(deadline) {
		v := j.View()
		if v.CheckpointCycle > 0 && v.Node != "" {
			victim = v.Node
			break
		}
		if v.State == serve.StateCompleted {
			t.Fatal("job finished before a checkpoint was pulled; raise cycles")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if victim == "" {
		t.Fatal("no checkpoint pulled within 60s")
	}
	killedAt := time.Now()
	nodes[victim].kill()

	// The dead node must be detected within the miss threshold (plus
	// generous scheduling slack) and the job handed off.
	for {
		if time.Now().After(killedAt.Add(30 * time.Second)) {
			t.Fatalf("node %s never marked unhealthy (views %+v)", victim, c.NodeViews())
		}
		if n := c.nodeByName(victim); n != nil && n.statusNow() == StatusUnhealthy {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	v := waitClusterDone(t, j)
	if v.State != serve.StateCompleted {
		t.Fatalf("job ended %s: %s", v.State, v.Error)
	}
	if v.Node == victim {
		t.Fatalf("job completed on the killed node %s", victim)
	}
	if v.Handoffs < 1 {
		t.Errorf("handoffs = %d, want >= 1", v.Handoffs)
	}
	if got := c.Metrics().Handoffs.Load(); got < 1 {
		t.Errorf("handoff counter %d, want >= 1", got)
	}
	if got := c.Metrics().CkptPulls.Load(); got < 1 {
		t.Errorf("checkpoint-pull counter %d, want >= 1", got)
	}
	if len(v.History) != cycles {
		t.Fatalf("final history %d entries, want %d", len(v.History), cycles)
	}
	for i := range want {
		if v.History[i] != want[i] {
			t.Fatalf("history diverges at cycle %d after handoff: %v != %v", i, v.History[i], want[i])
		}
	}
}

// TestClusterOperatorDrainHandsOff covers the graceful path: an operator
// drain moves the node's running job to a peer (from the drain checkpoint)
// and the node stops receiving work.
func TestClusterOperatorDrainHandsOff(t *testing.T) {
	nodes := map[string]*testNode{
		"n1": startNode(t, serve.Config{StateDir: t.TempDir(), CheckpointEvery: 25}),
		"n2": startNode(t, serve.Config{StateDir: t.TempDir(), CheckpointEvery: 25}),
	}
	c := New(fastCfg())
	defer c.Close()
	for name, n := range nodes {
		if err := c.AddNode(name, n.srv.URL); err != nil {
			t.Fatal(err)
		}
	}
	waitRoutable(t, c, 2)

	j, err := c.Submit(clusterSpec(5, 2000))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	var victim string
	for time.Now().Before(deadline) {
		if v := j.View(); v.Node != "" && v.Cycles > 0 {
			victim = v.Node
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if victim == "" {
		t.Fatal("job never started")
	}
	if err := c.DrainNode(victim); err != nil {
		t.Fatal(err)
	}
	// Drain the node's scheduler too, as eul3dd would on SIGTERM.
	go nodes[victim].sched.Drain()

	v := waitClusterDone(t, j)
	if v.State != serve.StateCompleted {
		t.Fatalf("job ended %s: %s", v.State, v.Error)
	}
	if v.Node == victim {
		t.Fatalf("job completed on the drained node %s", victim)
	}
	if len(v.History) != 2000 {
		t.Fatalf("final history %d entries, want 2000", len(v.History))
	}
	if got := c.nodeByName(victim).statusNow(); got != StatusDraining {
		t.Errorf("drained node status %s, want draining", got)
	}
}

func TestClusterRoutePlacement(t *testing.T) {
	c := New(fastCfg())
	defer c.Close()
	// Hand-build the registry (no monitors) for deterministic statuses.
	addStatic := func(name string, st Status, inflight int) *node {
		n := &node{name: name, url: "http://" + name}
		n.status = st
		n.inflight.Store(int64(inflight))
		c.mu.Lock()
		c.nodes[name] = n
		c.ring.Add(name)
		c.mu.Unlock()
		return n
	}
	na := addStatic("a", StatusHealthy, 0)
	nb := addStatic("b", StatusHealthy, 0)
	nc_ := addStatic("c", StatusUnhealthy, 0)

	key := RouteKey(clusterSpec(1, 10))
	owner := c.ring.Owner(key)

	// Idle cluster: the ring owner gets the key (unless the owner is the
	// unhealthy node, in which case its first healthy successor does).
	n, ok := c.route(key, nil)
	if !ok {
		t.Fatal("route found no node")
	}
	if owner != "c" && n.name != owner {
		t.Errorf("idle route -> %s, want ring owner %s", n.name, owner)
	}
	if n.name == "c" {
		t.Error("routed to unhealthy node")
	}

	// Warm pin beats ring order; a pin to an unroutable node is ignored.
	other := na
	if n == na {
		other = nb
	}
	c.pin(key, other.name)
	if got, _ := c.route(key, nil); got != other {
		t.Errorf("pinned route -> %s, want %s", got.name, other.name)
	}
	c.pin(key, "c")
	if got, _ := c.route(key, nil); got.name == "c" {
		t.Error("pin to unhealthy node was honored")
	}
	c.dropPins("c")

	// Cold key with a loaded owner steals to the least-loaded peer.
	c.mu.Lock()
	delete(c.warm, key)
	c.mu.Unlock()
	ownerNode := c.nodeByName(c.ring.Owner(key))
	if ownerNode.statusNow() != StatusHealthy {
		// Owner is the unhealthy node: route already fails over; re-key the
		// test onto a key owned by a healthy node.
		for i := 0; ; i++ {
			key = RouteKey(clusterSpec(int64(100+i), 10))
			ownerNode = c.nodeByName(c.ring.Owner(key))
			if ownerNode.statusNow() == StatusHealthy {
				break
			}
		}
	}
	peer := na
	if ownerNode == na {
		peer = nb
	}
	ownerNode.inflight.Store(5)
	peer.inflight.Store(1)
	steals := c.Metrics().Steals.Load()
	if got, _ := c.route(key, nil); got != peer {
		t.Errorf("loaded-owner route -> %s, want steal to %s", got.name, peer.name)
	}
	if c.Metrics().Steals.Load() != steals+1 {
		t.Error("steal not counted")
	}

	// Excluding every healthy node leaves nothing.
	if _, ok := c.route(key, map[string]bool{"a": true, "b": true}); ok {
		t.Error("route succeeded with all healthy nodes excluded")
	}
	_ = nc_
}
