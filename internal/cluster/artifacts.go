package cluster

import (
	"context"
	"fmt"

	"eul3d/internal/store"
)

// Artifact movement: meshes and checkpoints travel the cluster by content
// hash. A client uploads bytes once (to the coordinator or any node) and
// every subsequent reference — a solve spec's mesh hash, a handoff's
// resume hash — is a 64-char key. The coordinator closes the gaps: before
// placing a job it makes sure the target node holds every artifact the
// job names, pushing from its own cache or proxying from whichever peer
// has the bytes.

// ensureArtifact makes hash present on node n. Cheapest path first: the
// node already holds it; else push from the coordinator's cache; else
// proxy the bytes from a peer node, cache them, and push.
func (c *Coordinator) ensureArtifact(n *node, hash string) error {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.CallTimeout)
	ok, err := n.client.artifactHas(ctx, hash)
	cancel()
	if err == nil && ok {
		return nil
	}
	data, gerr := c.store.Get(hash)
	if gerr != nil {
		if data = c.proxyArtifact(hash, n.name); data == nil {
			return fmt.Errorf("cluster: artifact %s held by neither the coordinator nor any peer", hash[:12])
		}
	}
	pctx, pcancel := context.WithTimeout(context.Background(), c.cfg.CallTimeout)
	got, err := n.client.artifactPut(pctx, data)
	pcancel()
	if err != nil {
		return err
	}
	if got != hash {
		return fmt.Errorf("cluster: node %s stored artifact as %s, want %s", n.name, got[:12], hash[:12])
	}
	c.met.ArtifactPushes.Add(1)
	return nil
}

// proxyArtifact fetches hash's bytes from any live node except skip,
// verifying the content against the hash and caching it in the
// coordinator's store. It returns nil when no peer holds the artifact.
func (c *Coordinator) proxyArtifact(hash, skip string) []byte {
	c.mu.Lock()
	peers := make([]*node, 0, len(c.nodes))
	for _, n := range c.nodes {
		peers = append(peers, n)
	}
	c.mu.Unlock()
	for _, n := range peers {
		// Draining and saturated nodes still serve their stores; only a
		// node that stopped answering probes is skipped.
		if n.name == skip || n.statusNow() == StatusUnhealthy {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.CallTimeout)
		data, err := n.client.artifactGet(ctx, hash)
		cancel()
		if err != nil || data == nil {
			continue
		}
		if store.Sum(data) != hash {
			c.cfg.Log.Printf("artifact %s: node %s served mismatched content", hash[:12], n.name)
			continue
		}
		c.store.Put(data)
		c.met.ArtifactProxies.Add(1)
		return data
	}
	return nil
}
