package cluster

import (
	"context"
	"fmt"

	"eul3d/internal/store"
)

// Artifact movement: meshes and checkpoints travel the cluster by content
// hash. A client uploads bytes once (to the coordinator or any node) and
// every subsequent reference — a solve spec's mesh hash, a handoff's
// resume hash — is a 64-char key. The coordinator closes the gaps: before
// placing a job it makes sure the target node holds every artifact the
// job names, pushing from its own cache or proxying from whichever peer
// has the bytes.

// artifactAffinity reroutes a placement toward the data: when the job
// names artifacts (mesh hash, resume-checkpoint hash) that the routed
// node would need pushed, but another routable node already holds them
// all, placing on the holder skips the transfer entirely. Every check is
// a HEAD probe — bytes only ever move when no holder exists. A warm
// engine pin on the routed node always wins: rebuilding a solver engine
// costs far more than moving a blob. Returns nil to keep the routed node.
func (c *Coordinator) artifactAffinity(j *cjob, routed *node, exclude map[string]bool) *node {
	j.mu.Lock()
	ckptHash := j.ckptHash
	j.mu.Unlock()
	var hashes []string
	if h := j.Spec.Mesh.Hash; h != "" {
		hashes = append(hashes, h)
	}
	if ckptHash != "" {
		hashes = append(hashes, ckptHash)
	}
	if len(hashes) == 0 {
		return nil
	}
	c.mu.Lock()
	if pin, warm := c.warm[j.key]; warm && pin == routed.name {
		c.mu.Unlock()
		return nil
	}
	names := c.ring.Order(j.key)
	cands := make([]*node, 0, len(names))
	for _, name := range names {
		if name == routed.name || exclude[name] {
			continue
		}
		if n := c.nodes[name]; n != nil && n.routable() {
			cands = append(cands, n)
		}
	}
	c.mu.Unlock()
	if len(cands) == 0 || c.nodeHasAll(routed, hashes) {
		return nil
	}
	// Candidates are probed in ring order, so repeats of one key keep
	// landing on the same holder until its engine pin takes over.
	for _, n := range cands {
		if c.nodeHasAll(n, hashes) {
			c.met.HashPlacements.Add(1)
			c.cfg.Log.Printf("job %s: placing on %s, which already holds its %d artifact(s) (%s would need a push)",
				j.ID, n.name, len(hashes), routed.name)
			return n
		}
	}
	return nil
}

// nodeHasAll HEAD-probes n for every named hash.
func (c *Coordinator) nodeHasAll(n *node, hashes []string) bool {
	for _, h := range hashes {
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.CallTimeout)
		ok, err := n.client.artifactHas(ctx, h)
		cancel()
		if err != nil || !ok {
			return false
		}
	}
	return true
}

// ensureArtifact makes hash present on node n. Cheapest path first: the
// node already holds it; else push from the coordinator's cache; else
// proxy the bytes from a peer node, cache them, and push.
func (c *Coordinator) ensureArtifact(n *node, hash string) error {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.CallTimeout)
	ok, err := n.client.artifactHas(ctx, hash)
	cancel()
	if err == nil && ok {
		return nil
	}
	data, gerr := c.store.Get(hash)
	if gerr != nil {
		if data = c.proxyArtifact(hash, n.name); data == nil {
			return fmt.Errorf("cluster: artifact %s held by neither the coordinator nor any peer", hash[:12])
		}
	}
	pctx, pcancel := context.WithTimeout(context.Background(), c.cfg.CallTimeout)
	got, err := n.client.artifactPut(pctx, data)
	pcancel()
	if err != nil {
		return err
	}
	if got != hash {
		return fmt.Errorf("cluster: node %s stored artifact as %s, want %s", n.name, got[:12], hash[:12])
	}
	c.met.ArtifactPushes.Add(1)
	return nil
}

// proxyArtifact fetches hash's bytes from any live node except skip,
// verifying the content against the hash and caching it in the
// coordinator's store. It returns nil when no peer holds the artifact.
func (c *Coordinator) proxyArtifact(hash, skip string) []byte {
	c.mu.Lock()
	peers := make([]*node, 0, len(c.nodes))
	for _, n := range c.nodes {
		peers = append(peers, n)
	}
	c.mu.Unlock()
	for _, n := range peers {
		// Draining and saturated nodes still serve their stores; only a
		// node that stopped answering probes is skipped.
		if n.name == skip || n.statusNow() == StatusUnhealthy {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.CallTimeout)
		data, err := n.client.artifactGet(ctx, hash)
		cancel()
		if err != nil || data == nil {
			continue
		}
		if store.Sum(data) != hash {
			c.cfg.Log.Printf("artifact %s: node %s served mismatched content", hash[:12], n.name)
			continue
		}
		c.store.Put(data)
		c.met.ArtifactProxies.Add(1)
		return data
	}
	return nil
}
