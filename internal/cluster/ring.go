package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over node names. Each node owns Replicas
// virtual points, so keys spread roughly evenly and adding or removing one
// node remaps only the keys whose nearest point belonged to it — hot
// engine-cache keys keep hitting the node whose cache is already warm
// across membership changes.
//
// Ring is not synchronized; the Coordinator guards it with its registry
// lock.
type Ring struct {
	replicas int
	points   []ringPoint // sorted by hash
	names    map[string]bool
}

type ringPoint struct {
	h    uint64
	name string
}

// NewRing builds an empty ring with the given virtual-node count per
// member (minimum 1).
func NewRing(replicas int) *Ring {
	if replicas < 1 {
		replicas = 1
	}
	return &Ring{replicas: replicas, names: make(map[string]bool)}
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Add places name's virtual points on the ring. Adding a member twice is a
// no-op.
func (r *Ring) Add(name string) {
	if r.names[name] {
		return
	}
	r.names[name] = true
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{h: ringHash(name + "#" + strconv.Itoa(i)), name: name})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].h < r.points[b].h })
}

// Remove deletes name's virtual points.
func (r *Ring) Remove(name string) {
	if !r.names[name] {
		return
	}
	delete(r.names, name)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.name != name {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.names) }

// Members returns the member names in unspecified order.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.names))
	for n := range r.names {
		out = append(out, n)
	}
	return out
}

// Order returns every member in ring-preference order for key: the owner
// first, then each successor walking clockwise. Callers route to the first
// healthy entry, so a dead owner's keys deterministically fail over to the
// same successor everywhere.
func (r *Ring) Order(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	out := make([]string, 0, len(r.names))
	seen := make(map[string]bool, len(r.names))
	for i := 0; i < len(r.points) && len(out) < len(r.names); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.name] {
			seen[p.name] = true
			out = append(out, p.name)
		}
	}
	return out
}

// Owner returns the primary member for key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	if o := r.Order(key); len(o) > 0 {
		return o[0]
	}
	return ""
}
