package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

var origin = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func at(us int64) time.Time { return origin.Add(time.Duration(us) * time.Microsecond) }

func TestRingKeepsLastEvents(t *testing.T) {
	tr := NewStartingAt(16, origin)
	tk := tr.Track("w0")
	ph := tr.Phase("step")
	for i := 0; i < 40; i++ {
		tk.Span(ph, at(int64(i)*10), at(int64(i)*10+5), int64(i))
	}
	evs := tk.Events()
	if len(evs) != 16 {
		t.Fatalf("retained %d events, want 16", len(evs))
	}
	// Oldest retained should be #24 (40 written, ring of 16), newest #39.
	if evs[0].Arg != 24 || evs[15].Arg != 39 {
		t.Fatalf("ring window wrong: first arg %d last arg %d", evs[0].Arg, evs[15].Arg)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Fatalf("events out of order at %d", i)
		}
	}
}

func TestTrackRegistrationIdempotentAndBounded(t *testing.T) {
	tr := NewStartingAt(16, origin)
	tr.SetMaxTracks(2)
	a := tr.Track("a")
	if tr.Track("a") != a {
		t.Fatal("re-registering a name should return the same track")
	}
	if tr.Track("b") == nil {
		t.Fatal("second track refused below the bound")
	}
	if tk := tr.Track("c"); tk != nil {
		t.Fatal("track past the bound should be nil")
	}
	if tr.Refused() != 1 {
		t.Fatalf("refused = %d, want 1", tr.Refused())
	}
	// Dropped tracks must be safe to use.
	var nilTk *Track
	nilTk.Span(0, at(0), at(1), 0)
	nilTk.Instant(0, at(0), 0)
	if nilTk.Len() != 0 || nilTk.Events() != nil || nilTk.Name() != "" {
		t.Fatal("nil track accessors should be inert")
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tk := tr.Track("x"); tk != nil {
		t.Fatal("nil tracer should hand out nil tracks")
	}
	if tr.Phase("p") != 0 || tr.PhaseName(0) != "?" {
		t.Fatal("nil tracer phase table should be inert")
	}
	if tr.Tracks() != nil || tr.Summary() != "" || tr.Refused() != 0 {
		t.Fatal("nil tracer accessors should be inert")
	}
	if err := tr.WriteChrome(&strings.Builder{}); err == nil {
		t.Fatal("WriteChrome on nil tracer should error")
	}
}

func TestSpanAndInstantZeroAlloc(t *testing.T) {
	tr := New(64)
	tk := tr.Track("w0")
	ph := tr.Phase("kernel")
	from := time.Now()
	to := from.Add(time.Millisecond)
	if n := testing.AllocsPerRun(100, func() {
		tk.Span(ph, from, to, 3)
		tk.Instant(ph, to, 4)
	}); n != 0 {
		t.Fatalf("Span+Instant allocate %v times per run, want 0", n)
	}
	var nilTk *Track
	if n := testing.AllocsPerRun(100, func() {
		nilTk.Span(ph, from, to, 3)
	}); n != 0 {
		t.Fatalf("disabled Span allocates %v times per run, want 0", n)
	}
}

func TestConcurrentWritersAndReaders(t *testing.T) {
	tr := New(128)
	ph := tr.Phase("work")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		tk := tr.TrackCap("w"+string(rune('0'+w)), 32)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				now := time.Now()
				tk.Span(ph, now, now, int64(i))
			}
		}()
	}
	// Reader snapshots rings and exports while writers run, as the live
	// /debug/trace endpoint does.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			var b strings.Builder
			if err := tr.WriteChrome(&b); err != nil {
				t.Errorf("WriteChrome: %v", err)
				return
			}
			if _, err := Validate(strings.NewReader(b.String())); err != nil {
				t.Errorf("Validate: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}

func TestSummary(t *testing.T) {
	tr := NewStartingAt(32, origin)
	tk := tr.Track("w0")
	step := tr.Phase("step")
	barrier := tr.Phase("barrier")
	tk.Span(step, at(0), at(1000), 0)
	tk.Span(step, at(1000), at(3000), 1)
	tk.Span(barrier, at(3000), at(3100), 0)
	s := tr.Summary()
	if !strings.Contains(s, "step") || !strings.Contains(s, "barrier") {
		t.Fatalf("summary missing phases:\n%s", s)
	}
	// step total 3ms dominates barrier 0.1ms, so it sorts first.
	if strings.Index(s, "step") > strings.Index(s, "barrier") {
		t.Fatalf("summary not sorted by total time:\n%s", s)
	}
	if !strings.Contains(s, "3.000") {
		t.Fatalf("summary missing step total ms:\n%s", s)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":       `{`,
		"no traceEvents": `{"foo":[]}`,
		"empty name":     `{"traceEvents":[{"name":"","ph":"X","pid":1,"tid":0,"ts":0,"dur":1}]}`,
		"missing tid":    `{"traceEvents":[{"name":"a","ph":"X","pid":1,"ts":0,"dur":1}]}`,
		"missing dur":    `{"traceEvents":[{"name":"a","ph":"X","pid":1,"tid":0,"ts":0}]}`,
		"negative dur":   `{"traceEvents":[{"name":"a","ph":"X","pid":1,"tid":0,"ts":0,"dur":-1}]}`,
		"unknown ph":     `{"traceEvents":[{"name":"a","ph":"Z","pid":1,"tid":0,"ts":0}]}`,
		"bad scope":      `{"traceEvents":[{"name":"a","ph":"i","pid":1,"tid":0,"ts":0,"s":"x"}]}`,
	}
	for label, in := range cases {
		if _, err := Validate(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Validate accepted malformed input", label)
		}
	}
	ok := `{"traceEvents":[
	  {"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"w0"}},
	  {"name":"a","ph":"X","pid":1,"tid":0,"ts":0,"dur":1,"args":{"arg":0}},
	  {"name":"b","ph":"i","pid":1,"tid":0,"ts":5,"s":"t"}]}`
	n, err := Validate(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("Validate rejected well-formed input: %v", err)
	}
	if n != 2 {
		t.Fatalf("Validate counted %d non-metadata events, want 2", n)
	}
}

func TestHistBuckets(t *testing.T) {
	var h Hist
	h.Observe(50 * time.Microsecond)  // bucket 0 (≤100µs)
	h.Observe(100 * time.Microsecond) // bucket 0 boundary
	h.Observe(150 * time.Microsecond) // bucket 1 (≤200µs)
	h.Observe(time.Hour)              // +Inf
	h.Observe(-time.Second)           // clamped to 0, bucket 0
	snap := h.Snapshot()
	if snap[0] != 3 || snap[1] != 1 || snap[NumBuckets] != 1 {
		t.Fatalf("bucket counts %v", snap)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d, want 5", h.Count())
	}
	if n := testing.AllocsPerRun(100, func() { h.Observe(time.Millisecond) }); n != 0 {
		t.Fatalf("Observe allocates %v times per run, want 0", n)
	}
	var nilH *Hist
	nilH.Observe(time.Second)
	if nilH.Count() != 0 || nilH.Sum() != 0 {
		t.Fatal("nil Hist should be inert")
	}
}

func TestHistWriteProm(t *testing.T) {
	var h Hist
	h.Observe(50 * time.Microsecond)
	h.Observe(300 * time.Microsecond)
	h.Observe(time.Hour)
	var b strings.Builder
	h.WriteProm(&b, "eul3dd_job_run_seconds", "job run time")
	out := b.String()
	for _, want := range []string{
		"# TYPE eul3dd_job_run_seconds histogram",
		`eul3dd_job_run_seconds_bucket{le="0.0001"} 1`,
		`eul3dd_job_run_seconds_bucket{le="0.0004"} 2`,
		`eul3dd_job_run_seconds_bucket{le="+Inf"} 3`,
		"eul3dd_job_run_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Cumulative: every finite bucket ≤ the +Inf total of 3.
	if strings.Count(out, "_bucket{") != NumBuckets+1 {
		t.Fatalf("want %d bucket lines, got %d", NumBuckets+1, strings.Count(out, "_bucket{"))
	}
}
