// Chrome trace-event export and validation. The writer emits the JSON
// object form ({"traceEvents":[...]}) with hand-formatted records so the
// field order is stable — golden files diff cleanly — and so the export
// path has no reflection in it. Timestamps and durations are microseconds
// with sub-microsecond decimals, per the trace-event spec.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// jsonEscape escapes a string for embedding in a JSON literal. Track and
// phase names are plain ASCII in practice; this keeps odd ones loadable.
func jsonEscape(s string) string {
	b, _ := json.Marshal(s)
	return string(b[1 : len(b)-1])
}

// usec renders nanoseconds as microseconds with 3 decimals.
func usec(ns int64) string {
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}

// WriteChrome writes the whole trace in Chrome trace-event JSON. Every
// track becomes one thread (tid = registration index) of process 1, with a
// thread_name metadata record so Perfetto labels the row; spans become
// "ph":"X" complete events and instants "ph":"i" thread-scoped events.
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("trace: nil tracer")
	}
	var b strings.Builder
	b.WriteString("{\"traceEvents\":[\n")
	first := true
	emit := func(line string) {
		if !first {
			b.WriteString(",\n")
		}
		first = false
		b.WriteString(line)
	}
	for _, tk := range t.Tracks() {
		emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":"%s"}}`,
			tk.id, jsonEscape(tk.name)))
	}
	for _, tk := range t.Tracks() {
		for _, ev := range tk.Events() {
			name := jsonEscape(t.PhaseName(ev.Phase))
			switch ev.Kind {
			case KindSpan:
				emit(fmt.Sprintf(`{"name":"%s","ph":"X","pid":1,"tid":%d,"ts":%s,"dur":%s,"args":{"arg":%d}}`,
					name, tk.id, usec(ev.TS), usec(ev.Dur), ev.Arg))
			case KindInstant:
				emit(fmt.Sprintf(`{"name":"%s","ph":"i","pid":1,"tid":%d,"ts":%s,"s":"t","args":{"arg":%d}}`,
					name, tk.id, usec(ev.TS), ev.Arg))
			}
		}
	}
	b.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// chromeEvent is the subset of the trace-event record Validate checks.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	PID   *int64         `json:"pid"`
	TID   *int64         `json:"tid"`
	TS    *float64       `json:"ts"`
	Dur   *float64       `json:"dur"`
	Scope string         `json:"s"`
	Args  map[string]any `json:"args"`
}

type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// Validate parses r as Chrome trace-event JSON and checks the invariants
// our exporter (and the viewers) rely on: the object form with a
// traceEvents array, every record carrying a name, a known ph, pid and
// tid, ts on all non-metadata events, dur on complete events, and a scope
// on instants. Returns the number of non-metadata events on success. It is
// shared by the golden test and the trace-smoke gate.
func Validate(r io.Reader) (int, error) {
	var f chromeFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return 0, fmt.Errorf("trace: parse: %w", err)
	}
	if f.TraceEvents == nil {
		return 0, fmt.Errorf("trace: missing traceEvents array")
	}
	n := 0
	for i, ev := range f.TraceEvents {
		if ev.Name == "" {
			return 0, fmt.Errorf("trace: event %d: empty name", i)
		}
		if ev.PID == nil || ev.TID == nil {
			return 0, fmt.Errorf("trace: event %d (%q): missing pid/tid", i, ev.Name)
		}
		switch ev.Phase {
		case "M":
			// Metadata: thread_name must carry args.name.
			if ev.Name == "thread_name" {
				if _, ok := ev.Args["name"].(string); !ok {
					return 0, fmt.Errorf("trace: event %d: thread_name without args.name", i)
				}
			}
			continue
		case "X":
			if ev.TS == nil || ev.Dur == nil {
				return 0, fmt.Errorf("trace: event %d (%q): complete event missing ts/dur", i, ev.Name)
			}
			if *ev.Dur < 0 {
				return 0, fmt.Errorf("trace: event %d (%q): negative dur", i, ev.Name)
			}
		case "i", "I":
			if ev.TS == nil {
				return 0, fmt.Errorf("trace: event %d (%q): instant missing ts", i, ev.Name)
			}
			switch ev.Scope {
			case "", "g", "p", "t":
			default:
				return 0, fmt.Errorf("trace: event %d (%q): bad instant scope %q", i, ev.Name, ev.Scope)
			}
		default:
			return 0, fmt.Errorf("trace: event %d (%q): unknown ph %q", i, ev.Name, ev.Phase)
		}
		n++
	}
	return n, nil
}
