// Package trace is the flight-recorder tracing subsystem: a span/event
// tracer built from per-track preallocated ring buffers, so the enabled
// hot path is lock-light and allocation-free (the solver engines assert
// zero allocations per traced step) and the disabled path is a nil check.
// Every track keeps the *last* ringCap events — the tracer is inherently a
// flight recorder, and a dump taken at the moment of an incident (solver
// divergence, fault recovery, job failure) contains the events leading up
// to it.
//
// The model follows the Chrome trace-event format the exporter emits:
// a process holds named tracks (threads in Chrome's terms — one per solver
// worker, simulated processor, or service job), each track holds complete
// spans (a phase name, a start, a duration, one integer argument) and
// instant events. Phase names are interned up front into PhaseIDs so the
// hot path records only integers.
//
// Writers: a track is designed for one writer at a time — a worker owns
// its track, a job's lifecycle events are recorded by whichever goroutine
// holds the job at that moment (the scheduler's synchronization provides
// the happens-before edges). A short per-track spinlock-free mutex still
// guards the slot writes so that exporters can snapshot rings while a
// solve is in flight without data races.
package trace

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// PhaseID is an interned phase name.
type PhaseID int32

// Event kinds.
const (
	KindSpan    uint8 = iota // complete span: [TS, TS+Dur)
	KindInstant              // point event
)

// Event is one recorded trace event. Timestamps are nanoseconds since the
// tracer's start time.
type Event struct {
	TS    int64 // ns since tracer start
	Dur   int64 // span duration in ns (0 for instants)
	Arg   int64 // one free integer argument (stage, color, level, proc...)
	Phase PhaseID
	Kind  uint8
}

// Track is one timeline: a preallocated ring keeping the last cap events.
type Track struct {
	tr   *Tracer
	id   int
	name string

	mu   sync.Mutex
	ring []Event
	pos  uint64 // total events ever written
}

// Tracer owns the tracks and the phase name table.
type Tracer struct {
	start     time.Time
	ringCap   int
	maxTracks int

	mu       sync.Mutex
	tracks   []*Track
	phases   []string
	phaseIDs map[string]PhaseID
	refused  int // track registrations refused past maxTracks
}

// DefaultMaxTracks bounds the number of tracks a tracer will register, so
// that per-job tracks in a long-lived server cannot grow without bound.
// Registrations past the bound return nil (a nil Track drops its events).
const DefaultMaxTracks = 512

// New builds a tracer whose tracks each keep the last ringCap events
// (minimum 16). The start time is taken now; all event timestamps are
// relative to it.
func New(ringCap int) *Tracer {
	return NewStartingAt(ringCap, time.Now())
}

// NewStartingAt is New with an explicit start time — the timestamp origin
// for every event. Tests use a fixed origin to make exports deterministic.
func NewStartingAt(ringCap int, start time.Time) *Tracer {
	if ringCap < 16 {
		ringCap = 16
	}
	return &Tracer{
		start:     start,
		ringCap:   ringCap,
		maxTracks: DefaultMaxTracks,
		phaseIDs:  make(map[string]PhaseID),
	}
}

// SetMaxTracks adjusts the track-count bound (minimum 1).
func (t *Tracer) SetMaxTracks(n int) {
	if t == nil || n < 1 {
		return
	}
	t.mu.Lock()
	t.maxTracks = n
	t.mu.Unlock()
}

// Start returns the tracer's timestamp origin.
func (t *Tracer) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Track registers (or looks up) a named track with the default ring
// capacity. Returns nil — which silently drops events — on a nil tracer or
// once the track bound is reached.
func (t *Tracer) Track(name string) *Track { return t.TrackCap(name, 0) }

// TrackCap is Track with an explicit ring capacity (0 selects the
// tracer's default; small caps suit short-lived tracks like service jobs).
func (t *Tracer) TrackCap(name string, ringCap int) *Track {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, tk := range t.tracks {
		if tk.name == name {
			return tk
		}
	}
	if len(t.tracks) >= t.maxTracks {
		t.refused++
		return nil
	}
	if ringCap <= 0 {
		ringCap = t.ringCap
	}
	if ringCap < 16 {
		ringCap = 16
	}
	tk := &Track{tr: t, id: len(t.tracks), name: name, ring: make([]Event, ringCap)}
	t.tracks = append(t.tracks, tk)
	return tk
}

// Phase interns a phase name. Safe to call repeatedly; 0 on a nil tracer.
func (t *Tracer) Phase(name string) PhaseID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.phaseIDs[name]; ok {
		return id
	}
	id := PhaseID(len(t.phases))
	t.phases = append(t.phases, name)
	t.phaseIDs[name] = id
	return id
}

// PhaseName resolves an interned id ("?" when unknown).
func (t *Tracer) PhaseName(id PhaseID) string {
	if t == nil {
		return "?"
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) < 0 || int(id) >= len(t.phases) {
		return "?"
	}
	return t.phases[id]
}

// write appends one event to the ring, overwriting the oldest when full.
func (tk *Track) write(ev Event) {
	if tk == nil {
		return
	}
	tk.mu.Lock()
	tk.ring[tk.pos%uint64(len(tk.ring))] = ev
	tk.pos++
	tk.mu.Unlock()
}

// Span records a complete span [from, to) with one integer argument. The
// call performs no heap allocations.
func (tk *Track) Span(ph PhaseID, from, to time.Time, arg int64) {
	if tk == nil {
		return
	}
	tk.write(Event{
		TS:    from.Sub(tk.tr.start).Nanoseconds(),
		Dur:   to.Sub(from).Nanoseconds(),
		Arg:   arg,
		Phase: ph,
		Kind:  KindSpan,
	})
}

// Instant records a point event. The call performs no heap allocations.
func (tk *Track) Instant(ph PhaseID, at time.Time, arg int64) {
	if tk == nil {
		return
	}
	tk.write(Event{
		TS:    at.Sub(tk.tr.start).Nanoseconds(),
		Arg:   arg,
		Phase: ph,
		Kind:  KindInstant,
	})
}

// Name returns the track's registered name ("" for nil).
func (tk *Track) Name() string {
	if tk == nil {
		return ""
	}
	return tk.name
}

// Len returns how many events the track currently retains.
func (tk *Track) Len() int {
	if tk == nil {
		return 0
	}
	tk.mu.Lock()
	defer tk.mu.Unlock()
	return tk.retainedLocked()
}

func (tk *Track) retainedLocked() int {
	if tk.pos < uint64(len(tk.ring)) {
		return int(tk.pos)
	}
	return len(tk.ring)
}

// Events snapshots the retained events, oldest first.
func (tk *Track) Events() []Event {
	if tk == nil {
		return nil
	}
	tk.mu.Lock()
	defer tk.mu.Unlock()
	n := tk.retainedLocked()
	out := make([]Event, n)
	cap64 := uint64(len(tk.ring))
	first := tk.pos - uint64(n)
	for i := 0; i < n; i++ {
		out[i] = tk.ring[(first+uint64(i))%cap64]
	}
	return out
}

// Tracks snapshots the registered tracks in registration order.
func (t *Tracer) Tracks() []*Track {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Track(nil), t.tracks...)
}

// Refused reports how many track registrations were dropped at the bound.
func (t *Tracer) Refused() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.refused
}

// phaseStat is one row of the summary aggregation.
type phaseStat struct {
	name  string
	count int64
	total int64 // ns
	min   int64
	max   int64
}

// Summary renders a per-phase aggregate over every track: span count,
// total / mean / min / max duration. Instants are counted with zero
// duration. The text form is the quick comm/comp breakdown when a full
// timeline is more than the question needs.
func (t *Tracer) Summary() string {
	if t == nil {
		return ""
	}
	stats := make(map[PhaseID]*phaseStat)
	var order []PhaseID
	for _, tk := range t.Tracks() {
		for _, ev := range tk.Events() {
			st, ok := stats[ev.Phase]
			if !ok {
				st = &phaseStat{name: t.PhaseName(ev.Phase), min: ev.Dur, max: ev.Dur}
				stats[ev.Phase] = st
				order = append(order, ev.Phase)
			}
			st.count++
			st.total += ev.Dur
			if ev.Dur < st.min {
				st.min = ev.Dur
			}
			if ev.Dur > st.max {
				st.max = ev.Dur
			}
		}
	}
	sort.Slice(order, func(a, b int) bool {
		return stats[order[a]].total > stats[order[b]].total
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %9s %12s %12s %12s %12s\n", "phase", "count", "total ms", "mean us", "min us", "max us")
	for _, id := range order {
		st := stats[id]
		mean := float64(0)
		if st.count > 0 {
			mean = float64(st.total) / float64(st.count) / 1e3
		}
		fmt.Fprintf(&b, "%-24s %9d %12.3f %12.3f %12.3f %12.3f\n",
			st.name, st.count, float64(st.total)/1e6, mean, float64(st.min)/1e3, float64(st.max)/1e3)
	}
	return b.String()
}

// WriteChromeFile dumps the trace as a Chrome trace-event JSON file
// (loadable in Perfetto or chrome://tracing). Writes are atomic enough for
// incident dumps: a temp file renamed into place.
func (t *Tracer) WriteChromeFile(path string) error {
	if t == nil {
		return fmt.Errorf("trace: nil tracer")
	}
	var b strings.Builder
	if err := t.WriteChrome(&b); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(b.String()), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
