package trace

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenTracer builds a fixed synthetic event sequence exercising every
// record shape the exporter emits: multiple tracks, spans with arguments,
// instants, sub-microsecond timestamps, and a name needing escaping.
func goldenTracer() *Tracer {
	tr := NewStartingAt(32, origin)
	step := tr.Phase("rk-stage")
	barrier := tr.Phase("barrier")
	fault := tr.Phase(`fault "node down"`)
	w0 := tr.Track("worker 0")
	w1 := tr.Track("worker 1")
	jobs := tr.TrackCap("job abc123", 16)
	w0.Span(step, at(0), at(1500), 0)
	w0.Span(barrier, at(1500), at(1600), 0)
	w1.Span(step, origin.Add(100*time.Nanosecond), at(1400), 0)
	w1.Span(barrier, at(1400), at(1600), 0)
	w0.Span(step, at(1600), at(3100), 1)
	jobs.Instant(fault, at(2000), 7)
	return tr
}

func TestChromeGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenTracer().WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	if n, err := Validate(strings.NewReader(got)); err != nil {
		t.Fatalf("exporter output fails Validate: %v", err)
	} else if n != 6 {
		t.Fatalf("Validate counted %d events, want 6", n)
	}

	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("export drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestWriteChromeFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := goldenTracer().WriteChromeFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := Validate(f); err != nil {
		t.Fatalf("file dump fails Validate: %v", err)
	}
	var nilTr *Tracer
	if err := nilTr.WriteChromeFile(filepath.Join(t.TempDir(), "x.json")); err == nil {
		t.Fatal("nil tracer file dump should error")
	}
}
