// Log-bucketed latency histograms. A Hist is a fixed array of atomic
// counters with exponentially growing bucket bounds, so Observe is
// lock-free and allocation-free, and WriteProm renders the cumulative
// _bucket / _sum / _count series the Prometheus text format requires.
package trace

import (
	"fmt"
	"io"
	"strconv"
	"sync/atomic"
	"time"
)

// NumBuckets is the finite bucket count; a +Inf bucket is implied.
const NumBuckets = 18

// histBase is the first bucket's upper bound: 100µs, doubling per bucket.
// The top finite bound is 100µs·2¹⁷ ≈ 13.1s, which comfortably covers
// queue waits and whole-job run times.
const histBase = 100 * time.Microsecond

var histBounds = func() [NumBuckets]time.Duration {
	var b [NumBuckets]time.Duration
	d := histBase
	for i := range b {
		b[i] = d
		d *= 2
	}
	return b
}()

// Hist is a log-bucketed duration histogram safe for concurrent use.
// The zero value is ready.
type Hist struct {
	buckets [NumBuckets + 1]atomic.Int64 // last slot is +Inf
	sumNS   atomic.Int64
	count   atomic.Int64
}

// Observe records one duration. Lock-free, zero-alloc.
func (h *Hist) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	i := 0
	for i < NumBuckets && d > histBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sumNS.Add(int64(d))
	h.count.Add(1)
}

// Count returns the total number of observations.
func (h *Hist) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed durations.
func (h *Hist) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumNS.Load())
}

// Snapshot returns the per-bucket counts (last entry is +Inf).
func (h *Hist) Snapshot() [NumBuckets + 1]int64 {
	var out [NumBuckets + 1]int64
	if h == nil {
		return out
	}
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// WriteProm renders the histogram as a Prometheus text-format histogram
// metric: cumulative <name>_bucket{le="..."} series in seconds, then
// <name>_sum and <name>_count. help becomes the # HELP line.
func (h *Hist) WriteProm(w io.Writer, name, help string) {
	if h == nil {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	snap := h.Snapshot()
	cum := int64(0)
	for i, bound := range histBounds {
		cum += snap[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n",
			name, strconv.FormatFloat(bound.Seconds(), 'g', -1, 64), cum)
	}
	cum += snap[NumBuckets]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum().Seconds())
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
}
