package multigrid

import (
	"math/rand"
	"testing"

	"eul3d/internal/euler"
)

// randomOp builds a TransferOp with nsrc target vertices whose addresses
// point anywhere in [0, ndst) — including duplicate addresses within one
// vertex, which real operators produce for points snapped to boundaries.
func randomOp(rng *rand.Rand, nsrc, ndst int) *TransferOp {
	op := &TransferOp{
		Addr: make([][4]int32, nsrc),
		Wt:   make([][4]float64, nsrc),
	}
	for v := range op.Addr {
		sum := 0.0
		for k := 0; k < 4; k++ {
			op.Addr[v][k] = int32(rng.Intn(ndst))
			w := rng.Float64()
			op.Wt[v][k] = w
			sum += w
		}
		for k := 0; k < 4; k++ {
			op.Wt[v][k] /= sum
		}
	}
	return op
}

func randomStates(rng *rand.Rand, n int) []euler.State {
	w := make([]euler.State, n)
	for i := range w {
		for c := 0; c < euler.NVar; c++ {
			w[i][c] = rng.NormFloat64()
		}
	}
	return w
}

// randomSpans cuts [0,n) into a random partition of contiguous chunks.
func randomSpans(rng *rand.Rand, n int) [][2]int {
	var spans [][2]int
	for lo := 0; lo < n; {
		hi := lo + 1 + rng.Intn(n-lo)
		spans = append(spans, [2]int{lo, hi})
		lo = hi
	}
	return spans
}

// Property: the destination-grouped plan is a permutation of the
// operator's 4*nsrc scatter entries, and each row keeps the serial
// scatter's (v, k) visit order.
func TestScatterPlanCoversEntriesInSerialOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		nsrc, ndst := 1+rng.Intn(60), 1+rng.Intn(40)
		op := randomOp(rng, nsrc, ndst)
		pl := op.Plan(ndst)

		if pl.NDst() != ndst {
			t.Fatalf("trial %d: NDst = %d, want %d", trial, pl.NDst(), ndst)
		}
		if got, want := len(pl.Src), 4*nsrc; got != want || len(pl.Wt) != want {
			t.Fatalf("trial %d: %d src / %d wt entries, want %d", trial, len(pl.Src), len(pl.Wt), want)
		}

		// Replay the serial scatter's visit order (v ascending, k inside)
		// and demand each row of the plan equal its destination's
		// subsequence exactly — order included.
		next := make([]int32, ndst)
		copy(next, pl.Start[:ndst])
		for v := range op.Addr {
			for k := 0; k < 4; k++ {
				d := op.Addr[v][k]
				at := next[d]
				if at >= pl.Start[d+1] {
					t.Fatalf("trial %d: row %d overflows at entry (%d,%d)", trial, d, v, k)
				}
				if pl.Src[at] != int32(v) || pl.Wt[at] != op.Wt[v][k] {
					t.Fatalf("trial %d: row %d entry %d = (%d, %v), serial order wants (%d, %v)",
						trial, d, at-pl.Start[d], pl.Src[at], pl.Wt[at], v, op.Wt[v][k])
				}
				next[d]++
			}
		}
		for d := 0; d < ndst; d++ {
			if next[d] != pl.Start[d+1] {
				t.Fatalf("trial %d: row %d has %d extra entries", trial, d, pl.Start[d+1]-next[d])
			}
		}
	}
}

// Property: accumulating the plan chunk-by-chunk over ANY partition of the
// destination range reproduces the serial ScatterTranspose bitwise, and
// each chunk writes only its own rows.
func TestScatterPlanChunkedMatchesSerialBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const sentinel = 1e301
	for trial := 0; trial < 50; trial++ {
		nsrc, ndst := 1+rng.Intn(60), 1+rng.Intn(40)
		op := randomOp(rng, nsrc, ndst)
		pl := op.Plan(ndst)
		src := randomStates(rng, nsrc)

		want := make([]euler.State, ndst)
		op.ScatterTranspose(src, want)

		got := make([]euler.State, ndst)
		for _, span := range randomSpans(rng, ndst) {
			// Poison everything outside the chunk, run it, and check the
			// poison survived: writes are confined to [lo,hi).
			for i := range got {
				if i < span[0] || i >= span[1] {
					got[i] = euler.State{sentinel}
				}
			}
			pl.GatherRange(src, got, span[0], span[1])
			for i := range got {
				outside := i < span[0] || i >= span[1]
				if outside && got[i][0] != sentinel {
					t.Fatalf("trial %d: chunk %v wrote row %d", trial, span, i)
				}
			}
			// Clear the poison, keeping rows this and earlier chunks filled.
			for i := range got {
				if i < span[0] || i >= span[1] {
					got[i] = euler.State{}
				}
			}
		}
		// Re-run all chunks onto the cleared array to assemble the full
		// result, then compare bitwise against the serial scatter.
		for _, span := range randomSpans(rng, ndst) {
			pl.GatherRange(src, got, span[0], span[1])
		}
		for d := range want {
			if got[d] != want[d] {
				t.Fatalf("trial %d: row %d = %v, serial %v", trial, d, got[d], want[d])
			}
		}
		// And the one-call form.
		apply := make([]euler.State, ndst)
		pl.Apply(src, apply)
		for d := range want {
			if apply[d] != want[d] {
				t.Fatalf("trial %d: Apply row %d = %v, serial %v", trial, d, apply[d], want[d])
			}
		}
	}
}

// Property: chunked InterpRange over any partition equals the full Interp
// bitwise, with writes confined to each chunk.
func TestInterpRangeChunkedMatchesInterpBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const sentinel = 1e301
	for trial := 0; trial < 50; trial++ {
		ntgt, nsrc := 1+rng.Intn(60), 1+rng.Intn(40)
		op := randomOp(rng, ntgt, nsrc) // Addr indexes the interp source
		src := randomStates(rng, nsrc)

		want := make([]euler.State, ntgt)
		op.Interp(src, want)

		got := make([]euler.State, ntgt)
		for i := range got {
			got[i] = euler.State{sentinel}
		}
		for _, span := range randomSpans(rng, ntgt) {
			op.InterpRange(src, got, span[0], span[1])
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("trial %d: vertex %d = %v, full Interp %v", trial, v, got[v], want[v])
			}
		}
	}
}
