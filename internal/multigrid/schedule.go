package multigrid

import (
	"fmt"
	"strings"
)

// EventKind distinguishes the two operations plotted in Figure 1 of the
// paper: Euler time-steps (E) and interpolations back to a finer grid (I).
type EventKind uint8

const (
	// EulerStep is a multistage time-step on a grid level.
	EulerStep EventKind = iota
	// Interpolate is a coarse-to-fine correction interpolation.
	Interpolate
)

// Event is one node of a multigrid cycle diagram. Level 0 is the finest
// grid.
type Event struct {
	Kind  EventKind
	Level int
}

// String renders the event as in Figure 1: E<level> or I<level>.
func (e Event) String() string {
	if e.Kind == EulerStep {
		return fmt.Sprintf("E%d", e.Level)
	}
	return fmt.Sprintf("I%d", e.Level)
}

// Schedule enumerates the exact sequence of time-steps and interpolations
// performed by one cycle with the given number of levels and cycle index
// (1 = V, 2 = W), mirroring Solver.cycle. This regenerates the structure of
// Figure 1 programmatically.
func Schedule(levels, gamma int) []Event {
	var out []Event
	var walk func(l int)
	walk = func(l int) {
		out = append(out, Event{EulerStep, l})
		if l == levels-1 {
			return
		}
		visits := gamma
		if l+1 == levels-1 {
			visits = 1
		}
		for v := 0; v < visits; v++ {
			walk(l + 1)
		}
		out = append(out, Event{Interpolate, l})
	}
	walk(0)
	return out
}

// FormatSchedule renders a schedule compactly, e.g.
// "E0 E1 E2 E3 I2 E2 E3 I2 I1 ... I0".
func FormatSchedule(ev []Event) string {
	parts := make([]string, len(ev))
	for i, e := range ev {
		parts[i] = e.String()
	}
	return strings.Join(parts, " ")
}

// Diagram renders the cycle as a small ASCII picture with one row per grid
// level (finest on top), in the spirit of Figure 1.
func Diagram(levels, gamma int) string {
	ev := Schedule(levels, gamma)
	var b strings.Builder
	for l := 0; l < levels; l++ {
		for _, e := range ev {
			switch {
			case e.Level == l && e.Kind == EulerStep:
				b.WriteString(" E")
			case e.Level == l && e.Kind == Interpolate:
				b.WriteString(" I")
			default:
				b.WriteString("  ")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// levelWords estimates the storage of one solver level in 8-byte words:
// mesh arrays (coordinates, dual volumes, edge endpoints and normals,
// boundary faces), solver state and scratch (Disc + workspace + the level's
// solution/residual arrays), and optionally the FAS forcing array.
func levelWords(l *Level, withForcing bool) float64 {
	m := l.Disc.M
	nv := float64(m.NV())
	ne := float64(m.NE())
	nbf := float64(len(m.BFaces))
	words := nv*(3+1) + ne*(1+3) + nbf*(1.5+3) // mesh (edge pair packs into 1 word)
	words += nv * (4 + 1)                      // pres/lam/sensor/den + Dt
	words += nv * 5 * 3                        // lapl, smooth, rhs
	words += nv * 5 * 4                        // step workspace w0/conv/diss/res
	words += nv * 5 * 4                        // W, WSaved, Res, Corr
	if withForcing {
		words += nv * 5
	}
	return words
}

// MemoryOverhead returns the fractional extra storage of the multigrid
// solver relative to a single-grid solver on the finest mesh: all coarser
// grid levels with their solver arrays, plus the inter-grid transfer
// coefficients (4 addresses + 4 weights per vertex in each direction). The
// paper reports roughly a 33% increase.
func (s *Solver) MemoryOverhead() float64 {
	base := levelWords(s.Levels[0], false)
	extra := 0.0
	for l := 1; l < len(s.Levels); l++ {
		lev := s.Levels[l]
		extra += levelWords(lev, true)
		// Transfer coefficients: Restrict is sized by this level's
		// vertices, Prolong by the finer level's (4 int32 + 4 float64
		// per vertex each, i.e. 6 words).
		extra += 6 * float64(len(lev.Restrict.Addr))
		extra += 6 * float64(len(lev.Prolong.Addr))
	}
	return extra / base
}
