package multigrid

import "eul3d/internal/euler"

// FMGInit performs full-multigrid initialization: the flow is first solved
// (approximately) on the coarsest grid, then interpolated one level up and
// re-solved with the sub-hierarchy below it, and so on until the finest
// grid receives a well-developed starting solution. This largely bypasses
// the impulsive-start transient that otherwise dominates the early
// convergence history. cyclesPerLevel controls the work per intermediate
// level. After FMGInit, Cycle() continues on the finest grid as usual.
func (s *Solver) FMGInit(cyclesPerLevel int) {
	nlev := len(s.Levels)
	for l := nlev - 1; l >= 1; l-- {
		// Solve with level l acting as the finest grid: its forcing stays
		// zero, so the FAS hierarchy below it behaves exactly like a
		// stand-alone multigrid solver on that mesh.
		zeroForcing(s.Levels[l])
		for c := 0; c < cyclesPerLevel; c++ {
			s.cycle(l)
		}
		// Prolong the developed solution (not a correction) to the next
		// finer level and smooth the interpolation noise.
		lev := s.Levels[l-1]
		s.Levels[l].Prolong.Interp(s.Levels[l].W, lev.Corr)
		lev.Disc.SmoothResiduals(lev.Corr)
		for i := range lev.Corr {
			lev.W[i] = lev.Disc.P.Repair(lev.Corr[i])
		}
	}
}

func zeroForcing(lev *Level) {
	if lev.Forcing == nil {
		return
	}
	for i := range lev.Forcing {
		lev.Forcing[i] = euler.State{}
	}
}
