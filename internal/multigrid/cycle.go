package multigrid

import (
	"fmt"
	"time"

	"eul3d/internal/euler"
	"eul3d/internal/flops"
	"eul3d/internal/mesh"
	"eul3d/internal/perf"
)

// Level holds the solver state for one grid of the multigrid sequence.
type Level struct {
	Disc    *euler.Disc
	W       []euler.State // current solution
	WSaved  []euler.State // transferred solution w' (for corrections)
	Forcing []euler.State // FAS forcing function P (nil on the finest grid)
	Res     []euler.State // residual scratch
	Corr    []euler.State // prolonged-correction scratch (own mesh size)
	WS      *euler.StepWorkspace

	// Restrict locates this level's vertices in the next-finer mesh
	// (used to interpolate flow variables down the hierarchy).
	// Prolong locates the next-finer mesh's vertices in this level
	// (used to interpolate corrections up, and transposed to restrict
	// residuals). Both are nil on the finest level.
	Restrict *TransferOp
	Prolong  *TransferOp
}

// Instrumented phases of a multigrid cycle.
const (
	phSteps = iota
	phResiduals
	phTransfers
	phCorrections
	numPhases
)

// Solver drives FAS multigrid cycles over a sequence of non-nested grids,
// finest first.
type Solver struct {
	Levels []*Level
	Gamma  int // cycle index: 1 = V-cycle, 2 = W-cycle

	// Instrumentation: wall clock per cycle phase plus the analytic flop
	// counts of internal/flops, precomputed per level in New.
	acc        *perf.Accum
	stepFl     []int64 // one time step on level l
	residFl    []int64 // one residual evaluation on level l
	restrictFl []int64 // down-transfer around the l/l+1 pair
	prolongFl  []int64 // up-transfer around the l/l+1 pair
	corrFl     []int64 // correction smoothing + update on level l
}

// New builds a multigrid solver over meshes (finest first) with the given
// scheme parameters and cycle index gamma (1 for V, 2 for W). The transfer
// operators for every level pair are computed here — the preprocessing
// phase of Section 2.4.
func New(meshes []*mesh.Mesh, p euler.Params, gamma int) (*Solver, error) {
	if len(meshes) == 0 {
		return nil, fmt.Errorf("multigrid: no meshes")
	}
	if gamma < 1 {
		return nil, fmt.Errorf("multigrid: cycle index must be >= 1, got %d", gamma)
	}
	s := &Solver{Gamma: gamma}
	for l, m := range meshes {
		nv := m.NV()
		lev := &Level{
			Disc:   euler.NewDisc(m, p),
			W:      make([]euler.State, nv),
			WSaved: make([]euler.State, nv),
			Res:    make([]euler.State, nv),
			Corr:   make([]euler.State, nv),
			WS:     euler.NewStepWorkspace(nv),
		}
		if l > 0 {
			lev.Forcing = make([]euler.State, nv)
			var err error
			lev.Restrict, err = BuildTransfer(m, meshes[l-1])
			if err != nil {
				return nil, fmt.Errorf("multigrid: restrict %d->%d: %w", l-1, l, err)
			}
			lev.Prolong, err = BuildTransfer(meshes[l-1], m)
			if err != nil {
				return nil, fmt.Errorf("multigrid: prolong %d->%d: %w", l, l-1, err)
			}
		}
		s.Levels = append(s.Levels, lev)
	}
	s.acc = perf.NewAccum("steps", "residuals", "transfers", "corrections")
	n := len(s.Levels)
	s.stepFl = make([]int64, n)
	s.residFl = make([]int64, n)
	s.restrictFl = make([]int64, n)
	s.prolongFl = make([]int64, n)
	s.corrFl = make([]int64, n)
	for l, lev := range s.Levels {
		m := lev.Disc.M
		nv, ne, nbf := int64(m.NV()), int64(m.NE()), int64(len(m.BFaces))
		s.stepFl[l] = flops.Step(nv, ne, nbf, len(p.Stages), euler.DissipStages, p.NSmooth)
		s.residFl[l] = flops.Residual(nv, ne, nbf)
		s.corrFl[l] = int64(p.NSmooth)*(ne*flops.SmoothEdge+nv*flops.SmoothVert) + nv*flops.UpdateVert
		if l > 0 {
			nvFine := int64(meshes[l-1].NV())
			s.restrictFl[l-1] = (nv + nvFine) * flops.XferVert // variables down + residual scatter
			s.prolongFl[l-1] = nvFine * flops.XferVert         // correction up
		}
	}
	s.InitUniform()
	return s, nil
}

// Stats snapshots the per-phase wall clock and analytic flop counts
// accumulated over all cycles so far.
func (s *Solver) Stats() perf.Stats { return s.acc.Stats() }

// tick charges the time since *t to phase ph with fl analytic flops and
// advances *t.
func (s *Solver) tick(ph int, fl int64, t *time.Time) {
	now := time.Now()
	s.acc.Add(ph, now.Sub(*t), fl)
	*t = now
}

// InitUniform sets every level to the freestream state.
func (s *Solver) InitUniform() {
	for _, lev := range s.Levels {
		lev.Disc.InitUniform(lev.W)
	}
}

// Fine returns the finest level.
func (s *Solver) Fine() *Level { return s.Levels[0] }

// Cycle performs one multigrid cycle starting on the finest grid and
// returns the fine-grid residual norm measured at the first RK stage.
func (s *Solver) Cycle() float64 {
	return s.cycle(0)
}

// cycle is the recursive FAS driver. On each level it performs one
// time-step, transfers variables and residuals to the next coarser level,
// recurses gamma times, and interpolates the coarse correction back.
func (s *Solver) cycle(l int) float64 {
	lev := s.Levels[l]
	t := time.Now()
	norm := lev.Disc.Step(lev.W, lev.Forcing, lev.WS)
	s.tick(phSteps, s.stepFl[l], &t)

	if l == len(s.Levels)-1 {
		return norm
	}
	next := s.Levels[l+1]

	// Residual of the current (post-step) solution, including forcing:
	// this is what the coarse grid must reproduce.
	lev.Disc.Residual(lev.W, lev.Res)
	if lev.Forcing != nil {
		for i := range lev.Res {
			for k := 0; k < euler.NVar; k++ {
				lev.Res[i][k] += lev.Forcing[i][k]
			}
		}
	}
	s.tick(phResiduals, s.residFl[l], &t)

	// Transfer flow variables (interpolation) and residuals (conservative
	// transpose scatter) to the coarse grid. Interpolated conserved
	// variables can carry negative pressure (pressure is not convex in the
	// conserved variables), so repair the restricted states before the
	// coarse grid evaluates sound speeds on them.
	next.Restrict.Interp(lev.W, next.W)
	for i := range next.W {
		next.W[i] = next.Disc.P.Repair(next.W[i])
	}
	copy(next.WSaved, next.W)
	next.Prolong.ScatterTranspose(lev.Res, next.Forcing) // next.Forcing := R'
	s.tick(phTransfers, s.restrictFl[l], &t)

	// Forcing P = R' - R(w').
	next.Disc.Residual(next.W, next.Res)
	for i := range next.Forcing {
		for k := 0; k < euler.NVar; k++ {
			next.Forcing[i][k] -= next.Res[i][k]
		}
	}
	s.tick(phResiduals, s.residFl[l+1], &t)

	// Coarse-grid visits: gamma = 1 gives a V-cycle, 2 a W-cycle.
	visits := s.Gamma
	if l+1 == len(s.Levels)-1 {
		visits = 1 // revisiting the coarsest grid twice in a row is idle
	}
	for v := 0; v < visits; v++ {
		s.cycle(l + 1) // recursion charges its own phases
	}
	t = time.Now()

	// Prolong the coarse-grid correction back to this level.
	for i := range next.W {
		for k := 0; k < euler.NVar; k++ {
			next.Res[i][k] = next.W[i][k] - next.WSaved[i][k]
		}
	}
	next.Prolong.Interp(next.Res, lev.Corr)
	s.tick(phTransfers, s.prolongFl[l], &t)
	// Smooth the prolonged correction: interpolation across non-nested
	// grids injects high-frequency noise that would otherwise undo the
	// fine-grid smoothing (the implicit averaging operator doubles as the
	// correction smoother).
	lev.Disc.SmoothResiduals(lev.Corr)
	corr := lev.Corr
	for i := range lev.W {
		var cand euler.State
		for k := 0; k < euler.NVar; k++ {
			cand[k] = lev.W[i][k] + corr[i][k]
		}
		if !lev.Disc.P.Guard(cand) {
			continue // positivity guard: skip the correction at this vertex
		}
		lev.W[i] = cand
	}
	s.tick(phCorrections, s.corrFl[l], &t)
	return norm
}

// WorkUnits returns the per-cycle computational work of this solver in
// units of fine-grid time-steps, counting each level's steps per cycle
// weighted by its edge count — the measure behind the paper's "a W-cycle
// requires approximately 90% more CPU time than a single grid cycle, the
// V-cycle 75%".
func (s *Solver) WorkUnits() float64 {
	visits := s.visitCounts()
	fine := float64(s.Levels[0].Disc.M.NE())
	wu := 0.0
	for l, lev := range s.Levels {
		wu += float64(visits[l]) * float64(lev.Disc.M.NE()) / fine
	}
	return wu
}

// visitCounts returns how many time-steps each level performs in one cycle.
func (s *Solver) visitCounts() []int {
	n := len(s.Levels)
	counts := make([]int, n)
	var walk func(l, mult int)
	walk = func(l, mult int) {
		counts[l] += mult
		if l == n-1 {
			return
		}
		v := s.Gamma
		if l+1 == n-1 {
			v = 1
		}
		walk(l+1, mult*v)
	}
	walk(0, 1)
	return counts
}
