// Package multigrid implements the unstructured FAS multigrid solver of
// EUL3D: a sequence of completely unrelated (non-nested) tetrahedral
// meshes, inter-grid transfers defined by four interpolation addresses and
// four weights per vertex computed in a preprocessing phase with a
// graph-traversal (walk) search, and V- and W-cycle drivers built on the
// single-grid five-stage Runge-Kutta scheme.
package multigrid

import (
	"fmt"
	"math"

	"eul3d/internal/euler"
	"eul3d/internal/geom"
	"eul3d/internal/mesh"
)

// TransferOp interpolates vertex data from a source mesh onto the vertices
// of a target mesh. For each target vertex it stores the four vertices of
// the source tetrahedron containing it and the corresponding barycentric
// weights — the "four interpolation addresses and four interpolation
// weights for each vertex" of Section 2.3.
type TransferOp struct {
	Addr [][4]int32
	Wt   [][4]float64
}

// tetAdjacency returns, for each tet, its up to four face-neighbours
// (-1 where the face is on the boundary). Neighbour k is across the face
// opposite vertex k.
func tetAdjacency(m *mesh.Mesh) [][4]int32 {
	type slot struct {
		tet  int32
		face int8
	}
	faceOf := func(t [4]int32, k int) [3]int32 {
		var f [3]int32
		idx := 0
		for i := 0; i < 4; i++ {
			if i != k {
				f[idx] = t[i]
				idx++
			}
		}
		// sort 3
		if f[0] > f[1] {
			f[0], f[1] = f[1], f[0]
		}
		if f[1] > f[2] {
			f[1], f[2] = f[2], f[1]
		}
		if f[0] > f[1] {
			f[0], f[1] = f[1], f[0]
		}
		return f
	}
	adj := make([][4]int32, m.NT())
	for i := range adj {
		adj[i] = [4]int32{-1, -1, -1, -1}
	}
	open := make(map[[3]int32]slot, 2*m.NT())
	for ti, tet := range m.Tets {
		for k := 0; k < 4; k++ {
			f := faceOf(tet, k)
			if s, ok := open[f]; ok {
				adj[ti][k] = s.tet
				adj[s.tet][s.face] = int32(ti)
				delete(open, f)
			} else {
				open[f] = slot{int32(ti), int8(k)}
			}
		}
	}
	return adj
}

// walkTol is the barycentric slack accepted as containment during the walk
// search: non-nested grids only overlap approximately near curved walls.
const walkTol = 1e-9

// BuildTransfer locates every vertex of target inside source and returns
// the interpolation operator. The search walks the tet adjacency graph of
// the source mesh: from a starting guess, it repeatedly crosses the face
// whose barycentric coordinate is most negative, which converges in O(n^(1/3))
// steps on well-shaped meshes. Points slightly outside the source mesh
// (non-nested boundaries) snap to the best tet encountered, with clamped
// and renormalized weights. The cost of this preprocessing is comparable to
// one or two flow solution cycles, as the paper reports.
func BuildTransfer(target, source *mesh.Mesh) (*TransferOp, error) {
	if source.NT() == 0 {
		return nil, fmt.Errorf("multigrid: source mesh has no tets")
	}
	adj := tetAdjacency(source)
	op := &TransferOp{
		Addr: make([][4]int32, target.NV()),
		Wt:   make([][4]float64, target.NV()),
	}

	bary := func(t int32, p geom.Vec3) ([4]float64, bool) {
		tet := source.Tets[t]
		return geom.Barycentric(p, source.X[tet[0]], source.X[tet[1]], source.X[tet[2]], source.X[tet[3]])
	}

	start := int32(0)
	maxSteps := 4 * source.NT() // generous cycle guard
	for v := 0; v < target.NV(); v++ {
		p := target.X[v]
		cur := start
		bestTet := cur
		bestMin := math.Inf(-1)
		var bestL [4]float64
		found := false
		for step := 0; step < maxSteps; step++ {
			l, ok := bary(cur, p)
			if !ok {
				break // degenerate tet; fall through to brute force
			}
			minK, minV := 0, l[0]
			for k := 1; k < 4; k++ {
				if l[k] < minV {
					minK, minV = k, l[k]
				}
			}
			if minV > bestMin {
				bestMin, bestTet, bestL = minV, cur, l
			}
			if minV >= -walkTol {
				found = true
				break
			}
			next := adj[cur][minK]
			if next < 0 {
				break // walked off the mesh: p is outside; snap to best
			}
			cur = next
		}
		if !found && bestMin == math.Inf(-1) {
			// Walk never evaluated a valid tet: brute-force fallback.
			for t := int32(0); int(t) < source.NT(); t++ {
				if l, ok := bary(t, p); ok {
					minV := math.Min(math.Min(l[0], l[1]), math.Min(l[2], l[3]))
					if minV > bestMin {
						bestMin, bestTet, bestL = minV, t, l
					}
				}
			}
			if bestMin == math.Inf(-1) {
				return nil, fmt.Errorf("multigrid: all source tets degenerate")
			}
		}
		// Clamp and renormalize weights: exact inside the mesh, a nearest
		// projection for slightly-outside points.
		sum := 0.0
		for k := 0; k < 4; k++ {
			bestL[k] = geom.Clamp(bestL[k], 0, 1)
			sum += bestL[k]
		}
		for k := 0; k < 4; k++ {
			bestL[k] /= sum
		}
		tet := source.Tets[bestTet]
		op.Addr[v] = tet
		op.Wt[v] = bestL
		start = bestTet // next target vertex is usually nearby
	}
	return op, nil
}

// Interp evaluates dst[v] = sum_k Wt[v][k] * src[Addr[v][k]] for every
// target vertex. Used to restrict flow variables to a coarse grid and to
// prolong corrections to a fine grid.
func (op *TransferOp) Interp(src, dst []euler.State) {
	op.InterpRange(src, dst, 0, len(op.Addr))
}

// InterpRange evaluates Interp for target vertices [lo,hi) only. Each
// target vertex is written exactly once and reads are unrestricted, so
// disjoint ranges can run concurrently and any chunking reproduces the
// full Interp bitwise.
func (op *TransferOp) InterpRange(src, dst []euler.State, lo, hi int) {
	for v := lo; v < hi; v++ {
		a, w := op.Addr[v], op.Wt[v]
		var s euler.State
		for k := 0; k < 4; k++ {
			sv := src[a[k]]
			f := w[k]
			for c := 0; c < euler.NVar; c++ {
				s[c] += f * sv[c]
			}
		}
		dst[v] = s
	}
}

// ScatterTranspose applies the transpose of Interp: each source-of-Interp
// vertex value src[v] (v indexing the op's *target* mesh) is distributed
// onto dst at the four interpolation addresses with the same weights. With
// op built fine-vertices-in-coarse-mesh this is the conservative residual
// restriction: sum(dst) == sum(src). dst is zeroed first.
func (op *TransferOp) ScatterTranspose(src, dst []euler.State) {
	for i := range dst {
		dst[i] = euler.State{}
	}
	for v := range op.Addr {
		a, w := op.Addr[v], op.Wt[v]
		sv := src[v]
		for k := 0; k < 4; k++ {
			f := w[k]
			d := &dst[a[k]]
			for c := 0; c < euler.NVar; c++ {
				d[c] += f * sv[c]
			}
		}
	}
}

// ScatterPlan is the destination-grouped form of ScatterTranspose: the
// operator's 4*len(Addr) scatter entries regrouped by the destination
// vertex they accumulate into — in effect a coloring of the transfer
// entries on their destination address, stored as a CSR table with one
// row per destination. Row d holds the entries in exactly the (v, k)
// order the serial scatter visits them, so accumulating a row
// sequentially reproduces the serial floating-point sum for that
// destination bitwise, while distinct rows write distinct destinations
// and may be processed concurrently: any chunking of [0, NDst) by rows
// yields disjoint writes and a result bitwise identical to
// ScatterTranspose.
type ScatterPlan struct {
	Start []int32   // row boundaries, len = ndst+1
	Src   []int32   // source (transfer-target) vertex of each entry
	Wt    []float64 // interpolation weight of each entry
}

// Plan builds the destination-grouped scatter table for op onto a
// destination array of ndst vertices (the op's source-mesh vertex count).
// Entries within a row keep the serial scatter's (v, k) visit order: the
// counting sort below scans v ascending with k ascending inside, which is
// precisely that order.
func (op *TransferOp) Plan(ndst int) *ScatterPlan {
	pl := &ScatterPlan{
		Start: make([]int32, ndst+1),
		Src:   make([]int32, 4*len(op.Addr)),
		Wt:    make([]float64, 4*len(op.Addr)),
	}
	for v := range op.Addr {
		for k := 0; k < 4; k++ {
			pl.Start[op.Addr[v][k]+1]++
		}
	}
	for d := 0; d < ndst; d++ {
		pl.Start[d+1] += pl.Start[d]
	}
	fill := make([]int32, ndst)
	for v := range op.Addr {
		a, w := op.Addr[v], op.Wt[v]
		for k := 0; k < 4; k++ {
			d := a[k]
			at := pl.Start[d] + fill[d]
			pl.Src[at] = int32(v)
			pl.Wt[at] = w[k]
			fill[d]++
		}
	}
	return pl
}

// NDst returns the number of destination rows.
func (pl *ScatterPlan) NDst() int { return len(pl.Start) - 1 }

// GatherRange accumulates destination rows [lo,hi): dst[d] is zeroed and
// then summed over the row's entries in serial-scatter order. Writes are
// confined to dst[lo:hi].
func (pl *ScatterPlan) GatherRange(src, dst []euler.State, lo, hi int) {
	for d := lo; d < hi; d++ {
		var s euler.State
		for e := pl.Start[d]; e < pl.Start[d+1]; e++ {
			sv := src[pl.Src[e]]
			f := pl.Wt[e]
			for c := 0; c < euler.NVar; c++ {
				s[c] += f * sv[c]
			}
		}
		dst[d] = s
	}
}

// Apply runs the full destination-grouped scatter; bitwise identical to
// the originating op's ScatterTranspose.
func (pl *ScatterPlan) Apply(src, dst []euler.State) {
	pl.GatherRange(src, dst, 0, pl.NDst())
}
