package multigrid

import (
	"math"
	"testing"

	"eul3d/internal/euler"
	"eul3d/internal/mesh"
	"eul3d/internal/meshgen"
)

func sequence(t *testing.T, nx, ny, nz, levels int) []*mesh.Mesh {
	t.Helper()
	seq, err := meshgen.Sequence(meshgen.DefaultChannel(nx, ny, nz, 17), levels)
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func TestBuildTransferPartitionOfUnity(t *testing.T) {
	seq := sequence(t, 8, 6, 4, 2)
	op, err := BuildTransfer(seq[1], seq[0]) // coarse vertices in fine mesh
	if err != nil {
		t.Fatal(err)
	}
	if len(op.Addr) != seq[1].NV() {
		t.Fatalf("op sized %d, want %d", len(op.Addr), seq[1].NV())
	}
	for v := range op.Wt {
		sum := 0.0
		for k := 0; k < 4; k++ {
			w := op.Wt[v][k]
			if w < 0 || w > 1 {
				t.Fatalf("vertex %d: weight %v out of [0,1]", v, w)
			}
			sum += w
			a := op.Addr[v][k]
			if a < 0 || int(a) >= seq[0].NV() {
				t.Fatalf("vertex %d: address %d out of range", v, a)
			}
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("vertex %d: weights sum to %v", v, sum)
		}
	}
}

func TestTransferReproducesLinearField(t *testing.T) {
	// Interpolating a linear function through barycentric weights is exact
	// for interior points (and a boundary projection elsewhere).
	seq := sequence(t, 10, 8, 6, 2)
	fine, coarse := seq[0], seq[1]
	op, err := BuildTransfer(coarse, fine)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]euler.State, fine.NV())
	for i, x := range fine.X {
		v := 1 + 2*x.X - 3*x.Y + 0.5*x.Z
		src[i] = euler.State{v, 2 * v, -v, 0.25 * v, v * 3}
	}
	dst := make([]euler.State, coarse.NV())
	op.Interp(src, dst)
	maxErr := 0.0
	for i, x := range coarse.X {
		want := 1 + 2*x.X - 3*x.Y + 0.5*x.Z
		maxErr = math.Max(maxErr, math.Abs(dst[i][0]-want))
	}
	// Non-nested boundaries mean slight extrapolation error is allowed,
	// but it must be small relative to the field scale.
	if maxErr > 0.05 {
		t.Errorf("linear reproduction max error %g", maxErr)
	}
}

func TestScatterTransposeConservative(t *testing.T) {
	seq := sequence(t, 8, 6, 4, 2)
	fine, coarse := seq[0], seq[1]
	op, err := BuildTransfer(fine, coarse) // fine vertices in coarse mesh
	if err != nil {
		t.Fatal(err)
	}
	src := make([]euler.State, fine.NV())
	var want euler.State
	for i := range src {
		for k := 0; k < euler.NVar; k++ {
			src[i][k] = math.Sin(float64(i + k)) // arbitrary
			want[k] += src[i][k]
		}
	}
	dst := make([]euler.State, coarse.NV())
	op.ScatterTranspose(src, dst)
	var got euler.State
	for i := range dst {
		for k := 0; k < euler.NVar; k++ {
			got[k] += dst[i][k]
		}
	}
	for k := 0; k < euler.NVar; k++ {
		if math.Abs(got[k]-want[k]) > 1e-9*(1+math.Abs(want[k])) {
			t.Errorf("var %d: scatter sum %g, want %g", k, got[k], want[k])
		}
	}
}

func TestScheduleV(t *testing.T) {
	got := FormatSchedule(Schedule(3, 1))
	want := "E0 E1 E2 I1 I0"
	if got != want {
		t.Errorf("V schedule = %q, want %q", got, want)
	}
}

func TestScheduleW(t *testing.T) {
	got := FormatSchedule(Schedule(4, 2))
	// One step on the way down per visit; coarsest not revisited twice in
	// a row; recursive double visits at intermediate levels.
	want := "E0 E1 E2 E3 I2 E2 E3 I2 I1 E1 E2 E3 I2 E2 E3 I2 I1 I0"
	if got != want {
		t.Errorf("W schedule = %q, want %q", got, want)
	}
}

func TestScheduleSingleLevel(t *testing.T) {
	if got := FormatSchedule(Schedule(1, 2)); got != "E0" {
		t.Errorf("single-level schedule = %q", got)
	}
}

func TestDiagramShape(t *testing.T) {
	d := Diagram(3, 1)
	lines := 0
	for _, c := range d {
		if c == '\n' {
			lines++
		}
	}
	if lines != 3 {
		t.Errorf("diagram has %d rows, want 3:\n%s", lines, d)
	}
}

func TestVisitCountsMatchSchedule(t *testing.T) {
	for _, gamma := range []int{1, 2} {
		for levels := 1; levels <= 5; levels++ {
			ev := Schedule(levels, gamma)
			fromSchedule := make([]int, levels)
			for _, e := range ev {
				if e.Kind == EulerStep {
					fromSchedule[e.Level]++
				}
			}
			s := &Solver{Gamma: gamma, Levels: make([]*Level, levels)}
			got := s.visitCounts()
			for l := range got {
				if got[l] != fromSchedule[l] {
					t.Errorf("gamma=%d levels=%d: visitCounts=%v schedule=%v",
						gamma, levels, got, fromSchedule)
				}
			}
		}
	}
}

func newSolver(t *testing.T, gamma int) *Solver {
	t.Helper()
	seq := sequence(t, 16, 8, 4, 3)
	s, err := New(seq, euler.DefaultParams(0.5, 0), gamma)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, euler.DefaultParams(0.5, 0), 1); err == nil {
		t.Error("accepted empty mesh list")
	}
	seq := sequence(t, 4, 4, 4, 1)
	if _, err := New(seq, euler.DefaultParams(0.5, 0), 0); err == nil {
		t.Error("accepted gamma=0")
	}
}

func TestCyclePreservesFreestream(t *testing.T) {
	// On a bumpless channel the freestream is an exact solution; the FAS
	// forcing must then vanish and cycles must not perturb the solution.
	spec := meshgen.DefaultChannel(8, 6, 4, 21)
	spec.BumpHeight = 0
	seq, err := meshgen.Sequence(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(seq, euler.DefaultParams(0.6, 0), 2)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		if norm := s.Cycle(); norm > 1e-10 {
			t.Fatalf("cycle %d: freestream residual %g", c, norm)
		}
	}
	free := s.Fine().Disc.P.Freestream
	for i, w := range s.Fine().W {
		for k := 0; k < euler.NVar; k++ {
			if math.Abs(w[k]-free[k]) > 1e-9 {
				t.Fatalf("vertex %d: freestream perturbed: %v", i, w)
			}
		}
	}
}

func TestMultigridAcceleratesConvergence(t *testing.T) {
	// The Figure 2 claim, in miniature: after equal numbers of cycles, the
	// multigrid residual is far below the single-grid residual.
	if testing.Short() {
		t.Skip("short mode")
	}
	// Bump-channel resolutions below ~32x16x12 sit in a marginal
	// limit cycle that masks the asymptotic rates; use the smallest clean
	// configuration (also the Figure 2 default).
	seq := sequence(t, 32, 16, 12, 4)
	p := euler.DefaultParams(0.675, 0)

	single := euler.NewDisc(seq[0], p)
	w := make([]euler.State, seq[0].NV())
	single.InitUniform(w)
	ws := euler.NewStepWorkspace(len(w))
	var sgNorm float64
	for c := 0; c < 60; c++ {
		sgNorm = single.Step(w, nil, ws)
	}

	mg, err := New(seq, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	var mgNorm float64
	for c := 0; c < 60; c++ {
		mgNorm = mg.Cycle()
	}
	t.Logf("after 60 cycles: single-grid %.3e, W-cycle %.3e", sgNorm, mgNorm)
	if !(mgNorm < sgNorm/10) {
		t.Errorf("W-cycle did not accelerate by 10x: single %g vs multigrid %g", sgNorm, mgNorm)
	}
}

func TestWorkUnits(t *testing.T) {
	v := newSolver(t, 1)
	wcy := newSolver(t, 2)
	wuV, wuW := v.WorkUnits(), wcy.WorkUnits()
	if wuV <= 1 || wuW <= wuV {
		t.Errorf("work units: V=%v W=%v", wuV, wuW)
	}
}

func TestMemoryOverhead(t *testing.T) {
	s := newSolver(t, 2)
	ov := s.MemoryOverhead()
	if ov <= 0 || ov > 1 {
		t.Errorf("memory overhead = %v, expected a modest fraction", ov)
	}
	t.Logf("multigrid memory overhead: %.1f%% (paper: ~33%%)", 100*ov)
}

func TestFMGInitAcceleratesSubcriticalSolve(t *testing.T) {
	// Full-multigrid initialization pays off on smooth (subcritical)
	// flows, where the coarse-grid solution is already a good picture of
	// the fine one; at transonic conditions the coarse grids place the
	// shock differently and the benefit shrinks.
	seq := sequence(t, 24, 12, 8, 3)
	p := euler.DefaultParams(0.5, 0)

	cold, err := New(seq, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	fmg, err := New(seq, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	fmg.FMGInit(25)
	// The FMG solution must be physical everywhere before fine cycles.
	g := p.Gas
	for i, w := range fmg.Fine().W {
		if w[0] <= 0 || g.Pressure(w) <= 0 {
			t.Fatalf("unphysical FMG state at vertex %d: %v", i, w)
		}
	}
	var coldN, fmgN float64
	for c := 0; c < 25; c++ {
		coldN = cold.Cycle()
		fmgN = fmg.Cycle()
	}
	t.Logf("after 25 fine cycles: cold %.3e, FMG %.3e", coldN, fmgN)
	if !(fmgN < coldN/2) {
		t.Errorf("FMG did not accelerate the solve: %g vs %g", fmgN, coldN)
	}
}
