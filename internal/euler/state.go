// Package euler implements the numerics of EUL3D: a vertex-centered
// Galerkin (central-difference-like) discretization of the 3-D compressible
// Euler equations on tetrahedral meshes, with blended Laplacian/biharmonic
// artificial dissipation, local time stepping, implicit residual averaging,
// and the hybrid five-stage Runge-Kutta scheme of the paper. All compute-
// intensive kernels are single or two-pass loops over the mesh edge list.
//
// Nondimensionalization: freestream density = 1, freestream speed of sound
// = 1, so freestream velocity magnitude equals the Mach number and
// freestream pressure is 1/gamma.
package euler

import "math"

// NVar is the number of conserved variables per vertex.
const NVar = 5

// State holds the conserved variables (rho, rho*u, rho*v, rho*w, rho*E).
type State [NVar]float64

// Add returns s + t.
func (s State) Add(t State) State {
	for i := range s {
		s[i] += t[i]
	}
	return s
}

// Sub returns s - t.
func (s State) Sub(t State) State {
	for i := range s {
		s[i] -= t[i]
	}
	return s
}

// Scale returns a*s.
func (s State) Scale(a float64) State {
	for i := range s {
		s[i] *= a
	}
	return s
}

// Gas holds the perfect-gas parameters.
type Gas struct {
	Gamma float64
}

// Air is the standard diatomic perfect gas.
var Air = Gas{Gamma: 1.4}

// Pressure returns the static pressure of s.
func (g Gas) Pressure(s State) float64 {
	rho := s[0]
	q2 := (s[1]*s[1] + s[2]*s[2] + s[3]*s[3]) / rho
	return (g.Gamma - 1) * (s[4] - 0.5*q2)
}

// SoundSpeed returns the local speed of sound of s.
func (g Gas) SoundSpeed(s State) float64 {
	p := g.Pressure(s)
	return math.Sqrt(g.Gamma * p / s[0])
}

// Velocity returns the velocity components of s.
func (g Gas) Velocity(s State) (u, v, w float64) {
	inv := 1 / s[0]
	return s[1] * inv, s[2] * inv, s[3] * inv
}

// Mach returns the local Mach number of s.
func (g Gas) Mach(s State) float64 {
	u, v, w := g.Velocity(s)
	return math.Sqrt(u*u+v*v+w*w) / g.SoundSpeed(s)
}

// FromPrimitive builds a conserved state from (rho, u, v, w, p).
func (g Gas) FromPrimitive(rho, u, v, w, p float64) State {
	return State{
		rho,
		rho * u,
		rho * v,
		rho * w,
		p/(g.Gamma-1) + 0.5*rho*(u*u+v*v+w*w),
	}
}

// Freestream returns the uniform state at Mach number mach with angle of
// attack alphaDeg (degrees, in the x-y plane) in the nondimensionalization
// of this package (rho=1, c=1).
func (g Gas) Freestream(mach, alphaDeg float64) State {
	a := alphaDeg * math.Pi / 180
	return g.FromPrimitive(1, mach*math.Cos(a), mach*math.Sin(a), 0, 1/g.Gamma)
}

// FluxDotN returns the inviscid flux of s projected onto the (area-
// weighted, non-normalized) normal n = (nx, ny, nz), with p the
// precomputed pressure of s.
func FluxDotN(s State, p, nx, ny, nz float64) State {
	inv := 1 / s[0]
	un := (s[1]*nx + s[2]*ny + s[3]*nz) * inv
	return State{
		s[0] * un,
		s[1]*un + p*nx,
		s[2]*un + p*ny,
		s[3]*un + p*nz,
		(s[4] + p) * un,
	}
}
