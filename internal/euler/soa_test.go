package euler

import (
	"testing"
)

// TestStateSoARoundTrip checks the SoA block's conversion surface: a
// []State gathered with FromStates scatters back unchanged through At,
// Set, ToStates and CopyRange, and ZeroRange clears exactly its range.
func TestStateSoARoundTrip(t *testing.T) {
	_, w := kernelFixture(t)
	n := len(w)

	s := NewStateSoA(n)
	if s.Len() != n {
		t.Fatalf("Len() = %d, want %d", s.Len(), n)
	}
	s.FromStates(w, 0, n)
	for i := range w {
		if s.At(i) != w[i] {
			t.Fatalf("At(%d) = %v, want %v", i, s.At(i), w[i])
		}
	}

	back := make([]State, n)
	s.ToStates(back, 0, n)
	for i := range w {
		if back[i] != w[i] {
			t.Fatalf("ToStates: vertex %d = %v, want %v", i, back[i], w[i])
		}
	}

	mod := State{1, 2, 3, 4, 5}
	s.Set(7, mod)
	if s.At(7) != mod {
		t.Fatalf("Set/At: got %v, want %v", s.At(7), mod)
	}

	dst := NewStateSoA(n)
	dst.CopyRange(s, 3, n-2)
	for i := 3; i < n-2; i++ {
		if dst.At(i) != s.At(i) {
			t.Fatalf("CopyRange: vertex %d = %v, want %v", i, dst.At(i), s.At(i))
		}
	}
	if dst.At(0) != (State{}) || dst.At(n-1) != (State{}) {
		t.Fatal("CopyRange wrote outside its range")
	}

	s.ZeroRange(2, 5)
	for i := 2; i < 5; i++ {
		if s.At(i) != (State{}) {
			t.Fatalf("ZeroRange left vertex %d = %v", i, s.At(i))
		}
	}
	if s.At(1) == (State{}) || s.At(5) == (State{}) {
		t.Fatal("ZeroRange cleared outside its range")
	}
}

// TestSoAKernelsBitwiseMatchAoS drives the full kernel sequence of one RK
// stage — init, zeroing, convective flux, both dissipation passes,
// spectral radii, time steps, residual combine, one smoothing sweep and
// both update forms — through the AoS range kernels and their SoA
// counterparts on the same mesh and field, asserting bitwise-identical
// results everywhere. This is the contract the parallel executor's SoA
// hot path rests on: the component streams change the memory layout, not
// one floating-point operation.
func TestSoAKernelsBitwiseMatchAoS(t *testing.T) {
	dA, w := kernelFixture(t)
	dB := NewDisc(dA.M, dA.P)
	nv := dA.M.NV()
	edges, faces := allEdges(dA), allFaces(dA)

	sameF := func(name string, a, b []float64) {
		t.Helper()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: vertex %d: %v (AoS) vs %v (SoA)", name, i, a[i], b[i])
			}
		}
	}
	sameS := func(name string, aos []State, soa *StateSoA) {
		t.Helper()
		for i := range aos {
			if got := soa.At(i); aos[i] != got {
				t.Fatalf("%s: vertex %d: %v (AoS) vs %v (SoA)", name, i, aos[i], got)
			}
		}
	}

	// Init: snapshot + pressures + lam reset.
	w0A := make([]State, nv)
	dA.StepInitKernel(w, w0A, 0, nv)
	wS, w0S := NewStateSoA(nv), NewStateSoA(nv)
	dB.StepInitSoAKernel(w, wS, w0S, 0, nv)
	sameS("init w", w, wS)
	sameS("init w0", w0A, w0S)
	sameF("init pres", dA.Pres(), dB.Pres())

	// Stage zeroing (AoS zeroes d.lapl internally; SoA takes the block).
	convA, dissA := make([]State, nv), make([]State, nv)
	dA.StageZeroKernel(convA, dissA, true, 0, nv)
	convS, dissS, laplS := NewStateSoA(nv), NewStateSoA(nv), NewStateSoA(nv)
	dB.StageZeroSoAKernel(convS, dissS, laplS, true, 0, nv)

	// Convective flux + boundary closure.
	dA.ConvectiveEdgesKernel(w, convA, edges)
	dA.BoundaryFluxKernel(w, convA, faces)
	dB.ConvectiveEdgesSoAKernel(wS, convS, edges)
	dB.BoundaryFluxSoAKernel(wS, convS, faces)
	sameS("convective", convA, convS)

	// Dissipation: Laplacian + sensor, switch, blended flux.
	dA.DissPass1Kernel(w, dA.Lapl(), dA.Sensor(), dA.Den(), edges)
	dB.DissPass1SoAKernel(wS, laplS, dB.Sensor(), dB.Den(), edges)
	sameS("laplacian", dA.Lapl(), laplS)
	sameF("sensor", dA.Sensor(), dB.Sensor())
	sameF("den", dA.Den(), dB.Den())
	dA.NuRangeKernel(dA.Sensor(), dA.Den(), 0, nv)
	dB.NuRangeKernel(dB.Sensor(), dB.Den(), 0, nv)
	dA.DissPass2Kernel(w, dA.Lapl(), dissA, dA.Sensor(), edges)
	dB.DissPass2SoAKernel(wS, laplS, dissS, dB.Sensor(), edges)
	sameS("dissipation", dissA, dissS)

	// Spectral radii and local time steps.
	dA.LambdaEdgesKernel(w, dA.Lam(), edges)
	dA.LambdaBFacesKernel(w, dA.Lam(), faces)
	dB.LambdaEdgesSoAKernel(wS, dB.Lam(), edges)
	dB.LambdaBFacesSoAKernel(wS, dB.Lam(), faces)
	sameF("lambda", dA.Lam(), dB.Lam())
	dA.DtRangeKernel(dA.Lam(), 0, nv)
	dB.DtRangeKernel(dB.Lam(), 0, nv)
	sameF("dt", dA.Dt, dB.Dt)

	// Residual combine, with and without forcing, both output layouts.
	forcing := make([]State, nv)
	for i := range forcing {
		forcing[i] = State{1e-3, -2e-3, 3e-3, -4e-3, 5e-3}
	}
	resA := make([]State, nv)
	resS := NewStateSoA(nv)
	dA.CombineResidualKernel(resA, convA, dissA, forcing, 0, nv)
	dB.CombineResidualSoAKernel(resS, convS, dissS, forcing, 0, nv)
	sameS("residual+forcing", resA, resS)
	resOut := make([]State, nv)
	dB.CombineResidualOutKernel(resOut, convS, dissS, forcing, 0, nv)
	for i := range resA {
		if resA[i] != resOut[i] {
			t.Fatalf("residual-out: vertex %d: %v vs %v", i, resA[i], resOut[i])
		}
	}
	dA.CombineResidualKernel(resA, convA, dissA, nil, 0, nv)
	dB.CombineResidualSoAKernel(resS, convS, dissS, nil, 0, nv)
	sameS("residual", resA, resS)

	// One Jacobi smoothing sweep.
	rhsA, nextA := make([]State, nv), make([]State, nv)
	copy(rhsA, resA)
	dA.SmoothAccumKernel(resA, nextA, edges)
	dA.SmoothCombineKernel(rhsA, nextA, dA.P.EpsSmooth, 0, nv)
	rhsS, nextS := NewStateSoA(nv), NewStateSoA(nv)
	rhsS.CopyRange(resS, 0, nv)
	dB.SmoothAccumSoAKernel(resS, nextS, edges)
	dB.SmoothCombineSoAKernel(rhsS, nextS, dA.P.EpsSmooth, 0, nv)
	sameS("smoothing", nextA, nextS)

	// Both update forms: final stage scattering to []State, and the fused
	// intermediate stage with its pressure refresh.
	const alpha = 0.5
	wOutA := make([]State, nv)
	dA.UpdateRangeKernel(wOutA, w0A, resA, alpha, 0, nv)
	wOutS := make([]State, nv)
	dB.UpdateFinalSoAKernel(wOutS, w0S, resS, alpha, 0, nv)
	for i := range wOutA {
		if wOutA[i] != wOutS[i] {
			t.Fatalf("update-final: vertex %d: %v vs %v", i, wOutA[i], wOutS[i])
		}
	}
	dA.PressureRangeKernel(wOutA, 0, nv)
	dB.UpdateNextSoAKernel(wS, w0S, resS, alpha, 0, nv)
	sameS("update-next", wOutA, wS)
	sameF("update-next pres", dA.Pres(), dB.Pres())
}
