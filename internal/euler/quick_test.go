package euler

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"eul3d/internal/geom"
)

// randState draws a physically valid conserved state.
func randState(rng *rand.Rand) State {
	return Air.FromPrimitive(
		0.2+2*rng.Float64(),
		2*rng.Float64()-1,
		2*rng.Float64()-1,
		2*rng.Float64()-1,
		0.1+rng.Float64(),
	)
}

func TestQuickFluxLinearInNormal(t *testing.T) {
	// F(w).n is linear in the normal: F.(a*n1 + b*n2) = a*F.n1 + b*F.n2.
	rng := rand.New(rand.NewSource(2))
	f := func(a, b float64) bool {
		if math.Abs(a) > 1e3 || math.Abs(b) > 1e3 {
			return true
		}
		s := randState(rng)
		p := Air.Pressure(s)
		n1 := geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
		n2 := geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
		n := n1.Scale(a).Add(n2.Scale(b))
		lhs := FluxDotN(s, p, n.X, n.Y, n.Z)
		f1 := FluxDotN(s, p, n1.X, n1.Y, n1.Z)
		f2 := FluxDotN(s, p, n2.X, n2.Y, n2.Z)
		for k := 0; k < NVar; k++ {
			want := a*f1[k] + b*f2[k]
			if math.Abs(lhs[k]-want) > 1e-9*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickPrimitiveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rho := 0.2 + 2*rng.Float64()
		u, v, w := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		p := 0.1 + rng.Float64()
		s := Air.FromPrimitive(rho, u, v, w, p)
		gu, gv, gw := Air.Velocity(s)
		return math.Abs(Air.Pressure(s)-p) < 1e-12 &&
			math.Abs(gu-u)+math.Abs(gv-v)+math.Abs(gw-w) < 1e-12 &&
			s[0] == rho
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickSpectralRadiusProperties(t *testing.T) {
	// Symmetric in the two states; positively homogeneous of degree 1 in
	// the normal; bounded below by c_avg*|n|.
	rng := rand.New(rand.NewSource(3))
	f := func(scale float64) bool {
		scale = math.Abs(scale)
		if scale == 0 || scale > 1e3 || math.IsInf(scale, 0) || math.IsNaN(scale) {
			return true
		}
		wi, wj := randState(rng), randState(rng)
		pi, pj := Air.Pressure(wi), Air.Pressure(wj)
		n := geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
		l1 := SpectralRadius(Air, wi, wj, pi, pj, n)
		l2 := SpectralRadius(Air, wj, wi, pj, pi, n)
		if math.Abs(l1-l2) > 1e-12*(1+l1) {
			return false
		}
		ls := SpectralRadius(Air, wi, wj, pi, pj, n.Scale(scale))
		if math.Abs(ls-scale*l1) > 1e-9*(1+ls) {
			return false
		}
		cAvg := 0.5 * (Air.SoundSpeed(wi) + Air.SoundSpeed(wj))
		return l1 >= cAvg*n.Norm()-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickFarFieldConsistency(t *testing.T) {
	// For any interior state, the far-field state keeps positive density
	// and pressure, and at uniform conditions it is the identity.
	rng := rand.New(rand.NewSource(4))
	winf := Air.Freestream(0.7, 1.0)
	f := func(seed int64) bool {
		_ = seed
		wi := randState(rng)
		n := geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
		if n.Norm() < 1e-12 {
			return true
		}
		wb := FarFieldState(Air, wi, winf, n)
		return wb[0] > 0 && Air.Pressure(wb) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
