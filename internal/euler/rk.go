package euler

import "math"

// Residual evaluates the full steady residual R(w) = Q(w) - D(w) into res,
// refreshing pressures first. It is used by the multigrid forcing-function
// construction (once per level pair per cycle, so it runs on Disc-owned
// scratch and allocates nothing) and by tests; the RK driver below inlines
// the same pieces to control when the dissipation is refrozen.
func (d *Disc) Residual(w []State, res []State) {
	d.computePressures(w)
	d.Convective(w, res)
	d.Dissipation(w, d.rdiss)
	for i := range res {
		for k := 0; k < NVar; k++ {
			res[i][k] -= d.rdiss[i][k]
		}
	}
}

// StepWorkspace holds the per-step scratch arrays of the RK driver.
type StepWorkspace struct {
	w0   []State // stage-0 solution
	conv []State // convective residual
	diss []State // frozen dissipative residual
	res  []State // combined, smoothed residual
}

// NewStepWorkspace allocates workspace for meshes of nv vertices.
func NewStepWorkspace(nv int) *StepWorkspace {
	return &StepWorkspace{
		w0:   make([]State, nv),
		conv: make([]State, nv),
		diss: make([]State, nv),
		res:  make([]State, nv),
	}
}

// Resize grows the workspace for meshes of nv vertices, reusing the
// existing arrays when their capacity allows (see Disc.Retarget).
func (ws *StepWorkspace) Resize(nv int) {
	ws.w0 = growState(ws.w0, nv)
	ws.conv = growState(ws.conv, nv)
	ws.diss = growState(ws.diss, nv)
	ws.res = growState(ws.res, nv)
}

// Step advances w by one multistage time step of the hybrid scheme:
//
//	w(q) = w(0) - alpha_q * Dt/V * [ Q(w(q-1)) - D* + forcing ]
//
// with the dissipation D* re-evaluated on the first DissipStages stages and
// frozen afterwards, local time steps, and implicit residual averaging
// applied to the combined residual at every stage. forcing may be nil (fine
// grid) or the multigrid FAS forcing function P. It returns the RMS of the
// density component of the first-stage residual divided by the control
// volume — the convergence measure plotted in Figure 2.
func (d *Disc) Step(w []State, forcing []State, ws *StepWorkspace) float64 {
	m := d.M
	nv := m.NV()
	if nv == 0 {
		return 0
	}
	copy(ws.w0, w)

	d.computePressures(w)
	d.ComputeTimeSteps(w)

	resNorm := 0.0
	for q, alpha := range d.P.Stages {
		if q > 0 {
			d.computePressures(w)
		}
		d.Convective(w, ws.conv)
		if q < DissipStages {
			d.Dissipation(w, ws.diss)
		}
		for i := 0; i < nv; i++ {
			for k := 0; k < NVar; k++ {
				ws.res[i][k] = ws.conv[i][k] - ws.diss[i][k]
			}
			if forcing != nil {
				for k := 0; k < NVar; k++ {
					ws.res[i][k] += forcing[i][k]
				}
			}
		}
		if q == 0 {
			resNorm = math.Sqrt(ResidualNormSq(ws.res, m.Vol, nv) / float64(nv))
		}
		d.SmoothResiduals(ws.res)
		for i := 0; i < nv; i++ {
			f := alpha * d.Dt[i] / m.Vol[i]
			var cand State
			for k := 0; k < NVar; k++ {
				cand[k] = ws.w0[i][k] - f*ws.res[i][k]
			}
			// Positivity safeguard: revert or convex-limit the stage update.
			w[i] = d.P.admitUpdate(ws.w0[i], cand)
		}
	}
	return resNorm
}

// InitUniform fills w with the freestream state.
func (d *Disc) InitUniform(w []State) {
	for i := range w {
		w[i] = d.P.Freestream
	}
}

// NormBlock is the fixed reduction block of the residual-norm sum. Every
// solver engine — sequential, shared-memory pooled, distributed — sums
// (res[i][0]/vol[i])^2 within NormBlock-sized index blocks and combines
// the block partials in block order, so the rounded norm is identical
// across engines and worker counts (the parallel engines hand whole
// blocks to workers).
const NormBlock = 4096

// ResidualNormSq returns sum over i in [0,n) of (res[i][0]/vol[i])^2,
// accumulated in fixed NormBlock-sized blocks combined in block order.
func ResidualNormSq(res []State, vol []float64, n int) float64 {
	sum := 0.0
	for lo := 0; lo < n; lo += NormBlock {
		hi := lo + NormBlock
		if hi > n {
			hi = n
		}
		b := 0.0
		for i := lo; i < hi; i++ {
			r := res[i][0] / vol[i]
			b += r * r
		}
		sum += b
	}
	return sum
}
