package euler

import (
	"math"
	"math/rand"
	"testing"
)

func limiterParams() Params {
	return Params{Gas: Air, MinDensity: 0.05, MinPressure: 0.02, ConvexLimit: true}
}

// randAdmissible draws a random state clearing the floors of p.
func randAdmissible(rng *rand.Rand, p *Params) State {
	for {
		s := p.Gas.FromPrimitive(
			p.MinDensity+math.Exp(rng.Float64()*3-1),
			rng.Float64()*4-2, rng.Float64()*4-2, rng.Float64()*4-2,
			p.MinPressure+math.Exp(rng.Float64()*3-1),
		)
		if p.Guard(s) {
			return s
		}
	}
}

// randCandidate draws a random candidate update, admissible or not.
func randCandidate(rng *rand.Rand) State {
	var s State
	for k := 0; k < NVar; k++ {
		s[k] = rng.Float64()*8 - 4
	}
	return s
}

// TestLimitUpdateIdentity: an admissible candidate passes through bitwise
// unchanged — the limiter is invisible on smooth flow and near
// convergence.
func TestLimitUpdateIdentity(t *testing.T) {
	p := limiterParams()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		w0 := randAdmissible(rng, &p)
		cand := randAdmissible(rng, &p)
		if got := p.LimitUpdate(w0, cand); got != cand {
			t.Fatalf("admissible candidate altered: %v -> %v", cand, got)
		}
	}
}

// TestLimitUpdateAdmissible: whatever the candidate, the limited state is
// admissible (rho and p clear the floors) and lies on the segment between
// w0 and cand.
func TestLimitUpdateAdmissible(t *testing.T) {
	p := limiterParams()
	rng := rand.New(rand.NewSource(4))
	limited, passed := 0, 0
	for i := 0; i < 5000; i++ {
		w0 := randAdmissible(rng, &p)
		cand := randCandidate(rng)
		out := p.LimitUpdate(w0, cand)
		if !p.Guard(out) {
			t.Fatalf("limited state inadmissible: w0=%v cand=%v out=%v (rho=%g p=%g)",
				w0, cand, out, out[0], p.Gas.Pressure(out))
		}
		// On the segment: every component's blending parameter must agree.
		theta := -1.0
		for k := 0; k < NVar; k++ {
			d := cand[k] - w0[k]
			if math.Abs(d) < 1e-12 {
				continue
			}
			tk := (out[k] - w0[k]) / d
			if tk < -1e-9 || tk > 1+1e-9 {
				t.Fatalf("component %d off the segment: theta=%g", k, tk)
			}
			if theta < 0 {
				theta = tk
			} else if math.Abs(tk-theta) > 1e-9 {
				t.Fatalf("inconsistent theta across components: %g vs %g", tk, theta)
			}
		}
		if out != cand {
			limited++
		} else {
			passed++
		}
	}
	// The draw ranges make both outcomes (pass-through, partial limit)
	// common; if one never occurs the test lost its teeth. A full revert
	// never happens from a strictly interior w0 — some prefix of any
	// direction stays admissible, which is the limiter's whole point.
	if limited == 0 || passed == 0 {
		t.Fatalf("degenerate coverage: limited=%d passed=%d", limited, passed)
	}
}

// TestLimitUpdateKeepsProgress: for a candidate that is inadmissible but
// whose direction has admissible prefix, the limiter keeps strictly more
// of the update than the all-or-nothing revert.
func TestLimitUpdateKeepsProgress(t *testing.T) {
	p := limiterParams()
	w0 := p.Gas.FromPrimitive(1, 0, 0, 0, 1)
	// Candidate drives density far below the floor; the first part of the
	// segment is admissible.
	cand := p.Gas.FromPrimitive(-1, 0, 0, 0, 1)
	out := p.LimitUpdate(w0, cand)
	if out == w0 {
		t.Fatalf("limiter reverted an update with admissible prefix")
	}
	if !p.Guard(out) {
		t.Fatalf("limited state inadmissible: %v", out)
	}
	// theta_max puts the density exactly at the floor (within bisection
	// resolution).
	if math.Abs(out[0]-p.MinDensity) > 1e-9 {
		t.Fatalf("expected density at the floor %g, got %g", p.MinDensity, out[0])
	}

	// The guard path (ConvexLimit off) must still revert wholesale.
	pg := p
	pg.ConvexLimit = false
	if got := pg.admitUpdate(w0, cand); got != w0 {
		t.Fatalf("guard path did not revert: %v", got)
	}
}

// TestLimitUpdateZeroAlloc: the limiter runs inside the per-vertex hot
// loop of every engine and must not allocate.
func TestLimitUpdateZeroAlloc(t *testing.T) {
	p := limiterParams()
	w0 := p.Gas.FromPrimitive(1, 0, 0, 0, 1)
	cand := p.Gas.FromPrimitive(-1, 3, 0, 0, -2)
	if allocs := testing.AllocsPerRun(100, func() { _ = p.LimitUpdate(w0, cand) }); allocs != 0 {
		t.Fatalf("LimitUpdate allocates %v times per call", allocs)
	}
}

// FuzzLimitUpdate hunts for states where the limiter returns an
// inadmissible state or mangles an admissible candidate.
func FuzzLimitUpdate(f *testing.F) {
	f.Add(1.0, 0.0, 0.0, 0.0, 2.5, 0.1, 0.0, 0.0, 0.0, 0.2)
	f.Add(1.0, 0.5, 0.0, 0.0, 2.5, -1.0, 0.5, 0.0, 0.0, 2.5)
	f.Fuzz(func(t *testing.T, a0, a1, a2, a3, a4, b0, b1, b2, b3, b4 float64) {
		p := limiterParams()
		w0 := State{a0, a1, a2, a3, a4}
		cand := State{b0, b1, b2, b3, b4}
		for k := 0; k < NVar; k++ {
			if math.IsNaN(w0[k]) || math.IsInf(w0[k], 0) || math.IsNaN(cand[k]) || math.IsInf(cand[k], 0) {
				t.Skip()
			}
		}
		out := p.LimitUpdate(w0, cand)
		if p.Guard(cand) && out != cand {
			t.Fatalf("admissible candidate altered: %v -> %v", cand, out)
		}
		if p.Guard(w0) && !p.Guard(out) {
			t.Fatalf("inadmissible output from admissible w0: w0=%v cand=%v out=%v", w0, cand, out)
		}
		if !p.Guard(w0) && out != w0 && !p.Guard(cand) {
			t.Fatalf("inadmissible w0 must be returned as-is: w0=%v out=%v", w0, out)
		}
	})
}
