package euler

import (
	"math"

	"eul3d/internal/geom"
	"eul3d/internal/mesh"
)

// Params collects the numerical parameters of the scheme. Zero values are
// replaced by DefaultParams values where noted.
type Params struct {
	Gas        Gas
	CFL        float64   // Courant number for the local time step
	K2         float64   // Laplacian (shock) dissipation coefficient
	K4         float64   // biharmonic (background) dissipation coefficient
	EpsSmooth  float64   // implicit residual averaging coefficient (0 = off)
	NSmooth    int       // Jacobi sweeps for residual averaging
	WideSensor bool      // widen the shock switch by one neighbourhood
	Stages     []float64 // Runge-Kutta stage coefficients
	Freestream State     // far-field reference state

	// Positivity guard (see Guard): a stage update dropping density below
	// MinDensity or pressure below MinPressure is reverted at that vertex.
	// Zero values disable the guard.
	MinDensity  float64
	MinPressure float64

	// ConvexLimit replaces the all-or-nothing revert with the clip-free
	// convex limiter (see LimitUpdate in limiter.go): an inadmissible stage
	// update is scaled back along the segment to the stage-0 state until
	// density and pressure clear the floors, instead of being discarded.
	// Requires positive MinDensity/MinPressure to have any effect.
	ConvexLimit bool

	// GlobalDt, when positive, replaces the local time step CFL*V/lambda
	// with this fixed global step at every vertex, turning the multistage
	// scheme into a time-accurate low-storage Runge-Kutta integrator (set
	// EpsSmooth/NSmooth to zero as well — implicit residual averaging is a
	// steady-state convergence device and destroys time accuracy). The
	// caller owns stability: GlobalDt must respect the most restrictive
	// vertex's CFL limit.
	GlobalDt float64
}

// DefaultParams returns the parameter set used by the experiments: the
// hybrid 5-stage scheme with alpha = (1/4, 1/6, 3/8, 1/2, 1), dissipation
// evaluated on the first two stages only, CFL boosted by residual
// averaging.
func DefaultParams(mach, alphaDeg float64) Params {
	g := Air
	return Params{
		Gas:         g,
		CFL:         6.0,
		K2:          0.55,
		K4:          1.0 / 16,
		EpsSmooth:   0.6,
		NSmooth:     2,
		MinDensity:  0.05,
		MinPressure: 0.02,
		Stages:      []float64{0.25, 1.0 / 6, 0.375, 0.5, 1.0},
		Freestream:  g.Freestream(mach, alphaDeg),
	}
}

// DissipStages is the number of leading RK stages on which the dissipative
// operator is re-evaluated; it is frozen afterwards (Section 2.2).
const DissipStages = 2

// Disc couples a mesh with the numerical parameters and owns the scratch
// arrays for one grid level, so that the per-cycle hot loops are
// allocation-free.
type Disc struct {
	M *mesh.Mesh
	P Params

	// Scratch (sized to the mesh):
	pres   []float64 // vertex pressures
	lam    []float64 // vertex-accumulated spectral radii (for Dt)
	sensor []float64 // pressure-switch numerator workspace
	den    []float64 // pressure-switch denominator workspace
	lapl   []State   // undivided Laplacian of w
	smooth []State   // residual-averaging workspace
	rhs    []State   // residual-averaging right-hand side copy
	rdiss  []State   // dissipation scratch for Residual
	deg    []int32   // vertex degrees (for Jacobi smoothing)
	Dt     []float64 // local time steps
}

// NewDisc allocates a discretization for mesh m with parameters p.
func NewDisc(m *mesh.Mesh, p Params) *Disc {
	nv := m.NV()
	return &Disc{
		M: m, P: p,
		pres:   make([]float64, nv),
		lam:    make([]float64, nv),
		sensor: make([]float64, nv),
		den:    make([]float64, nv),
		lapl:   make([]State, nv),
		smooth: make([]State, nv),
		rhs:    make([]State, nv),
		rdiss:  make([]State, nv),
		deg:    degrees(m),
		Dt:     make([]float64, nv),
	}
}

func degrees(m *mesh.Mesh) []int32 {
	deg := make([]int32, m.NV())
	for _, e := range m.Edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	return deg
}

// growF64 returns a length-n float64 slice, reusing s's backing array when
// it is large enough and otherwise allocating with 25% headroom so repeated
// adaptation epochs amortize. Contents are unspecified beyond the old data.
func growF64(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n, n+n/4)
}

func growState(s []State, n int) []State {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]State, n, n+n/4)
}

func growI32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n, n+n/4)
}

// Retarget points the discretization at a new (typically adaptively
// refined) mesh, growing the scratch arrays in place where their capacity
// allows. It is the cheap alternative to NewDisc between adaptation
// epochs: no allocation happens when the mesh shrank or grew within the
// reserve headroom. Scratch contents are recomputed by the next operator
// call; only deg is rebuilt eagerly (SmoothResiduals reads it directly).
func (d *Disc) Retarget(m *mesh.Mesh, p Params) {
	d.M, d.P = m, p
	nv := m.NV()
	d.pres = growF64(d.pres, nv)
	d.lam = growF64(d.lam, nv)
	d.sensor = growF64(d.sensor, nv)
	d.den = growF64(d.den, nv)
	d.lapl = growState(d.lapl, nv)
	d.smooth = growState(d.smooth, nv)
	d.rhs = growState(d.rhs, nv)
	d.rdiss = growState(d.rdiss, nv)
	d.Dt = growF64(d.Dt, nv)
	d.deg = growI32(d.deg, nv)
	for i := range d.deg {
		d.deg[i] = 0
	}
	for _, e := range m.Edges {
		d.deg[e[0]]++
		d.deg[e[1]]++
	}
}

// MinStableDt returns the most restrictive vertex time step min_i V_i /
// lambda_i of solution w on mesh m — the CFL=1 stability bound that
// adaptive time stepping rescales GlobalDt against after each refinement
// epoch. It runs sequentially in mesh order (a fixed adaptation schedule
// must yield bitwise-identical steps at every worker count) and owns its
// scratch, so it is safe to call on any mesh/solution pair without a Disc.
func MinStableDt(m *mesh.Mesh, p Params, w []State) float64 {
	nv := m.NV()
	g := p.Gas
	pres := make([]float64, nv)
	lam := make([]float64, nv)
	for i := 0; i < nv; i++ {
		pres[i] = g.Pressure(w[i])
	}
	for e, ed := range m.Edges {
		i, j := ed[0], ed[1]
		lamE := SpectralRadius(g, w[i], w[j], pres[i], pres[j], m.EdgeNorm[e])
		lam[i] += lamE
		lam[j] += lamE
	}
	for bi := range m.BFaces {
		f := &m.BFaces[bi]
		n := f.Normal
		for _, v := range f.V {
			inv := 1 / w[v][0]
			un := (w[v][1]*n.X + w[v][2]*n.Y + w[v][3]*n.Z) * inv
			c := math.Sqrt(g.Gamma * pres[v] * inv)
			lam[v] += (math.Abs(un) + c*n.Norm()) / 3
		}
	}
	min := math.Inf(1)
	for i := 0; i < nv; i++ {
		if lam[i] > 0 {
			if dt := m.Vol[i] / lam[i]; dt < min {
				min = dt
			}
		}
	}
	return min
}

// computePressures fills d.pres from w.
func (d *Disc) computePressures(w []State) {
	g := d.P.Gas
	for i := range w {
		d.pres[i] = g.Pressure(w[i])
	}
}

// Convective accumulates the convective operator Q(w) into res (which is
// overwritten): a single loop over edges plus a loop over boundary faces,
// exactly the structure of the paper's executor loops. Pressures must be
// current (computePressures).
func (d *Disc) Convective(w []State, res []State) {
	m := d.M
	for i := range res {
		res[i] = State{}
	}
	for e, ed := range m.Edges {
		i, j := ed[0], ed[1]
		n := m.EdgeNorm[e]
		fi := FluxDotN(w[i], d.pres[i], n.X, n.Y, n.Z)
		fj := FluxDotN(w[j], d.pres[j], n.X, n.Y, n.Z)
		for k := 0; k < NVar; k++ {
			f := 0.5 * (fi[k] + fj[k])
			res[i][k] += f
			res[j][k] -= f
		}
	}
	d.boundaryFlux(w, res)
}

// boundaryFlux adds the boundary closure: a weak pressure flux on walls and
// symmetry planes, and a characteristic far-field flux on in/outflow faces.
// Each face flux is lumped equally onto the face's three vertices.
func (d *Disc) boundaryFlux(w []State, res []State) {
	m := d.M
	g := d.P.Gas
	for bi := range m.BFaces {
		f := &m.BFaces[bi]
		n := f.Normal
		var flux State
		switch f.Kind {
		case mesh.Wall, mesh.Symmetry:
			// Impermeable: only the pressure term survives v.n = 0.
			p := (d.pres[f.V[0]] + d.pres[f.V[1]] + d.pres[f.V[2]]) / 3
			flux = State{0, p * n.X, p * n.Y, p * n.Z, 0}
		case mesh.FarField:
			var wi State
			for k := 0; k < NVar; k++ {
				wi[k] = (w[f.V[0]][k] + w[f.V[1]][k] + w[f.V[2]][k]) / 3
			}
			wb := FarFieldState(g, wi, d.P.Freestream, n)
			flux = FluxDotN(wb, g.Pressure(wb), n.X, n.Y, n.Z)
		}
		for k := 0; k < NVar; k++ {
			third := flux[k] / 3
			res[f.V[0]][k] += third
			res[f.V[1]][k] += third
			res[f.V[2]][k] += third
		}
	}
}

// edgeSpectralRadius returns lambda_ij = |v_avg . n| + c_avg |n| for edge
// (i,j) with dual normal n.
func (d *Disc) edgeSpectralRadius(w []State, i, j int32, n geom.Vec3) float64 {
	return SpectralRadius(d.P.Gas, w[i], w[j], d.pres[i], d.pres[j], n)
}

// SpectralRadius returns the convective spectral radius |v_avg.n| +
// c_avg*|n| of the edge joining states wi and wj (with precomputed
// pressures pi, pj) across the dual face normal n. Exported for the
// distributed-memory solver, which runs the same edge kernels on
// partition-local data.
func SpectralRadius(g Gas, wi, wj State, pi, pj float64, n geom.Vec3) float64 {
	ri, rj := 1/wi[0], 1/wj[0]
	u := 0.5 * (wi[1]*ri + wj[1]*rj)
	v := 0.5 * (wi[2]*ri + wj[2]*rj)
	ww := 0.5 * (wi[3]*ri + wj[3]*rj)
	c := 0.5 * (math.Sqrt(g.Gamma*pi*ri) + math.Sqrt(g.Gamma*pj*rj))
	return math.Abs(u*n.X+v*n.Y+ww*n.Z) + c*n.Norm()
}

// Dissipation accumulates the blended Laplacian/biharmonic artificial
// dissipation D(w) into diss (overwritten). It is the two-pass edge loop of
// Section 2.2: the first pass assembles the undivided Laplacian and the
// pressure sensor, the second the blended dissipative flux.
func (d *Disc) Dissipation(w []State, diss []State) {
	m := d.M
	// Pass 1: Laplacian of w and pressure-switch sensor.
	num := d.sensor
	den := d.den
	for i := range w {
		d.lapl[i] = State{}
		num[i] = 0
		den[i] = 0
	}
	for _, ed := range m.Edges {
		i, j := ed[0], ed[1]
		for k := 0; k < NVar; k++ {
			dw := w[j][k] - w[i][k]
			d.lapl[i][k] += dw
			d.lapl[j][k] -= dw
		}
		dp := d.pres[j] - d.pres[i]
		num[i] += dp
		num[j] -= dp
		sp := d.pres[j] + d.pres[i]
		den[i] += sp
		den[j] += sp
	}
	nu := num // per-vertex shock switch, in place
	for i := range nu {
		nu[i] = math.Abs(num[i]) / den[i]
	}
	if d.P.WideSensor {
		d.widenSensor(nu)
	}

	// Pass 2: blended dissipative flux.
	k2, k4 := d.P.K2, d.P.K4
	for i := range diss {
		diss[i] = State{}
	}
	for e, ed := range m.Edges {
		i, j := ed[0], ed[1]
		lamE := d.edgeSpectralRadius(w, i, j, m.EdgeNorm[e])
		eps2 := k2 * math.Max(nu[i], nu[j])
		eps4 := math.Max(0, k4-eps2)
		for k := 0; k < NVar; k++ {
			f := lamE * (eps2*(w[j][k]-w[i][k]) - eps4*(d.lapl[j][k]-d.lapl[i][k]))
			diss[i][k] += f
			diss[j][k] -= f
		}
	}
}

// ComputeTimeSteps fills d.Dt with the local time step CFL*V_i/sum(lambda)
// (edge loop plus boundary-face contribution). Pressures must be current.
func (d *Disc) ComputeTimeSteps(w []State) {
	if dt := d.P.GlobalDt; dt > 0 {
		// Time-accurate mode: one fixed step everywhere; the spectral-radius
		// accumulation is skipped (lam feeds nothing else).
		for i := range d.Dt {
			d.Dt[i] = dt
		}
		return
	}
	m := d.M
	g := d.P.Gas
	for i := range d.lam {
		d.lam[i] = 0
	}
	for e, ed := range m.Edges {
		i, j := ed[0], ed[1]
		lamE := d.edgeSpectralRadius(w, i, j, m.EdgeNorm[e])
		d.lam[i] += lamE
		d.lam[j] += lamE
	}
	for bi := range m.BFaces {
		f := &m.BFaces[bi]
		n := f.Normal
		for _, v := range f.V {
			inv := 1 / w[v][0]
			un := (w[v][1]*n.X + w[v][2]*n.Y + w[v][3]*n.Z) * inv
			c := math.Sqrt(g.Gamma * d.pres[v] * inv)
			d.lam[v] += (math.Abs(un) + c*n.Norm()) / 3
		}
	}
	cfl := d.P.CFL
	for i := range d.Dt {
		d.Dt[i] = cfl * d.M.Vol[i] / d.lam[i]
	}
}

// SmoothResiduals applies NSmooth Jacobi sweeps of the implicit residual
// averaging (I + eps*L) Rbar = R, in place on res.
func (d *Disc) SmoothResiduals(res []State) {
	eps := d.P.EpsSmooth
	if eps == 0 || d.P.NSmooth == 0 || len(res) == 0 {
		return
	}
	m := d.M
	copy(d.rhs, res) // the original R stays the Jacobi right-hand side
	cur := res
	next := d.smooth
	for sweep := 0; sweep < d.P.NSmooth; sweep++ {
		for i := range next {
			next[i] = State{}
		}
		for _, ed := range m.Edges {
			i, j := ed[0], ed[1]
			for k := 0; k < NVar; k++ {
				next[i][k] += cur[j][k]
				next[j][k] += cur[i][k]
			}
		}
		for i := range next {
			inv := 1 / (1 + eps*float64(d.deg[i]))
			for k := 0; k < NVar; k++ {
				next[i][k] = (d.rhs[i][k] + eps*next[i][k]) * inv
			}
		}
		cur, next = next, cur
	}
	if &cur[0] != &res[0] {
		copy(res, cur)
	}
}

// widenSensor replaces each vertex's shock switch by the maximum over its
// edge neighbourhood, spreading the Laplacian dissipation one cell beyond
// the detected shock. This is the standard stencil widening that prevents
// switch dithering at captured shocks.
func (d *Disc) widenSensor(nu []float64) {
	wide := d.den // den is free after the sensor pass
	copy(wide, nu)
	for _, ed := range d.M.Edges {
		i, j := ed[0], ed[1]
		if nu[j] > wide[i] {
			wide[i] = nu[j]
		}
		if nu[i] > wide[j] {
			wide[j] = nu[i]
		}
	}
	copy(nu, wide)
}

// Guard returns true when s is physically admissible under the positivity
// thresholds. Stage updates that fail the guard are reverted to the
// stage-0 state: during violent impulsive-start transients (most visibly
// the W-cycle's repeated coarse-grid visits on fine meshes) an
// intermediate Runge-Kutta state can otherwise reach negative density or
// pressure and poison the run with NaNs. Near convergence the guard never
// triggers, so the converged solution is unaffected.
func (p *Params) Guard(s State) bool {
	if p.MinDensity <= 0 && p.MinPressure <= 0 {
		return true
	}
	if s[0] < p.MinDensity {
		return false
	}
	return p.Gas.Pressure(s) >= p.MinPressure
}

// Repair enforces the positivity floors on s, preserving velocity:
// density and pressure are clamped from below and the conserved state is
// rebuilt. States produced by *interpolation* (multigrid restriction and
// correction) need this rather than a revert, because there is no previous
// admissible value to fall back on — conserved-variable interpolation
// preserves positive density but not positive pressure.
func (p *Params) Repair(s State) State {
	if p.Guard(s) {
		return s
	}
	g := p.Gas
	rho := s[0]
	if rho < p.MinDensity {
		rho = p.MinDensity
	}
	u, v, w := s[1]/s[0], s[2]/s[0], s[3]/s[0]
	if s[0] <= 0 {
		u, v, w = 0, 0, 0
	}
	pr := g.Pressure(s)
	if pr < p.MinPressure {
		pr = p.MinPressure
	}
	return g.FromPrimitive(rho, u, v, w, pr)
}
