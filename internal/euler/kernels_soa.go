package euler

import (
	"math"

	"eul3d/internal/mesh"
)

// SoA variants of the range kernels in kernels.go, operating on StateSoA
// blocks instead of []State. The parallel executor (package smsolver) runs
// its hot path — flux and dissipation accumulation over colored edge
// groups, plus the fused vertex sweeps — on these, converting at the step
// boundaries so every public interface keeps []State.
//
// Bitwise contract: each kernel performs the exact floating-point
// operations of its AoS counterpart, in the same order per (vertex,
// component) accumulator slot. Where a full 5-vector is needed per element
// (flux evaluation, spectral radii, the positivity guard) the state is
// gathered component-wise into a State value and fed to the *same* helper
// (FluxDotN, SpectralRadius, Params.Guard), so the arithmetic is literally
// shared; the component-wise accumulation statements mirror the AoS
// expressions term for term. Reordering across components is immaterial —
// each accumulator slot still sees the same additions in the same edge
// order.
//
// Performance note: every kernel hoists the five component slices into
// locals before its element loop and unrolls the component dimension.
// Indexing stateSoA.Comp[k] inside a per-edge loop reloads a slice header
// (and re-checks bounds) per component per edge; with the streams in
// locals the compiler keeps the five base pointers in registers and the
// inner body is straight-line loads, FMAs and stores — the layout the SoA
// conversion exists to expose.

// StepInitSoAKernel fuses the time-step preamble for vertices [lo,hi):
// load w into the SoA solution block and the stage-0 snapshot, refresh the
// pressure, and reset the spectral-radius accumulator.
func (d *Disc) StepInitSoAKernel(w []State, wS, w0S *StateSoA, lo, hi int) {
	g := d.P.Gas
	s0, s1, s2, s3, s4 := wS.Comp[0], wS.Comp[1], wS.Comp[2], wS.Comp[3], wS.Comp[4]
	z0, z1, z2, z3, z4 := w0S.Comp[0], w0S.Comp[1], w0S.Comp[2], w0S.Comp[3], w0S.Comp[4]
	for i := lo; i < hi; i++ {
		st := w[i]
		s0[i], s1[i], s2[i], s3[i], s4[i] = st[0], st[1], st[2], st[3], st[4]
		z0[i], z1[i], z2[i], z3[i], z4[i] = st[0], st[1], st[2], st[3], st[4]
		d.pres[i] = g.Pressure(st)
		d.lam[i] = 0
	}
}

// ResInitSoAKernel loads w into the SoA solution block and refreshes the
// pressure for vertices [lo,hi) (standalone-residual preamble).
func (d *Disc) ResInitSoAKernel(w []State, wS *StateSoA, lo, hi int) {
	g := d.P.Gas
	s0, s1, s2, s3, s4 := wS.Comp[0], wS.Comp[1], wS.Comp[2], wS.Comp[3], wS.Comp[4]
	for i := lo; i < hi; i++ {
		st := w[i]
		s0[i], s1[i], s2[i], s3[i], s4[i] = st[0], st[1], st[2], st[3], st[4]
		d.pres[i] = g.Pressure(st)
	}
}

// StageZeroSoAKernel zeroes the SoA stage accumulators for vertices
// [lo,hi): the convective residual always, and the dissipation workspace
// (Laplacian, sensor sums, dissipative residual) when zeroDiss is set.
func (d *Disc) StageZeroSoAKernel(convS, dissS, laplS *StateSoA, zeroDiss bool, lo, hi int) {
	convS.ZeroRange(lo, hi)
	if !zeroDiss {
		return
	}
	laplS.ZeroRange(lo, hi)
	for i := lo; i < hi; i++ {
		d.sensor[i] = 0
		d.den[i] = 0
	}
	dissS.ZeroRange(lo, hi)
}

// ConvectiveEdgesSoAKernel accumulates the convective flux of the listed
// edges into convS. Pressures must be current.
func (d *Disc) ConvectiveEdgesSoAKernel(wS, convS *StateSoA, edges []int32) {
	m := d.M
	pres := d.pres
	w0, w1, w2, w3, w4 := wS.Comp[0], wS.Comp[1], wS.Comp[2], wS.Comp[3], wS.Comp[4]
	c0, c1, c2, c3, c4 := convS.Comp[0], convS.Comp[1], convS.Comp[2], convS.Comp[3], convS.Comp[4]
	for _, e := range edges {
		ed := m.Edges[e]
		i, j := ed[0], ed[1]
		n := m.EdgeNorm[e]
		fi := FluxDotN(State{w0[i], w1[i], w2[i], w3[i], w4[i]}, pres[i], n.X, n.Y, n.Z)
		fj := FluxDotN(State{w0[j], w1[j], w2[j], w3[j], w4[j]}, pres[j], n.X, n.Y, n.Z)
		f0 := 0.5 * (fi[0] + fj[0])
		f1 := 0.5 * (fi[1] + fj[1])
		f2 := 0.5 * (fi[2] + fj[2])
		f3 := 0.5 * (fi[3] + fj[3])
		f4 := 0.5 * (fi[4] + fj[4])
		c0[i] += f0
		c0[j] -= f0
		c1[i] += f1
		c1[j] -= f1
		c2[i] += f2
		c2[j] -= f2
		c3[i] += f3
		c3[j] -= f3
		c4[i] += f4
		c4[j] -= f4
	}
}

// BoundaryFluxSoAKernel accumulates the boundary closure of the listed
// boundary faces into convS.
func (d *Disc) BoundaryFluxSoAKernel(wS, convS *StateSoA, faces []int32) {
	m := d.M
	g := d.P.Gas
	w0, w1, w2, w3, w4 := wS.Comp[0], wS.Comp[1], wS.Comp[2], wS.Comp[3], wS.Comp[4]
	c0, c1, c2, c3, c4 := convS.Comp[0], convS.Comp[1], convS.Comp[2], convS.Comp[3], convS.Comp[4]
	for _, bi := range faces {
		f := &m.BFaces[bi]
		n := f.Normal
		a, b, c := f.V[0], f.V[1], f.V[2]
		var flux State
		switch f.Kind {
		case mesh.Wall, mesh.Symmetry:
			p := (d.pres[a] + d.pres[b] + d.pres[c]) / 3
			flux = State{0, p * n.X, p * n.Y, p * n.Z, 0}
		case mesh.FarField:
			wi := State{
				(w0[a] + w0[b] + w0[c]) / 3,
				(w1[a] + w1[b] + w1[c]) / 3,
				(w2[a] + w2[b] + w2[c]) / 3,
				(w3[a] + w3[b] + w3[c]) / 3,
				(w4[a] + w4[b] + w4[c]) / 3,
			}
			wb := FarFieldState(g, wi, d.P.Freestream, n)
			flux = FluxDotN(wb, g.Pressure(wb), n.X, n.Y, n.Z)
		}
		t0, t1, t2, t3, t4 := flux[0]/3, flux[1]/3, flux[2]/3, flux[3]/3, flux[4]/3
		c0[a] += t0
		c0[b] += t0
		c0[c] += t0
		c1[a] += t1
		c1[b] += t1
		c1[c] += t1
		c2[a] += t2
		c2[b] += t2
		c2[c] += t2
		c3[a] += t3
		c3[b] += t3
		c3[c] += t3
		c4[a] += t4
		c4[b] += t4
		c4[c] += t4
	}
}

// DissPass1SoAKernel accumulates the undivided Laplacian and pressure-
// sensor sums of the listed edges into laplS, num and den.
func (d *Disc) DissPass1SoAKernel(wS, laplS *StateSoA, num, den []float64, edges []int32) {
	m := d.M
	pres := d.pres
	w0, w1, w2, w3, w4 := wS.Comp[0], wS.Comp[1], wS.Comp[2], wS.Comp[3], wS.Comp[4]
	l0, l1, l2, l3, l4 := laplS.Comp[0], laplS.Comp[1], laplS.Comp[2], laplS.Comp[3], laplS.Comp[4]
	for _, e := range edges {
		ed := m.Edges[e]
		i, j := ed[0], ed[1]
		d0 := w0[j] - w0[i]
		d1 := w1[j] - w1[i]
		d2 := w2[j] - w2[i]
		d3 := w3[j] - w3[i]
		d4 := w4[j] - w4[i]
		l0[i] += d0
		l0[j] -= d0
		l1[i] += d1
		l1[j] -= d1
		l2[i] += d2
		l2[j] -= d2
		l3[i] += d3
		l3[j] -= d3
		l4[i] += d4
		l4[j] -= d4
		dp := pres[j] - pres[i]
		num[i] += dp
		num[j] -= dp
		sp := pres[j] + pres[i]
		den[i] += sp
		den[j] += sp
	}
}

// DissPass2SoAKernel accumulates the blended dissipative flux of the
// listed edges into dissS, given the per-vertex switch nu and Laplacian.
func (d *Disc) DissPass2SoAKernel(wS, laplS, dissS *StateSoA, nu []float64, edges []int32) {
	m := d.M
	k2, k4 := d.P.K2, d.P.K4
	gas := d.P.Gas
	pres := d.pres
	w0, w1, w2, w3, w4 := wS.Comp[0], wS.Comp[1], wS.Comp[2], wS.Comp[3], wS.Comp[4]
	l0, l1, l2, l3, l4 := laplS.Comp[0], laplS.Comp[1], laplS.Comp[2], laplS.Comp[3], laplS.Comp[4]
	s0, s1, s2, s3, s4 := dissS.Comp[0], dissS.Comp[1], dissS.Comp[2], dissS.Comp[3], dissS.Comp[4]
	for _, e := range edges {
		ed := m.Edges[e]
		i, j := ed[0], ed[1]
		wi := State{w0[i], w1[i], w2[i], w3[i], w4[i]}
		wj := State{w0[j], w1[j], w2[j], w3[j], w4[j]}
		lamE := SpectralRadius(gas, wi, wj, pres[i], pres[j], m.EdgeNorm[e])
		eps2 := k2 * math.Max(nu[i], nu[j])
		eps4 := math.Max(0, k4-eps2)
		f0 := lamE * (eps2*(w0[j]-w0[i]) - eps4*(l0[j]-l0[i]))
		f1 := lamE * (eps2*(w1[j]-w1[i]) - eps4*(l1[j]-l1[i]))
		f2 := lamE * (eps2*(w2[j]-w2[i]) - eps4*(l2[j]-l2[i]))
		f3 := lamE * (eps2*(w3[j]-w3[i]) - eps4*(l3[j]-l3[i]))
		f4 := lamE * (eps2*(w4[j]-w4[i]) - eps4*(l4[j]-l4[i]))
		s0[i] += f0
		s0[j] -= f0
		s1[i] += f1
		s1[j] -= f1
		s2[i] += f2
		s2[j] -= f2
		s3[i] += f3
		s3[j] -= f3
		s4[i] += f4
		s4[j] -= f4
	}
}

// LambdaEdgesSoAKernel accumulates the spectral radii of the listed edges
// into lam.
func (d *Disc) LambdaEdgesSoAKernel(wS *StateSoA, lam []float64, edges []int32) {
	m := d.M
	gas := d.P.Gas
	pres := d.pres
	w0, w1, w2, w3, w4 := wS.Comp[0], wS.Comp[1], wS.Comp[2], wS.Comp[3], wS.Comp[4]
	for _, e := range edges {
		ed := m.Edges[e]
		i, j := ed[0], ed[1]
		wi := State{w0[i], w1[i], w2[i], w3[i], w4[i]}
		wj := State{w0[j], w1[j], w2[j], w3[j], w4[j]}
		lamE := SpectralRadius(gas, wi, wj, pres[i], pres[j], m.EdgeNorm[e])
		lam[i] += lamE
		lam[j] += lamE
	}
}

// LambdaBFacesSoAKernel accumulates the boundary-face spectral radii of
// the listed faces into lam.
func (d *Disc) LambdaBFacesSoAKernel(wS *StateSoA, lam []float64, faces []int32) {
	m := d.M
	g := d.P.Gas
	rho, mx, my, mz := wS.Comp[0], wS.Comp[1], wS.Comp[2], wS.Comp[3]
	for _, bi := range faces {
		f := &m.BFaces[bi]
		n := f.Normal
		for _, v := range f.V {
			inv := 1 / rho[v]
			un := (mx[v]*n.X + my[v]*n.Y + mz[v]*n.Z) * inv
			c := math.Sqrt(g.Gamma * d.pres[v] * inv)
			lam[v] += (math.Abs(un) + c*n.Norm()) / 3
		}
	}
}

// SmoothAccumSoAKernel accumulates neighbour sums of curS into nextS for
// the listed edges (one Jacobi sweep's gather phase).
func (d *Disc) SmoothAccumSoAKernel(curS, nextS *StateSoA, edges []int32) {
	m := d.M
	a0, a1, a2, a3, a4 := curS.Comp[0], curS.Comp[1], curS.Comp[2], curS.Comp[3], curS.Comp[4]
	n0, n1, n2, n3, n4 := nextS.Comp[0], nextS.Comp[1], nextS.Comp[2], nextS.Comp[3], nextS.Comp[4]
	for _, e := range edges {
		ed := m.Edges[e]
		i, j := ed[0], ed[1]
		n0[i] += a0[j]
		n0[j] += a0[i]
		n1[i] += a1[j]
		n1[j] += a1[i]
		n2[i] += a2[j]
		n2[j] += a2[i]
		n3[i] += a3[j]
		n3[j] += a3[i]
		n4[i] += a4[j]
		n4[j] += a4[i]
	}
}

// SmoothCombineSoAKernel finishes one Jacobi sweep for vertices [lo,hi):
// next = (rhs + eps*next) / (1 + eps*deg).
func (d *Disc) SmoothCombineSoAKernel(rhsS, nextS *StateSoA, eps float64, lo, hi int) {
	deg := d.deg
	r0, r1, r2, r3, r4 := rhsS.Comp[0], rhsS.Comp[1], rhsS.Comp[2], rhsS.Comp[3], rhsS.Comp[4]
	n0, n1, n2, n3, n4 := nextS.Comp[0], nextS.Comp[1], nextS.Comp[2], nextS.Comp[3], nextS.Comp[4]
	for i := lo; i < hi; i++ {
		inv := 1 / (1 + eps*float64(deg[i]))
		n0[i] = (r0[i] + eps*n0[i]) * inv
		n1[i] = (r1[i] + eps*n1[i]) * inv
		n2[i] = (r2[i] + eps*n2[i]) * inv
		n3[i] = (r3[i] + eps*n3[i]) * inv
		n4[i] = (r4[i] + eps*n4[i]) * inv
	}
}

// CombineResidualSoAKernel forms resS = convS - dissS (+ forcing) for
// vertices [lo,hi). The forcing stays in its []State interface layout.
func (d *Disc) CombineResidualSoAKernel(resS, convS, dissS *StateSoA, forcing []State, lo, hi int) {
	r0, r1, r2, r3, r4 := resS.Comp[0], resS.Comp[1], resS.Comp[2], resS.Comp[3], resS.Comp[4]
	c0, c1, c2, c3, c4 := convS.Comp[0], convS.Comp[1], convS.Comp[2], convS.Comp[3], convS.Comp[4]
	s0, s1, s2, s3, s4 := dissS.Comp[0], dissS.Comp[1], dissS.Comp[2], dissS.Comp[3], dissS.Comp[4]
	if forcing == nil {
		for i := lo; i < hi; i++ {
			r0[i] = c0[i] - s0[i]
			r1[i] = c1[i] - s1[i]
			r2[i] = c2[i] - s2[i]
			r3[i] = c3[i] - s3[i]
			r4[i] = c4[i] - s4[i]
		}
		return
	}
	for i := lo; i < hi; i++ {
		fc := forcing[i]
		r0[i] = c0[i] - s0[i] + fc[0]
		r1[i] = c1[i] - s1[i] + fc[1]
		r2[i] = c2[i] - s2[i] + fc[2]
		r3[i] = c3[i] - s3[i] + fc[3]
		r4[i] = c4[i] - s4[i] + fc[4]
	}
}

// CombineResidualOutKernel forms res = convS - dissS (+ forcing) for
// vertices [lo,hi), scattering straight into the []State layout — the
// conversion shim of the standalone residual path, whose result feeds the
// AoS multigrid transfer operators.
func (d *Disc) CombineResidualOutKernel(res []State, convS, dissS *StateSoA, forcing []State, lo, hi int) {
	c0, c1, c2, c3, c4 := convS.Comp[0], convS.Comp[1], convS.Comp[2], convS.Comp[3], convS.Comp[4]
	s0, s1, s2, s3, s4 := dissS.Comp[0], dissS.Comp[1], dissS.Comp[2], dissS.Comp[3], dissS.Comp[4]
	for i := lo; i < hi; i++ {
		st := State{c0[i] - s0[i], c1[i] - s1[i], c2[i] - s2[i], c3[i] - s3[i], c4[i] - s4[i]}
		if forcing != nil {
			fc := forcing[i]
			st[0] += fc[0]
			st[1] += fc[1]
			st[2] += fc[2]
			st[3] += fc[3]
			st[4] += fc[4]
		}
		res[i] = st
	}
}

// UpdateFinalSoAKernel applies the last RK stage update for vertices
// [lo,hi), scattering the result straight into the []State solution:
// w = w0 - alpha*Dt/V * res.
func (d *Disc) UpdateFinalSoAKernel(w []State, w0S, resS *StateSoA, alpha float64, lo, hi int) {
	vol := d.M.Vol
	z0, z1, z2, z3, z4 := w0S.Comp[0], w0S.Comp[1], w0S.Comp[2], w0S.Comp[3], w0S.Comp[4]
	r0, r1, r2, r3, r4 := resS.Comp[0], resS.Comp[1], resS.Comp[2], resS.Comp[3], resS.Comp[4]
	for i := lo; i < hi; i++ {
		f := alpha * d.Dt[i] / vol[i]
		cand := State{z0[i] - f*r0[i], z1[i] - f*r1[i], z2[i] - f*r2[i], z3[i] - f*r3[i], z4[i] - f*r4[i]}
		// Positivity safeguard, identical to the sequential step.
		w[i] = d.P.admitUpdate(State{z0[i], z1[i], z2[i], z3[i], z4[i]}, cand)
	}
}

// UpdateNextSoAKernel applies an intermediate RK stage update for vertices
// [lo,hi) into the SoA solution block and refreshes the next stage's
// pressure from the updated state in the same sweep.
func (d *Disc) UpdateNextSoAKernel(wS, w0S, resS *StateSoA, alpha float64, lo, hi int) {
	g := d.P.Gas
	vol := d.M.Vol
	s0, s1, s2, s3, s4 := wS.Comp[0], wS.Comp[1], wS.Comp[2], wS.Comp[3], wS.Comp[4]
	z0, z1, z2, z3, z4 := w0S.Comp[0], w0S.Comp[1], w0S.Comp[2], w0S.Comp[3], w0S.Comp[4]
	r0, r1, r2, r3, r4 := resS.Comp[0], resS.Comp[1], resS.Comp[2], resS.Comp[3], resS.Comp[4]
	for i := lo; i < hi; i++ {
		f := alpha * d.Dt[i] / vol[i]
		cand := State{z0[i] - f*r0[i], z1[i] - f*r1[i], z2[i] - f*r2[i], z3[i] - f*r3[i], z4[i] - f*r4[i]}
		cand = d.P.admitUpdate(State{z0[i], z1[i], z2[i], z3[i], z4[i]}, cand)
		s0[i], s1[i], s2[i], s3[i], s4[i] = cand[0], cand[1], cand[2], cand[3], cand[4]
		d.pres[i] = g.Pressure(cand)
	}
}
