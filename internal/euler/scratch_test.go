package euler

import (
	"testing"

	"eul3d/internal/mesh"
	"eul3d/internal/meshgen"
)

// TestResidualZeroAllocs: Residual runs on Disc-owned scratch — it used to
// allocate a fresh dissipation buffer on every call, which showed up in the
// multigrid forcing construction once per level pair per cycle.
func TestResidualZeroAllocs(t *testing.T) {
	m, err := meshgen.Channel(meshgen.DefaultChannel(8, 5, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	d := NewDisc(m, DefaultParams(0.5, 0))
	w := make([]State, m.NV())
	d.InitUniform(w)
	res := make([]State, m.NV())
	d.Residual(w, res) // warm-up
	if n := testing.AllocsPerRun(5, func() { d.Residual(w, res) }); n != 0 {
		t.Errorf("Residual allocates %v times per call, want 0", n)
	}
}

// TestStepEmptyMesh: the sequential RK driver and the residual smoother
// must tolerate a zero-vertex mesh without panicking.
func TestStepEmptyMesh(t *testing.T) {
	m := &mesh.Mesh{}
	if err := m.Finish(); err != nil {
		t.Fatal(err)
	}
	d := NewDisc(m, DefaultParams(0.5, 0))
	ws := NewStepWorkspace(0)
	var w []State
	d.InitUniform(w)
	if norm := d.Step(w, nil, ws); norm != 0 {
		t.Errorf("empty-mesh step norm = %v, want 0", norm)
	}
	d.SmoothResiduals(nil)
}
