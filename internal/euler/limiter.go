package euler

// This file is the invariant-domain safeguard for shock-capturing runs: a
// clip-free convex limiter applied to every Runge-Kutta stage update, in
// the spirit of the convex limiting of Maier & Kronbichler
// (arXiv:2007.00094) with the a-posteriori blending framing of Abgrall et
// al. (arXiv:1806.03986). The admissible set
//
//	A = { w : rho(w) >= MinDensity, p(w) >= MinPressure }
//
// is convex (density is linear and pressure is concave in the conserved
// variables on rho > 0), so for an admissible stage-0 state w0 the
// admissible parameters theta of the segment w0 + theta*(cand - w0) form an
// interval [0, theta_max]. LimitUpdate finds theta_max by bisection on the
// exact admissibility predicate Guard and returns the limited state — the
// largest fraction of the high-order update that keeps the vertex in A.
// Nothing is ever clipped: density and pressure are never overwritten, the
// update direction is preserved, and an admissible candidate passes through
// bitwise unchanged.
//
// Compared with the all-or-nothing positivity guard (revert the whole
// vertex to w0), the limiter keeps the admissible fraction of the update,
// so strong startup transients — the Sod diaphragm release, the impulsive
// start of a supersonic wedge — keep making progress at the limited
// vertices instead of freezing them for the stage. Near convergence, and on
// smooth flows, candidates are admissible and the limiter is the identity.

// limitIters is the bisection depth of LimitUpdate: theta is resolved to
// 2^-limitIters, far below the floating-point noise of the update itself.
const limitIters = 60

// LimitUpdate returns the admissible convex combination
// w0 + theta*(cand - w0) with the largest theta in [0, 1]. If cand is
// already admissible it is returned unchanged (the limiter is the identity
// on admissible updates). w0 must be admissible — stage-0 states are, by
// induction from an admissible initial condition; a non-admissible w0 is
// returned as-is, matching the guard's revert semantics.
func (p *Params) LimitUpdate(w0, cand State) State {
	if p.Guard(cand) {
		return cand
	}
	if !p.Guard(w0) {
		return w0
	}
	var d State
	for k := 0; k < NVar; k++ {
		d[k] = cand[k] - w0[k]
	}
	// Bisect on the exact predicate: lo is always admissible (theta = 0 is
	// w0), hi never is. Every accepted lo was tested through Guard, so the
	// returned state is admissible by construction — no epsilon margins.
	lo, hi := 0.0, 1.0
	var s State
	for it := 0; it < limitIters; it++ {
		mid := 0.5 * (lo + hi)
		for k := 0; k < NVar; k++ {
			s[k] = w0[k] + mid*d[k]
		}
		if p.Guard(s) {
			lo = mid
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return w0
	}
	for k := 0; k < NVar; k++ {
		s[k] = w0[k] + lo*d[k]
	}
	return s
}

// admitUpdate is the single admission point of every stage-update kernel —
// sequential (Disc.Step), AoS range (UpdateRangeKernel) and SoA
// (UpdateFinalSoAKernel, UpdateNextSoAKernel) — so all engines perform
// literally the same arithmetic and stay bitwise conformant. With
// ConvexLimit unset it reproduces the historical guard exactly: revert the
// whole vertex for the stage when the candidate leaves the admissible set.
func (p *Params) admitUpdate(w0, cand State) State {
	if p.ConvexLimit {
		return p.LimitUpdate(w0, cand)
	}
	if !p.Guard(cand) {
		return w0
	}
	return cand
}
