package euler

import (
	"math"

	"eul3d/internal/mesh"
)

// This file exposes the solver's loop bodies as range kernels over explicit
// edge/face index subsets. The sequential driver in ops.go iterates the
// whole mesh directly; the shared-memory parallel executor (package
// smsolver) calls these kernels per color group and per worker chunk,
// which is exactly the Cray autotasking decomposition of Section 3.1.
// Within a color group no two edges touch the same vertex, so the kernels
// are race-free and the results are bitwise identical to the sequential
// loops.

// ConvectiveEdgesKernel accumulates the convective flux of the listed
// edges into res. Pressures must be current.
func (d *Disc) ConvectiveEdgesKernel(w, res []State, edges []int32) {
	m := d.M
	for _, e := range edges {
		ed := m.Edges[e]
		i, j := ed[0], ed[1]
		n := m.EdgeNorm[e]
		fi := FluxDotN(w[i], d.pres[i], n.X, n.Y, n.Z)
		fj := FluxDotN(w[j], d.pres[j], n.X, n.Y, n.Z)
		for k := 0; k < NVar; k++ {
			f := 0.5 * (fi[k] + fj[k])
			res[i][k] += f
			res[j][k] -= f
		}
	}
}

// BoundaryFluxKernel accumulates the boundary closure of the listed
// boundary faces into res.
func (d *Disc) BoundaryFluxKernel(w, res []State, faces []int32) {
	m := d.M
	g := d.P.Gas
	for _, bi := range faces {
		f := &m.BFaces[bi]
		n := f.Normal
		var flux State
		switch f.Kind {
		case mesh.Wall, mesh.Symmetry:
			p := (d.pres[f.V[0]] + d.pres[f.V[1]] + d.pres[f.V[2]]) / 3
			flux = State{0, p * n.X, p * n.Y, p * n.Z, 0}
		case mesh.FarField:
			var wi State
			for k := 0; k < NVar; k++ {
				wi[k] = (w[f.V[0]][k] + w[f.V[1]][k] + w[f.V[2]][k]) / 3
			}
			wb := FarFieldState(g, wi, d.P.Freestream, n)
			flux = FluxDotN(wb, g.Pressure(wb), n.X, n.Y, n.Z)
		}
		for k := 0; k < NVar; k++ {
			third := flux[k] / 3
			res[f.V[0]][k] += third
			res[f.V[1]][k] += third
			res[f.V[2]][k] += third
		}
	}
}

// DissPass1Kernel accumulates the undivided Laplacian and pressure-sensor
// sums of the listed edges into lapl, num and den.
func (d *Disc) DissPass1Kernel(w []State, lapl []State, num, den []float64, edges []int32) {
	m := d.M
	for _, e := range edges {
		ed := m.Edges[e]
		i, j := ed[0], ed[1]
		for k := 0; k < NVar; k++ {
			dw := w[j][k] - w[i][k]
			lapl[i][k] += dw
			lapl[j][k] -= dw
		}
		dp := d.pres[j] - d.pres[i]
		num[i] += dp
		num[j] -= dp
		sp := d.pres[j] + d.pres[i]
		den[i] += sp
		den[j] += sp
	}
}

// DissPass2Kernel accumulates the blended dissipative flux of the listed
// edges into diss, given the per-vertex switch nu and Laplacian lapl.
func (d *Disc) DissPass2Kernel(w, lapl, diss []State, nu []float64, edges []int32) {
	m := d.M
	k2, k4 := d.P.K2, d.P.K4
	for _, e := range edges {
		ed := m.Edges[e]
		i, j := ed[0], ed[1]
		lamE := d.edgeSpectralRadius(w, i, j, m.EdgeNorm[e])
		eps2 := k2 * math.Max(nu[i], nu[j])
		eps4 := math.Max(0, k4-eps2)
		for k := 0; k < NVar; k++ {
			f := lamE * (eps2*(w[j][k]-w[i][k]) - eps4*(lapl[j][k]-lapl[i][k]))
			diss[i][k] += f
			diss[j][k] -= f
		}
	}
}

// LambdaEdgesKernel accumulates the spectral radii of the listed edges
// into lam.
func (d *Disc) LambdaEdgesKernel(w []State, lam []float64, edges []int32) {
	m := d.M
	for _, e := range edges {
		ed := m.Edges[e]
		i, j := ed[0], ed[1]
		lamE := d.edgeSpectralRadius(w, i, j, m.EdgeNorm[e])
		lam[i] += lamE
		lam[j] += lamE
	}
}

// LambdaBFacesKernel accumulates the boundary-face spectral radii of the
// listed faces into lam.
func (d *Disc) LambdaBFacesKernel(w []State, lam []float64, faces []int32) {
	m := d.M
	g := d.P.Gas
	for _, bi := range faces {
		f := &m.BFaces[bi]
		n := f.Normal
		for _, v := range f.V {
			inv := 1 / w[v][0]
			un := (w[v][1]*n.X + w[v][2]*n.Y + w[v][3]*n.Z) * inv
			c := math.Sqrt(g.Gamma * d.pres[v] * inv)
			lam[v] += (math.Abs(un) + c*n.Norm()) / 3
		}
	}
}

// SmoothAccumKernel accumulates neighbour sums of cur into next for the
// listed edges (one Jacobi sweep's gather phase).
func (d *Disc) SmoothAccumKernel(cur, next []State, edges []int32) {
	m := d.M
	for _, e := range edges {
		ed := m.Edges[e]
		i, j := ed[0], ed[1]
		for k := 0; k < NVar; k++ {
			next[i][k] += cur[j][k]
			next[j][k] += cur[i][k]
		}
	}
}

// Vertex-range kernels (trivially parallel):

// PressureRangeKernel fills pres for vertices [lo,hi).
func (d *Disc) PressureRangeKernel(w []State, lo, hi int) {
	g := d.P.Gas
	for i := lo; i < hi; i++ {
		d.pres[i] = g.Pressure(w[i])
	}
}

// NuRangeKernel converts the sensor sums to the shock switch for vertices
// [lo,hi): nu = |num|/den stored into num.
func (d *Disc) NuRangeKernel(num, den []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		num[i] = math.Abs(num[i]) / den[i]
	}
}

// DtRangeKernel fills the local time steps for vertices [lo,hi). In
// time-accurate mode (Params.GlobalDt > 0) every vertex gets the fixed
// global step, mirroring ComputeTimeSteps.
func (d *Disc) DtRangeKernel(lam []float64, lo, hi int) {
	if dt := d.P.GlobalDt; dt > 0 {
		for i := lo; i < hi; i++ {
			d.Dt[i] = dt
		}
		return
	}
	cfl := d.P.CFL
	for i := lo; i < hi; i++ {
		d.Dt[i] = cfl * d.M.Vol[i] / lam[i]
	}
}

// SmoothCombineKernel finishes one Jacobi sweep for vertices [lo,hi):
// next = (rhs + eps*next) / (1 + eps*deg).
func (d *Disc) SmoothCombineKernel(rhs, next []State, eps float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		inv := 1 / (1 + eps*float64(d.deg[i]))
		for k := 0; k < NVar; k++ {
			next[i][k] = (rhs[i][k] + eps*next[i][k]) * inv
		}
	}
}

// StepInitKernel fuses the time-step preamble for vertices [lo,hi): the
// stage-0 snapshot w0 = w, the pressure refresh, and the reset of the
// spectral-radius accumulator — three vertex sweeps collapsed into one
// parallel region.
func (d *Disc) StepInitKernel(w, w0 []State, lo, hi int) {
	g := d.P.Gas
	for i := lo; i < hi; i++ {
		w0[i] = w[i]
		d.pres[i] = g.Pressure(w[i])
		d.lam[i] = 0
	}
}

// StageZeroKernel zeroes the stage accumulators for vertices [lo,hi):
// the convective residual always, and the dissipation workspace
// (Laplacian, sensor sums, dissipative residual) when zeroDiss is set.
// Nothing reads these arrays between the previous stage's update and
// their re-accumulation, so hoisting all the zeroing into one sweep is
// bitwise neutral.
func (d *Disc) StageZeroKernel(conv, diss []State, zeroDiss bool, lo, hi int) {
	for i := lo; i < hi; i++ {
		conv[i] = State{}
	}
	if !zeroDiss {
		return
	}
	for i := lo; i < hi; i++ {
		d.lapl[i] = State{}
		d.sensor[i] = 0
		d.den[i] = 0
		diss[i] = State{}
	}
}

// UpdateRangeKernel applies one RK stage update for vertices [lo,hi):
// w = w0 - alpha*Dt/V * res.
func (d *Disc) UpdateRangeKernel(w, w0, res []State, alpha float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		f := alpha * d.Dt[i] / d.M.Vol[i]
		var cand State
		for k := 0; k < NVar; k++ {
			cand[k] = w0[i][k] - f*res[i][k]
		}
		// Positivity safeguard, identical to the sequential step.
		w[i] = d.P.admitUpdate(w0[i], cand)
	}
}

// CombineResidualKernel forms res = conv - diss (+ forcing) for vertices
// [lo,hi).
func (d *Disc) CombineResidualKernel(res, conv, diss, forcing []State, lo, hi int) {
	for i := lo; i < hi; i++ {
		for k := 0; k < NVar; k++ {
			res[i][k] = conv[i][k] - diss[i][k]
		}
		if forcing != nil {
			for k := 0; k < NVar; k++ {
				res[i][k] += forcing[i][k]
			}
		}
	}
}

// Scratch accessors for the parallel executor (which drives the kernels
// itself but reuses this discretization's workspace).

// Pres returns the pressure scratch array.
func (d *Disc) Pres() []float64 { return d.pres }

// Lam returns the spectral-radius scratch array.
func (d *Disc) Lam() []float64 { return d.lam }

// Sensor returns the sensor numerator scratch (holds nu after NuRange).
func (d *Disc) Sensor() []float64 { return d.sensor }

// Den returns the sensor denominator scratch.
func (d *Disc) Den() []float64 { return d.den }

// Lapl returns the Laplacian scratch array.
func (d *Disc) Lapl() []State { return d.lapl }

// SmoothScratch returns the residual-averaging ping-pong buffer.
func (d *Disc) SmoothScratch() []State { return d.smooth }

// RHSScratch returns the residual-averaging right-hand-side buffer.
func (d *Disc) RHSScratch() []State { return d.rhs }
