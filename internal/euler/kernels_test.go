package euler

import (
	"math"
	"math/rand"
	"testing"

	"eul3d/internal/meshgen"
)

// kernelFixture builds a disc with a perturbed field so every kernel does
// nontrivial work.
func kernelFixture(t *testing.T) (*Disc, []State) {
	t.Helper()
	m, err := meshgen.Channel(meshgen.DefaultChannel(8, 5, 4, 7))
	if err != nil {
		t.Fatal(err)
	}
	d := NewDisc(m, DefaultParams(0.675, 0))
	w := make([]State, m.NV())
	rng := rand.New(rand.NewSource(2))
	g := d.P.Gas
	for i := range w {
		w[i] = g.FromPrimitive(1+0.1*rng.Float64(), 0.5+0.1*rng.Float64(),
			0.05*rng.Float64(), 0.05*rng.Float64(), 0.7+0.1*rng.Float64())
	}
	d.computePressures(w)
	return d, w
}

func allEdges(d *Disc) []int32 {
	e := make([]int32, d.M.NE())
	for i := range e {
		e[i] = int32(i)
	}
	return e
}

func allFaces(d *Disc) []int32 {
	f := make([]int32, len(d.M.BFaces))
	for i := range f {
		f[i] = int32(i)
	}
	return f
}

func statesClose(t *testing.T, name string, a, b []State, tol float64) {
	t.Helper()
	for i := range a {
		for k := 0; k < NVar; k++ {
			if math.Abs(a[i][k]-b[i][k]) > tol*(1+math.Abs(b[i][k])) {
				t.Fatalf("%s: vertex %d var %d: %g vs %g", name, i, k, a[i][k], b[i][k])
			}
		}
	}
}

// TestKernelsMatchMonolithicLoops checks that the range kernels (used by
// the shared-memory parallel executor) reproduce the monolithic loops of
// ops.go when driven over the full index range.
func TestKernelsMatchMonolithicLoops(t *testing.T) {
	d, w := kernelFixture(t)
	nv := d.M.NV()

	// Convective.
	ref := make([]State, nv)
	d.Convective(w, ref)
	got := make([]State, nv)
	d.ConvectiveEdgesKernel(w, got, allEdges(d))
	d.BoundaryFluxKernel(w, got, allFaces(d))
	statesClose(t, "convective", got, ref, 1e-12)

	// Dissipation via the split kernels.
	refD := make([]State, nv)
	d.Dissipation(w, refD)
	lapl := make([]State, nv)
	num := make([]float64, nv)
	den := make([]float64, nv)
	d.DissPass1Kernel(w, lapl, num, den, allEdges(d))
	d.NuRangeKernel(num, den, 0, nv)
	gotD := make([]State, nv)
	d.DissPass2Kernel(w, lapl, gotD, num, allEdges(d))
	statesClose(t, "dissipation", gotD, refD, 1e-12)

	// Time steps via the lambda kernels.
	d.ComputeTimeSteps(w)
	refDt := append([]float64(nil), d.Dt...)
	lam := make([]float64, nv)
	d.LambdaEdgesKernel(w, lam, allEdges(d))
	d.LambdaBFacesKernel(w, lam, allFaces(d))
	copy(d.lam, lam)
	d.DtRangeKernel(lam, 0, nv)
	for i := range refDt {
		if math.Abs(d.Dt[i]-refDt[i]) > 1e-12*refDt[i] {
			t.Fatalf("dt: vertex %d: %g vs %g", i, d.Dt[i], refDt[i])
		}
	}
}

func TestScratchAccessors(t *testing.T) {
	d, _ := kernelFixture(t)
	nv := d.M.NV()
	for name, n := range map[string]int{
		"pres": len(d.Pres()), "lam": len(d.Lam()), "sensor": len(d.Sensor()),
		"den": len(d.Den()), "lapl": len(d.Lapl()),
		"smooth": len(d.SmoothScratch()), "rhs": len(d.RHSScratch()),
	} {
		if n != nv {
			t.Errorf("%s accessor returned %d entries, want %d", name, n, nv)
		}
	}
}

func TestCombineAndUpdateKernels(t *testing.T) {
	d, w := kernelFixture(t)
	nv := d.M.NV()
	conv := make([]State, nv)
	diss := make([]State, nv)
	forcing := make([]State, nv)
	for i := range conv {
		conv[i] = State{1, 2, 3, 4, 5}
		diss[i] = State{0.5, 0.5, 0.5, 0.5, 0.5}
		forcing[i] = State{0.1, 0.1, 0.1, 0.1, 0.1}
	}
	res := make([]State, nv)
	d.CombineResidualKernel(res, conv, diss, forcing, 0, nv)
	want := State{0.6, 1.6, 2.6, 3.6, 4.6}
	for k := 0; k < NVar; k++ {
		if math.Abs(res[0][k]-want[k]) > 1e-15 {
			t.Fatalf("combine: %v", res[0])
		}
	}
	d.CombineResidualKernel(res, conv, diss, nil, 0, nv)
	if res[0][0] != 0.5 {
		t.Fatalf("combine nil forcing: %v", res[0])
	}

	d.computePressures(w)
	d.ComputeTimeSteps(w)
	d.P.MinDensity, d.P.MinPressure = 0, 0 // test the raw update arithmetic
	w0 := append([]State(nil), w...)
	d.UpdateRangeKernel(w, w0, res, 0.5, 0, nv)
	for i := range w {
		f := 0.5 * d.Dt[i] / d.M.Vol[i]
		for k := 0; k < NVar; k++ {
			want := w0[i][k] - f*res[i][k]
			if math.Abs(w[i][k]-want) > 1e-13*(1+math.Abs(want)) {
				t.Fatalf("update: vertex %d", i)
			}
		}
	}
}
