package euler

import (
	"math"

	"eul3d/internal/geom"
)

// FarFieldState resolves the boundary state on a far-field face by the
// standard one-dimensional characteristic (Riemann-invariant) analysis
// normal to the face: the outgoing invariant comes from the interior state
// wi, the incoming one from the freestream winf; entropy and tangential
// velocity are taken from the donor side selected by the sign of the
// resolved normal velocity. Supersonic faces take the full donor state.
func FarFieldState(g Gas, wi, winf State, n geom.Vec3) State {
	nhat := n.Normalized()
	gm1 := g.Gamma - 1

	rhoI := wi[0]
	pI := g.Pressure(wi)
	if rhoI <= 0 || pI <= 0 {
		// The face-averaged interior state can go unphysical during a
		// violent start-up transient (pressure is not convex in the
		// conserved variables); fall back to the freestream, which the
		// characteristic analysis would approach anyway.
		return winf
	}
	uI := geom.Vec3{X: wi[1] / rhoI, Y: wi[2] / rhoI, Z: wi[3] / rhoI}
	cI := math.Sqrt(g.Gamma * pI / rhoI)
	unI := uI.Dot(nhat)

	rhoF := winf[0]
	uF := geom.Vec3{X: winf[1] / rhoF, Y: winf[2] / rhoF, Z: winf[3] / rhoF}
	pF := g.Pressure(winf)
	cF := math.Sqrt(g.Gamma * pF / rhoF)
	unF := uF.Dot(nhat)

	// Supersonic short-circuit: everything from one side.
	if unI/cI >= 1 { // supersonic outflow
		return wi
	}
	if unF/cF <= -1 { // supersonic inflow
		return winf
	}

	rPlus := unI + 2*cI/gm1  // carried out of the domain by the interior
	rMinus := unF - 2*cF/gm1 // carried into the domain by the freestream
	unB := 0.5 * (rPlus + rMinus)
	cB := 0.25 * gm1 * (rPlus - rMinus)

	var s float64 // entropy p/rho^gamma from the donor side
	var ut geom.Vec3
	if unB > 0 { // outflow: donor is the interior
		s = pI / math.Pow(rhoI, g.Gamma)
		ut = uI.Sub(nhat.Scale(unI))
	} else { // inflow: donor is the freestream
		s = pF / math.Pow(rhoF, g.Gamma)
		ut = uF.Sub(nhat.Scale(unF))
	}
	rhoB := math.Pow(cB*cB/(g.Gamma*s), 1/gm1)
	pB := rhoB * cB * cB / g.Gamma
	uB := ut.Add(nhat.Scale(unB))
	return g.FromPrimitive(rhoB, uB.X, uB.Y, uB.Z, pB)
}
