package euler

import (
	"math"
	"math/rand"
	"testing"

	"eul3d/internal/geom"
	"eul3d/internal/meshgen"
)

func TestGasRoundTrip(t *testing.T) {
	g := Air
	s := g.FromPrimitive(1.3, 0.4, -0.2, 0.1, 0.9)
	if math.Abs(g.Pressure(s)-0.9) > 1e-14 {
		t.Errorf("pressure = %v", g.Pressure(s))
	}
	u, v, w := g.Velocity(s)
	if math.Abs(u-0.4)+math.Abs(v+0.2)+math.Abs(w-0.1) > 1e-14 {
		t.Errorf("velocity = %v %v %v", u, v, w)
	}
	wantC := math.Sqrt(1.4 * 0.9 / 1.3)
	if math.Abs(g.SoundSpeed(s)-wantC) > 1e-14 {
		t.Errorf("sound speed = %v, want %v", g.SoundSpeed(s), wantC)
	}
}

func TestFreestreamNormalization(t *testing.T) {
	g := Air
	s := g.Freestream(0.768, 1.116)
	if math.Abs(s[0]-1) > 1e-15 {
		t.Errorf("rho = %v", s[0])
	}
	if math.Abs(g.SoundSpeed(s)-1) > 1e-14 {
		t.Errorf("c = %v, want 1", g.SoundSpeed(s))
	}
	if math.Abs(g.Mach(s)-0.768) > 1e-14 {
		t.Errorf("Mach = %v", g.Mach(s))
	}
	// Angle of attack tilts the velocity into +y.
	_, v, _ := g.Velocity(s)
	if v <= 0 {
		t.Errorf("v component = %v, want > 0 for positive alpha", v)
	}
}

func TestStateArithmetic(t *testing.T) {
	a := State{1, 2, 3, 4, 5}
	b := State{5, 4, 3, 2, 1}
	if a.Add(b) != (State{6, 6, 6, 6, 6}) {
		t.Error("Add")
	}
	if a.Sub(b) != (State{-4, -2, 0, 2, 4}) {
		t.Error("Sub")
	}
	if a.Scale(2) != (State{2, 4, 6, 8, 10}) {
		t.Error("Scale")
	}
}

func TestFluxConsistency(t *testing.T) {
	// F(w).n for n aligned with velocity of a state at rest must be purely
	// pressure.
	g := Air
	s := g.FromPrimitive(1, 0, 0, 0, 1/g.Gamma)
	f := FluxDotN(s, g.Pressure(s), 0, 1, 0)
	want := State{0, 0, 1 / g.Gamma, 0, 0}
	for k := range f {
		if math.Abs(f[k]-want[k]) > 1e-15 {
			t.Fatalf("rest flux = %v", f)
		}
	}
}

// straightChannel returns a bumpless channel disc: uniform axial flow is an
// exact solution there.
func straightChannel(t *testing.T, nx, ny, nz int, mach float64) *Disc {
	t.Helper()
	spec := meshgen.DefaultChannel(nx, ny, nz, 3)
	spec.BumpHeight = 0
	m, err := meshgen.Channel(spec)
	if err != nil {
		t.Fatal(err)
	}
	return NewDisc(m, DefaultParams(mach, 0))
}

func TestFreestreamPreservation(t *testing.T) {
	d := straightChannel(t, 6, 4, 3, 0.5)
	w := make([]State, d.M.NV())
	d.InitUniform(w)
	res := make([]State, len(w))
	d.Residual(w, res)
	for i, r := range res {
		for k := 0; k < NVar; k++ {
			if math.Abs(r[k]) > 1e-11 {
				t.Fatalf("vertex %d var %d: freestream residual %g", i, k, r[k])
			}
		}
	}
}

func TestDissipationConservative(t *testing.T) {
	// Dissipation is assembled antisymmetrically over edges, so it must
	// sum to zero over the mesh for any field.
	d := straightChannel(t, 5, 4, 3, 0.6)
	w := make([]State, d.M.NV())
	rng := rand.New(rand.NewSource(5))
	g := d.P.Gas
	for i := range w {
		w[i] = g.FromPrimitive(1+0.2*rng.Float64(), 0.3*rng.Float64(),
			0.2*rng.Float64(), 0.1*rng.Float64(), 0.7+0.2*rng.Float64())
	}
	d.computePressures(w)
	diss := make([]State, len(w))
	d.Dissipation(w, diss)
	var tot State
	scale := 0.0
	for i := range diss {
		for k := 0; k < NVar; k++ {
			tot[k] += diss[i][k]
			scale += math.Abs(diss[i][k])
		}
	}
	for k := 0; k < NVar; k++ {
		if math.Abs(tot[k]) > 1e-12*(1+scale) {
			t.Errorf("dissipation var %d sums to %g (scale %g)", k, tot[k], scale)
		}
	}
}

func TestConvectiveGlobalConservation(t *testing.T) {
	// Interior edge fluxes telescope, so the global residual sum must
	// equal the sum of boundary-face fluxes.
	d := straightChannel(t, 5, 3, 3, 0.6)
	w := make([]State, d.M.NV())
	rng := rand.New(rand.NewSource(6))
	g := d.P.Gas
	for i := range w {
		w[i] = g.FromPrimitive(1+0.1*rng.Float64(), 0.3+0.1*rng.Float64(),
			0.05*rng.Float64(), 0.05*rng.Float64(), 0.7+0.1*rng.Float64())
	}
	d.computePressures(w)
	res := make([]State, len(w))
	d.Convective(w, res)
	var tot State
	for i := range res {
		for k := 0; k < NVar; k++ {
			tot[k] += res[i][k]
		}
	}
	bnd := make([]State, len(w))
	d.boundaryFlux(w, bnd)
	var btot State
	for i := range bnd {
		for k := 0; k < NVar; k++ {
			btot[k] += bnd[i][k]
		}
	}
	for k := 0; k < NVar; k++ {
		if math.Abs(tot[k]-btot[k]) > 1e-11 {
			t.Errorf("var %d: residual sum %g != boundary flux sum %g", k, tot[k], btot[k])
		}
	}
}

func TestFarFieldStateUniform(t *testing.T) {
	g := Air
	winf := g.Freestream(0.7, 0)
	for _, n := range []geom.Vec3{{X: 1}, {X: -1}, {Y: 1}, {X: 0.5, Y: 0.5, Z: 0.7}} {
		wb := FarFieldState(g, winf, winf, n)
		for k := 0; k < NVar; k++ {
			if math.Abs(wb[k]-winf[k]) > 1e-12 {
				t.Fatalf("n=%v: farFieldState perturbed uniform flow: %v vs %v", n, wb, winf)
			}
		}
	}
}

func TestFarFieldSupersonic(t *testing.T) {
	g := Air
	winf := g.Freestream(2.0, 0)
	wi := g.FromPrimitive(1.1, 2.2, 0, 0, 0.8)
	// Outflow face (+x): full interior state.
	wb := FarFieldState(g, wi, winf, geom.Vec3{X: 1})
	if wb != wi {
		t.Error("supersonic outflow should take the interior state")
	}
	// Inflow face (-x): full freestream state.
	wb = FarFieldState(g, wi, winf, geom.Vec3{X: -1})
	if wb != winf {
		t.Error("supersonic inflow should take the freestream state")
	}
}

func TestTimeStepsPositive(t *testing.T) {
	d := straightChannel(t, 5, 4, 3, 0.7)
	w := make([]State, d.M.NV())
	d.InitUniform(w)
	d.computePressures(w)
	d.ComputeTimeSteps(w)
	for i, dt := range d.Dt {
		if !(dt > 0) || math.IsInf(dt, 0) {
			t.Fatalf("Dt[%d] = %v", i, dt)
		}
	}
}

func TestSmoothResidualsPreservesConstant(t *testing.T) {
	d := straightChannel(t, 4, 3, 3, 0.5)
	res := make([]State, d.M.NV())
	want := State{1, -2, 3, -4, 5}
	for i := range res {
		res[i] = want
	}
	d.SmoothResiduals(res)
	for i := range res {
		for k := 0; k < NVar; k++ {
			if math.Abs(res[i][k]-want[k]) > 1e-12 {
				t.Fatalf("constant residual changed at %d: %v", i, res[i])
			}
		}
	}
}

func TestSmoothResidualsDampsOscillation(t *testing.T) {
	d := straightChannel(t, 6, 4, 3, 0.5)
	res := make([]State, d.M.NV())
	rng := rand.New(rand.NewSource(8))
	varBefore := 0.0
	for i := range res {
		res[i][0] = rng.NormFloat64()
		varBefore += res[i][0] * res[i][0]
	}
	d.SmoothResiduals(res)
	varAfter := 0.0
	for i := range res {
		varAfter += res[i][0] * res[i][0]
	}
	if varAfter >= varBefore {
		t.Errorf("smoothing did not damp: %g -> %g", varBefore, varAfter)
	}
}

func TestSmoothResidualsDisabled(t *testing.T) {
	d := straightChannel(t, 3, 3, 3, 0.5)
	d.P.EpsSmooth = 0
	res := make([]State, d.M.NV())
	res[0] = State{1, 2, 3, 4, 5}
	before := res[0]
	d.SmoothResiduals(res)
	if res[0] != before {
		t.Error("EpsSmooth=0 should be a no-op")
	}
}

func TestStepPreservesFreestream(t *testing.T) {
	d := straightChannel(t, 5, 4, 3, 0.6)
	w := make([]State, d.M.NV())
	d.InitUniform(w)
	ws := NewStepWorkspace(len(w))
	norm := d.Step(w, nil, ws)
	if norm > 1e-11 {
		t.Errorf("freestream step residual norm = %g", norm)
	}
	for i := range w {
		for k := 0; k < NVar; k++ {
			if math.Abs(w[i][k]-d.P.Freestream[k]) > 1e-10 {
				t.Fatalf("freestream not preserved at vertex %d: %v", i, w[i])
			}
		}
	}
}

func TestStepZeroForcingMatchesNil(t *testing.T) {
	spec := meshgen.DefaultChannel(6, 4, 3, 3)
	m, err := meshgen.Channel(spec)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDisc(m, DefaultParams(0.6, 0))
	w1 := make([]State, m.NV())
	w2 := make([]State, m.NV())
	d.InitUniform(w1)
	d.InitUniform(w2)
	ws := NewStepWorkspace(m.NV())
	n1 := d.Step(w1, nil, ws)
	zero := make([]State, m.NV())
	n2 := d.Step(w2, zero, ws)
	if n1 != n2 {
		t.Errorf("norms differ: %v vs %v", n1, n2)
	}
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatal("zero forcing changed the step")
		}
	}
}

func TestStepReducesResidualOnBump(t *testing.T) {
	// M = 0.3 keeps the shock switch quiet so the residual decays cleanly
	// within a few hundred cycles even on this coarse mesh (transonic
	// convergence studies live in the multigrid package tests).
	spec := meshgen.DefaultChannel(16, 8, 6, 3)
	m, err := meshgen.Channel(spec)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDisc(m, DefaultParams(0.3, 0))
	w := make([]State, m.NV())
	d.InitUniform(w)
	ws := NewStepWorkspace(m.NV())
	first := d.Step(w, nil, ws)
	var last float64
	// The impulsive start launches acoustic transients that must leave
	// through the far field before the residual decays; give them time.
	for it := 0; it < 300; it++ {
		last = d.Step(w, nil, ws)
	}
	if !(last < first/100) {
		t.Errorf("residual did not decrease: first %g, last %g", first, last)
	}
	// Solution must stay physical.
	for i := range w {
		if w[i][0] <= 0 || d.P.Gas.Pressure(w[i]) <= 0 {
			t.Fatalf("unphysical state at vertex %d: %v", i, w[i])
		}
	}
}

func TestWideSensorSpreadsSwitch(t *testing.T) {
	// widenSensor replaces each vertex's switch with the max over its
	// neighbourhood: a single hot vertex must light up exactly its
	// neighbours, and values never decrease.
	spec := meshgen.DefaultChannel(6, 4, 3, 3)
	m, err := meshgen.Channel(spec)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(0.675, 0)
	p.WideSensor = true
	d := NewDisc(m, p)

	hot := int32(m.NV() / 2)
	nu := make([]float64, m.NV())
	nu[hot] = 1
	before := append([]float64(nil), nu...)
	d.widenSensor(nu)

	neighbour := make([]bool, m.NV())
	for _, e := range m.Edges {
		if e[0] == hot {
			neighbour[e[1]] = true
		}
		if e[1] == hot {
			neighbour[e[0]] = true
		}
	}
	for v := range nu {
		if nu[v] < before[v] {
			t.Fatalf("vertex %d: switch decreased %g -> %g", v, before[v], nu[v])
		}
		switch {
		case int32(v) == hot:
			if nu[v] != 1 {
				t.Fatalf("hot vertex lost its switch: %g", nu[v])
			}
		case neighbour[v]:
			if nu[v] != 1 {
				t.Fatalf("neighbour %d not widened: %g", v, nu[v])
			}
		default:
			if nu[v] != 0 {
				t.Fatalf("non-neighbour %d was widened: %g", v, nu[v])
			}
		}
	}
}

func TestResidualAveragingEnablesHighCFL(t *testing.T) {
	// The point of the implicit residual averaging: at CFL 6 the scheme
	// diverges without it and converges with it.
	spec := meshgen.DefaultChannel(12, 8, 6, 3)
	spec.BumpHeight = 0
	m, err := meshgen.Channel(spec)
	if err != nil {
		t.Fatal(err)
	}
	run := func(smooth bool) float64 {
		p := DefaultParams(0.5, 0)
		if !smooth {
			p.EpsSmooth = 0
			p.NSmooth = 0
		}
		d := NewDisc(m, p)
		w := make([]State, m.NV())
		g := p.Gas
		for i, x := range m.X {
			w[i] = p.Freestream
			w[i][0] += 0.01 * math.Sin(math.Pi*x.X/3) * math.Sin(math.Pi*x.Y)
			_ = g
		}
		ws := NewStepWorkspace(m.NV())
		var norm float64
		for c := 0; c < 80; c++ {
			norm = d.Step(w, nil, ws)
			if math.IsNaN(norm) || norm > 1e3 {
				return math.Inf(1)
			}
		}
		return norm
	}
	with := run(true)
	without := run(false)
	if !(with < without/10) {
		t.Errorf("residual averaging should stabilize CFL 6: with=%g without=%g", with, without)
	}
}

func TestPositivityGuard(t *testing.T) {
	p := DefaultParams(0.7, 0)
	if !p.Guard(p.Freestream) {
		t.Error("guard rejected the freestream")
	}
	if p.Guard(State{0.01, 0, 0, 0, 1}) {
		t.Error("guard accepted near-vacuum density")
	}
	if p.Guard(Air.FromPrimitive(1, 0.5, 0, 0, 0.001)) {
		t.Error("guard accepted near-zero pressure")
	}
	p.MinDensity, p.MinPressure = 0, 0
	if !p.Guard(State{0.01, 0, 0, 0, -1}) {
		t.Error("disabled guard should accept anything")
	}
}

func TestGuardRevertsBlowUpStage(t *testing.T) {
	// Drive one vertex with a residual so large the update would go
	// unphysical: the guard must hold that vertex at its stage-0 state
	// while the rest of the field updates normally.
	d := straightChannel(t, 4, 3, 3, 0.5)
	w := make([]State, d.M.NV())
	d.InitUniform(w)
	ws := NewStepWorkspace(len(w))
	// A fake forcing blowing up vertex 0 only.
	forcing := make([]State, len(w))
	forcing[0] = State{1e6, 0, 0, 0, 0} // removes density violently
	d.Step(w, forcing, ws)
	if w[0] != d.P.Freestream {
		t.Errorf("guard did not hold the poisoned vertex: %v", w[0])
	}
	for i, s := range w {
		if s[0] <= 0 || d.P.Gas.Pressure(s) <= 0 {
			t.Fatalf("unphysical state at %d after guarded step", i)
		}
	}
}

func TestFarFieldUnphysicalInteriorFallsBack(t *testing.T) {
	g := Air
	winf := g.Freestream(0.7, 0)
	// Negative-pressure interior state (energy far below kinetic).
	bad := State{1, 2, 0, 0, 0.5}
	if g.Pressure(bad) >= 0 {
		t.Fatal("test state should have negative pressure")
	}
	wb := FarFieldState(g, bad, winf, geom.Vec3{X: 1})
	if wb != winf {
		t.Errorf("expected freestream fallback, got %v", wb)
	}
	for _, v := range wb {
		if math.IsNaN(v) {
			t.Fatal("NaN escaped the far-field state")
		}
	}
}

func TestRepairEnforcesFloors(t *testing.T) {
	p := DefaultParams(0.7, 0)
	g := p.Gas
	// Admissible states pass through untouched.
	ok := g.FromPrimitive(1, 0.5, 0, 0, 0.7)
	if p.Repair(ok) != ok {
		t.Error("Repair modified an admissible state")
	}
	// Negative pressure is floored, velocity preserved.
	bad := State{1, 2, 0, 0, 0.5} // p < 0
	r := p.Repair(bad)
	if pr := g.Pressure(r); math.Abs(pr-p.MinPressure) > 1e-12 {
		t.Errorf("repaired pressure %v, want floor %v", pr, p.MinPressure)
	}
	u, _, _ := g.Velocity(r)
	if math.Abs(u-2) > 1e-12 {
		t.Errorf("repair changed velocity: %v", u)
	}
	// Near-vacuum density is floored.
	thin := State{1e-6, 0, 0, 0, 1}
	if r := p.Repair(thin); r[0] < p.MinDensity {
		t.Errorf("repaired density %v below floor", r[0])
	}
}
