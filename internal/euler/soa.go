package euler

// StateSoA is the structure-of-arrays layout of a []State field: one
// contiguous float64 slice per conserved variable. The shared-memory
// engine's hot edge kernels (flux and dissipation accumulation) and vertex
// sweeps run on this layout — each k-component loop then streams five
// independent contiguous arrays instead of striding through 40-byte
// records, which is the data-layout conversion Dai et al. (arXiv:2209.01877)
// apply to the same class of unstructured edge loops. The public solver
// interfaces keep []State; the conversions below are the shims between the
// two layouts and are exact (pure copies, no arithmetic), so switching
// layouts never perturbs results.
type StateSoA struct {
	Comp [NVar][]float64

	backing []float64 // the single allocation the Comp slices view
}

// NewStateSoA allocates an SoA block for nv vertices.
func NewStateSoA(nv int) *StateSoA {
	s := &StateSoA{}
	s.Resize(nv)
	return s
}

// Resize re-views the block for nv vertices, reallocating only when the
// backing array is too small (with headroom, so repeated adaptation epochs
// amortize). Contents are not preserved across a Resize.
func (s *StateSoA) Resize(nv int) {
	need := NVar * nv
	if cap(s.backing) < need {
		// One backing allocation keeps the five component arrays adjacent,
		// so a full-state sweep walks one contiguous region.
		s.backing = make([]float64, need, need+need/4)
	}
	b := s.backing[:need]
	for k := 0; k < NVar; k++ {
		s.Comp[k] = b[k*nv : (k+1)*nv : (k+1)*nv]
	}
}

// Len returns the number of vertices.
func (s *StateSoA) Len() int { return len(s.Comp[0]) }

// FromStates copies w[lo:hi] into the SoA layout (gather shim).
func (s *StateSoA) FromStates(w []State, lo, hi int) {
	for k := 0; k < NVar; k++ {
		c := s.Comp[k]
		for i := lo; i < hi; i++ {
			c[i] = w[i][k]
		}
	}
}

// ToStates copies the SoA range [lo,hi) back into w (scatter shim).
func (s *StateSoA) ToStates(w []State, lo, hi int) {
	for k := 0; k < NVar; k++ {
		c := s.Comp[k]
		for i := lo; i < hi; i++ {
			w[i][k] = c[i]
		}
	}
}

// At gathers vertex i as a State value.
func (s *StateSoA) At(i int) State {
	var st State
	for k := 0; k < NVar; k++ {
		st[k] = s.Comp[k][i]
	}
	return st
}

// Set scatters st into vertex i.
func (s *StateSoA) Set(i int, st State) {
	for k := 0; k < NVar; k++ {
		s.Comp[k][i] = st[k]
	}
}

// ZeroRange clears the vertices [lo,hi).
func (s *StateSoA) ZeroRange(lo, hi int) {
	for k := 0; k < NVar; k++ {
		c := s.Comp[k][lo:hi]
		for i := range c {
			c[i] = 0
		}
	}
}

// CopyRange copies src's range [lo,hi) into s.
func (s *StateSoA) CopyRange(src *StateSoA, lo, hi int) {
	for k := 0; k < NVar; k++ {
		copy(s.Comp[k][lo:hi], src.Comp[k][lo:hi])
	}
}
