// Package scenario is a registry of named flow presets — mesh generation,
// initial and boundary state, solver parameters, and expected diagnostics —
// that pin the solver's physics against analytic references. The steady
// transonic-channel workloads elsewhere in the repo exercise convergence
// and parallel conformance; the presets here exercise correctness: a Sod
// shock tube checked against the exact Riemann solution (riemann.go), a
// supersonic compression ramp checked against the oblique-shock relations
// (oblique.go), and a smooth unsteady advection case checked against exact
// transport. The package deliberately depends only on euler/mesh/meshgen so
// that every entry layer (cmd/eul3d, internal/serve, the verify harness)
// can import it without cycles.
package scenario

import (
	"fmt"
	"math"
	"sort"

	"eul3d/internal/euler"
	"eul3d/internal/mesh"
	"eul3d/internal/meshgen"
)

// Scenario is one named preset. The exported fields parameterize how the
// entry layers drive the solver; the unexported hooks define the physics.
type Scenario struct {
	Name        string
	Description string

	// Unsteady marks time-accurate presets: fixed global dt, no residual
	// averaging, Steps is the exact number of time steps (Tol is zero), and
	// multigrid engines must run with a single level (a 1-level cycle is
	// exactly one fine-grid step, so the "mg"/"smmg" engine kinds remain
	// usable and bitwise-equal to their single-grid counterparts).
	Unsteady bool

	Steps     int     // default cycle/step count
	Tol       float64 // steady convergence tolerance (0 = run all Steps)
	MaxLevels int     // largest multigrid depth that makes sense (1 = none)

	// L1Tol is the committed bound on the volume-weighted L1 density error
	// against the analytic reference; zero when the preset has none.
	L1Tol float64

	spec   meshgen.ChannelSpec
	params euler.Params

	init         func(g euler.Gas, m *mesh.Mesh) []euler.State
	exactDensity func(g euler.Gas, m *mesh.Mesh) []float64
	probe        func(g euler.Gas, m *mesh.Mesh, w []euler.State) (got, want, relTol float64, label string)
}

// Params returns a copy of the preset's solver parameters.
func (s *Scenario) Params() euler.Params { return s.params }

// Spec returns the preset's fine-level mesh specification.
func (s *Scenario) Spec() meshgen.ChannelSpec { return s.spec }

// Meshes generates the preset's multigrid hierarchy, finest first. levels
// is clamped to [1, MaxLevels].
func (s *Scenario) Meshes(levels int) ([]*mesh.Mesh, error) {
	if levels < 1 {
		levels = 1
	}
	if levels > s.MaxLevels {
		levels = s.MaxLevels
	}
	return meshgen.Sequence(s.spec, levels)
}

// InitialState returns the preset's initial condition on mesh m.
func (s *Scenario) InitialState(m *mesh.Mesh) []euler.State {
	return s.init(s.params.Gas, m)
}

// Diagnostics summarizes one finished scenario run. It is committed as the
// golden regression record (internal/scenario/testdata) and returned by
// the serve layer for scenario jobs.
type Diagnostics struct {
	Scenario  string  `json:"scenario"`
	FinalNorm float64 `json:"final_norm"` // last residual norm of the run

	// L1Density is the volume-weighted L1 density error against the
	// analytic reference, or -1 when the preset has none.
	L1Density float64 `json:"l1_density"`

	Min [euler.NVar]float64 `json:"min"` // per-field minimum over vertices
	Max [euler.NVar]float64 `json:"max"` // per-field maximum over vertices

	MinPressure float64 `json:"min_pressure"`

	// Probe fields are set by presets with a pointwise analytic check
	// (e.g. the wedge's post-shock pressure plateau).
	ProbeLabel string  `json:"probe_label,omitempty"`
	ProbeGot   float64 `json:"probe_got,omitempty"`
	ProbeWant  float64 `json:"probe_want,omitempty"`
	ProbeTol   float64 `json:"probe_tol,omitempty"` // relative tolerance
}

// Diagnose computes the diagnostics of solution w on mesh m. finalNorm is
// the last residual norm reported by the solver.
func (s *Scenario) Diagnose(m *mesh.Mesh, w []euler.State, finalNorm float64) Diagnostics {
	d := Diagnostics{Scenario: s.Name, FinalNorm: finalNorm, L1Density: -1, MinPressure: math.Inf(1)}
	for k := 0; k < euler.NVar; k++ {
		d.Min[k] = math.Inf(1)
		d.Max[k] = math.Inf(-1)
	}
	g := s.params.Gas
	for _, wi := range w {
		for k := 0; k < euler.NVar; k++ {
			d.Min[k] = math.Min(d.Min[k], wi[k])
			d.Max[k] = math.Max(d.Max[k], wi[k])
		}
		d.MinPressure = math.Min(d.MinPressure, g.Pressure(wi))
	}
	if s.exactDensity != nil {
		d.L1Density = L1Density(m, w, s.exactDensity(g, m))
	}
	if s.probe != nil {
		d.ProbeGot, d.ProbeWant, d.ProbeTol, d.ProbeLabel = s.probe(g, m, w)
	}
	return d
}

// Check verifies the physics assertions of diagnostics d: finite fields,
// positive density and pressure, the committed L1 bound, and the preset's
// probe (when present). It returns nil when every assertion holds.
func (s *Scenario) Check(d Diagnostics) error {
	for k := 0; k < euler.NVar; k++ {
		if math.IsNaN(d.Min[k]) || math.IsInf(d.Min[k], 0) || math.IsInf(d.Max[k], 0) {
			return fmt.Errorf("scenario %s: field %d not finite (min=%g max=%g)", s.Name, k, d.Min[k], d.Max[k])
		}
	}
	if !(d.Min[0] > 0) {
		return fmt.Errorf("scenario %s: non-positive density %g", s.Name, d.Min[0])
	}
	if !(d.MinPressure > 0) {
		return fmt.Errorf("scenario %s: non-positive pressure %g", s.Name, d.MinPressure)
	}
	if s.L1Tol > 0 && !(d.L1Density <= s.L1Tol) {
		return fmt.Errorf("scenario %s: L1 density error %.6g exceeds committed tolerance %g", s.Name, d.L1Density, s.L1Tol)
	}
	if d.ProbeLabel != "" {
		if rel := math.Abs(d.ProbeGot-d.ProbeWant) / math.Abs(d.ProbeWant); !(rel <= d.ProbeTol) {
			return fmt.Errorf("scenario %s: probe %q = %.6g, want %.6g within %.0f%% (off by %.1f%%)",
				s.Name, d.ProbeLabel, d.ProbeGot, d.ProbeWant, 100*d.ProbeTol, 100*rel)
		}
	}
	return nil
}

// L1Density returns the volume-weighted L1 density error of w against the
// per-vertex reference densities: sum_i V_i |rho_i - ref_i| / sum_i V_i.
func L1Density(m *mesh.Mesh, w []euler.State, ref []float64) float64 {
	num, den := 0.0, 0.0
	for i := range w {
		num += m.Vol[i] * math.Abs(w[i][0]-ref[i])
		den += m.Vol[i]
	}
	return num / den
}

var registry = map[string]*Scenario{}

func register(s *Scenario) *Scenario {
	if _, dup := registry[s.Name]; dup {
		panic("scenario: duplicate name " + s.Name)
	}
	registry[s.Name] = s
	return s
}

// Get returns the named scenario, or an error listing the valid names.
func Get(name string) (*Scenario, error) {
	s, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown scenario %q (have %v)", name, Names())
	}
	return s, nil
}

// Names returns the registered scenario names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
