package scenario

import (
	"fmt"
	"math"
)

// Exact solver for the 1-D Riemann problem of the compressible Euler
// equations (Toro, "Riemann Solvers and Numerical Methods for Fluid
// Dynamics", ch. 4). It provides the analytic reference solution for the
// Sod shock-tube scenario: a Newton iteration on the pressure function
// determines the star-region pressure and velocity, after which the full
// self-similar solution w(x/t) is sampled in closed form.

// RiemannState is a 1-D primitive gas state.
type RiemannState struct {
	Rho, U, P float64
}

// RiemannSolution is the solved similarity solution of a Riemann problem.
// Sample evaluates it at any similarity coordinate xi = x/t.
type RiemannSolution struct {
	Gamma float64
	L, R  RiemannState

	PStar, UStar       float64 // star-region pressure and velocity
	RhoStarL, RhoStarR float64 // densities on either side of the contact
	AL, AR             float64 // outer sound speeds
}

// riemannIters bounds the Newton iteration; convergence is quadratic and
// typically takes < 10 iterations from the PVRS guess.
const riemannIters = 100

// SolveRiemann solves the Riemann problem with left state l and right
// state r for a perfect gas with ratio of specific heats gamma. It returns
// an error for non-physical inputs or when the data generate vacuum
// (pressure positivity condition violated).
func SolveRiemann(gamma float64, l, r RiemannState) (*RiemannSolution, error) {
	if !(gamma > 1) {
		return nil, fmt.Errorf("riemann: gamma must be > 1, got %g", gamma)
	}
	for _, s := range []RiemannState{l, r} {
		if !(s.Rho > 0) || !(s.P > 0) || math.IsInf(s.U, 0) || math.IsNaN(s.U) {
			return nil, fmt.Errorf("riemann: non-physical state rho=%g u=%g p=%g", s.Rho, s.U, s.P)
		}
	}
	aL := math.Sqrt(gamma * l.P / l.Rho)
	aR := math.Sqrt(gamma * r.P / r.Rho)

	// Pressure positivity condition: the two rarefactions must not pull the
	// star region into vacuum.
	if 2/(gamma-1)*(aL+aR) <= r.U-l.U {
		return nil, fmt.Errorf("riemann: initial data generate vacuum (du = %g)", r.U-l.U)
	}

	// fK(p) is the velocity jump across the left/right wave as a function of
	// the star pressure: the shock branch (p > pK) is the Rankine-Hugoniot
	// relation, the rarefaction branch the isentropic one. fpK is dfK/dp.
	f := func(p float64, k RiemannState, aK float64) (fK, fpK float64) {
		if p > k.P { // shock
			A := 2 / ((gamma + 1) * k.Rho)
			B := (gamma - 1) / (gamma + 1) * k.P
			q := math.Sqrt(A / (p + B))
			fK = (p - k.P) * q
			fpK = q * (1 - (p-k.P)/(2*(p+B)))
		} else { // rarefaction
			fK = 2 * aK / (gamma - 1) * (math.Pow(p/k.P, (gamma-1)/(2*gamma)) - 1)
			fpK = math.Pow(p/k.P, -(gamma+1)/(2*gamma)) / (k.Rho * aK)
		}
		return
	}

	// Two-rarefaction initial guess, positive by construction and a good
	// start everywhere (exact when both waves are rarefactions).
	z := (gamma - 1) / (2 * gamma)
	p := math.Pow((aL+aR-0.5*(gamma-1)*(r.U-l.U))/(aL/math.Pow(l.P, z)+aR/math.Pow(r.P, z)), 1/z)
	if !(p > 0) {
		p = 0.5 * (l.P + r.P)
	}

	du := r.U - l.U
	for it := 0; it < riemannIters; it++ {
		fL, fpL := f(p, l, aL)
		fR, fpR := f(p, r, aR)
		dp := (fL + fR + du) / (fpL + fpR)
		pNew := p - dp
		if pNew <= 0 {
			pNew = 0.5 * p // keep the iterate positive; f' > 0 guarantees progress
		}
		if math.Abs(pNew-p) <= 1e-14*(pNew+p) {
			p = pNew
			break
		}
		p = pNew
	}

	fL, _ := f(p, l, aL)
	fR, _ := f(p, r, aR)
	sol := &RiemannSolution{
		Gamma: gamma, L: l, R: r,
		PStar: p,
		UStar: 0.5*(l.U+r.U) + 0.5*(fR-fL),
		AL:    aL, AR: aR,
	}
	sol.RhoStarL = starDensity(gamma, l, p)
	sol.RhoStarR = starDensity(gamma, r, p)
	return sol, nil
}

// starDensity returns the density adjacent to the contact on side k, for
// star pressure p: the Rankine-Hugoniot density ratio across a shock, the
// isentropic relation across a rarefaction.
func starDensity(gamma float64, k RiemannState, p float64) float64 {
	r := p / k.P
	if p > k.P {
		mu := (gamma - 1) / (gamma + 1)
		return k.Rho * (r + mu) / (mu*r + 1)
	}
	return k.Rho * math.Pow(r, 1/gamma)
}

// LeftWaveSpeeds returns the speeds of the left wave: (head, tail) of a
// rarefaction, or (s, s) for a shock.
func (s *RiemannSolution) LeftWaveSpeeds() (head, tail float64) {
	if s.PStar > s.L.P {
		sh := s.L.U - s.AL*math.Sqrt((s.Gamma+1)/(2*s.Gamma)*s.PStar/s.L.P+(s.Gamma-1)/(2*s.Gamma))
		return sh, sh
	}
	aStar := s.AL * math.Pow(s.PStar/s.L.P, (s.Gamma-1)/(2*s.Gamma))
	return s.L.U - s.AL, s.UStar - aStar
}

// RightWaveSpeeds returns the speeds of the right wave: (tail, head) of a
// rarefaction, or (s, s) for a shock.
func (s *RiemannSolution) RightWaveSpeeds() (tail, head float64) {
	if s.PStar > s.R.P {
		sh := s.R.U + s.AR*math.Sqrt((s.Gamma+1)/(2*s.Gamma)*s.PStar/s.R.P+(s.Gamma-1)/(2*s.Gamma))
		return sh, sh
	}
	aStar := s.AR * math.Pow(s.PStar/s.R.P, (s.Gamma-1)/(2*s.Gamma))
	return s.UStar + aStar, s.R.U + s.AR
}

// Sample evaluates the similarity solution at xi = x/t (diaphragm at
// x = 0, t > 0).
func (s *RiemannSolution) Sample(xi float64) RiemannState {
	g := s.Gamma
	if xi <= s.UStar {
		// Left of the contact.
		head, tail := s.LeftWaveSpeeds()
		switch {
		case xi <= head:
			return s.L
		case xi >= tail:
			return RiemannState{Rho: s.RhoStarL, U: s.UStar, P: s.PStar}
		default: // inside the left rarefaction fan
			c := 2/(g+1) + (g-1)/((g+1)*s.AL)*(s.L.U-xi)
			return RiemannState{
				Rho: s.L.Rho * math.Pow(c, 2/(g-1)),
				U:   2 / (g + 1) * (s.AL + (g-1)/2*s.L.U + xi),
				P:   s.L.P * math.Pow(c, 2*g/(g-1)),
			}
		}
	}
	// Right of the contact.
	tail, head := s.RightWaveSpeeds()
	switch {
	case xi >= head:
		return s.R
	case xi <= tail:
		return RiemannState{Rho: s.RhoStarR, U: s.UStar, P: s.PStar}
	default: // inside the right rarefaction fan
		c := 2/(g+1) - (g-1)/((g+1)*s.AR)*(s.R.U-xi)
		return RiemannState{
			Rho: s.R.Rho * math.Pow(c, 2/(g-1)),
			U:   2 / (g + 1) * (-s.AR + (g-1)/2*s.R.U + xi),
			P:   s.R.P * math.Pow(c, 2*g/(g-1)),
		}
	}
}
