package scenario

import (
	"math"
	"math/rand"
	"testing"
)

const gamma = 1.4

// TestRiemannSodValues pins the solver to the textbook star-region values
// of the Sod problem (Toro, Table 4.2).
func TestRiemannSodValues(t *testing.T) {
	sol, err := SolveRiemann(gamma, sodLeft, sodRight)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"pStar", sol.PStar, 0.30313},
		{"uStar", sol.UStar, 0.92745},
		{"rhoStarL", sol.RhoStarL, 0.42632},
		{"rhoStarR", sol.RhoStarR, 0.26557},
	} {
		if math.Abs(c.got-c.want) > 5e-5 {
			t.Errorf("%s = %.6f, want %.5f", c.name, c.got, c.want)
		}
	}
}

// randState draws a random physical 1-D state.
func randState(rng *rand.Rand) RiemannState {
	return RiemannState{
		Rho: math.Exp(rng.Float64()*4 - 2), // e^-2 .. e^2
		U:   rng.Float64()*6 - 3,
		P:   math.Exp(rng.Float64()*4 - 2),
	}
}

// checkRiemann verifies the structural properties of a solved Riemann
// problem: positive star pressure and densities, Rankine-Hugoniot
// conservation and the entropy/Lax conditions across shocks, isentropy
// across rarefactions, ordered wave speeds, and positivity of the sampled
// solution everywhere.
func checkRiemann(t *testing.T, sol *RiemannSolution) {
	t.Helper()
	g := sol.Gamma
	if !(sol.PStar > 0) || !(sol.RhoStarL > 0) || !(sol.RhoStarR > 0) {
		t.Fatalf("non-positive star region: p*=%g rho*L=%g rho*R=%g", sol.PStar, sol.RhoStarL, sol.RhoStarR)
	}

	// rankineHugoniot checks mass, momentum and enthalpy conservation in
	// the frame of a shock of speed s between upstream k and the star state.
	rankineHugoniot := func(side string, k RiemannState, rhoStar, s float64) {
		t.Helper()
		mUp := k.Rho * (k.U - s)
		mDn := rhoStar * (sol.UStar - s)
		if rel := math.Abs(mUp-mDn) / math.Max(math.Abs(mUp), 1e-12); rel > 1e-6 {
			t.Errorf("%s shock: mass flux %g vs %g (rel %g)", side, mUp, mDn, rel)
		}
		pUp := k.Rho*(k.U-s)*(k.U-s) + k.P
		pDn := rhoStar*(sol.UStar-s)*(sol.UStar-s) + sol.PStar
		if rel := math.Abs(pUp-pDn) / math.Max(math.Abs(pUp), 1e-12); rel > 1e-6 {
			t.Errorf("%s shock: momentum flux %g vs %g (rel %g)", side, pUp, pDn, rel)
		}
		hUp := g/(g-1)*k.P/k.Rho + 0.5*(k.U-s)*(k.U-s)
		hDn := g/(g-1)*sol.PStar/rhoStar + 0.5*(sol.UStar-s)*(sol.UStar-s)
		if rel := math.Abs(hUp-hDn) / math.Max(math.Abs(hUp), 1e-12); rel > 1e-6 {
			t.Errorf("%s shock: total enthalpy %g vs %g (rel %g)", side, hUp, hDn, rel)
		}
	}
	entropyOf := func(rho, p float64) float64 { return p / math.Pow(rho, g) }

	// Left wave.
	lHead, lTail := sol.LeftWaveSpeeds()
	if lHead > lTail+1e-12 {
		t.Errorf("left wave speeds out of order: head %g > tail %g", lHead, lTail)
	}
	if sol.PStar > sol.L.P { // shock
		s := lHead
		rankineHugoniot("left", sol.L, sol.RhoStarL, s)
		if entropyOf(sol.RhoStarL, sol.PStar) < entropyOf(sol.L.Rho, sol.L.P)*(1-1e-12) {
			t.Errorf("left shock violates entropy condition")
		}
		aStar := math.Sqrt(g * sol.PStar / sol.RhoStarL)
		aL := sol.AL
		if !(sol.L.U-aL >= s-1e-9 && s >= sol.UStar-aStar-1e-9) {
			t.Errorf("left shock violates Lax condition: u-a %g, S %g, u*-a* %g", sol.L.U-aL, s, sol.UStar-aStar)
		}
	} else { // rarefaction: isentropic
		if rel := math.Abs(entropyOf(sol.RhoStarL, sol.PStar)-entropyOf(sol.L.Rho, sol.L.P)) / entropyOf(sol.L.Rho, sol.L.P); rel > 1e-9 {
			t.Errorf("left rarefaction not isentropic (rel %g)", rel)
		}
	}

	// Right wave.
	rTail, rHead := sol.RightWaveSpeeds()
	if rTail > rHead+1e-12 {
		t.Errorf("right wave speeds out of order: tail %g > head %g", rTail, rHead)
	}
	if sol.PStar > sol.R.P {
		s := rHead
		rankineHugoniot("right", sol.R, sol.RhoStarR, s)
		if entropyOf(sol.RhoStarR, sol.PStar) < entropyOf(sol.R.Rho, sol.R.P)*(1-1e-12) {
			t.Errorf("right shock violates entropy condition")
		}
		aStar := math.Sqrt(g * sol.PStar / sol.RhoStarR)
		if !(sol.UStar+aStar >= s-1e-9 && s >= sol.R.U+sol.AR-1e-9) {
			t.Errorf("right shock violates Lax condition: u*+a* %g, S %g, u+a %g", sol.UStar+aStar, s, sol.R.U+sol.AR)
		}
	} else {
		if rel := math.Abs(entropyOf(sol.RhoStarR, sol.PStar)-entropyOf(sol.R.Rho, sol.R.P)) / entropyOf(sol.R.Rho, sol.R.P); rel > 1e-9 {
			t.Errorf("right rarefaction not isentropic (rel %g)", rel)
		}
	}
	if lTail > sol.UStar+1e-9 || sol.UStar > rTail+1e-9 {
		t.Errorf("contact %g outside inner wave speeds [%g, %g]", sol.UStar, lTail, rTail)
	}

	// Sampled solution: positive everywhere, exact limits far outside the
	// wave fan, continuous pressure/velocity across the contact.
	span := math.Max(math.Abs(lHead), math.Abs(rHead)) + 1
	for i := 0; i <= 400; i++ {
		xi := -2*span + float64(i)*span/100
		s := sol.Sample(xi)
		if !(s.Rho > 0) || !(s.P > 0) {
			t.Fatalf("sample at xi=%g not positive: rho=%g p=%g", xi, s.Rho, s.P)
		}
	}
	if got := sol.Sample(lHead - 1); got != sol.L {
		t.Errorf("sample left of the fan = %+v, want L = %+v", got, sol.L)
	}
	if got := sol.Sample(rHead + 1); got != sol.R {
		t.Errorf("sample right of the fan = %+v, want R = %+v", got, sol.R)
	}
	const eps = 1e-9
	lc, rc := sol.Sample(sol.UStar-eps), sol.Sample(sol.UStar+eps)
	if math.Abs(lc.P-rc.P) > 1e-6*sol.PStar || math.Abs(lc.U-rc.U) > 1e-6*(math.Abs(sol.UStar)+1) {
		t.Errorf("pressure/velocity jump across contact: %+v vs %+v", lc, rc)
	}
}

// TestRiemannProperties drives checkRiemann over a fixed corpus of random
// left/right states spanning shocks, rarefactions and near-vacuum data.
func TestRiemannProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	solved := 0
	for i := 0; i < 500; i++ {
		l, r := randState(rng), randState(rng)
		sol, err := SolveRiemann(gamma, l, r)
		if err != nil {
			continue // vacuum-generating data are rejected, not solved
		}
		solved++
		checkRiemann(t, sol)
		if t.Failed() {
			t.Fatalf("failing states: L=%+v R=%+v", l, r)
		}
	}
	if solved < 300 {
		t.Fatalf("only %d/500 random problems solved; generator or vacuum test is off", solved)
	}
}

// TestRiemannRejects pins the error paths: non-physical inputs and
// vacuum-generating data must be refused, not mis-solved.
func TestRiemannRejects(t *testing.T) {
	ok := RiemannState{Rho: 1, U: 0, P: 1}
	for _, tc := range []struct {
		name string
		l, r RiemannState
		g    float64
	}{
		{"zero density", RiemannState{Rho: 0, U: 0, P: 1}, ok, gamma},
		{"negative pressure", RiemannState{Rho: 1, U: 0, P: -1}, ok, gamma},
		{"nan velocity", RiemannState{Rho: 1, U: math.NaN(), P: 1}, ok, gamma},
		{"vacuum", RiemannState{Rho: 1, U: -10, P: 1}, RiemannState{Rho: 1, U: 10, P: 1}, gamma},
		{"bad gamma", ok, ok, 1},
	} {
		if _, err := SolveRiemann(tc.g, tc.l, tc.r); err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
}

// FuzzRiemann lets the fuzzer hunt for states where the Newton iteration
// diverges or the sampled solution loses positivity.
func FuzzRiemann(f *testing.F) {
	f.Add(1.0, 0.0, 1.0, 0.125, 0.0, 0.1)                        // Sod
	f.Add(1.0, -2.0, 0.4, 1.0, 2.0, 0.4)                         // 123 problem (strong rarefactions)
	f.Add(1.0, 0.0, 1000.0, 1.0, 0.0, 0.01)                      // blast-wave-like strong shock
	f.Add(5.99924, 19.5975, 460.894, 5.99242, -6.19633, 46.0950) // colliding streams
	f.Fuzz(func(t *testing.T, rhoL, uL, pL, rhoR, uR, pR float64) {
		l := RiemannState{Rho: rhoL, U: uL, P: pL}
		r := RiemannState{Rho: rhoR, U: uR, P: pR}
		// Keep the fuzz inside the physically sensible range; the extreme
		// tails are rejected by SolveRiemann's input validation anyway.
		for _, v := range []float64{rhoL, pL, rhoR, pR} {
			if !(v > 1e-6) || !(v < 1e6) {
				t.Skip()
			}
		}
		if math.Abs(uL) > 1e3 || math.Abs(uR) > 1e3 || math.IsNaN(uL) || math.IsNaN(uR) {
			t.Skip()
		}
		sol, err := SolveRiemann(gamma, l, r)
		if err != nil {
			t.Skip() // vacuum
		}
		checkRiemann(t, sol)
	})
}
