package scenario

import (
	"math"

	"eul3d/internal/euler"
	"eul3d/internal/mesh"
	"eul3d/internal/meshgen"
)

// The three presets. Each is registered at init and reachable by name
// through Get; the exported variables exist so tests can reference them
// directly.
var (
	Sod   = register(sodScenario())
	Pulse = register(pulseScenario())
	Wedge = register(wedgeScenario())
)

// --- Sod shock tube -------------------------------------------------------

// Sod geometry and physics: unit tube along x, diaphragm at x = 0.5,
// classical states (rho, u, p) = (1, 0, 1) | (0.125, 0, 0.1), run
// time-accurately to t = 0.15 — early enough that neither the rarefaction
// head nor the shock reaches the closed ends, so the wall BCs are exact.
const (
	sodDiaphragm = 0.5
	sodTime      = 0.15
	sodDt        = 0.001
	sodSteps     = 150 // sodSteps * sodDt = sodTime
)

var sodLeft = RiemannState{Rho: 1, U: 0, P: 1}
var sodRight = RiemannState{Rho: 0.125, U: 0, P: 0.1}

func sodScenario() *Scenario {
	g := euler.Air
	p := euler.Params{
		Gas: g,
		CFL: 1, // unused: GlobalDt overrides the local time step
		K2:  0.9, K4: 1.0 / 32,
		EpsSmooth: 0, NSmooth: 0, // residual averaging would destroy time accuracy
		Stages:      []float64{0.25, 1.0 / 6, 0.375, 0.5, 1.0},
		Freestream:  g.FromPrimitive(sodLeft.Rho, sodLeft.U, 0, 0, sodLeft.P), // no far-field faces; reference only
		MinDensity:  0.01,
		MinPressure: 0.005,
		ConvexLimit: true,
		GlobalDt:    sodDt,
	}
	return &Scenario{
		Name:        "sod",
		Description: "Sod shock tube, time-accurate to t=0.15, checked against the exact Riemann solution",
		Unsteady:    true,
		Steps:       sodSteps,
		MaxLevels:   1,
		// Measured 0.0195 on all engines (first-order shock smearing of the
		// JST blend at 100 cells); committed with modest headroom.
		L1Tol: 0.025,
		spec: meshgen.ChannelSpec{
			NX: 100, NY: 2, NZ: 2,
			LX: 1, LY: 0.02, LZ: 0.02,
			WallEnds: true,
		},
		params: p,
		init: func(g euler.Gas, m *mesh.Mesh) []euler.State {
			w := make([]euler.State, m.NV())
			for i, x := range m.X {
				s := sodRight
				if x.X < sodDiaphragm {
					s = sodLeft
				}
				w[i] = g.FromPrimitive(s.Rho, s.U, 0, 0, s.P)
			}
			return w
		},
		exactDensity: func(g euler.Gas, m *mesh.Mesh) []float64 {
			sol, err := SolveRiemann(g.Gamma, sodLeft, sodRight)
			if err != nil {
				panic("scenario: sod riemann solve failed: " + err.Error())
			}
			ref := make([]float64, m.NV())
			for i, x := range m.X {
				ref[i] = sol.Sample((x.X - sodDiaphragm) / sodTime).Rho
			}
			return ref
		},
	}
}

// --- Unsteady entropy-wave advection --------------------------------------

// A Gaussian density pulse in uniform velocity and pressure is a pure
// entropy wave: it advects at the flow speed without deformation, so the
// exact solution at time t is the initial profile shifted by u*t. The
// far-field ends see the unperturbed freestream (the pulse never gets
// within ~10 standard deviations of either end).
const (
	pulseU     = 0.5
	pulseX0    = 0.7
	pulseSigma = 0.1
	pulseAmp   = 0.2
	pulseDt    = 0.0025
	pulseSteps = 240 // pulseSteps * pulseDt = 0.6
	pulseTime  = 0.6
)

func pulseScenario() *Scenario {
	g := euler.Air
	fs := g.FromPrimitive(1, pulseU, 0, 0, 1/g.Gamma)
	p := euler.Params{
		Gas: g,
		CFL: 1, // unused: GlobalDt overrides the local time step
		K2:  0.55, K4: 1.0 / 32,
		EpsSmooth: 0, NSmooth: 0,
		Stages:      []float64{0.25, 1.0 / 6, 0.375, 0.5, 1.0},
		Freestream:  fs,
		MinDensity:  0.01,
		MinPressure: 0.005,
		ConvexLimit: true,
		GlobalDt:    pulseDt,
	}
	rho := func(x, t float64) float64 {
		d := (x - pulseX0 - pulseU*t) / pulseSigma
		return 1 + pulseAmp*math.Exp(-d*d)
	}
	return &Scenario{
		Name:        "pulse",
		Description: "time-accurate entropy-wave advection, checked against exact transport",
		Unsteady:    true,
		Steps:       pulseSteps,
		MaxLevels:   1,
		// Measured 0.0018 on all engines; committed with modest headroom.
		L1Tol: 0.005,
		spec: meshgen.ChannelSpec{
			NX: 96, NY: 2, NZ: 2,
			LX: 2, LY: 0.042, LZ: 0.042,
		},
		params: p,
		init: func(g euler.Gas, m *mesh.Mesh) []euler.State {
			w := make([]euler.State, m.NV())
			for i, x := range m.X {
				w[i] = g.FromPrimitive(rho(x.X, 0), pulseU, 0, 0, 1/g.Gamma)
			}
			return w
		},
		exactDensity: func(g euler.Gas, m *mesh.Mesh) []float64 {
			ref := make([]float64, m.NV())
			for i, x := range m.X {
				ref[i] = rho(x.X, pulseTime)
			}
			return ref
		},
	}
}

// --- Supersonic compression ramp (wedge) ----------------------------------

// Mach-2 flow over an 8-degree compression ramp starting at x = 1. The
// attached weak oblique shock leaves a uniform post-shock plateau on the
// ramp; the probe compares the mean near-wall pressure against the
// theta-beta-M prediction. The shock meets the straight top wall at
// x ~ 2.3, so the probe window [1.5, 2.5] near the ramp is untouched by
// the reflection.
const (
	wedgeMach     = 2.0
	wedgeAngleDeg = 8.0
	wedgeRampX    = 1.0
)

func wedgeScenario() *Scenario {
	g := euler.Air
	p := euler.DefaultParams(wedgeMach, 0)
	p.ConvexLimit = true // impulsive start drives ramp-corner vertices out of the admissible set

	shock, err := SolveObliqueShock(g.Gamma, wedgeMach, wedgeAngleDeg)
	if err != nil {
		panic("scenario: wedge oblique-shock solve failed: " + err.Error())
	}
	p1 := 1 / g.Gamma // freestream static pressure in this nondimensionalization
	slope := math.Tan(wedgeAngleDeg * math.Pi / 180)

	return &Scenario{
		Name:        "wedge",
		Description: "Mach-2 flow over an 8-deg compression ramp, checked against the oblique-shock relations",
		Steps:       300,
		Tol:         1e-6,
		MaxLevels:   2,
		spec: meshgen.ChannelSpec{
			NX: 48, NY: 16, NZ: 1,
			LX: 3, LY: 1, LZ: 0.1,
			RampAngleDeg: wedgeAngleDeg,
			BumpStart:    wedgeRampX,
			BumpEnd:      3,
		},
		params: p,
		init: func(g euler.Gas, m *mesh.Mesh) []euler.State {
			w := make([]euler.State, m.NV())
			for i := range w {
				w[i] = p.Freestream
			}
			return w
		},
		probe: func(g euler.Gas, m *mesh.Mesh, w []euler.State) (got, want, relTol float64, label string) {
			sum, n := 0.0, 0
			for i, x := range m.X {
				if x.X < 1.5 || x.X > 2.5 {
					continue
				}
				wall := slope * (x.X - wedgeRampX)
				if x.Y > wall+0.2 {
					continue
				}
				sum += g.Pressure(w[i])
				n++
			}
			// Measured within 0.2% of the theta-beta-M prediction at this
			// resolution; 5% leaves headroom for coarser multigrid panels.
			if n == 0 {
				return 0, p1 * shock.P2OverP1, 0.05, "post-shock wall pressure"
			}
			return sum / float64(n), p1 * shock.P2OverP1, 0.05, "post-shock wall pressure"
		},
	}
}
