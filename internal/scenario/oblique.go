package scenario

import (
	"fmt"
	"math"
)

// Oblique-shock relations for the supersonic wedge scenario: given the
// upstream Mach number and the flow-deflection (wedge) angle, solve the
// theta-beta-M relation for the weak-shock wave angle and return the jump
// ratios. These are the textbook closed-form relations (Anderson, "Modern
// Compressible Flow", ch. 4); the scenario uses them as the analytic
// reference for the post-shock pressure plateau on the ramp.

// ObliqueShock holds the solved weak-branch oblique shock.
type ObliqueShock struct {
	BetaDeg      float64 // shock-wave angle from the upstream flow direction
	P2OverP1     float64 // static pressure ratio across the shock
	Rho2OverRho1 float64 // density ratio across the shock
	M2           float64 // downstream Mach number
}

// thetaOfBeta returns the flow deflection produced by a shock of wave
// angle beta at upstream Mach m1.
func thetaOfBeta(gamma, m1, beta float64) float64 {
	ms2 := m1 * m1 * math.Sin(beta) * math.Sin(beta)
	return math.Atan(2 / math.Tan(beta) * (ms2 - 1) / (m1*m1*(gamma+math.Cos(2*beta)) + 2))
}

// SolveObliqueShock solves the theta-beta-M relation for the weak shock
// attached to a wedge of half-angle thetaDeg in a stream of Mach m1 > 1.
// It returns an error when the shock would detach (theta beyond theta_max).
func SolveObliqueShock(gamma, m1, thetaDeg float64) (ObliqueShock, error) {
	if !(m1 > 1) {
		return ObliqueShock{}, fmt.Errorf("oblique: upstream Mach must be > 1, got %g", m1)
	}
	theta := thetaDeg * math.Pi / 180
	if theta <= 0 {
		return ObliqueShock{}, fmt.Errorf("oblique: wedge angle must be positive, got %g deg", thetaDeg)
	}

	// theta(beta) rises from 0 at the Mach angle to theta_max and falls back
	// to 0 at beta = pi/2. Ternary-search the maximum, then bisect on the
	// rising (weak) branch.
	lo, hi := math.Asin(1/m1), math.Pi/2
	a, b := lo, hi
	for i := 0; i < 200; i++ {
		m1p := a + (b-a)/3
		m2p := b - (b-a)/3
		if thetaOfBeta(gamma, m1, m1p) < thetaOfBeta(gamma, m1, m2p) {
			a = m1p
		} else {
			b = m2p
		}
	}
	betaMax := 0.5 * (a + b)
	if theta > thetaOfBeta(gamma, m1, betaMax) {
		return ObliqueShock{}, fmt.Errorf("oblique: %g deg exceeds max deflection at M=%g (detached shock)", thetaDeg, m1)
	}
	wa, wb := lo, betaMax
	for i := 0; i < 200; i++ {
		mid := 0.5 * (wa + wb)
		if thetaOfBeta(gamma, m1, mid) < theta {
			wa = mid
		} else {
			wb = mid
		}
	}
	beta := 0.5 * (wa + wb)

	ms2 := m1 * m1 * math.Sin(beta) * math.Sin(beta)
	p21 := 1 + 2*gamma/(gamma+1)*(ms2-1)
	r21 := (gamma + 1) * ms2 / ((gamma-1)*ms2 + 2)
	mn2 := math.Sqrt((1 + (gamma-1)/2*ms2) / (gamma*ms2 - (gamma-1)/2))
	return ObliqueShock{
		BetaDeg:      beta * 180 / math.Pi,
		P2OverP1:     p21,
		Rho2OverRho1: r21,
		M2:           mn2 / math.Sin(beta-theta),
	}, nil
}
