package verify

import (
	"testing"

	"eul3d/internal/scenario"
)

// TestScenarioPhysics runs every registered preset on the full engine
// panel and checks the analytic assertions: L1 density error under the
// committed tolerance, positive density/pressure, finite fields, and the
// preset's probe. The pooled engine must additionally produce
// bitwise-identical diagnostics at every worker count — that contract
// holds on any mesh, canonical or not.
func TestScenarioPhysics(t *testing.T) {
	for _, name := range scenario.Names() {
		sc, err := scenario.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			var smRef *scenario.Diagnostics
			for _, e := range Engines(sc) {
				e := e
				t.Run(e.String(), func(t *testing.T) {
					d, res, err := Run(sc, e)
					if err != nil {
						t.Fatal(err)
					}
					t.Logf("%s on %s: cycles=%d finalNorm=%.6e L1=%.6g minRho=%.4g minP=%.4g probe=%.6g (want %.6g)",
						name, e, res.Cycles, d.FinalNorm, d.L1Density, d.Min[0], d.MinPressure, d.ProbeGot, d.ProbeWant)
					if err := sc.Check(d); err != nil {
						t.Error(err)
					}
					if e.Kind == "sm" {
						if smRef == nil {
							smRef = &d
						} else if *smRef != d {
							t.Errorf("pooled diagnostics differ across worker counts:\n  w1: %+v\n  w%d: %+v", *smRef, e.Workers, d)
						}
					}
				})
			}
		})
	}
}
