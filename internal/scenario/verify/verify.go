// Package verify runs scenario presets through the repository's solver
// engines and checks their diagnostics against the analytic references.
// It is the physics counterpart of the bitwise conformance suite: where
// conformance pins every engine to identical floating-point output, verify
// pins that output to the right answer. It lives below cmd so both the
// test suite and future tools can drive the same panel.
package verify

import (
	"fmt"

	"eul3d/internal/scenario"
	"eul3d/internal/solver"
)

// Engine names one solver configuration of the panel.
type Engine struct {
	Kind    string // single | sm | mg | smmg
	Workers int    // sm/smmg worker count
	Levels  int    // mg/smmg level count (1 = degenerate single-grid cycle)
}

func (e Engine) String() string {
	switch e.Kind {
	case "single":
		return "single"
	case "sm":
		return fmt.Sprintf("sm/w%d", e.Workers)
	case "mg":
		return fmt.Sprintf("mg/l%d", e.Levels)
	default:
		return fmt.Sprintf("%s/w%d/l%d", e.Kind, e.Workers, e.Levels)
	}
}

// Engines returns the verification panel for sc: the sequential engine,
// the pooled engine at several worker counts, and the multigrid engines.
// Unsteady scenarios cap the multigrid engines at one level, where a cycle
// is exactly one time-accurate fine-grid step.
func Engines(sc *scenario.Scenario) []Engine {
	levels := sc.MaxLevels
	return []Engine{
		{Kind: "single"},
		{Kind: "sm", Workers: 1},
		{Kind: "sm", Workers: 2},
		{Kind: "sm", Workers: 8},
		{Kind: "mg", Levels: levels},
		{Kind: "smmg", Workers: 2, Levels: levels},
	}
}

// Run executes scenario sc on engine e and returns the resulting
// diagnostics alongside the raw solver result. The caller decides whether
// to Check the diagnostics.
func Run(sc *scenario.Scenario, e Engine) (scenario.Diagnostics, *solver.Result, error) {
	levels := e.Levels
	if levels < 1 {
		levels = 1
	}
	meshes, err := sc.Meshes(levels)
	if err != nil {
		return scenario.Diagnostics{}, nil, fmt.Errorf("verify: %s meshes: %w", sc.Name, err)
	}
	p := sc.Params()

	var st *solver.Steady
	switch e.Kind {
	case "single":
		st = solver.NewSingleGrid(meshes[0], p)
	case "sm":
		st, err = solver.NewSharedMemory(meshes[0], p, e.Workers)
	case "mg":
		st, err = solver.NewMultigrid(meshes, p, 1)
	case "smmg":
		st, err = solver.NewSharedMemoryMultigrid(meshes, p, 1, e.Workers)
	default:
		return scenario.Diagnostics{}, nil, fmt.Errorf("verify: unknown engine kind %q", e.Kind)
	}
	if err != nil {
		return scenario.Diagnostics{}, nil, fmt.Errorf("verify: %s engine %s: %w", sc.Name, e, err)
	}
	defer st.Close()

	if err := st.SetInitial(sc.InitialState(meshes[0])); err != nil {
		return scenario.Diagnostics{}, nil, fmt.Errorf("verify: %s initial state: %w", sc.Name, err)
	}
	res, err := st.Run(solver.Options{MaxCycles: sc.Steps, Tolerance: sc.Tol})
	if err != nil {
		return scenario.Diagnostics{}, nil, fmt.Errorf("verify: %s run on %s: %w", sc.Name, e, err)
	}
	return sc.Diagnose(meshes[0], res.FineSolution, res.FinalNorm), res, nil
}
