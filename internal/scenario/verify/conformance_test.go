package verify

import (
	"runtime"
	"testing"

	"eul3d/internal/euler"
	"eul3d/internal/meshgen"
	"eul3d/internal/reorder"
	"eul3d/internal/scenario"
	"eul3d/internal/smsolver"
)

// TestScenarioConformance extends the cross-engine bitwise suite to the
// scenario presets: on a color-canonical scenario mesh, the sequential
// stepper, the pooled engine at workers {1, 2, 8}, and the pooled engine's
// serial-cutoff inline path must produce bitwise-identical residual
// histories and solutions from the scenario's initial state. The presets
// run with ConvexLimit and (for the unsteady ones) GlobalDt, so this is
// the bitwise check of the limiter across the AoS and SoA kernel families
// — the startup transient of the Sod diaphragm exercises the limited
// branch, not just the admissible fast path.
func TestScenarioConformance(t *testing.T) {
	for _, name := range scenario.Names() {
		sc, err := scenario.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			m, err := meshgen.Channel(sc.Spec())
			if err != nil {
				t.Fatal(err)
			}
			cm, ec, fc, err := reorder.ColorCanonical(m)
			if err != nil {
				t.Fatal(err)
			}
			p := sc.Params()
			steps := sc.Steps
			if steps > 25 {
				steps = 25 // the startup transient is where the limiter fires
			}

			// Sequential reference from the scenario's initial state.
			d := euler.NewDisc(cm, p)
			ws := euler.NewStepWorkspace(cm.NV())
			refW := sc.InitialState(cm)
			refHist := make([]float64, steps)
			for c := range refHist {
				refHist[c] = d.Step(refW, nil, ws)
			}

			run := func(label string, cutoff, nw int) {
				t.Helper()
				defer func(old int) { smsolver.SerialCutoffEdges = old }(smsolver.SerialCutoffEdges)
				smsolver.SerialCutoffEdges = cutoff
				s, err := smsolver.NewColored(cm, p, nw, ec, fc)
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				w := sc.InitialState(cm)
				for c := 0; c < steps; c++ {
					if norm := s.Step(w, nil); norm != refHist[c] {
						t.Fatalf("%s: step %d norm %v, sequential %v", label, c, norm, refHist[c])
					}
				}
				for i := range w {
					if w[i] != refW[i] {
						t.Fatalf("%s: vertex %d state %v, sequential %v", label, i, w[i], refW[i])
					}
				}
			}

			for _, nw := range []int{1, 2, 8} {
				run("pooled", 0, nw)
				run("serial-cutoff", 1<<30, nw)
			}
		})
	}
}

// TestScenarioStepAllocs pins the zero-allocation contract of the pooled
// engine's SoA step path under scenario parameters — the convex limiter
// and the global-dt branch must not introduce allocations into the hot
// loop.
func TestScenarioStepAllocs(t *testing.T) {
	for _, name := range scenario.Names() {
		sc, err := scenario.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			m, err := meshgen.Channel(sc.Spec())
			if err != nil {
				t.Fatal(err)
			}
			cm, ec, fc, err := reorder.ColorCanonical(m)
			if err != nil {
				t.Fatal(err)
			}
			defer func(old int) { smsolver.SerialCutoffEdges = old }(smsolver.SerialCutoffEdges)
			smsolver.SerialCutoffEdges = 0
			s, err := smsolver.NewColored(cm, sc.Params(), 2, ec, fc)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			w := sc.InitialState(cm)
			s.Step(w, nil) // the first step is the limiter-heavy one; warm it up
			// GC before measuring (and retry once) so an unrelated
			// collection cycle inside AllocsPerRun's short window is not
			// attributed to the step path; a genuine per-step allocation
			// shows up on every attempt.
			var allocs float64
			for attempt := 0; attempt < 2; attempt++ {
				runtime.GC()
				if allocs = testing.AllocsPerRun(5, func() { s.Step(w, nil) }); allocs == 0 {
					break
				}
			}
			if allocs != 0 {
				t.Fatalf("limited SoA step path allocates %v times per run", allocs)
			}
		})
	}
}
