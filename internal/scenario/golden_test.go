package scenario_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"eul3d/internal/scenario"
	"eul3d/internal/scenario/verify"
)

var update = flag.Bool("update", false, "regenerate the golden scenario diagnostics under testdata/")

// goldenRelTol is the drift budget of the golden comparison. The solver is
// bitwise deterministic on a fixed platform, so any drift at all means the
// numerics changed; the tolerance only forgives float formatting and
// cross-platform libm differences, not physics.
const goldenRelTol = 1e-9

// TestGoldenDiagnostics runs every preset on the sequential engine and
// compares the full diagnostics record — final residual norm, L1 density
// error, per-field min/max — against the committed golden file. Run with
// -update after an intentional numerics change to regenerate.
func TestGoldenDiagnostics(t *testing.T) {
	for _, name := range scenario.Names() {
		sc, err := scenario.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			got, _, err := verify.Run(sc, verify.Engine{Kind: "single"})
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", name+".json")
			if *update {
				buf, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s", path)
				return
			}
			buf, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to generate): %v", err)
			}
			var want scenario.Diagnostics
			if err := json.Unmarshal(buf, &want); err != nil {
				t.Fatalf("corrupt golden file %s: %v", path, err)
			}
			if err := diffDiagnostics(got, want); err != nil {
				t.Errorf("drift against %s: %v\ngot:  %+v\nwant: %+v", path, err, got, want)
			}
		})
	}
}

func diffDiagnostics(got, want scenario.Diagnostics) error {
	if got.Scenario != want.Scenario {
		return fmt.Errorf("scenario name %q vs %q", got.Scenario, want.Scenario)
	}
	check := func(field string, g, w float64) error {
		diff := math.Abs(g - w)
		scale := math.Max(math.Abs(w), 1e-300)
		if diff/scale > goldenRelTol {
			return fmt.Errorf("%s drifted: got %.17g, want %.17g (rel %.3g)", field, g, w, diff/scale)
		}
		return nil
	}
	if err := check("final_norm", got.FinalNorm, want.FinalNorm); err != nil {
		return err
	}
	if err := check("l1_density", got.L1Density, want.L1Density); err != nil {
		return err
	}
	if err := check("min_pressure", got.MinPressure, want.MinPressure); err != nil {
		return err
	}
	for k := range got.Min {
		if err := check(fmt.Sprintf("min[%d]", k), got.Min[k], want.Min[k]); err != nil {
			return err
		}
		if err := check(fmt.Sprintf("max[%d]", k), got.Max[k], want.Max[k]); err != nil {
			return err
		}
	}
	if got.ProbeLabel != want.ProbeLabel {
		return fmt.Errorf("probe label %q vs %q", got.ProbeLabel, want.ProbeLabel)
	}
	if got.ProbeLabel != "" {
		if err := check("probe_got", got.ProbeGot, want.ProbeGot); err != nil {
			return err
		}
		if err := check("probe_want", got.ProbeWant, want.ProbeWant); err != nil {
			return err
		}
	}
	return nil
}
