package simnet

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
)

// FaultKind enumerates the injectable interconnect faults.
type FaultKind uint8

const (
	// FaultDrop loses the matched message in flight.
	FaultDrop FaultKind = iota
	// FaultDuplicate delivers the matched message twice.
	FaultDuplicate
	// FaultCorrupt flips one payload bit of the delivered copy.
	FaultCorrupt
	// FaultDelay hides the message from the receiver for Delay scans.
	FaultDelay
	// FaultReorder moves the message to the front of the pair queue.
	FaultReorder
	// FaultCrash takes a whole node down at the start of a solver cycle.
	FaultCrash
)

func (k FaultKind) String() string {
	switch k {
	case FaultDrop:
		return "drop"
	case FaultDuplicate:
		return "duplicate"
	case FaultCorrupt:
		return "corrupt"
	case FaultDelay:
		return "delay"
	case FaultReorder:
		return "reorder"
	case FaultCrash:
		return "crash"
	}
	return fmt.Sprintf("fault(%d)", k)
}

// FaultEvent is one scheduled fault. Message-level faults (everything but
// FaultCrash) strike the send whose per-pair sequence number equals Seq on
// the pair matching Src/Dst (-1 is a wildcard). FaultCrash takes Node down
// when the driver announces cycle Cycle via Fabric.BeginCycle. Every event
// fires at most once.
type FaultEvent struct {
	Kind     FaultKind
	Src, Dst int    // pair filter for message faults; -1 matches any
	Seq      uint64 // per-pair sequence number the fault strikes
	Node     int    // crashed node (FaultCrash)
	Cycle    int    // solver cycle of the crash (FaultCrash)
	Delay    int    // scans to hide the message (FaultDelay; 0 = default 2)

	fired bool
}

// FaultStats counts the events a plan has actually injected.
type FaultStats struct {
	Drops, Duplicates, Corruptions, Delays, Reorders, Crashes int
}

// FaultPlan is a deterministic fault schedule attached to a Fabric with
// SetFaultPlan. The same plan against the same traffic injects the same
// faults, so chaos tests are exactly reproducible.
type FaultPlan struct {
	mu     sync.Mutex
	events []FaultEvent
	stats  FaultStats
}

// NewFaultPlan builds a plan from an explicit event list.
func NewFaultPlan(events ...FaultEvent) *FaultPlan {
	return &FaultPlan{events: append([]FaultEvent(nil), events...)}
}

// Stats returns the counts of faults injected so far.
func (p *FaultPlan) Stats() FaultStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Unfired returns how many scheduled events have not yet triggered — chaos
// tests assert 0 to prove the schedule actually exercised every fault.
func (p *FaultPlan) Unfired() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for i := range p.events {
		if !p.events[i].fired {
			n++
		}
	}
	return n
}

// matchSend finds, fires and returns the first unfired message-level event
// matching the send, or nil.
func (p *FaultPlan) matchSend(src, dst int, seq uint64) *FaultEvent {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.events {
		ev := &p.events[i]
		if ev.fired || ev.Kind == FaultCrash {
			continue
		}
		if (ev.Src == -1 || ev.Src == src) && (ev.Dst == -1 || ev.Dst == dst) && ev.Seq == seq {
			ev.fired = true
			switch ev.Kind {
			case FaultDrop:
				p.stats.Drops++
			case FaultDuplicate:
				p.stats.Duplicates++
			case FaultCorrupt:
				p.stats.Corruptions++
			case FaultDelay:
				p.stats.Delays++
			case FaultReorder:
				p.stats.Reorders++
			}
			cp := *ev
			return &cp
		}
	}
	return nil
}

// crashesThrough fires every pending crash event scheduled at or before
// cycle c and returns the crashed nodes.
func (p *FaultPlan) crashesThrough(c int) []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	var nodes []int
	for i := range p.events {
		ev := &p.events[i]
		if ev.fired || ev.Kind != FaultCrash || ev.Cycle > c {
			continue
		}
		ev.fired = true
		p.stats.Crashes++
		nodes = append(nodes, ev.Node)
	}
	return nodes
}

// FaultMix sizes a randomly generated schedule.
type FaultMix struct {
	Drops, Duplicates, Corruptions, Delays, Reorders int
	CrashNode, CrashCycle                            int    // CrashNode < 0 disables the crash
	MaxSeq                                           uint64 // sequence numbers drawn from [0, MaxSeq); 0 = 64
}

// RandomFaultPlan derives a deterministic schedule from seed: message
// faults use wildcard pairs with sequence numbers drawn from [0, MaxSeq),
// so they strike whichever pairs actually carry traffic.
func RandomFaultPlan(seed int64, mix FaultMix) *FaultPlan {
	rng := rand.New(rand.NewSource(seed))
	maxSeq := mix.MaxSeq
	if maxSeq == 0 {
		maxSeq = 64
	}
	var events []FaultEvent
	add := func(kind FaultKind, n int) {
		for i := 0; i < n; i++ {
			events = append(events, FaultEvent{
				Kind: kind,
				Src:  -1, Dst: -1,
				Seq:   uint64(rng.Int63n(int64(maxSeq))),
				Delay: 1 + rng.Intn(3),
			})
		}
	}
	add(FaultDrop, mix.Drops)
	add(FaultDuplicate, mix.Duplicates)
	add(FaultCorrupt, mix.Corruptions)
	add(FaultDelay, mix.Delays)
	add(FaultReorder, mix.Reorders)
	if mix.CrashNode >= 0 {
		events = append(events, FaultEvent{Kind: FaultCrash, Node: mix.CrashNode, Cycle: mix.CrashCycle})
	}
	return &FaultPlan{events: events}
}

// ParseFaultSpec builds a plan from a comma-separated flag string, e.g.
//
//	seed=7,drop=2,dup=1,corrupt=1,delay=1,reorder=1,crash=2@5,maxseq=40
//
// crash=N@C crashes node N at cycle C. Unknown keys are rejected.
func ParseFaultSpec(spec string) (*FaultPlan, error) {
	mix := FaultMix{CrashNode: -1}
	var seed int64 = 1
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("simnet: fault spec %q: want key=value", field)
		}
		if key == "crash" {
			nodeStr, cycleStr, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("simnet: fault spec %q: want crash=node@cycle", field)
			}
			node, err1 := strconv.Atoi(nodeStr)
			cycle, err2 := strconv.Atoi(cycleStr)
			if err1 != nil || err2 != nil || node < 0 || cycle < 0 {
				return nil, fmt.Errorf("simnet: fault spec %q: bad crash node/cycle", field)
			}
			mix.CrashNode, mix.CrashCycle = node, cycle
			continue
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("simnet: fault spec %q: bad count", field)
		}
		switch key {
		case "seed":
			seed = n
		case "drop":
			mix.Drops = int(n)
		case "dup":
			mix.Duplicates = int(n)
		case "corrupt":
			mix.Corruptions = int(n)
		case "delay":
			mix.Delays = int(n)
		case "reorder":
			mix.Reorders = int(n)
		case "maxseq":
			mix.MaxSeq = uint64(n)
		default:
			return nil, fmt.Errorf("simnet: fault spec: unknown key %q", key)
		}
	}
	return RandomFaultPlan(seed, mix), nil
}
