package simnet

import (
	"errors"
	"testing"
)

func TestSendRecvFIFO(t *testing.T) {
	f := New(3)
	if err := f.Send(0, 1, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(0, 1, []float64{3}); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(2, 1, []float64{9}); err != nil {
		t.Fatal(err)
	}
	m, err := f.Recv(1, 0)
	if err != nil || len(m) != 2 || m[0] != 1 {
		t.Fatalf("recv1: %v %v", m, err)
	}
	m, err = f.Recv(1, 2)
	if err != nil || m[0] != 9 {
		t.Fatalf("recv from 2: %v %v", m, err)
	}
	m, err = f.Recv(1, 0)
	if err != nil || m[0] != 3 {
		t.Fatalf("recv2: %v %v", m, err)
	}
	if f.Pending(1) != 0 {
		t.Error("queue not drained")
	}
}

func TestRecvMissing(t *testing.T) {
	f := New(2)
	if _, err := f.Recv(0, 1); !errors.Is(err, ErrNoPending) {
		t.Errorf("empty recv returned %v, want ErrNoPending", err)
	}
}

func TestPendingPerPeer(t *testing.T) {
	f := New(3)
	_ = f.Send(0, 2, []float64{1})
	_ = f.Send(0, 2, []float64{2})
	_ = f.Send(1, 2, []float64{3})
	if got := f.PendingFrom(2, 0); got != 2 {
		t.Errorf("PendingFrom(2,0) = %d, want 2", got)
	}
	if got := f.PendingFrom(2, 1); got != 1 {
		t.Errorf("PendingFrom(2,1) = %d, want 1", got)
	}
	if got := f.Pending(2); got != 3 {
		t.Errorf("Pending(2) = %d, want 3", got)
	}
	if _, err := f.Recv(2, 1); err != nil {
		t.Fatal(err)
	}
	if got := f.PendingFrom(2, 1); got != 0 {
		t.Errorf("PendingFrom(2,1) after recv = %d, want 0", got)
	}
	if got := f.Pending(2); got != 2 {
		t.Errorf("Pending(2) after recv = %d, want 2", got)
	}
}

func TestRangeChecks(t *testing.T) {
	f := New(2)
	if err := f.Send(-1, 0, nil); err == nil {
		t.Error("accepted bad src")
	}
	if err := f.Send(0, 5, nil); err == nil {
		t.Error("accepted bad dst")
	}
	if _, err := f.Recv(5, 0); err == nil {
		t.Error("accepted bad recv dst")
	}
}

func TestStats(t *testing.T) {
	f := New(2)
	_ = f.Send(0, 1, make([]float64, 10))
	_ = f.Send(0, 1, make([]float64, 5))
	msgs, bytes := f.Stats(0)
	if msgs != 2 || bytes != 8*15 {
		t.Errorf("stats = %d msgs %d bytes", msgs, bytes)
	}
	tm, tb := f.TotalStats()
	if tm != 2 || tb != 120 {
		t.Errorf("totals = %d %d", tm, tb)
	}
	f.ResetStats()
	if m, b := f.Stats(0); m != 0 || b != 0 {
		t.Error("reset did not clear stats")
	}
}
