package simnet

import (
	"sync"
	"testing"
)

func TestSendRecvFIFO(t *testing.T) {
	f := New(3)
	if err := f.Send(0, 1, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(0, 1, []float64{3}); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(2, 1, []float64{9}); err != nil {
		t.Fatal(err)
	}
	m, err := f.Recv(1, 0)
	if err != nil || len(m) != 2 || m[0] != 1 {
		t.Fatalf("recv1: %v %v", m, err)
	}
	m, err = f.Recv(1, 2)
	if err != nil || m[0] != 9 {
		t.Fatalf("recv from 2: %v %v", m, err)
	}
	m, err = f.Recv(1, 0)
	if err != nil || m[0] != 3 {
		t.Fatalf("recv2: %v %v", m, err)
	}
	if f.Pending(1) != 0 {
		t.Error("queue not drained")
	}
}

func TestRecvMissing(t *testing.T) {
	f := New(2)
	if _, err := f.Recv(0, 1); err == nil {
		t.Error("expected error on empty recv")
	}
}

func TestRangeChecks(t *testing.T) {
	f := New(2)
	if err := f.Send(-1, 0, nil); err == nil {
		t.Error("accepted bad src")
	}
	if err := f.Send(0, 5, nil); err == nil {
		t.Error("accepted bad dst")
	}
	if _, err := f.Recv(5, 0); err == nil {
		t.Error("accepted bad recv dst")
	}
}

func TestStats(t *testing.T) {
	f := New(2)
	_ = f.Send(0, 1, make([]float64, 10))
	_ = f.Send(0, 1, make([]float64, 5))
	msgs, bytes := f.Stats(0)
	if msgs != 2 || bytes != 8*15 {
		t.Errorf("stats = %d msgs %d bytes", msgs, bytes)
	}
	tm, tb := f.TotalStats()
	if tm != 2 || tb != 120 {
		t.Errorf("totals = %d %d", tm, tb)
	}
	f.ResetStats()
	if m, b := f.Stats(0); m != 0 || b != 0 {
		t.Error("reset did not clear stats")
	}
}

func TestBarrierAwaitCheckConsistentVerdict(t *testing.T) {
	// All parties must receive the verdict evaluated by the last arriver,
	// even when the condition changes immediately afterwards.
	const n = 6
	b := NewBarrier(n)
	var mu sync.Mutex
	healthy := true
	results := make(chan bool, n)
	for p := 0; p < n; p++ {
		go func(p int) {
			v := b.AwaitCheck(func() bool {
				mu.Lock()
				defer mu.Unlock()
				return healthy
			})
			if p == 0 {
				// Flip the flag right after release: later readers of the
				// verdict must still see the snapshot.
				mu.Lock()
				healthy = false
				mu.Unlock()
			}
			results <- v
		}(p)
	}
	for p := 0; p < n; p++ {
		if v := <-results; !v {
			t.Fatal("verdict should be the healthy snapshot for every party")
		}
	}
	// Next generation: everyone must now agree on false.
	for p := 0; p < n; p++ {
		go func() {
			results <- b.AwaitCheck(func() bool {
				mu.Lock()
				defer mu.Unlock()
				return healthy
			})
		}()
	}
	for p := 0; p < n; p++ {
		if v := <-results; v {
			t.Fatal("second-generation verdict should be false for every party")
		}
	}
}
