package simnet

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestBarrierReleasesAllParties(t *testing.T) {
	const n = 8
	b := NewBarrier(n)
	var arrived atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			arrived.Add(1)
			b.Await()
			// Every party must observe a full complement at release.
			if got := arrived.Load(); got != n {
				t.Errorf("released with %d/%d arrivals", got, n)
			}
		}()
	}
	wg.Wait()
}

func TestBarrierReuseAcrossCycles(t *testing.T) {
	// The solver reuses one barrier for thousands of bulk-synchronous
	// phases; each generation must be independent of arrival order.
	const n = 5
	const cycles = 200
	b := NewBarrier(n)
	var phase atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for c := 0; c < cycles; c++ {
				if p == 0 {
					phase.Add(1)
				}
				b.Await()
				// Between barriers every party sees the same phase count.
				if got := phase.Load(); got != int64(c+1) {
					t.Errorf("party %d cycle %d: phase %d", p, c, got)
					return
				}
				b.Await()
			}
		}(p)
	}
	wg.Wait()
}

func TestBarrierSingleParty(t *testing.T) {
	b := NewBarrier(1)
	for c := 0; c < 3; c++ {
		b.Await() // must not block
		if !b.AwaitCheck(func() bool { return true }) {
			t.Fatal("single-party verdict lost")
		}
	}
}

func TestBarrierCheckEvaluatedOncePerGeneration(t *testing.T) {
	const n = 4
	b := NewBarrier(n)
	var evals atomic.Int64
	var wg sync.WaitGroup
	for cycle := 0; cycle < 10; cycle++ {
		for p := 0; p < n; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				b.AwaitCheck(func() bool {
					evals.Add(1)
					return true
				})
			}()
		}
		wg.Wait()
	}
	if got := evals.Load(); got != 10 {
		t.Errorf("check ran %d times for 10 generations", got)
	}
}

func TestBarrierAwaitCheckConsistentVerdict(t *testing.T) {
	// All parties must receive the verdict evaluated by the last arriver,
	// even when the condition changes immediately afterwards.
	const n = 6
	b := NewBarrier(n)
	var mu sync.Mutex
	healthy := true
	results := make(chan bool, n)
	for p := 0; p < n; p++ {
		go func(p int) {
			v := b.AwaitCheck(func() bool {
				mu.Lock()
				defer mu.Unlock()
				return healthy
			})
			if p == 0 {
				// Flip the flag right after release: later readers of the
				// verdict must still see the snapshot.
				mu.Lock()
				healthy = false
				mu.Unlock()
			}
			results <- v
		}(p)
	}
	for p := 0; p < n; p++ {
		if v := <-results; !v {
			t.Fatal("verdict should be the healthy snapshot for every party")
		}
	}
	// Next generation: everyone must now agree on false.
	for p := 0; p < n; p++ {
		go func() {
			results <- b.AwaitCheck(func() bool {
				mu.Lock()
				defer mu.Unlock()
				return healthy
			})
		}()
	}
	for p := 0; p < n; p++ {
		if v := <-results; v {
			t.Fatal("second-generation verdict should be false for every party")
		}
	}
}
