package simnet

import (
	"errors"
	"testing"
)

func TestEnvelopeDetectsDrop(t *testing.T) {
	f := New(2)
	f.SetFaultPlan(NewFaultPlan(FaultEvent{Kind: FaultDrop, Src: 0, Dst: 1, Seq: 0}))
	if err := f.Send(0, 1, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Recv(1, 0); !errors.Is(err, ErrNoPending) {
		t.Fatalf("dropped message surfaced as %v, want ErrNoPending", err)
	}
	// The retained copy heals the pair.
	if err := f.Rerequest(1, 0); err != nil {
		t.Fatal(err)
	}
	m, err := f.Recv(1, 0)
	if err != nil || len(m) != 3 || m[2] != 3 {
		t.Fatalf("replayed recv: %v %v", m, err)
	}
	if f.Resends() != 1 {
		t.Errorf("resends = %d, want 1", f.Resends())
	}
}

func TestEnvelopeDetectsCorruption(t *testing.T) {
	f := New(2)
	f.SetFaultPlan(NewFaultPlan(FaultEvent{Kind: FaultCorrupt, Src: 0, Dst: 1, Seq: 0}))
	if err := f.Send(0, 1, []float64{4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Recv(1, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted message surfaced as %v, want ErrCorrupt", err)
	}
	if err := f.Rerequest(1, 0); err != nil {
		t.Fatal(err)
	}
	m, err := f.Recv(1, 0)
	if err != nil || len(m) != 3 || m[0] != 4 || m[1] != 5 || m[2] != 6 {
		t.Fatalf("replay should deliver the pristine payload: %v %v", m, err)
	}
}

func TestDuplicateIsDiscardedAsStale(t *testing.T) {
	f := New(2)
	f.SetFaultPlan(NewFaultPlan(FaultEvent{Kind: FaultDuplicate, Src: 0, Dst: 1, Seq: 0}))
	if err := f.Send(0, 1, []float64{7}); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(0, 1, []float64{8}); err != nil {
		t.Fatal(err)
	}
	if m, err := f.Recv(1, 0); err != nil || m[0] != 7 {
		t.Fatalf("first recv: %v %v", m, err)
	}
	// The duplicate (stale seq) must be skipped, delivering seq 1.
	if m, err := f.Recv(1, 0); err != nil || m[0] != 8 {
		t.Fatalf("second recv should skip the stale duplicate: %v %v", m, err)
	}
	if f.PendingFrom(1, 0) != 0 {
		t.Errorf("stale duplicate not purged: %d pending", f.PendingFrom(1, 0))
	}
}

func TestReorderIsAbsorbedBySequenceScan(t *testing.T) {
	f := New(2)
	// Duplicate seq 0 so two messages share the queue, then jump seq 1 to
	// the front: the receiver must still deliver in sequence order.
	f.SetFaultPlan(NewFaultPlan(
		FaultEvent{Kind: FaultDuplicate, Src: 0, Dst: 1, Seq: 0},
		FaultEvent{Kind: FaultReorder, Src: 0, Dst: 1, Seq: 1},
	))
	if err := f.Send(0, 1, []float64{10}); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(0, 1, []float64{11}); err != nil {
		t.Fatal(err)
	}
	if m, err := f.Recv(1, 0); err != nil || m[0] != 10 {
		t.Fatalf("recv 1: %v %v", m, err)
	}
	if m, err := f.Recv(1, 0); err != nil || m[0] != 11 {
		t.Fatalf("recv 2: %v %v", m, err)
	}
}

func TestDelayedMessageSurfacesAfterRetries(t *testing.T) {
	f := New(2)
	f.SetFaultPlan(NewFaultPlan(FaultEvent{Kind: FaultDelay, Src: 0, Dst: 1, Seq: 0, Delay: 2}))
	if err := f.Send(0, 1, []float64{12}); err != nil {
		t.Fatal(err)
	}
	for attempt := 0; attempt < 2; attempt++ {
		if _, err := f.Recv(1, 0); !errors.Is(err, ErrNoPending) {
			t.Fatalf("attempt %d: %v, want ErrNoPending while delayed", attempt, err)
		}
	}
	if m, err := f.Recv(1, 0); err != nil || m[0] != 12 {
		t.Fatalf("delayed message never arrived: %v %v", m, err)
	}
}

func TestCrashTakesNodeDownAndRepairRevives(t *testing.T) {
	f := New(3)
	f.SetFaultPlan(NewFaultPlan(FaultEvent{Kind: FaultCrash, Node: 1, Cycle: 2}))
	f.BeginCycle(0)
	if f.NodeDown(1) {
		t.Fatal("node down before its scheduled cycle")
	}
	if err := f.Send(0, 1, []float64{1}); err != nil {
		t.Fatal(err)
	}
	f.BeginCycle(2)
	if !f.NodeDown(1) {
		t.Fatal("scheduled crash did not fire")
	}
	if err := f.Send(0, 1, nil); !errors.Is(err, ErrNodeDown) {
		t.Errorf("send to downed node: %v, want ErrNodeDown", err)
	}
	if err := f.Send(1, 0, nil); !errors.Is(err, ErrNodeDown) {
		t.Errorf("send from downed node: %v, want ErrNodeDown", err)
	}
	if _, err := f.Recv(0, 1); !errors.Is(err, ErrNodeDown) {
		t.Errorf("recv from downed node: %v, want ErrNodeDown", err)
	}
	if err := f.Rerequest(0, 1); !errors.Is(err, ErrNodeDown) {
		t.Errorf("rerequest from downed node: %v, want ErrNodeDown", err)
	}
	f.Repair()
	if f.NodeDown(1) {
		t.Fatal("Repair did not revive the node")
	}
	// Transport reset: sequence space restarts cleanly.
	if err := f.Send(0, 1, []float64{9}); err != nil {
		t.Fatal(err)
	}
	if m, err := f.Recv(1, 0); err != nil || m[0] != 9 {
		t.Fatalf("post-repair exchange: %v %v", m, err)
	}
	// A fired crash does not re-fire on replayed cycles.
	f.BeginCycle(2)
	if f.NodeDown(1) {
		t.Fatal("crash re-fired after Repair")
	}
}

func TestRandomFaultPlanDeterministic(t *testing.T) {
	mix := FaultMix{Drops: 2, Duplicates: 1, Corruptions: 2, Delays: 1, Reorders: 1, CrashNode: 2, CrashCycle: 5}
	a, b := RandomFaultPlan(42, mix), RandomFaultPlan(42, mix)
	if len(a.events) != len(b.events) || len(a.events) != 8 {
		t.Fatalf("event counts: %d vs %d", len(a.events), len(b.events))
	}
	for i := range a.events {
		if a.events[i] != b.events[i] {
			t.Fatalf("event %d differs between identically seeded plans: %+v vs %+v", i, a.events[i], b.events[i])
		}
	}
	c := RandomFaultPlan(43, mix)
	same := true
	for i := range a.events {
		if a.events[i] != c.events[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
}

func TestParseFaultSpec(t *testing.T) {
	p, err := ParseFaultSpec("seed=7,drop=2,dup=1,corrupt=1,delay=1,reorder=1,crash=2@5,maxseq=40")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.events) != 7 {
		t.Fatalf("parsed %d events, want 7", len(p.events))
	}
	crash := p.events[len(p.events)-1]
	if crash.Kind != FaultCrash || crash.Node != 2 || crash.Cycle != 5 {
		t.Errorf("crash event = %+v", crash)
	}
	for _, bad := range []string{"drop", "drop=-1", "crash=2", "crash=x@y", "bogus=1"} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
	if p2, err := ParseFaultSpec(""); err != nil || p2.Unfired() != 0 {
		t.Errorf("empty spec: %v, %d events unfired", err, p2.Unfired())
	}
}

func TestFaultStatsAndUnfired(t *testing.T) {
	f := New(2)
	plan := NewFaultPlan(
		FaultEvent{Kind: FaultDrop, Src: -1, Dst: -1, Seq: 0},
		FaultEvent{Kind: FaultCorrupt, Src: -1, Dst: -1, Seq: 99}, // never fires
	)
	f.SetFaultPlan(plan)
	if err := f.Send(0, 1, []float64{1}); err != nil {
		t.Fatal(err)
	}
	st := plan.Stats()
	if st.Drops != 1 || st.Corruptions != 0 {
		t.Errorf("stats = %+v", st)
	}
	if plan.Unfired() != 1 {
		t.Errorf("unfired = %d, want 1", plan.Unfired())
	}
}

func TestNoPlanFastPathUnchanged(t *testing.T) {
	// Without a plan the envelope still enforces ordering and integrity.
	f := New(2)
	for i := 0; i < 5; i++ {
		if err := f.Send(0, 1, []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		m, err := f.Recv(1, 0)
		if err != nil || m[0] != float64(i) {
			t.Fatalf("fifo broken at %d: %v %v", i, m, err)
		}
	}
	if _, err := f.Recv(1, 0); !errors.Is(err, ErrNoPending) {
		t.Errorf("empty recv: %v, want ErrNoPending", err)
	}
}
