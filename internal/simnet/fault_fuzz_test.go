package simnet

import (
	"strings"
	"testing"
)

// FuzzParseFaultSpec drives the user-facing fault-spec parser (the -faults
// CLI flag) with arbitrary input: malformed specs must be rejected with an
// error, never a panic, and accepted specs must yield a usable plan. Wired
// into `make verify` as a short -fuzztime smoke.
func FuzzParseFaultSpec(f *testing.F) {
	for _, seed := range []string{
		"",
		"seed=7,drop=2,crash=3@120",
		"seed=7,drop=2,dup=1,corrupt=1,delay=1,reorder=1,crash=2@40",
		"maxseq=100",
		"drop=-1",
		"crash=3",
		"crash=@",
		"crash=a@b",
		"bogus=1",
		"drop",
		"=,=,=",
		"drop=9999999999999999999999",
		" seed = 1 ",
		"seed=1,,drop=0,",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		plan, err := ParseFaultSpec(spec)
		if err != nil {
			if plan != nil {
				t.Fatalf("spec %q: non-nil plan alongside error %v", spec, err)
			}
			if !strings.HasPrefix(err.Error(), "simnet: ") {
				t.Fatalf("spec %q: error %q not from this package", spec, err)
			}
			return
		}
		if plan == nil {
			t.Fatalf("spec %q: nil plan without error", spec)
		}
		// A freshly parsed plan has fired nothing and everything scheduled
		// is still pending.
		st := plan.Stats()
		if st.Drops != 0 || st.Duplicates != 0 || st.Corruptions != 0 ||
			st.Delays != 0 || st.Reorders != 0 || st.Crashes != 0 {
			t.Fatalf("spec %q: fresh plan reports fired faults %+v", spec, st)
		}
		if plan.Unfired() < 0 {
			t.Fatalf("spec %q: negative unfired count %d", spec, plan.Unfired())
		}
	})
}
