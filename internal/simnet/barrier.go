package simnet

import "sync"

// Barrier is a reusable (cyclic) synchronization barrier for n parties —
// the bulk-synchronous structure of the distributed solver's concurrent
// MIMD mode: all processors send, barrier, all receive, barrier.
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	count   int
	gen     uint64
	verdict bool
}

// NewBarrier creates a barrier for n parties (n >= 1).
func NewBarrier(n int) *Barrier {
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Await blocks until all n parties have called Await, then releases them
// all; the barrier is immediately reusable for the next phase.
func (b *Barrier) Await() {
	b.AwaitCheck(nil)
}

// AwaitCheck is Await with a consistent verdict: when the last party
// arrives it evaluates check once, and every released party receives that
// same value. This is how bulk-synchronous error handling stays in
// lockstep — a health flag read *after* a barrier individually could be
// flipped by a fast party that already ran ahead into the next phase,
// leaving slow parties to bail while fast ones wait at the next barrier.
// The verdict field is safe to reuse across generations because the next
// release cannot happen until every party of this generation has returned.
func (b *Barrier) AwaitCheck(check func() bool) bool {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.verdict = check == nil || check()
		v := b.verdict
		b.cond.Broadcast()
		b.mu.Unlock()
		return v
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	v := b.verdict
	b.mu.Unlock()
	return v
}
