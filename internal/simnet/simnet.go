// Package simnet provides the in-process message-passing fabric that stands
// in for the Intel Touchstone Delta's NX interconnect. Each endpoint
// (simulated processor node) has a FIFO queue per peer; sends enqueue packed
// float payloads under a typed envelope (per-pair sequence number and
// payload checksum), receives dequeue them in pairwise FIFO order. The
// fabric counts messages and bytes per endpoint so the Delta machine model
// can convert real communication volume into simulated time, and so tests
// can assert the paper's message-aggregation claims.
//
// Unlike the paper's Delta runs, the fabric does not assume a perfect
// interconnect: a seeded FaultPlan (see fault.go) can be attached to inject
// deterministic message drops, duplications, reorderings, payload
// corruption, delayed delivery and whole-node crashes. The envelope lets
// receivers detect every such fault (sequence gaps, checksum mismatches),
// and the retained-copy replay buffer (Rerequest) gives the PARTI executors
// a bounded ARQ protocol to heal them. With no plan attached the fault
// machinery is a single nil check off the hot path.
package simnet

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Typed transport errors. Callers match with errors.Is; every error
// returned by Send/Recv/Rerequest wraps exactly one of these (or is a
// caller bug such as an out-of-range endpoint).
var (
	// ErrNoPending: no deliverable message with the expected sequence
	// number (never sent, dropped in flight, or still delayed).
	ErrNoPending = errors.New("no pending message")
	// ErrCorrupt: the message with the expected sequence number failed its
	// checksum. The damaged copy is discarded; Rerequest can replay the
	// sender's pristine retained copy.
	ErrCorrupt = errors.New("corrupt message")
	// ErrNodeDown: an endpoint of the operation has crashed. Not healable
	// at the transport layer — the recovery orchestrator must Repair the
	// fabric and restore solver state from a checkpoint.
	ErrNodeDown = errors.New("node down")
)

// message is the typed envelope replacing the old float64(src) header:
// a per-(src,dst)-pair sequence number plus an FNV-1a checksum of the
// payload bits. src/dst are implicit in the per-pair queue indexing.
type message struct {
	seq     uint64
	sum     uint64
	payload []float64
	delay   int // fault injection: invisible for this many Recv scans
}

// checksumFloats is FNV-1a over the payload's IEEE-754 bit patterns —
// cheap enough to run on every send and receive, strong enough to catch
// any single bit flip.
func checksumFloats(p []float64) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range p {
		h ^= math.Float64bits(v)
		h *= 1099511628211
	}
	return h
}

// Fabric is a fully-connected message network between N endpoints.
type Fabric struct {
	n  int
	mu []sync.Mutex // one per destination endpoint

	queues   [][][]message // queues[dst][src]: pairwise FIFO
	nextSend [][]uint64    // nextSend[dst][src]: next seq to assign
	nextRecv [][]uint64    // nextRecv[dst][src]: next seq expected
	retained [][]message   // retained[dst][src]: last pristine send (ARQ replay buffer)
	hasRet   [][]bool

	plan *FaultPlan

	anyDown atomic.Bool // fast-path gate for the down checks
	downMu  sync.RWMutex
	down    []bool

	statMu    sync.Mutex
	msgsSent  []int64
	bytesSent []int64
	msgsRecv  []int64
	bytesRecv []int64
	resent    int64
}

// New creates a fabric with n endpoints.
func New(n int) *Fabric {
	f := &Fabric{
		n:         n,
		mu:        make([]sync.Mutex, n),
		queues:    make([][][]message, n),
		nextSend:  make([][]uint64, n),
		nextRecv:  make([][]uint64, n),
		retained:  make([][]message, n),
		hasRet:    make([][]bool, n),
		down:      make([]bool, n),
		msgsSent:  make([]int64, n),
		bytesSent: make([]int64, n),
		msgsRecv:  make([]int64, n),
		bytesRecv: make([]int64, n),
	}
	for dst := 0; dst < n; dst++ {
		f.queues[dst] = make([][]message, n)
		f.nextSend[dst] = make([]uint64, n)
		f.nextRecv[dst] = make([]uint64, n)
		f.retained[dst] = make([]message, n)
		f.hasRet[dst] = make([]bool, n)
	}
	return f
}

// N returns the number of endpoints.
func (f *Fabric) N() int { return f.n }

// SetFaultPlan attaches a fault-injection plan (nil detaches). Must not be
// called while exchanges are in flight.
func (f *Fabric) SetFaultPlan(p *FaultPlan) { f.plan = p }

func (f *Fabric) nodeDown(p int) bool {
	if !f.anyDown.Load() {
		return false
	}
	f.downMu.RLock()
	d := f.down[p]
	f.downMu.RUnlock()
	return d
}

// BeginCycle informs the fabric that solver cycle c is starting, firing any
// scheduled whole-node crash events up to and including c. Each crash event
// fires once: after a Repair the replacement node stays up.
func (f *Fabric) BeginCycle(c int) {
	if f.plan == nil {
		return
	}
	for _, node := range f.plan.crashesThrough(c) {
		if node >= 0 && node < f.n {
			f.downMu.Lock()
			f.down[node] = true
			f.downMu.Unlock()
			f.anyDown.Store(true)
		}
	}
}

// Repair revives all crashed nodes and resets the transport layer: queues,
// sequence numbers and replay buffers are cleared on every pair. The
// recovery orchestrator calls this before restoring partition state from a
// checkpoint, so the resumed run starts from a clean bulk-synchronous
// slate. Statistics are preserved.
func (f *Fabric) Repair() {
	f.downMu.Lock()
	for p := range f.down {
		f.down[p] = false
	}
	f.downMu.Unlock()
	f.anyDown.Store(false)
	for dst := 0; dst < f.n; dst++ {
		f.mu[dst].Lock()
		for src := 0; src < f.n; src++ {
			f.queues[dst][src] = nil
			f.nextSend[dst][src] = 0
			f.nextRecv[dst][src] = 0
			f.hasRet[dst][src] = false
			f.retained[dst][src] = message{}
		}
		f.mu[dst].Unlock()
	}
}

// NodeDown reports whether endpoint p has crashed.
func (f *Fabric) NodeDown(p int) bool { return f.nodeDown(p) }

// Send enqueues payload from src to dst. The payload is copied into the
// message, so callers may reuse their buffer immediately. Messages between
// the same pair are delivered in order (by sequence number).
func (f *Fabric) Send(src, dst int, payload []float64) error {
	if src < 0 || src >= f.n || dst < 0 || dst >= f.n {
		return fmt.Errorf("simnet: send %d->%d out of range [0,%d)", src, dst, f.n)
	}
	if f.nodeDown(src) {
		return fmt.Errorf("simnet: send %d->%d: source: %w", src, dst, ErrNodeDown)
	}
	if f.nodeDown(dst) {
		return fmt.Errorf("simnet: send %d->%d: destination: %w", src, dst, ErrNodeDown)
	}
	cp := append([]float64(nil), payload...)
	m := message{sum: checksumFloats(cp), payload: cp}

	f.mu[dst].Lock()
	m.seq = f.nextSend[dst][src]
	f.nextSend[dst][src]++
	// Retain the pristine copy for replay: the bulk-synchronous exchange
	// discipline keeps at most one message in flight per pair, so one slot
	// suffices.
	f.retained[dst][src] = m
	f.hasRet[dst][src] = true
	if f.plan != nil {
		f.enqueueFaulty(dst, src, m)
	} else {
		f.queues[dst][src] = append(f.queues[dst][src], m)
	}
	f.mu[dst].Unlock()

	f.statMu.Lock()
	f.msgsSent[src]++
	f.bytesSent[src] += int64(8 * len(payload))
	f.statMu.Unlock()
	return nil
}

// enqueueFaulty applies the fault plan to one send. Called with mu[dst]
// held.
func (f *Fabric) enqueueFaulty(dst, src int, m message) {
	ev := f.plan.matchSend(src, dst, m.seq)
	if ev == nil {
		f.queues[dst][src] = append(f.queues[dst][src], m)
		return
	}
	q := f.queues[dst][src]
	switch ev.Kind {
	case FaultDrop:
		return // lost in flight; the retained copy can still be replayed
	case FaultDuplicate:
		q = append(q, m, m)
	case FaultCorrupt:
		// Flip one payload bit in the queued copy only; the retained copy
		// stays pristine so a re-request heals the exchange.
		cp := append([]float64(nil), m.payload...)
		if len(cp) > 0 {
			i := int(m.seq) % len(cp)
			cp[i] = math.Float64frombits(math.Float64bits(cp[i]) ^ 1<<(m.seq%52))
		}
		m.payload = cp
		q = append(q, m)
	case FaultDelay:
		d := ev.Delay
		if d <= 0 {
			d = 2
		}
		m.delay = d
		q = append(q, m)
	case FaultReorder:
		q = append([]message{m}, q...) // jump the queue
	default:
		q = append(q, m)
	}
	f.queues[dst][src] = q
}

// Recv dequeues the message with the next expected sequence number sent to
// dst by src. Stale duplicates (sequence already delivered) encountered
// during the scan are discarded. The error, when non-nil, wraps one of the
// typed transport errors: ErrNoPending when no deliverable message with the
// expected sequence exists, ErrCorrupt when it exists but fails its
// checksum (the damaged copy is removed so a replay can take its place),
// ErrNodeDown when either endpoint has crashed.
func (f *Fabric) Recv(dst, src int) ([]float64, error) {
	if src < 0 || src >= f.n || dst < 0 || dst >= f.n {
		return nil, fmt.Errorf("simnet: recv %d<-%d out of range [0,%d)", dst, src, f.n)
	}
	if f.nodeDown(src) {
		return nil, fmt.Errorf("simnet: recv %d<-%d: sender: %w", dst, src, ErrNodeDown)
	}
	if f.nodeDown(dst) {
		return nil, fmt.Errorf("simnet: recv %d<-%d: receiver: %w", dst, src, ErrNodeDown)
	}
	f.mu[dst].Lock()
	defer f.mu[dst].Unlock()
	q := f.queues[dst][src]
	want := f.nextRecv[dst][src]
	var out []float64
	var rerr error
	kept := q[:0]
	for i := range q {
		m := q[i]
		if m.seq < want {
			continue // stale duplicate: already delivered, discard
		}
		if m.seq == want && out == nil && rerr == nil {
			if m.delay > 0 {
				m.delay-- // still in flight: visible on a later attempt
				kept = append(kept, m)
				continue
			}
			if checksumFloats(m.payload) != m.sum {
				rerr = fmt.Errorf("simnet: recv %d<-%d seq %d: %w", dst, src, m.seq, ErrCorrupt)
				continue // drop the damaged copy; expected seq is unchanged
			}
			out = m.payload
			continue // consumed
		}
		kept = append(kept, m)
	}
	f.queues[dst][src] = kept
	if out != nil {
		f.nextRecv[dst][src] = want + 1
		f.statMu.Lock()
		f.msgsRecv[dst]++
		f.bytesRecv[dst] += int64(8 * len(out))
		f.statMu.Unlock()
		return out, nil
	}
	if rerr != nil {
		return nil, rerr
	}
	return nil, fmt.Errorf("simnet: recv %d<-%d seq %d: %w", dst, src, want, ErrNoPending)
}

// Rerequest is the receiver-driven ARQ primitive: it replays the sender's
// retained pristine copy of the last message on the pair, healing a drop,
// a corruption or an excessive delay. It fails with ErrNoPending when there
// is nothing undelivered to replay and with ErrNodeDown when the sender has
// crashed (a crashed sender cannot retransmit).
func (f *Fabric) Rerequest(dst, src int) error {
	if src < 0 || src >= f.n || dst < 0 || dst >= f.n {
		return fmt.Errorf("simnet: rerequest %d<-%d out of range [0,%d)", dst, src, f.n)
	}
	if f.nodeDown(src) || f.nodeDown(dst) {
		return fmt.Errorf("simnet: rerequest %d<-%d: %w", dst, src, ErrNodeDown)
	}
	f.mu[dst].Lock()
	defer f.mu[dst].Unlock()
	if !f.hasRet[dst][src] {
		return fmt.Errorf("simnet: rerequest %d<-%d: nothing retained: %w", dst, src, ErrNoPending)
	}
	m := f.retained[dst][src]
	if m.seq < f.nextRecv[dst][src] {
		return fmt.Errorf("simnet: rerequest %d<-%d: seq %d already delivered: %w", dst, src, m.seq, ErrNoPending)
	}
	f.queues[dst][src] = append(f.queues[dst][src], m)
	f.statMu.Lock()
	f.msgsSent[src]++
	f.bytesSent[src] += int64(8 * len(m.payload))
	f.resent++
	f.statMu.Unlock()
	return nil
}

// Pending returns the number of undelivered messages destined to dst.
func (f *Fabric) Pending(dst int) int {
	f.mu[dst].Lock()
	defer f.mu[dst].Unlock()
	n := 0
	for src := range f.queues[dst] {
		n += len(f.queues[dst][src])
	}
	return n
}

// PendingFrom returns the number of undelivered messages to dst from src.
func (f *Fabric) PendingFrom(dst, src int) int {
	f.mu[dst].Lock()
	defer f.mu[dst].Unlock()
	return len(f.queues[dst][src])
}

// Resends returns the number of retained-copy replays served since the last
// ResetStats — nonzero only when faults were injected and healed.
func (f *Fabric) Resends() int64 {
	f.statMu.Lock()
	defer f.statMu.Unlock()
	return f.resent
}

// Stats returns total messages and bytes sent by endpoint p since the last
// ResetStats.
func (f *Fabric) Stats(p int) (msgs, bytes int64) {
	f.statMu.Lock()
	defer f.statMu.Unlock()
	return f.msgsSent[p], f.bytesSent[p]
}

// RecvStats returns total messages and bytes received by endpoint p since
// the last ResetStats.
func (f *Fabric) RecvStats(p int) (msgs, bytes int64) {
	f.statMu.Lock()
	defer f.statMu.Unlock()
	return f.msgsRecv[p], f.bytesRecv[p]
}

// TotalStats returns fabric-wide message and byte counts.
func (f *Fabric) TotalStats() (msgs, bytes int64) {
	f.statMu.Lock()
	defer f.statMu.Unlock()
	for p := 0; p < f.n; p++ {
		msgs += f.msgsSent[p]
		bytes += f.bytesSent[p]
	}
	return
}

// ResetStats zeroes all counters.
func (f *Fabric) ResetStats() {
	f.statMu.Lock()
	defer f.statMu.Unlock()
	for p := range f.msgsSent {
		f.msgsSent[p] = 0
		f.bytesSent[p] = 0
		f.msgsRecv[p] = 0
		f.bytesRecv[p] = 0
	}
	f.resent = 0
}
