// Package simnet provides the in-process message-passing fabric that stands
// in for the Intel Touchstone Delta's NX interconnect. Each endpoint
// (simulated processor node) has a mailbox per peer; sends enqueue packed
// float payloads, receives dequeue them in FIFO order. The fabric counts
// messages and bytes per endpoint so the Delta machine model can convert
// real communication volume into simulated time, and so tests can assert
// the paper's message-aggregation claims.
package simnet

import (
	"fmt"
	"sync"
)

// Fabric is a fully-connected message network between N endpoints.
type Fabric struct {
	n      int
	mu     []sync.Mutex  // one per destination endpoint
	queues [][][]float64 // queues[dst][src] = FIFO of payloads

	statMu    sync.Mutex
	msgsSent  []int64
	bytesSent []int64
	msgsRecv  []int64
	bytesRecv []int64
}

// New creates a fabric with n endpoints.
func New(n int) *Fabric {
	f := &Fabric{
		n:         n,
		mu:        make([]sync.Mutex, n),
		queues:    make([][][]float64, n),
		msgsSent:  make([]int64, n),
		bytesSent: make([]int64, n),
		msgsRecv:  make([]int64, n),
		bytesRecv: make([]int64, n),
	}
	return f
}

// N returns the number of endpoints.
func (f *Fabric) N() int { return f.n }

// Send enqueues payload from src to dst. The payload is copied into the
// message, so callers may reuse their buffer immediately. Messages between
// the same pair are delivered in order.
func (f *Fabric) Send(src, dst int, payload []float64) error {
	if src < 0 || src >= f.n || dst < 0 || dst >= f.n {
		return fmt.Errorf("simnet: send %d->%d out of range [0,%d)", src, dst, f.n)
	}
	f.mu[dst].Lock()
	f.queues[dst] = append(f.queues[dst], append([]float64{float64(src)}, payload...))
	f.mu[dst].Unlock()

	f.statMu.Lock()
	f.msgsSent[src]++
	f.bytesSent[src] += int64(8 * len(payload))
	f.statMu.Unlock()
	return nil
}

// Recv dequeues the oldest pending message to dst from src. It returns an
// error if no such message is pending (the executors in this repository
// always send before receiving, so a missing message is a protocol bug,
// not a race).
func (f *Fabric) Recv(dst, src int) ([]float64, error) {
	if src < 0 || src >= f.n || dst < 0 || dst >= f.n {
		return nil, fmt.Errorf("simnet: recv %d<-%d out of range [0,%d)", dst, src, f.n)
	}
	f.mu[dst].Lock()
	defer f.mu[dst].Unlock()
	for i, m := range f.queues[dst] {
		if int(m[0]) == src {
			f.queues[dst] = append(f.queues[dst][:i], f.queues[dst][i+1:]...)
			f.statMu.Lock()
			f.msgsRecv[dst]++
			f.bytesRecv[dst] += int64(8 * (len(m) - 1))
			f.statMu.Unlock()
			return m[1:], nil
		}
	}
	return nil, fmt.Errorf("simnet: no pending message %d<-%d", dst, src)
}

// Pending returns the number of undelivered messages destined to dst.
func (f *Fabric) Pending(dst int) int {
	f.mu[dst].Lock()
	defer f.mu[dst].Unlock()
	return len(f.queues[dst])
}

// Stats returns total messages and bytes sent by endpoint p since the last
// ResetStats.
func (f *Fabric) Stats(p int) (msgs, bytes int64) {
	f.statMu.Lock()
	defer f.statMu.Unlock()
	return f.msgsSent[p], f.bytesSent[p]
}

// RecvStats returns total messages and bytes received by endpoint p since
// the last ResetStats.
func (f *Fabric) RecvStats(p int) (msgs, bytes int64) {
	f.statMu.Lock()
	defer f.statMu.Unlock()
	return f.msgsRecv[p], f.bytesRecv[p]
}

// TotalStats returns fabric-wide message and byte counts.
func (f *Fabric) TotalStats() (msgs, bytes int64) {
	f.statMu.Lock()
	defer f.statMu.Unlock()
	for p := 0; p < f.n; p++ {
		msgs += f.msgsSent[p]
		bytes += f.bytesSent[p]
	}
	return
}

// ResetStats zeroes all counters.
func (f *Fabric) ResetStats() {
	f.statMu.Lock()
	defer f.statMu.Unlock()
	for p := range f.msgsSent {
		f.msgsSent[p] = 0
		f.bytesSent[p] = 0
		f.msgsRecv[p] = 0
		f.bytesRecv[p] = 0
	}
}
