package mesh

import (
	"math"
	"strings"
	"testing"

	"eul3d/internal/geom"
)

// singleTet returns a finished mesh holding one positively-oriented unit
// right tetrahedron with all four faces marked as walls.
func singleTet(t *testing.T) *Mesh {
	t.Helper()
	m := &Mesh{
		X: []geom.Vec3{
			{X: 0, Y: 0, Z: 0},
			{X: 1, Y: 0, Z: 0},
			{X: 0, Y: 1, Z: 0},
			{X: 0, Y: 0, Z: 1},
		},
		Tets: [][4]int32{{0, 1, 2, 3}},
		BFaces: []BFace{
			{V: [3]int32{1, 2, 3}, Kind: Wall},
			{V: [3]int32{0, 3, 2}, Kind: Wall},
			{V: [3]int32{0, 1, 3}, Kind: Wall},
			{V: [3]int32{0, 2, 1}, Kind: Wall},
		},
	}
	if err := m.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return m
}

// twoTets returns a finished mesh of two tets sharing a face.
func twoTets(t *testing.T) *Mesh {
	t.Helper()
	m := &Mesh{
		X: []geom.Vec3{
			{X: 0, Y: 0, Z: 0},
			{X: 1, Y: 0, Z: 0},
			{X: 0, Y: 1, Z: 0},
			{X: 0, Y: 0, Z: 1},
			{X: 1, Y: 1, Z: 1},
		},
		// Tet 0: (0,1,2,3). Tet 1 shares face (1,2,3): (1,2,3,4) must be
		// positively oriented.
		Tets: [][4]int32{{0, 1, 2, 3}, {1, 2, 3, 4}},
	}
	// Boundary = all faces except the shared (1,2,3).
	m.BFaces = []BFace{
		{V: [3]int32{0, 3, 2}, Kind: Wall},
		{V: [3]int32{0, 1, 3}, Kind: Wall},
		{V: [3]int32{0, 2, 1}, Kind: Wall},
		{V: [3]int32{3, 4, 2}, Kind: Wall},
		{V: [3]int32{1, 4, 3}, Kind: Wall},
		{V: [3]int32{1, 2, 4}, Kind: Wall},
	}
	if err := m.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return m
}

func TestSingleTetCounts(t *testing.T) {
	m := singleTet(t)
	if m.NV() != 4 || m.NT() != 1 || m.NE() != 6 || len(m.BFaces) != 4 {
		t.Fatalf("counts: nv=%d nt=%d ne=%d nbf=%d", m.NV(), m.NT(), m.NE(), len(m.BFaces))
	}
	for _, e := range m.Edges {
		if e[0] >= e[1] {
			t.Errorf("edge %v not stored with i<j", e)
		}
	}
}

func TestDualVolumePartition(t *testing.T) {
	m := twoTets(t)
	tot := 0.0
	for _, v := range m.Vol {
		if v <= 0 {
			t.Fatalf("non-positive dual volume %g", v)
		}
		tot += v
	}
	want := geom.TetVolume(m.X[0], m.X[1], m.X[2], m.X[3]) +
		geom.TetVolume(m.X[1], m.X[2], m.X[3], m.X[4])
	if math.Abs(tot-want) > 1e-14 {
		t.Errorf("dual volumes sum to %g, want %g", tot, want)
	}
}

func TestValidateClosure(t *testing.T) {
	for name, m := range map[string]*Mesh{"single": singleTet(t), "two": twoTets(t)} {
		if err := m.Validate(1e-12); err != nil {
			t.Errorf("%s: Validate: %v", name, err)
		}
	}
}

func TestValidateDetectsBadBoundary(t *testing.T) {
	m := singleTet(t)
	// Flip one boundary face: the dual cell no longer closes.
	m.BFaces[0].V[1], m.BFaces[0].V[2] = m.BFaces[0].V[2], m.BFaces[0].V[1]
	if err := m.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if err := m.Validate(1e-9); err == nil {
		t.Error("Validate accepted a mesh with an inverted boundary face")
	}
}

func TestValidateDetectsMissingBoundaryFace(t *testing.T) {
	m := singleTet(t)
	m.BFaces = m.BFaces[:3]
	if err := m.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if err := m.Validate(1e-9); err == nil {
		t.Error("Validate accepted a mesh with a missing boundary face")
	}
}

func TestFinishRejectsInvertedTet(t *testing.T) {
	m := &Mesh{
		X: []geom.Vec3{
			{X: 0, Y: 0, Z: 0}, {X: 1, Y: 0, Z: 0}, {X: 0, Y: 1, Z: 0}, {X: 0, Y: 0, Z: 1},
		},
		Tets: [][4]int32{{1, 0, 2, 3}}, // negative volume
	}
	if err := m.Finish(); err == nil {
		t.Error("Finish accepted an inverted tet")
	}
}

func TestFinishRejectsOutOfRangeVertex(t *testing.T) {
	m := &Mesh{
		X:    []geom.Vec3{{}, {X: 1}, {Y: 1}},
		Tets: [][4]int32{{0, 1, 2, 9}},
	}
	if err := m.Finish(); err == nil {
		t.Error("Finish accepted an out-of-range vertex index")
	}
}

func TestValidateBeforeFinish(t *testing.T) {
	m := &Mesh{}
	if err := m.Validate(1e-9); err == nil || !strings.Contains(err.Error(), "before Finish") {
		t.Errorf("Validate before Finish: err=%v", err)
	}
}

func TestEdgeNormalOrientation(t *testing.T) {
	// For the single tet, each edge normal must have a positive component
	// along the edge direction (the dual face separates i from j).
	m := singleTet(t)
	for e, ed := range m.Edges {
		dir := m.X[ed[1]].Sub(m.X[ed[0]])
		if m.EdgeNorm[e].Dot(dir) <= 0 {
			t.Errorf("edge %v: normal %v not oriented i->j", ed, m.EdgeNorm[e])
		}
	}
}

func TestConstantFluxDivergenceFree(t *testing.T) {
	// Divergence theorem at the discrete level: for a constant "flux"
	// vector c, sum over incident edges of +-c.n plus boundary closure
	// must vanish at every vertex. This is the property the convective
	// operator relies on to preserve uniform flow.
	m := twoTets(t)
	c := geom.Vec3{X: 0.3, Y: -1.2, Z: 0.7}
	res := make([]float64, m.NV())
	for e, ed := range m.Edges {
		f := c.Dot(m.EdgeNorm[e])
		res[ed[0]] += f
		res[ed[1]] -= f
	}
	for _, f := range m.BFaces {
		fl := c.Dot(f.Normal) / 3
		for _, v := range f.V {
			res[v] += fl
		}
	}
	for v, r := range res {
		if math.Abs(r) > 1e-13 {
			t.Errorf("vertex %d: constant-flux residual %g", v, r)
		}
	}
}

func TestVertexDegrees(t *testing.T) {
	m := singleTet(t)
	for v, d := range m.VertexDegrees() {
		if d != 3 {
			t.Errorf("vertex %d degree = %d, want 3", v, d)
		}
	}
}

func TestComputeStats(t *testing.T) {
	m := twoTets(t)
	s := m.ComputeStats()
	if s.NVert != 5 || s.NTet != 2 || s.NBFace != 6 {
		t.Errorf("stats: %+v", s)
	}
	if s.MinDualVolume <= 0 || s.MaxDualVolume < s.MinDualVolume {
		t.Errorf("volume stats: %+v", s)
	}
	if s.AvgEdgesPerVertex != 2*float64(s.NEdge)/5 {
		t.Errorf("AvgEdgesPerVertex = %v", s.AvgEdgesPerVertex)
	}
	var empty Mesh
	if es := empty.ComputeStats(); es.NVert != 0 {
		t.Errorf("empty stats: %+v", es)
	}
}

func TestBCKindString(t *testing.T) {
	if Wall.String() != "wall" || FarField.String() != "farfield" || Symmetry.String() != "symmetry" {
		t.Error("BCKind strings wrong")
	}
	if !strings.Contains(BCKind(99).String(), "99") {
		t.Error("unknown BCKind string")
	}
}
