// Package mesh defines the unstructured tetrahedral mesh and the compact
// edge-based data structure at the heart of EUL3D (Mavriplis et al., SC'92).
//
// Flow variables live at vertices; residuals are assembled in loops over the
// unique edge list. Every edge carries a median-dual face normal so that the
// vertex-centered Galerkin finite-element discretization of the paper can be
// written as a single gather/scatter pass over edges. Boundary triangles
// carry their own area normals and a boundary-condition kind.
package mesh

import (
	"fmt"
	"math"

	"eul3d/internal/geom"
)

// BCKind labels the physical boundary condition applied on a boundary face.
type BCKind uint8

const (
	// Wall is an impermeable slip wall (weak pressure-flux closure).
	Wall BCKind = iota
	// FarField is a characteristic inflow/outflow boundary.
	FarField
	// Symmetry is a symmetry plane, treated like a slip wall.
	Symmetry
)

// String returns the lower-case name of the boundary kind.
func (k BCKind) String() string {
	switch k {
	case Wall:
		return "wall"
	case FarField:
		return "farfield"
	case Symmetry:
		return "symmetry"
	}
	return fmt.Sprintf("BCKind(%d)", uint8(k))
}

// BFace is a boundary triangle with an outward area-weighted normal.
type BFace struct {
	V      [3]int32  // vertex indices, ordered so the normal points outward
	Normal geom.Vec3 // area-weighted outward normal
	Kind   BCKind
}

// Mesh is an unstructured tetrahedral mesh in the edge-based form used by
// the solver. All index slices are parallel arrays; vertices are identified
// by position in X.
type Mesh struct {
	X    []geom.Vec3 // vertex coordinates
	Tets [][4]int32  // tetrahedra, positively oriented

	// Edge-based structure (built by Finish):
	Edges    [][2]int32  // unique edges (i, j) with i < j
	EdgeNorm []geom.Vec3 // median-dual face normal per edge, directed i -> j
	Vol      []float64   // median-dual control volume per vertex

	BFaces []BFace
}

// NV returns the number of vertices.
func (m *Mesh) NV() int { return len(m.X) }

// NT returns the number of tetrahedra.
func (m *Mesh) NT() int { return len(m.Tets) }

// NE returns the number of unique edges.
func (m *Mesh) NE() int { return len(m.Edges) }

// tetEdges lists the six edges of a tetrahedron as index quadruples
// (a, b, c, d): (a,b) is the edge and (a,b,c,d) is an even permutation of
// the positively-oriented tet, which makes the assembled median-dual face
// normal point from a to b.
var tetEdges = [6][4]int{
	{0, 1, 2, 3},
	{0, 2, 3, 1},
	{0, 3, 1, 2},
	{1, 2, 0, 3},
	{1, 3, 2, 0},
	{2, 3, 0, 1},
}

// edgeKey packs an ordered vertex pair into a map key.
func edgeKey(i, j int32) uint64 {
	if i > j {
		i, j = j, i
	}
	return uint64(uint32(i))<<32 | uint64(uint32(j))
}

// Finish builds the edge list, median-dual edge normals, dual control
// volumes and boundary-face normals from the vertex coordinates, tetrahedra
// and boundary-face vertex triples already stored in m. It must be called
// once after the mesh topology is assembled and before the mesh is used by
// a solver. It returns an error if a tetrahedron has non-positive volume.
func (m *Mesh) Finish() error {
	nv := m.NV()
	m.Vol = make([]float64, nv)

	// First pass: count unique edges to size the arrays.
	index := make(map[uint64]int32, 7*nv)
	for ti, tet := range m.Tets {
		for _, e := range tetEdges {
			a, b := tet[e[0]], tet[e[1]]
			k := edgeKey(a, b)
			if _, ok := index[k]; !ok {
				if int(a) >= nv || int(b) >= nv || a < 0 || b < 0 {
					return fmt.Errorf("mesh: tet %d references vertex out of range", ti)
				}
				index[k] = int32(len(index))
			}
		}
	}
	ne := len(index)
	m.Edges = make([][2]int32, ne)
	m.EdgeNorm = make([]geom.Vec3, ne)
	for k, id := range index {
		m.Edges[id] = [2]int32{int32(k >> 32), int32(k & 0xffffffff)}
	}

	// Second pass: accumulate dual-face normals and control volumes.
	for ti, tet := range m.Tets {
		xa, xb, xc, xd := m.X[tet[0]], m.X[tet[1]], m.X[tet[2]], m.X[tet[3]]
		vol := geom.TetVolume(xa, xb, xc, xd)
		if vol <= 0 {
			return fmt.Errorf("mesh: tet %d has non-positive volume %g", ti, vol)
		}
		q := vol / 4
		for _, v := range tet {
			m.Vol[v] += q
		}
		gt := geom.TetCentroid(xa, xb, xc, xd)
		for _, e := range tetEdges {
			a, b, c, d := tet[e[0]], tet[e[1]], tet[e[2]], tet[e[3]]
			pa, pb, pc, pd := m.X[a], m.X[b], m.X[c], m.X[d]
			mid := pa.Add(pb).Scale(0.5)
			g1 := geom.TriCentroid(pa, pb, pc)
			g2 := geom.TriCentroid(pa, pb, pd)
			n := geom.TriAreaNormal(mid, g1, gt).Add(geom.TriAreaNormal(mid, gt, g2))
			id := index[edgeKey(a, b)]
			if a > b { // stored edge runs b -> a; flip contribution
				n = n.Scale(-1)
			}
			m.EdgeNorm[id] = m.EdgeNorm[id].Add(n)
		}
	}

	// Boundary-face normals from their (outward-ordered) vertex triples.
	for i := range m.BFaces {
		f := &m.BFaces[i]
		f.Normal = geom.TriAreaNormal(m.X[f.V[0]], m.X[f.V[1]], m.X[f.V[2]])
	}
	return nil
}

// Validate checks the geometric consistency of a finished mesh:
//
//  1. every dual control volume is positive and their sum equals the total
//     tetrahedral volume;
//  2. the dual cell around every vertex closes: the signed sum of incident
//     edge normals plus one third of each incident boundary-face normal
//     vanishes (to within tol relative to the local surface area).
//
// A violation of (2) is how inverted tets, inconsistent boundary
// orientations, or missing boundary faces manifest.
func (m *Mesh) Validate(tol float64) error {
	if m.Vol == nil {
		return fmt.Errorf("mesh: Validate called before Finish")
	}
	totTet := 0.0
	for _, tet := range m.Tets {
		totTet += geom.TetVolume(m.X[tet[0]], m.X[tet[1]], m.X[tet[2]], m.X[tet[3]])
	}
	totDual := 0.0
	for v, vol := range m.Vol {
		if vol <= 0 {
			return fmt.Errorf("mesh: vertex %d has non-positive dual volume %g", v, vol)
		}
		totDual += vol
	}
	if d := math.Abs(totTet - totDual); d > tol*(1+math.Abs(totTet)) {
		return fmt.Errorf("mesh: dual volume sum %g differs from tet volume sum %g", totDual, totTet)
	}

	closure := make([]geom.Vec3, m.NV())
	scale := make([]float64, m.NV())
	for e, ed := range m.Edges {
		n := m.EdgeNorm[e]
		closure[ed[0]] = closure[ed[0]].Add(n)
		closure[ed[1]] = closure[ed[1]].Sub(n)
		a := n.Norm()
		scale[ed[0]] += a
		scale[ed[1]] += a
	}
	for _, f := range m.BFaces {
		third := f.Normal.Scale(1.0 / 3.0)
		for _, v := range f.V {
			closure[v] = closure[v].Add(third)
			scale[v] += third.Norm()
		}
	}
	for v := range closure {
		if closure[v].Norm() > tol*(1+scale[v]) {
			return fmt.Errorf("mesh: dual cell around vertex %d does not close: residual %g (area scale %g)",
				v, closure[v].Norm(), scale[v])
		}
	}
	return nil
}

// Stats summarizes mesh size and quality.
type Stats struct {
	NVert, NTet, NEdge, NBFace int
	TotalVolume                float64
	MinDualVolume              float64
	MaxDualVolume              float64
	AvgEdgesPerVertex          float64
}

// ComputeStats returns summary statistics for a finished mesh.
func (m *Mesh) ComputeStats() Stats {
	s := Stats{
		NVert:  m.NV(),
		NTet:   m.NT(),
		NEdge:  m.NE(),
		NBFace: len(m.BFaces),
	}
	if m.NV() == 0 {
		return s
	}
	s.MinDualVolume = math.Inf(1)
	for _, v := range m.Vol {
		s.TotalVolume += v
		s.MinDualVolume = math.Min(s.MinDualVolume, v)
		s.MaxDualVolume = math.Max(s.MaxDualVolume, v)
	}
	s.AvgEdgesPerVertex = 2 * float64(m.NE()) / float64(m.NV())
	return s
}

// VertexDegrees returns the number of incident edges per vertex.
func (m *Mesh) VertexDegrees() []int32 {
	deg := make([]int32, m.NV())
	for _, e := range m.Edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	return deg
}
