package smsolver

import (
	"fmt"
	"testing"

	"eul3d/internal/euler"
	"eul3d/internal/meshgen"
)

// BenchmarkStep measures one full RK time step of the pool engine per
// worker count. With the persistent pool every iteration should report
// 0 allocs/op; `make bench` runs cmd/benchsm for the JSON artifact.
func BenchmarkStep(b *testing.B) {
	m, err := meshgen.Channel(meshgen.DefaultChannel(24, 12, 8, 17))
	if err != nil {
		b.Fatal(err)
	}
	p := euler.DefaultParams(0.675, 0)
	for _, nw := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", nw), func(b *testing.B) {
			s, err := New(m, p, nw)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			w := make([]euler.State, m.NV())
			s.InitUniform(w)
			s.Step(w, nil) // warm the worker stacks
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step(w, nil)
			}
		})
	}
}
