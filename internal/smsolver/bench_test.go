package smsolver

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"eul3d/internal/euler"
	"eul3d/internal/meshgen"
)

// BenchmarkStep measures one full RK time step of the pool engine per
// worker count. With the persistent pool every iteration should report
// 0 allocs/op; `make bench` runs cmd/benchsm for the JSON artifact.
func BenchmarkStep(b *testing.B) {
	m, err := meshgen.Channel(meshgen.DefaultChannel(24, 12, 8, 17))
	if err != nil {
		b.Fatal(err)
	}
	p := euler.DefaultParams(0.675, 0)
	for _, nw := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", nw), func(b *testing.B) {
			s, err := New(m, p, nw)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			w := make([]euler.State, m.NV())
			s.InitUniform(w)
			s.Step(w, nil) // warm the worker stacks
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step(w, nil)
			}
		})
	}
}

// BenchmarkNormPartials measures the cost of concurrent writers
// accumulating into adjacent norm-block partials in the packed layout
// (plain []float64 — partials of neighbouring blocks share cache lines,
// so writers at a chunk boundary false-share) against the padded
// []normSlot layout the engine uses (one 64-byte line per partial).
// On a multi-core host the packed variant degrades as GOMAXPROCS grows;
// with one core the two coincide — the bench records the layout cost
// either way.
func BenchmarkNormPartials(b *testing.B) {
	nw := runtime.GOMAXPROCS(0)
	const blocksPerWorker = 4

	b.Run("packed", func(b *testing.B) {
		partial := make([]float64, nw*blocksPerWorker)
		var wg sync.WaitGroup
		b.ResetTimer()
		for wk := 0; wk < nw; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				base := wk * blocksPerWorker
				for it := 0; it < b.N; it++ {
					for blk := 0; blk < blocksPerWorker; blk++ {
						partial[base+blk] += 1.5
					}
				}
			}(wk)
		}
		wg.Wait()
		benchSink = partial[0]
	})

	b.Run("padded", func(b *testing.B) {
		partial := make([]normSlot, nw*blocksPerWorker)
		var wg sync.WaitGroup
		b.ResetTimer()
		for wk := 0; wk < nw; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				base := wk * blocksPerWorker
				for it := 0; it < b.N; it++ {
					for blk := 0; blk < blocksPerWorker; blk++ {
						partial[base+blk].v += 1.5
					}
				}
			}(wk)
		}
		wg.Wait()
		benchSink = partial[0].v
	})
}

// benchSink defeats dead-code elimination of the benchmark accumulators.
var benchSink float64
