package smsolver

import (
	"fmt"
	"runtime"
	"time"

	"eul3d/internal/color"
	"eul3d/internal/euler"
	"eul3d/internal/flops"
	"eul3d/internal/mesh"
	"eul3d/internal/multigrid"
	"eul3d/internal/perf"
	"eul3d/internal/trace"
)

// MGLevel is one grid of the pooled multigrid sequence: the FAS state
// arrays plus the transfer tables linking it to the next-finer level.
type MGLevel struct {
	W       []euler.State // current solution
	WSaved  []euler.State // transferred solution w' (for corrections)
	Forcing []euler.State // FAS forcing function P (nil on the finest grid)
	Corr    []euler.State // prolonged-correction scratch (own mesh size)

	eng *levelEngine

	// restrict locates this level's vertices in the next-finer mesh,
	// prolong the finer mesh's vertices in this one, exactly as in the
	// serial multigrid; scatter is prolong's transpose regrouped by
	// destination vertex (multigrid.ScatterPlan) so the conservative
	// residual restriction parallelizes with disjoint writes per chunk.
	// All nil on the finest level.
	restrict *multigrid.TransferOp
	prolong  *multigrid.TransferOp
	scatter  *multigrid.ScatterPlan
}

// Colorings carries optional precomputed edge and boundary-face colorings
// for one level of NewMultigridColored.
type Colorings struct {
	Edges *color.Coloring
	Faces *color.Coloring
}

// Multigrid drives FAS multigrid cycles with every level's RK stages,
// residual evaluations, dissipation sweeps and inter-grid transfers
// executed on one persistent worker pool: the same N parked workers serve
// all grids through per-level color/chunk tables. Results are bitwise
// identical across worker counts (fixed color order, disjoint writes per
// chunk, block-ordered norm reduction), and a steady-state Cycle performs
// zero heap allocations.
type Multigrid struct {
	Gamma    int // cycle index: 1 = V-cycle, 2 = W-cycle
	NWorkers int

	levels []*MGLevel
	eng    engine

	// Instrumentation: one accumulator slot quadruple per level
	// ("L<l> steps/residuals/transfers/corrections"); stepMap[l] collapses
	// the engine's six step phases onto level l's steps slot.
	stepMap    [][nPhases]int
	slotPh     []trace.PhaseID // trace phase per accumulator slot (traced only)
	phLevel    trace.PhaseID   // level-entry instant (arg = level)
	stepFl     []int64         // one time step on level l
	residFl    []int64         // one residual evaluation on level l
	restrictFl []int64         // down-transfer around the l/l+1 pair
	prolongFl  []int64         // up-transfer around the l/l+1 pair
	corrFl     []int64         // correction smoothing + update on level l
	cycleFl    int64           // analytic flops of one full cycle
}

// NewMultigrid builds a pooled multigrid solver over meshes (finest
// first) with cycle index gamma (1 for V, 2 for W) and nworkers workers
// (<= 0 selects GOMAXPROCS). The transfer operators and their
// destination-grouped scatter plans are computed here, as are every
// level's colorings and chunk tables.
func NewMultigrid(meshes []*mesh.Mesh, p euler.Params, gamma, nworkers int) (*Multigrid, error) {
	return NewMultigridColored(meshes, p, gamma, nworkers, nil)
}

// NewMultigridColored is NewMultigrid with caller-provided per-level
// colorings (nil entries select the greedy ones) — used with
// color-canonical mesh sequences for bitwise conformance against the
// serial multigrid.
func NewMultigridColored(meshes []*mesh.Mesh, p euler.Params, gamma, nworkers int, cols []Colorings) (*Multigrid, error) {
	if len(meshes) == 0 {
		return nil, fmt.Errorf("smsolver: no meshes")
	}
	if gamma < 1 {
		return nil, fmt.Errorf("smsolver: cycle index must be >= 1, got %d", gamma)
	}
	if cols != nil && len(cols) != len(meshes) {
		return nil, fmt.Errorf("smsolver: %d colorings for %d meshes", len(cols), len(meshes))
	}
	if nworkers <= 0 {
		nworkers = runtime.GOMAXPROCS(0)
	}
	mg := &Multigrid{Gamma: gamma, NWorkers: nworkers}
	for l, m := range meshes {
		var ec, fc *color.Coloring
		if cols != nil {
			ec, fc = cols[l].Edges, cols[l].Faces
		}
		le, err := newLevelEngine(m, p, nworkers, ec, fc)
		if err != nil {
			return nil, fmt.Errorf("smsolver: level %d: %w", l, err)
		}
		nv := m.NV()
		lev := &MGLevel{
			W:      make([]euler.State, nv),
			WSaved: make([]euler.State, nv),
			Corr:   make([]euler.State, nv),
			eng:    le,
		}
		if l > 0 {
			lev.Forcing = make([]euler.State, nv)
			lev.restrict, err = multigrid.BuildTransfer(m, meshes[l-1])
			if err != nil {
				return nil, fmt.Errorf("smsolver: restrict %d->%d: %w", l-1, l, err)
			}
			lev.prolong, err = multigrid.BuildTransfer(meshes[l-1], m)
			if err != nil {
				return nil, fmt.Errorf("smsolver: prolong %d->%d: %w", l, l-1, err)
			}
			lev.scatter = lev.prolong.Plan(nv)
		}
		mg.levels = append(mg.levels, lev)
	}

	// Per-level accumulator slots and analytic flop charges, mirroring the
	// serial multigrid's but kept per level for the -stats breakdown.
	n := len(mg.levels)
	names := make([]string, 0, 4*n)
	mg.stepMap = make([][nPhases]int, n)
	mg.stepFl = make([]int64, n)
	mg.residFl = make([]int64, n)
	mg.restrictFl = make([]int64, n)
	mg.prolongFl = make([]int64, n)
	mg.corrFl = make([]int64, n)
	for l, lev := range mg.levels {
		names = append(names,
			fmt.Sprintf("L%d steps", l), fmt.Sprintf("L%d residuals", l),
			fmt.Sprintf("L%d transfers", l), fmt.Sprintf("L%d corrections", l))
		for ph := range mg.stepMap[l] {
			mg.stepMap[l][ph] = 4 * l
		}
		m := lev.eng.d.M
		nv, ne, nbf := int64(m.NV()), int64(m.NE()), int64(len(m.BFaces))
		mg.stepFl[l] = flops.Step(nv, ne, nbf, len(p.Stages), euler.DissipStages, p.NSmooth)
		mg.residFl[l] = flops.Residual(nv, ne, nbf)
		mg.corrFl[l] = int64(p.NSmooth)*(ne*flops.SmoothEdge+nv*flops.SmoothVert) + nv*flops.UpdateVert
		if l > 0 {
			nvFine := int64(meshes[l-1].NV())
			mg.restrictFl[l-1] = (nv + nvFine) * flops.XferVert // variables down + residual scatter
			mg.prolongFl[l-1] = nvFine * flops.XferVert         // correction up
		}
	}
	visits := mg.visitCounts()
	for l := range mg.levels {
		mg.cycleFl += int64(visits[l]) * mg.stepFl[l]
		if l < n-1 {
			mg.cycleFl += int64(visits[l]) *
				(mg.residFl[l] + mg.residFl[l+1] + mg.restrictFl[l] + mg.prolongFl[l] + mg.corrFl[l])
		}
	}

	mg.eng.init(nworkers, perf.NewAccum(names...))
	runtime.AddCleanup(mg, func(p *pool) { p.shutdown() }, mg.eng.pool)
	mg.InitUniform()
	return mg, nil
}

// Close parks the engine permanently; idempotent and optional (the
// garbage collector releases the workers of an unreferenced Multigrid).
func (mg *Multigrid) Close() {
	if mg.eng.pool != nil {
		mg.eng.pool.shutdown()
		mg.eng.pool = nil
	}
}

// SetTrace attaches a flight-recorder tracer to the pooled engine: worker
// tracks carry kernel and barrier spans across every level (the kernel
// span's argument is the color group; the level shows in the "phases"
// track), and the orchestrator track carries the per-level accumulator
// phases ("L<l> steps/residuals/transfers/corrections") plus a level-entry
// instant per cycle visit. Call before the first Cycle.
func (mg *Multigrid) SetTrace(tr *trace.Tracer) {
	if tr == nil {
		return
	}
	mg.eng.attachTrace(tr, "")
	names := mg.eng.acc.Names()
	mg.slotPh = make([]trace.PhaseID, len(names))
	for i, n := range names {
		mg.slotPh[i] = tr.Phase(n)
	}
	mg.phLevel = tr.Phase("enter-level")
}

// Fine returns the finest level.
func (mg *Multigrid) Fine() *MGLevel { return mg.levels[0] }

// NumLevels returns the number of grids in the sequence.
func (mg *Multigrid) NumLevels() int { return len(mg.levels) }

// InitUniform sets every level to the freestream state.
func (mg *Multigrid) InitUniform() {
	for _, lev := range mg.levels {
		lev.eng.d.InitUniform(lev.W)
	}
}

// Stats snapshots the per-level per-phase wall clock and analytic flop
// counts accumulated over all cycles so far.
func (mg *Multigrid) Stats() perf.Stats { return mg.eng.acc.Stats() }

// CycleFlops returns the analytic flop count of one full cycle (the sum
// of every level visit's step, residual, transfer and correction work).
func (mg *Multigrid) CycleFlops() int64 { return mg.cycleFl }

// WorkUnits returns the per-cycle computational work in units of
// fine-grid time-steps, weighted by edge count — same measure as the
// serial multigrid's.
func (mg *Multigrid) WorkUnits() float64 {
	visits := mg.visitCounts()
	fine := float64(mg.levels[0].eng.d.M.NE())
	wu := 0.0
	for l, lev := range mg.levels {
		wu += float64(visits[l]) * float64(lev.eng.d.M.NE()) / fine
	}
	return wu
}

// visitCounts returns how many time-steps each level performs in one cycle.
func (mg *Multigrid) visitCounts() []int {
	n := len(mg.levels)
	counts := make([]int, n)
	var walk func(l, mult int)
	walk = func(l, mult int) {
		counts[l] += mult
		if l == n-1 {
			return
		}
		v := mg.Gamma
		if l+1 == n-1 {
			v = 1
		}
		walk(l+1, mult*v)
	}
	walk(0, 1)
	return counts
}

// tick charges the time since *t to accumulator slot with fl analytic
// flops and advances *t.
func (mg *Multigrid) tick(slot int, fl int64, t *time.Time) {
	now := time.Now()
	mg.eng.acc.Add(slot, now.Sub(*t), fl)
	if mg.eng.et != nil {
		mg.eng.et.orch.Span(mg.slotPh[slot], *t, now, 0)
	}
	*t = now
}

// Cycle performs one multigrid cycle starting on the finest grid and
// returns the fine-grid residual norm measured at the first RK stage. At
// steady state it performs zero heap allocations.
func (mg *Multigrid) Cycle() float64 {
	return mg.cycle(0)
}

// cycle is the recursive FAS driver, the exact arithmetic of
// multigrid.Solver.cycle with every piece dispatched to the worker pool:
// one pooled time-step, pooled residual + forcing, chunked restriction
// (interp + destination-grouped scatter), gamma recursive visits, and the
// chunked prolongation with pooled correction smoothing.
func (mg *Multigrid) cycle(l int) float64 {
	lev := mg.levels[l]
	e := &mg.eng
	if e.et != nil {
		e.et.orch.Instant(mg.phLevel, time.Now(), int64(l))
	}
	e.phaseMap = mg.stepMap[l]
	norm := e.step(lev.eng, lev.W, lev.Forcing)

	if l == len(mg.levels)-1 {
		return norm
	}
	next := mg.levels[l+1]
	t := time.Now()

	// Residual of the current (post-step) solution, including forcing:
	// this is what the coarse grid must reproduce.
	e.residual(lev.eng, lev.W, lev.Forcing)
	mg.tick(4*l+1, mg.residFl[l], &t)

	// Transfer flow variables (interpolation) and residuals (conservative
	// destination-grouped scatter) to the coarse grid, repairing the
	// restricted states (and snapshotting them into WSaved) before the
	// coarse grid evaluates sound speeds on them.
	e.interp(next.restrict, lev.W, next.W, next.eng.vertSpans, next.eng.vertActive)
	e.vertexOp(tRepairSave, next.eng, next.W, next.WSaved, nil)
	e.scatter(next.scatter, lev.eng.res, next.Forcing, next.eng.vertSpans, next.eng.vertActive) // next.Forcing := R'
	mg.tick(4*l+2, mg.restrictFl[l], &t)

	// Forcing P = R' - R(w').
	e.residual(next.eng, next.W, nil)
	e.vertexOp(tForcingSub, next.eng, next.Forcing, next.eng.res, nil)
	mg.tick(4*(l+1)+1, mg.residFl[l+1], &t)

	// Coarse-grid visits: gamma = 1 gives a V-cycle, 2 a W-cycle.
	visits := mg.Gamma
	if l+1 == len(mg.levels)-1 {
		visits = 1 // revisiting the coarsest grid twice in a row is idle
	}
	for v := 0; v < visits; v++ {
		mg.cycle(l + 1) // recursion charges its own phases
	}
	t = time.Now()

	// Prolong the coarse-grid correction back to this level.
	e.vertexOp(tCorrDelta, next.eng, next.W, next.WSaved, next.eng.res)
	e.interp(next.prolong, next.eng.res, lev.Corr, lev.eng.vertSpans, lev.eng.vertActive)
	mg.tick(4*l+2, mg.prolongFl[l], &t)

	// Smooth the prolonged correction (the implicit averaging operator
	// doubles as the correction smoother) and apply it under the
	// positivity guard.
	e.smooth(lev.eng, lev.Corr)
	e.vertexOp(tApplyCorr, lev.eng, lev.W, lev.Corr, nil)
	mg.tick(4*l+3, mg.corrFl[l], &t)
	return norm
}
