package smsolver

import (
	"fmt"

	"eul3d/internal/color"
	"eul3d/internal/euler"
	"eul3d/internal/mesh"
)

// Rebuild retargets the solver at a new mesh — in practice one produced by
// selective refinement of the current mesh — without tearing the engine
// down. It is the incremental path the adaptation driver takes between
// epochs, and it is cheap where a fresh NewColored is not:
//
//   - The edge coloring is extended (color.ExtendGreedy), not recomputed:
//     every surviving edge keeps its old color and only edges touching a
//     new midpoint vertex pay the greedy search. The extension depends only
//     on the meshes and the previous coloring, so rebuilt engines stay
//     bitwise deterministic across worker counts.
//   - The parked worker pool is untouched: no goroutines are spawned or
//     joined, and the engine's perf accumulator keeps accumulating.
//   - The discretization scratch, SoA blocks, residual array and norm
//     partials grow in place when capacity (reserved with 25% headroom)
//     allows; after the first epoch or two of an adaptation run these are
//     pure re-slices.
//   - No coloring verification pass runs — ExtendGreedy's output is
//     correct by construction (unit-tested), unlike caller-provided
//     colorings in NewColored.
//
// Only the boundary-face coloring and the chunk tables are rebuilt from
// scratch; both are linear in the mesh. Rebuild returns the number of
// edges that kept their previous color. On error the solver is unchanged
// and still valid on its old mesh.
func (s *Solver) Rebuild(m *mesh.Mesh, p euler.Params) (reusedColors int, err error) {
	le := s.le
	old := le.d.M
	ec, reused, err := color.ExtendGreedy(m.NV(), m.Edges, le.edgeColors, old.Edges)
	if err != nil {
		return 0, fmt.Errorf("smsolver: rebuild edge coloring: %w", err)
	}
	faces := make([][3]int32, len(m.BFaces))
	for i := range m.BFaces {
		faces[i] = m.BFaces[i].V
	}
	fc, err := color.GreedyFaces(m.NV(), faces)
	if err != nil {
		return 0, fmt.Errorf("smsolver: rebuild face coloring: %w", err)
	}

	// Past this point nothing can fail: mutate the level engine in place.
	le.d.Retarget(m, p)
	le.edgeColors, le.faceColors = ec, fc

	nv := m.NV()
	le.wS.Resize(nv)
	le.w0S.Resize(nv)
	le.convS.Resize(nv)
	le.dissS.Resize(nv)
	le.resS.Resize(nv)
	le.laplS.Resize(nv)
	le.smoothS.Resize(nv)
	le.rhsS.Resize(nv)
	// Resize preserves no contents; the accumulators among these are zeroed
	// by the fused stage sweeps before every read, but clear them anyway so
	// a rebuild never leaks state from the previous mesh.
	for _, b := range []*euler.StateSoA{le.wS, le.w0S, le.convS, le.dissS, le.resS, le.laplS, le.smoothS, le.rhsS} {
		b.ZeroRange(0, nv)
	}
	if cap(le.res) < nv {
		le.res = make([]euler.State, nv, nv+nv/4)
	} else {
		le.res = le.res[:nv]
	}
	nb := (nv + normBlock - 1) / normBlock
	if cap(le.normPartial) < nb {
		le.normPartial = make([]normSlot, nb, nb+nb/4)
	} else {
		le.normPartial = le.normPartial[:nb]
	}

	spanW := s.NWorkers
	if m.NE() < SerialCutoffEdges {
		spanW = 1
	}
	le.vertSpans, le.vertActive = buildSpans(nv, spanW)
	le.normSpans, le.normActive = buildSpans(nb, spanW)
	le.edgeSpans, le.edgeActive = colorSpans(ec, spanW)
	le.faceSpans, le.faceActive = colorSpans(fc, spanW)
	le.chargeFlops()
	return reused, nil
}
