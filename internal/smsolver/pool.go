package smsolver

import (
	"sync"
	"sync/atomic"
)

// This file is the persistent worker-pool engine: N-1 long-lived goroutines
// parked on buffered wake channels, driven through a lightweight fork/join
// barrier, plus the prebuilt chunk tables that turn every colored loop into
// a table lookup. The seed implementation paid a goroutine spawn and a
// sync.WaitGroup fork/join for every color group of every kernel of every
// RK stage — thousands of launches per time step; here a parallel region is
// one channel send per woken worker, one atomic decrement per worker, and
// one channel receive for the join, with zero allocations.

// span is a half-open index range [lo,hi) assigned to one worker.
type span struct{ lo, hi int }

// minChunk is the smallest amount of per-worker work worth a wakeup: loops
// shorter than minChunk*workers run on fewer workers (down to inline
// execution by the caller), which keeps the small tail color groups from
// paying barrier latency for a handful of edges. Chunking never affects
// results — within a color group no two elements share a vertex.
const minChunk = 256

// buildSpans splits [0,n) into contiguous chunks for up to nw workers and
// returns the per-worker spans (always nw entries; trailing ones may be
// empty) and the number of workers that actually receive work. The split is
// balanced by element count: every active worker gets ⌊n/active⌋ or
// ⌈n/active⌉ elements (the remainder spread one-per-worker from the front),
// rather than the ceil-sized uniform index ranges the engine used to cut,
// which could leave the last worker with an arbitrarily short tail chunk —
// at high worker counts on per-color tables that tail imbalance is pure
// barrier wait. Chunk boundaries never affect results: within a color group
// no two elements share a vertex.
func buildSpans(n, nw int) ([]span, int) {
	active := n / minChunk
	if active < 1 {
		active = 1
	}
	if active > nw {
		active = nw
	}
	spans := make([]span, nw)
	q, r := n/active, n%active
	lo := 0
	for w := 0; w < active; w++ {
		hi := lo + q
		if w < r {
			hi++
		}
		spans[w] = span{lo, hi}
		lo = hi
	}
	return spans, active
}

// pool is the fork/join barrier itself. It deliberately holds no reference
// to the Solver between forks (fn is cleared after every join), so a Solver
// abandoned without Close becomes unreachable and its runtime cleanup can
// shut the workers down.
type pool struct {
	wake    []chan struct{} // one per worker 1..nw-1, buffered
	done    chan struct{}   // signalled by the last finishing worker
	quit    chan struct{}   // closed on shutdown
	pending atomic.Int32
	fn      func(worker int)
	stop    sync.Once
}

// newPool starts nw-1 parked workers (the caller is worker 0).
func newPool(nw int) *pool {
	p := &pool{
		wake: make([]chan struct{}, nw),
		done: make(chan struct{}, 1),
		quit: make(chan struct{}),
	}
	for i := 1; i < nw; i++ {
		p.wake[i] = make(chan struct{}, 1)
		go p.worker(i)
	}
	return p
}

func (p *pool) worker(id int) {
	for {
		select {
		case <-p.quit:
			return
		case <-p.wake[id]:
			p.fn(id)
			if p.pending.Add(-1) == 0 {
				p.done <- struct{}{}
			}
		}
	}
}

// fork runs fn(0..active-1), executing fn(0) on the calling goroutine, and
// returns after every worker has finished. The caller must publish the job
// descriptor before forking; the channel operations and the atomic join
// counter provide the happens-before edges in both directions.
func (p *pool) fork(fn func(int), active int) {
	if active <= 1 {
		fn(0)
		return
	}
	p.fn = fn
	p.pending.Store(int32(active - 1))
	for i := 1; i < active; i++ {
		p.wake[i] <- struct{}{}
	}
	fn(0)
	<-p.done
	p.fn = nil
}

// shutdown terminates the workers; idempotent.
func (p *pool) shutdown() { p.stop.Do(func() { close(p.quit) }) }
