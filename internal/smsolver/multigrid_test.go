package smsolver

import (
	"runtime"
	"testing"

	"eul3d/internal/euler"
	"eul3d/internal/mesh"
	"eul3d/internal/meshgen"
	"eul3d/internal/multigrid"
)

func testSequence(t *testing.T, levels int) []*mesh.Mesh {
	t.Helper()
	meshes, err := meshgen.Sequence(meshgen.DefaultChannel(12, 8, 6, 17), levels)
	if err != nil {
		t.Fatal(err)
	}
	return meshes
}

// Pooled multigrid must be bitwise identical for every worker count, for
// both V- and W-cycles: fixed color order, disjoint writes per chunk, and
// the block-ordered norm reduction make the chunking invisible.
func TestMultigridBitwiseAcrossWorkers(t *testing.T) {
	meshes := testSequence(t, 3)
	p := euler.DefaultParams(0.675, 0)
	for _, gamma := range []int{1, 2} {
		var ref []euler.State
		var refNorms []float64
		for _, nw := range []int{1, 2, 3, runtime.GOMAXPROCS(0), 8} {
			mg, err := NewMultigrid(meshes, p, gamma, nw)
			if err != nil {
				t.Fatal(err)
			}
			var norms []float64
			for c := 0; c < 4; c++ {
				norms = append(norms, mg.Cycle())
			}
			w := mg.Fine().W
			if ref == nil {
				ref = append([]euler.State(nil), w...)
				refNorms = norms
				mg.Close()
				continue
			}
			for i := range w {
				if w[i] != ref[i] {
					t.Fatalf("gamma=%d nworkers=%d: vertex %d differs: %v vs %v", gamma, nw, i, w[i], ref[i])
				}
			}
			for c := range norms {
				if norms[c] != refNorms[c] {
					t.Fatalf("gamma=%d nworkers=%d: cycle %d norm %v vs %v", gamma, nw, c, norms[c], refNorms[c])
				}
			}
			mg.Close()
		}
	}
}

// Against the serial multigrid — which accumulates in raw edge order —
// the pooled cycles agree to roundoff on an arbitrary mesh sequence.
func TestMultigridMatchesSerialToRoundoff(t *testing.T) {
	meshes := testSequence(t, 3)
	p := euler.DefaultParams(0.675, 0)
	serial, err := multigrid.New(meshes, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	mg, err := NewMultigrid(meshes, p, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer mg.Close()
	for c := 0; c < 4; c++ {
		ns := serial.Cycle()
		np := mg.Cycle()
		if rel := abs(ns-np) / ns; rel > 1e-9 {
			t.Fatalf("cycle %d: serial norm %v pooled %v rel %v", c, ns, np, rel)
		}
	}
	ws, wp := serial.Fine().W, mg.Fine().W
	for i := range ws {
		for k := 0; k < euler.NVar; k++ {
			d := abs(ws[i][k] - wp[i][k])
			if d > 1e-9*(abs(ws[i][k])+1) {
				t.Fatalf("vertex %d var %d: serial %v pooled %v", i, k, ws[i][k], wp[i][k])
			}
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Freestream must be preserved exactly through pooled cycles on an
// unperturbed channel (zero residual up to the scheme's own roundoff).
func TestMultigridFreestreamPreserved(t *testing.T) {
	spec := meshgen.DefaultChannel(8, 6, 5, 3)
	spec.BumpHeight = 0
	meshes, err := meshgen.Sequence(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := euler.DefaultParams(0.5, 0)
	mg, err := NewMultigrid(meshes, p, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer mg.Close()
	for c := 0; c < 3; c++ {
		mg.Cycle()
	}
	free := p.Freestream
	for i, w := range mg.Fine().W {
		for k := 0; k < euler.NVar; k++ {
			if abs(w[k]-free[k]) > 1e-10*(abs(free[k])+1) {
				t.Fatalf("vertex %d var %d drifted: %v vs %v", i, k, w[k], free[k])
			}
		}
	}
}

// A steady-state pooled multigrid cycle must not allocate: all scratch,
// chunk tables and transfer plans are owned by the solver, and the
// fork/join barrier runs on prebuilt channels.
func TestMultigridCycleZeroAllocs(t *testing.T) {
	meshes := testSequence(t, 2)
	p := euler.DefaultParams(0.675, 0)
	for _, gamma := range []int{1, 2} {
		mg, err := NewMultigrid(meshes, p, gamma, 2)
		if err != nil {
			t.Fatal(err)
		}
		mg.Cycle() // warm up (lazy runtime state, timer paths)
		allocs := testing.AllocsPerRun(5, func() {
			mg.Cycle()
		})
		mg.Close()
		if allocs != 0 {
			t.Fatalf("gamma=%d: steady-state Cycle allocates %.1f times", gamma, allocs)
		}
	}
}

// W-cycles revisit coarse levels with the same parked workers; run a few
// under the race detector (make race) with the full worker set.
func TestMultigridWCycleStress(t *testing.T) {
	meshes := testSequence(t, 3)
	p := euler.DefaultParams(0.675, 0)
	nw := runtime.GOMAXPROCS(0)
	if nw < 4 {
		nw = 4
	}
	mg, err := NewMultigrid(meshes, p, 2, nw)
	if err != nil {
		t.Fatal(err)
	}
	defer mg.Close()
	last := 0.0
	for c := 0; c < 6; c++ {
		last = mg.Cycle()
	}
	if last <= 0 {
		t.Fatalf("expected positive residual norm, got %v", last)
	}
}

// Per-level stats must carry the analytic flop charges for every level.
func TestMultigridStatsPerLevel(t *testing.T) {
	meshes := testSequence(t, 2)
	p := euler.DefaultParams(0.675, 0)
	mg, err := NewMultigrid(meshes, p, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer mg.Close()
	mg.Cycle()
	st := mg.Stats()
	if len(st.Phases) != 4*mg.NumLevels() {
		t.Fatalf("expected %d phases, got %d", 4*mg.NumLevels(), len(st.Phases))
	}
	wantPositive := map[string]bool{"L0 steps": true, "L0 residuals": true, "L0 transfers": true,
		"L0 corrections": true, "L1 steps": true}
	for _, ph := range st.Phases {
		if wantPositive[ph.Name] && ph.Flops <= 0 {
			t.Fatalf("phase %q has no flop charge", ph.Name)
		}
	}
	if st.Total().Flops != mg.CycleFlops() {
		t.Fatalf("one cycle charged %d flops, CycleFlops says %d", st.Total().Flops, mg.CycleFlops())
	}
}

func TestMultigridValidation(t *testing.T) {
	meshes := testSequence(t, 2)
	p := euler.DefaultParams(0.675, 0)
	if _, err := NewMultigrid(nil, p, 1, 1); err == nil {
		t.Fatal("expected error for empty mesh list")
	}
	if _, err := NewMultigrid(meshes, p, 0, 1); err == nil {
		t.Fatal("expected error for gamma 0")
	}
	if _, err := NewMultigridColored(meshes, p, 1, 1, make([]Colorings, 1)); err == nil {
		t.Fatal("expected error for coloring count mismatch")
	}
}

func TestMultigridCloseIdempotent(t *testing.T) {
	meshes := testSequence(t, 2)
	mg, err := NewMultigrid(meshes, euler.DefaultParams(0.675, 0), 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	mg.Cycle()
	mg.Close()
	mg.Close()
}
