package smsolver

import (
	"math"
	"runtime"
	"testing"

	"eul3d/internal/euler"
	"eul3d/internal/mesh"
	"eul3d/internal/meshgen"
)

func testMesh(t *testing.T) *mesh.Mesh {
	t.Helper()
	m, err := meshgen.Channel(meshgen.DefaultChannel(12, 8, 6, 17))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBitwiseIdenticalAcrossWorkers(t *testing.T) {
	m := testMesh(t)
	p := euler.DefaultParams(0.675, 0)

	var ref []euler.State
	var refNorms []float64
	for _, nw := range []int{1, 2, 3, runtime.GOMAXPROCS(0), 8} {
		s, err := New(m, p, nw)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		w := make([]euler.State, m.NV())
		s.InitUniform(w)
		var norms []float64
		for c := 0; c < 5; c++ {
			norms = append(norms, s.Step(w, nil))
		}
		if ref == nil {
			ref = w
			refNorms = norms
			continue
		}
		for i := range w {
			if w[i] != ref[i] {
				t.Fatalf("nworkers=%d: vertex %d differs: %v vs %v", nw, i, w[i], ref[i])
			}
		}
		for c := range norms {
			if norms[c] != refNorms[c] {
				t.Fatalf("nworkers=%d: cycle %d norm %v vs %v", nw, c, norms[c], refNorms[c])
			}
		}
	}
}

func TestMatchesSequentialToRoundoff(t *testing.T) {
	m := testMesh(t)
	p := euler.DefaultParams(0.675, 0)

	seq := euler.NewDisc(m, p)
	wseq := make([]euler.State, m.NV())
	seq.InitUniform(wseq)
	ws := euler.NewStepWorkspace(m.NV())

	par, err := New(m, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	wpar := make([]euler.State, m.NV())
	par.InitUniform(wpar)

	for c := 0; c < 10; c++ {
		ns := seq.Step(wseq, nil, ws)
		np := par.Step(wpar, nil)
		if rel := math.Abs(ns-np) / (1e-300 + ns); rel > 1e-10 {
			t.Fatalf("cycle %d: norms diverge: %v vs %v", c, ns, np)
		}
	}
	worst := 0.0
	for i := range wseq {
		for k := 0; k < euler.NVar; k++ {
			d := math.Abs(wseq[i][k]-wpar[i][k]) / (1 + math.Abs(wseq[i][k]))
			worst = math.Max(worst, d)
		}
	}
	if worst > 1e-10 {
		t.Errorf("solutions diverge beyond roundoff: %g", worst)
	}
}

func TestFreestreamPreserved(t *testing.T) {
	spec := meshgen.DefaultChannel(8, 5, 4, 3)
	spec.BumpHeight = 0
	m, err := meshgen.Channel(spec)
	if err != nil {
		t.Fatal(err)
	}
	p := euler.DefaultParams(0.5, 0)
	s, err := New(m, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := make([]euler.State, m.NV())
	s.InitUniform(w)
	if norm := s.Step(w, nil); norm > 1e-11 {
		t.Errorf("freestream residual %g", norm)
	}
	for i := range w {
		for k := 0; k < euler.NVar; k++ {
			if math.Abs(w[i][k]-p.Freestream[k]) > 1e-10 {
				t.Fatalf("freestream perturbed at vertex %d", i)
			}
		}
	}
}

func TestNumColorsReported(t *testing.T) {
	m := testMesh(t)
	s, err := New(m, euler.DefaultParams(0.5, 0), 0) // 0 -> GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ec, fc := s.NumColors()
	// The paper: "the typical number of groups is not high, say 20 to 30".
	if ec < 10 || ec > 64 {
		t.Errorf("edge colors = %d", ec)
	}
	if fc < 2 || fc > 32 {
		t.Errorf("face colors = %d", fc)
	}
	if s.NWorkers < 1 {
		t.Errorf("workers = %d", s.NWorkers)
	}
}

func TestSmoothingDisabledPath(t *testing.T) {
	m := testMesh(t)
	p := euler.DefaultParams(0.675, 0)
	p.EpsSmooth = 0
	p.NSmooth = 0
	s, err := New(m, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := make([]euler.State, m.NV())
	s.InitUniform(w)
	if norm := s.Step(w, nil); math.IsNaN(norm) {
		t.Error("NaN norm with smoothing disabled")
	}
}

// TestOddSmoothingSweeps exercises the copy-back path of the pooled
// smoother (an odd sweep count leaves the result in the ping-pong scratch)
// and checks it still matches the sequential solver to roundoff.
func TestOddSmoothingSweeps(t *testing.T) {
	m := testMesh(t)
	p := euler.DefaultParams(0.675, 0)
	p.NSmooth = 3

	seq := euler.NewDisc(m, p)
	wseq := make([]euler.State, m.NV())
	seq.InitUniform(wseq)
	ws := euler.NewStepWorkspace(m.NV())

	par, err := New(m, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	wpar := make([]euler.State, m.NV())
	par.InitUniform(wpar)

	for c := 0; c < 5; c++ {
		ns := seq.Step(wseq, nil, ws)
		np := par.Step(wpar, nil)
		if rel := math.Abs(ns-np) / (1e-300 + ns); rel > 1e-10 {
			t.Fatalf("cycle %d: norms diverge: %v vs %v", c, ns, np)
		}
	}
}

// TestStepZeroAllocs asserts the acceptance criterion of the pool engine:
// a steady-state Step allocates nothing, with the fork/join barrier and
// every chunk table prebuilt in New.
func TestStepZeroAllocs(t *testing.T) {
	m := testMesh(t)
	s, err := New(m, euler.DefaultParams(0.675, 0), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := make([]euler.State, m.NV())
	s.InitUniform(w)
	forcing := make([]euler.State, m.NV())
	s.Step(w, nil) // warm the worker stacks
	if n := testing.AllocsPerRun(5, func() { s.Step(w, forcing) }); n != 0 {
		t.Errorf("Step allocates %v times per call, want 0", n)
	}
}

// TestEmptyMesh: a degenerate (zero-vertex) mesh must construct and step
// without panicking — the smoother used to index &res[0] unconditionally.
func TestEmptyMesh(t *testing.T) {
	m := &mesh.Mesh{}
	if err := m.Finish(); err != nil {
		t.Fatal(err)
	}
	s, err := New(m, euler.DefaultParams(0.5, 0), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var w []euler.State
	s.InitUniform(w)
	if norm := s.Step(w, nil); norm != 0 {
		t.Errorf("empty-mesh step norm = %v, want 0", norm)
	}
}

// TestCloseIdempotent: Close twice is fine, and a closed solver keeps its
// already-computed state readable.
func TestCloseIdempotent(t *testing.T) {
	m := testMesh(t)
	s, err := New(m, euler.DefaultParams(0.675, 0), 2)
	if err != nil {
		t.Fatal(err)
	}
	w := make([]euler.State, m.NV())
	s.InitUniform(w)
	s.Step(w, nil)
	s.Close()
	s.Close()
	if st := s.Stats(); st.Total().Seconds <= 0 {
		t.Error("no wall clock accumulated before Close")
	}
}

// TestStatsAccumulate: the instrumentation layer charges every phase with
// time and analytic flops after a few steps.
func TestStatsAccumulate(t *testing.T) {
	m := testMesh(t)
	s, err := New(m, euler.DefaultParams(0.675, 0), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := make([]euler.State, m.NV())
	s.InitUniform(w)
	for c := 0; c < 3; c++ {
		s.Step(w, nil)
	}
	st := s.Stats()
	if len(st.Phases) == 0 {
		t.Fatal("no phases reported")
	}
	for _, p := range st.Phases {
		if p.Flops <= 0 {
			t.Errorf("phase %s has no flops charged", p.Name)
		}
	}
	if tot := st.Total(); tot.Seconds <= 0 || tot.Mflops() <= 0 {
		t.Errorf("implausible total: %+v", tot)
	}
	if st.String() == "" {
		t.Error("empty stats rendering")
	}
}
