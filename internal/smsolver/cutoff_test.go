package smsolver

import (
	"testing"

	"eul3d/internal/euler"
)

// withCutoff runs fn with SerialCutoffEdges pinned to the given value and
// restores the default afterwards.
func withCutoff(t *testing.T, cutoff int, fn func()) {
	t.Helper()
	old := SerialCutoffEdges
	SerialCutoffEdges = cutoff
	defer func() { SerialCutoffEdges = old }()
	fn()
}

// TestSerialCutoffBitwise asserts the serial-fallback contract: a solver
// whose levels all fall below SerialCutoffEdges (every region runs inline
// on the caller, no barrier ever crossed) produces bitwise-identical
// norms and states to one whose levels are all pooled across workers.
// Inlining is purely an execution-policy change — the chunk tables
// degenerate to one span, but the color order and the block-ordered norm
// reduction are untouched.
func TestSerialCutoffBitwise(t *testing.T) {
	p := euler.DefaultParams(0.675, 0)
	const cycles, steps = 4, 4

	t.Run("single-grid", func(t *testing.T) {
		m := testMesh(t)
		run := func(cutoff int) ([]float64, []euler.State) {
			var norms []float64
			var w []euler.State
			withCutoff(t, cutoff, func() {
				s, err := New(m, p, 4)
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				w = make([]euler.State, m.NV())
				s.InitUniform(w)
				for c := 0; c < steps; c++ {
					norms = append(norms, s.Step(w, nil))
				}
			})
			return norms, w
		}
		pooledN, pooledW := run(0)       // below every mesh: all levels pooled
		serialN, serialW := run(1 << 30) // above every mesh: all levels inline
		for c := range pooledN {
			if pooledN[c] != serialN[c] {
				t.Fatalf("step %d norm: pooled %v, serial-cutoff %v", c, pooledN[c], serialN[c])
			}
		}
		for i := range pooledW {
			if pooledW[i] != serialW[i] {
				t.Fatalf("vertex %d: pooled %v, serial-cutoff %v", i, pooledW[i], serialW[i])
			}
		}
	})

	t.Run("multigrid", func(t *testing.T) {
		meshes := testSequence(t, 3)
		run := func(cutoff int) ([]float64, []euler.State) {
			var norms []float64
			var w []euler.State
			withCutoff(t, cutoff, func() {
				mg, err := NewMultigrid(meshes, p, 2, 4)
				if err != nil {
					t.Fatal(err)
				}
				defer mg.Close()
				for c := 0; c < cycles; c++ {
					norms = append(norms, mg.Cycle())
				}
				w = append([]euler.State(nil), mg.Fine().W...)
			})
			return norms, w
		}
		pooledN, pooledW := run(0)
		serialN, serialW := run(1 << 30)
		for c := range pooledN {
			if pooledN[c] != serialN[c] {
				t.Fatalf("cycle %d norm: pooled %v, serial-cutoff %v", c, pooledN[c], serialN[c])
			}
		}
		for i := range pooledW {
			if pooledW[i] != serialW[i] {
				t.Fatalf("vertex %d: pooled %v, serial-cutoff %v", i, pooledW[i], serialW[i])
			}
		}
	})
}

// TestSerialCutoffZeroAllocs checks that the inline path keeps the
// zero-allocation contract of the pooled one.
func TestSerialCutoffZeroAllocs(t *testing.T) {
	m := testMesh(t)
	p := euler.DefaultParams(0.675, 0)
	withCutoff(t, 1<<30, func() {
		s, err := New(m, p, 4)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		w := make([]euler.State, m.NV())
		s.InitUniform(w)
		s.Step(w, nil)
		if allocs := testing.AllocsPerRun(5, func() { s.Step(w, nil) }); allocs != 0 {
			t.Fatalf("serial-cutoff step allocates %v times per run", allocs)
		}
	})
}
