package smsolver

import (
	"strings"
	"testing"

	"eul3d/internal/euler"
	"eul3d/internal/meshgen"
	"eul3d/internal/trace"
)

// TestTracedStepZeroAlloc is the overhead-budget gate: attaching the
// flight recorder must not cost the step loop a single heap allocation.
func TestTracedStepZeroAlloc(t *testing.T) {
	m, err := meshgen.Channel(meshgen.DefaultChannel(12, 8, 6, 17))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(m, euler.DefaultParams(0.675, 0), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tr := trace.New(1024)
	s.SetTrace(tr)
	w := make([]euler.State, m.NV())
	s.InitUniform(w)
	s.Step(w, nil) // warm the worker stacks and the phase table
	if n := testing.AllocsPerRun(5, func() { s.Step(w, nil) }); n != 0 {
		t.Fatalf("traced Step allocates %v times per run, want 0", n)
	}
}

// TestTracedStepTracks checks the timeline shape: one track per worker
// with kernel and barrier spans, plus the orchestrator's phase track with
// RK stages, and a valid Chrome export.
func TestTracedStepTracks(t *testing.T) {
	// Large enough that every chunked loop engages all three workers
	// (loops shorter than minChunk·workers run on fewer workers).
	m, err := meshgen.Channel(meshgen.DefaultChannel(24, 12, 8, 17))
	if err != nil {
		t.Fatal(err)
	}
	const nw = 3
	s, err := New(m, euler.DefaultParams(0.675, 0), nw)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tr := trace.New(4096)
	s.SetTrace(tr)
	w := make([]euler.State, m.NV())
	s.InitUniform(w)
	s.Step(w, nil)

	byName := map[string]*trace.Track{}
	for _, tk := range tr.Tracks() {
		byName[tk.Name()] = tk
	}
	for _, want := range []string{"phases", "w0", "w1", "w2"} {
		if byName[want] == nil {
			t.Fatalf("missing track %q (have %d tracks)", want, len(tr.Tracks()))
		}
	}
	count := func(tk *trace.Track, phase string) int {
		n := 0
		for _, ev := range tk.Events() {
			if tr.PhaseName(ev.Phase) == phase {
				n++
			}
		}
		return n
	}
	if n := count(byName["phases"], "rk-stage"); n != len(euler.DefaultParams(0.675, 0).Stages) {
		t.Errorf("phases track has %d rk-stage spans, want %d", n, len(euler.DefaultParams(0.675, 0).Stages))
	}
	if count(byName["phases"], "step") != 1 {
		t.Error("phases track missing the step span")
	}
	for _, wtk := range []string{"w0", "w1", "w2"} {
		if count(byName[wtk], "conv-edges") == 0 {
			t.Errorf("track %s has no conv-edges kernel spans", wtk)
		}
		if count(byName[wtk], "barrier") == 0 {
			t.Errorf("track %s has no barrier spans", wtk)
		}
	}

	var b strings.Builder
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if n, err := trace.Validate(strings.NewReader(b.String())); err != nil {
		t.Fatalf("export fails Validate: %v", err)
	} else if n == 0 {
		t.Fatal("export has no events")
	}
}

// TestTracedMultigridCycle checks the pooled multigrid's traced cycle:
// level-entry instants for every visit of a W-cycle, per-level transfer
// spans on the orchestrator track, and zero allocations at steady state.
func TestTracedMultigridCycle(t *testing.T) {
	meshes, err := meshgen.Sequence(meshgen.DefaultChannel(12, 8, 6, 17), 3)
	if err != nil {
		t.Fatal(err)
	}
	mg, err := NewMultigrid(meshes, euler.DefaultParams(0.675, 0), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer mg.Close()
	tr := trace.New(8192)
	mg.SetTrace(tr)
	mg.Cycle() // warm
	if n := testing.AllocsPerRun(3, func() { mg.Cycle() }); n != 0 {
		t.Fatalf("traced Cycle allocates %v times per run, want 0", n)
	}

	var orch *trace.Track
	for _, tk := range tr.Tracks() {
		if tk.Name() == "phases" {
			orch = tk
		}
	}
	if orch == nil {
		t.Fatal("missing phases track")
	}
	visits := map[int64]int{}
	transfers := 0
	for _, ev := range orch.Events() {
		switch tr.PhaseName(ev.Phase) {
		case "enter-level":
			visits[ev.Arg]++
		case "L0 transfers", "L1 transfers":
			transfers++
		}
	}
	// One W-cycle on 3 levels visits L0 once, L1 twice (gamma=2), and L2
	// twice (once per L1 visit; the coarsest grid is never revisited).
	// The ring is large enough to retain the full last cycle.
	if visits[0] == 0 || visits[1] != 2*visits[0] || visits[2] != visits[1] {
		t.Errorf("level visit instants %v do not match a gamma=2 cycle", visits)
	}
	if transfers == 0 {
		t.Error("no transfer spans on the phases track")
	}
}
