package smsolver

import (
	"testing"

	"eul3d/internal/euler"
	"eul3d/internal/meshgen"
	"eul3d/internal/refine"
)

// The incremental-vs-from-scratch rebuild comparison at paper scale
// (~14k cells, ~5% marked). On this mesh the incremental path wins
// wall-clock as well as allocation; on smoke-sized meshes the fixed
// costs favor the from-scratch build (see TestIncrementalRebuildCheaper,
// which asserts the load-independent allocation ratio instead).
//
//	go test -bench BenchmarkRebuild -benchtime 100x ./internal/smsolver/

func bigRefined(b *testing.B) (euler.Params, *Solver, *refine.Refined) {
	p := euler.DefaultParams(0.675, 0)
	ms, err := meshgen.Sequence(meshgen.DefaultChannel(24, 12, 8, 1), 1)
	if err != nil {
		b.Fatal(err)
	}
	m := ms[0]
	marked := make([]bool, m.NT())
	for i := 0; i < m.NT()/20; i++ {
		marked[i*13%m.NT()] = true
	}
	r, err := refine.Selective(m, marked)
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(m, p, 2)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Rebuild(r.Mesh, p); err != nil {
		b.Fatal(err)
	}
	return p, s, r
}

func BenchmarkRebuildIncremental(b *testing.B) {
	p, s, r := bigRefined(b)
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Rebuild(r.Mesh, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRebuildScratch(b *testing.B) {
	p, _, r := bigRefined(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := New(r.Mesh, p, 2)
		if err != nil {
			b.Fatal(err)
		}
		f.Close()
	}
}
