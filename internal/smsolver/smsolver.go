// Package smsolver is the shared-memory parallel implementation of the
// flow solver, mirroring the paper's Cray Y-MP C90 port (Section 3): each
// edge loop is divided into recurrence-free color groups, and each group
// is chunked across worker goroutines — the role the autotasking compiler
// played on the C90. Because at most one edge per group touches any
// vertex, the floating-point accumulation order per vertex is fixed by the
// color order and is independent of the chunking: the solver produces
// *bitwise identical* results for every worker count (tests assert this).
// Against the sequential solver — which accumulates in raw edge order —
// results agree to roundoff, exactly as on the original machine, where the
// vectorized/autotasked code also reordered the accumulations.
package smsolver

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"eul3d/internal/color"
	"eul3d/internal/euler"
	"eul3d/internal/mesh"
)

// Solver executes the five-stage scheme with colored, goroutine-parallel
// loops.
type Solver struct {
	D        *euler.Disc
	NWorkers int

	edgeColors *color.Coloring
	faceColors *color.Coloring

	w0, conv, diss, res []euler.State
}

// New builds a parallel solver over mesh m. nworkers <= 0 selects
// GOMAXPROCS.
func New(m *mesh.Mesh, p euler.Params, nworkers int) (*Solver, error) {
	if nworkers <= 0 {
		nworkers = runtime.GOMAXPROCS(0)
	}
	ec, err := color.Greedy(m.NV(), m.Edges)
	if err != nil {
		return nil, fmt.Errorf("smsolver: edge coloring: %w", err)
	}
	faces := make([][3]int32, len(m.BFaces))
	for i := range m.BFaces {
		faces[i] = m.BFaces[i].V
	}
	fc, err := color.GreedyFaces(m.NV(), faces)
	if err != nil {
		return nil, fmt.Errorf("smsolver: face coloring: %w", err)
	}
	nv := m.NV()
	return &Solver{
		D:          euler.NewDisc(m, p),
		NWorkers:   nworkers,
		edgeColors: ec,
		faceColors: fc,
		w0:         make([]euler.State, nv),
		conv:       make([]euler.State, nv),
		diss:       make([]euler.State, nv),
		res:        make([]euler.State, nv),
	}, nil
}

// NumColors returns the edge and boundary-face group counts.
func (s *Solver) NumColors() (edges, faces int) {
	return s.edgeColors.NumColors(), s.faceColors.NumColors()
}

// parallelFor runs fn over [0,n) split into s.NWorkers contiguous chunks.
func (s *Solver) parallelFor(n int, fn func(lo, hi int)) {
	nw := s.NWorkers
	if nw > n {
		nw = n
	}
	if nw <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// coloredEdges runs kernel over every edge group, chunking each group
// across the workers (the autotasked vector loop of Section 3.1).
func (s *Solver) coloredEdges(kernel func(edges []int32)) {
	for g := 0; g < s.edgeColors.NumColors(); g++ {
		group := s.edgeColors.Group(g)
		s.parallelFor(len(group), func(lo, hi int) {
			kernel(group[lo:hi])
		})
	}
}

// coloredFaces runs kernel over every boundary-face group.
func (s *Solver) coloredFaces(kernel func(faces []int32)) {
	for g := 0; g < s.faceColors.NumColors(); g++ {
		group := s.faceColors.Group(g)
		s.parallelFor(len(group), func(lo, hi int) {
			kernel(group[lo:hi])
		})
	}
}

func zero(a []euler.State) {
	for i := range a {
		a[i] = euler.State{}
	}
}

// Step advances w by one multistage time step, identically to
// euler.Disc.Step but with all loops colored and parallel. It returns the
// first-stage residual norm.
func (s *Solver) Step(w []euler.State, forcing []euler.State) float64 {
	d := s.D
	nv := d.M.NV()
	copy(s.w0, w)

	s.parallelFor(nv, func(lo, hi int) { d.PressureRangeKernel(w, lo, hi) })

	// Local time steps.
	lam := d.Lam()
	s.parallelFor(nv, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			lam[i] = 0
		}
	})
	s.coloredEdges(func(e []int32) { d.LambdaEdgesKernel(w, lam, e) })
	s.coloredFaces(func(f []int32) { d.LambdaBFacesKernel(w, lam, f) })
	s.parallelFor(nv, func(lo, hi int) { d.DtRangeKernel(lam, lo, hi) })

	norm := 0.0
	for q, alpha := range d.P.Stages {
		if q > 0 {
			s.parallelFor(nv, func(lo, hi int) { d.PressureRangeKernel(w, lo, hi) })
		}
		// Convective operator.
		s.parallelFor(nv, func(lo, hi int) { zero(s.conv[lo:hi]) })
		s.coloredEdges(func(e []int32) { d.ConvectiveEdgesKernel(w, s.conv, e) })
		s.coloredFaces(func(f []int32) { d.BoundaryFluxKernel(w, s.conv, f) })

		// Dissipation on the first stages, frozen afterwards.
		if q < euler.DissipStages {
			lapl, num, den := d.Lapl(), d.Sensor(), d.Den()
			s.parallelFor(nv, func(lo, hi int) {
				zero(lapl[lo:hi])
				for i := lo; i < hi; i++ {
					num[i] = 0
					den[i] = 0
				}
			})
			s.coloredEdges(func(e []int32) { d.DissPass1Kernel(w, lapl, num, den, e) })
			s.parallelFor(nv, func(lo, hi int) { d.NuRangeKernel(num, den, lo, hi) })
			s.parallelFor(nv, func(lo, hi int) { zero(s.diss[lo:hi]) })
			s.coloredEdges(func(e []int32) { d.DissPass2Kernel(w, lapl, s.diss, num, e) })
		}

		s.parallelFor(nv, func(lo, hi int) {
			d.CombineResidualKernel(s.res, s.conv, s.diss, forcing, lo, hi)
		})
		if q == 0 {
			norm = s.residualNorm()
		}
		s.smooth(s.res)
		s.parallelFor(nv, func(lo, hi int) {
			d.UpdateRangeKernel(w, s.w0, s.res, alpha, lo, hi)
		})
	}
	return norm
}

// residualNorm computes the RMS density residual / volume. The reduction
// uses fixed-size blocks combined in block order, so the rounded result is
// independent of the worker count.
func (s *Solver) residualNorm() float64 {
	const block = 4096
	nv := s.D.M.NV()
	nb := (nv + block - 1) / block
	partial := make([]float64, nb)
	s.parallelFor(nb, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo := b * block
			hi := lo + block
			if hi > nv {
				hi = nv
			}
			sum := 0.0
			for i := lo; i < hi; i++ {
				r := s.res[i][0] / s.D.M.Vol[i]
				sum += r * r
			}
			partial[b] = sum
		}
	})
	sum := 0.0
	for _, p := range partial {
		sum += p
	}
	return math.Sqrt(sum / float64(nv))
}

// smooth applies the implicit residual averaging with colored parallel
// sweeps.
func (s *Solver) smooth(res []euler.State) {
	d := s.D
	eps := d.P.EpsSmooth
	if eps == 0 || d.P.NSmooth == 0 {
		return
	}
	nv := d.M.NV()
	rhs := d.RHSScratch()
	copy(rhs, res)
	cur, next := res, d.SmoothScratch()
	for sweep := 0; sweep < d.P.NSmooth; sweep++ {
		s.parallelFor(nv, func(lo, hi int) { zero(next[lo:hi]) })
		cc := cur
		nn := next
		s.coloredEdges(func(e []int32) { d.SmoothAccumKernel(cc, nn, e) })
		s.parallelFor(nv, func(lo, hi int) { d.SmoothCombineKernel(rhs, nn, eps, lo, hi) })
		cur, next = next, cur
	}
	if &cur[0] != &res[0] {
		copy(res, cur)
	}
}

// InitUniform fills w with the freestream state.
func (s *Solver) InitUniform(w []euler.State) { s.D.InitUniform(w) }
