// Package smsolver is the shared-memory parallel implementation of the
// flow solver, mirroring the paper's Cray Y-MP C90 port (Section 3): each
// edge loop is divided into recurrence-free color groups, and each group
// is chunked across worker goroutines — the role the autotasking compiler
// played on the C90. Because at most one edge per group touches any
// vertex, the floating-point accumulation order per vertex is fixed by the
// color order and is independent of the chunking: the solver produces
// *bitwise identical* results for every worker count (tests assert this).
// Against the sequential solver — which accumulates in raw edge order —
// results agree to roundoff, exactly as on the original machine, where the
// vectorized/autotasked code also reordered the accumulations. (On a
// color-canonical mesh, whose edge list is stored in color order — see
// reorder.ColorCanonical — the two orders coincide and the agreement is
// bitwise.)
//
// Execution uses a persistent worker pool (see pool.go): the workers are
// spawned once, parked between parallel regions, and driven through
// prebuilt per-color chunk tables balanced by element count; adjacent
// zero/copy sweeps are fused into the neighbouring vertex kernels and all
// scratch is solver-owned, so a steady-state Step (and multigrid Cycle)
// performs zero heap allocations. The hot path — flux and dissipation
// accumulation over the colored edge groups, the Jacobi smoothing sweeps,
// and the fused vertex updates — runs on a structure-of-arrays state
// layout (euler.StateSoA: five contiguous component streams instead of
// 40-byte records), converting from the public []State interfaces inside
// the fused preamble and update sweeps; the per-block residual-norm
// partials are padded to cache-line boundaries so concurrent block writers
// never share a line. Grid levels below SerialCutoffEdges skip the
// fork/join barrier entirely and run every region inline on the caller —
// chunking and inlining never affect results. The engine/levelEngine split
// in this file lets the same N parked workers drive either a single grid
// (Solver) or every level of a FAS multigrid sequence (Multigrid,
// multigrid.go). Close releases the workers; a solver dropped without
// Close is cleaned up by the garbage collector.
package smsolver

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"eul3d/internal/color"
	"eul3d/internal/euler"
	"eul3d/internal/flops"
	"eul3d/internal/mesh"
	"eul3d/internal/multigrid"
	"eul3d/internal/perf"
	"eul3d/internal/trace"
)

// SerialCutoffEdges is the serial-fallback work threshold: a grid level
// with fewer edges than this runs every parallel region inline on the
// calling goroutine, skipping the fork/join barrier entirely. On the
// coarse levels of a multigrid sequence the per-color chunks shrink to a
// handful of edges, and the barrier latency of ~30 color groups per sweep
// dominates the arithmetic — the main reason a pooled multigrid cycle used
// to lose to the serial one at 2–8 workers. Results are unaffected
// (chunking never changes the accumulation order within a color), which
// TestSerialCutoffBitwise asserts. Tests that need the pooled path on
// small meshes set this to 0; the default is tuned so channel-mesh coarse
// levels (≲2.5k edges) serialize while paper-scale fine grids stay pooled.
var SerialCutoffEdges = 4096

// taskKind names one parallel region; exec dispatches on it so that
// forking never builds a closure.
type taskKind uint8

const (
	tInit           taskKind = iota // SoA load + w0 snapshot + pressures + lam reset (fused)
	tLamEdges                       // colored: edge spectral radii
	tLamFaces                       // colored: boundary-face spectral radii
	tDtZero                         // local time steps + stage-0 accumulator zeroing (fused)
	tConvEdges                      // colored: convective fluxes
	tConvFaces                      // colored: boundary closure
	tDiss1                          // colored: Laplacian + sensor sums
	tNu                             // sensor sums -> shock switch
	tDiss2                          // colored: blended dissipative flux
	tCombine                        // resS = convS - dissS (+ forcing), SoA
	tCombineOut                     // res = convS - dissS (+ forcing), []State out
	tNorm                           // block partial sums of the residual norm
	tSmoothStart                    // rhs copy + first-sweep zeroing (fused, []State)
	tSmoothAccum                    // colored: Jacobi neighbour gather ([]State)
	tSmoothCombine                  // Jacobi combine + next-sweep zeroing (fused, []State)
	tCopyRes                        // copy smoothed result back ([]State, odd sweep counts)
	tSmoothStartS                   // rhs copy + first-sweep zeroing (fused, SoA)
	tSmoothAccumS                   // colored: Jacobi neighbour gather (SoA)
	tSmoothCombineS                 // Jacobi combine + next-sweep zeroing (fused, SoA)
	tCopyResS                       // copy smoothed result back (SoA, odd sweep counts)
	tUpdate                         // RK update scattered to []State (final stage)
	tUpdateNext                     // RK update + next-stage pressures + zeroing (fused, SoA)
	tResInit                        // SoA load + pressures + accumulator zeroing (standalone residual)
	tInterp                         // inter-grid interpolation over a target chunk
	tScatter                        // destination-grouped residual restriction rows
	tRepairSave                     // repair restricted states + snapshot (fused)
	tCorrDelta                      // coarse correction delta W - WSaved
	tForcingSub                     // FAS forcing P = R' - R(w')
	tApplyCorr                      // guarded application of the prolonged correction
)

// Instrumented phases of one time step (the engine's internal phase
// numbering; phaseMap routes them to accumulator slots).
const (
	phTimestep = iota // pressures, spectral radii, local time steps
	phConvective
	phDissipation
	phResidual // residual combine + norm reduction
	phSmoothing
	phUpdate
	nPhases
)

var phaseNames = [nPhases]string{"timestep", "convective", "dissipation", "residual", "smoothing", "update"}

// normBlock is the fixed reduction block of residualNorm; partials are
// combined in block order so the rounded norm is worker-count independent
// and identical to the sequential solver's blocked reduction.
const normBlock = euler.NormBlock

// normSlot holds one norm-block partial padded out to a full 64-byte cache
// line. Workers write disjoint contiguous block ranges of the partial
// table; without padding the blocks at each range boundary share a line
// and the concurrent writers ping-pong it (false sharing). Padding costs
// nv/4096 * 56 bytes and keeps every writer on private lines; the
// reduction still reads slot.v in block order, so the rounded norm is
// unchanged.
type normSlot struct {
	v float64
	_ [56]byte
}

// levelEngine holds everything the worker pool needs to run the scheme on
// one mesh: the discretization, the colorings, the prebuilt chunk tables,
// the per-step scratch and the analytic flop charges. A single-grid
// Solver owns one; a Multigrid owns one per level, all driven by the same
// engine (and thus the same parked workers).
//
// The step-path scratch is SoA (euler.StateSoA): the solution block wS and
// stage-0 snapshot w0S are loaded from the caller's []State in the fused
// init sweep, the edge kernels accumulate into convS/dissS/laplS, the
// smoother ping-pongs resS against smoothS, and the final-stage update
// scatters straight back to []State. res keeps the []State layout because
// the multigrid transfer operators consume it directly.
type levelEngine struct {
	d          *euler.Disc
	edgeColors *color.Coloring
	faceColors *color.Coloring

	wS, w0S      *euler.StateSoA
	convS, dissS *euler.StateSoA
	resS, laplS  *euler.StateSoA
	smoothS      *euler.StateSoA // SoA smoothing ping-pong scratch
	rhsS         *euler.StateSoA // SoA smoothing right-hand side

	res         []euler.State // standalone-residual output (AoS, fed to transfers)
	normPartial []normSlot

	// Prebuilt chunk tables: per-worker vertex and norm-block ranges, and
	// per-color per-worker edge/face ranges as absolute offsets into the
	// coloring's Order permutation. On levels below SerialCutoffEdges the
	// tables are built single-worker, so every region runs inline.
	vertSpans  []span
	vertActive int
	normSpans  []span
	normActive int
	edgeSpans  [][]span
	edgeActive []int
	faceSpans  [][]span
	faceActive []int

	// Analytic flop charges of the engine's step phases on this mesh.
	flTimestep, flConv, flDiss, flCombine, flSmooth int64
	flUpdate, flUpdateNext                          int64
}

// newLevelEngine builds the per-mesh tables. ec/fc may carry precomputed
// colorings (verified here); nil selects the greedy ones.
func newLevelEngine(m *mesh.Mesh, p euler.Params, nworkers int, ec, fc *color.Coloring) (*levelEngine, error) {
	var err error
	if ec == nil {
		ec, err = color.Greedy(m.NV(), m.Edges)
		if err != nil {
			return nil, fmt.Errorf("edge coloring: %w", err)
		}
	} else if err = color.Verify(ec, m.NV(), m.Edges); err != nil {
		return nil, fmt.Errorf("edge coloring: %w", err)
	}
	faces := make([][3]int32, len(m.BFaces))
	for i := range m.BFaces {
		faces[i] = m.BFaces[i].V
	}
	if fc == nil {
		fc, err = color.GreedyFaces(m.NV(), faces)
		if err != nil {
			return nil, fmt.Errorf("face coloring: %w", err)
		}
	} else if err = color.VerifyFaces(fc, m.NV(), faces); err != nil {
		return nil, fmt.Errorf("face coloring: %w", err)
	}
	nv := m.NV()
	nb := (nv + normBlock - 1) / normBlock
	le := &levelEngine{
		d:           euler.NewDisc(m, p),
		edgeColors:  ec,
		faceColors:  fc,
		wS:          euler.NewStateSoA(nv),
		w0S:         euler.NewStateSoA(nv),
		convS:       euler.NewStateSoA(nv),
		dissS:       euler.NewStateSoA(nv),
		resS:        euler.NewStateSoA(nv),
		laplS:       euler.NewStateSoA(nv),
		smoothS:     euler.NewStateSoA(nv),
		rhsS:        euler.NewStateSoA(nv),
		res:         make([]euler.State, nv),
		normPartial: make([]normSlot, nb),
	}
	// Serial fallback: a level whose whole edge list is below the cutoff
	// builds single-worker tables, so every fork runs inline on the caller
	// and no barrier is paid. Chunking never affects results.
	spanW := nworkers
	if m.NE() < SerialCutoffEdges {
		spanW = 1
	}
	le.vertSpans, le.vertActive = buildSpans(nv, spanW)
	le.normSpans, le.normActive = buildSpans(nb, spanW)
	le.edgeSpans, le.edgeActive = colorSpans(ec, spanW)
	le.faceSpans, le.faceActive = colorSpans(fc, spanW)
	le.chargeFlops()
	return le, nil
}

// chargeFlops recomputes the analytic per-phase flop charges from the
// level's current mesh and parameters (called at build time and again by
// Rebuild after an adaptation epoch changes the mesh).
func (le *levelEngine) chargeFlops() {
	m, p := le.d.M, le.d.P
	ne, nbf := int64(m.NE()), int64(len(m.BFaces))
	nv64 := int64(m.NV())
	le.flTimestep = nv64*flops.PresVert + ne*flops.DtEdge + nbf*flops.DtBFace + nv64*flops.DtVertex
	le.flConv = ne*flops.ConvEdge + nbf*flops.ConvBFace
	le.flDiss = ne*(flops.Diss1Edge+flops.Diss2Edge) + nv64*flops.NuVert
	le.flCombine = nv64 * flops.CombineVert
	le.flSmooth = int64(p.NSmooth) * (ne*flops.SmoothEdge + nv64*flops.SmoothVert)
	le.flUpdate = nv64 * flops.UpdateVert
	le.flUpdateNext = nv64 * (flops.UpdateVert + flops.PresVert)
}

// colorSpans prebuilds the per-color per-worker chunk table of a coloring:
// absolute [lo,hi) offsets into c.Order, plus the per-color active worker
// count. Each color's edges split evenly (buildSpans balances the
// remainder), so every active worker carries the same edge count ±1.
func colorSpans(c *color.Coloring, nw int) ([][]span, []int) {
	nc := c.NumColors()
	spans := make([][]span, nc)
	active := make([]int, nc)
	for g := 0; g < nc; g++ {
		base := int(c.Start[g])
		n := int(c.Start[g+1]) - base
		sp, a := buildSpans(n, nw)
		for w := range sp {
			sp[w].lo += base
			sp[w].hi += base
		}
		spans[g], active[g] = sp, a
	}
	return spans, active
}

// engine is the pool-driving half: the fork/join barrier, the job
// descriptor published before every parallel region, and the
// instrumentation routing. It holds a pointer to the levelEngine of the
// level currently being operated on, so the same N parked workers serve
// every grid of a multigrid sequence.
type engine struct {
	pool   *pool
	nw     int
	execFn func(int) // e.exec (or e.execTraced), bound once so fork never allocates

	// Flight-recorder hooks (trace.go); nil when tracing is disabled, so
	// the untraced hot path pays one branch.
	et *engineTrace

	// Instrumentation: engine step phases are charged to acc slots through
	// phaseMap (identity for the single-grid Solver; collapsed to one
	// per-level "steps" slot by Multigrid).
	acc      *perf.Accum
	phaseMap [nPhases]int

	lev *levelEngine // level the current region runs on

	// Job descriptor for the current parallel region, published before the
	// fork and read by the workers (the fork/join barrier orders both
	// directions).
	job       taskKind
	group     int           // color group for colored tasks
	alpha     float64       // RK stage coefficient
	eps       float64       // residual-averaging coefficient
	zeroDiss  bool          // tDtZero/tUpdateNext: also zero dissipation arrays
	zeroCur   bool          // tSmoothCombine(+S): also zero the next sweep's target
	w         []euler.State // solution being advanced
	forcing   []euler.State
	cur, next []euler.State // residual-averaging ping-pong ([]State, corrections)
	smTarget  []euler.State // []State array being smoothed (a correction)

	// SoA residual-averaging ping-pong (the step path smooths resS).
	curS, nextS *euler.StateSoA
	smTargetS   *euler.StateSoA

	// Generic per-vertex operands (tRepairSave/tCorrDelta/tForcingSub/
	// tApplyCorr) and the inter-grid transfer descriptor.
	va, vb, vdst []euler.State
	xop          *multigrid.TransferOp
	xplan        *multigrid.ScatterPlan
	xsrc, xdst   []euler.State
	xspans       []span
}

// init starts the pool and binds the dispatch function.
func (e *engine) init(nworkers int, acc *perf.Accum) {
	e.acc = acc
	e.nw = nworkers
	for i := range e.phaseMap {
		e.phaseMap[i] = i
	}
	e.pool = newPool(nworkers)
	e.execFn = e.exec
}

// fork publishes the job descriptor and runs one parallel region. With a
// tracer attached it also closes the region on every worker's track with a
// barrier-wait span (that worker's kernel end → the join).
func (e *engine) fork(j taskKind, group, active int) {
	e.job, e.group = j, group
	e.pool.fork(e.execFn, active)
	if e.et != nil && active > 1 {
		join := time.Now()
		for w := 0; w < active; w++ {
			e.et.wtracks[w].Span(e.et.phBarrier, e.et.kend[w], join, int64(j))
		}
	}
}

// coloredEdges runs one colored task over every edge group of the current
// level (the autotasked vector loop of Section 3.1), one barrier per color.
func (e *engine) coloredEdges(j taskKind) {
	lev := e.lev
	for g := range lev.edgeActive {
		e.fork(j, g, lev.edgeActive[g])
	}
}

// coloredFaces runs one colored task over every boundary-face group.
func (e *engine) coloredFaces(j taskKind) {
	lev := e.lev
	for g := range lev.faceActive {
		e.fork(j, g, lev.faceActive[g])
	}
}

// exec runs worker wk's chunk of the current parallel region. Every case
// is a table lookup plus a kernel call on solver-owned state — no
// closures, no allocation.
func (e *engine) exec(wk int) {
	lev := e.lev
	d := lev.d
	switch e.job {
	case tInit:
		sp := lev.vertSpans[wk]
		d.StepInitSoAKernel(e.w, lev.wS, lev.w0S, sp.lo, sp.hi)
	case tLamEdges:
		sp := lev.edgeSpans[e.group][wk]
		d.LambdaEdgesSoAKernel(lev.wS, d.Lam(), lev.edgeColors.Order[sp.lo:sp.hi])
	case tLamFaces:
		sp := lev.faceSpans[e.group][wk]
		d.LambdaBFacesSoAKernel(lev.wS, d.Lam(), lev.faceColors.Order[sp.lo:sp.hi])
	case tDtZero:
		sp := lev.vertSpans[wk]
		d.DtRangeKernel(d.Lam(), sp.lo, sp.hi)
		d.StageZeroSoAKernel(lev.convS, lev.dissS, lev.laplS, e.zeroDiss, sp.lo, sp.hi)
	case tConvEdges:
		sp := lev.edgeSpans[e.group][wk]
		d.ConvectiveEdgesSoAKernel(lev.wS, lev.convS, lev.edgeColors.Order[sp.lo:sp.hi])
	case tConvFaces:
		sp := lev.faceSpans[e.group][wk]
		d.BoundaryFluxSoAKernel(lev.wS, lev.convS, lev.faceColors.Order[sp.lo:sp.hi])
	case tDiss1:
		sp := lev.edgeSpans[e.group][wk]
		d.DissPass1SoAKernel(lev.wS, lev.laplS, d.Sensor(), d.Den(), lev.edgeColors.Order[sp.lo:sp.hi])
	case tNu:
		sp := lev.vertSpans[wk]
		d.NuRangeKernel(d.Sensor(), d.Den(), sp.lo, sp.hi)
	case tDiss2:
		sp := lev.edgeSpans[e.group][wk]
		d.DissPass2SoAKernel(lev.wS, lev.laplS, lev.dissS, d.Sensor(), lev.edgeColors.Order[sp.lo:sp.hi])
	case tCombine:
		sp := lev.vertSpans[wk]
		d.CombineResidualSoAKernel(lev.resS, lev.convS, lev.dissS, e.forcing, sp.lo, sp.hi)
	case tCombineOut:
		sp := lev.vertSpans[wk]
		d.CombineResidualOutKernel(lev.res, lev.convS, lev.dissS, e.forcing, sp.lo, sp.hi)
	case tNorm:
		sp := lev.normSpans[wk]
		nv := d.M.NV()
		res0 := lev.resS.Comp[0]
		for b := sp.lo; b < sp.hi; b++ {
			lo := b * normBlock
			hi := lo + normBlock
			if hi > nv {
				hi = nv
			}
			sum := 0.0
			for i := lo; i < hi; i++ {
				r := res0[i] / d.M.Vol[i]
				sum += r * r
			}
			lev.normPartial[b].v = sum
		}
	case tSmoothStart:
		sp := lev.vertSpans[wk]
		copy(d.RHSScratch()[sp.lo:sp.hi], e.smTarget[sp.lo:sp.hi])
		zero(e.next[sp.lo:sp.hi])
	case tSmoothAccum:
		sp := lev.edgeSpans[e.group][wk]
		d.SmoothAccumKernel(e.cur, e.next, lev.edgeColors.Order[sp.lo:sp.hi])
	case tSmoothCombine:
		sp := lev.vertSpans[wk]
		d.SmoothCombineKernel(d.RHSScratch(), e.next, e.eps, sp.lo, sp.hi)
		if e.zeroCur {
			// cur has been fully gathered (barrier before this region) and
			// becomes the next sweep's accumulation target: zero it here
			// instead of in a sweep of its own.
			zero(e.cur[sp.lo:sp.hi])
		}
	case tCopyRes:
		sp := lev.vertSpans[wk]
		copy(e.smTarget[sp.lo:sp.hi], e.cur[sp.lo:sp.hi])
	case tSmoothStartS:
		sp := lev.vertSpans[wk]
		lev.rhsS.CopyRange(e.smTargetS, sp.lo, sp.hi)
		e.nextS.ZeroRange(sp.lo, sp.hi)
	case tSmoothAccumS:
		sp := lev.edgeSpans[e.group][wk]
		d.SmoothAccumSoAKernel(e.curS, e.nextS, lev.edgeColors.Order[sp.lo:sp.hi])
	case tSmoothCombineS:
		sp := lev.vertSpans[wk]
		d.SmoothCombineSoAKernel(lev.rhsS, e.nextS, e.eps, sp.lo, sp.hi)
		if e.zeroCur {
			e.curS.ZeroRange(sp.lo, sp.hi)
		}
	case tCopyResS:
		sp := lev.vertSpans[wk]
		e.smTargetS.CopyRange(e.curS, sp.lo, sp.hi)
	case tUpdate:
		sp := lev.vertSpans[wk]
		d.UpdateFinalSoAKernel(e.w, lev.w0S, lev.resS, e.alpha, sp.lo, sp.hi)
	case tUpdateNext:
		sp := lev.vertSpans[wk]
		d.UpdateNextSoAKernel(lev.wS, lev.w0S, lev.resS, e.alpha, sp.lo, sp.hi)
		d.StageZeroSoAKernel(lev.convS, lev.dissS, lev.laplS, e.zeroDiss, sp.lo, sp.hi)
	case tResInit:
		sp := lev.vertSpans[wk]
		d.ResInitSoAKernel(e.w, lev.wS, sp.lo, sp.hi)
		d.StageZeroSoAKernel(lev.convS, lev.dissS, lev.laplS, true, sp.lo, sp.hi)
	case tInterp:
		sp := e.xspans[wk]
		e.xop.InterpRange(e.xsrc, e.xdst, sp.lo, sp.hi)
	case tScatter:
		sp := e.xspans[wk]
		e.xplan.GatherRange(e.xsrc, e.xdst, sp.lo, sp.hi)
	case tRepairSave:
		sp := lev.vertSpans[wk]
		for i := sp.lo; i < sp.hi; i++ {
			st := d.P.Repair(e.va[i])
			e.va[i] = st
			e.vb[i] = st
		}
	case tCorrDelta:
		sp := lev.vertSpans[wk]
		for i := sp.lo; i < sp.hi; i++ {
			for k := 0; k < euler.NVar; k++ {
				e.vdst[i][k] = e.va[i][k] - e.vb[i][k]
			}
		}
	case tForcingSub:
		sp := lev.vertSpans[wk]
		for i := sp.lo; i < sp.hi; i++ {
			for k := 0; k < euler.NVar; k++ {
				e.va[i][k] -= e.vb[i][k]
			}
		}
	case tApplyCorr:
		sp := lev.vertSpans[wk]
		for i := sp.lo; i < sp.hi; i++ {
			var cand euler.State
			for k := 0; k < euler.NVar; k++ {
				cand[k] = e.va[i][k] + e.vb[i][k]
			}
			if !d.P.Guard(cand) {
				continue // positivity guard: skip the correction at this vertex
			}
			e.va[i] = cand
		}
	}
}

func zero(a []euler.State) {
	for i := range a {
		a[i] = euler.State{}
	}
}

// tick charges the wall clock since *t to an engine phase (routed through
// phaseMap) along with its analytic flop count, and restarts the clock.
func (e *engine) tick(phase int, fl int64, t *time.Time) {
	now := time.Now()
	e.acc.Add(e.phaseMap[phase], now.Sub(*t), fl)
	if e.et != nil {
		e.et.orch.Span(e.et.phasePh[phase], *t, now, 0)
	}
	*t = now
}

// step advances w by one multistage time step on lev, identically to
// euler.Disc.Step but with all loops colored, dispatched to the worker
// pool, and running on the SoA layout between the fused init and update
// sweeps. It returns the first-stage residual norm and performs no heap
// allocations.
func (e *engine) step(lev *levelEngine, w, forcing []euler.State) float64 {
	d := lev.d
	if d.M.NV() == 0 {
		return 0
	}
	e.lev = lev
	e.w, e.forcing = w, forcing
	t := time.Now()
	stepStart := t

	// Pressures, spectral radii, local time steps; the leading fused sweep
	// also loads the SoA solution block, and the trailing one zeroes the
	// stage-0 accumulators.
	e.fork(tInit, 0, lev.vertActive)
	if d.P.GlobalDt <= 0 {
		// Time-accurate runs use a fixed global dt; the spectral radii feed
		// only the local time steps, so the colored loops are skipped.
		e.coloredEdges(tLamEdges)
		e.coloredFaces(tLamFaces)
	}
	e.zeroDiss = euler.DissipStages > 0
	e.fork(tDtZero, 0, lev.vertActive)
	e.tick(phTimestep, lev.flTimestep, &t)

	norm := 0.0
	nstages := len(d.P.Stages)
	for q, alpha := range d.P.Stages {
		stageStart := t
		// Convective operator (accumulators were zeroed by the previous
		// stage's update sweep, or by tDtZero for stage 0).
		e.coloredEdges(tConvEdges)
		e.coloredFaces(tConvFaces)
		e.tick(phConvective, lev.flConv, &t)

		// Dissipation on the first stages, frozen afterwards.
		if q < euler.DissipStages {
			e.coloredEdges(tDiss1)
			e.fork(tNu, 0, lev.vertActive)
			e.coloredEdges(tDiss2)
			e.tick(phDissipation, lev.flDiss, &t)
		}

		e.fork(tCombine, 0, lev.vertActive)
		if q == 0 {
			norm = e.residualNorm(lev)
		}
		e.tick(phResidual, lev.flCombine, &t)

		e.smoothSoA(lev, lev.resS)
		e.tick(phSmoothing, lev.flSmooth, &t)

		e.alpha = alpha
		if q == nstages-1 {
			e.fork(tUpdate, 0, lev.vertActive)
			e.tick(phUpdate, lev.flUpdate, &t)
		} else {
			// Fused stage boundary: RK update, next stage's pressures, and
			// next stage's accumulator zeroing in one sweep.
			e.zeroDiss = q+1 < euler.DissipStages
			e.fork(tUpdateNext, 0, lev.vertActive)
			e.tick(phUpdate, lev.flUpdateNext, &t)
		}
		if e.et != nil {
			e.et.orch.Span(e.et.phStage, stageStart, t, int64(q))
		}
	}
	if e.et != nil {
		e.et.orch.Span(e.et.phStep, stepStart, t, 0)
	}
	e.w, e.forcing = nil, nil
	return norm
}

// residual evaluates the steady residual R(w) plus the optional FAS
// forcing into lev.res, matching euler.Disc.Residual (followed by the
// forcing add) arithmetic-for-arithmetic. The edge kernels run SoA; the
// combine sweep scatters straight into the []State output the transfer
// operators consume. Used by the multigrid forcing construction; performs
// no heap allocations.
func (e *engine) residual(lev *levelEngine, w, forcing []euler.State) {
	if lev.d.M.NV() == 0 {
		return
	}
	e.lev = lev
	e.w, e.forcing = w, forcing
	e.fork(tResInit, 0, lev.vertActive)
	e.coloredEdges(tConvEdges)
	e.coloredFaces(tConvFaces)
	e.coloredEdges(tDiss1)
	e.fork(tNu, 0, lev.vertActive)
	e.coloredEdges(tDiss2)
	e.fork(tCombineOut, 0, lev.vertActive)
	e.w, e.forcing = nil, nil
}

// residualNorm computes the RMS density residual / volume on lev. The
// reduction uses fixed-size blocks combined in block order, so the rounded
// result is independent of the worker count and equal to the sequential
// solver's euler.ResidualNormSq.
func (e *engine) residualNorm(lev *levelEngine) float64 {
	e.fork(tNorm, 0, lev.normActive)
	sum := 0.0
	for b := range lev.normPartial {
		sum += lev.normPartial[b].v
	}
	return math.Sqrt(sum / float64(lev.d.M.NV()))
}

// smooth applies the implicit residual averaging with colored parallel
// sweeps on a []State target (a prolonged multigrid correction; the step
// path smooths the SoA residual via smoothSoA). The right-hand-side copy,
// the first sweep's zeroing and each following sweep's zeroing ride along
// on neighbouring vertex sweeps.
func (e *engine) smooth(lev *levelEngine, target []euler.State) {
	d := lev.d
	eps := d.P.EpsSmooth
	if eps == 0 || d.P.NSmooth == 0 || len(target) == 0 {
		return
	}
	e.lev = lev
	e.eps = eps
	e.smTarget = target
	e.cur, e.next = target, d.SmoothScratch()
	e.fork(tSmoothStart, 0, lev.vertActive)
	for sweep := 0; sweep < d.P.NSmooth; sweep++ {
		e.coloredEdges(tSmoothAccum)
		e.zeroCur = sweep+1 < d.P.NSmooth
		e.fork(tSmoothCombine, 0, lev.vertActive)
		e.cur, e.next = e.next, e.cur
	}
	if &e.cur[0] != &target[0] {
		e.fork(tCopyRes, 0, lev.vertActive)
	}
	e.smTarget = nil
}

// smoothSoA is smooth for the SoA step path: identical sweep structure on
// the SoA layout, ping-ponging target against the level's SoA scratch.
func (e *engine) smoothSoA(lev *levelEngine, target *euler.StateSoA) {
	d := lev.d
	eps := d.P.EpsSmooth
	if eps == 0 || d.P.NSmooth == 0 || target.Len() == 0 {
		return
	}
	e.lev = lev
	e.eps = eps
	e.smTargetS = target
	e.curS, e.nextS = target, lev.smoothS
	e.fork(tSmoothStartS, 0, lev.vertActive)
	for sweep := 0; sweep < d.P.NSmooth; sweep++ {
		e.coloredEdges(tSmoothAccumS)
		e.zeroCur = sweep+1 < d.P.NSmooth
		e.fork(tSmoothCombineS, 0, lev.vertActive)
		e.curS, e.nextS = e.nextS, e.curS
	}
	if e.curS != target {
		e.fork(tCopyResS, 0, lev.vertActive)
	}
	e.smTargetS = nil
}

// interp runs an inter-grid interpolation chunked over the target range
// table (spans/active belong to the level owning dst).
func (e *engine) interp(op *multigrid.TransferOp, src, dst []euler.State, spans []span, active int) {
	e.xop, e.xsrc, e.xdst, e.xspans = op, src, dst, spans
	e.fork(tInterp, 0, active)
	e.xop, e.xsrc, e.xdst, e.xspans = nil, nil, nil, nil
}

// scatter runs the destination-grouped residual restriction chunked over
// the destination-row table.
func (e *engine) scatter(pl *multigrid.ScatterPlan, src, dst []euler.State, spans []span, active int) {
	e.xplan, e.xsrc, e.xdst, e.xspans = pl, src, dst, spans
	e.fork(tScatter, 0, active)
	e.xplan, e.xsrc, e.xdst, e.xspans = nil, nil, nil, nil
}

// vertexOp runs one of the generic per-vertex regions over lev's vertices.
func (e *engine) vertexOp(j taskKind, lev *levelEngine, a, b, dst []euler.State) {
	e.lev = lev
	e.va, e.vb, e.vdst = a, b, dst
	e.fork(j, 0, lev.vertActive)
	e.va, e.vb, e.vdst = nil, nil, nil
}

// Solver executes the five-stage scheme on a single grid with colored
// loops dispatched to a persistent worker pool.
type Solver struct {
	D        *euler.Disc
	NWorkers int

	le  *levelEngine
	eng engine
}

// New builds a parallel solver over mesh m. nworkers <= 0 selects
// GOMAXPROCS. The worker goroutines persist until Close (or until the
// Solver is garbage-collected).
func New(m *mesh.Mesh, p euler.Params, nworkers int) (*Solver, error) {
	return NewColored(m, p, nworkers, nil, nil)
}

// NewColored is New with caller-provided edge and boundary-face colorings
// (verified here) instead of the greedy ones — used with color-canonical
// meshes, where the identity-run colorings make the parallel solver
// bitwise identical to the sequential one.
func NewColored(m *mesh.Mesh, p euler.Params, nworkers int, edges, faces *color.Coloring) (*Solver, error) {
	if nworkers <= 0 {
		nworkers = runtime.GOMAXPROCS(0)
	}
	le, err := newLevelEngine(m, p, nworkers, edges, faces)
	if err != nil {
		return nil, fmt.Errorf("smsolver: %w", err)
	}
	s := &Solver{D: le.d, NWorkers: nworkers, le: le}
	s.eng.init(nworkers, perf.NewAccum(phaseNames[:]...))
	// The workers reference only the pool (its fn slot is cleared between
	// forks), so an abandoned Solver is collectable; shut its pool down
	// when that happens.
	runtime.AddCleanup(s, func(p *pool) { p.shutdown() }, s.eng.pool)
	return s, nil
}

// Close parks the engine permanently: the worker goroutines exit and the
// Solver must not be stepped afterwards. Close is idempotent and optional —
// the garbage collector releases the workers of an unreferenced Solver —
// but deterministic teardown is kinder to tests and long-lived processes.
func (s *Solver) Close() {
	if s.eng.pool != nil {
		s.eng.pool.shutdown()
		s.eng.pool = nil
	}
}

// SetTrace attaches a flight-recorder tracer: every pooled worker gets a
// track of kernel and barrier-wait spans, and the orchestrator a "phases"
// track of step phases and RK stages. Call before the first Step; a nil
// tracer leaves tracing disabled. Traced steps stay allocation-free.
func (s *Solver) SetTrace(tr *trace.Tracer) { s.eng.attachTrace(tr, "") }

// NumColors returns the edge and boundary-face group counts.
func (s *Solver) NumColors() (edges, faces int) {
	return s.le.edgeColors.NumColors(), s.le.faceColors.NumColors()
}

// Stats returns the accumulated per-phase wall-clock timings with their
// analytic flop charges (internal/flops), from which per-phase and total
// MFlops rates follow.
func (s *Solver) Stats() perf.Stats { return s.eng.acc.Stats() }

// Step advances w by one multistage time step, identically to
// euler.Disc.Step but parallel. It returns the first-stage residual norm
// and performs no heap allocations.
func (s *Solver) Step(w []euler.State, forcing []euler.State) float64 {
	return s.eng.step(s.le, w, forcing)
}

// InitUniform fills w with the freestream state.
func (s *Solver) InitUniform(w []euler.State) { s.D.InitUniform(w) }
