// Package smsolver is the shared-memory parallel implementation of the
// flow solver, mirroring the paper's Cray Y-MP C90 port (Section 3): each
// edge loop is divided into recurrence-free color groups, and each group
// is chunked across worker goroutines — the role the autotasking compiler
// played on the C90. Because at most one edge per group touches any
// vertex, the floating-point accumulation order per vertex is fixed by the
// color order and is independent of the chunking: the solver produces
// *bitwise identical* results for every worker count (tests assert this).
// Against the sequential solver — which accumulates in raw edge order —
// results agree to roundoff, exactly as on the original machine, where the
// vectorized/autotasked code also reordered the accumulations.
//
// Execution uses a persistent worker pool (see pool.go): the workers are
// spawned once in New and parked between parallel regions, the per-color
// chunk tables are prebuilt, adjacent zero/copy sweeps are fused into the
// neighbouring vertex kernels, and all per-step scratch is solver-owned,
// so Step performs zero heap allocations. Close releases the workers; a
// Solver dropped without Close is cleaned up by the garbage collector.
package smsolver

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"eul3d/internal/color"
	"eul3d/internal/euler"
	"eul3d/internal/flops"
	"eul3d/internal/mesh"
	"eul3d/internal/perf"
)

// taskKind names one parallel region of the time step; exec dispatches on
// it so that forking never builds a closure.
type taskKind uint8

const (
	tInit          taskKind = iota // w0 snapshot + pressures + lam reset (fused)
	tLamEdges                      // colored: edge spectral radii
	tLamFaces                      // colored: boundary-face spectral radii
	tDtZero                        // local time steps + stage-0 accumulator zeroing (fused)
	tConvEdges                     // colored: convective fluxes
	tConvFaces                     // colored: boundary closure
	tDiss1                         // colored: Laplacian + sensor sums
	tNu                            // sensor sums -> shock switch
	tDiss2                         // colored: blended dissipative flux
	tCombine                       // res = conv - diss (+ forcing)
	tNorm                          // block partial sums of the residual norm
	tSmoothStart                   // rhs copy + first-sweep zeroing (fused)
	tSmoothAccum                   // colored: Jacobi neighbour gather
	tSmoothCombine                 // Jacobi combine + next-sweep zeroing (fused)
	tCopyRes                       // copy smoothed result back (odd sweep counts)
	tUpdate                        // RK update (final stage)
	tUpdateNext                    // RK update + next-stage pressures + zeroing (fused)
)

// Instrumented phases of one time step.
const (
	phTimestep = iota // pressures, spectral radii, local time steps
	phConvective
	phDissipation
	phResidual // residual combine + norm reduction
	phSmoothing
	phUpdate
	nPhases
)

var phaseNames = [nPhases]string{"timestep", "convective", "dissipation", "residual", "smoothing", "update"}

// normBlock is the fixed reduction block of residualNorm; partials are
// combined in block order so the rounded norm is worker-count independent.
const normBlock = 4096

// Solver executes the five-stage scheme with colored loops dispatched to a
// persistent worker pool.
type Solver struct {
	D        *euler.Disc
	NWorkers int

	edgeColors *color.Coloring
	faceColors *color.Coloring

	w0, conv, diss, res []euler.State
	normPartial         []float64

	// Prebuilt chunk tables (computed once in New): per-worker vertex and
	// norm-block ranges, and per-color per-worker edge/face ranges as
	// absolute offsets into the coloring's Order permutation.
	vertSpans  []span
	vertActive int
	normSpans  []span
	normActive int
	edgeSpans  [][]span
	edgeActive []int
	faceSpans  [][]span
	faceActive []int

	pool   *pool
	execFn func(int) // s.exec, bound once so fork never allocates

	// Job descriptor for the current parallel region, published before the
	// fork and read by the workers (the fork/join barrier orders both
	// directions).
	job       taskKind
	group     int           // color group for colored tasks
	alpha     float64       // RK stage coefficient
	eps       float64       // residual-averaging coefficient
	zeroDiss  bool          // tDtZero/tUpdateNext: also zero dissipation arrays
	zeroCur   bool          // tSmoothCombine: also zero the next sweep's target
	w         []euler.State // solution being advanced
	forcing   []euler.State
	cur, next []euler.State // residual-averaging ping-pong

	// Instrumentation: per-phase wall clock plus analytic flop charges.
	acc                                             *perf.Accum
	flTimestep, flConv, flDiss, flCombine, flSmooth int64
	flUpdate, flUpdateNext                          int64
}

// New builds a parallel solver over mesh m. nworkers <= 0 selects
// GOMAXPROCS. The worker goroutines persist until Close (or until the
// Solver is garbage-collected).
func New(m *mesh.Mesh, p euler.Params, nworkers int) (*Solver, error) {
	if nworkers <= 0 {
		nworkers = runtime.GOMAXPROCS(0)
	}
	ec, err := color.Greedy(m.NV(), m.Edges)
	if err != nil {
		return nil, fmt.Errorf("smsolver: edge coloring: %w", err)
	}
	faces := make([][3]int32, len(m.BFaces))
	for i := range m.BFaces {
		faces[i] = m.BFaces[i].V
	}
	fc, err := color.GreedyFaces(m.NV(), faces)
	if err != nil {
		return nil, fmt.Errorf("smsolver: face coloring: %w", err)
	}
	nv := m.NV()
	nb := (nv + normBlock - 1) / normBlock
	s := &Solver{
		D:           euler.NewDisc(m, p),
		NWorkers:    nworkers,
		edgeColors:  ec,
		faceColors:  fc,
		w0:          make([]euler.State, nv),
		conv:        make([]euler.State, nv),
		diss:        make([]euler.State, nv),
		res:         make([]euler.State, nv),
		normPartial: make([]float64, nb),
		acc:         perf.NewAccum(phaseNames[:]...),
	}
	s.vertSpans, s.vertActive = buildSpans(nv, nworkers)
	s.normSpans, s.normActive = buildSpans(nb, nworkers)
	s.edgeSpans, s.edgeActive = colorSpans(ec, nworkers)
	s.faceSpans, s.faceActive = colorSpans(fc, nworkers)

	ne, nbf := int64(m.NE()), int64(len(m.BFaces))
	nv64 := int64(nv)
	s.flTimestep = nv64*flops.PresVert + ne*flops.DtEdge + nbf*flops.DtBFace + nv64*flops.DtVertex
	s.flConv = ne*flops.ConvEdge + nbf*flops.ConvBFace
	s.flDiss = ne*(flops.Diss1Edge+flops.Diss2Edge) + nv64*flops.NuVert
	s.flCombine = nv64 * flops.CombineVert
	s.flSmooth = int64(p.NSmooth) * (ne*flops.SmoothEdge + nv64*flops.SmoothVert)
	s.flUpdate = nv64 * flops.UpdateVert
	s.flUpdateNext = nv64 * (flops.UpdateVert + flops.PresVert)

	s.pool = newPool(nworkers)
	s.execFn = s.exec
	// The workers reference only the pool (its fn slot is cleared between
	// forks), so an abandoned Solver is collectable; shut its pool down
	// when that happens.
	runtime.AddCleanup(s, func(p *pool) { p.shutdown() }, s.pool)
	return s, nil
}

// colorSpans prebuilds the per-color per-worker chunk table of a coloring:
// absolute [lo,hi) offsets into c.Order, plus the per-color active worker
// count.
func colorSpans(c *color.Coloring, nw int) ([][]span, []int) {
	nc := c.NumColors()
	spans := make([][]span, nc)
	active := make([]int, nc)
	for g := 0; g < nc; g++ {
		base := int(c.Start[g])
		n := int(c.Start[g+1]) - base
		sp, a := buildSpans(n, nw)
		for w := range sp {
			sp[w].lo += base
			sp[w].hi += base
		}
		spans[g], active[g] = sp, a
	}
	return spans, active
}

// Close parks the engine permanently: the worker goroutines exit and the
// Solver must not be stepped afterwards. Close is idempotent and optional —
// the garbage collector releases the workers of an unreferenced Solver —
// but deterministic teardown is kinder to tests and long-lived processes.
func (s *Solver) Close() {
	if s.pool != nil {
		s.pool.shutdown()
		s.pool = nil
	}
}

// NumColors returns the edge and boundary-face group counts.
func (s *Solver) NumColors() (edges, faces int) {
	return s.edgeColors.NumColors(), s.faceColors.NumColors()
}

// Stats returns the accumulated per-phase wall-clock timings with their
// analytic flop charges (internal/flops), from which per-phase and total
// MFlops rates follow.
func (s *Solver) Stats() perf.Stats { return s.acc.Stats() }

// fork publishes the job descriptor and runs one parallel region.
func (s *Solver) fork(j taskKind, group, active int) {
	s.job, s.group = j, group
	s.pool.fork(s.execFn, active)
}

// coloredEdges runs one colored task over every edge group (the autotasked
// vector loop of Section 3.1), one barrier per color.
func (s *Solver) coloredEdges(j taskKind) {
	for g := range s.edgeActive {
		s.fork(j, g, s.edgeActive[g])
	}
}

// coloredFaces runs one colored task over every boundary-face group.
func (s *Solver) coloredFaces(j taskKind) {
	for g := range s.faceActive {
		s.fork(j, g, s.faceActive[g])
	}
}

// exec runs worker wk's chunk of the current parallel region. Every case
// is a table lookup plus a kernel call on solver-owned state — no
// closures, no allocation.
func (s *Solver) exec(wk int) {
	d := s.D
	switch s.job {
	case tInit:
		sp := s.vertSpans[wk]
		d.StepInitKernel(s.w, s.w0, sp.lo, sp.hi)
	case tLamEdges:
		sp := s.edgeSpans[s.group][wk]
		d.LambdaEdgesKernel(s.w, d.Lam(), s.edgeColors.Order[sp.lo:sp.hi])
	case tLamFaces:
		sp := s.faceSpans[s.group][wk]
		d.LambdaBFacesKernel(s.w, d.Lam(), s.faceColors.Order[sp.lo:sp.hi])
	case tDtZero:
		sp := s.vertSpans[wk]
		d.DtRangeKernel(d.Lam(), sp.lo, sp.hi)
		d.StageZeroKernel(s.conv, s.diss, s.zeroDiss, sp.lo, sp.hi)
	case tConvEdges:
		sp := s.edgeSpans[s.group][wk]
		d.ConvectiveEdgesKernel(s.w, s.conv, s.edgeColors.Order[sp.lo:sp.hi])
	case tConvFaces:
		sp := s.faceSpans[s.group][wk]
		d.BoundaryFluxKernel(s.w, s.conv, s.faceColors.Order[sp.lo:sp.hi])
	case tDiss1:
		sp := s.edgeSpans[s.group][wk]
		d.DissPass1Kernel(s.w, d.Lapl(), d.Sensor(), d.Den(), s.edgeColors.Order[sp.lo:sp.hi])
	case tNu:
		sp := s.vertSpans[wk]
		d.NuRangeKernel(d.Sensor(), d.Den(), sp.lo, sp.hi)
	case tDiss2:
		sp := s.edgeSpans[s.group][wk]
		d.DissPass2Kernel(s.w, d.Lapl(), s.diss, d.Sensor(), s.edgeColors.Order[sp.lo:sp.hi])
	case tCombine:
		sp := s.vertSpans[wk]
		d.CombineResidualKernel(s.res, s.conv, s.diss, s.forcing, sp.lo, sp.hi)
	case tNorm:
		sp := s.normSpans[wk]
		nv := d.M.NV()
		for b := sp.lo; b < sp.hi; b++ {
			lo := b * normBlock
			hi := lo + normBlock
			if hi > nv {
				hi = nv
			}
			sum := 0.0
			for i := lo; i < hi; i++ {
				r := s.res[i][0] / d.M.Vol[i]
				sum += r * r
			}
			s.normPartial[b] = sum
		}
	case tSmoothStart:
		sp := s.vertSpans[wk]
		copy(d.RHSScratch()[sp.lo:sp.hi], s.res[sp.lo:sp.hi])
		zero(s.next[sp.lo:sp.hi])
	case tSmoothAccum:
		sp := s.edgeSpans[s.group][wk]
		d.SmoothAccumKernel(s.cur, s.next, s.edgeColors.Order[sp.lo:sp.hi])
	case tSmoothCombine:
		sp := s.vertSpans[wk]
		d.SmoothCombineKernel(d.RHSScratch(), s.next, s.eps, sp.lo, sp.hi)
		if s.zeroCur {
			// cur has been fully gathered (barrier before this region) and
			// becomes the next sweep's accumulation target: zero it here
			// instead of in a sweep of its own.
			zero(s.cur[sp.lo:sp.hi])
		}
	case tCopyRes:
		sp := s.vertSpans[wk]
		copy(s.res[sp.lo:sp.hi], s.cur[sp.lo:sp.hi])
	case tUpdate:
		sp := s.vertSpans[wk]
		d.UpdateRangeKernel(s.w, s.w0, s.res, s.alpha, sp.lo, sp.hi)
	case tUpdateNext:
		sp := s.vertSpans[wk]
		d.UpdateRangeKernel(s.w, s.w0, s.res, s.alpha, sp.lo, sp.hi)
		d.PressureRangeKernel(s.w, sp.lo, sp.hi)
		d.StageZeroKernel(s.conv, s.diss, s.zeroDiss, sp.lo, sp.hi)
	}
}

func zero(a []euler.State) {
	for i := range a {
		a[i] = euler.State{}
	}
}

// tick charges the wall clock since *t to a phase along with its analytic
// flop count, and restarts the clock.
func (s *Solver) tick(phase int, fl int64, t *time.Time) {
	now := time.Now()
	s.acc.Add(phase, now.Sub(*t), fl)
	*t = now
}

// Step advances w by one multistage time step, identically to
// euler.Disc.Step but with all loops colored and dispatched to the worker
// pool. It returns the first-stage residual norm and performs no heap
// allocations.
func (s *Solver) Step(w []euler.State, forcing []euler.State) float64 {
	d := s.D
	if d.M.NV() == 0 {
		return 0
	}
	s.w, s.forcing = w, forcing
	t := time.Now()

	// Pressures, spectral radii, local time steps; the trailing fused sweep
	// also zeroes the stage-0 accumulators.
	s.fork(tInit, 0, s.vertActive)
	s.coloredEdges(tLamEdges)
	s.coloredFaces(tLamFaces)
	s.zeroDiss = euler.DissipStages > 0
	s.fork(tDtZero, 0, s.vertActive)
	s.tick(phTimestep, s.flTimestep, &t)

	norm := 0.0
	nstages := len(d.P.Stages)
	for q, alpha := range d.P.Stages {
		// Convective operator (accumulators were zeroed by the previous
		// stage's update sweep, or by tDtZero for stage 0).
		s.coloredEdges(tConvEdges)
		s.coloredFaces(tConvFaces)
		s.tick(phConvective, s.flConv, &t)

		// Dissipation on the first stages, frozen afterwards.
		if q < euler.DissipStages {
			s.coloredEdges(tDiss1)
			s.fork(tNu, 0, s.vertActive)
			s.coloredEdges(tDiss2)
			s.tick(phDissipation, s.flDiss, &t)
		}

		s.fork(tCombine, 0, s.vertActive)
		if q == 0 {
			norm = s.residualNorm()
		}
		s.tick(phResidual, s.flCombine, &t)

		s.smooth()
		s.tick(phSmoothing, s.flSmooth, &t)

		s.alpha = alpha
		if q == nstages-1 {
			s.fork(tUpdate, 0, s.vertActive)
			s.tick(phUpdate, s.flUpdate, &t)
		} else {
			// Fused stage boundary: RK update, next stage's pressures, and
			// next stage's accumulator zeroing in one sweep.
			s.zeroDiss = q+1 < euler.DissipStages
			s.fork(tUpdateNext, 0, s.vertActive)
			s.tick(phUpdate, s.flUpdateNext, &t)
		}
	}
	s.w, s.forcing = nil, nil
	return norm
}

// residualNorm computes the RMS density residual / volume. The reduction
// uses fixed-size blocks combined in block order, so the rounded result is
// independent of the worker count.
func (s *Solver) residualNorm() float64 {
	s.fork(tNorm, 0, s.normActive)
	sum := 0.0
	for _, p := range s.normPartial {
		sum += p
	}
	return math.Sqrt(sum / float64(s.D.M.NV()))
}

// smooth applies the implicit residual averaging with colored parallel
// sweeps on s.res. The right-hand-side copy, the first sweep's zeroing and
// each following sweep's zeroing ride along on neighbouring vertex sweeps.
func (s *Solver) smooth() {
	d := s.D
	eps := d.P.EpsSmooth
	if eps == 0 || d.P.NSmooth == 0 {
		return
	}
	s.eps = eps
	s.cur, s.next = s.res, d.SmoothScratch()
	s.fork(tSmoothStart, 0, s.vertActive)
	for sweep := 0; sweep < d.P.NSmooth; sweep++ {
		s.coloredEdges(tSmoothAccum)
		s.zeroCur = sweep+1 < d.P.NSmooth
		s.fork(tSmoothCombine, 0, s.vertActive)
		s.cur, s.next = s.next, s.cur
	}
	if &s.cur[0] != &s.res[0] {
		s.fork(tCopyRes, 0, s.vertActive)
	}
}

// InitUniform fills w with the freestream state.
func (s *Solver) InitUniform(w []euler.State) { s.D.InitUniform(w) }
