package smsolver

import (
	"runtime"
	"testing"
	"time"

	"eul3d/internal/color"
	"eul3d/internal/euler"
	"eul3d/internal/mesh"
	"eul3d/internal/meshgen"
	"eul3d/internal/refine"
)

// refinedCase builds a channel mesh, steps a solution a little away from
// freestream, selectively refines a fixed mark set, and transfers the
// solution (survivors keep their state, midpoints average their parents).
func refinedCase(t *testing.T, p euler.Params) (m0 *mesh.Mesh, r *refine.Refined, w []euler.State) {
	t.Helper()
	var err error
	m0, err = meshgen.Channel(meshgen.ChannelSpec{NX: 5, NY: 3, NZ: 2, LX: 3, LY: 1, LZ: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := euler.NewDisc(m0, p)
	w0 := make([]euler.State, m0.NV())
	d.InitUniform(w0)
	ws := euler.NewStepWorkspace(m0.NV())
	for i := 0; i < 3; i++ {
		d.Step(w0, nil, ws)
	}
	marked := make([]bool, m0.NT())
	for i := 0; i < len(marked); i += 6 {
		marked[i] = true
	}
	r, err = refine.Selective(m0, marked)
	if err != nil {
		t.Fatal(err)
	}
	w = make([]euler.State, r.Mesh.NV())
	copy(w, w0)
	for k, pr := range r.MidParents {
		var st euler.State
		for c := 0; c < euler.NVar; c++ {
			st[c] = 0.5 * (w0[pr[0]][c] + w0[pr[1]][c])
		}
		w[r.NVOld+k] = p.Repair(st)
	}
	return m0, r, w
}

func stepsBitwise(t *testing.T, label string, a, b []euler.State, na, nb float64) {
	t.Helper()
	if na != nb {
		t.Fatalf("%s: norms differ: %.17g vs %.17g", label, na, nb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: vertex %d differs", label, i)
		}
	}
}

// TestRebuildMatchesFresh asserts a rebuilt engine is bitwise identical to
// a freshly constructed one using the same (extended) colorings.
func TestRebuildMatchesFresh(t *testing.T) {
	old := SerialCutoffEdges
	SerialCutoffEdges = 0
	defer func() { SerialCutoffEdges = old }()

	p := euler.DefaultParams(0.5, 0)
	m0, r, w := refinedCase(t, p)

	s, err := New(m0, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	reused, err := s.Rebuild(r.Mesh, p)
	if err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	if reused == 0 {
		t.Fatal("rebuild reused no edge colors")
	}

	ec, _, err := color.ExtendGreedy(r.Mesh.NV(), r.Mesh.Edges, mustGreedy(t, m0), m0.Edges)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewColored(r.Mesh, p, 2, ec, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()

	wA := append([]euler.State(nil), w...)
	wB := append([]euler.State(nil), w...)
	for i := 0; i < 3; i++ {
		na := s.Step(wA, nil)
		nb := fresh.Step(wB, nil)
		stepsBitwise(t, "rebuilt vs fresh", wA, wB, na, nb)
	}
}

func mustGreedy(t *testing.T, m *mesh.Mesh) *color.Coloring {
	t.Helper()
	c, err := color.Greedy(m.NV(), m.Edges)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRebuildWorkerDeterminism asserts rebuilt engines give bitwise
// identical results at every pooled worker count: ExtendGreedy depends
// only on the meshes, and chunking never changes per-vertex accumulation
// order within a color.
func TestRebuildWorkerDeterminism(t *testing.T) {
	old := SerialCutoffEdges
	SerialCutoffEdges = 0
	defer func() { SerialCutoffEdges = old }()

	p := euler.DefaultParams(0.5, 0)
	m0, r, w := refinedCase(t, p)

	var ref []euler.State
	var refNorms []float64
	for _, nw := range []int{1, 2, 4} {
		s, err := New(m0, p, nw)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Rebuild(r.Mesh, p); err != nil {
			t.Fatal(err)
		}
		wk := append([]euler.State(nil), w...)
		var norms []float64
		for i := 0; i < 3; i++ {
			norms = append(norms, s.Step(wk, nil))
		}
		s.Close()
		if ref == nil {
			ref, refNorms = wk, norms
			continue
		}
		for i := range norms {
			if norms[i] != refNorms[i] {
				t.Fatalf("nw=%d: step %d norm differs", nw, i)
			}
		}
		for i := range wk {
			if wk[i] != ref[i] {
				t.Fatalf("nw=%d: vertex %d differs", nw, i)
			}
		}
	}
}

// TestRebuildGrowsAcrossEpochs drives two successive refinement epochs
// through one solver, checking the in-place growth path (the second epoch
// reuses first-epoch capacity where it can).
func TestRebuildGrowsAcrossEpochs(t *testing.T) {
	p := euler.DefaultParams(0.5, 0)
	m0, r1, w1 := refinedCase(t, p)

	s, err := New(m0, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Rebuild(r1.Mesh, p); err != nil {
		t.Fatal(err)
	}
	s.Step(w1, nil)

	marked := make([]bool, r1.Mesh.NT())
	for i := 0; i < len(marked); i += 9 {
		marked[i] = true
	}
	r2, err := refine.Selective(r1.Mesh, marked)
	if err != nil {
		t.Fatal(err)
	}
	w2 := make([]euler.State, r2.Mesh.NV())
	copy(w2, w1)
	for k, pr := range r2.MidParents {
		var st euler.State
		for c := 0; c < euler.NVar; c++ {
			st[c] = 0.5 * (w1[pr[0]][c] + w1[pr[1]][c])
		}
		w2[r2.NVOld+k] = p.Repair(st)
	}
	reused, err := s.Rebuild(r2.Mesh, p)
	if err != nil {
		t.Fatal(err)
	}
	if reused == 0 {
		t.Fatal("second rebuild reused nothing")
	}
	if n := s.Step(w2, nil); n <= 0 {
		t.Fatalf("step on twice-refined mesh returned norm %g", n)
	}
}

// TestIncrementalRebuildCheaper is the acceptance measurement: the
// steady-state incremental rebuild must avoid nearly all of the
// from-scratch work — greedy recoloring scratch, chunk tables, SoA
// arrays, pool spawn. The assertion is on allocated bytes, which that
// avoided work dominates and which don't wobble with machine load;
// wall-clock is logged for the curious but not asserted, because the
// timing of two sub-millisecond paths on a loaded single-CPU box (or
// under the race detector) is noise.
func TestIncrementalRebuildCheaper(t *testing.T) {
	p := euler.DefaultParams(0.5, 0)
	m0, r, _ := refinedCase(t, p)

	s, err := New(m0, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Rebuild(r.Mesh, p); err != nil {
		t.Fatal(err)
	}

	bytesPer := func(f func()) (uint64, time.Duration) {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		const runs = 5
		for i := 0; i < runs; i++ {
			f()
		}
		d := time.Since(t0) / runs
		runtime.ReadMemStats(&after)
		return (after.TotalAlloc - before.TotalAlloc) / runs, d
	}
	// After the first rebuild the capacities fit, so repeated rebuilds
	// exercise the steady-state incremental path.
	inc, incT := bytesPer(func() {
		if _, err := s.Rebuild(r.Mesh, p); err != nil {
			t.Fatal(err)
		}
	})
	scratch, scratchT := bytesPer(func() {
		f, err := New(r.Mesh, p, 2)
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
	})
	t.Logf("incremental rebuild: %d bytes, %v; from-scratch build: %d bytes, %v",
		inc, incT, scratch, scratchT)
	if inc*2 >= scratch {
		t.Fatalf("incremental rebuild allocates %d bytes, from-scratch %d — rebuild is not reusing the engine's memory",
			inc, scratch)
	}
}
