package smsolver

import (
	"fmt"
	"time"

	"eul3d/internal/trace"
)

// Flight-recorder instrumentation of the worker-pool engine. When a tracer
// is attached the engine swaps its dispatch function for execTraced, which
// brackets every worker's chunk of every parallel region with a span on
// that worker's track, and fork closes each region by writing the
// per-worker barrier-wait span (kernel end → join) — the imbalance view
// the paper's autotasking discussion is about. The orchestrator's step
// phases, RK stages and whole steps land on a separate "phases" track.
// Everything here is allocation-free in steady state: tracks, the kernel
// end-time table and the interned phase ids are preallocated at attach
// time, and recording is two time.Time reads plus a ring write.

// taskNames names every parallel region for the per-worker kernel spans,
// indexed by taskKind.
var taskNames = [...]string{
	tInit:           "init",
	tLamEdges:       "lam-edges",
	tLamFaces:       "lam-faces",
	tDtZero:         "dt-zero",
	tConvEdges:      "conv-edges",
	tConvFaces:      "conv-faces",
	tDiss1:          "diss1",
	tNu:             "nu",
	tDiss2:          "diss2",
	tCombine:        "combine",
	tCombineOut:     "combine-out",
	tNorm:           "norm",
	tSmoothStart:    "smooth-start",
	tSmoothAccum:    "smooth-accum",
	tSmoothCombine:  "smooth-combine",
	tCopyRes:        "copy-res",
	tSmoothStartS:   "smooth-start",
	tSmoothAccumS:   "smooth-accum",
	tSmoothCombineS: "smooth-combine",
	tCopyResS:       "copy-res",
	tUpdate:         "update",
	tUpdateNext:     "update-next",
	tResInit:        "res-init",
	tInterp:         "interp",
	tScatter:        "scatter",
	tRepairSave:     "repair-save",
	tCorrDelta:      "corr-delta",
	tForcingSub:     "forcing-sub",
	tApplyCorr:      "apply-corr",
}

// engineTrace holds the engine's preallocated tracing state; a nil pointer
// (the default) disables every hook at the cost of one branch.
type engineTrace struct {
	orch    *trace.Track   // orchestrator: step phases, RK stages, steps
	wtracks []*trace.Track // one per pooled worker
	kend    []time.Time    // per-worker kernel end time of the open region

	taskPh    [len(taskNames)]trace.PhaseID
	phasePh   [nPhases]trace.PhaseID
	phBarrier trace.PhaseID
	phStage   trace.PhaseID
	phStep    trace.PhaseID
}

// attachTrace registers this engine's tracks on tr (named prefix+"phases"
// and prefix+"w<i>") and enables the traced dispatch path. Call before the
// first Step/Cycle; not safe to call while a parallel region is running.
func (e *engine) attachTrace(tr *trace.Tracer, prefix string) {
	if tr == nil {
		return
	}
	et := &engineTrace{
		orch:    tr.Track(prefix + "phases"),
		wtracks: make([]*trace.Track, e.nw),
		kend:    make([]time.Time, e.nw),
	}
	for w := range et.wtracks {
		et.wtracks[w] = tr.Track(fmt.Sprintf("%sw%d", prefix, w))
	}
	for k, name := range taskNames {
		et.taskPh[k] = tr.Phase(name)
	}
	for p, name := range phaseNames {
		et.phasePh[p] = tr.Phase(name)
	}
	et.phBarrier = tr.Phase("barrier")
	et.phStage = tr.Phase("rk-stage")
	et.phStep = tr.Phase("step")
	e.et = et
	e.execFn = e.execTraced
}

// execTraced wraps exec with a kernel span on the worker's own track and
// records the kernel end time for fork's barrier span. The kend slot is
// written by worker wk and read by the orchestrator after the join; the
// pool's atomic join counter provides the happens-before edge.
func (e *engine) execTraced(wk int) {
	start := time.Now()
	e.exec(wk)
	end := time.Now()
	e.et.kend[wk] = end
	e.et.wtracks[wk].Span(e.et.taskPh[e.job], start, end, int64(e.group))
}
