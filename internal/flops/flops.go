// Package flops provides the analytic floating-point operation counts used
// to report computational rates. The paper's Delta MFlops numbers were
// "obtained by counting the number of operations in each loop" — the same
// approach is used here: each kernel has a per-element cost derived from
// its arithmetic, multiplied by real loop trip counts.
package flops

// Per-element flop costs of the solver kernels.
const (
	ConvEdge   = 48 // two flux projections + average + scatter
	ConvBFace  = 44 // boundary closure (wall/far-field average)
	Diss1Edge  = 24 // Laplacian and sensor accumulation
	Diss2Edge  = 66 // spectral radius + blended flux
	DtEdge     = 26 // spectral radius accumulation
	DtBFace    = 16
	DtVertex   = 2
	SmoothEdge = 10 // per Jacobi sweep
	SmoothVert = 12 // per Jacobi sweep
	PresVert   = 12
	NuVert     = 2
	StageVert  = 16 // residual combine + solution update
	XferVert   = 40 // 4-address interpolation, 5 variables

	// StageVert split for per-phase reporting (StageVert = CombineVert +
	// UpdateVert): forming res = conv - diss (+ forcing) vs the guarded
	// RK solution update.
	CombineVert = 6
	UpdateVert  = 10
)

// Step returns the flops of one multistage time step on a grid with nv
// vertices, ne edges and nbf boundary faces, for the hybrid scheme with
// the given stage count, dissipation evaluations and smoothing sweeps.
func Step(nv, ne, nbf int64, stages, dissStages, nsmooth int) int64 {
	s := int64(stages)
	d := int64(dissStages)
	sm := int64(nsmooth) * s
	var f int64
	f += s * (ne*ConvEdge + nbf*ConvBFace) // convective operator per stage
	f += d * ne * (Diss1Edge + Diss2Edge)  // dissipation on the first stages
	f += ne*DtEdge + nbf*DtBFace + nv*DtVertex
	f += sm * (ne*SmoothEdge + nv*SmoothVert)
	f += s * nv * (PresVert + StageVert)
	f += d * nv * NuVert
	return f
}

// Residual returns the flops of one full residual evaluation (used by the
// multigrid forcing construction).
func Residual(nv, ne, nbf int64) int64 {
	return ne*ConvEdge + nbf*ConvBFace + ne*(Diss1Edge+Diss2Edge) + nv*(PresVert+NuVert)
}

// Transfer returns the flops of the inter-grid transfers around one
// coarse-grid visit: restricting variables and residuals (fine scatter) and
// prolonging corrections.
func Transfer(nvFine, nvCoarse int64) int64 {
	return nvCoarse*XferVert + // variable restriction
		nvFine*XferVert + // residual scatter
		nvFine*XferVert // correction prolongation
}
