package flops

import "testing"

// The per-phase split of the stage cost must add up: res = conv - diss
// combine plus the guarded RK update is exactly the stage vertex work.
func TestStageVertSplit(t *testing.T) {
	if CombineVert+UpdateVert != StageVert {
		t.Fatalf("CombineVert (%d) + UpdateVert (%d) != StageVert (%d)",
			CombineVert, UpdateVert, StageVert)
	}
}

// Step against a hand count on a tiny grid: nv=3, ne=3, nbf=1 with a
// 2-stage scheme, dissipation on 1 stage and one smoothing sweep.
//
//	convective   2 * (3*48 + 1*44)      = 376
//	dissipation  1 * 3 * (24 + 66)      = 270
//	time step    3*26 + 1*16 + 3*2      = 100
//	smoothing    (1*2) * (3*10 + 3*12)  = 132
//	pres+stage   2 * 3 * (12 + 16)      = 168
//	sensor nu    1 * 3 * 2              =   6
//	total                               = 1052
func TestStepHandCount(t *testing.T) {
	if got := Step(3, 3, 1, 2, 1, 1); got != 1052 {
		t.Fatalf("Step(3,3,1,2,1,1) = %d, hand count 1052", got)
	}
	// Without smoothing the two Jacobi terms drop out.
	if got := Step(3, 3, 1, 2, 1, 0); got != 1052-132 {
		t.Fatalf("Step(3,3,1,2,1,0) = %d, hand count %d", got, 1052-132)
	}
}

// Residual against a hand count on the same tiny grid:
//
//	convective   3*48 + 1*44       = 188
//	dissipation  3 * (24 + 66)     = 270
//	pres+nu      3 * (12 + 2)      =  42
//	total                          = 500
func TestResidualHandCount(t *testing.T) {
	if got := Residual(3, 3, 1); got != 500 {
		t.Fatalf("Residual(3,3,1) = %d, hand count 500", got)
	}
}

// Transfer charges the three interpolation passes around one coarse visit:
// variable restriction (coarse vertices), residual scatter and correction
// prolongation (fine vertices each): 2*40 + 5*40 + 5*40 = 480.
func TestTransferHandCount(t *testing.T) {
	if got := Transfer(5, 2); got != 480 {
		t.Fatalf("Transfer(5,2) = %d, hand count 480", got)
	}
}

// Costs scale linearly in the mesh counts — doubling every element count
// doubles the charge.
func TestLinearScaling(t *testing.T) {
	if got, want := Step(6, 6, 2, 2, 1, 1), 2*Step(3, 3, 1, 2, 1, 1); got != want {
		t.Fatalf("Step at doubled counts = %d, want %d", got, want)
	}
	if got, want := Residual(6, 6, 2), 2*Residual(3, 3, 1); got != want {
		t.Fatalf("Residual at doubled counts = %d, want %d", got, want)
	}
	if got, want := Transfer(10, 4), 2*Transfer(5, 2); got != want {
		t.Fatalf("Transfer at doubled counts = %d, want %d", got, want)
	}
}
