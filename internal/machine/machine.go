// Package machine provides the calibrated analytic cost models that stand
// in for the paper's two platforms. The numerics of the solver are
// architecture-independent; what the Cray Y-MP C90 and the Intel
// Touchstone Delta contribute to the tables is *time*, which these models
// compute from real loop trip counts, real color-group sizes, and real
// communication-schedule volumes.
//
// SharedMachine models the C90: each colored edge group is one vectorized
// parallel region, chunked across P processors by autotasking. Per-region
// costs follow the classical (n + n_half)/r_inf vector-pipe law plus a
// multitasking dispatch overhead per processor — which is exactly why the
// paper sees total CPU time grow ~20% at 16 CPUs while wall-clock speedup
// reaches 12.4.
//
// DeltaMachine models one i860 node plus the mesh interconnect: a fixed
// effective scalar rate (halved when the mesh is not reordered, per
// Section 4.2) and the standard latency+bandwidth message cost.
package machine

// Region is one parallel vectorized region: a color group of an edge loop
// or a whole vertex loop, with its trip count and per-element flops.
type Region struct {
	N        int64 // elements
	FlopsPer int64 // flops per element
}

// SharedMachine is the Cray Y-MP C90 cost model.
type SharedMachine struct {
	RInf        float64 // asymptotic vector rate per CPU, flops/s
	NHalf       float64 // vector half-performance length
	Dispatch    float64 // multitasking overhead per region per CPU, seconds
	TaskingFrac float64 // fractional CPU-time overhead per additional CPU
}

// C90 is the calibrated Y-MP C90 model: the solver sustained ~250 MFlops
// per CPU (Table 1), n_half of O(100) for gather/scatter vector loops, and
// a few microseconds of slave-CPU dispatch per parallel region.
var C90 = SharedMachine{
	RInf:        260e6,
	NHalf:       90,
	Dispatch:    3.0e-6,
	TaskingFrac: 0.011,
}

// Time returns the wall-clock and total-CPU seconds to execute the given
// regions once on P processors. Each region is split into P chunks; every
// CPU pays the vector startup (n_half) on its chunk and the dispatch
// overhead; the wall clock follows the largest chunk.
// Multitasked execution additionally pays a fractional inefficiency per
// extra CPU (memory-bank and synchronization interference), which is what
// makes the paper's total CPU seconds grow with the CPU count.
func (c *SharedMachine) Time(regions []Region, p int) (wall, cpu float64) {
	fp := float64(p)
	eff := 1 + c.TaskingFrac*(fp-1)
	for _, r := range regions {
		if r.N == 0 {
			continue
		}
		chunk := float64((r.N + int64(p) - 1) / int64(p))
		f := float64(r.FlopsPer)
		wall += c.Dispatch + (chunk+c.NHalf)*f/c.RInf*eff
		cpu += fp*c.Dispatch + (float64(r.N)+fp*c.NHalf)*f/c.RInf*eff
	}
	return wall, cpu
}

// Flops returns the total flops of the regions.
func Flops(regions []Region) int64 {
	var f int64
	for _, r := range regions {
		f += r.N * r.FlopsPer
	}
	return f
}

// DeltaMachine is the Intel Touchstone Delta cost model.
type DeltaMachine struct {
	NodeRate      float64 // effective flops/s per i860 node on reordered data
	ReorderFactor float64 // slowdown factor without node/edge reordering
	Latency       float64 // per-message cost, seconds
	Bandwidth     float64 // bytes/s per channel
	Sync          float64 // per-exchange-phase synchronization cost, seconds
}

// Delta is the calibrated Touchstone Delta model: the paper achieved
// ~2.9 MFlops per node (5% of the i860's 60 MFlops peak) after reordering
// doubled the single-node rate; NX messaging latency was O(100 us) with
// O(10 MB/s) links.
var Delta = DeltaMachine{
	NodeRate:      3.2e6,
	ReorderFactor: 2.0,
	Latency:       120e-6,
	Bandwidth:     11e6,
	Sync:          60e-6,
}

// CompTime returns the computation seconds for a node executing the given
// flops. reordered selects the cache-friendly rate.
func (d *DeltaMachine) CompTime(flops int64, reordered bool) float64 {
	rate := d.NodeRate
	if !reordered {
		rate /= d.ReorderFactor
	}
	return float64(flops) / rate
}

// CommTime returns the communication seconds for a node that sends and
// receives the given message and byte counts across nPhases exchange
// phases.
func (d *DeltaMachine) CommTime(msgs, bytes int64, nPhases int64) float64 {
	return float64(msgs)*d.Latency + float64(bytes)/d.Bandwidth + float64(nPhases)*d.Sync
}
