package machine

import "testing"

func regions() []Region {
	return []Region{
		{N: 100000, FlopsPer: 48},
		{N: 50000, FlopsPer: 24},
		{N: 2000, FlopsPer: 66},
	}
}

func TestFlops(t *testing.T) {
	want := int64(100000*48 + 50000*24 + 2000*66)
	if got := Flops(regions()); got != want {
		t.Errorf("Flops = %d, want %d", got, want)
	}
}

func TestSharedTimeScaling(t *testing.T) {
	r := regions()
	w1, c1 := C90.Time(r, 1)
	w16, c16 := C90.Time(r, 16)
	if !(w16 < w1) {
		t.Errorf("no wall-clock speedup: %v -> %v", w1, w16)
	}
	if !(c16 > c1) {
		t.Errorf("CPU time should inflate with CPUs: %v -> %v", c1, c16)
	}
	speedup := w1 / w16
	if speedup < 8 || speedup > 16 {
		t.Errorf("16-CPU speedup %v outside plausible range", speedup)
	}
}

func TestSharedTimeSingleCPURate(t *testing.T) {
	// At 1 CPU on long loops the sustained rate approaches RInf.
	r := []Region{{N: 10_000_000, FlopsPer: 50}}
	w, _ := C90.Time(r, 1)
	rate := float64(Flops(r)) / w
	if rate < 0.9*C90.RInf || rate > C90.RInf {
		t.Errorf("1-CPU rate %v vs RInf %v", rate, C90.RInf)
	}
}

func TestSharedTimeSmallLoopsInefficient(t *testing.T) {
	// Many tiny regions: dominated by dispatch and vector startup, so the
	// sustained rate collapses — the coarse-grid effect.
	small := make([]Region, 1000)
	for i := range small {
		small[i] = Region{N: 20, FlopsPer: 50}
	}
	w, _ := C90.Time(small, 16)
	rate := float64(Flops(small)) / w
	if rate > 0.2*C90.RInf*16 {
		t.Errorf("tiny loops achieved %v flops/s, should be far below peak", rate)
	}
}

func TestSharedTimeZeroRegionSkipped(t *testing.T) {
	w, c := C90.Time([]Region{{N: 0, FlopsPer: 10}}, 4)
	if w != 0 || c != 0 {
		t.Errorf("empty region cost %v/%v", w, c)
	}
}

func TestDeltaCompReorderFactor(t *testing.T) {
	f := int64(1_000_000)
	fast := Delta.CompTime(f, true)
	slow := Delta.CompTime(f, false)
	if slow/fast < 1.9 || slow/fast > 2.1 {
		t.Errorf("reordering factor = %v, want ~2 (paper: 2x)", slow/fast)
	}
}

func TestDeltaCommLatencyVsBandwidth(t *testing.T) {
	// Many small messages cost more than one aggregated message of the
	// same volume — the rationale for PARTI's message packing.
	many := Delta.CommTime(100, 80000, 1)
	one := Delta.CommTime(1, 80000, 1)
	if !(many > one) {
		t.Errorf("aggregation should pay: %v vs %v", many, one)
	}
	if one <= float64(80000)/Delta.Bandwidth {
		t.Errorf("single message should still pay latency")
	}
}
