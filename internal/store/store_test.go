package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func payload(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*31 + seed
	}
	return b
}

func TestBlobRoundTrip(t *testing.T) {
	for _, n := range []int{1, 7, 4096} {
		p := payload(n, 3)
		got, err := DecodeBlob(EncodeBlob(p))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("n=%d: payload mismatch", n)
		}
	}
}

func TestDecodeBlobRejectsCorruption(t *testing.T) {
	blob := EncodeBlob(payload(256, 1))
	cases := map[string][]byte{
		"truncated":  blob[:len(blob)-5],
		"short":      blob[:3],
		"bit flip":   append(append([]byte(nil), blob[:40]...), append([]byte{blob[40] ^ 0x10}, blob[41:]...)...),
		"bad magic":  append([]byte("XXL3DA01"), blob[8:]...),
		"bad length": func() []byte { b := append([]byte(nil), blob...); b[8]++; return b }(),
	}
	for name, b := range cases {
		if _, err := DecodeBlob(b); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}
}

func TestPutGetMemoryOnly(t *testing.T) {
	s := NewMemory()
	p := payload(100, 7)
	h, err := s.Put(p)
	if err != nil {
		t.Fatal(err)
	}
	if h != Sum(p) {
		t.Fatalf("hash %s != Sum %s", h, Sum(p))
	}
	if !s.Has(h) {
		t.Fatal("Has miss after Put")
	}
	got, err := s.Get(h)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, p) {
		t.Fatal("payload mismatch")
	}
	if _, err := s.Get(strings.Repeat("0", 64)); err == nil {
		t.Fatal("Get of absent hash succeeded")
	}
	if _, err := s.Put(nil); err == nil {
		t.Fatal("empty Put accepted")
	}
	if st := s.Stats(); st.Puts != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDiskPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	p := payload(500, 9)
	s1, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	h, err := s1.Put(p)
	if err != nil {
		t.Fatal(err)
	}

	s2, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Has(h) {
		t.Fatal("restart lost the artifact")
	}
	got, err := s2.Get(h)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, p) {
		t.Fatal("payload mismatch after restart")
	}
}

// Concurrent puts of the same bytes must collapse to one entry and one
// disk write: no torn files, no double accounting.
func TestConcurrentSameHashPuts(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	p := payload(10_000, 5)
	want := Sum(p)
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	hashes := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			hashes[i], errs[i] = s.Put(append([]byte(nil), p...))
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("put %d: %v", i, errs[i])
		}
		if hashes[i] != want {
			t.Fatalf("put %d: hash %s", i, hashes[i])
		}
	}
	st := s.Stats()
	if st.Puts != 1 || st.DupPuts != n-1 {
		t.Fatalf("want 1 put + %d dups, got %+v", n-1, st)
	}
	if s.Len() != 1 {
		t.Fatalf("len %d", s.Len())
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range ents {
		files = append(files, e.Name())
	}
	if len(files) != 1 || files[0] != want+".blob" {
		t.Fatalf("disk files %v, want exactly %s.blob", files, want)
	}
	got, err := s.Get(want)
	if err != nil || !bytes.Equal(got, p) {
		t.Fatalf("get after racing puts: %v", err)
	}
}

func TestCorruptBlobQuarantinedAndRefetchable(t *testing.T) {
	dir := t.TempDir()
	p := payload(300, 11)
	s1, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	h, err := s1.Put(p)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt the blob on disk, then reopen so the store must read it.
	path := filepath.Join(dir, h+".blob")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Get(h); err == nil {
		t.Fatal("corrupt blob served")
	}
	if s2.Has(h) {
		t.Fatal("corrupt entry still tracked")
	}
	if st := s2.Stats(); st.Quarantines != 1 {
		t.Fatalf("quarantines %d", st.Quarantines)
	}
	if _, err := os.Stat(path + ".quar"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	// A re-upload of the same bytes heals the store.
	h2, err := s2.Put(p)
	if err != nil || h2 != h {
		t.Fatalf("re-put: %s %v", h2, err)
	}
	got, err := s2.Get(h)
	if err != nil || !bytes.Equal(got, p) {
		t.Fatalf("get after heal: %v", err)
	}
}

// A blob whose bytes are a valid frame for *different* content (wrong
// file under the name) must fail the content check, not just the CRC.
func TestMismatchedContentQuarantined(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	h, err := s1.Put(payload(64, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite with a well-formed blob of other content.
	if err := os.WriteFile(filepath.Join(dir, h+".blob"), EncodeBlob(payload(64, 2)), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Get(h); err == nil {
		t.Fatal("mismatched blob served")
	}
	if st := s2.Stats(); st.Quarantines != 1 {
		t.Fatalf("quarantines %d", st.Quarantines)
	}
}

func TestMemEvictionSpillsToDisk(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Dir: dir, MemBudget: 2500})
	if err != nil {
		t.Fatal(err)
	}
	var hashes []string
	for i := 0; i < 5; i++ {
		h, err := s.Put(payload(1000, byte(i)))
		if err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, h)
	}
	if mb := s.MemBytes(); mb > 2500 {
		t.Fatalf("mem %d over budget", mb)
	}
	if s.Len() != 5 {
		t.Fatalf("len %d: disk-backed entries evicted entirely", s.Len())
	}
	// Every artifact remains retrievable (reloaded from disk).
	for i, h := range hashes {
		got, err := s.Get(h)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if !bytes.Equal(got, payload(1000, byte(i))) {
			t.Fatalf("get %d: payload mismatch", i)
		}
	}
	if st := s.Stats(); st.Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
}

func TestMemoryOnlyEvictionDropsIdle(t *testing.T) {
	s, err := New(Config{MemBudget: 2500})
	if err != nil {
		t.Fatal(err)
	}
	var hashes []string
	for i := 0; i < 5; i++ {
		h, _ := s.Put(payload(1000, byte(i)))
		hashes = append(hashes, h)
	}
	if mb := s.MemBytes(); mb > 2500 {
		t.Fatalf("mem %d over budget", mb)
	}
	if s.Len() >= 5 {
		t.Fatal("nothing evicted")
	}
	// The most recent artifact must survive LRU pressure.
	if !s.Has(hashes[4]) {
		t.Fatal("most-recent artifact evicted")
	}
}

func TestPinnedEntriesSurviveEviction(t *testing.T) {
	s, err := New(Config{MemBudget: 1500})
	if err != nil {
		t.Fatal(err)
	}
	p := payload(1000, 42)
	h, _ := s.Put(p)
	if err := s.Pin(h); err != nil {
		t.Fatal(err)
	}
	// Flood the store far past budget; the pinned artifact must stay.
	for i := 0; i < 8; i++ {
		s.Put(payload(1000, byte(i)))
	}
	got, err := s.Get(h)
	if err != nil || !bytes.Equal(got, p) {
		t.Fatalf("pinned artifact lost: %v", err)
	}
	s.Unpin(h)
	// Now idle: further pressure may evict it.
	for i := 8; i < 20; i++ {
		s.Put(payload(1000, byte(i)))
	}
	if s.MemBytes() > 1500 {
		t.Fatalf("mem %d over budget after unpin", s.MemBytes())
	}
}

func TestDiskBudgetEvictsWholeArtifacts(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Dir: dir, MemBudget: 100_000, DiskBudget: 3 * (1000 + int64(blobOverhead))})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := s.Put(payload(1000, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if db := s.DiskBytes(); db > 3*(1000+int64(blobOverhead)) {
		t.Fatalf("disk %d over budget", db)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) > 3 {
		t.Fatalf("%d blobs on disk, budget allows 3", len(ents))
	}
}

func TestValidHash(t *testing.T) {
	if !ValidHash(Sum([]byte("x"))) {
		t.Fatal("real hash rejected")
	}
	for _, h := range []string{"", "abc", strings.Repeat("g", 64), strings.Repeat("A", 64)} {
		if ValidHash(h) {
			t.Fatalf("%q accepted", h)
		}
	}
}

func TestConcurrentMixedOps(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Dir: dir, MemBudget: 8000})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				p := payload(500+50*(i%4), byte(i%6))
				h, err := s.Put(p)
				if err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if err := s.Pin(h); err == nil {
					if got, err := s.Get(h); err != nil || !bytes.Equal(got, p) {
						t.Errorf("get under pin: %v", err)
					}
					s.Unpin(h)
				}
				s.Has(h)
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Exactly 6 distinct payload seeds × 4 sizes = 24 possible artifacts.
	if n := s.Len(); n > 24 {
		t.Fatalf("len %d", n)
	}
}

func FuzzArtifactDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeBlob([]byte("mesh bytes")))
	f.Add(EncodeBlob(payload(64, 3)))
	f.Add([]byte(blobMagic))
	blob := EncodeBlob(payload(33, 8))
	blob[11] ^= 0x01
	f.Add(blob)
	f.Fuzz(func(t *testing.T, b []byte) {
		payload, err := DecodeBlob(b)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode to the identical frame.
		if got := EncodeBlob(payload); !bytes.Equal(got, b) {
			t.Fatalf("decode/encode not a round trip: %d vs %d bytes", len(got), len(b))
		}
	})
}

func BenchmarkPutGet(b *testing.B) {
	s := NewMemory()
	p := payload(1<<16, 1)
	h, _ := s.Put(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(h); err != nil {
			b.Fatal(err)
		}
	}
	_ = fmt.Sprintf("%s", h)
}
