// Package store is a content-addressed artifact store for the serving
// tier: meshes, checkpoints and solve results keyed by the sha256 of
// their bytes. A blob's hash is its identity — a client uploads a mesh
// once and every later job references it by hash, the coordinator moves
// checkpoints between nodes as hash references, and identical requests
// dedup naturally because identical bytes collapse to one key.
//
// The store is two tiers: an in-memory map for hot artifacts over an
// optional disk directory for durability. Disk blobs carry the same
// discipline as meshio checkpoints — a magic, a length header and a
// CRC32 (IEEE) trailer, written to a temp file, fsynced and renamed —
// so a crash mid-write can never leave a torn blob under a valid name,
// and bit rot is detected on read (a corrupt blob is quarantined, the
// entry forgotten, and a re-upload of the same bytes heals it).
//
// Eviction is idle-only LRU under byte budgets: pinned entries (an
// in-flight solve holding a mesh) are never evicted, memory eviction
// drops bytes that also live on disk first, and disk eviction removes
// whole artifacts least-recently-used.
package store

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// blobMagic leads every disk blob, versioned like the meshio formats.
const blobMagic = "EUL3DA01"

// blobOverhead is the framing around the payload: magic + int64 payload
// length + CRC32 trailer.
const blobOverhead = len(blobMagic) + 8 + 4

// MaxBlobSize bounds a single artifact (a fine mesh or checkpoint is a
// few MB; 256MB leaves two orders of headroom without letting one PUT
// exhaust the process).
const MaxBlobSize = 256 << 20

// ErrNotFound is returned by Get/Pin for hashes the store does not hold.
var ErrNotFound = errors.New("store: artifact not found")

// Sum returns the store key for a payload: lowercase hex sha256.
func Sum(data []byte) string {
	s := sha256.Sum256(data)
	return hex.EncodeToString(s[:])
}

// ValidHash reports whether h is syntactically a store key.
func ValidHash(h string) bool {
	if len(h) != 2*sha256.Size {
		return false
	}
	for i := 0; i < len(h); i++ {
		c := h[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// EncodeBlob frames a payload for disk: magic, payload length, payload,
// CRC32 (IEEE) trailer over everything preceding it.
func EncodeBlob(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+blobOverhead)
	out = append(out, blobMagic...)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
}

// DecodeBlob validates a framed blob and returns its payload (aliasing
// b). It rejects short frames, a wrong magic, a length header that does
// not match the frame, and any CRC mismatch — a torn or bit-rotted blob
// never yields bytes.
func DecodeBlob(b []byte) ([]byte, error) {
	if len(b) < blobOverhead {
		return nil, fmt.Errorf("store: truncated blob (%d bytes)", len(b))
	}
	body, trailer := b[:len(b)-4], b[len(b)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("store: blob CRC mismatch: computed %08x, trailer %08x", got, want)
	}
	if string(body[:len(blobMagic)]) != blobMagic {
		return nil, fmt.Errorf("store: bad blob magic %q", body[:len(blobMagic)])
	}
	n := binary.LittleEndian.Uint64(body[len(blobMagic) : len(blobMagic)+8])
	payload := body[len(blobMagic)+8:]
	if n != uint64(len(payload)) {
		return nil, fmt.Errorf("store: blob length header %d, payload %d", n, len(payload))
	}
	return payload, nil
}

// Config sizes a Store.
type Config struct {
	// Dir is the disk tier ("" = memory only). Blobs land as
	// <hash>.blob; quarantined corrupt files as <hash>.blob.quar.
	Dir string

	// MemBudget caps resident payload bytes (default 256MB). Eviction
	// drops idle entries' memory copies, preferring ones safe on disk.
	MemBudget int64

	// DiskBudget caps on-disk blob bytes (default 2GB; ignored without
	// Dir). Disk eviction removes whole idle artifacts LRU-first.
	DiskBudget int64
}

func (c *Config) fill() {
	if c.MemBudget <= 0 {
		c.MemBudget = 256 << 20
	}
	if c.DiskBudget <= 0 {
		c.DiskBudget = 2 << 30
	}
}

// Metrics is the store's counter block; gauges (Len, MemBytes,
// DiskBytes) are read live from the store.
type Metrics struct {
	hits        int64
	misses      int64
	puts        int64
	dupPuts     int64
	evictions   int64
	quarantines int64
}

// entry is one artifact. data == nil means the memory copy was evicted
// (the blob lives on disk and reloads on demand).
type entry struct {
	hash     string
	data     []byte
	size     int64 // payload bytes
	blobSize int64 // framed on-disk bytes
	pins     int
	onDisk   bool
	elem     *list.Element
}

// Store is the two-tier content-addressed artifact store. All methods
// are safe for concurrent use. Slices returned by Get are shared and
// must be treated as read-only.
type Store struct {
	cfg Config

	mu        sync.Mutex
	entries   map[string]*entry
	lru       *list.List // front = most recently used
	memBytes  int64
	diskBytes int64
	writing   map[string]struct{} // hashes with a disk write in flight
	met       Metrics
}

// New builds a store, scanning an existing Dir so artifacts survive a
// process restart. Scanned blobs are admitted lazily: their bytes load
// (and CRC-verify) on first Get.
func New(cfg Config) (*Store, error) {
	cfg.fill()
	s := &Store{
		cfg:     cfg,
		entries: make(map[string]*entry),
		lru:     list.New(),
		writing: make(map[string]struct{}),
	}
	if cfg.Dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", cfg.Dir, err)
	}
	ents, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("store: scanning %s: %w", cfg.Dir, err)
	}
	for _, de := range ents {
		name := de.Name()
		hash, ok := strings.CutSuffix(name, ".blob")
		if !ok || !ValidHash(hash) {
			continue
		}
		fi, err := de.Info()
		if err != nil || fi.Size() < int64(blobOverhead) {
			continue // a torn leftover; Get would quarantine it anyway
		}
		e := &entry{hash: hash, size: fi.Size() - int64(blobOverhead), blobSize: fi.Size(), onDisk: true}
		e.elem = s.lru.PushBack(e)
		s.entries[hash] = e
		s.diskBytes += e.blobSize
	}
	return s, nil
}

// NewMemory builds a memory-only store with default budgets.
func NewMemory() *Store {
	s, err := New(Config{})
	if err != nil {
		panic(err) // unreachable: no Dir means no I/O in New
	}
	return s
}

// Dir returns the disk-tier directory ("" for memory-only stores).
func (s *Store) Dir() string { return s.cfg.Dir }

func (s *Store) blobPath(hash string) string {
	return filepath.Join(s.cfg.Dir, hash+".blob")
}

// Put stores a payload and returns its hash. Concurrent Puts of the
// same bytes collapse to one entry and at most one disk write: the
// first caller inserts the entry under the lock and performs the write;
// later callers see the entry and return immediately.
func (s *Store) Put(data []byte) (string, error) {
	if len(data) == 0 {
		return "", errors.New("store: refusing empty artifact")
	}
	if len(data) > MaxBlobSize {
		return "", fmt.Errorf("store: artifact %d bytes exceeds limit %d", len(data), MaxBlobSize)
	}
	hash := Sum(data)
	s.mu.Lock()
	if e, ok := s.entries[hash]; ok {
		// Same content already held (possibly only on disk, possibly
		// still being written by a racing Put): nothing to store.
		s.touchLocked(e)
		if e.data == nil && e.pins == 0 {
			// Re-admit the bytes we were just handed; cheaper than a
			// disk round trip on the next Get.
			e.data = append([]byte(nil), data...)
			s.memBytes += e.size
			s.evictLocked()
		}
		s.met.dupPuts++
		s.mu.Unlock()
		return hash, nil
	}
	e := &entry{hash: hash, data: append([]byte(nil), data...), size: int64(len(data))}
	e.elem = s.lru.PushFront(e)
	s.entries[hash] = e
	s.memBytes += e.size
	s.met.puts++
	writeDisk := s.cfg.Dir != ""
	if writeDisk {
		s.writing[hash] = struct{}{}
	}
	s.evictLocked()
	s.mu.Unlock()

	if !writeDisk {
		return hash, nil
	}
	err := writeBlob(s.blobPath(hash), e.data)
	s.mu.Lock()
	delete(s.writing, hash)
	if err == nil {
		if cur := s.entries[hash]; cur == e {
			e.onDisk = true
			e.blobSize = e.size + int64(blobOverhead)
			s.diskBytes += e.blobSize
			s.evictLocked()
		} else {
			// Evicted (memory-only) while the write was in flight; the
			// blob on disk is orphaned — remove it.
			os.Remove(s.blobPath(hash))
		}
	}
	s.mu.Unlock()
	if err != nil {
		// The entry stays memory-resident and serviceable; report the
		// durability failure to the caller.
		return hash, fmt.Errorf("store: persisting %s: %w", hash[:12], err)
	}
	return hash, nil
}

// writeBlob persists a framed payload atomically: temp file, fsync,
// rename — the meshio checkpoint discipline.
func writeBlob(path string, payload []byte) error {
	blob := EncodeBlob(payload)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Get returns the payload for hash, reloading (and CRC- plus
// hash-verifying) it from disk when the memory copy was evicted. A blob
// that fails verification is quarantined — renamed aside, its entry
// dropped — and Get reports ErrNotFound so the caller can re-fetch the
// artifact from wherever it originated.
func (s *Store) Get(hash string) ([]byte, error) {
	s.mu.Lock()
	e, ok := s.entries[hash]
	if !ok {
		s.met.misses++
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNotFound, hash)
	}
	if e.data != nil {
		s.touchLocked(e)
		s.met.hits++
		data := e.data
		s.mu.Unlock()
		return data, nil
	}
	// Pin across the disk read so eviction cannot remove the entry (or
	// the file) underneath us.
	e.pins++
	s.mu.Unlock()

	raw, err := os.ReadFile(s.blobPath(hash))
	var payload []byte
	if err == nil {
		payload, err = DecodeBlob(raw)
	}
	if err == nil && Sum(payload) != hash {
		err = fmt.Errorf("store: blob content does not match its name %s", hash[:12])
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	e.pins--
	if err != nil {
		s.quarantineLocked(e, err)
		s.met.misses++
		return nil, fmt.Errorf("%w: %s (blob failed verification)", ErrNotFound, hash)
	}
	if e.data == nil {
		e.data = payload
		s.memBytes += e.size
	}
	s.touchLocked(e)
	s.met.hits++
	data := e.data
	s.evictLocked()
	return data, nil
}

// Has reports whether the store holds hash (memory or disk, without
// verifying disk bytes — Get does that).
func (s *Store) Has(hash string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[hash]
	return ok
}

// Size returns the payload size for hash, or ErrNotFound.
func (s *Store) Size(hash string) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[hash]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, hash)
	}
	return e.size, nil
}

// Pin marks hash in use: a pinned entry (and its blob) survives any
// eviction pressure until the matching Unpin. Pins nest.
func (s *Store) Pin(hash string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[hash]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, hash)
	}
	e.pins++
	return nil
}

// Unpin releases one Pin reference.
func (s *Store) Unpin(hash string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[hash]; ok && e.pins > 0 {
		e.pins--
		if e.pins == 0 {
			s.evictLocked()
		}
	}
}

// quarantineLocked drops a failed entry, setting its blob aside as
// <hash>.blob.quar for post-mortem instead of deleting the evidence.
func (s *Store) quarantineLocked(e *entry, cause error) {
	if cur := s.entries[e.hash]; cur != e {
		return // a racing quarantine (or re-Put) already replaced it
	}
	path := s.blobPath(e.hash)
	os.Rename(path, path+".quar")
	if e.onDisk {
		s.diskBytes -= e.blobSize
	}
	if e.data != nil {
		s.memBytes -= e.size
	}
	s.lru.Remove(e.elem)
	delete(s.entries, e.hash)
	s.met.quarantines++
}

func (s *Store) touchLocked(e *entry) {
	s.lru.MoveToFront(e.elem)
}

// evictLocked enforces the byte budgets over idle (unpinned) entries,
// least-recently-used first. Memory pressure drops in-memory copies —
// removing the whole artifact only when it has no disk home and no
// write in flight. Disk pressure removes whole artifacts.
func (s *Store) evictLocked() {
	for el := s.lru.Back(); el != nil && s.memBytes > s.cfg.MemBudget; {
		prev := el.Prev()
		e := el.Value.(*entry)
		if e.pins == 0 && e.data != nil {
			if e.onDisk {
				s.memBytes -= e.size
				e.data = nil
				s.met.evictions++
			} else if _, inflight := s.writing[e.hash]; !inflight {
				s.memBytes -= e.size
				s.lru.Remove(el)
				delete(s.entries, e.hash)
				s.met.evictions++
			}
		}
		el = prev
	}
	if s.cfg.Dir == "" {
		return
	}
	for el := s.lru.Back(); el != nil && s.diskBytes > s.cfg.DiskBudget; {
		prev := el.Prev()
		e := el.Value.(*entry)
		if e.pins == 0 && e.onDisk {
			if _, inflight := s.writing[e.hash]; !inflight {
				os.Remove(s.blobPath(e.hash))
				s.diskBytes -= e.blobSize
				if e.data != nil {
					s.memBytes -= e.size
				}
				s.lru.Remove(el)
				delete(s.entries, e.hash)
				s.met.evictions++
			}
		}
		el = prev
	}
}

// --- observability ---------------------------------------------------------

// Len returns the number of artifacts tracked (memory or disk).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// MemBytes returns resident payload bytes.
func (s *Store) MemBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.memBytes
}

// DiskBytes returns on-disk framed blob bytes.
func (s *Store) DiskBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.diskBytes
}

// Stats snapshots the counters.
type Stats struct {
	Hits, Misses, Puts, DupPuts, Evictions, Quarantines int64
}

// Stats returns a counter snapshot.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:        s.met.hits,
		Misses:      s.met.misses,
		Puts:        s.met.puts,
		DupPuts:     s.met.dupPuts,
		Evictions:   s.met.evictions,
		Quarantines: s.met.quarantines,
	}
}

// Hashes returns the tracked hashes (unordered); for tests and debug.
func (s *Store) Hashes() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.entries))
	for h := range s.entries {
		out = append(out, h)
	}
	return out
}
