package graph

import (
	"math/rand"
	"testing"
)

// pathGraph returns edges of a path 0-1-2-...-n-1.
func pathGraph(n int) [][2]int32 {
	e := make([][2]int32, n-1)
	for i := 0; i < n-1; i++ {
		e[i] = [2]int32{int32(i), int32(i + 1)}
	}
	return e
}

func TestFromEdgesDegrees(t *testing.T) {
	g, err := FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{3, 2, 3, 2}
	for v, d := range want {
		if g.Degree(int32(v)) != d {
			t.Errorf("degree(%d) = %d, want %d", v, g.Degree(int32(v)), d)
		}
	}
	if g.N() != 4 {
		t.Errorf("N = %d", g.N())
	}
}

func TestFromEdgesRejectsOutOfRange(t *testing.T) {
	if _, err := FromEdges(3, [][2]int32{{0, 5}}); err == nil {
		t.Error("accepted out-of-range edge")
	}
	if _, err := FromEdges(3, [][2]int32{{-1, 0}}); err == nil {
		t.Error("accepted negative vertex")
	}
}

func TestNeighborsSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 50
	var edges [][2]int32
	seen := map[[2]int32]bool{}
	for len(edges) < 120 {
		a, b := int32(rng.Intn(n)), int32(rng.Intn(n))
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]int32{a, b}] {
			continue
		}
		seen[[2]int32{a, b}] = true
		edges = append(edges, [2]int32{a, b})
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); int(v) < n; v++ {
		for _, w := range g.Neighbors(v) {
			found := false
			for _, u := range g.Neighbors(w) {
				if u == v {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("adjacency not symmetric: %d->%d", v, w)
			}
		}
	}
}

func TestBFSLevelsOnPath(t *testing.T) {
	g, _ := FromEdges(6, pathGraph(6))
	level, order := g.BFS(0)
	for v := 0; v < 6; v++ {
		if level[v] != int32(v) {
			t.Errorf("level[%d] = %d, want %d", v, level[v], v)
		}
	}
	if len(order) != 6 || order[0] != 0 {
		t.Errorf("order = %v", order)
	}
}

func TestBFSUnreachable(t *testing.T) {
	g, _ := FromEdges(4, [][2]int32{{0, 1}})
	level, order := g.BFS(0)
	if level[2] != -1 || level[3] != -1 {
		t.Errorf("unreachable levels: %v", level)
	}
	if len(order) != 2 {
		t.Errorf("order = %v", order)
	}
}

func TestComponents(t *testing.T) {
	g, _ := FromEdges(6, [][2]int32{{0, 1}, {1, 2}, {4, 5}})
	comp, nc := g.Components()
	if nc != 3 {
		t.Fatalf("components = %d, want 3", nc)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Error("0,1,2 should share a component")
	}
	if comp[4] != comp[5] || comp[3] == comp[4] || comp[3] == comp[0] {
		t.Error("bad component labels")
	}
}

func TestPseudoPeripheralPath(t *testing.T) {
	g, _ := FromEdges(9, pathGraph(9))
	p := g.PseudoPeripheral(4)
	if p != 0 && p != 8 {
		t.Errorf("pseudo-peripheral of path from middle = %d, want an end", p)
	}
}

func TestBandwidth(t *testing.T) {
	g, _ := FromEdges(10, [][2]int32{{0, 9}, {1, 2}})
	if bw := g.Bandwidth(); bw != 9 {
		t.Errorf("bandwidth = %d, want 9", bw)
	}
	g2, _ := FromEdges(10, pathGraph(10))
	if bw := g2.Bandwidth(); bw != 1 {
		t.Errorf("path bandwidth = %d, want 1", bw)
	}
}
