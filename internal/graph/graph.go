// Package graph provides the compressed-sparse-row vertex adjacency used by
// the preprocessing stages of the solver: edge coloring, Cuthill–McKee
// reordering, and recursive spectral bisection all operate on the vertex
// graph induced by the mesh edge list.
package graph

import "fmt"

// CSR is an undirected graph in compressed sparse row form. Vertex v's
// neighbours are Adj[Ptr[v]:Ptr[v+1]].
type CSR struct {
	Ptr []int32
	Adj []int32
}

// FromEdges builds the CSR adjacency of an undirected graph with n vertices
// from an edge list. Both endpoints of every edge must be in [0, n).
func FromEdges(n int, edges [][2]int32) (*CSR, error) {
	ptr := make([]int32, n+1)
	for ei, e := range edges {
		if e[0] < 0 || int(e[0]) >= n || e[1] < 0 || int(e[1]) >= n {
			return nil, fmt.Errorf("graph: edge %d (%d,%d) out of range [0,%d)", ei, e[0], e[1], n)
		}
		ptr[e[0]+1]++
		ptr[e[1]+1]++
	}
	for v := 0; v < n; v++ {
		ptr[v+1] += ptr[v]
	}
	adj := make([]int32, ptr[n])
	fill := make([]int32, n)
	for _, e := range edges {
		a, b := e[0], e[1]
		adj[ptr[a]+fill[a]] = b
		fill[a]++
		adj[ptr[b]+fill[b]] = a
		fill[b]++
	}
	return &CSR{Ptr: ptr, Adj: adj}, nil
}

// N returns the number of vertices.
func (g *CSR) N() int { return len(g.Ptr) - 1 }

// Degree returns the degree of vertex v.
func (g *CSR) Degree(v int32) int32 { return g.Ptr[v+1] - g.Ptr[v] }

// Neighbors returns the adjacency list of v (a view into Adj; do not
// modify).
func (g *CSR) Neighbors(v int32) []int32 { return g.Adj[g.Ptr[v]:g.Ptr[v+1]] }

// BFS performs a breadth-first traversal from root, returning visit levels
// (-1 for unreachable vertices) and the visit order.
func (g *CSR) BFS(root int32) (level []int32, order []int32) {
	n := g.N()
	level = make([]int32, n)
	for i := range level {
		level[i] = -1
	}
	order = make([]int32, 0, n)
	level[root] = 0
	order = append(order, root)
	for head := 0; head < len(order); head++ {
		v := order[head]
		for _, w := range g.Neighbors(v) {
			if level[w] < 0 {
				level[w] = level[v] + 1
				order = append(order, w)
			}
		}
	}
	return level, order
}

// Components labels connected components, returning the label array and the
// number of components.
func (g *CSR) Components() ([]int32, int) {
	n := g.N()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var stack []int32
	nc := 0
	for s := int32(0); int(s) < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = int32(nc)
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(v) {
				if comp[w] < 0 {
					comp[w] = int32(nc)
					stack = append(stack, w)
				}
			}
		}
		nc++
	}
	return comp, nc
}

// PseudoPeripheral returns a vertex of (approximately) maximal eccentricity
// in the component containing start, found by repeated BFS — the standard
// starting point for Cuthill–McKee orderings.
func (g *CSR) PseudoPeripheral(start int32) int32 {
	cur := start
	best := int32(-1)
	for {
		level, order := g.BFS(cur)
		last := order[len(order)-1]
		ecc := level[last]
		if ecc <= best {
			return cur
		}
		best = ecc
		cur = last
	}
}

// Bandwidth returns the maximum |i-j| over all graph edges under the
// identity labelling — a locality measure that Cuthill–McKee reduces.
func (g *CSR) Bandwidth() int32 {
	var bw int32
	for v := int32(0); int(v) < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			d := v - w
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}
