// Package serve turns the steady-state solver into a multi-tenant
// service: a bounded-queue job scheduler with priorities, deadlines,
// admission control and cooperative cancellation; an engine cache that
// keys prebuilt solver.Steady engines (mesh + discretization + colorings +
// parked worker pool) by mesh-content hash, so concurrent requests for the
// same mesh share one build and repeat requests pay zero setup; and a
// worker-budget governor that caps the total pooled workers running at any
// instant across concurrent shared-memory jobs. cmd/eul3dd exposes the
// scheduler over HTTP.
//
// The paper's workflow was batch — preprocess once, solve once. This
// package is the first layer that treats a solve as a request: engines are
// long-lived and shared, jobs are queued, observed mid-flight, cancelled,
// checkpointed on drain and resumed on restart. Per-job results remain
// bitwise deterministic: an engine is leased to exactly one job at a time
// and Reset (or Restore) before every run.
package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"

	"eul3d/internal/adapt"
	"eul3d/internal/euler"
	"eul3d/internal/mesh"
	"eul3d/internal/meshgen"
	"eul3d/internal/meshio"
	"eul3d/internal/scenario"
	"eul3d/internal/store"
)

// Engine kinds selectable per job.
const (
	KindSingle = "single" // sequential single grid
	KindSM     = "sm"     // shared-memory worker pool, single grid
	KindMG     = "mg"     // sequential FAS multigrid
	KindSMMG   = "smmg"   // pooled FAS multigrid
)

// MeshSpec names the mesh a job runs on: a generated bump-channel mesh
// (NX/NY/NZ/Seed, the repository's standard geometry), a mesh file
// written by cmd/meshgen (Path; Path is a per-level prefix for multigrid
// kinds, as in eul3d -mesh-prefix), or — the upload-once path — the
// sha256 of mesh bytes previously PUT to the node's artifact store
// (Hash). The engine cache keys on the mesh *content*, not on this
// spec, so a generated mesh and an identical upload share an engine.
type MeshSpec struct {
	NX   int    `json:"nx,omitempty"`
	NY   int    `json:"ny,omitempty"`
	NZ   int    `json:"nz,omitempty"`
	Seed int64  `json:"seed,omitempty"`
	Path string `json:"path,omitempty"`
	Hash string `json:"hash,omitempty"`
}

// JobSpec is one solve request.
type JobSpec struct {
	Mesh     MeshSpec `json:"mesh"`
	Mach     float64  `json:"mach"`
	AlphaDeg float64  `json:"alpha"`

	// Scenario names a preset from internal/scenario. It replaces the mesh
	// spec, Mach/alpha and numerical parameters wholesale (the two are
	// mutually exclusive), defaults Cycles/Tol to the preset's values, and
	// makes the job start from the preset's initial state instead of the
	// freestream. The response carries the preset's diagnostics.
	Scenario string `json:"scenario,omitempty"`

	Engine  string `json:"engine,omitempty"`  // single | sm | mg | smmg (default single)
	Workers int    `json:"workers,omitempty"` // pooled kinds: worker-pool size (default 2)
	Levels  int    `json:"levels,omitempty"`  // multigrid kinds: grid levels (default 3)
	Cycle   string `json:"cycle,omitempty"`   // multigrid kinds: "v" or "w" (default "w")

	Cycles int     `json:"cycles"`        // MaxCycles for the run
	Tol    float64 `json:"tol,omitempty"` // relative residual tolerance (0 = run all cycles)

	// Adapt, when set, makes the job an adaptive solve (internal/adapt):
	// the mesh is refined where the error indicator concentrates and the
	// engine rebuilt incrementally between epochs. Adaptive jobs bypass
	// the engine cache — their mesh mutates mid-run, so a cached engine
	// could never be shared — and require a single-grid engine.
	Adapt *AdaptSpec `json:"adapt,omitempty"`

	Priority   int   `json:"priority,omitempty"`    // higher runs first; FIFO within a priority
	DeadlineMS int64 `json:"deadline_ms,omitempty"` // wall-clock budget from submission (0 = none)
}

// AdaptSpec configures the adaptation schedule of an adaptive job. The
// zero value of each field selects the internal/adapt default.
type AdaptSpec struct {
	Budget    int     `json:"budget,omitempty"`    // cell budget (0 = 4x the starting count)
	Interval  int     `json:"interval,omitempty"`  // steps between epochs (default 50)
	Epochs    int     `json:"epochs,omitempty"`    // refinement epochs allowed (default 2)
	Indicator string  `json:"indicator,omitempty"` // density | pressure | residual (default density)
	Frac      float64 `json:"frac,omitempty"`      // fraction of cells marked per epoch (default 0.1)
}

// MaxCyclesLimit caps per-job cycle counts so one request cannot occupy a
// runner indefinitely.
const MaxCyclesLimit = 1 << 20

// Validate normalizes defaults in place and rejects malformed specs.
func (s *JobSpec) Validate() error {
	var sc *scenario.Scenario
	if s.Scenario != "" {
		var err error
		if sc, err = scenario.Get(s.Scenario); err != nil {
			return err
		}
		if s.Mesh != (MeshSpec{}) {
			return fmt.Errorf("serve: scenario %q and an explicit mesh are mutually exclusive", s.Scenario)
		}
		if s.Mach != 0 || s.AlphaDeg != 0 {
			return fmt.Errorf("serve: scenario %q fixes the flow state; mach/alpha must be unset", s.Scenario)
		}
		if s.Cycles == 0 {
			s.Cycles = sc.Steps
		}
		if s.Tol == 0 {
			s.Tol = sc.Tol
		}
	}
	if s.Engine == "" {
		s.Engine = KindSingle
	}
	switch s.Engine {
	case KindSingle, KindMG:
		s.Workers = 0
	case KindSM, KindSMMG:
		if s.Workers == 0 {
			s.Workers = 2
		}
		if s.Workers < 1 || s.Workers > 256 {
			return fmt.Errorf("serve: workers %d out of range [1,256]", s.Workers)
		}
	default:
		return fmt.Errorf("serve: unknown engine %q (want single, sm, mg or smmg)", s.Engine)
	}
	switch s.Engine {
	case KindMG, KindSMMG:
		if s.Levels == 0 {
			s.Levels = 3
		}
		minLevels := 2
		if sc != nil {
			// Scenario presets cap the hierarchy depth; unsteady ones force
			// a single level, where a cycle degenerates to exactly one
			// time-accurate fine-grid step.
			if s.Levels > sc.MaxLevels {
				s.Levels = sc.MaxLevels
			}
			minLevels = 1
		}
		if s.Levels < minLevels || s.Levels > 8 {
			return fmt.Errorf("serve: levels %d out of range [%d,8]", s.Levels, minLevels)
		}
		switch s.Cycle {
		case "":
			s.Cycle = "w"
		case "v", "w":
		default:
			return fmt.Errorf("serve: unknown cycle %q (want v or w)", s.Cycle)
		}
	default:
		s.Levels, s.Cycle = 1, ""
	}
	if a := s.Adapt; a != nil {
		if s.Engine != KindSingle && s.Engine != KindSM {
			return fmt.Errorf("serve: adaptation requires a single-grid engine (single or sm), not %q", s.Engine)
		}
		if a.Interval == 0 {
			a.Interval = 50
		}
		if a.Interval < 1 {
			return fmt.Errorf("serve: adapt interval %d must be positive", a.Interval)
		}
		if a.Epochs == 0 {
			a.Epochs = 2
		}
		if a.Epochs < 1 || a.Epochs > 16 {
			return fmt.Errorf("serve: adapt epochs %d out of range [1,16]", a.Epochs)
		}
		if a.Frac == 0 {
			a.Frac = 0.1
		}
		if !(a.Frac > 0 && a.Frac <= 0.5) {
			return fmt.Errorf("serve: adapt frac %g out of range (0,0.5]", a.Frac)
		}
		if a.Indicator == "" {
			a.Indicator = "density"
		}
		if !adapt.ValidIndicator(a.Indicator) {
			return fmt.Errorf("serve: unknown adapt indicator %q (want density, pressure or residual)", a.Indicator)
		}
		if a.Budget < 0 {
			return fmt.Errorf("serve: negative adapt cell budget %d", a.Budget)
		}
	}
	if s.Mesh.Hash != "" {
		if !store.ValidHash(s.Mesh.Hash) {
			return fmt.Errorf("serve: malformed mesh hash %q (want 64 hex chars)", s.Mesh.Hash)
		}
		if s.Mesh.Path != "" || s.Mesh.NX != 0 || s.Mesh.NY != 0 || s.Mesh.NZ != 0 || s.Mesh.Seed != 0 {
			return fmt.Errorf("serve: mesh hash is exclusive with path and generator dimensions")
		}
		if s.Levels != 1 {
			// A hash names exactly one mesh artifact; the multigrid kinds
			// need a coarsening sequence the store does not hold.
			return fmt.Errorf("serve: mesh hash requires a single-grid engine (single or sm)")
		}
	}
	if s.Scenario == "" && s.Mesh.Path == "" && s.Mesh.Hash == "" {
		if s.Mesh.NX < 1 || s.Mesh.NY < 1 || s.Mesh.NZ < 1 {
			return fmt.Errorf("serve: mesh dimensions %dx%dx%d must be positive", s.Mesh.NX, s.Mesh.NY, s.Mesh.NZ)
		}
		if s.Mesh.NX*s.Mesh.NY*s.Mesh.NZ > 1<<22 {
			return fmt.Errorf("serve: mesh %dx%dx%d too large", s.Mesh.NX, s.Mesh.NY, s.Mesh.NZ)
		}
	}
	if s.Cycles < 1 || s.Cycles > MaxCyclesLimit {
		return fmt.Errorf("serve: cycles %d out of range [1,%d]", s.Cycles, MaxCyclesLimit)
	}
	if s.Tol < 0 || math.IsNaN(s.Tol) {
		return fmt.Errorf("serve: negative tolerance %g", s.Tol)
	}
	if s.DeadlineMS < 0 {
		return fmt.Errorf("serve: negative deadline %d", s.DeadlineMS)
	}
	if math.IsNaN(s.Mach) || math.IsInf(s.Mach, 0) || s.Mach < 0 || s.Mach > 20 {
		return fmt.Errorf("serve: implausible Mach %g", s.Mach)
	}
	return nil
}

// gamma returns the multigrid cycle index (0 for single-grid kinds).
func (s *JobSpec) gamma() int {
	switch s.Cycle {
	case "v":
		return 1
	case "w":
		return 2
	}
	return 0
}

// pooledWorkers is the worker count charged to the budget governor while
// the job runs (0 for sequential kinds).
func (s *JobSpec) pooledWorkers() int { return s.Workers }

// scenario returns the job's preset, or nil. The spec has been Validated,
// so a lookup failure is impossible; it returns nil defensively anyway.
func (s *JobSpec) scenario() *scenario.Scenario {
	if s.Scenario == "" {
		return nil
	}
	sc, err := scenario.Get(s.Scenario)
	if err != nil {
		return nil
	}
	return sc
}

// Params builds the numerical parameter set for the job.
func (s *JobSpec) Params() euler.Params {
	if sc := s.scenario(); sc != nil {
		return sc.Params()
	}
	return euler.DefaultParams(s.Mach, s.AlphaDeg)
}

// BuildMeshes generates or loads the job's mesh sequence (finest first;
// one level for single-grid kinds).
func (s *JobSpec) BuildMeshes() ([]*mesh.Mesh, error) {
	if sc := s.scenario(); sc != nil {
		return sc.Meshes(s.Levels)
	}
	if s.Mesh.Path != "" {
		out := make([]*mesh.Mesh, s.Levels)
		for l := 0; l < s.Levels; l++ {
			path := s.Mesh.Path
			if s.Levels > 1 {
				path = fmt.Sprintf("%s.L%d.mesh", s.Mesh.Path, l)
			}
			m, err := meshio.LoadMesh(path)
			if err != nil {
				return nil, err
			}
			out[l] = m
		}
		return out, nil
	}
	spec := meshgen.DefaultChannel(s.Mesh.NX, s.Mesh.NY, s.Mesh.NZ, s.Mesh.Seed)
	return meshgen.Sequence(spec, s.Levels)
}

// BuildMeshesFrom is BuildMeshes with an artifact store for hash-named
// meshes: the bytes uploaded under Mesh.Hash are decoded as the meshio
// wire format. The caller is expected to hold a Pin on the hash.
func (s *JobSpec) BuildMeshesFrom(art *store.Store) ([]*mesh.Mesh, error) {
	if s.Mesh.Hash == "" {
		return s.BuildMeshes()
	}
	if art == nil {
		return nil, fmt.Errorf("serve: mesh hash %s needs an artifact store", s.Mesh.Hash[:12])
	}
	data, err := art.Get(s.Mesh.Hash)
	if err != nil {
		return nil, err
	}
	m, err := meshio.DecodeMesh(data)
	if err != nil {
		return nil, fmt.Errorf("serve: mesh artifact %s: %w", s.Mesh.Hash[:12], err)
	}
	return []*mesh.Mesh{m}, nil
}

// SpecHash condenses every result-determining field of a validated spec
// — mesh identity, flow state, scenario, engine kind, workers, levels,
// cycle shape, cycle budget, tolerance — into the coalescing key. Two
// concurrent jobs with equal SpecHash would run the identical solve and
// produce bitwise-identical results, so the scheduler runs one and fans
// the result out. Priority and deadline are deliberately excluded: they
// shape scheduling, not the answer.
func (s *JobSpec) SpecHash() string {
	h := sha256.New()
	fmt.Fprintf(h, "scenario=%s|mesh=%s/%s/%d/%d/%d/%d|mach=%x|alpha=%x|engine=%s|workers=%d|levels=%d|cycle=%s|cycles=%d|tol=%x",
		s.Scenario, s.Mesh.Hash, s.Mesh.Path, s.Mesh.NX, s.Mesh.NY, s.Mesh.NZ, s.Mesh.Seed,
		s.Mach, s.AlphaDeg, s.Engine, s.Workers, s.Levels, s.Cycle, s.Cycles, s.Tol)
	if a := s.Adapt; a != nil {
		// The adaptation schedule determines the result (refined mesh and
		// all); folded in only when present so non-adaptive hashes are
		// unchanged from earlier releases.
		fmt.Fprintf(h, "|adapt=%d/%d/%d/%s/%x", a.Budget, a.Interval, a.Epochs, a.Indicator, a.Frac)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// EngineKey identifies a cached engine: the mesh-content + parameter hash,
// the engine kind, and the pool size (which fixes the chunk tables).
type EngineKey struct {
	Sum     [sha256.Size]byte
	Kind    string
	Workers int
}

// String renders a short stable form for logs and metrics labels.
func (k EngineKey) String() string {
	return fmt.Sprintf("%s/%d/%x", k.Kind, k.Workers, k.Sum[:6])
}

// Key derives the engine-cache key for the given mesh sequence under this
// spec. Two specs that produce bitwise-identical meshes and numerical
// parameters share a key (and therefore an engine).
func (s *JobSpec) Key(ms []*mesh.Mesh) EngineKey {
	h := sha256.New()
	for _, m := range ms {
		hashMesh(h, m)
	}
	p := s.Params()
	// The parameter set contains only numeric fields and a fixed-length
	// stage table; its printed form is a stable content fingerprint. The
	// scenario name is folded in explicitly: a preset also fixes the
	// initial state, which the mesh+params hash cannot see.
	fmt.Fprintf(h, "|params=%v|gamma=%d|scenario=%s", p, s.gamma(), s.Scenario)
	k := EngineKey{Kind: s.Engine, Workers: s.Workers}
	h.Sum(k.Sum[:0])
	return k
}

// hashMesh folds the mesh content — coordinates, connectivity, boundary
// faces and kinds — into h. Derived edge structure is a function of these.
func hashMesh(h hash.Hash, m *mesh.Mesh) {
	var buf [8]byte
	putU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	putU64(uint64(m.NV()))
	for _, x := range m.X {
		putU64(math.Float64bits(x.X))
		putU64(math.Float64bits(x.Y))
		putU64(math.Float64bits(x.Z))
	}
	putU64(uint64(m.NT()))
	for _, t := range m.Tets {
		putU64(uint64(uint32(t[0]))<<32 | uint64(uint32(t[1])))
		putU64(uint64(uint32(t[2]))<<32 | uint64(uint32(t[3])))
	}
	putU64(uint64(len(m.BFaces)))
	for _, f := range m.BFaces {
		putU64(uint64(uint32(f.V[0]))<<32 | uint64(uint32(f.V[1])))
		putU64(uint64(uint32(f.V[2]))<<32 | uint64(f.Kind))
	}
}
