package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"eul3d/internal/meshgen"
	"eul3d/internal/meshio"
	"eul3d/internal/store"
)

func jsonDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// waitViewDone polls the HTTP view until the job leaves the live states.
func waitViewDone(t *testing.T, srv *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v := getJob(t, srv, id)
		switch v.State {
		case StateQueued, StateRunning, StateCoalesced:
			time.Sleep(2 * time.Millisecond)
		default:
			return v
		}
	}
	t.Fatalf("job %s did not finish", id)
	return JobView{}
}

// The upload-once path over HTTP: PUT mesh bytes, solve by hash, and get
// the identical result a generated-mesh job produces — plus conditional
// GET via the result-hash ETag, and 412 for a hash nobody uploaded.
func TestArtifactHTTP(t *testing.T) {
	_, srv := newTestServer(t, Config{QueueCap: 4, Runners: 1, WorkerBudget: 4})

	// Encode the exact mesh the generator path would build for smallJob.
	ms, err := meshgen.Sequence(meshgen.DefaultChannel(4, 2, 2, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := meshio.EncodeMesh(ms[0])
	if err != nil {
		t.Fatal(err)
	}

	// Upload it.
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/v1/artifacts", bytes.NewReader(blob))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var put struct {
		Hash  string `json:"hash"`
		Bytes int    `json:"bytes"`
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT artifact status %d, want 201", resp.StatusCode)
	}
	if err := jsonDecode(resp, &put); err != nil {
		t.Fatal(err)
	}
	if put.Hash != store.Sum(blob) || put.Bytes != len(blob) {
		t.Fatalf("PUT artifact returned %+v, want hash %s (%d bytes)", put, store.Sum(blob), len(blob))
	}

	// HEAD and GET it back.
	hresp, err := http.Head(srv.URL + "/v1/artifacts/" + put.Hash)
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD artifact status %d, want 200", hresp.StatusCode)
	}
	gresp, err := http.Get(srv.URL + "/v1/artifacts/" + put.Hash)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := readAll(gresp)
	if gresp.StatusCode != http.StatusOK || !bytes.Equal(got, blob) {
		t.Fatalf("GET artifact: status %d, %d bytes, want 200 with the uploaded %d bytes",
			gresp.StatusCode, len(got), len(blob))
	}

	// Solve by hash and by generator dims: bitwise-identical histories.
	_, byDims := postJob(t, srv, smallJob+``)
	waitViewDone(t, srv, byDims.ID)
	_, byHash := postJob(t, srv,
		`{"mesh":{"hash":"`+put.Hash+`"},"mach":0.5,"engine":"single","cycles":10,"wait":true}`)
	if byHash.State != StateCompleted {
		t.Fatalf("solve-by-hash state %s err %q, want completed", byHash.State, byHash.Error)
	}
	dims := getJob(t, srv, byDims.ID)
	if len(byHash.History) != len(dims.History) {
		t.Fatalf("history length %d (hash) vs %d (dims)", len(byHash.History), len(dims.History))
	}
	for c := range byHash.History {
		if byHash.History[c] != dims.History[c] {
			t.Fatalf("histories diverge at cycle %d: %v != %v", c, byHash.History[c], dims.History[c])
		}
	}
	if byHash.ResultHash == "" || byHash.ResultHash != dims.ResultHash {
		t.Fatalf("result hashes differ: %q (hash) vs %q (dims)", byHash.ResultHash, dims.ResultHash)
	}

	// Conditional GET: the ETag is the result hash; If-None-Match => 304.
	jreq, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/jobs/"+byHash.ID, nil)
	jresp, err := http.DefaultClient.Do(jreq)
	if err != nil {
		t.Fatal(err)
	}
	jresp.Body.Close()
	etag := jresp.Header.Get("ETag")
	if etag != `"`+byHash.ResultHash+`"` {
		t.Fatalf("ETag %q, want quoted result hash %q", etag, byHash.ResultHash)
	}
	jreq2, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/jobs/"+byHash.ID, nil)
	jreq2.Header.Set("If-None-Match", etag)
	jresp2, err := http.DefaultClient.Do(jreq2)
	if err != nil {
		t.Fatal(err)
	}
	jresp2.Body.Close()
	if jresp2.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET status %d, want 304", jresp2.StatusCode)
	}

	// A hash nobody uploaded: 412 tells the caller to upload first, and
	// artifact GET/HEAD are plain 404s.
	absent := strings.Repeat("ab", 32)
	if resp, _ := postJob(t, srv,
		`{"mesh":{"hash":"`+absent+`"},"mach":0.5,"engine":"single","cycles":10}`); resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("solve with absent hash status %d, want 412", resp.StatusCode)
	}
	aresp, err := http.Get(srv.URL + "/v1/artifacts/" + absent)
	if err != nil {
		t.Fatal(err)
	}
	aresp.Body.Close()
	if aresp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET absent artifact status %d, want 404", aresp.StatusCode)
	}

	// A malformed hash in the spec is a 400, not a 412.
	if resp, _ := postJob(t, srv,
		`{"mesh":{"hash":"zz"},"mach":0.5,"cycles":10}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed hash status %d, want 400", resp.StatusCode)
	}
}
