package serve

import (
	"sync"
	"testing"
	"time"
)

// Cancellation-race coverage: the scheduler's cancellation paths are
// exercised at their narrowest windows — a deadline that has already
// passed when the runner pops the job, a client cancel that lands while
// the job is blocked inside engine-acquire, and concurrent drains.

// TestSchedulerCancellationRaces drives the two single-job races through
// one table: each case arranges a specific race window, fires the cancel,
// and asserts the terminal state the scheduler must resolve it to.
func TestSchedulerCancellationRaces(t *testing.T) {
	cases := []struct {
		name string
		// arrange submits the victim into the prepared scheduler (one
		// runner, blocked by blocker) and returns it.
		arrange func(t *testing.T, s *Scheduler) *Job
		// trigger fires the cancellation once the victim is staged.
		trigger func(t *testing.T, s *Scheduler, victim, blocker *Job)
		want    JobState
		// wantNoRun asserts the victim never executed a cycle.
		wantNoRun bool
	}{
		{
			// The deadline passes while the job sits in the queue; the
			// runner pops it and must expire it in the dispatch preamble,
			// before any mesh build or engine work.
			name: "deadline expires at dequeue",
			arrange: func(t *testing.T, s *Scheduler) *Job {
				// Occupy the second runner too, so the victim must queue.
				b2, err := s.Submit(chanSpec(5, 2, 2, 8, KindSingle, 0, 200000))
				if err != nil {
					t.Fatal(err)
				}
				waitState(t, b2, StateRunning)
				spec := chanSpec(4, 2, 2, 1, KindSingle, 0, 50)
				spec.DeadlineMS = 1 // long gone by the time a runner frees up
				j, err := s.Submit(spec)
				if err != nil {
					t.Fatal(err)
				}
				time.Sleep(10 * time.Millisecond) // let the deadline lapse while queued
				return j
			},
			trigger: func(t *testing.T, s *Scheduler, victim, blocker *Job) {
				if _, err := s.Cancel(blocker.ID); err != nil { // frees the runner: victim dequeues now
					t.Fatal(err)
				}
			},
			want:      StateExpired,
			wantNoRun: true,
		},
		{
			// The victim shares the blocker's engine key, so it blocks in
			// cache.Acquire waiting on the engine lease; the client cancel
			// must unblock it there and resolve to cancelled, leaving the
			// engine leasable for the blocker's release.
			name: "client cancel during engine acquire",
			arrange: func(t *testing.T, s *Scheduler) *Job {
				j, err := s.Submit(chanSpec(4, 2, 2, 7, KindSingle, 0, 50))
				if err != nil {
					t.Fatal(err)
				}
				return j
			},
			trigger: func(t *testing.T, s *Scheduler, victim, blocker *Job) {
				waitState(t, victim, StateRunning) // running = inside dispatch, parked on the lease
				time.Sleep(20 * time.Millisecond)  // settle into cache.Acquire's select
				if _, err := s.Cancel(victim.ID); err != nil {
					t.Fatal(err)
				}
			},
			want:      StateCancelled,
			wantNoRun: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Two runners so the victim of the acquire race can enter
			// dispatch while the blocker holds the engine.
			s := NewScheduler(Config{QueueCap: 8, Runners: 2, WorkerBudget: 4})
			defer s.Stop()
			blocker, err := s.Submit(chanSpec(4, 2, 2, 7, KindSingle, 0, 200000))
			if err != nil {
				t.Fatal(err)
			}
			waitState(t, blocker, StateRunning)
			waitCycles(t, blocker, 1)

			victim := tc.arrange(t, s)
			tc.trigger(t, s, victim, blocker)
			waitDone(t, victim)
			if st := victim.State(); st != tc.want {
				t.Fatalf("victim state %s, want %s", st, tc.want)
			}
			if tc.wantNoRun && victim.View().Cycles != 0 {
				t.Errorf("victim ran %d cycles, want 0", victim.View().Cycles)
			}
			// Stop (deferred) cancels the blockers and waits them out.
		})
	}
}

// TestSchedulerDoubleDrain races two Drains (and a trailing Stop) against
// a running and a queued job: both calls must return, every job must reach
// a terminal or drained state exactly once, and nothing may deadlock or
// double-close a done channel.
func TestSchedulerDoubleDrain(t *testing.T) {
	s := NewScheduler(Config{QueueCap: 8, Runners: 1, WorkerBudget: 4, StateDir: t.TempDir()})
	running, err := s.Submit(chanSpec(6, 3, 2, 1, KindSingle, 0, 200000))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning)
	waitCycles(t, running, 1)
	queued, err := s.Submit(chanSpec(6, 3, 2, 2, KindSingle, 0, 50))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Drain()
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent Drain calls did not both return")
	}
	// Idempotent after the fact too.
	s.Drain()
	s.Stop()

	for _, j := range []*Job{running, queued} {
		waitDone(t, j)
		if st := j.State(); st != StateDrained {
			t.Errorf("job %s state %s, want drained", j.ID, st)
		}
	}
	if n := s.Metrics().Drained.Load(); n != 2 {
		t.Errorf("drained counter %d, want 2", n)
	}
}
