package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"eul3d/internal/trace"
)

// TestSchedulerTrace runs two jobs with the same spec through a traced
// scheduler: each job must get its own lifecycle track with queued and run
// spans, the first a cache-miss instant and the second a cache-hit, and
// the /debug/trace endpoint must serve the whole thing as loadable Chrome
// trace JSON.
func TestSchedulerTrace(t *testing.T) {
	tr := trace.New(256)
	s := NewScheduler(Config{Runners: 1, Trace: tr})
	defer s.Stop()

	spec := chanSpec(6, 4, 3, 1, KindSingle, 0, 2)
	j1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j1)
	j2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2)

	phases := func(id string) map[string]int {
		t.Helper()
		var tk *trace.Track
		for _, c := range tr.Tracks() {
			if c.Name() == "job "+id {
				tk = c
			}
		}
		if tk == nil {
			t.Fatalf("no track for job %s", id)
		}
		out := map[string]int{}
		for _, ev := range tk.Events() {
			out[tr.PhaseName(ev.Phase)]++
		}
		return out
	}

	p1, p2 := phases(j1.ID), phases(j2.ID)
	for _, ph := range []string{"queued", "engine-acquire", "run", "job-done"} {
		if p1[ph] == 0 {
			t.Errorf("job 1 missing %q (%v)", ph, p1)
		}
		if p2[ph] == 0 {
			t.Errorf("job 2 missing %q (%v)", ph, p2)
		}
	}
	if p1["cache-miss"] != 1 {
		t.Errorf("first job should be a cache miss (%v)", p1)
	}
	if p2["cache-hit"] != 1 {
		t.Errorf("second job should be a cache hit (%v)", p2)
	}

	// Latency histograms fed by the same dispatch path.
	m := s.Metrics()
	if m.QueueWait.Count() != 2 || m.RunTime.Count() != 2 {
		t.Errorf("hist counts queue=%d run=%d, want 2/2", m.QueueWait.Count(), m.RunTime.Count())
	}

	// The debug endpoint serves the recorder as valid Chrome trace JSON.
	srv := httptest.NewServer(NewAPI(s).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/trace = %d", resp.StatusCode)
	}
	if n, err := trace.Validate(resp.Body); err != nil {
		t.Fatalf("trace endpoint output invalid: %v", err)
	} else if n == 0 {
		t.Fatal("trace endpoint produced no events")
	}

	// Metrics endpoint renders the histograms and the merged phase table.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"eul3dd_job_queue_wait_seconds_bucket{le=\"+Inf\"} 2",
		"eul3dd_job_run_seconds_count 2",
		"eul3dd_solver_phase_seconds{phase=",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestTraceEndpointDisabled: without a tracer the endpoint 404s.
func TestTraceEndpointDisabled(t *testing.T) {
	s := NewScheduler(Config{Runners: 1})
	defer s.Stop()
	srv := httptest.NewServer(NewAPI(s).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /debug/trace without tracer = %d, want 404", resp.StatusCode)
	}
}
