package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/pprof"
	"time"

	"eul3d/internal/adapt"
	"eul3d/internal/euler"
	"eul3d/internal/meshio"
	"eul3d/internal/solver"
	"eul3d/internal/trace"
)

// runAdapt executes an adaptive job (Spec.Adapt != nil) through its
// terminal state. It parallels dispatch's tail but deliberately bypasses
// the engine cache: an adaptive run refines its mesh mid-flight, so a
// cached engine would be poisoned for every later lease. The engine is
// built fresh, rebuilt incrementally by the driver after every epoch, and
// closed when the run ends. Drain and restart carry the current (adapted)
// mesh next to the checkpoint — a plain solution checkpoint can no longer
// describe the run once the mesh has changed.
func (s *Scheduler) runAdapt(j *Job, ctx context.Context, tk *trace.Track) {
	p := j.Spec.Params()
	opts := adapt.Options{
		Params:    p,
		Engine:    j.Spec.Engine,
		Workers:   j.Spec.Workers,
		Steps:     j.Spec.Cycles,
		Tolerance: j.Spec.Tol,
		Budget:    j.Spec.Adapt.Budget,
		Interval:  j.Spec.Adapt.Interval,
		MaxEpochs: j.Spec.Adapt.Epochs,
		Indicator: j.Spec.Adapt.Indicator,
		Frac:      j.Spec.Adapt.Frac,
		Trace:     s.cfg.Trace,
		Progress: func(step int, norm float64) {
			j.mu.Lock()
			j.history = append(j.history, norm)
			j.mu.Unlock()
		},
	}

	switch {
	case j.adaptResume != nil:
		// Mesh-carrying resume point (drain or periodic checkpoint): the
		// driver restarts exactly where the interrupted run stopped, on
		// the adapted mesh. The spec's own mesh is not needed. The job's
		// visible history is seeded with the pre-interruption steps, which
		// Progress only reports from the resume point on.
		opts.Resume = j.adaptResume
		j.mu.Lock()
		j.history = append(j.history[:0], j.adaptResume.History...)
		j.mu.Unlock()
	default:
		if h := j.Spec.Mesh.Hash; h != "" {
			if err := s.cfg.Store.Pin(h); err != nil {
				s.finish(j, nil, fmt.Errorf("%w: %s", ErrNoArtifact, h))
				return
			}
			defer s.cfg.Store.Unpin(h)
		}
		ms, err := j.Spec.BuildMeshesFrom(s.cfg.Store)
		if err != nil {
			s.finish(j, nil, err)
			return
		}
		opts.Mesh = ms[0]
		if sc := j.Spec.scenario(); sc != nil {
			opts.Init = sc.InitialState(ms[0])
		} else {
			opts.Init = make([]euler.State, ms[0].NV())
			for i := range opts.Init {
				opts.Init[i] = p.Freestream
			}
		}
		if ck := j.resume; ck != nil {
			// A handed-off plain checkpoint is resumable only while the run
			// had not yet refined — its solution must still fit the spec's
			// mesh. Past the first epoch the mesh travels in the adapt
			// sidecar, which a coordinator handoff does not carry.
			if len(ck.Sol) != ms[0].NV() {
				s.finish(j, nil, fmt.Errorf(
					"serve: adapted checkpoint (%d states) no longer fits the spec mesh (%d points); adaptive jobs cannot be handed off mid-adaptation",
					len(ck.Sol), ms[0].NV()))
				return
			}
			opts.Resume = &adapt.Snapshot{
				Mesh:      ms[0],
				W:         ck.Sol,
				History:   ck.History,
				Step:      ck.Cycle,
				Dt:        p.GlobalDt,
				StepsLeft: j.Spec.Cycles - ck.Cycle,
			}
			opts.Mesh, opts.Init = nil, nil
		}
	}

	nw := j.Spec.pooledWorkers()
	govStart := time.Now()
	if err := s.gov.Acquire(ctx, nw); err != nil {
		if cause := context.Cause(ctx); cause != nil {
			err = cause
		}
		s.finish(j, nil, err)
		return
	}
	defer s.gov.Release(nw)
	if s.trc != nil {
		tk.Span(s.trc.phGovWait, govStart, time.Now(), int64(nw))
	}

	if s.cfg.CheckpointEvery > 0 && s.cfg.StateDir != "" {
		opts.CheckpointEvery = s.cfg.CheckpointEvery
		opts.OnCheckpoint = func(snap *adapt.Snapshot) error {
			// A failed periodic checkpoint degrades survivability, not the
			// run itself: log and keep solving.
			if err := s.saveAdaptSnapshot(j, snap); err != nil {
				s.cfg.Log.Printf("job %s: adapt checkpoint: %v", j.ID, err)
			}
			return nil
		}
		if err := s.writeSidecar(sidecar{ID: j.ID, Spec: j.Spec}); err != nil {
			s.cfg.Log.Printf("job %s: persisting run sidecar: %v", j.ID, err)
		}
	}

	runStart := time.Now()
	var res *adapt.Result
	var err error
	pprof.Do(ctx, pprof.Labels(
		"job", j.ID, "engine", j.Spec.Engine, "adapt", "1",
	), func(ctx context.Context) {
		opts.Context = ctx
		res, err = adapt.Run(opts)
	})
	runEnd := time.Now()
	s.met.RunTime.Observe(runEnd.Sub(runStart))
	if s.trc != nil {
		var steps int64
		if res != nil {
			steps = int64(res.Steps)
		}
		tk.Span(s.trc.phRun, runStart, runEnd, steps)
	}
	if err != nil {
		s.finish(j, nil, err)
		return
	}

	s.met.AdaptEpochs.Add(int64(len(res.Epochs)))
	s.met.AdaptCells.Add(int64(res.CellsRefined))
	var rebuildNS int64
	for _, ep := range res.Epochs {
		rebuildNS += ep.RebuildNS
	}
	s.met.AdaptRebuildNS.Add(rebuildNS)
	j.mu.Lock()
	j.adaptEpochs = res.Epochs
	j.mu.Unlock()

	sr := adaptSolverResult(res)
	if res.Cancelled {
		cause := context.Cause(ctx)
		if errors.Is(cause, errDrainStop) {
			s.adaptDrainCheckpoint(j, res, sr)
			return
		}
		s.finish(j, sr, cause)
		return
	}
	if i, v, diverged := divergedAt(res.History); diverged {
		s.finish(j, sr, fmt.Errorf("diverged: residual %g at cycle %d", v, i))
		return
	}
	if sc := j.Spec.scenario(); sc != nil {
		// Diagnose against the final adapted mesh — the solution lives on
		// it, not on the spec's starting mesh.
		d := sc.Diagnose(res.Mesh, res.Solution, res.FinalNorm)
		j.mu.Lock()
		j.diag = &d
		j.mu.Unlock()
	}
	s.finish(j, sr, nil)
}

// adaptSolverResult shapes an adaptive result into the solver.Result the
// shared finish path records (steps map onto cycles).
func adaptSolverResult(res *adapt.Result) *solver.Result {
	sr := &solver.Result{
		Cycles:       res.Steps,
		History:      res.History,
		InitialNorm:  res.InitialNorm,
		FinalNorm:    res.FinalNorm,
		Converged:    res.Converged,
		Cancelled:    res.Cancelled,
		FineSolution: res.Solution,
	}
	if sr.InitialNorm > 0 && sr.FinalNorm > 0 {
		sr.Ordersof10 = -math.Log10(sr.FinalNorm / sr.InitialNorm)
	}
	return sr
}

// saveAdaptSnapshot persists an adaptive job's resume point: the solution
// as a CRC-trailered checkpoint, the current (adapted) mesh, and a sidecar
// carrying the adaptation counters. All three are needed — the solution is
// meaningless without the mesh it lives on.
func (s *Scheduler) saveAdaptSnapshot(j *Job, snap *adapt.Snapshot) error {
	ck := &meshio.Checkpoint{
		Cycle:    snap.Step,
		Mach:     j.Spec.Mach,
		AlphaDeg: j.Spec.AlphaDeg,
		CFL:      j.Spec.Params().CFL,
		History:  snap.History,
		Sol:      snap.W,
	}
	if err := meshio.SaveCheckpoint(s.ckptPath(j.ID), ck); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := meshio.SaveMesh(s.ameshPath(j.ID), snap.Mesh); err != nil {
		return fmt.Errorf("adapted mesh: %w", err)
	}
	return s.writeSidecar(sidecar{
		ID: j.ID, Spec: j.Spec,
		Checkpoint: j.ID + ".ckpt",
		AdaptMesh:  j.ID + ".amesh",
		Adapt: &adaptSidecar{
			EpochsDone:   snap.EpochsDone,
			Dt:           snap.Dt,
			StepsLeft:    snap.StepsLeft,
			SinceEpoch:   snap.SinceEpoch,
			CellsRefined: snap.CellsRefined,
		},
	})
}

// adaptDrainCheckpoint is drainCheckpoint for adaptive jobs: persist the
// driver's snapshot (mesh included) so a restarted server resumes the run
// on the adapted mesh. The resume is bitwise-exact for the sequential
// engine. A resumed pooled engine re-colors the adapted mesh from scratch,
// whereas the uninterrupted run's coloring descends from the original mesh
// via ExtendGreedy — a different edge order inside parallel chunks, so the
// continuation can differ from the uninterrupted run in the last ulps
// (it is still a valid solve of the same discrete system).
func (s *Scheduler) adaptDrainCheckpoint(j *Job, res *adapt.Result, sr *solver.Result) {
	s.retireFlight(j)
	if s.cfg.StateDir == "" || res.Snap == nil {
		s.finish(j, sr, errDrainStop)
		return
	}
	if err := s.saveAdaptSnapshot(j, res.Snap); err != nil {
		s.finish(j, sr, fmt.Errorf("adapt drain: %w", err))
		return
	}
	j.mu.Lock()
	j.state = StateDrained
	j.result = sr
	j.mu.Unlock()
	s.met.Drained.Add(1)
	if s.trc != nil {
		s.trc.jobTrack(j.ID).Instant(s.trc.phDrain, time.Now(), int64(res.Steps))
	}
	s.cfg.Log.Printf("job %s: drained at step %d on a %d-cell adapted mesh",
		j.ID, res.Steps, res.Snap.Mesh.NT())
}
