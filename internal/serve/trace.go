package serve

import (
	"eul3d/internal/trace"
)

// Flight-recorder instrumentation of the service layer. Every job gets its
// own small track ("job <id>") carrying the lifecycle as spans — the time
// spent queued, waiting on the worker-budget governor, acquiring an engine,
// and running — plus cache-hit/miss and terminal-state instants. Loading
// the /debug/trace dump into a Chrome-trace viewer therefore shows the
// scheduler's multiplexing decisions next to the solver timelines.

// jobTrackCap bounds each per-job ring: a job's lifecycle is a handful of
// spans, so the tracks stay tiny even with hundreds of jobs.
const jobTrackCap = 32

// schedTrace holds the scheduler's interned phases; nil disables tracing.
type schedTrace struct {
	tr *trace.Tracer

	phQueued  trace.PhaseID // admission -> dispatch (arg = priority)
	phGovWait trace.PhaseID // worker-budget governor wait (arg = workers)
	phAcquire trace.PhaseID // engine-cache acquire, incl. lease waits and builds
	phRun     trace.PhaseID // solver run (arg = cycles completed)

	phHit    trace.PhaseID // engine served from cache
	phMiss   trace.PhaseID // this job built the engine
	phDone   trace.PhaseID // terminal instant (arg = cycles recorded)
	phDrain  trace.PhaseID // drained by graceful shutdown
	phAttach trace.PhaseID // waiter coalesced onto a live flight (arg = parties)
	phFanout trace.PhaseID // shared result copied to a waiter (arg = cycles)
}

func newSchedTrace(tr *trace.Tracer) *schedTrace {
	if tr == nil {
		return nil
	}
	return &schedTrace{
		tr:        tr,
		phQueued:  tr.Phase("queued"),
		phGovWait: tr.Phase("governor-wait"),
		phAcquire: tr.Phase("engine-acquire"),
		phRun:     tr.Phase("run"),
		phHit:     tr.Phase("cache-hit"),
		phMiss:    tr.Phase("cache-miss"),
		phDone:    tr.Phase("job-done"),
		phDrain:   tr.Phase("job-drained"),
		phAttach:  tr.Phase("coalesce-attach"),
		phFanout:  tr.Phase("coalesce-fanout"),
	}
}

// jobTrack returns (idempotently registering) the job's lifecycle track.
// Beyond the tracer's track budget this returns nil, which every Track
// method treats as a silent drop — old jobs keep their tracks, new ones
// go untraced.
func (t *schedTrace) jobTrack(id string) *trace.Track {
	if t == nil {
		return nil
	}
	return t.tr.TrackCap("job "+id, jobTrackCap)
}
