package serve

import (
	"errors"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"testing"
	"time"
)

// The acceptance scenario: >= 8 concurrent mixed jobs — cache hits and
// misses across engine kinds, client cancellations of queued and running
// jobs, and one queue-full rejection — under the race detector, with the
// worker-budget governor never exceeding its cap (asserted via metrics).
func TestSchedulerConcurrentMixedJobs(t *testing.T) {
	const budget = 4
	s := NewScheduler(Config{QueueCap: 4, Runners: 2, WorkerBudget: budget, CacheCap: 3})
	defer s.Stop()

	// Two long blockers occupy both runners (and 4 = budget workers). They
	// differ by one cycle so they don't coalesce into a single flight, yet
	// still share an engine-cache key (Cycles is outside EngineKey).
	blockers := make([]*Job, 2)
	for i, spec := range []JobSpec{
		chanSpec(6, 3, 2, 1, KindSM, 2, 200000),
		chanSpec(6, 3, 2, 1, KindSM, 2, 200001),
	} {
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		blockers[i] = j
	}
	for _, j := range blockers {
		waitState(t, j, StateRunning)
	}
	waitCycles(t, blockers[0], 1)

	// Fill the bounded queue: two more identical-mesh jobs (cache hits once
	// they run; one cycle apart so they queue rather than coalesce), one
	// distinct shared-memory mesh (miss), one sequential single-grid job
	// (miss, different kind).
	queued := []*Job{}
	for _, spec := range []JobSpec{
		chanSpec(6, 3, 2, 1, KindSM, 2, 20),
		chanSpec(6, 3, 2, 1, KindSM, 2, 21),
		chanSpec(5, 3, 2, 2, KindSM, 2, 20),
		chanSpec(4, 2, 2, 3, KindSingle, 0, 20),
	} {
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, j)
	}
	if got := s.QueueDepth(); got != 4 {
		t.Fatalf("queue depth %d, want 4", got)
	}

	// Admission control: the queue is full, the next submission bounces.
	// The probe spec matches no live job, so it cannot coalesce its way
	// past the bound.
	if _, err := s.Submit(chanSpec(6, 3, 2, 1, KindSM, 2, 200002)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit into full queue: err=%v, want ErrQueueFull", err)
	}

	// Cancel one queued job and both running blockers.
	if _, err := s.Cancel(queued[0].ID); err != nil {
		t.Fatal(err)
	}
	for _, j := range blockers {
		if _, err := s.Cancel(j.ID); err != nil {
			t.Fatal(err)
		}
	}
	for _, j := range blockers {
		waitDone(t, j)
		if st := j.State(); st != StateCancelled {
			t.Errorf("blocker %s state %s, want cancelled", j.ID, st)
		}
	}

	// The remaining queued jobs drain through the freed runners.
	for _, j := range queued[1:] {
		waitDone(t, j)
		if st := j.State(); st != StateCompleted {
			t.Errorf("job %s state %s (err %q), want completed", j.ID, st, j.View().Error)
		}
	}
	waitDone(t, queued[0])

	// Two identical follow-ups land on the warm engine: guaranteed hits.
	for i := 0; i < 2; i++ {
		j, err := s.Submit(chanSpec(6, 3, 2, 1, KindSM, 2, 20))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		v := j.View()
		if v.State != StateCompleted {
			t.Fatalf("follow-up %d: state %s err %q", i, v.State, v.Error)
		}
		if v.CacheHit == nil || !*v.CacheHit {
			t.Errorf("follow-up %d did not hit the engine cache", i)
		}
	}

	m := s.Metrics()
	if m.Submitted.Load() < 8 {
		t.Errorf("submitted %d jobs, want >= 8", m.Submitted.Load())
	}
	if m.Rejected.Load() != 1 {
		t.Errorf("rejected %d, want exactly 1", m.Rejected.Load())
	}
	if m.Cancelled.Load() != 3 {
		t.Errorf("cancelled %d, want 3", m.Cancelled.Load())
	}
	if m.CacheHits.Load() < 2 {
		t.Errorf("cache hits %d, want >= 2", m.CacheHits.Load())
	}
	if m.CacheMisses.Load() < 2 {
		t.Errorf("cache misses %d, want >= 2", m.CacheMisses.Load())
	}
	// The governor cap: asserted through the same counters /metrics exposes.
	if peak := s.Governor().Peak(); peak > budget {
		t.Errorf("worker peak %d exceeds budget %d", peak, budget)
	}
	if use := s.Governor().InUse(); use != 0 {
		t.Errorf("workers still in use: %d", use)
	}
}

// Priorities: with one runner occupied, a high-priority late arrival
// overtakes a low-priority earlier one.
func TestSchedulerPriorityOrder(t *testing.T) {
	s := NewScheduler(Config{QueueCap: 8, Runners: 1, WorkerBudget: 4})
	defer s.Stop()
	blocker, err := s.Submit(chanSpec(4, 2, 2, 1, KindSingle, 0, 200000))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, StateRunning)

	low := chanSpec(4, 2, 2, 1, KindSingle, 0, 5)
	low.Priority = 0
	high := chanSpec(4, 2, 2, 1, KindSingle, 0, 5)
	high.Priority = 7
	jLow, err := s.Submit(low)
	if err != nil {
		t.Fatal(err)
	}
	jHigh, err := s.Submit(high)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	waitDone(t, jHigh)
	// The high-priority job must have been dispatched first: when it
	// finishes, the low one is still waiting or only just started.
	if st := jLow.State(); st == StateCompleted {
		// Allow the tiny race where low already finished after high: verify
		// dispatch order instead via the sequence of running states.
		t.Log("low finished immediately after high; acceptable on a fast runner")
	}
	waitDone(t, jLow)
	if jHigh.State() != StateCompleted || jLow.State() != StateCompleted {
		t.Fatalf("high=%s low=%s", jHigh.State(), jLow.State())
	}
}

// A queued job whose deadline passes before a runner frees up expires.
func TestSchedulerDeadlineExpiry(t *testing.T) {
	s := NewScheduler(Config{QueueCap: 8, Runners: 1, WorkerBudget: 4})
	defer s.Stop()
	blocker, err := s.Submit(chanSpec(4, 2, 2, 1, KindSingle, 0, 200000))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, StateRunning)
	spec := chanSpec(4, 2, 2, 1, KindSingle, 0, 5)
	spec.DeadlineMS = 30
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	if _, err := s.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if st := j.State(); st != StateExpired {
		t.Fatalf("state %s, want expired", st)
	}
	if s.Metrics().Expired.Load() != 1 {
		t.Fatalf("expired counter %d, want 1", s.Metrics().Expired.Load())
	}
}

// A running job with a deadline is cancelled mid-flight and reported
// expired, returning its partial history.
func TestSchedulerDeadlineMidRun(t *testing.T) {
	s := NewScheduler(Config{QueueCap: 8, Runners: 1, WorkerBudget: 4})
	defer s.Stop()
	spec := chanSpec(6, 3, 2, 1, KindSingle, 0, 200000)
	spec.DeadlineMS = 150
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	v := j.View()
	if v.State != StateExpired {
		t.Fatalf("state %s, want expired", v.State)
	}
	if v.Cycles == 0 {
		t.Error("expected a partial history from the interrupted run")
	}
}

// Invalid specs and over-budget worker requests are rejected at admission.
func TestSchedulerAdmissionValidation(t *testing.T) {
	s := NewScheduler(Config{QueueCap: 8, Runners: 1, WorkerBudget: 2})
	defer s.Stop()
	if _, err := s.Submit(JobSpec{Cycles: 10}); err == nil {
		t.Error("empty mesh spec admitted")
	}
	bad := chanSpec(4, 2, 2, 1, KindSM, 8, 10) // 8 workers > budget 2
	if _, err := s.Submit(bad); err == nil {
		t.Error("job exceeding the worker budget admitted")
	}
	unknown := chanSpec(4, 2, 2, 1, "gpu", 0, 10)
	if _, err := s.Submit(unknown); err == nil {
		t.Error("unknown engine kind admitted")
	}
}

func TestDivergedAt(t *testing.T) {
	if _, _, d := divergedAt([]float64{1, 0.5, 0.25}); d {
		t.Error("clean history flagged as diverged")
	}
	if i, _, d := divergedAt([]float64{1, math.NaN()}); !d || i != 1 {
		t.Errorf("NaN not detected (i=%d d=%v)", i, d)
	}
	if i, _, d := divergedAt([]float64{1, 2, math.Inf(1)}); !d || i != 2 {
		t.Errorf("Inf not detected (i=%d d=%v)", i, d)
	}
}

// metricValue extracts a numeric metric from the Prometheus text body.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(fmt.Sprintf(`(?m)^%s ([0-9.eE+-]+)$`, regexp.QuoteMeta(name)))
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", name, body)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s: %v", name, err)
	}
	return v
}
