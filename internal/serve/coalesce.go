package serve

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Request coalescing: concurrent submissions whose SpecHash matches a
// live job attach to it as waiters instead of running (or even queueing)
// their own copy. The solver is bitwise deterministic, so every party
// receives the single run's result unchanged.
//
// A flight is the unit of sharing. Its leader is the job actually
// queued and dispatched; every attached waiter is a full Job in the
// registry (pollable, cancellable, with its own deadline) whose watcher
// goroutine mirrors the leader's terminal snapshot when the run lands.
// Cancellation is party-counted: one party leaving — a waiter cancel, a
// waiter deadline, or the leader's own client — detaches only that
// party; the underlying run is cancelled when the last party leaves.
// The flight deregisters (in finish, before the leader's done channel
// closes) the moment the run reaches a terminal state, so late
// identical submissions start a fresh run instead of attaching to a
// finished one.
type flight struct {
	key    string
	leader *Job

	mu         sync.Mutex
	parties    int // leader + attached waiters still interested
	leaderLeft bool
}

// attachable reports whether a new waiter may still join. Callers hold
// s.mu, which orders this against finish's retireFlight; a flight still
// registered can only be doomed if its cancellation already fired.
func (f *flight) attachable() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.parties <= 0 {
		return false
	}
	return context.Cause(f.leader.ctx) == nil
}

// leave drops one party; the last one out cancels the run.
func (f *flight) leave() {
	f.mu.Lock()
	f.parties--
	last := f.parties <= 0
	f.mu.Unlock()
	if last {
		f.leader.cancel(errClientStop)
	}
}

// leaderCancel handles a client cancel aimed at the leader job: the
// leader's party leaves (idempotently), but the run itself survives
// while waiters remain attached.
func (f *flight) leaderCancel() {
	f.mu.Lock()
	if f.leaderLeft {
		f.mu.Unlock()
		return
	}
	f.leaderLeft = true
	f.mu.Unlock()
	f.leave()
}

// attachLocked registers j as a waiter on f. Caller holds s.mu.
func (s *Scheduler) attachLocked(f *flight, j *Job) {
	now := time.Now()
	j.state = StateCoalesced
	j.coalescedWith = f.leader.ID
	j.enqueued = now
	if j.Spec.DeadlineMS > 0 {
		j.deadline = now.Add(time.Duration(j.Spec.DeadlineMS) * time.Millisecond)
	}
	j.done = make(chan struct{})
	j.ctx, j.cancel = context.WithCancelCause(context.Background())
	s.jobs[j.ID] = j
	f.mu.Lock()
	f.parties++
	parties := f.parties
	f.mu.Unlock()
	s.met.Submitted.Add(1)
	s.met.CoalesceAttach.Add(1)
	if s.trc != nil {
		// The attach instant lands on both tracks: the waiter's (what it
		// attached to) and the leader's (its audience growing).
		s.trc.jobTrack(j.ID).Instant(s.trc.phAttach, now, int64(parties))
		s.trc.jobTrack(f.leader.ID).Instant(s.trc.phAttach, now, int64(parties))
	}
	s.wg.Add(1)
	go s.waitFanout(f, j)
}

// waitFanout is a waiter's watcher: mirror the leader's terminal state
// on completion, or detach on the waiter's own cancel/deadline.
func (s *Scheduler) waitFanout(f *flight, j *Job) {
	defer s.wg.Done()
	ctx := j.ctx
	if !j.deadline.IsZero() {
		dctx, dcancel := context.WithDeadline(ctx, j.deadline)
		defer dcancel()
		ctx = dctx
	}
	select {
	case <-f.leader.done:
		s.fanout(f, j)
	case <-ctx.Done():
		cause := context.Cause(ctx)
		var cycles int64
		j.mu.Lock()
		if errors.Is(cause, context.DeadlineExceeded) {
			j.state = StateExpired
			j.errMsg = "deadline exceeded"
			s.met.Expired.Add(1)
		} else {
			j.state = StateCancelled
			s.met.Cancelled.Add(1)
		}
		cycles = int64(len(j.history))
		j.mu.Unlock()
		if s.trc != nil {
			s.trc.jobTrack(j.ID).Instant(s.trc.phDone, time.Now(), cycles)
		}
		close(j.done)
		f.leave()
		s.cfg.Log.Printf("job %s: detached from %s (%s)", j.ID, f.leader.ID, j.State())
	}
}

// fanout copies the leader's terminal snapshot onto a waiter and closes
// it. By the time leader.done closes, finish has recorded the terminal
// state, so the copy is complete and — like the run itself — bitwise
// identical for every waiter.
func (s *Scheduler) fanout(f *flight, j *Job) {
	l := f.leader
	l.mu.Lock()
	state := l.state
	hist := append([]float64(nil), l.history...)
	res, errMsg, diag := l.result, l.errMsg, l.diag
	key, keySet := l.key, l.keySet
	resultHash := l.resultHash
	adaptEpochs := l.adaptEpochs
	l.mu.Unlock()
	j.mu.Lock()
	j.state = state
	j.history = hist
	j.result = res
	j.errMsg = errMsg
	j.diag = diag
	j.key, j.keySet = key, keySet
	j.resultHash = resultHash
	j.adaptEpochs = adaptEpochs
	j.mu.Unlock()
	s.met.CoalesceFanout.Add(1)
	if s.trc != nil {
		s.trc.jobTrack(j.ID).Instant(s.trc.phFanout, time.Now(), int64(len(hist)))
	}
	close(j.done)
}

// retireFlight deregisters a leader's flight so no further waiters can
// attach. Idempotent; a no-op for flightless jobs.
func (s *Scheduler) retireFlight(j *Job) {
	f := j.flight
	if f == nil {
		return
	}
	s.mu.Lock()
	if s.flights[f.key] == f {
		delete(s.flights, f.key)
	}
	s.mu.Unlock()
}
