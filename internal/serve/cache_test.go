package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eul3d/internal/solver"
)

// testEngineParts builds the meshes, key and builder for a spec.
func testEngineParts(t *testing.T, spec JobSpec) (EngineKey, func() (*solver.Steady, error)) {
	t.Helper()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	ms, err := spec.BuildMeshes()
	if err != nil {
		t.Fatal(err)
	}
	return spec.Key(ms), func() (*solver.Steady, error) { return buildEngine(spec, ms) }
}

// Concurrent misses on one key must share a single construction.
func TestCacheSingleFlight(t *testing.T) {
	met := &Metrics{}
	c := NewCache(2, met)
	spec := chanSpec(4, 2, 2, 1, KindSingle, 0, 10)
	key, build := testEngineParts(t, spec)
	var builds atomic.Int64
	slowBuild := func() (*solver.Steady, error) {
		builds.Add(1)
		time.Sleep(30 * time.Millisecond)
		return build()
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, err := c.Acquire(context.Background(), key, slowBuild)
			if err != nil {
				t.Error(err)
				return
			}
			c.Release(e)
		}()
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("%d builds for one key, want 1 (single-flight)", n)
	}
	if n := met.Builds.Load(); n != 1 {
		t.Fatalf("metrics report %d builds, want 1", n)
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d engines, want 1", c.Len())
	}
	c.Close()
}

// Over-capacity idle engines are evicted least-recently-used and closed.
func TestCacheLRUEviction(t *testing.T) {
	met := &Metrics{}
	c := NewCache(1, met)
	specA := chanSpec(4, 2, 2, 1, KindSingle, 0, 10)
	specB := chanSpec(5, 2, 2, 1, KindSingle, 0, 10)
	keyA, buildA := testEngineParts(t, specA)
	keyB, buildB := testEngineParts(t, specB)
	if keyA == keyB {
		t.Fatal("distinct meshes produced identical keys")
	}
	ea, err := c.Acquire(context.Background(), keyA, buildA)
	if err != nil {
		t.Fatal(err)
	}
	c.Release(ea)
	eb, err := c.Acquire(context.Background(), keyB, buildB)
	if err != nil {
		t.Fatal(err)
	}
	c.Release(eb)
	if got := met.Evictions.Load(); got != 1 {
		t.Fatalf("%d evictions, want 1", got)
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d engines, want 1", c.Len())
	}
	// A is gone: re-acquiring it is a fresh build.
	if _, err := c.Acquire(context.Background(), keyA, buildA); err != nil {
		t.Fatal(err)
	}
	if got := met.Builds.Load(); got != 3 {
		t.Fatalf("%d builds, want 3 (A, B, A again)", got)
	}
}

// A busy engine must not be evicted; it is collected once released.
func TestCacheBusyEngineSurvivesEviction(t *testing.T) {
	met := &Metrics{}
	c := NewCache(1, met)
	keyA, buildA := testEngineParts(t, chanSpec(4, 2, 2, 1, KindSingle, 0, 10))
	keyB, buildB := testEngineParts(t, chanSpec(5, 2, 2, 1, KindSingle, 0, 10))
	ea, err := c.Acquire(context.Background(), keyA, buildA)
	if err != nil {
		t.Fatal(err)
	}
	// A is leased; building B over-fills the cache but must not touch A.
	eb, err := c.Acquire(context.Background(), keyB, buildB)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d engines, want 2 (both busy)", c.Len())
	}
	c.Release(eb) // B idle, cache over capacity -> B (LRU tail is whichever is idle) evicted
	c.Release(ea)
	if c.Len() != 1 {
		t.Fatalf("cache holds %d engines after releases, want 1", c.Len())
	}
	if met.Evictions.Load() != 1 {
		t.Fatalf("%d evictions, want 1", met.Evictions.Load())
	}
}

// The hit path — lookup, lease, release — performs zero heap allocations,
// so a cache hit serves a job with no engine-construction work at all and
// the solve loop's zero-alloc guarantee survives end to end.
func TestCacheHitPathZeroAlloc(t *testing.T) {
	c := NewCache(2, &Metrics{})
	key, build := testEngineParts(t, chanSpec(4, 2, 2, 1, KindSingle, 0, 10))
	e, err := c.Acquire(context.Background(), key, build)
	if err != nil {
		t.Fatal(err)
	}
	c.Release(e)
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		e, err := c.Acquire(ctx, key, build)
		if err != nil {
			t.Fatal(err)
		}
		c.Release(e)
	})
	if allocs != 0 {
		t.Fatalf("cache hit path allocates %.1f objects per acquire/release, want 0", allocs)
	}
}

// Concurrent hits on one key serialize on the engine lease: the engine is
// only ever leased to one holder at a time.
func TestCacheLeaseExcludes(t *testing.T) {
	c := NewCache(2, &Metrics{})
	key, build := testEngineParts(t, chanSpec(4, 2, 2, 1, KindSingle, 0, 10))
	var holders atomic.Int32
	var maxHolders atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, err := c.Acquire(context.Background(), key, build)
			if err != nil {
				t.Error(err)
				return
			}
			h := holders.Add(1)
			if h > maxHolders.Load() {
				maxHolders.Store(h)
			}
			time.Sleep(time.Millisecond)
			holders.Add(-1)
			c.Release(e)
		}()
	}
	wg.Wait()
	if m := maxHolders.Load(); m != 1 {
		t.Fatalf("engine leased to %d holders at once, want 1", m)
	}
}
