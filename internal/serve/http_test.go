package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Scheduler, *httptest.Server) {
	t.Helper()
	s := NewScheduler(cfg)
	srv := httptest.NewServer(NewAPI(s).Handler())
	t.Cleanup(func() { srv.Close(); s.Stop() })
	return s, srv
}

func postJob(t *testing.T, srv *httptest.Server, body string) (*http.Response, JobView) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/solve", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return resp, v
}

func getJob(t *testing.T, srv *httptest.Server, id string) JobView {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: %d", id, resp.StatusCode)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

const smallJob = `{"mesh":{"nx":4,"ny":2,"nz":2,"seed":1},"mach":0.5,"engine":"single","cycles":10}`

// Async submit -> poll -> completed, with history and metrics populated.
func TestHTTPSubmitPollComplete(t *testing.T) {
	_, srv := newTestServer(t, Config{QueueCap: 4, Runners: 1, WorkerBudget: 4})
	resp, v := postJob(t, srv, smallJob)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status %d, want 202", resp.StatusCode)
	}
	if v.ID == "" || v.State != StateQueued {
		t.Fatalf("bad accepted view: %+v", v)
	}
	deadline := time.Now().Add(30 * time.Second)
	var got JobView
	for time.Now().Before(deadline) {
		got = getJob(t, srv, v.ID)
		if got.State == StateCompleted {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got.State != StateCompleted {
		t.Fatalf("job stuck in %s", got.State)
	}
	if got.Cycles != 10 || len(got.History) != 10 {
		t.Errorf("cycles=%d history=%d, want 10", got.Cycles, len(got.History))
	}
	if got.FinalNorm == 0 || got.InitialNorm == 0 {
		t.Error("norms not populated")
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if metricValue(t, string(body), "eul3dd_jobs_completed_total") != 1 {
		t.Error("metrics do not report the completed job")
	}
	if metricValue(t, string(body), "eul3dd_engine_cache_size") != 1 {
		t.Error("metrics do not report the cached engine")
	}
}

// Synchronous submit blocks until the result is final.
func TestHTTPSyncSolve(t *testing.T) {
	_, srv := newTestServer(t, Config{QueueCap: 4, Runners: 1, WorkerBudget: 4})
	resp, v := postJob(t, srv, `{"mesh":{"nx":4,"ny":2,"nz":2,"seed":1},"mach":0.5,"cycles":6,"wait":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync POST status %d, want 200", resp.StatusCode)
	}
	if v.State != StateCompleted || v.Cycles != 6 {
		t.Fatalf("sync view: %+v", v)
	}
}

// Queue overflow maps to 429, bad specs to 400, unknown jobs to 404,
// cancellation to DELETE.
func TestHTTPErrorsAndCancel(t *testing.T) {
	_, srv := newTestServer(t, Config{QueueCap: 1, Runners: 1, WorkerBudget: 4})

	// Occupy the runner, then the single queue slot.
	_, blocker := postJob(t, srv, `{"mesh":{"nx":4,"ny":2,"nz":2,"seed":1},"mach":0.5,"cycles":200000}`)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && getJob(t, srv, blocker.ID).State != StateRunning {
		time.Sleep(2 * time.Millisecond)
	}
	_, queued := postJob(t, srv, smallJob)

	// The probe differs from every live job by one cycle, so it cannot
	// coalesce past the queue bound.
	if resp, _ := postJob(t, srv, `{"mesh":{"nx":4,"ny":2,"nz":2,"seed":1},"mach":0.5,"engine":"single","cycles":11}`); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status %d, want 429", resp.StatusCode)
	}
	if resp, _ := postJob(t, srv, `{"mesh":{"nx":0},"cycles":10}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec status %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJob(t, srv, `{not json`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON status %d, want 400", resp.StatusCode)
	}
	resp, err := http.Get(srv.URL + "/v1/jobs/nonexistent")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job status %d, want 404", resp.StatusCode)
	}

	// Cancel the queued job first (so the freed runner cannot complete it),
	// then the running blocker.
	for _, id := range []string{queued.ID, blocker.ID} {
		req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+id, nil)
		dresp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		dresp.Body.Close()
		if dresp.StatusCode != http.StatusOK {
			t.Fatalf("DELETE %s status %d", id, dresp.StatusCode)
		}
	}
	for _, id := range []string{blocker.ID, queued.ID} {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) && getJob(t, srv, id).State != StateCancelled {
			time.Sleep(2 * time.Millisecond)
		}
		if st := getJob(t, srv, id).State; st != StateCancelled {
			t.Fatalf("job %s state %s after DELETE", id, st)
		}
	}
}

func TestHTTPHealthz(t *testing.T) {
	s, srv := newTestServer(t, Config{QueueCap: 4, Runners: 1, WorkerBudget: 4})
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" {
		t.Fatalf("healthz status %v, want ok", h["status"])
	}
	_ = s
}

// The metrics body is well-formed Prometheus text: every eul3dd_ line
// parses, and the governor gauges never contradict the budget.
func TestHTTPMetricsShape(t *testing.T) {
	_, srv := newTestServer(t, Config{QueueCap: 4, Runners: 2, WorkerBudget: 6})
	for i := 0; i < 3; i++ {
		postJob(t, srv, fmt.Sprintf(`{"mesh":{"nx":4,"ny":2,"nz":2,"seed":1},"mach":0.5,"engine":"sm","workers":2,"cycles":8,"wait":true,"priority":%d}`, i))
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	s := string(body)
	budget := metricValue(t, s, "eul3dd_worker_budget")
	peak := metricValue(t, s, "eul3dd_workers_peak")
	if peak > budget {
		t.Fatalf("workers_peak %v exceeds worker_budget %v", peak, budget)
	}
	if metricValue(t, s, "eul3dd_jobs_completed_total") != 3 {
		t.Error("completed_total mismatch")
	}
	if metricValue(t, s, "eul3dd_engine_builds_total") != 1 {
		t.Error("three identical jobs should share one engine build")
	}
	if hr := metricValue(t, s, "eul3dd_engine_cache_hit_rate"); hr <= 0 {
		t.Errorf("hit rate %v, want > 0", hr)
	}
}
