package serve

import (
	"strings"
	"testing"

	"eul3d/internal/scenario"
)

// TestScenarioSpecValidate pins the scenario branch of JobSpec.Validate:
// defaults from the preset, mutual exclusion with explicit mesh/flow
// fields, and the multigrid level clamp.
func TestScenarioSpecValidate(t *testing.T) {
	sod, err := scenario.Get("sod")
	if err != nil {
		t.Fatal(err)
	}

	s := JobSpec{Scenario: "sod"}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Cycles != sod.Steps || s.Tol != sod.Tol {
		t.Fatalf("defaults not taken from preset: cycles=%d tol=%g, want %d/%g", s.Cycles, s.Tol, sod.Steps, sod.Tol)
	}

	// Unsteady preset on a multigrid kind: levels clamp to 1 instead of
	// being rejected (a 1-level cycle is one time-accurate step).
	s = JobSpec{Scenario: "sod", Engine: KindMG}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Levels != 1 {
		t.Fatalf("unsteady mg levels = %d, want clamp to 1", s.Levels)
	}

	for name, bad := range map[string]JobSpec{
		"unknown scenario":  {Scenario: "nope", Cycles: 1},
		"scenario and mesh": {Scenario: "sod", Mesh: MeshSpec{NX: 4, NY: 2, NZ: 2}},
		"scenario and mach": {Scenario: "sod", Mach: 0.5},
	} {
		bad := bad
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: expected a validation error", name)
		}
	}
}

// TestScenarioJobDiagnostics runs the sod preset through the scheduler on
// the sequential and pooled engines: the completed jobs must carry
// diagnostics that pass the preset's physics check, agree bitwise across
// engines, and the engine cache must key on the scenario (two sod jobs
// share an engine; a pulse job must not).
func TestScenarioJobDiagnostics(t *testing.T) {
	s := NewScheduler(Config{QueueCap: 8, Runners: 1, WorkerBudget: 8, CacheCap: 4})
	defer s.Stop()

	sod, err := scenario.Get("sod")
	if err != nil {
		t.Fatal(err)
	}

	run := func(spec JobSpec) JobView {
		t.Helper()
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, j, StateCompleted)
		v := j.View()
		if v.Diagnostics == nil {
			t.Fatalf("completed scenario job has no diagnostics: %+v", v)
		}
		return v
	}

	seq := run(JobSpec{Scenario: "sod"})
	if err := sod.Check(*seq.Diagnostics); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(seq.Engine, KindSingle) {
		t.Fatalf("engine key %q, want kind single", seq.Engine)
	}

	// Same preset again: engine cache hit, bitwise-identical diagnostics.
	again := run(JobSpec{Scenario: "sod"})
	if again.CacheHit == nil || !*again.CacheHit {
		t.Fatalf("second sod job missed the engine cache: %+v", again)
	}
	if *again.Diagnostics != *seq.Diagnostics {
		t.Fatalf("sod diagnostics differ across runs:\n  %+v\n  %+v", *seq.Diagnostics, *again.Diagnostics)
	}

	// Pooled engine: bitwise identical across worker counts (the pooled
	// contract holds on any mesh; sequential-vs-pooled bitwise identity
	// needs color-canonical edge order and is asserted in
	// internal/scenario/verify, not here). Against the sequential engine
	// the pooled result agrees to roundoff, and must pass the same physics
	// check.
	sm2 := run(JobSpec{Scenario: "sod", Engine: KindSM, Workers: 2})
	sm8 := run(JobSpec{Scenario: "sod", Engine: KindSM, Workers: 8})
	if *sm2.Diagnostics != *sm8.Diagnostics {
		t.Fatalf("pooled diagnostics differ across worker counts:\n  w2: %+v\n  w8: %+v", *sm2.Diagnostics, *sm8.Diagnostics)
	}
	if err := sod.Check(*sm2.Diagnostics); err != nil {
		t.Fatal(err)
	}
	if rel := (sm2.Diagnostics.L1Density - seq.Diagnostics.L1Density) / seq.Diagnostics.L1Density; rel > 1e-9 || rel < -1e-9 {
		t.Fatalf("pooled L1 %.17g far from sequential %.17g", sm2.Diagnostics.L1Density, seq.Diagnostics.L1Density)
	}

	// A different preset must not share the sod engine key.
	pulse := run(JobSpec{Scenario: "pulse"})
	if pulse.Engine == seq.Engine {
		t.Fatalf("pulse and sod share engine key %q", pulse.Engine)
	}
	if pulse.Diagnostics.Scenario != "pulse" {
		t.Fatalf("pulse diagnostics tagged %q", pulse.Diagnostics.Scenario)
	}
}
