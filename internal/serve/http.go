package serve

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"

	"eul3d/internal/meshio"
	"eul3d/internal/perf"
	"eul3d/internal/store"
)

// API is the HTTP facade over a Scheduler:
//
//	POST   /v1/solve     submit a JobSpec; ?wait=1 (or "wait":true) blocks;
//	                     "id" and "resume" (base64 checkpoint) or
//	                     "resume_hash" (store reference) hand off an
//	                     interrupted job from another node
//	GET    /v1/jobs/{id} job status + residual history so far; the
//	                     completed result's content hash is the ETag and
//	                     If-None-Match answers 304
//	DELETE /v1/jobs/{id} cooperative cancellation
//	GET    /v1/jobs/{id}/checkpoint  latest periodic checkpoint (binary)
//	PUT    /v1/artifacts        upload bytes to the artifact store -> hash
//	GET    /v1/artifacts/{hash} fetch an artifact (HEAD probes existence)
//	GET    /healthz      liveness: 200 while the process serves requests
//	GET    /readyz       readiness: 503 while draining or saturated
//	GET    /metrics      Prometheus-style text metrics
//	GET    /debug/trace  flight-recorder dump (Chrome trace-event JSON)
type API struct {
	s *Scheduler
}

// NewAPI wraps a scheduler.
func NewAPI(s *Scheduler) *API { return &API{s: s} }

// Handler builds the route table.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", a.handleSolve)
	mux.HandleFunc("GET /v1/jobs/{id}", a.handleGetJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", a.handleCancelJob)
	mux.HandleFunc("GET /v1/jobs/{id}/checkpoint", a.handleJobCheckpoint)
	mux.HandleFunc("PUT /v1/artifacts", a.handleArtifactPut)
	mux.HandleFunc("GET /v1/artifacts/{hash}", a.handleArtifactGet)
	mux.HandleFunc("GET /healthz", a.handleHealthz)
	mux.HandleFunc("GET /readyz", a.handleReadyz)
	mux.HandleFunc("GET /metrics", a.handleMetrics)
	mux.HandleFunc("GET /debug/trace", a.handleTrace)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// solveRequest is a JobSpec plus the synchronous-wait flag and the cluster
// handoff fields: ID pins the job's identity across nodes and the run
// warm-starts from either Resume (an inline base64 meshio checkpoint) or
// ResumeHash (a reference to checkpoint bytes already in this node's
// artifact store — the coordinator pushes the blob once, then hands off
// by hash).
type solveRequest struct {
	JobSpec
	Wait       bool   `json:"wait,omitempty"`
	ID         string `json:"id,omitempty"`
	Resume     string `json:"resume,omitempty"`
	ResumeHash string `json:"resume_hash,omitempty"`
}

func (a *API) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req solveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if r.URL.Query().Get("wait") == "1" {
		req.Wait = true
	}
	var ck *meshio.Checkpoint
	switch {
	case req.Resume != "":
		raw, err := base64.StdEncoding.DecodeString(req.Resume)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding resume checkpoint: %w", err))
			return
		}
		// ReadCheckpoint verifies the CRC trailer, so a truncated or
		// corrupted handoff is rejected here rather than warm-starting the
		// solver from garbage.
		ck, err = meshio.ReadCheckpoint(bytes.NewReader(raw))
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("parsing resume checkpoint: %w", err))
			return
		}
	case req.ResumeHash != "":
		raw, err := a.s.Store().Get(req.ResumeHash)
		if err != nil {
			// The referenced blob must be pushed before the handoff; 412
			// tells the coordinator to fall back to inline bytes.
			writeErr(w, http.StatusPreconditionFailed, fmt.Errorf("resume checkpoint artifact: %w", err))
			return
		}
		ck, err = meshio.DecodeCheckpoint(raw)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("parsing resume checkpoint artifact: %w", err))
			return
		}
	}
	var j *Job
	var err error
	if req.ID != "" || ck != nil {
		j, err = a.s.SubmitResume(req.ID, req.JobSpec, ck)
	} else {
		j, err = a.s.Submit(req.JobSpec)
	}
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(a.s.RetryAfterHint()))
		writeErr(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", strconv.Itoa(a.s.RetryAfterHint()))
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrNoArtifact):
		writeErr(w, http.StatusPreconditionFailed, err)
		return
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if !req.Wait {
		writeJSON(w, http.StatusAccepted, j.View())
		return
	}
	select {
	case <-j.Done():
		writeJSON(w, http.StatusOK, j.View())
	case <-r.Context().Done():
		// The client went away; the job keeps running and stays pollable.
		writeJSON(w, http.StatusAccepted, j.View())
	}
}

func (a *API) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, err := a.s.Job(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	v := j.View()
	if v.ResultHash != "" {
		// The result's content hash is a perfect validator: polling
		// clients and the cluster's result fan-out revalidate with
		// If-None-Match and skip the body (history included) on a match.
		etag := `"` + v.ResultHash + `"`
		w.Header().Set("ETag", etag)
		if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, etag) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	writeJSON(w, http.StatusOK, v)
}

// etagMatch implements the If-None-Match comparison: a wildcard or any
// listed entity tag equal to ours (weak prefixes tolerated).
func etagMatch(header, etag string) bool {
	if strings.TrimSpace(header) == "*" {
		return true
	}
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == etag {
			return true
		}
	}
	return false
}

func (a *API) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j, err := a.s.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

// handleHealthz is the liveness probe: 200 for as long as the process can
// serve requests at all, even while draining. Routability is /readyz's job.
func (a *API) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if a.s.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  status,
		"queued":  a.s.QueueDepth(),
		"running": a.s.Running(),
	})
}

// readyView is the /readyz body; coordinators use Queued+Running as the
// node's load signal for work-stealing placement.
type readyView struct {
	Status   string `json:"status"` // ready | draining | saturated
	Queued   int    `json:"queued"`
	Running  int    `json:"running"`
	QueueCap int    `json:"queue_cap"`
}

// handleReadyz is the readiness probe: 503 (with Retry-After) while the
// server is draining or its admission queue is full, so a coordinator
// stops routing to the node before requests start bouncing — and, in the
// drain case, before the process exits.
func (a *API) handleReadyz(w http.ResponseWriter, r *http.Request) {
	v := readyView{
		Status:   "ready",
		Queued:   a.s.QueueDepth(),
		Running:  a.s.Running(),
		QueueCap: a.s.QueueCap(),
	}
	code := http.StatusOK
	switch {
	case a.s.Draining():
		v.Status, code = "draining", http.StatusServiceUnavailable
	case a.s.Saturated():
		v.Status, code = "saturated", http.StatusServiceUnavailable
	}
	if code != http.StatusOK {
		w.Header().Set("Retry-After", strconv.Itoa(a.s.RetryAfterHint()))
	}
	writeJSON(w, code, v)
}

// handleJobCheckpoint streams the job's latest periodic checkpoint in the
// binary meshio format. 404 until the first checkpoint cycle completes (or
// when the server runs without -checkpoint-every). The coordinator polls
// this while the job runs; whatever snapshot it last pulled is what a
// handoff resumes from if this node dies without warning.
func (a *API) handleJobCheckpoint(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := a.s.Job(id); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	path := a.s.CheckpointFile(id)
	if path == "" {
		writeErr(w, http.StatusNotFound, errors.New("serve: no checkpoint yet"))
		return
	}
	f, err := os.Open(path)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	io.Copy(w, f)
}

// handleArtifactPut uploads bytes into the content-addressed store and
// returns their hash. Idempotent by construction: re-uploading the same
// bytes lands on the same key.
func (a *API) handleArtifactPut(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, store.MaxBlobSize))
	if err != nil {
		writeErr(w, http.StatusRequestEntityTooLarge, fmt.Errorf("reading artifact: %w", err))
		return
	}
	hash, err := a.s.Store().Put(data)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"hash": hash, "bytes": len(data)})
}

// handleArtifactGet serves artifact bytes (GET) or probes existence
// (HEAD — Go's mux routes HEAD through GET patterns).
func (a *API) handleArtifactGet(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	st := a.s.Store()
	if r.Method == http.MethodHead {
		n, err := st.Size(hash)
		if err != nil {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Length", strconv.FormatInt(n, 10))
		w.WriteHeader(http.StatusOK)
		return
	}
	data, err := st.Get(hash)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("ETag", `"`+hash+`"`)
	w.Write(data)
}

// handleMetrics renders the service metrics in the Prometheus text
// exposition format (hand-rolled: no client library in the module).
func (a *API) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var b strings.Builder
	m := a.s.Metrics()
	gov := a.s.Governor()

	gauge := func(name string, v any, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name string, v int64, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("eul3dd_queue_depth", a.s.QueueDepth(), "jobs waiting for a runner")
	gauge("eul3dd_jobs_running", a.s.Running(), "jobs currently solving")
	counter("eul3dd_jobs_submitted_total", m.Submitted.Load(), "jobs admitted")
	counter("eul3dd_jobs_rejected_total", m.Rejected.Load(), "jobs refused admission (queue full)")
	counter("eul3dd_jobs_completed_total", m.Completed.Load(), "jobs run to completion")
	counter("eul3dd_jobs_failed_total", m.Failed.Load(), "jobs failed (error or divergence)")
	counter("eul3dd_jobs_cancelled_total", m.Cancelled.Load(), "jobs cancelled by clients")
	counter("eul3dd_jobs_expired_total", m.Expired.Load(), "jobs past their deadline")
	counter("eul3dd_jobs_drained_total", m.Drained.Load(), "jobs checkpointed by graceful drain")
	counter("eul3dd_jobs_resumed_total", m.Resumed.Load(), "jobs resumed from drain checkpoints")
	counter("eul3dd_coalesce_attach_total", m.CoalesceAttach.Load(), "submissions attached as waiters to an identical live job")
	counter("eul3dd_coalesce_fanout_total", m.CoalesceFanout.Load(), "waiter copies of a shared result delivered")
	counter("eul3dd_engine_cache_hits_total", m.CacheHits.Load(), "engine cache hits")
	counter("eul3dd_engine_cache_misses_total", m.CacheMisses.Load(), "engine cache misses")
	counter("eul3dd_engine_builds_total", m.Builds.Load(), "engine constructions performed")
	counter("eul3dd_engine_evictions_total", m.Evictions.Load(), "engines closed by LRU eviction")
	gauge("eul3dd_engine_cache_hit_rate", fmt.Sprintf("%.4f", m.HitRate()), "cache hit fraction")
	gauge("eul3dd_engine_cache_size", a.s.Cache().Len(), "engines resident in the cache")
	counter("eul3dd_adapt_epochs_total", m.AdaptEpochs.Load(), "adaptation epochs run across adaptive jobs")
	counter("eul3dd_adapt_cells_refined_total", m.AdaptCells.Load(), "cells added by adaptive refinement")
	counter("eul3dd_adapt_rebuild_ns_total", m.AdaptRebuildNS.Load(), "nanoseconds spent in incremental engine rebuilds")
	art := a.s.Store()
	as := art.Stats()
	counter("eul3dd_artifact_hits_total", as.Hits, "artifact store reads served")
	counter("eul3dd_artifact_misses_total", as.Misses, "artifact store reads missed (absent or quarantined)")
	counter("eul3dd_artifact_puts_total", as.Puts, "distinct artifacts stored")
	counter("eul3dd_artifact_dup_puts_total", as.DupPuts, "uploads deduplicated against existing content")
	counter("eul3dd_artifact_evictions_total", as.Evictions, "artifact eviction actions under byte budgets")
	counter("eul3dd_artifact_quarantines_total", as.Quarantines, "corrupt blobs quarantined")
	gauge("eul3dd_artifact_count", art.Len(), "artifacts tracked (memory or disk)")
	gauge("eul3dd_artifact_mem_bytes", art.MemBytes(), "resident artifact payload bytes")
	gauge("eul3dd_artifact_disk_bytes", art.DiskBytes(), "on-disk artifact blob bytes")
	gauge("eul3dd_worker_budget", gov.Cap(), "total pooled-worker budget")
	gauge("eul3dd_workers_in_use", gov.InUse(), "pooled workers held by running jobs")
	gauge("eul3dd_workers_peak", gov.Peak(), "high-water mark of pooled workers in use")

	// Job-latency histograms: time spent queued and time spent solving.
	m.QueueWait.WriteProm(&b, "eul3dd_job_queue_wait_seconds", "time from admission to dispatch")
	m.RunTime.WriteProm(&b, "eul3dd_job_run_seconds", "solver run time per job")

	// Per-engine computational rates from the accumulated perf.Stats.
	fmt.Fprintf(&b, "# HELP eul3dd_engine_mflops analytic Mflops per cached engine\n# TYPE eul3dd_engine_mflops gauge\n")
	stats := a.s.Cache().EngineStats()
	keys := make([]string, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	all := make([]perf.Stats, 0, len(keys))
	for _, k := range keys {
		total := stats[k].Total()
		fmt.Fprintf(&b, "eul3dd_engine_mflops{engine=%q} %.1f\n", k, total.Mflops())
		fmt.Fprintf(&b, "eul3dd_engine_seconds{engine=%q} %.4f\n", k, total.Seconds)
		all = append(all, stats[k])
	}

	// Fleet-wide per-phase breakdown: every cached engine's snapshot merged
	// phase-by-name, the service-level analogue of the paper's timing table.
	merged := perf.Merge(all...)
	fmt.Fprintf(&b, "# HELP eul3dd_solver_phase_seconds accumulated wall-clock per solver phase across cached engines\n# TYPE eul3dd_solver_phase_seconds gauge\n")
	for _, p := range merged.Phases {
		fmt.Fprintf(&b, "eul3dd_solver_phase_seconds{phase=%q} %.4f\n", p.Name, p.Seconds)
	}
	fmt.Fprintf(&b, "# HELP eul3dd_solver_phase_mflops analytic Mflops per solver phase across cached engines\n# TYPE eul3dd_solver_phase_mflops gauge\n")
	for _, p := range merged.Phases {
		fmt.Fprintf(&b, "eul3dd_solver_phase_mflops{phase=%q} %.1f\n", p.Name, p.Mflops())
	}
	w.Write([]byte(b.String()))
}

// handleTrace streams the flight recorder as Chrome trace-event JSON,
// loadable directly in Perfetto or chrome://tracing. 404 when the server
// was started without tracing.
func (a *API) handleTrace(w http.ResponseWriter, r *http.Request) {
	tr := a.s.Tracer()
	if tr == nil {
		writeErr(w, http.StatusNotFound, errors.New("serve: tracing disabled (start with -trace)"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := tr.WriteChrome(w); err != nil {
		a.s.cfg.Log.Printf("trace export: %v", err)
	}
}
