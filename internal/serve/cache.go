package serve

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"eul3d/internal/perf"
	"eul3d/internal/solver"
)

// Engine is one cached solver.Steady with its lease. An engine serves at
// most one job at a time (the underlying solution state is shared), so a
// cache hit on a busy engine waits for the current job to release it.
type Engine struct {
	key EngineKey
	st  *solver.Steady

	// lease holds one token while the engine is idle; Acquire takes it,
	// Release puts it back. A buffered channel (rather than a mutex) lets
	// waiters give up when their job context dies.
	lease chan struct{}

	elem    *list.Element // position in the cache's LRU list
	waiters int           // Acquire calls blocked on the lease (guarded by Cache.mu)
}

// Steady returns the prebuilt solver. The caller owns it until Release.
func (e *Engine) Steady() *solver.Steady { return e.st }

// Key returns the engine's cache key.
func (e *Engine) Key() EngineKey { return e.key }

// buildCall is the single-flight slot for one in-progress construction.
type buildCall struct {
	done chan struct{}
	err  error
}

// Cache is the engine cache: ready engines keyed by mesh-content hash with
// LRU eviction, plus single-flight construction so concurrent misses on
// one key perform one build. The hit path — lookup, lease, release — does
// zero heap allocations (asserted by tests), preserving the solve loop's
// zero-alloc guarantee end to end.
type Cache struct {
	mu       sync.Mutex
	capacity int
	entries  map[EngineKey]*Engine
	lru      *list.List // *Engine, most recently released at the front
	building map[EngineKey]*buildCall
	met      *Metrics
}

// NewCache builds a cache that keeps at most capacity idle engines.
func NewCache(capacity int, met *Metrics) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	if met == nil {
		met = &Metrics{}
	}
	return &Cache{
		capacity: capacity,
		entries:  make(map[EngineKey]*Engine),
		lru:      list.New(),
		building: make(map[EngineKey]*buildCall),
		met:      met,
	}
}

// Len returns the number of cached engines (idle or leased).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Acquire leases the engine for key, building it with build on a miss.
// Concurrent misses for the same key share a single construction
// (single-flight); concurrent hits serialize on the engine lease. The
// caller must Release the engine when its job finishes. A hit on an idle
// engine performs no allocations.
func (c *Cache) Acquire(ctx context.Context, key EngineKey, build func() (*solver.Steady, error)) (*Engine, error) {
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			e.waiters++
			c.mu.Unlock()
			c.met.CacheHits.Add(1)
			select {
			case <-e.lease:
				c.mu.Lock()
				e.waiters--
				c.mu.Unlock()
				return e, nil
			case <-ctx.Done():
				c.mu.Lock()
				e.waiters--
				c.mu.Unlock()
				return nil, ctx.Err()
			}
		}
		if b, ok := c.building[key]; ok {
			// Someone else is building this engine: wait for the build and
			// retry the lookup (all sharers then race for the lease).
			c.mu.Unlock()
			c.met.CacheMisses.Add(1)
			select {
			case <-b.done:
				if b.err != nil {
					return nil, b.err
				}
				continue
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		b := &buildCall{done: make(chan struct{})}
		c.building[key] = b
		c.mu.Unlock()
		c.met.CacheMisses.Add(1)

		st, err := build()
		c.mu.Lock()
		delete(c.building, key)
		if err != nil {
			b.err = fmt.Errorf("serve: building engine %s: %w", key, err)
			close(b.done)
			c.mu.Unlock()
			return nil, b.err
		}
		c.met.Builds.Add(1)
		e := &Engine{key: key, st: st, lease: make(chan struct{}, 1)}
		// The builder leases the fresh engine immediately (no token in the
		// channel yet); sharers blocked on b.done find it busy and wait.
		c.entries[key] = e
		e.elem = c.lru.PushFront(e)
		c.evictExcessLocked()
		close(b.done)
		c.mu.Unlock()
		return e, nil
	}
}

// Release returns a leased engine to the cache, marking it most recently
// used and evicting over-capacity idle engines.
func (c *Cache) Release(e *Engine) {
	c.mu.Lock()
	if e.elem != nil {
		c.lru.MoveToFront(e.elem)
	}
	e.lease <- struct{}{}
	c.evictExcessLocked()
	c.mu.Unlock()
}

// evictExcessLocked closes least-recently-used engines while the cache is
// over capacity. Only idle engines with no queued waiters are eligible;
// leased engines are skipped and collected on a later Release.
func (c *Cache) evictExcessLocked() {
	for e := c.lru.Back(); e != nil && len(c.entries) > c.capacity; {
		prev := e.Prev()
		eng := e.Value.(*Engine)
		if eng.waiters == 0 {
			select {
			case <-eng.lease: // idle: take the token so nobody can lease it
				c.lru.Remove(e)
				eng.elem = nil
				delete(c.entries, eng.key)
				eng.st.Close()
				c.met.Evictions.Add(1)
			default: // busy
			}
		}
		e = prev
	}
}

// EngineStats snapshots the per-engine perf stats of every cached engine,
// keyed by the engine's short label — the data behind the per-engine
// Mflops rows of the metrics endpoint.
func (c *Cache) EngineStats() map[string]perf.Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]perf.Stats, len(c.entries))
	for k, e := range c.entries {
		out[k.String()] = e.st.Stats()
	}
	return out
}

// Close evicts and closes every idle engine; leased engines are closed by
// their final Release after the scheduler has drained.
func (c *Cache) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for e := c.lru.Back(); e != nil; {
		prev := e.Prev()
		eng := e.Value.(*Engine)
		select {
		case <-eng.lease:
			c.lru.Remove(e)
			eng.elem = nil
			delete(c.entries, eng.key)
			eng.st.Close()
		default:
		}
		e = prev
	}
}
