package serve

import (
	"testing"
	"time"
)

// submitOne submits and fails the test on error.
func submitOne(t *testing.T, s *Scheduler, spec JobSpec) *Job {
	t.Helper()
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// Identical concurrent submissions coalesce onto one engine run, and every
// party receives the same bitwise-identical result.
func TestCoalesceIdenticalJobs(t *testing.T) {
	s := NewScheduler(Config{QueueCap: 2, Runners: 1, WorkerBudget: 4})
	defer s.Stop()

	// Occupy the single runner so the leader stays queued (and therefore
	// attachable) while the waiters arrive.
	blocker := submitOne(t, s, chanSpec(6, 3, 2, 7, KindSM, 2, 200000))
	waitState(t, blocker, StateRunning)

	spec := chanSpec(4, 2, 2, 1, KindSingle, 0, 25)
	leader := submitOne(t, s, spec)
	waiters := make([]*Job, 4)
	for i := range waiters {
		waiters[i] = submitOne(t, s, spec)
	}
	// Four waiters on a QueueCap-2 queue holding one job: attaching
	// bypasses the admission bound.
	if got := s.QueueDepth(); got != 1 {
		t.Fatalf("queue depth %d, want 1 (waiters must not occupy slots)", got)
	}
	for _, w := range waiters {
		v := w.View()
		if v.State != StateCoalesced {
			t.Fatalf("waiter %s state %s, want coalesced", w.ID, v.State)
		}
		if v.CoalescedWith != leader.ID {
			t.Fatalf("waiter %s coalesced with %q, want %q", w.ID, v.CoalescedWith, leader.ID)
		}
	}

	if _, err := s.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	waitDone(t, leader)
	for _, w := range waiters {
		waitDone(t, w)
	}

	lv := leader.View()
	if lv.State != StateCompleted {
		t.Fatalf("leader state %s err %q, want completed", lv.State, lv.Error)
	}
	if lv.ResultHash == "" {
		t.Fatal("leader has no result hash")
	}
	for _, w := range waiters {
		v := w.View()
		if v.State != StateCompleted {
			t.Errorf("waiter %s state %s err %q, want completed", w.ID, v.State, v.Error)
		}
		if v.ResultHash != lv.ResultHash {
			t.Errorf("waiter %s result hash %q, want %q", w.ID, v.ResultHash, lv.ResultHash)
		}
		if v.CoalescedWith != leader.ID {
			t.Errorf("waiter %s lost its coalesced_with marker", w.ID)
		}
		if len(v.History) != len(lv.History) {
			t.Fatalf("waiter %s history %d cycles, leader %d", w.ID, len(v.History), len(lv.History))
		}
		for c := range v.History {
			if v.History[c] != lv.History[c] {
				t.Fatalf("waiter %s history diverges at cycle %d: %v != %v",
					w.ID, c, v.History[c], lv.History[c])
			}
		}
	}

	m := s.Metrics()
	if got := m.Completed.Load(); got != 1 {
		t.Errorf("completed %d engine runs, want exactly 1", got)
	}
	if got := m.CoalesceAttach.Load(); got != 4 {
		t.Errorf("coalesce attaches %d, want 4", got)
	}
	if got := m.CoalesceFanout.Load(); got != 4 {
		t.Errorf("coalesce fanouts %d, want 4", got)
	}
	// The result landed in the artifact store under its content hash.
	if _, err := s.Store().Get(lv.ResultHash); err != nil {
		t.Errorf("result artifact %s not in store: %v", lv.ResultHash, err)
	}
}

// Cancelling one waiter detaches only that waiter; the shared run and the
// remaining parties are untouched.
func TestCoalesceWaiterCancelKeepsRun(t *testing.T) {
	s := NewScheduler(Config{QueueCap: 4, Runners: 1, WorkerBudget: 4})
	defer s.Stop()

	spec := chanSpec(6, 3, 2, 1, KindSM, 2, 200000)
	leader := submitOne(t, s, spec)
	waitState(t, leader, StateRunning)
	waiter := submitOne(t, s, spec)
	if st := waiter.View().State; st != StateCoalesced {
		t.Fatalf("waiter state %s, want coalesced", st)
	}

	if _, err := s.Cancel(waiter.ID); err != nil {
		t.Fatal(err)
	}
	waitDone(t, waiter)
	if st := waiter.State(); st != StateCancelled {
		t.Fatalf("waiter state %s, want cancelled", st)
	}

	// The run survives its waiter's departure: still running, still
	// making progress.
	if st := leader.State(); st != StateRunning {
		t.Fatalf("leader state %s after waiter cancel, want running", st)
	}
	c := leader.View().Cycles
	waitCycles(t, leader, c+5)

	// The leader was the last remaining party: its cancel ends the run.
	if _, err := s.Cancel(leader.ID); err != nil {
		t.Fatal(err)
	}
	waitDone(t, leader)
	if st := leader.State(); st != StateCancelled {
		t.Fatalf("leader state %s, want cancelled", st)
	}
}

// The run is cancelled only when the last interested party leaves —
// including the case where the leader's own client leaves first.
func TestCoalesceAllCancelCancelsRun(t *testing.T) {
	s := NewScheduler(Config{QueueCap: 4, Runners: 1, WorkerBudget: 4})
	defer s.Stop()

	spec := chanSpec(6, 3, 2, 1, KindSM, 2, 200000)
	leader := submitOne(t, s, spec)
	waitState(t, leader, StateRunning)
	w1 := submitOne(t, s, spec)
	w2 := submitOne(t, s, spec)

	// First waiter leaves: two parties remain.
	if _, err := s.Cancel(w1.ID); err != nil {
		t.Fatal(err)
	}
	waitDone(t, w1)

	// The leader's client leaves: w2 still holds the run alive.
	if _, err := s.Cancel(leader.ID); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if st := leader.State(); st != StateRunning {
		t.Fatalf("leader state %s after leader-party cancel, want running (w2 still attached)", st)
	}
	c := leader.View().Cycles
	waitCycles(t, leader, c+5)

	// A second leader cancel is idempotent: it must not count as another
	// party leaving.
	if _, err := s.Cancel(leader.ID); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if st := leader.State(); st != StateRunning {
		t.Fatalf("leader state %s after repeated leader cancel, want running", st)
	}

	// The last party leaves: now the run dies.
	if _, err := s.Cancel(w2.ID); err != nil {
		t.Fatal(err)
	}
	waitDone(t, leader)
	waitDone(t, w2)
	if st := leader.State(); st != StateCancelled {
		t.Fatalf("leader state %s, want cancelled", st)
	}
	if st := w2.State(); st != StateCancelled {
		t.Fatalf("waiter state %s, want cancelled", st)
	}
}

// A waiter with its own deadline detaches on expiry without disturbing
// the shared run.
func TestCoalesceDeadlineWaiterDetaches(t *testing.T) {
	s := NewScheduler(Config{QueueCap: 4, Runners: 1, WorkerBudget: 4})
	defer s.Stop()

	spec := chanSpec(6, 3, 2, 1, KindSM, 2, 200000)
	leader := submitOne(t, s, spec)
	waitState(t, leader, StateRunning)

	wspec := spec
	wspec.DeadlineMS = 50
	waiter := submitOne(t, s, wspec)
	if st := waiter.View().State; st != StateCoalesced {
		t.Fatalf("waiter state %s, want coalesced", st)
	}
	waitDone(t, waiter)
	if st := waiter.State(); st != StateExpired {
		t.Fatalf("waiter state %s, want expired", st)
	}
	if st := leader.State(); st != StateRunning {
		t.Fatalf("leader state %s after waiter deadline, want running", st)
	}

	if _, err := s.Cancel(leader.ID); err != nil {
		t.Fatal(err)
	}
	waitDone(t, leader)
}

// A finished flight is retired: a late identical submission starts a
// fresh run instead of attaching to a corpse.
func TestCoalesceRetiredFlightNotJoinable(t *testing.T) {
	s := NewScheduler(Config{QueueCap: 4, Runners: 1, WorkerBudget: 4})
	defer s.Stop()

	spec := chanSpec(4, 2, 2, 1, KindSingle, 0, 10)
	first := submitOne(t, s, spec)
	waitDone(t, first)

	second := submitOne(t, s, spec)
	waitDone(t, second)
	v := second.View()
	if v.State != StateCompleted {
		t.Fatalf("second run state %s err %q, want completed", v.State, v.Error)
	}
	if v.CoalescedWith != "" {
		t.Fatalf("second run coalesced with finished job %q", v.CoalescedWith)
	}
	if got := s.Metrics().Completed.Load(); got != 2 {
		t.Errorf("completed %d runs, want 2 (no attach to a retired flight)", got)
	}
}
