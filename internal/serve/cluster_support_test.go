package serve

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"eul3d/internal/meshio"
)

// Tests for the cluster-facing surface of a node: the liveness/readiness
// split, Retry-After hints on shed responses, the checkpoint endpoint the
// coordinator polls, and resumable submission under a pinned job ID.

func getReady(t *testing.T, srv *httptest.Server) (*http.Response, readyView) {
	t.Helper()
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v readyView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return resp, v
}

func TestHTTPReadyzStates(t *testing.T) {
	s, srv := newTestServer(t, Config{QueueCap: 1, Runners: 1, WorkerBudget: 4, StateDir: t.TempDir()})

	// Fresh server: live and ready.
	resp, v := getReady(t, srv)
	if resp.StatusCode != http.StatusOK || v.Status != "ready" {
		t.Fatalf("fresh readyz: %d %q, want 200 ready", resp.StatusCode, v.Status)
	}
	if v.QueueCap != 1 {
		t.Errorf("queue_cap = %d, want 1", v.QueueCap)
	}

	// Occupy the runner and fill the queue: saturated, but still alive.
	running, err := s.Submit(chanSpec(4, 2, 2, 1, KindSingle, 0, 200000))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning)
	waitCycles(t, running, 1)
	if _, err := s.Submit(chanSpec(4, 2, 2, 2, KindSingle, 0, 50)); err != nil {
		t.Fatal(err)
	}
	resp, v = getReady(t, srv)
	if resp.StatusCode != http.StatusServiceUnavailable || v.Status != "saturated" {
		t.Fatalf("saturated readyz: %d %q, want 503 saturated", resp.StatusCode, v.Status)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("saturated readyz missing Retry-After")
	}
	// Liveness is unaffected by saturation.
	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while saturated: %d, want 200", hresp.StatusCode)
	}

	// Draining: readiness drops before the process exits.
	drained := make(chan struct{})
	go func() { s.Drain(); close(drained) }()
	deadline := time.Now().Add(30 * time.Second)
	for !s.Draining() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	resp, v = getReady(t, srv)
	if resp.StatusCode != http.StatusServiceUnavailable || v.Status != "draining" {
		t.Fatalf("draining readyz: %d %q, want 503 draining", resp.StatusCode, v.Status)
	}
	select {
	case <-drained:
	case <-time.After(60 * time.Second):
		t.Fatal("drain did not finish")
	}
}

func TestHTTPRetryAfterOnShed(t *testing.T) {
	s, srv := newTestServer(t, Config{QueueCap: 1, Runners: 1, WorkerBudget: 4, StateDir: t.TempDir()})
	running, err := s.Submit(chanSpec(4, 2, 2, 1, KindSingle, 0, 200000))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning)
	waitCycles(t, running, 1)
	if _, err := s.Submit(chanSpec(4, 2, 2, 2, KindSingle, 0, 50)); err != nil {
		t.Fatal(err)
	}

	// Queue full -> 429 with a positive Retry-After.
	resp, _ := postJob(t, srv, smallJob)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d, want 429", resp.StatusCode)
	}
	checkRetryAfter(t, resp)

	go s.Drain()
	deadline := time.Now().Add(30 * time.Second)
	for !s.Draining() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// Draining -> 503 with a positive Retry-After.
	resp, _ = postJob(t, srv, smallJob)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: %d, want 503", resp.StatusCode)
	}
	checkRetryAfter(t, resp)
}

func checkRetryAfter(t *testing.T, resp *http.Response) {
	t.Helper()
	var secs int
	if _, err := fmt.Sscanf(resp.Header.Get("Retry-After"), "%d", &secs); err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want integer >= 1 (%v)", resp.Header.Get("Retry-After"), err)
	}
}

// TestHTTPCheckpointEndpoint runs a job under periodic checkpointing and
// polls the coordinator-facing checkpoint endpoint until a CRC-valid
// snapshot with advancing cycle count comes back.
func TestHTTPCheckpointEndpoint(t *testing.T) {
	s, srv := newTestServer(t, Config{
		QueueCap: 4, Runners: 1, WorkerBudget: 4,
		StateDir: t.TempDir(), CheckpointEvery: 5,
	})

	// Unknown job: 404.
	resp, err := http.Get(srv.URL + "/v1/jobs/nope/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job checkpoint: %d, want 404", resp.StatusCode)
	}

	j, err := s.Submit(chanSpec(6, 3, 2, 3, KindSingle, 0, 200000))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	var raw []byte
	for time.Now().Before(deadline) {
		resp, err := http.Get(srv.URL + "/v1/jobs/" + j.ID + "/checkpoint")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			buf := new(bytes.Buffer)
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			raw = buf.Bytes()
			break
		}
		resp.Body.Close()
		time.Sleep(5 * time.Millisecond)
	}
	if raw == nil {
		t.Fatal("no checkpoint served within 30s")
	}
	ck, err := meshio.ReadCheckpoint(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("served checkpoint does not parse: %v", err)
	}
	if ck.Cycle <= 0 || len(ck.History) != ck.Cycle {
		t.Fatalf("checkpoint cycle %d with %d history entries", ck.Cycle, len(ck.History))
	}
	if _, err := s.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
}

// TestHTTPResumeBitwise interrupts a run with a drain, then resubmits the
// drained checkpoint over HTTP — under the original job ID — to a second
// server, and requires the stitched history to be bitwise identical to an
// uninterrupted reference run.
func TestHTTPResumeBitwise(t *testing.T) {
	const cycles = 400
	spec := chanSpec(6, 3, 2, 9, KindSingle, 0, cycles)

	// Reference: one uninterrupted run.
	ref := NewScheduler(Config{QueueCap: 4, Runners: 1, WorkerBudget: 4})
	defer ref.Stop()
	rj, err := ref.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, rj)
	if st := rj.State(); st != StateCompleted {
		t.Fatalf("reference run ended %s", st)
	}
	want := rj.View().History
	if len(want) != cycles {
		t.Fatalf("reference history %d entries, want %d", len(want), cycles)
	}

	// Interrupted: drain the first node mid-run, keep its checkpoint.
	first := NewScheduler(Config{QueueCap: 4, Runners: 1, WorkerBudget: 4, StateDir: t.TempDir()})
	j, err := first.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitCycles(t, j, 5)
	first.Drain()
	if st := j.State(); st != StateDrained {
		t.Fatalf("first-node job ended %s, want drained (raise cycles if the run outpaced the drain)", st)
	}
	raw, err := os.ReadFile(first.CheckpointFile(j.ID))
	if err != nil {
		t.Fatal(err)
	}
	first.Stop()

	// Handoff: replay the spec + checkpoint to a fresh server over HTTP,
	// pinning the original job ID as the coordinator would.
	_, srv := newTestServer(t, Config{QueueCap: 4, Runners: 1, WorkerBudget: 4})
	body, err := json.Marshal(map[string]any{
		"mesh": spec.Mesh, "mach": spec.Mach, "engine": spec.Engine,
		"cycles": spec.Cycles, "id": j.ID,
		"resume": base64.StdEncoding.EncodeToString(raw),
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, v := postJob(t, srv, string(body))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resume submit: %d, want 202", resp.StatusCode)
	}
	if v.ID != j.ID {
		t.Fatalf("resumed job id %q, want pinned %q", v.ID, j.ID)
	}
	deadline := time.Now().Add(60 * time.Second)
	for v.State != StateCompleted && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		v = getJob(t, srv, j.ID)
	}
	if v.State != StateCompleted {
		t.Fatalf("resumed job stuck in %s", v.State)
	}
	if len(v.History) != cycles {
		t.Fatalf("resumed history %d entries, want %d", len(v.History), cycles)
	}
	for i := range want {
		if v.History[i] != want[i] {
			t.Fatalf("history diverges at cycle %d: %v != %v", i, v.History[i], want[i])
		}
	}
	// ID-reuse semantics: a finished record is superseded (a coordinator
	// may re-dispatch under the job's pinned identity), but a live job's
	// ID is a real conflict and must be refused.
	resp, _ = postJob(t, srv, string(body))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resume over finished record: %d, want 202 (superseded)", resp.StatusCode)
	}
	resp, _ = postJob(t, srv, string(body))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate of live job: %d, want 400", resp.StatusCode)
	}
}
