package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGovernorCapAndPeak(t *testing.T) {
	g := NewGovernor(4)
	ctx := context.Background()
	if err := g.Acquire(ctx, 3); err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if got := g.InUse(); got != 4 {
		t.Fatalf("in use %d, want 4", got)
	}
	g.Release(1)
	g.Release(3)
	if got := g.InUse(); got != 0 {
		t.Fatalf("in use %d after release, want 0", got)
	}
	if got := g.Peak(); got != 4 {
		t.Fatalf("peak %d, want 4", got)
	}
}

func TestGovernorOverBudgetErrors(t *testing.T) {
	g := NewGovernor(2)
	if err := g.Acquire(context.Background(), 3); err == nil {
		t.Fatal("acquiring more than the budget should fail immediately")
	}
}

// The budget must never be exceeded even under concurrent contention, and
// every blocked acquirer must eventually run.
func TestGovernorNeverExceedsCapUnderContention(t *testing.T) {
	const budget, jobs, each = 4, 16, 2
	g := NewGovernor(budget)
	var over atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Acquire(context.Background(), each); err != nil {
				t.Error(err)
				return
			}
			if g.InUse() > budget {
				over.Store(true)
			}
			time.Sleep(time.Millisecond)
			g.Release(each)
		}()
	}
	wg.Wait()
	if over.Load() {
		t.Fatal("governor exceeded its budget")
	}
	if p := g.Peak(); p > budget {
		t.Fatalf("peak %d exceeds budget %d", p, budget)
	}
	if g.InUse() != 0 {
		t.Fatalf("in use %d after all releases", g.InUse())
	}
}

// A waiter whose context dies must be removed without consuming budget.
func TestGovernorWaiterCancellation(t *testing.T) {
	g := NewGovernor(2)
	if err := g.Acquire(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- g.Acquire(ctx, 1) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("cancelled waiter should error")
	}
	g.Release(2)
	// The cancelled waiter must not hold anything: the full budget is free.
	if err := g.Acquire(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	g.Release(2)
}
