package serve

import (
	"fmt"

	"eul3d/internal/mesh"
	"eul3d/internal/solver"
)

// buildEngine constructs the solver.Steady for a spec over its prebuilt
// mesh sequence. The returned engine owns mesh, discretization, colorings
// and (for pooled kinds) the parked worker pool — everything the cache
// amortizes across jobs.
func buildEngine(spec JobSpec, ms []*mesh.Mesh) (*solver.Steady, error) {
	p := spec.Params()
	switch spec.Engine {
	case KindSingle:
		return solver.NewSingleGrid(ms[0], p), nil
	case KindSM:
		return solver.NewSharedMemory(ms[0], p, spec.Workers)
	case KindMG:
		return solver.NewMultigrid(ms, p, spec.gamma())
	case KindSMMG:
		return solver.NewSharedMemoryMultigrid(ms, p, spec.gamma(), spec.Workers)
	}
	return nil, fmt.Errorf("serve: unknown engine %q", spec.Engine)
}
