package serve

import (
	"os"
	"path/filepath"
	"testing"
)

func sodAdaptSpec(engine string, workers, interval, epochs int) JobSpec {
	return JobSpec{
		Scenario: "sod",
		Engine:   engine,
		Workers:  workers,
		Adapt:    &AdaptSpec{Interval: interval, Epochs: epochs},
	}
}

// An adaptive scenario job runs through the scheduler end to end: it
// refines, bypasses the engine cache, lands diagnostics computed on the
// final adapted mesh, and bumps the adaptation counters.
func TestAdaptJobCompletes(t *testing.T) {
	s := NewScheduler(Config{Runners: 1, WorkerBudget: 4})
	defer s.Stop()

	j, err := s.Submit(sodAdaptSpec(KindSM, 2, 50, 2))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	v := j.View()
	if v.State != StateCompleted {
		t.Fatalf("adaptive job state %s (err %q)", v.State, v.Error)
	}
	if len(v.AdaptEpochs) < 2 {
		t.Fatalf("ran %d adaptation epochs, want >= 2", len(v.AdaptEpochs))
	}
	for i, ep := range v.AdaptEpochs {
		if ep.CellsAfter <= ep.CellsBefore {
			t.Errorf("epoch %d did not grow the mesh: %d -> %d", i, ep.CellsBefore, ep.CellsAfter)
		}
		if ep.ReusedColors <= 0 {
			t.Errorf("epoch %d reused no edge colors", i)
		}
		if ep.RebuildNS <= 0 {
			t.Errorf("epoch %d recorded no rebuild time", i)
		}
	}
	if v.Diagnostics == nil {
		t.Fatal("completed scenario job has no diagnostics")
	}
	if tol := v.Spec.scenario().L1Tol; v.Diagnostics.L1Density > tol {
		t.Errorf("L1 density error %g exceeds the preset tolerance %g", v.Diagnostics.L1Density, tol)
	}
	if v.ResultHash == "" {
		t.Error("completed adaptive job has no result artifact")
	}
	// Adaptive jobs never touch the engine cache.
	if v.CacheHit != nil {
		t.Error("adaptive job reported an engine-cache interaction")
	}

	m := s.Metrics()
	if got := m.AdaptEpochs.Load(); got < 2 {
		t.Errorf("AdaptEpochs counter %d, want >= 2", got)
	}
	if m.AdaptCells.Load() <= 0 {
		t.Error("AdaptCells counter not bumped")
	}
	if m.AdaptRebuildNS.Load() <= 0 {
		t.Error("AdaptRebuildNS counter not bumped")
	}
}

// Malformed adaptation specs are rejected at submission.
func TestAdaptSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec JobSpec
	}{
		{"multigrid engine", JobSpec{Scenario: "sod", Engine: KindMG, Adapt: &AdaptSpec{}}},
		{"pooled multigrid engine", JobSpec{Scenario: "sod", Engine: KindSMMG, Adapt: &AdaptSpec{}}},
		{"bogus indicator", JobSpec{Scenario: "sod", Adapt: &AdaptSpec{Indicator: "entropy"}}},
		{"negative interval", JobSpec{Scenario: "sod", Adapt: &AdaptSpec{Interval: -1}}},
		{"too many epochs", JobSpec{Scenario: "sod", Adapt: &AdaptSpec{Epochs: 17}}},
		{"frac above half", JobSpec{Scenario: "sod", Adapt: &AdaptSpec{Frac: 0.75}}},
		{"negative budget", JobSpec{Scenario: "sod", Adapt: &AdaptSpec{Budget: -4}}},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); err == nil {
			t.Errorf("%s: spec validated, want rejection", c.name)
		}
	}
	// The adaptation schedule is part of the coalescing key.
	a, b := sodAdaptSpec(KindSM, 2, 50, 2), sodAdaptSpec(KindSM, 2, 40, 2)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.SpecHash() == b.SpecHash() {
		t.Error("different adaptation schedules share a SpecHash")
	}
}

// Draining an adaptive job mid-run persists the adapted mesh next to the
// checkpoint; a fresh scheduler resumes it on that mesh and finishes
// bitwise identical to an uninterrupted run. The sequential engine is the
// one with a bitwise resume contract: a resumed pooled engine re-colors
// the adapted mesh from scratch instead of inheriting the incremental
// coloring lineage, which reorders parallel summation in the last ulps.
func TestAdaptDrainResume(t *testing.T) {
	dir := t.TempDir()
	spec := sodAdaptSpec(KindSingle, 0, 30, 2)
	// An explicit budget keeps the marking arithmetic identical across the
	// interrupted and resumed runs (the default is derived from the current
	// cell count, which differs once the resumed run starts on a refined
	// mesh).
	spec.Adapt.Budget = 20000

	ref := NewScheduler(Config{Runners: 1, WorkerBudget: 4})
	jr, err := ref.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, jr)
	refV := jr.View()
	ref.Stop()
	if refV.State != StateCompleted {
		t.Fatalf("reference state %s (err %q)", refV.State, refV.Error)
	}
	if len(refV.AdaptEpochs) < 2 {
		t.Fatalf("reference ran %d epochs, want >= 2", len(refV.AdaptEpochs))
	}

	s1 := NewScheduler(Config{Runners: 1, WorkerBudget: 4, StateDir: dir, CheckpointEvery: 25})
	j1, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Past the first epoch (step 30) the run lives on a refined mesh, so
	// the drain exercises the mesh-carrying resume path.
	waitCycles(t, j1, 40)
	s1.Drain()
	if st := j1.State(); st != StateDrained {
		t.Fatalf("state after drain %s, want drained", st)
	}
	cut := j1.View().Cycles
	if cut >= len(refV.History) {
		t.Fatalf("drained after %d cycles, not mid-flight", cut)
	}
	if _, err := os.Stat(filepath.Join(dir, j1.ID+".amesh")); err != nil {
		t.Fatalf("adapted mesh not persisted on drain: %v", err)
	}

	s2 := NewScheduler(Config{Runners: 1, WorkerBudget: 4, StateDir: dir})
	defer s2.Stop()
	n, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("recovered %d jobs, want 1", n)
	}
	j2, err := s2.Job(j1.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2)
	v := j2.View()
	if v.State != StateCompleted {
		t.Fatalf("resumed job state %s (err %q)", v.State, v.Error)
	}
	if len(v.History) != len(refV.History) {
		t.Fatalf("resumed history %d steps, reference %d", len(v.History), len(refV.History))
	}
	for i := range refV.History {
		if v.History[i] != refV.History[i] {
			t.Fatalf("step %d: resumed %g, reference %g (resume not bitwise)", i, v.History[i], refV.History[i])
		}
	}
	if v.ResultHash != refV.ResultHash {
		t.Fatalf("resumed result hash %s, reference %s", v.ResultHash, refV.ResultHash)
	}
	if len(v.AdaptEpochs)+len(j1.View().AdaptEpochs) < 2 {
		t.Errorf("interrupted+resumed run recorded %d+%d epochs, want 2 total",
			len(j1.View().AdaptEpochs), len(v.AdaptEpochs))
	}
	// Completion cleans up all three state files.
	for _, suffix := range []string{".job.json", ".ckpt", ".amesh"} {
		if _, err := os.Stat(filepath.Join(dir, j1.ID+suffix)); !os.IsNotExist(err) {
			t.Errorf("state file %s not removed after completion (err=%v)", suffix, err)
		}
	}
}
