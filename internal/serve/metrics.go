package serve

import (
	"sync/atomic"

	"eul3d/internal/trace"
)

// Metrics holds the service counters. All fields are atomic so job
// runners, HTTP handlers and the drain path update them without locks;
// gauges (queue depth, workers in use) are read live from their owners
// when the snapshot is rendered.
type Metrics struct {
	Submitted atomic.Int64 // admitted into the queue
	Rejected  atomic.Int64 // refused admission (queue full)
	Completed atomic.Int64 // ran to MaxCycles or converged
	Failed    atomic.Int64 // run error or diverged
	Cancelled atomic.Int64 // cancelled by the client
	Expired   atomic.Int64 // deadline passed (queued or running)
	Drained   atomic.Int64 // checkpointed by a graceful drain
	Resumed   atomic.Int64 // re-enqueued from a drain checkpoint at startup

	CoalesceAttach atomic.Int64 // submissions attached as waiters to an identical live job
	CoalesceFanout atomic.Int64 // waiter copies of a shared result delivered

	CacheHits   atomic.Int64 // engine served from the cache
	CacheMisses atomic.Int64 // engine built (or waited on a shared build)
	Builds      atomic.Int64 // engine constructions actually performed
	Evictions   atomic.Int64 // engines closed by LRU eviction

	AdaptEpochs    atomic.Int64 // adaptation epochs run across adaptive jobs
	AdaptCells     atomic.Int64 // cells added by adaptive refinement
	AdaptRebuildNS atomic.Int64 // nanoseconds spent in incremental engine rebuilds

	// Latency histograms, rendered as Prometheus histogram series by the
	// metrics endpoint. QueueWait is admission to dispatch; RunTime is the
	// solver run alone (queue, governor and engine-acquire time excluded).
	QueueWait trace.Hist
	RunTime   trace.Hist
}

// HitRate returns the engine-cache hit fraction (0 when no lookups yet).
func (m *Metrics) HitRate() float64 {
	h, s := m.CacheHits.Load(), m.CacheMisses.Load()
	if h+s == 0 {
		return 0
	}
	return float64(h) / float64(h+s)
}
