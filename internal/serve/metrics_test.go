package serve

import (
	"sync"
	"testing"
	"time"
)

// HitRate must not divide by zero before any lookup, and must track the
// hit fraction exactly afterwards.
func TestHitRateEdges(t *testing.T) {
	var m Metrics
	if got := m.HitRate(); got != 0 {
		t.Fatalf("empty HitRate = %v, want 0", got)
	}
	m.CacheMisses.Add(1)
	if got := m.HitRate(); got != 0 {
		t.Fatalf("all-miss HitRate = %v, want 0", got)
	}
	m.CacheHits.Add(3)
	if got := m.HitRate(); got != 0.75 {
		t.Fatalf("HitRate = %v, want 0.75", got)
	}
	m.CacheMisses.Store(0)
	if got := m.HitRate(); got != 1 {
		t.Fatalf("all-hit HitRate = %v, want 1", got)
	}
}

// The counters are bumped from runner goroutines, HTTP handlers and the
// drain path concurrently; a snapshot taken under contention must still
// account for every increment once the writers are done.
func TestMetricsConcurrentCounters(t *testing.T) {
	var m Metrics
	const (
		writers = 8
		perW    = 1000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				m.Submitted.Add(1)
				m.Completed.Add(1)
				m.CacheHits.Add(1)
				m.QueueWait.Observe(time.Millisecond)
			}
		}()
	}
	// A concurrent reader must observe monotonically growing, never torn,
	// values while the writers run.
	stop := make(chan struct{})
	go func() {
		var last int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			v := m.Submitted.Load()
			if v < last {
				t.Error("Submitted went backwards")
				return
			}
			last = v
		}
	}()
	wg.Wait()
	close(stop)

	want := int64(writers * perW)
	if m.Submitted.Load() != want || m.Completed.Load() != want || m.CacheHits.Load() != want {
		t.Fatalf("counters lost updates: submitted=%d completed=%d hits=%d want %d",
			m.Submitted.Load(), m.Completed.Load(), m.CacheHits.Load(), want)
	}
	if m.QueueWait.Count() != want {
		t.Fatalf("QueueWait recorded %d observations, want %d", m.QueueWait.Count(), want)
	}
	if got := m.HitRate(); got != 1 {
		t.Fatalf("HitRate = %v, want 1", got)
	}
}
