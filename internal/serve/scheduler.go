package serve

import (
	"container/heap"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"eul3d/internal/adapt"
	"eul3d/internal/euler"
	"eul3d/internal/meshio"
	"eul3d/internal/scenario"
	"eul3d/internal/solver"
	"eul3d/internal/store"
	"eul3d/internal/trace"
)

// Admission and lifecycle errors surfaced to the HTTP layer.
var (
	ErrQueueFull  = errors.New("serve: queue full")
	ErrDraining   = errors.New("serve: draining, not accepting jobs")
	ErrNotFound   = errors.New("serve: no such job")
	ErrNoArtifact = errors.New("serve: mesh artifact not in store (upload it first)")
	errClientStop = errors.New("serve: cancelled by client")
	errDrainStop  = errors.New("serve: drained")
)

// JobState is the lifecycle phase of a job.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateCompleted JobState = "completed"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
	StateExpired   JobState = "expired"
	StateDrained   JobState = "drained"   // checkpointed by a graceful drain; resumes on restart
	StateCoalesced JobState = "coalesced" // attached as a waiter to an identical in-flight job
)

// Job is one tracked solve request.
type Job struct {
	ID   string
	Spec JobSpec

	mu       sync.Mutex
	state    JobState
	history  []float64
	errMsg   string
	result   *solver.Result
	diag     *scenario.Diagnostics // scenario jobs: post-run diagnostics
	key      EngineKey
	keySet   bool
	built    bool // this job performed the engine construction (cache miss)
	enqueued time.Time
	deadline time.Time // zero when the job has no deadline

	seq    int64 // admission order, FIFO tiebreak within a priority
	cancel context.CancelCauseFunc
	ctx    context.Context
	done   chan struct{} // closed when the job leaves the queue/runner for good
	resume *meshio.Checkpoint

	adaptResume *adapt.Snapshot   // adaptive jobs: mesh-carrying resume point
	adaptEpochs []adapt.EpochStat // adaptive jobs: per-epoch record after the run

	resultHash    string  // store key of the encoded result solution
	flight        *flight // non-nil on a coalescing leader
	coalescedWith string  // waiters: the leader's job ID
	noCoalesce    bool    // handoff/recovered jobs keep their own run
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobView is the externally visible snapshot of a job.
type JobView struct {
	ID          string    `json:"id"`
	State       JobState  `json:"state"`
	Spec        JobSpec   `json:"spec"`
	Cycles      int       `json:"cycles"`
	History     []float64 `json:"history,omitempty"`
	InitialNorm float64   `json:"initial_norm,omitempty"`
	FinalNorm   float64   `json:"final_norm,omitempty"`
	Orders      float64   `json:"orders,omitempty"`
	Converged   bool      `json:"converged,omitempty"`
	Error       string    `json:"error,omitempty"`
	Engine      string    `json:"engine_key,omitempty"`
	CacheHit    *bool     `json:"cache_hit,omitempty"`

	// ResultHash is the artifact-store key of the completed result's
	// encoded solution — the job's ETag, and a handle any peer can GET
	// the full field from.
	ResultHash string `json:"result_hash,omitempty"`

	// CoalescedWith names the leader this job attached to as a waiter
	// (set while coalesced and preserved in the mirrored terminal view).
	CoalescedWith string `json:"coalesced_with,omitempty"`

	// Diagnostics is present on completed scenario jobs: the preset's
	// physics record (L1 error vs the analytic reference, field ranges).
	Diagnostics *scenario.Diagnostics `json:"diagnostics,omitempty"`

	// AdaptEpochs is present on finished adaptive jobs: one record per
	// adaptation epoch (cells refined, colors reused, rebuild time).
	AdaptEpochs []adapt.EpochStat `json:"adapt_epochs,omitempty"`
}

// View snapshots the job.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:            j.ID,
		State:         j.state,
		Spec:          j.Spec,
		Cycles:        len(j.history),
		History:       append([]float64(nil), j.history...),
		Error:         j.errMsg,
		ResultHash:    j.resultHash,
		CoalescedWith: j.coalescedWith,
	}
	if j.keySet {
		v.Engine = j.key.String()
		hit := !j.built
		v.CacheHit = &hit
	}
	if n := len(j.history); n > 0 {
		v.InitialNorm = j.history[0]
		v.FinalNorm = j.history[n-1]
	}
	if r := j.result; r != nil {
		v.Converged = r.Converged
		v.Orders = r.Ordersof10
	}
	v.Diagnostics = j.diag
	v.AdaptEpochs = append([]adapt.EpochStat(nil), j.adaptEpochs...)
	return v
}

// State returns the job's current lifecycle phase.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// jobQueue is a max-heap on (priority, admission order).
type jobQueue []*Job

func (q jobQueue) Len() int { return len(q) }
func (q jobQueue) Less(a, b int) bool {
	if q[a].Spec.Priority != q[b].Spec.Priority {
		return q[a].Spec.Priority > q[b].Spec.Priority
	}
	return q[a].seq < q[b].seq
}
func (q jobQueue) Swap(a, b int) { q[a], q[b] = q[b], q[a] }
func (q *jobQueue) Push(x any)   { *q = append(*q, x.(*Job)) }
func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return x
}

// Config sizes a Scheduler.
type Config struct {
	QueueCap     int    // pending jobs admitted before 429s (default 16)
	Runners      int    // jobs solving concurrently (default 2)
	WorkerBudget int    // total pooled workers across concurrent jobs (default 8)
	CacheCap     int    // idle engines kept warm (default 4)
	StateDir     string // drain checkpoints + resume sidecars ("" disables)
	Log          *log.Logger

	// CheckpointEvery, when positive (and StateDir is set), checkpoints
	// every running job each CheckpointEvery cycles, and persists a restart
	// sidecar the moment the job starts running. The node then survives
	// SIGKILL — a restart resumes from the last periodic checkpoint — and a
	// cluster coordinator can pull the live checkpoint over
	// GET /v1/jobs/{id}/checkpoint and hand the job to another node.
	CheckpointEvery int

	// Trace, when set, records every job's lifecycle (queued, governor
	// wait, engine acquire, run, terminal instant) on a per-job track of
	// the flight recorder, exposed over GET /debug/trace. Nil disables
	// service-layer tracing entirely.
	Trace *trace.Tracer

	// Store is the content-addressed artifact store backing hash-named
	// meshes, resume-by-hash checkpoints and result artifacts. Nil gets
	// a default memory-only store.
	Store *store.Store
}

func (c *Config) fill() {
	if c.QueueCap <= 0 {
		c.QueueCap = 16
	}
	if c.Runners <= 0 {
		c.Runners = 2
	}
	if c.WorkerBudget <= 0 {
		c.WorkerBudget = 8
	}
	if c.CacheCap <= 0 {
		c.CacheCap = 4
	}
	if c.Log == nil {
		c.Log = log.New(io.Discard, "", 0)
	}
	if c.Store == nil {
		c.Store = store.NewMemory()
	}
}

// Scheduler multiplexes solve jobs over cached engines: bounded admission,
// priority dispatch, deadlines, cooperative cancellation, and graceful
// drain with checkpoint/resume.
type Scheduler struct {
	cfg   Config
	cache *Cache
	gov   *Governor
	met   *Metrics
	trc   *schedTrace // nil when Config.Trace is nil

	mu       sync.Mutex
	cond     *sync.Cond
	queue    jobQueue
	jobs     map[string]*Job
	flights  map[string]*flight // SpecHash -> in-flight coalescable job
	seq      int64
	draining bool
	stopped  bool
	running  int

	wg sync.WaitGroup
}

// NewScheduler builds a scheduler and starts its runner goroutines.
func NewScheduler(cfg Config) *Scheduler {
	cfg.fill()
	met := &Metrics{}
	s := &Scheduler{
		cfg:     cfg,
		met:     met,
		trc:     newSchedTrace(cfg.Trace),
		cache:   NewCache(cfg.CacheCap, met),
		gov:     NewGovernor(cfg.WorkerBudget),
		jobs:    make(map[string]*Job),
		flights: make(map[string]*flight),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < cfg.Runners; i++ {
		s.wg.Add(1)
		go s.runner()
	}
	return s
}

// Metrics returns the scheduler's counter block.
func (s *Scheduler) Metrics() *Metrics { return s.met }

// Governor returns the worker-budget governor (for gauges).
func (s *Scheduler) Governor() *Governor { return s.gov }

// Cache returns the engine cache (for gauges and per-engine stats).
func (s *Scheduler) Cache() *Cache { return s.cache }

// Store returns the artifact store.
func (s *Scheduler) Store() *store.Store { return s.cfg.Store }

// Tracer returns the flight recorder the scheduler writes to (nil when
// tracing is disabled).
func (s *Scheduler) Tracer() *trace.Tracer { return s.cfg.Trace }

// QueueDepth returns the number of jobs waiting for a runner.
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Running returns the number of jobs currently on a runner.
func (s *Scheduler) Running() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}

// Draining reports whether a graceful drain has begun.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// QueueCap returns the admission queue capacity.
func (s *Scheduler) QueueCap() int { return s.cfg.QueueCap }

// Saturated reports whether the admission queue is full — the next Submit
// would be rejected with ErrQueueFull. /readyz turns this into a 503 so a
// cluster coordinator routes around the node before piling more work on.
func (s *Scheduler) Saturated() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue) >= s.cfg.QueueCap
}

// RetryAfterHint estimates, in whole seconds, how long a rejected client
// should wait before retrying. While draining the hint is a flat 10s (this
// process is going away; the retry must land elsewhere or after restart).
// When the queue is full the hint scales with the backlog: mean observed
// run time times the jobs ahead, divided across the runners.
func (s *Scheduler) RetryAfterHint() int {
	if s.Draining() {
		return 10
	}
	mean := 500 * time.Millisecond
	if n := s.met.RunTime.Count(); n > 0 {
		mean = s.met.RunTime.Sum() / time.Duration(n)
	}
	est := mean * time.Duration(s.QueueDepth()+1) / time.Duration(s.cfg.Runners)
	sec := int((est + time.Second - 1) / time.Second)
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return sec
}

// CheckpointFile returns the path of the job's latest on-disk checkpoint,
// or "" when none exists (checkpointing disabled, or no cycle boundary
// reached yet). The file is written atomically, so a concurrent reader
// always sees a complete, CRC-valid snapshot.
func (s *Scheduler) CheckpointFile(id string) string {
	if s.cfg.StateDir == "" {
		return ""
	}
	p := s.ckptPath(id)
	if _, err := os.Stat(p); err != nil {
		return ""
	}
	return p
}

func newJobID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return "j" + hex.EncodeToString(b[:])
}

// Submit validates and admits a job. It returns ErrQueueFull when the
// bounded queue is at capacity (the HTTP layer maps that to 429),
// ErrDraining once a graceful drain has begun (503), and ErrNoArtifact
// for a hash-named mesh the store does not hold (412). A submission
// whose SpecHash matches a live job attaches to it as a waiter instead
// of occupying queue or runner capacity; the returned Job then mirrors
// the leader's result when it lands.
func (s *Scheduler) Submit(spec JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.pooledWorkers() > s.gov.Cap() {
		return nil, fmt.Errorf("serve: job wants %d workers, budget is %d", spec.pooledWorkers(), s.gov.Cap())
	}
	if h := spec.Mesh.Hash; h != "" && !s.cfg.Store.Has(h) {
		return nil, fmt.Errorf("%w: %s", ErrNoArtifact, h)
	}
	return s.admit(&Job{ID: newJobID(), Spec: spec})
}

// SubmitResume admits a job under a caller-chosen ID, optionally
// warm-started from a checkpoint. It is the handoff entry point: a cluster
// coordinator re-dispatches an interrupted job to this node under its
// original ID, resuming from the last checkpoint it pulled off the dying
// node. An empty id falls back to a generated one; a nil ck starts from
// scratch.
func (s *Scheduler) SubmitResume(id string, spec JobSpec, ck *meshio.Checkpoint) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.pooledWorkers() > s.gov.Cap() {
		return nil, fmt.Errorf("serve: job wants %d workers, budget is %d", spec.pooledWorkers(), s.gov.Cap())
	}
	if id == "" {
		id = newJobID()
	}
	if h := spec.Mesh.Hash; h != "" && !s.cfg.Store.Has(h) {
		return nil, fmt.Errorf("%w: %s", ErrNoArtifact, h)
	}
	// Handoff jobs carry a pinned identity (and possibly mid-run state);
	// they neither attach to another run nor accept waiters.
	return s.admit(&Job{ID: id, Spec: spec, resume: ck, noCoalesce: true})
}

// admit enqueues a prepared job (fresh or recovered), or — when an
// identical coalescable job is already in flight — attaches it as a
// waiter on that flight instead.
func (s *Scheduler) admit(j *Job) (*Job, error) {
	ckey := ""
	if !j.noCoalesce {
		ckey = j.Spec.SpecHash()
	}
	s.mu.Lock()
	if s.draining || s.stopped {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	if ckey != "" {
		if f := s.flights[ckey]; f != nil && f.attachable() {
			// Attaching bypasses the queue bound on purpose: a thundering
			// herd of identical requests costs one slot however large.
			s.attachLocked(f, j)
			s.mu.Unlock()
			return j, nil
		}
	}
	if len(s.queue) >= s.cfg.QueueCap {
		s.mu.Unlock()
		s.met.Rejected.Add(1)
		return nil, ErrQueueFull
	}
	if old, dup := s.jobs[j.ID]; dup {
		// A finished (or drained) record under the same ID is superseded:
		// a coordinator re-dispatching a job it previously drained off this
		// node must be able to reuse the job's pinned identity. Only a live
		// duplicate — still queued or running — is a real conflict.
		select {
		case <-old.Done():
			s.removeStateFiles(old.ID)
			delete(s.jobs, old.ID)
		default:
			s.mu.Unlock()
			return nil, fmt.Errorf("serve: job id %q already in use", j.ID)
		}
	}
	j.state = StateQueued
	j.enqueued = time.Now()
	if j.Spec.DeadlineMS > 0 {
		j.deadline = j.enqueued.Add(time.Duration(j.Spec.DeadlineMS) * time.Millisecond)
	}
	j.done = make(chan struct{})
	ctx, cancel := context.WithCancelCause(context.Background())
	j.ctx, j.cancel = ctx, cancel
	s.seq++
	j.seq = s.seq
	heap.Push(&s.queue, j)
	s.jobs[j.ID] = j
	if ckey != "" {
		f := &flight{key: ckey, leader: j, parties: 1}
		j.flight = f
		s.flights[ckey] = f
	}
	s.met.Submitted.Add(1)
	s.cond.Signal()
	s.mu.Unlock()
	return j, nil
}

// Job looks a job up by ID.
func (s *Scheduler) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// Cancel requests cooperative cancellation of a queued or running job.
// On a coalesced flight, party counting applies: cancelling one caller
// — waiter or leader — detaches only that caller, and the underlying
// run is cancelled when its last interested party leaves.
func (s *Scheduler) Cancel(id string) (*Job, error) {
	j, err := s.Job(id)
	if err != nil {
		return nil, err
	}
	switch {
	case j.flight != nil:
		j.flight.leaderCancel()
	case j.coalescedWith != "":
		j.cancel(errClientStop) // the waiter's watcher detaches it
	default:
		j.cancel(errClientStop)
	}
	return j, nil
}

// runner is one dispatch loop: pop the highest-priority job, run it.
func (s *Scheduler) runner() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.stopped {
			s.cond.Wait()
		}
		if len(s.queue) == 0 && s.stopped {
			s.mu.Unlock()
			return
		}
		j := heap.Pop(&s.queue).(*Job)
		s.running++
		s.mu.Unlock()

		s.dispatch(j)

		s.mu.Lock()
		s.running--
		s.mu.Unlock()
	}
}

// dispatch runs one popped job through its terminal state.
func (s *Scheduler) dispatch(j *Job) {
	defer close(j.done)
	defer j.cancel(nil)

	popped := time.Now()
	s.met.QueueWait.Observe(popped.Sub(j.enqueued))
	tk := s.trc.jobTrack(j.ID)
	if s.trc != nil {
		tk.Span(s.trc.phQueued, j.enqueued, popped, int64(j.Spec.Priority))
	}

	// Cancelled or expired while still queued?
	if err := context.Cause(j.ctx); err != nil {
		s.finish(j, nil, err)
		return
	}
	if !j.deadline.IsZero() && time.Now().After(j.deadline) {
		s.finish(j, nil, context.DeadlineExceeded)
		return
	}

	j.mu.Lock()
	j.state = StateRunning
	if j.resume != nil {
		j.history = append(j.history[:0], j.resume.History...)
	}
	j.mu.Unlock()

	ctx := j.ctx
	if !j.deadline.IsZero() {
		dctx, dcancel := context.WithDeadline(ctx, j.deadline)
		defer dcancel()
		ctx = dctx
	}

	if j.Spec.Adapt != nil {
		// Adaptive jobs take their own path: the mesh mutates mid-run, so
		// they bypass the engine cache and carry a mesh in their resume
		// state instead of a plain checkpoint.
		s.runAdapt(j, ctx, tk)
		return
	}

	if h := j.Spec.Mesh.Hash; h != "" {
		// Pin the mesh artifact while the job runs: eviction pressure
		// must not drop the bytes an in-flight solve references.
		if err := s.cfg.Store.Pin(h); err != nil {
			s.finish(j, nil, fmt.Errorf("%w: %s", ErrNoArtifact, h))
			return
		}
		defer s.cfg.Store.Unpin(h)
	}
	ms, err := j.Spec.BuildMeshesFrom(s.cfg.Store)
	if err != nil {
		s.finish(j, nil, err)
		return
	}
	key := j.Spec.Key(ms)
	j.mu.Lock()
	j.key, j.keySet = key, true
	j.mu.Unlock()

	nw := j.Spec.pooledWorkers()
	govStart := time.Now()
	if err := s.gov.Acquire(ctx, nw); err != nil {
		if cause := context.Cause(ctx); cause != nil {
			err = cause
		}
		s.finish(j, nil, err)
		return
	}
	defer s.gov.Release(nw)
	if s.trc != nil {
		tk.Span(s.trc.phGovWait, govStart, time.Now(), int64(nw))
	}

	acqStart := time.Now()
	eng, err := s.cache.Acquire(ctx, key, func() (*solver.Steady, error) {
		j.mu.Lock()
		j.built = true
		j.mu.Unlock()
		return buildEngine(j.Spec, ms)
	})
	if err != nil {
		if cause := context.Cause(ctx); cause != nil {
			err = cause
		}
		s.finish(j, nil, err)
		return
	}
	defer s.cache.Release(eng)
	if s.trc != nil {
		acqEnd := time.Now()
		tk.Span(s.trc.phAcquire, acqStart, acqEnd, 0)
		j.mu.Lock()
		built := j.built
		j.mu.Unlock()
		if built {
			tk.Instant(s.trc.phMiss, acqEnd, 0)
		} else {
			tk.Instant(s.trc.phHit, acqEnd, 0)
		}
	}

	st := eng.Steady()
	st.Reset()
	if j.resume != nil {
		if err := st.Restore(j.resume); err != nil {
			s.finish(j, nil, fmt.Errorf("restoring checkpoint: %w", err))
			return
		}
	} else if sc := j.Spec.scenario(); sc != nil {
		// Scenario jobs start from the preset's initial state, not the
		// freestream Reset left behind. A resumed job skips this: the
		// checkpoint already holds the evolved state.
		if err := st.SetInitial(sc.InitialState(ms[0])); err != nil {
			s.finish(j, nil, fmt.Errorf("scenario initial state: %w", err))
			return
		}
	}
	opts := solver.Options{
		MaxCycles: j.Spec.Cycles,
		Tolerance: j.Spec.Tol,
		Context:   ctx,
		Progress: func(cycle int, norm float64) {
			j.mu.Lock()
			j.history = append(j.history, norm)
			j.mu.Unlock()
		},
	}
	if s.cfg.CheckpointEvery > 0 && s.cfg.StateDir != "" {
		// Periodic checkpoints make the job survivable without a graceful
		// drain: a SIGKILLed node resumes it on restart (the sidecar is
		// written up front), and a coordinator can pull the checkpoint file
		// while the job runs and hand it to another node.
		opts.CheckpointEvery = s.cfg.CheckpointEvery
		opts.CheckpointPath = s.ckptPath(j.ID)
		opts.Mach = j.Spec.Mach
		opts.AlphaDeg = j.Spec.AlphaDeg
		if err := s.writeSidecar(sidecar{ID: j.ID, Spec: j.Spec, Checkpoint: j.ID + ".ckpt"}); err != nil {
			s.cfg.Log.Printf("job %s: persisting run sidecar: %v", j.ID, err)
		}
	}
	// The solver goroutine carries pprof labels, so CPU and goroutine
	// profiles taken through the debug endpoints attribute samples to the
	// job and engine they served.
	runStart := time.Now()
	var res *solver.Result
	pprof.Do(ctx, pprof.Labels(
		"job", j.ID, "engine", j.Spec.Engine, "levels", strconv.Itoa(j.Spec.Levels),
	), func(ctx context.Context) {
		res, err = st.Run(opts)
	})
	runEnd := time.Now()
	s.met.RunTime.Observe(runEnd.Sub(runStart))
	if s.trc != nil {
		var cycles int64
		if res != nil {
			cycles = int64(res.Cycles)
		}
		tk.Span(s.trc.phRun, runStart, runEnd, cycles)
	}
	if err != nil {
		s.finish(j, nil, err)
		return
	}
	if res.Cancelled {
		cause := context.Cause(ctx)
		if errors.Is(cause, errDrainStop) {
			s.drainCheckpoint(j, st, res)
			return
		}
		s.finish(j, res, cause)
		return
	}
	if i, v, diverged := divergedAt(res.History); diverged {
		s.finish(j, res, fmt.Errorf("diverged: residual %g at cycle %d", v, i))
		return
	}
	if sc := j.Spec.scenario(); sc != nil {
		// Diagnose before the engine lease is released: the record needs
		// only the result's solution copy and the fine mesh, both stable,
		// but computing it here keeps the job's lifecycle phases honest.
		d := sc.Diagnose(ms[0], res.FineSolution, res.FinalNorm)
		j.mu.Lock()
		j.diag = &d
		j.mu.Unlock()
	}
	s.finish(j, res, nil)
}

// divergedAt scans a residual history for NaN/Inf.
func divergedAt(hist []float64) (int, float64, bool) {
	for i, v := range hist {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return i, v, true
		}
	}
	return 0, 0, false
}

// finish records a job's terminal state from its run outcome. It runs
// before dispatch's deferred close(j.done), so by the time waiters fan
// out the terminal state (and result hash) is in place and the flight
// is deregistered — a Submit racing with completion either attaches
// while the flight is live or starts a fresh run, never attaches to a
// finished one.
func (s *Scheduler) finish(j *Job, res *solver.Result, err error) {
	s.retireFlight(j)
	if errors.Is(err, errDrainStop) {
		// Drained before any cycle ran: persist the spec alone so the job
		// restarts from scratch after the server comes back.
		s.suspend(j, res)
		return
	}
	var resultHash string
	if err == nil && res != nil && len(res.FineSolution) > 0 {
		// Content-address the completed solution while the engine lease
		// still protects res.FineSolution from reuse. The hash doubles
		// as the job's ETag and lets peers fetch the field by reference.
		if enc, encErr := meshio.EncodeSolution(j.Spec.Mach, j.Spec.AlphaDeg, res.FineSolution); encErr == nil {
			if h, putErr := s.cfg.Store.Put(enc); putErr == nil {
				resultHash = h
			} else {
				s.cfg.Log.Printf("job %s: storing result artifact: %v", j.ID, putErr)
			}
		}
	}
	var state JobState
	var cycles int
	j.mu.Lock()
	j.result = res
	j.resultHash = resultHash
	switch {
	case err == nil:
		j.state = StateCompleted
		s.met.Completed.Add(1)
	case errors.Is(err, errClientStop), errors.Is(err, context.Canceled):
		j.state = StateCancelled
		s.met.Cancelled.Add(1)
	case errors.Is(err, context.DeadlineExceeded):
		j.state = StateExpired
		j.errMsg = "deadline exceeded"
		s.met.Expired.Add(1)
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
		s.met.Failed.Add(1)
	}
	state = j.state
	cycles = len(j.history)
	j.mu.Unlock()
	if s.trc != nil {
		s.trc.jobTrack(j.ID).Instant(s.trc.phDone, time.Now(), int64(cycles))
	}
	s.removeStateFiles(j.ID)
	s.cfg.Log.Printf("job %s: %s", j.ID, state)
}

// suspend marks a job drained with only its spec persisted (no cycles ran,
// so there is nothing to checkpoint).
func (s *Scheduler) suspend(j *Job, res *solver.Result) {
	if s.cfg.StateDir != "" {
		if err := s.writeSidecar(sidecar{ID: j.ID, Spec: j.Spec}); err != nil {
			s.cfg.Log.Printf("drain: persisting job %s: %v", j.ID, err)
		}
	}
	j.mu.Lock()
	j.state = StateDrained
	j.result = res
	j.mu.Unlock()
	s.met.Drained.Add(1)
	if s.trc != nil {
		s.trc.jobTrack(j.ID).Instant(s.trc.phDrain, time.Now(), 0)
	}
	s.cfg.Log.Printf("job %s: drained (not started)", j.ID)
}

// --- graceful drain & resume ---------------------------------------------

// sidecar is the restart record persisted per interrupted job.
type sidecar struct {
	ID         string  `json:"id"`
	Spec       JobSpec `json:"spec"`
	Checkpoint string  `json:"checkpoint,omitempty"` // file name within StateDir

	// Adaptive jobs additionally persist the current (refined) mesh and
	// the adaptation counters — a plain checkpoint cannot resume a run
	// whose mesh no longer matches the spec's.
	AdaptMesh string        `json:"adapt_mesh,omitempty"` // mesh file name within StateDir
	Adapt     *adaptSidecar `json:"adapt,omitempty"`
}

// adaptSidecar is the adaptation state carried alongside the checkpoint.
type adaptSidecar struct {
	EpochsDone   int     `json:"epochs_done"`
	Dt           float64 `json:"dt,omitempty"` // current global dt (0 on steady runs)
	StepsLeft    int     `json:"steps_left"`
	SinceEpoch   int     `json:"since_epoch"`
	CellsRefined int     `json:"cells_refined"`
}

func (s *Scheduler) sidecarPath(id string) string {
	return filepath.Join(s.cfg.StateDir, id+".job.json")
}
func (s *Scheduler) ckptPath(id string) string {
	return filepath.Join(s.cfg.StateDir, id+".ckpt")
}
func (s *Scheduler) ameshPath(id string) string {
	return filepath.Join(s.cfg.StateDir, id+".amesh")
}

func (s *Scheduler) removeStateFiles(id string) {
	if s.cfg.StateDir == "" {
		return
	}
	os.Remove(s.sidecarPath(id))
	os.Remove(s.ckptPath(id))
	os.Remove(s.ameshPath(id))
}

// drainCheckpoint persists an interrupted job so a restarted server can
// resume it: the partial solution as a CRC-trailered meshio checkpoint
// plus a JSON sidecar with the spec. The checkpointed solution is copied —
// the engine is released back to the cache and would otherwise mutate it.
func (s *Scheduler) drainCheckpoint(j *Job, st *solver.Steady, res *solver.Result) {
	s.retireFlight(j)
	if s.cfg.StateDir == "" {
		s.finish(j, res, errDrainStop)
		return
	}
	sc := sidecar{ID: j.ID, Spec: j.Spec}
	if res.Cycles > 0 {
		ck := &meshio.Checkpoint{
			Cycle:    res.Cycles,
			Mach:     j.Spec.Mach,
			AlphaDeg: j.Spec.AlphaDeg,
			CFL:      j.Spec.Params().CFL,
			History:  append([]float64(nil), res.History...),
			Sol:      append([]euler.State(nil), res.FineSolution...),
		}
		if err := meshio.SaveCheckpoint(s.ckptPath(j.ID), ck); err != nil {
			s.finish(j, res, fmt.Errorf("drain checkpoint: %w", err))
			return
		}
		sc.Checkpoint = j.ID + ".ckpt"
	}
	if err := s.writeSidecar(sc); err != nil {
		s.finish(j, res, fmt.Errorf("drain sidecar: %w", err))
		return
	}
	j.mu.Lock()
	j.state = StateDrained
	j.result = res
	j.mu.Unlock()
	s.met.Drained.Add(1)
	if s.trc != nil {
		s.trc.jobTrack(j.ID).Instant(s.trc.phDrain, time.Now(), int64(res.Cycles))
	}
	s.cfg.Log.Printf("job %s: drained at cycle %d", j.ID, res.Cycles)
}

func (s *Scheduler) writeSidecar(sc sidecar) error {
	b, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		return err
	}
	tmp := s.sidecarPath(sc.ID) + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, s.sidecarPath(sc.ID))
}

// Drain gracefully shuts the scheduler down: admission stops, queued jobs
// are persisted as restart sidecars, running jobs are cancelled
// cooperatively and checkpointed, and Drain returns when every runner has
// parked. After Drain the scheduler is stopped for good.
func (s *Scheduler) Drain() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.draining = true
	queued := make([]*Job, len(s.queue))
	copy(queued, s.queue)
	s.queue = s.queue[:0]
	inQueue := make(map[string]bool, len(queued))
	for _, j := range queued {
		inQueue[j.ID] = true
	}
	// Cancel every job a runner holds — including ones popped from the
	// queue but not yet marked running (their dispatch preamble sees the
	// drain cause and suspends them).
	var active []*Job
	for _, j := range s.jobs {
		if inQueue[j.ID] {
			continue
		}
		if st := j.State(); st == StateQueued || st == StateRunning {
			active = append(active, j)
		}
	}
	s.stopped = true
	s.cond.Broadcast()
	s.mu.Unlock()

	for _, j := range queued {
		s.retireFlight(j)
		if s.cfg.StateDir != "" {
			if err := s.writeSidecar(sidecar{ID: j.ID, Spec: j.Spec}); err != nil {
				s.cfg.Log.Printf("drain: persisting queued job %s: %v", j.ID, err)
			}
		}
		j.mu.Lock()
		j.state = StateDrained
		j.mu.Unlock()
		s.met.Drained.Add(1)
		if s.trc != nil {
			s.trc.jobTrack(j.ID).Instant(s.trc.phDrain, time.Now(), 0)
		}
		j.cancel(errDrainStop)
		close(j.done)
	}
	for _, j := range active {
		j.cancel(errDrainStop)
	}
	s.wg.Wait()
	s.cache.Close()
}

// Stop aborts without persisting: running jobs are cancelled as if by the
// client and queued jobs are discarded. For tests.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.draining, s.stopped = true, true
	queued := make([]*Job, len(s.queue))
	copy(queued, s.queue)
	s.queue = s.queue[:0]
	var all []*Job
	for _, j := range s.jobs {
		all = append(all, j)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, j := range queued {
		s.retireFlight(j)
		j.mu.Lock()
		j.state = StateCancelled
		j.mu.Unlock()
		j.cancel(errClientStop)
		close(j.done)
	}
	for _, j := range all {
		j.cancel(errClientStop)
	}
	s.wg.Wait()
	s.cache.Close()
}

// Recover scans StateDir for drain sidecars and re-admits each job under
// its original ID, restoring the checkpointed solution when one exists.
// Because the solver is deterministic, a resumed run's history and
// solution are bitwise identical to an uninterrupted one.
func (s *Scheduler) Recover() (int, error) {
	if s.cfg.StateDir == "" {
		return 0, nil
	}
	ents, err := os.ReadDir(s.cfg.StateDir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	n := 0
	for _, ent := range ents {
		if !strings.HasSuffix(ent.Name(), ".job.json") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(s.cfg.StateDir, ent.Name()))
		if err != nil {
			s.cfg.Log.Printf("recover: %s: %v", ent.Name(), err)
			continue
		}
		var sc sidecar
		if err := json.Unmarshal(b, &sc); err != nil {
			s.cfg.Log.Printf("recover: %s: %v", ent.Name(), err)
			continue
		}
		j := &Job{ID: sc.ID, Spec: sc.Spec, noCoalesce: true}
		if sc.Checkpoint != "" {
			ck, err := meshio.LoadCheckpoint(filepath.Join(s.cfg.StateDir, sc.Checkpoint))
			if err != nil {
				s.cfg.Log.Printf("recover: job %s checkpoint: %v (restarting from scratch)", sc.ID, err)
			} else {
				j.resume = ck
			}
		}
		if sc.AdaptMesh != "" && sc.Adapt != nil && j.resume != nil {
			// Reconstruct the mesh-carrying resume point of an adaptive job.
			// A load failure falls back to restarting the job from scratch.
			m, err := meshio.LoadMesh(filepath.Join(s.cfg.StateDir, sc.AdaptMesh))
			if err != nil {
				s.cfg.Log.Printf("recover: job %s adapted mesh: %v (restarting from scratch)", sc.ID, err)
				j.resume = nil
			} else {
				j.adaptResume = &adapt.Snapshot{
					Mesh:         m,
					W:            j.resume.Sol,
					History:      j.resume.History,
					Step:         j.resume.Cycle,
					EpochsDone:   sc.Adapt.EpochsDone,
					Dt:           sc.Adapt.Dt,
					StepsLeft:    sc.Adapt.StepsLeft,
					SinceEpoch:   sc.Adapt.SinceEpoch,
					CellsRefined: sc.Adapt.CellsRefined,
				}
				j.resume = nil
			}
		}
		if err := j.Spec.Validate(); err != nil {
			s.cfg.Log.Printf("recover: job %s: %v", sc.ID, err)
			s.removeStateFiles(sc.ID)
			continue
		}
		if _, err := s.admit(j); err != nil {
			s.cfg.Log.Printf("recover: job %s: %v", sc.ID, err)
			continue
		}
		s.met.Resumed.Add(1)
		n++
	}
	return n, nil
}
