package serve

import (
	"os"
	"path/filepath"
	"testing"
)

// Graceful drain checkpoints a running job; a fresh scheduler over the
// same state dir resumes it under its original ID, and — because the
// solver is deterministic — the stitched residual history is bitwise
// identical to an uninterrupted run of the same spec.
func TestDrainCheckpointAndResume(t *testing.T) {
	dir := t.TempDir()
	spec := chanSpec(6, 3, 2, 1, KindSM, 2, 600)

	// Reference: the same spec run to completion without interruption.
	ref := NewScheduler(Config{Runners: 1, WorkerBudget: 4})
	jr, err := ref.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, jr)
	refHist := jr.View().History
	ref.Stop()
	if len(refHist) != 600 {
		t.Fatalf("reference ran %d cycles, want 600", len(refHist))
	}

	// Interrupted run: drain mid-flight.
	s1 := NewScheduler(Config{Runners: 1, WorkerBudget: 4, StateDir: dir})
	j1, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitCycles(t, j1, 5)
	s1.Drain()
	if st := j1.State(); st != StateDrained {
		t.Fatalf("state after drain %s, want drained", st)
	}
	cut := j1.View().Cycles
	if cut < 5 || cut >= 600 {
		t.Fatalf("drained after %d cycles, want mid-flight", cut)
	}
	if _, err := os.Stat(filepath.Join(dir, j1.ID+".ckpt")); err != nil {
		t.Fatalf("drain checkpoint missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, j1.ID+".job.json")); err != nil {
		t.Fatalf("drain sidecar missing: %v", err)
	}
	if s1.Metrics().Drained.Load() != 1 {
		t.Fatalf("drained counter %d, want 1", s1.Metrics().Drained.Load())
	}
	// After drain, admission is closed.
	if _, err := s1.Submit(spec); err == nil {
		t.Fatal("submit after drain should fail")
	}

	// Restart: recover and run to completion.
	s2 := NewScheduler(Config{Runners: 1, WorkerBudget: 4, StateDir: dir})
	defer s2.Stop()
	n, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("recovered %d jobs, want 1", n)
	}
	j2, err := s2.Job(j1.ID)
	if err != nil {
		t.Fatalf("resumed job lost its ID: %v", err)
	}
	waitDone(t, j2)
	v := j2.View()
	if v.State != StateCompleted {
		t.Fatalf("resumed job state %s (err %q)", v.State, v.Error)
	}
	if len(v.History) != len(refHist) {
		t.Fatalf("resumed history %d cycles, reference %d", len(v.History), len(refHist))
	}
	for i := range refHist {
		if v.History[i] != refHist[i] {
			t.Fatalf("cycle %d: resumed %g, reference %g (resume not bitwise)", i, v.History[i], refHist[i])
		}
	}
	if s2.Metrics().Resumed.Load() != 1 {
		t.Fatalf("resumed counter %d, want 1", s2.Metrics().Resumed.Load())
	}
	// Completion cleans the state files up: a further restart finds nothing.
	if _, err := os.Stat(filepath.Join(dir, j1.ID+".job.json")); !os.IsNotExist(err) {
		t.Errorf("sidecar not removed after completion (err=%v)", err)
	}
	s3 := NewScheduler(Config{Runners: 1, WorkerBudget: 4, StateDir: dir})
	defer s3.Stop()
	if n, _ := s3.Recover(); n != 0 {
		t.Errorf("second recovery found %d jobs, want 0", n)
	}
}

// Jobs still queued at drain time are persisted spec-only and restart from
// scratch.
func TestDrainPersistsQueuedJobs(t *testing.T) {
	dir := t.TempDir()
	s1 := NewScheduler(Config{Runners: 1, WorkerBudget: 4, StateDir: dir})
	running, err := s1.Submit(chanSpec(6, 3, 2, 1, KindSingle, 0, 100000))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning)
	queued, err := s1.Submit(chanSpec(4, 2, 2, 2, KindSingle, 0, 8))
	if err != nil {
		t.Fatal(err)
	}
	s1.Drain()
	if st := queued.State(); st != StateDrained {
		t.Fatalf("queued job state %s after drain, want drained", st)
	}
	if _, err := os.Stat(filepath.Join(dir, queued.ID+".ckpt")); !os.IsNotExist(err) {
		t.Error("queued job should have no checkpoint")
	}

	s2 := NewScheduler(Config{Runners: 2, WorkerBudget: 4, StateDir: dir})
	defer s2.Stop()
	n, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("recovered %d jobs, want 2 (running + queued)", n)
	}
	j2, err := s2.Job(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2)
	if st := j2.State(); st != StateCompleted {
		t.Fatalf("restarted queued job state %s", st)
	}
	// Cancel the long recovered job rather than waiting it out.
	if _, err := s2.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	jr, _ := s2.Job(running.ID)
	waitDone(t, jr)
}
