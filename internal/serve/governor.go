package serve

import (
	"container/list"
	"context"
	"fmt"
	"sync"
)

// Governor is the global worker-budget semaphore: every job running on a
// pooled engine holds its worker count for the duration of the run, so the
// total number of actively-forking pooled workers across concurrent jobs
// never exceeds the budget. (Parked workers of idle cached engines cost
// nothing and are not charged.) Waiters are served FIFO, which prevents a
// stream of small requests from starving a large one.
type Governor struct {
	mu      sync.Mutex
	cap     int
	used    int
	peak    int
	waiters list.List // of *govWaiter
}

type govWaiter struct {
	n     int
	ready chan struct{}
}

// NewGovernor builds a governor with the given total worker budget.
func NewGovernor(budget int) *Governor {
	if budget < 1 {
		budget = 1
	}
	return &Governor{cap: budget}
}

// Cap returns the total budget.
func (g *Governor) Cap() int { return g.cap }

// InUse returns the workers currently held.
func (g *Governor) InUse() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.used
}

// Peak returns the high-water mark of held workers; by construction it can
// never exceed Cap, and tests assert that through the metrics endpoint.
func (g *Governor) Peak() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.peak
}

// Acquire blocks until n workers fit under the budget or ctx is done.
// n <= 0 acquires nothing; n > Cap can never be satisfied and errors
// immediately (callers reject such jobs at admission).
func (g *Governor) Acquire(ctx context.Context, n int) error {
	if n <= 0 {
		return nil
	}
	if n > g.cap {
		return fmt.Errorf("serve: job wants %d workers, budget is %d", n, g.cap)
	}
	g.mu.Lock()
	if g.waiters.Len() == 0 && g.used+n <= g.cap {
		g.used += n
		if g.used > g.peak {
			g.peak = g.used
		}
		g.mu.Unlock()
		return nil
	}
	w := &govWaiter{n: n, ready: make(chan struct{})}
	elem := g.waiters.PushBack(w)
	g.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		g.mu.Lock()
		select {
		case <-w.ready:
			// Granted concurrently with cancellation: give it back.
			g.release(n)
		default:
			g.waiters.Remove(elem)
		}
		g.mu.Unlock()
		return ctx.Err()
	}
}

// Release returns n workers to the budget and wakes eligible waiters.
func (g *Governor) Release(n int) {
	if n <= 0 {
		return
	}
	g.mu.Lock()
	g.release(n)
	g.mu.Unlock()
}

// release is Release with g.mu held.
func (g *Governor) release(n int) {
	g.used -= n
	if g.used < 0 {
		panic("serve: governor released more workers than acquired")
	}
	for e := g.waiters.Front(); e != nil; {
		w := e.Value.(*govWaiter)
		if g.used+w.n > g.cap {
			break // strict FIFO: never overtake the head waiter
		}
		next := e.Next()
		g.waiters.Remove(e)
		g.used += w.n
		if g.used > g.peak {
			g.peak = g.used
		}
		close(w.ready)
		e = next
	}
}
