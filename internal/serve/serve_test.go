package serve

import (
	"testing"
	"time"
)

// chanSpec builds a small bump-channel job spec used across the tests.
// Identical (nx,ny,nz,seed,mach,alpha,engine,workers) specs share a cached
// engine; varying any of them forces a distinct engine key.
func chanSpec(nx, ny, nz int, seed int64, engine string, workers, cycles int) JobSpec {
	return JobSpec{
		Mesh:    MeshSpec{NX: nx, NY: ny, NZ: nz, Seed: seed},
		Mach:    0.5,
		Engine:  engine,
		Workers: workers,
		Cycles:  cycles,
	}
}

// waitState polls until the job reaches one of the given states.
func waitState(t *testing.T, j *Job, want ...JobState) JobState {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := j.State()
		for _, w := range want {
			if st == w {
				return st
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s stuck in %s, want one of %v", j.ID, j.State(), want)
	return ""
}

// waitDone blocks on the job's terminal state with a timeout.
func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not finish (state %s)", j.ID, j.State())
	}
}

// waitCycles polls until the job has recorded at least n residual norms.
func waitCycles(t *testing.T, j *Job, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if j.View().Cycles >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s reached only %d cycles, want >= %d", j.ID, j.View().Cycles, n)
}
