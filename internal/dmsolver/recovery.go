package dmsolver

import (
	"errors"
	"fmt"
	"io"
	"math"

	"eul3d/internal/euler"
	"eul3d/internal/meshio"
	"eul3d/internal/simnet"
	"eul3d/internal/trace"
)

// This file is the recovery orchestrator: a driver loop around the
// distributed cycle that gives the solver the resilience machinery of a
// real runtime. Three mechanisms compose:
//
//   - periodic checkpoints (in memory, optionally mirrored to disk as
//     atomic CRC-trailered files) snapshot the fine-grid solution, cycle
//     count, residual history and CFL — the only state that persists across
//     cycles (coarse multigrid levels are rebuilt every cycle from the fine
//     grid);
//   - on a whole-node crash (simnet.ErrNodeDown bubbling out of a cycle)
//     the fabric is repaired, every partition is restored from the last
//     checkpoint, and the run resumes at the checkpointed cycle. Because
//     the solver is deterministic, the replayed cycles — and therefore the
//     final solution and residual history — are bitwise identical to a
//     fault-free run;
//   - a divergence watchdog catches NaN/Inf or blown-up residuals, halves
//     the CFL and retries from the last checkpoint, bounded by
//     MaxCFLBackoffs.
//
// Transient message faults (drops, corruption, duplication, delays,
// reordering) never reach this layer: the PARTI executors heal them with
// the bounded retry/re-request protocol in parti.recvHealing.

// RunOptions controls a fault-tolerant distributed steady-state run.
type RunOptions struct {
	MaxCycles int     // hard iteration limit (total, including resumed cycles)
	Tolerance float64 // stop when residual/initial falls below this (0 = run all cycles)
	LogEvery  int     // progress line period (0 = silent)
	Log       io.Writer

	// Concurrent selects the MIMD mode (one goroutine per simulated
	// processor) instead of the sequential orchestration. Both produce
	// bitwise identical results.
	Concurrent bool

	// CheckpointEvery > 0 snapshots the run every that many cycles (an
	// initial cycle-0 checkpoint is always taken so a crash before the
	// first interval remains recoverable). CheckpointPath, when set,
	// additionally mirrors every snapshot to disk atomically.
	CheckpointEvery int
	CheckpointPath  string
	Mach, AlphaDeg  float64 // metadata recorded in disk checkpoints

	// Resume warm-starts the run from a previously saved checkpoint.
	Resume *meshio.Checkpoint

	// IncidentPath, when set and a tracer is attached (SetTrace), dumps
	// the flight recorder there (Chrome trace-event JSON) at every
	// incident — node crash, CFL backoff, or unrecoverable divergence —
	// so the rings hold the events leading up to it. Later incidents
	// overwrite earlier dumps: the file always describes the most recent.
	IncidentPath string

	// MaxRecoveries bounds crash recoveries (default 3 when zero; negative
	// disables recovery entirely).
	MaxRecoveries int
	// MaxCFLBackoffs bounds divergence-watchdog retries (default 2 when
	// zero; negative disables the watchdog).
	MaxCFLBackoffs int
	// BlowupFactor: a residual above BlowupFactor times the initial
	// residual counts as divergence (default 1e4 when zero).
	BlowupFactor float64
}

// RunResult summarizes a fault-tolerant distributed run.
type RunResult struct {
	Cycles       int
	History      []float64
	InitialNorm  float64
	FinalNorm    float64
	Converged    bool
	Ordersof10   float64
	Recoveries   int // crash recoveries performed
	CFLBackoffs  int // divergence-watchdog retries performed
	FineSolution []euler.State
}

// snapshot is the in-memory checkpoint the orchestrator rewinds to.
type snapshot struct {
	cycle   int
	cfl     float64
	history []float64
	sol     []euler.State
}

func (s *Solver) takeSnapshot(cycle int, history []float64) snapshot {
	return snapshot{
		cycle:   cycle,
		cfl:     s.P.CFL,
		history: append([]float64(nil), history...),
		sol:     s.GatherSolution(),
	}
}

// restoreSnapshot rewinds the solver to a snapshot: every partition's
// owned and ghost values are rebuilt from the global solution, and the
// transport layer is reset so the replay starts from a clean
// bulk-synchronous slate.
func (s *Solver) restoreSnapshot(sn snapshot) {
	s.Fabric.Repair()
	if err := s.SetFineSolution(sn.sol); err != nil {
		panic("dmsolver: snapshot does not match solver: " + err.Error()) // impossible: snapshots come from this solver
	}
}

// SetFineSolution overwrites the fine-grid solution from a global state
// array, filling owned ranges and ghost slots without communication — the
// restore half of checkpoint/restart.
func (s *Solver) SetFineSolution(sol []euler.State) error {
	lev := s.Levels[0]
	if len(sol) != lev.M.NV() {
		return fmt.Errorf("dmsolver: solution has %d states for %d vertices", len(sol), lev.M.NV())
	}
	for p := 0; p < s.NProc; p++ {
		for li, g := range lev.Dist.L2G[p] {
			lev.W[p][li] = sol[g]
		}
		base := lev.Dist.Count(p)
		for si, g := range lev.GS.Ghosts(p) {
			lev.W[p][base+si] = sol[g]
		}
	}
	return nil
}

// Run drives the distributed solve to convergence or the cycle limit,
// surviving seeded interconnect faults and node crashes when checkpointing
// is enabled. Under any fault schedule the solver heals from, the final
// solution and residual history are bitwise identical to the fault-free
// run.
func (s *Solver) Run(opt RunOptions) (*RunResult, error) {
	if opt.MaxCycles <= 0 {
		return nil, fmt.Errorf("dmsolver: MaxCycles must be positive")
	}
	maxRecoveries := opt.MaxRecoveries
	if maxRecoveries == 0 {
		maxRecoveries = 3
	}
	maxBackoffs := opt.MaxCFLBackoffs
	if maxBackoffs == 0 {
		maxBackoffs = 2
	}
	blowup := opt.BlowupFactor
	if blowup == 0 {
		blowup = 1e4
	}

	res := &RunResult{}
	var history []float64
	c := 0
	if opt.Resume != nil {
		if len(opt.Resume.History) != opt.Resume.Cycle {
			return nil, fmt.Errorf("dmsolver: checkpoint at cycle %d has %d history entries", opt.Resume.Cycle, len(opt.Resume.History))
		}
		if err := s.SetFineSolution(opt.Resume.Sol); err != nil {
			return nil, err
		}
		if opt.Resume.CFL > 0 {
			s.P.CFL = opt.Resume.CFL
		}
		c = opt.Resume.Cycle
		history = append(history, opt.Resume.History...)
	}
	// Always hold a rewind point, even before the first periodic interval.
	ckpt := s.takeSnapshot(c, history)

	cycleOnce := func() (float64, error) {
		if opt.Concurrent {
			return s.CycleConcurrent()
		}
		return s.Cycle()
	}

	for c < opt.MaxCycles {
		s.Fabric.BeginCycle(c)
		norm, err := cycleOnce()
		if err != nil {
			if errors.Is(err, simnet.ErrNodeDown) && maxRecoveries > 0 && res.Recoveries < maxRecoveries {
				res.Recoveries++
				s.markIncident(func(st *solverTrace) trace.PhaseID { return st.phCrash }, int64(c))
				if opt.Log != nil {
					fmt.Fprintf(opt.Log, "cycle %5d  node crash (%v); restoring checkpoint at cycle %d (recovery %d/%d)\n",
						c, err, ckpt.cycle, res.Recoveries, maxRecoveries)
				}
				s.restoreSnapshot(ckpt)
				s.markIncident(func(st *solverTrace) trace.PhaseID { return st.phRecov }, int64(ckpt.cycle))
				s.dumpIncident(&opt)
				s.P.CFL = ckpt.cfl
				history = append(history[:0], ckpt.history...)
				c = ckpt.cycle
				continue
			}
			return nil, fmt.Errorf("dmsolver: cycle %d: %w", c, err)
		}
		if diverged(norm, history, blowup) {
			s.markIncident(func(st *solverTrace) trace.PhaseID { return st.phBack }, int64(c))
			if maxBackoffs > 0 && res.CFLBackoffs < maxBackoffs {
				res.CFLBackoffs++
				newCFL := s.P.CFL * 0.5
				if opt.Log != nil {
					fmt.Fprintf(opt.Log, "cycle %5d  residual %.3e diverging; CFL %.3g -> %.3g, retrying from cycle %d (backoff %d/%d)\n",
						c, norm, s.P.CFL, newCFL, ckpt.cycle, res.CFLBackoffs, maxBackoffs)
				}
				s.restoreSnapshot(ckpt)
				s.P.CFL = newCFL // keep the reduced CFL, not the checkpointed one
				history = append(history[:0], ckpt.history...)
				c = ckpt.cycle
				s.dumpIncident(&opt)
				continue
			}
			s.dumpIncident(&opt)
			return nil, fmt.Errorf("dmsolver: cycle %d: residual %g diverged (initial %g)", c, norm, initialOf(history, norm))
		}
		history = append(history, norm)
		c++
		if opt.LogEvery > 0 && opt.Log != nil && (c-1)%opt.LogEvery == 0 {
			fmt.Fprintf(opt.Log, "cycle %5d  residual %.3e\n", c-1, norm)
		}
		if opt.CheckpointEvery > 0 && c%opt.CheckpointEvery == 0 {
			ckpt = s.takeSnapshot(c, history)
			s.markIncident(func(st *solverTrace) trace.PhaseID { return st.phCkpt }, int64(c))
			if opt.CheckpointPath != "" {
				ck := &meshio.Checkpoint{
					Cycle: ckpt.cycle, Mach: opt.Mach, AlphaDeg: opt.AlphaDeg, CFL: ckpt.cfl,
					History: ckpt.history, Sol: ckpt.sol,
				}
				if err := meshio.SaveCheckpoint(opt.CheckpointPath, ck); err != nil {
					return nil, fmt.Errorf("dmsolver: checkpoint at cycle %d: %w", c, err)
				}
			}
		}
		if opt.Tolerance > 0 && history[0] > 0 && norm/history[0] < opt.Tolerance {
			res.Converged = true
			break
		}
	}

	res.Cycles = c
	res.History = history
	if len(history) > 0 {
		res.InitialNorm = history[0]
		res.FinalNorm = history[len(history)-1]
	}
	if res.InitialNorm > 0 && res.FinalNorm > 0 {
		res.Ordersof10 = -math.Log10(res.FinalNorm / res.InitialNorm)
	}
	res.FineSolution = s.GatherSolution()
	return res, nil
}

// dumpIncident writes the flight recorder to opt.IncidentPath, capturing
// the ring contents — the events leading up to the incident that was just
// marked. Dump failures are reported on the log but never fail the run:
// post-mortem capture must not take the solve down with it.
func (s *Solver) dumpIncident(opt *RunOptions) {
	if s.st == nil || opt.IncidentPath == "" {
		return
	}
	if err := s.st.tr.WriteChromeFile(opt.IncidentPath); err != nil {
		if opt.Log != nil {
			fmt.Fprintf(opt.Log, "incident trace dump: %v\n", err)
		}
		return
	}
	if opt.Log != nil {
		fmt.Fprintf(opt.Log, "incident trace dumped to %s\n", opt.IncidentPath)
	}
}

// diverged is the watchdog predicate: NaN/Inf, or a residual more than
// factor times the initial one.
func diverged(norm float64, history []float64, factor float64) bool {
	if math.IsNaN(norm) || math.IsInf(norm, 0) {
		return true
	}
	if len(history) == 0 {
		return false
	}
	return history[0] > 0 && norm > factor*history[0]
}

func initialOf(history []float64, fallback float64) float64 {
	if len(history) > 0 {
		return history[0]
	}
	return fallback
}
