package dmsolver

import (
	"fmt"
	"time"

	"eul3d/internal/trace"
)

// Flight-recorder instrumentation of the distributed solver, giving the
// paper-style computation-vs-communication breakdown per simulated
// processor. The hooks sit at the communication choke points, so the
// compute spans need no per-kernel wiring: on every track the time between
// two exchanges *is* compute, and the recorder closes that gap with a
// "compute" span when the next exchange opens.
//
//   - sequential orchestration: every whole-schedule collective becomes a
//     span on the "comm" track ("gather-states", "scatter-states", ...,
//     arg = level);
//   - MIMD mode: every per-processor exchange half becomes a span on that
//     processor's track ("send-gather"/"recv-gather"/"send-scatter"/
//     "recv-scatter") with the bulk-synchronous "barrier" waits between
//     the halves — the per-node timeline of the Delta port;
//   - schedule and transfer-operator builds are timed during construction
//     and replayed onto the "build" track when a tracer is attached (the
//     paper's inspector-cost accounting);
//   - the recovery orchestrator (recovery.go) marks crashes, checkpoint
//     restores and CFL backoffs as instants on the "events" track.

// exchange kinds, indexing solverTrace.exPh.
const (
	exGatherState = iota
	exScatterState
	exGatherFloat
	exScatterFloat
	nExKinds
)

var seqExNames = [nExKinds]string{"gather-states", "scatter-states", "gather-floats", "scatter-floats"}

// buildSpan is one timed construction step, recorded before any tracer
// exists and replayed by SetTrace.
type buildSpan struct {
	name     string
	level    int
	from, to time.Time
}

// solverTrace is the solver's attached recorder state; nil disables every
// hook.
type solverTrace struct {
	tr    *trace.Tracer
	comm  *trace.Track   // sequential collectives + compute gaps
	procs []*trace.Track // MIMD: one per simulated processor
	orch  *trace.Track   // recovery/checkpoint instants

	exPh     [nExKinds]trace.PhaseID // sequential collective spans
	sendPh   [nExKinds]trace.PhaseID // MIMD send halves
	recvPh   [nExKinds]trace.PhaseID // MIMD receive halves
	phBar    trace.PhaseID           // MIMD bulk-synchronous wait
	phComp   trace.PhaseID           // compute gap between exchanges
	phCrash  trace.PhaseID           // node crash detected (arg = cycle)
	phRecov  trace.PhaseID           // checkpoint restore (arg = rewound-to cycle)
	phBack   trace.PhaseID           // CFL backoff (arg = cycle)
	phCkpt   trace.PhaseID           // checkpoint taken (arg = cycle)
	lastSeq  time.Time               // end of the previous sequential collective
	lastProc []time.Time             // per proc: end of its previous exchange (owned by that proc's goroutine)
}

var mimdExNames = [2][nExKinds]string{
	{"send-gather", "send-scatter", "send-gather", "send-scatter"},
	{"recv-gather", "recv-scatter", "recv-gather", "recv-scatter"},
}

// SetTrace attaches a flight-recorder tracer: the "comm" track carries the
// sequential collectives, "p<i>" tracks the per-processor MIMD exchange
// halves and barrier waits, "build" the replayed schedule-construction
// spans and "events" the recovery instants. Compute time appears as the
// gap-filling "compute" spans. Call before Run/Cycle; a nil tracer leaves
// tracing disabled.
func (s *Solver) SetTrace(tr *trace.Tracer) {
	if tr == nil {
		return
	}
	st := &solverTrace{
		tr:       tr,
		comm:     tr.Track("comm"),
		orch:     tr.Track("events"),
		procs:    make([]*trace.Track, s.NProc),
		lastProc: make([]time.Time, s.NProc),
	}
	for p := range st.procs {
		st.procs[p] = tr.Track(fmt.Sprintf("p%d", p))
	}
	for k, n := range seqExNames {
		st.exPh[k] = tr.Phase(n)
		st.sendPh[k] = tr.Phase(mimdExNames[0][k])
		st.recvPh[k] = tr.Phase(mimdExNames[1][k])
	}
	st.phBar = tr.Phase("barrier")
	st.phComp = tr.Phase("compute")
	st.phCrash = tr.Phase("node-crash")
	st.phRecov = tr.Phase("recovery")
	st.phBack = tr.Phase("cfl-backoff")
	st.phCkpt = tr.Phase("checkpoint")

	// Replay the construction timings recorded by build(). When the tracer
	// was created after the solver these land at negative timestamps —
	// before the origin — which the viewers accept.
	bt := tr.Track("build")
	for _, b := range s.builds {
		bt.Span(tr.Phase(b.name), b.from, b.to, int64(b.level))
	}
	s.st = st
}

// seqEx brackets one sequential whole-schedule collective: a compute span
// closing the gap since the previous collective, then the collective span
// itself.
func (s *Solver) seqEx(kind, level int, fn func() error) error {
	st := s.st
	if st == nil {
		return fn()
	}
	t0 := time.Now()
	if !st.lastSeq.IsZero() {
		st.comm.Span(st.phComp, st.lastSeq, t0, int64(level))
	}
	err := fn()
	t1 := time.Now()
	st.comm.Span(st.exPh[kind], t0, t1, int64(level))
	st.lastSeq = t1
	return err
}

// markIncident records a recovery-orchestrator instant on the events track.
func (s *Solver) markIncident(ph func(*solverTrace) trace.PhaseID, arg int64) {
	if s.st == nil {
		return
	}
	s.st.orch.Instant(ph(s.st), time.Now(), arg)
}

// recordBuild appends one construction timing for later replay.
func (s *Solver) recordBuild(name string, level int, from time.Time) {
	s.builds = append(s.builds, buildSpan{name: name, level: level, from: from, to: time.Now()})
}
