// Package dmsolver is the distributed-memory implementation of EUL3D,
// mirroring the paper's Intel Touchstone Delta port. The mesh (and each
// coarser mesh of a multigrid sequence) is partitioned across P simulated
// processors; every compute kernel of the sequential solver is re-expressed
// as a loop over partition-local edges with PARTI gather/scatter executors
// at exactly the points where off-processor data is produced or consumed:
//
//   - flow variables are gathered into ghost slots once per Runge-Kutta
//     stage (the paper: "We can obtain all of the off-processor flow
//     variables needed at the beginning of the step");
//   - edge-loop accumulations (convective and dissipative residuals,
//     Laplacians, sensor sums, spectral radii, smoothing sums) land in
//     ghost slots and are scatter-added back to their owners;
//   - multigrid transfers use incremental schedules on top of the flow
//     variable schedule, fetching only addresses not already ghosted.
//
// The answers are identical (to roundoff) to the sequential solver; tests
// assert this.
package dmsolver

import (
	"fmt"
	"time"

	"eul3d/internal/euler"
	"eul3d/internal/geom"
	"eul3d/internal/mesh"
	"eul3d/internal/multigrid"
	"eul3d/internal/parti"
	"eul3d/internal/simnet"
)

// localBFace is a boundary face with partition-local vertex indices.
type localBFace struct {
	V      [3]int32
	Normal geom.Vec3
	Kind   mesh.BCKind
}

// CommCounters tallies schedule executions per cycle class so the Delta
// machine model can convert communication volume into time.
type CommCounters struct {
	GatherState  int64 // state-array gathers executed
	ScatterState int64 // state-array scatter-adds executed
	GatherFloat  int64
	ScatterFloat int64
}

// Level holds the distributed state of one grid level.
type Level struct {
	Index int        // position in Solver.Levels (0 = finest)
	M     *mesh.Mesh // the global mesh (preprocessing data; not touched in loops)
	Part  []int32    // vertex -> processor
	Dist  *parti.Dist
	GS    *parti.GhostSpace

	// SchedW fills ghosts of every vertex referenced by local edge or
	// boundary-face loops.
	SchedW *parti.Schedule
	// SchedRestrict (on this level, for the coarser level's benefit) and
	// SchedCoarse are built by the multigrid constructor; nil otherwise.
	SchedFine   *parti.Schedule // extra fine-level ghosts for restriction (lives on the finer level)
	SchedCoarse *parti.Schedule // coarse-level ghosts for prolongation/residual scatter

	// Per-processor topology, local indices into [owned | ghost] arrays.
	Edges  [][][2]int32
	ENorm  [][]geom.Vec3
	BFaces [][]localBFace
	Vol    [][]float64 // owned only
	Deg    [][]float64 // true global degree, owned only

	// Per-processor solution and scratch arrays, sized TotalSize(p).
	W, W0, Conv, Diss, Res, Lapl, Smooth, RHS, Forcing, WSaved, Corr [][]euler.State
	Pres, Num, Den, Lam, Dt                                          [][]float64

	// Multigrid transfer operators localized per processor: for each
	// owned target vertex, 4 local source addresses + weights.
	RestrictAddr [][][4]int32 // coarse-owned vertex -> fine-local addresses (on the same proc)
	RestrictWt   [][][4]float64
	ProlongAddr  [][][4]int32 // fine-owned vertex -> coarse-local addresses
	ProlongWt    [][][4]float64
}

// Solver is the distributed-memory flow solver (single grid when it has one
// level, FAS multigrid otherwise).
type Solver struct {
	P      euler.Params
	NProc  int
	Gamma  int
	Fabric *simnet.Fabric
	Levels []*Level
	Comm   CommCounters

	// Flight recorder (trace.go): nil when tracing is disabled. builds
	// keeps the construction timings for replay into a later-attached
	// tracer.
	st     *solverTrace
	builds []buildSpan
}

// NewSingle builds a distributed single-grid solver over m with the given
// vertex partition.
func NewSingle(m *mesh.Mesh, part []int32, nproc int, p euler.Params) (*Solver, error) {
	return build([]*mesh.Mesh{m}, [][]int32{part}, nproc, p, 1)
}

// NewMultigrid builds a distributed FAS multigrid solver. parts[0] is the
// fine-grid partition; coarser levels, if their entry is nil, inherit the
// partition through the transfer operators (each coarse vertex joins the
// processor owning the dominant fine vertex of its containing tetrahedron),
// which keeps inter-grid transfers mostly local.
func NewMultigrid(meshes []*mesh.Mesh, parts [][]int32, nproc int, p euler.Params, gamma int) (*Solver, error) {
	return build(meshes, parts, nproc, p, gamma)
}

func build(meshes []*mesh.Mesh, parts [][]int32, nproc int, p euler.Params, gamma int) (*Solver, error) {
	if len(meshes) == 0 {
		return nil, fmt.Errorf("dmsolver: no meshes")
	}
	if len(parts) != len(meshes) {
		return nil, fmt.Errorf("dmsolver: %d meshes but %d partitions", len(meshes), len(parts))
	}
	if nproc < 1 {
		return nil, fmt.Errorf("dmsolver: nproc must be >= 1")
	}
	s := &Solver{P: p, NProc: nproc, Gamma: gamma, Fabric: simnet.New(nproc)}

	// Sequential preprocessing: transfer operators between levels.
	var restrictOps, prolongOps []*multigrid.TransferOp // index l: between level l-1 (fine) and l (coarse)
	for l := 1; l < len(meshes); l++ {
		bt := time.Now()
		r, err := multigrid.BuildTransfer(meshes[l], meshes[l-1])
		if err != nil {
			return nil, fmt.Errorf("dmsolver: restrict %d: %w", l, err)
		}
		pr, err := multigrid.BuildTransfer(meshes[l-1], meshes[l])
		if err != nil {
			return nil, fmt.Errorf("dmsolver: prolong %d: %w", l, err)
		}
		restrictOps = append(restrictOps, r)
		prolongOps = append(prolongOps, pr)
		s.recordBuild("transfer-build", l, bt)
	}

	for l, m := range meshes {
		part := parts[l]
		if part == nil {
			if l == 0 {
				return nil, fmt.Errorf("dmsolver: fine-grid partition is required")
			}
			// Inherit: coarse vertex joins the processor of the dominant
			// fine interpolation address.
			op := restrictOps[l-1]
			part = make([]int32, m.NV())
			for v := range part {
				best := 0
				for k := 1; k < 4; k++ {
					if op.Wt[v][k] > op.Wt[v][best] {
						best = k
					}
				}
				part[v] = parts[l-1][op.Addr[v][best]]
			}
			parts[l] = part
		}
		if len(part) != m.NV() {
			return nil, fmt.Errorf("dmsolver: level %d partition has %d entries for %d vertices", l, len(part), m.NV())
		}
		bt := time.Now()
		lev, err := buildLevel(m, part, nproc)
		if err != nil {
			return nil, fmt.Errorf("dmsolver: level %d: %w", l, err)
		}
		s.recordBuild("schedule-build", l, bt)
		lev.Index = l
		s.Levels = append(s.Levels, lev)
	}

	// Localize the multigrid transfer operators and build their
	// (incremental) schedules.
	for l := 1; l < len(s.Levels); l++ {
		bt := time.Now()
		fine, coarse := s.Levels[l-1], s.Levels[l]
		rop, pop := restrictOps[l-1], prolongOps[l-1]

		// Restriction: coarse-owned vertices reference fine globals.
		fineRefs := make([][]int32, nproc)
		for p := 0; p < nproc; p++ {
			for _, g := range coarse.Dist.L2G[p] {
				fineRefs[p] = append(fineRefs[p], rop.Addr[g][:]...)
			}
		}
		coarse.SchedFine, _ = parti.BuildIncremental(fine.GS, fineRefs)

		// Prolongation / residual scatter: fine-owned vertices reference
		// coarse globals.
		coarseRefs := make([][]int32, nproc)
		for p := 0; p < nproc; p++ {
			for _, g := range fine.Dist.L2G[p] {
				coarseRefs[p] = append(coarseRefs[p], pop.Addr[g][:]...)
			}
		}
		coarse.SchedCoarse, _ = parti.BuildIncremental(coarse.GS, coarseRefs)

		// Localized operator tables (must be built after all ghost slots
		// are allocated; Localize on an existing ghost is a lookup).
		coarse.RestrictAddr = make([][][4]int32, nproc)
		coarse.RestrictWt = make([][][4]float64, nproc)
		coarse.ProlongAddr = make([][][4]int32, nproc)
		coarse.ProlongWt = make([][][4]float64, nproc)
		for p := 0; p < nproc; p++ {
			for _, g := range coarse.Dist.L2G[p] {
				var a [4]int32
				for k := 0; k < 4; k++ {
					a[k] = fine.GS.Localize(p, rop.Addr[g][k])
				}
				coarse.RestrictAddr[p] = append(coarse.RestrictAddr[p], a)
				coarse.RestrictWt[p] = append(coarse.RestrictWt[p], rop.Wt[g])
			}
			for _, g := range fine.Dist.L2G[p] {
				var a [4]int32
				for k := 0; k < 4; k++ {
					a[k] = coarse.GS.Localize(p, pop.Addr[g][k])
				}
				coarse.ProlongAddr[p] = append(coarse.ProlongAddr[p], a)
				coarse.ProlongWt[p] = append(coarse.ProlongWt[p], pop.Wt[g])
			}
		}
		s.recordBuild("incremental-build", l, bt)
	}

	// Allocate solution arrays now that every ghost slot exists.
	for _, lev := range s.Levels {
		lev.alloc(nproc)
	}
	s.InitUniform()
	return s, nil
}

// buildLevel partitions one mesh's topology across processors.
func buildLevel(m *mesh.Mesh, part []int32, nproc int) (*Level, error) {
	dist, err := parti.NewDist(part, nproc)
	if err != nil {
		return nil, err
	}
	// Processors may own no vertices of a level: the paper's coarsest grid
	// had far fewer points than the Delta had nodes ("smaller data sets
	// spread over an equally large number of processors"). Such processors
	// simply idle through that level's loops.
	lev := &Level{M: m, Part: part, Dist: dist, GS: parti.NewGhostSpace(dist)}

	// Inspector: collect each processor's references (edge endpoints and
	// boundary-face vertices of the loops assigned to it).
	refs := make([][]int32, nproc)
	for _, e := range m.Edges {
		p := part[e[0]] // each edge is computed by the owner of its first endpoint
		refs[p] = append(refs[p], e[0], e[1])
	}
	for i := range m.BFaces {
		f := &m.BFaces[i]
		p := part[f.V[0]]
		refs[p] = append(refs[p], f.V[0], f.V[1], f.V[2])
	}
	lev.SchedW = parti.BuildSchedule(lev.GS, refs)

	// Executor-side topology with localized addresses.
	lev.Edges = make([][][2]int32, nproc)
	lev.ENorm = make([][]geom.Vec3, nproc)
	lev.BFaces = make([][]localBFace, nproc)
	for ei, e := range m.Edges {
		p := int(part[e[0]])
		lev.Edges[p] = append(lev.Edges[p], [2]int32{
			lev.GS.Localize(p, e[0]),
			lev.GS.Localize(p, e[1]),
		})
		lev.ENorm[p] = append(lev.ENorm[p], m.EdgeNorm[ei])
	}
	for i := range m.BFaces {
		f := &m.BFaces[i]
		p := int(part[f.V[0]])
		lev.BFaces[p] = append(lev.BFaces[p], localBFace{
			V: [3]int32{
				lev.GS.Localize(p, f.V[0]),
				lev.GS.Localize(p, f.V[1]),
				lev.GS.Localize(p, f.V[2]),
			},
			Normal: f.Normal,
			Kind:   f.Kind,
		})
	}

	// Owned dual volumes and true global degrees.
	lev.Vol = make([][]float64, nproc)
	lev.Deg = make([][]float64, nproc)
	for p := 0; p < nproc; p++ {
		lev.Vol[p] = make([]float64, dist.Count(p))
		lev.Deg[p] = make([]float64, dist.Count(p))
		for li, g := range dist.L2G[p] {
			lev.Vol[p][li] = m.Vol[g]
		}
	}
	deg := make([]int32, m.NV())
	for _, e := range m.Edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	for p := 0; p < nproc; p++ {
		for li, g := range dist.L2G[p] {
			lev.Deg[p][li] = float64(deg[g])
		}
	}
	return lev, nil
}

// alloc sizes the per-processor solution arrays to owned+ghost.
func (lev *Level) alloc(nproc int) {
	mk := func() [][]euler.State {
		a := make([][]euler.State, nproc)
		for p := 0; p < nproc; p++ {
			a[p] = make([]euler.State, lev.GS.TotalSize(p))
		}
		return a
	}
	mkf := func() [][]float64 {
		a := make([][]float64, nproc)
		for p := 0; p < nproc; p++ {
			a[p] = make([]float64, lev.GS.TotalSize(p))
		}
		return a
	}
	lev.W, lev.W0, lev.Conv, lev.Diss = mk(), mk(), mk(), mk()
	lev.Res, lev.Lapl, lev.Smooth, lev.RHS = mk(), mk(), mk(), mk()
	lev.Forcing, lev.WSaved, lev.Corr = mk(), mk(), mk()
	lev.Pres, lev.Num, lev.Den, lev.Lam, lev.Dt = mkf(), mkf(), mkf(), mkf(), mkf()
}

// InitUniform sets every level to the freestream state (owned and ghost).
func (s *Solver) InitUniform() {
	for _, lev := range s.Levels {
		for p := range lev.W {
			for i := range lev.W[p] {
				lev.W[p][i] = s.P.Freestream
			}
		}
	}
}

// GatherSolution reassembles the global fine-grid solution from the owned
// ranges (for output and verification).
func (s *Solver) GatherSolution() []euler.State {
	lev := s.Levels[0]
	out := make([]euler.State, lev.M.NV())
	for p := 0; p < s.NProc; p++ {
		for li, g := range lev.Dist.L2G[p] {
			out[g] = lev.W[p][li]
		}
	}
	return out
}
