package dmsolver

import (
	"math"
	"testing"
	"time"

	"eul3d/internal/euler"
	"eul3d/internal/graph"
	"eul3d/internal/mesh"
	"eul3d/internal/meshgen"
	"eul3d/internal/multigrid"
	"eul3d/internal/partition"
)

func channelAndPartition(t *testing.T, nx, ny, nz, nproc int) (*mesh.Mesh, []int32) {
	t.Helper()
	m, err := meshgen.Channel(meshgen.DefaultChannel(nx, ny, nz, 17))
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdges(m.NV(), m.Edges)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Partition(g, m.X, nproc, partition.Spectral, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m, part
}

// maxRelDiff returns the max relative difference between two solutions.
func maxRelDiff(a, b []euler.State) float64 {
	worst := 0.0
	for i := range a {
		for k := 0; k < euler.NVar; k++ {
			d := math.Abs(a[i][k]-b[i][k]) / (1 + math.Abs(a[i][k]))
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

func TestSingleGridMatchesSequential(t *testing.T) {
	m, part := channelAndPartition(t, 10, 6, 4, 4)
	p := euler.DefaultParams(0.675, 0)

	// Sequential reference.
	seq := euler.NewDisc(m, p)
	wseq := make([]euler.State, m.NV())
	seq.InitUniform(wseq)
	ws := euler.NewStepWorkspace(m.NV())
	var seqNorms []float64
	for c := 0; c < 10; c++ {
		seqNorms = append(seqNorms, seq.Step(wseq, nil, ws))
	}

	// Distributed on 4 simulated processors.
	dm, err := NewSingle(m, part, 4, p)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 10; c++ {
		norm, err := dm.Cycle()
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(norm-seqNorms[c]) / (1e-30 + seqNorms[c]); rel > 1e-9 {
			t.Errorf("cycle %d: norm %g vs sequential %g", c, norm, seqNorms[c])
		}
	}
	if d := maxRelDiff(dm.GatherSolution(), wseq); d > 1e-9 {
		t.Errorf("solutions diverge: max rel diff %g", d)
	}
}

func TestSingleGridNProc1(t *testing.T) {
	m, _ := channelAndPartition(t, 6, 4, 3, 2)
	part := make([]int32, m.NV()) // everything on processor 0
	p := euler.DefaultParams(0.5, 0)
	dm, err := NewSingle(m, part, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dm.Cycle(); err != nil {
		t.Fatal(err)
	}
	// No communication at all on one processor.
	if msgs, _ := dm.Fabric.TotalStats(); msgs != 0 {
		t.Errorf("1-proc run sent %d messages", msgs)
	}
}

func TestMultigridMatchesSequential(t *testing.T) {
	spec := meshgen.DefaultChannel(12, 8, 6, 17)
	meshes, err := meshgen.Sequence(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := euler.DefaultParams(0.675, 0)

	smg, err := multigrid.New(meshes, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	var seqNorms []float64
	for c := 0; c < 6; c++ {
		seqNorms = append(seqNorms, smg.Cycle())
	}

	g, err := graph.FromEdges(meshes[0].NV(), meshes[0].Edges)
	if err != nil {
		t.Fatal(err)
	}
	finePart, err := partition.Partition(g, meshes[0].X, 4, partition.Spectral, 1)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := NewMultigrid(meshes, [][]int32{finePart, nil, nil}, 4, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 6; c++ {
		norm, err := dm.Cycle()
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(norm-seqNorms[c]) / (1e-30 + seqNorms[c]); rel > 1e-8 {
			t.Errorf("cycle %d: norm %g vs sequential %g", c, norm, seqNorms[c])
		}
	}
	if d := maxRelDiff(dm.GatherSolution(), smg.Fine().W); d > 1e-8 {
		t.Errorf("multigrid solutions diverge: max rel diff %g", d)
	}
}

func TestFreestreamNoDrift(t *testing.T) {
	spec := meshgen.DefaultChannel(8, 6, 4, 17)
	spec.BumpHeight = 0
	m, err := meshgen.Channel(spec)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdges(m.NV(), m.Edges)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Partition(g, m.X, 3, partition.Inertial, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := euler.DefaultParams(0.6, 0)
	dm, err := NewSingle(m, part, 3, p)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		norm, err := dm.Cycle()
		if err != nil {
			t.Fatal(err)
		}
		if norm > 1e-11 {
			t.Errorf("cycle %d: freestream residual %g", c, norm)
		}
	}
}

func TestCommCountersAdvance(t *testing.T) {
	m, part := channelAndPartition(t, 8, 5, 4, 4)
	p := euler.DefaultParams(0.6, 0)
	dm, err := NewSingle(m, part, 4, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dm.Cycle(); err != nil {
		t.Fatal(err)
	}
	c := dm.Comm
	// Per 5-stage step: >=5 w gathers, 5 convective scatters, 2 dissipation
	// rounds, 1 lam scatter, 10 smoothing exchanges.
	if c.GatherState < 5 || c.ScatterState < 7 || c.ScatterFloat < 1 {
		t.Errorf("implausible comm counters: %+v", c)
	}
	msgs, bytes := dm.Fabric.TotalStats()
	if msgs == 0 || bytes == 0 {
		t.Error("no traffic recorded on the fabric")
	}
	t.Logf("one cycle on 4 procs: %d msgs, %d bytes, counters %+v", msgs, bytes, c)
}

func TestBuildValidation(t *testing.T) {
	m, part := channelAndPartition(t, 5, 4, 3, 2)
	p := euler.DefaultParams(0.5, 0)
	if _, err := NewSingle(m, part, 0, p); err == nil {
		t.Error("accepted nproc=0")
	}
	if _, err := NewSingle(m, part[:5], 2, p); err == nil {
		t.Error("accepted short partition")
	}
	if _, err := build(nil, nil, 2, p, 1); err == nil {
		t.Error("accepted empty mesh list")
	}
	// A processor owning nothing is legal (the paper's coarsest grids had
	// fewer points than the Delta had nodes): the run must still be
	// correct, with processor 1 idle.
	idle := make([]int32, m.NV()) // all on proc 0 out of 2
	dmIdle, err := NewSingle(m, idle, 2, p)
	if err != nil {
		t.Fatalf("empty processor rejected: %v", err)
	}
	if _, err := dmIdle.Cycle(); err != nil {
		t.Errorf("cycle with idle processor: %v", err)
	}
	if _, err := NewMultigrid([]*mesh.Mesh{m}, [][]int32{nil}, 2, p, 1); err == nil {
		t.Error("accepted nil fine partition")
	}
}

func TestConcurrentMatchesSequentialBitwise(t *testing.T) {
	m, part := channelAndPartition(t, 10, 6, 4, 4)
	p := euler.DefaultParams(0.675, 0)

	seq, err := NewSingle(m, part, 4, p)
	if err != nil {
		t.Fatal(err)
	}
	conc, err := NewSingle(m, part, 4, p)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 8; c++ {
		ns, err := seq.Cycle()
		if err != nil {
			t.Fatal(err)
		}
		nc, err := conc.CycleConcurrent()
		if err != nil {
			t.Fatal(err)
		}
		if ns != nc {
			t.Fatalf("cycle %d: norms differ: %v vs %v", c, ns, nc)
		}
	}
	ws, wc := seq.GatherSolution(), conc.GatherSolution()
	for i := range ws {
		if ws[i] != wc[i] {
			t.Fatalf("vertex %d differs between sequential and concurrent orchestration", i)
		}
	}
	// Identical traffic, too.
	ms, bs := seq.Fabric.TotalStats()
	mc, bc := conc.Fabric.TotalStats()
	if ms != mc || bs != bc {
		t.Errorf("traffic differs: %d/%d vs %d/%d", ms, bs, mc, bc)
	}
	if seq.Comm != conc.Comm {
		t.Errorf("counters differ: %+v vs %+v", seq.Comm, conc.Comm)
	}
}

func TestConcurrentMultigridMatchesSequential(t *testing.T) {
	spec := meshgen.DefaultChannel(10, 6, 4, 17)
	meshes, err := meshgen.Sequence(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdges(meshes[0].NV(), meshes[0].Edges)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Partition(g, meshes[0].X, 5, partition.Spectral, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := euler.DefaultParams(0.675, 0)
	mk := func() *Solver {
		dm, err := NewMultigrid(meshes, [][]int32{append([]int32(nil), part...), nil, nil}, 5, p, 2)
		if err != nil {
			t.Fatal(err)
		}
		return dm
	}
	seq, conc := mk(), mk()
	for c := 0; c < 4; c++ {
		ns, err := seq.Cycle()
		if err != nil {
			t.Fatal(err)
		}
		nc, err := conc.CycleConcurrent()
		if err != nil {
			t.Fatal(err)
		}
		if ns != nc {
			t.Fatalf("cycle %d: norms differ: %v vs %v", c, ns, nc)
		}
	}
	ws, wc := seq.GatherSolution(), conc.GatherSolution()
	for i := range ws {
		if ws[i] != wc[i] {
			t.Fatalf("vertex %d differs (multigrid)", i)
		}
	}
}

func TestConcurrentSingleProc(t *testing.T) {
	m, _ := channelAndPartition(t, 6, 4, 3, 2)
	part := make([]int32, m.NV())
	p := euler.DefaultParams(0.5, 0)
	dm, err := NewSingle(m, part, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dm.CycleConcurrent(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentErrorPropagatesWithoutDeadlock(t *testing.T) {
	m, part := channelAndPartition(t, 8, 5, 4, 4)
	p := euler.DefaultParams(0.6, 0)
	dm, err := NewSingle(m, part, 4, p)
	if err != nil {
		t.Fatal(err)
	}
	// Inject a stray runt message into a communicating pair: the first
	// gather's receive pops it, fails the length check, and every
	// processor must bail out at the next barrier instead of deadlocking.
	var from, to int
	for pair := range dm.Levels[0].SchedW.PairVolumes() {
		from, to = pair[0], pair[1]
		break
	}
	if err := dm.Fabric.Send(from, to, []float64{42}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := dm.CycleConcurrent()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("corrupted traffic did not surface an error")
		}
	case <-timeAfter():
		t.Fatal("CycleConcurrent deadlocked on error")
	}
}

func timeAfter() <-chan time.Time { return time.After(30 * time.Second) }
