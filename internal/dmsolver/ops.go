package dmsolver

import (
	"math"

	"eul3d/internal/euler"
	"eul3d/internal/mesh"
	"eul3d/internal/parti"
)

// This file holds the per-processor loop bodies (the "executor" side of
// the inspector/executor transformation) and the sequential orchestration
// that loops them over all processors with whole-schedule exchanges.
// concurrent.go runs the same bodies with one goroutine per processor and
// barrier-separated per-processor exchange halves; both modes produce
// identical results.

// ---- per-processor compute phases ----

func (s *Solver) copyW0Proc(lev *Level, p int) {
	copy(lev.W0[p][:lev.Dist.Count(p)], lev.W[p][:lev.Dist.Count(p)])
}

func (s *Solver) pressuresProc(lev *Level, p int) {
	g := s.P.Gas
	wp, pp := lev.W[p], lev.Pres[p]
	for i := range wp {
		pp[i] = g.Pressure(wp[i])
	}
}

func zeroStatesProc(a []euler.State) {
	for i := range a {
		a[i] = euler.State{}
	}
}

// convectiveProc assembles proc p's share of Q(w) into lev.Conv[p]
// (including ghost accumulations, scatter-added by the orchestrator).
func (s *Solver) convectiveProc(lev *Level, p int) {
	zeroStatesProc(lev.Conv[p])
	g := s.P.Gas
	w, pres, conv := lev.W[p], lev.Pres[p], lev.Conv[p]
	for e, ed := range lev.Edges[p] {
		i, j := ed[0], ed[1]
		n := lev.ENorm[p][e]
		fi := euler.FluxDotN(w[i], pres[i], n.X, n.Y, n.Z)
		fj := euler.FluxDotN(w[j], pres[j], n.X, n.Y, n.Z)
		for k := 0; k < euler.NVar; k++ {
			f := 0.5 * (fi[k] + fj[k])
			conv[i][k] += f
			conv[j][k] -= f
		}
	}
	for bi := range lev.BFaces[p] {
		f := &lev.BFaces[p][bi]
		n := f.Normal
		var flux euler.State
		if f.Kind == mesh.FarField {
			var wi euler.State
			for k := 0; k < euler.NVar; k++ {
				wi[k] = (w[f.V[0]][k] + w[f.V[1]][k] + w[f.V[2]][k]) / 3
			}
			wb := euler.FarFieldState(g, wi, s.P.Freestream, n)
			flux = euler.FluxDotN(wb, g.Pressure(wb), n.X, n.Y, n.Z)
		} else {
			pf := (pres[f.V[0]] + pres[f.V[1]] + pres[f.V[2]]) / 3
			flux = euler.State{0, pf * n.X, pf * n.Y, pf * n.Z, 0}
		}
		for k := 0; k < euler.NVar; k++ {
			third := flux[k] / 3
			conv[f.V[0]][k] += third
			conv[f.V[1]][k] += third
			conv[f.V[2]][k] += third
		}
	}
}

func (s *Solver) dissPass1Proc(lev *Level, p int) {
	zeroStatesProc(lev.Lapl[p])
	num, den := lev.Num[p], lev.Den[p]
	for i := range num {
		num[i] = 0
		den[i] = 0
	}
	w, pres, lapl := lev.W[p], lev.Pres[p], lev.Lapl[p]
	for _, ed := range lev.Edges[p] {
		i, j := ed[0], ed[1]
		for k := 0; k < euler.NVar; k++ {
			dw := w[j][k] - w[i][k]
			lapl[i][k] += dw
			lapl[j][k] -= dw
		}
		dp := pres[j] - pres[i]
		num[i] += dp
		num[j] -= dp
		sp := pres[j] + pres[i]
		den[i] += sp
		den[j] += sp
	}
}

func (s *Solver) nuProc(lev *Level, p int) {
	num, den := lev.Num[p], lev.Den[p]
	for i := 0; i < lev.Dist.Count(p); i++ {
		num[i] = math.Abs(num[i]) / den[i]
	}
}

func (s *Solver) dissPass2Proc(lev *Level, p int) {
	zeroStatesProc(lev.Diss[p])
	g := s.P.Gas
	k2, k4 := s.P.K2, s.P.K4
	w, pres, nu := lev.W[p], lev.Pres[p], lev.Num[p]
	lapl, diss := lev.Lapl[p], lev.Diss[p]
	for e, ed := range lev.Edges[p] {
		i, j := ed[0], ed[1]
		lamE := euler.SpectralRadius(g, w[i], w[j], pres[i], pres[j], lev.ENorm[p][e])
		eps2 := k2 * math.Max(nu[i], nu[j])
		eps4 := math.Max(0, k4-eps2)
		for k := 0; k < euler.NVar; k++ {
			f := lamE * (eps2*(w[j][k]-w[i][k]) - eps4*(lapl[j][k]-lapl[i][k]))
			diss[i][k] += f
			diss[j][k] -= f
		}
	}
}

func (s *Solver) lamProc(lev *Level, p int) {
	g := s.P.Gas
	lam := lev.Lam[p]
	for i := range lam {
		lam[i] = 0
	}
	w, pres := lev.W[p], lev.Pres[p]
	for e, ed := range lev.Edges[p] {
		i, j := ed[0], ed[1]
		lamE := euler.SpectralRadius(g, w[i], w[j], pres[i], pres[j], lev.ENorm[p][e])
		lam[i] += lamE
		lam[j] += lamE
	}
	for bi := range lev.BFaces[p] {
		f := &lev.BFaces[p][bi]
		n := f.Normal
		for _, v := range f.V {
			inv := 1 / w[v][0]
			un := (w[v][1]*n.X + w[v][2]*n.Y + w[v][3]*n.Z) * inv
			c := math.Sqrt(g.Gamma * pres[v] * inv)
			lam[v] += (math.Abs(un) + c*n.Norm()) / 3
		}
	}
}

func (s *Solver) dtProc(lev *Level, p int) {
	cfl := s.P.CFL
	for i := 0; i < lev.Dist.Count(p); i++ {
		lev.Dt[p][i] = cfl * lev.Vol[p][i] / lev.Lam[p][i]
	}
}

func (s *Solver) combineResProc(lev *Level, p int, withForcing bool) {
	for i := 0; i < lev.Dist.Count(p); i++ {
		for k := 0; k < euler.NVar; k++ {
			lev.Res[p][i][k] = lev.Conv[p][i][k] - lev.Diss[p][i][k]
		}
		if withForcing {
			for k := 0; k < euler.NVar; k++ {
				lev.Res[p][i][k] += lev.Forcing[p][i][k]
			}
		}
	}
}

// normPartialProc sums this processor's share of the residual norm with
// the engine-wide blocked reduction (euler.NormBlock), so that a one-proc
// distributed solve reproduces the sequential norm bitwise.
func (s *Solver) normPartialProc(lev *Level, p int) float64 {
	return euler.ResidualNormSq(lev.Res[p], lev.Vol[p], lev.Dist.Count(p))
}

func (s *Solver) smoothRHSProc(lev *Level, p int, arr [][]euler.State) {
	copy(lev.RHS[p][:lev.Dist.Count(p)], arr[p][:lev.Dist.Count(p)])
}

func (s *Solver) smoothAccumProc(lev *Level, p int, cur, next [][]euler.State) {
	zeroStatesProc(next[p])
	cp, np := cur[p], next[p]
	for _, ed := range lev.Edges[p] {
		i, j := ed[0], ed[1]
		for k := 0; k < euler.NVar; k++ {
			np[i][k] += cp[j][k]
			np[j][k] += cp[i][k]
		}
	}
}

func (s *Solver) smoothCombineProc(lev *Level, p int, next [][]euler.State, eps float64) {
	np, rp := next[p], lev.RHS[p]
	for i := 0; i < lev.Dist.Count(p); i++ {
		inv := 1 / (1 + eps*lev.Deg[p][i])
		for k := 0; k < euler.NVar; k++ {
			np[i][k] = (rp[i][k] + eps*np[i][k]) * inv
		}
	}
}

func (s *Solver) smoothWritebackProc(lev *Level, p int, arr, cur [][]euler.State) {
	copy(arr[p][:lev.Dist.Count(p)], cur[p][:lev.Dist.Count(p)])
}

func (s *Solver) updateProc(lev *Level, p int, alpha float64) {
	for i := 0; i < lev.Dist.Count(p); i++ {
		f := alpha * lev.Dt[p][i] / lev.Vol[p][i]
		var cand euler.State
		for k := 0; k < euler.NVar; k++ {
			cand[k] = lev.W0[p][i][k] - f*lev.Res[p][i][k]
		}
		if !s.P.Guard(cand) {
			cand = lev.W0[p][i] // positivity guard, identical to euler.Step
		}
		lev.W[p][i] = cand
	}
}

// ---- multigrid per-processor phases ----

func (s *Solver) addForcingToResProc(lev *Level, p int) {
	for i := 0; i < lev.Dist.Count(p); i++ {
		for k := 0; k < euler.NVar; k++ {
			lev.Res[p][i][k] += lev.Forcing[p][i][k]
		}
	}
}

func (s *Solver) restrictInterpProc(fine, coarse *Level, p int) {
	for li := range coarse.RestrictAddr[p] {
		a, wt := coarse.RestrictAddr[p][li], coarse.RestrictWt[p][li]
		var v euler.State
		for k := 0; k < 4; k++ {
			src := fine.W[p][a[k]]
			f := wt[k]
			for c := 0; c < euler.NVar; c++ {
				v[c] += f * src[c]
			}
		}
		v = s.P.Repair(v) // interpolated pressure can go negative
		coarse.W[p][li] = v
		coarse.WSaved[p][li] = v
	}
}

func (s *Solver) residualScatterProc(fine, coarse *Level, p int) {
	zeroStatesProc(coarse.Forcing[p])
	for li := range coarse.ProlongAddr[p] {
		a, wt := coarse.ProlongAddr[p][li], coarse.ProlongWt[p][li]
		rv := fine.Res[p][li]
		for k := 0; k < 4; k++ {
			f := wt[k]
			dst := &coarse.Forcing[p][a[k]]
			for c := 0; c < euler.NVar; c++ {
				dst[c] += f * rv[c]
			}
		}
	}
}

func (s *Solver) forcingCombineProc(coarse *Level, p int) {
	for i := 0; i < coarse.Dist.Count(p); i++ {
		for k := 0; k < euler.NVar; k++ {
			coarse.Forcing[p][i][k] -= coarse.Res[p][i][k]
		}
	}
}

func (s *Solver) corrDeltaProc(coarse *Level, p int) {
	for i := 0; i < coarse.Dist.Count(p); i++ {
		for k := 0; k < euler.NVar; k++ {
			coarse.Corr[p][i][k] = coarse.W[p][i][k] - coarse.WSaved[p][i][k]
		}
	}
}

func (s *Solver) corrInterpProc(fine, coarse *Level, p int) {
	for li := range coarse.ProlongAddr[p] {
		a, wt := coarse.ProlongAddr[p][li], coarse.ProlongWt[p][li]
		var v euler.State
		for k := 0; k < 4; k++ {
			src := coarse.Corr[p][a[k]]
			f := wt[k]
			for c := 0; c < euler.NVar; c++ {
				v[c] += f * src[c]
			}
		}
		fine.Corr[p][li] = v
	}
}

func (s *Solver) applyCorrProc(fine *Level, p int) {
	for i := 0; i < fine.Dist.Count(p); i++ {
		var cand euler.State
		for k := 0; k < euler.NVar; k++ {
			cand[k] = fine.W[p][i][k] + fine.Corr[p][i][k]
		}
		if !s.P.Guard(cand) {
			continue // positivity guard: skip the correction at this vertex
		}
		fine.W[p][i] = cand
	}
}

// ---- sequential orchestration ----

func (s *Solver) forAll(fn func(p int)) {
	for p := 0; p < s.NProc; p++ {
		fn(p)
	}
}

// Sequential collective wrappers: count the execution and, with a tracer
// attached, bracket it with comm/compute spans (trace.go).

func (s *Solver) seqGatherStates(sch *parti.Schedule, lev *Level, data [][]euler.State) error {
	s.Comm.GatherState++
	return s.seqEx(exGatherState, lev.Index, func() error { return sch.GatherStates(s.Fabric, data) })
}

func (s *Solver) seqScatterAddStates(sch *parti.Schedule, lev *Level, data [][]euler.State) error {
	s.Comm.ScatterState++
	return s.seqEx(exScatterState, lev.Index, func() error { return sch.ScatterAddStates(s.Fabric, data) })
}

func (s *Solver) seqGatherFloats(sch *parti.Schedule, lev *Level, data [][]float64) error {
	s.Comm.GatherFloat++
	return s.seqEx(exGatherFloat, lev.Index, func() error { return sch.GatherFloats(s.Fabric, data) })
}

func (s *Solver) seqScatterAddFloats(sch *parti.Schedule, lev *Level, data [][]float64) error {
	s.Comm.ScatterFloat++
	return s.seqEx(exScatterFloat, lev.Index, func() error { return sch.ScatterAddFloats(s.Fabric, data) })
}

// gatherW refreshes the flow-variable ghosts of level lev.
func (s *Solver) gatherW(lev *Level) error {
	return s.seqGatherStates(lev.SchedW, lev, lev.W)
}

// convective assembles Q(w) into lev.Conv with the closing scatter-add.
func (s *Solver) convective(lev *Level) error {
	s.forAll(func(p int) { s.convectiveProc(lev, p) })
	return s.seqScatterAddStates(lev.SchedW, lev, lev.Conv)
}

// dissipation assembles D(w) into lev.Diss: pass 1 with scatter-add and
// re-gather, then pass 2 with a final scatter-add — the consecutive-loop
// structure that motivates the paper's incremental schedules.
func (s *Solver) dissipation(lev *Level) error {
	s.forAll(func(p int) { s.dissPass1Proc(lev, p) })
	if err := s.seqScatterAddStates(lev.SchedW, lev, lev.Lapl); err != nil {
		return err
	}
	if err := s.seqScatterAddFloats(lev.SchedW, lev, lev.Num); err != nil {
		return err
	}
	if err := s.seqScatterAddFloats(lev.SchedW, lev, lev.Den); err != nil {
		return err
	}
	s.forAll(func(p int) { s.nuProc(lev, p) })
	if err := s.seqGatherStates(lev.SchedW, lev, lev.Lapl); err != nil {
		return err
	}
	if err := s.seqGatherFloats(lev.SchedW, lev, lev.Num); err != nil {
		return err
	}
	s.forAll(func(p int) { s.dissPass2Proc(lev, p) })
	return s.seqScatterAddStates(lev.SchedW, lev, lev.Diss)
}

// timeSteps computes the local time steps on owned vertices.
func (s *Solver) timeSteps(lev *Level) error {
	s.forAll(func(p int) { s.lamProc(lev, p) })
	if err := s.seqScatterAddFloats(lev.SchedW, lev, lev.Lam); err != nil {
		return err
	}
	s.forAll(func(p int) { s.dtProc(lev, p) })
	return nil
}

// smooth applies the distributed implicit residual averaging to arr.
func (s *Solver) smooth(lev *Level, arr [][]euler.State) error {
	eps := s.P.EpsSmooth
	if eps == 0 || s.P.NSmooth == 0 {
		return nil
	}
	s.forAll(func(p int) { s.smoothRHSProc(lev, p, arr) })
	cur, next := arr, lev.Smooth
	for sweep := 0; sweep < s.P.NSmooth; sweep++ {
		if err := s.seqGatherStates(lev.SchedW, lev, cur); err != nil {
			return err
		}
		cc, nn := cur, next
		s.forAll(func(p int) { s.smoothAccumProc(lev, p, cc, nn) })
		if err := s.seqScatterAddStates(lev.SchedW, lev, next); err != nil {
			return err
		}
		s.forAll(func(p int) { s.smoothCombineProc(lev, p, nn, eps) })
		cur, next = next, cur
	}
	if &cur[0] != &arr[0] {
		s.forAll(func(p int) { s.smoothWritebackProc(lev, p, arr, cur) })
	}
	return nil
}

// residual computes R = Q - D (+ forcing if withForcing) into lev.Res at
// owned vertices.
func (s *Solver) residual(lev *Level, withForcing bool) error {
	if err := s.gatherW(lev); err != nil {
		return err
	}
	s.forAll(func(p int) { s.pressuresProc(lev, p) })
	if err := s.convective(lev); err != nil {
		return err
	}
	if err := s.dissipation(lev); err != nil {
		return err
	}
	s.forAll(func(p int) { s.combineResProc(lev, p, withForcing) })
	return nil
}

// step advances level l by one five-stage time step and returns the
// first-stage residual norm.
func (s *Solver) step(l int) (float64, error) {
	lev := s.Levels[l]
	withForcing := l > 0
	s.forAll(func(p int) { s.copyW0Proc(lev, p) })
	if err := s.gatherW(lev); err != nil {
		return 0, err
	}
	s.forAll(func(p int) { s.pressuresProc(lev, p) })
	if err := s.timeSteps(lev); err != nil {
		return 0, err
	}
	norm := 0.0
	for q, alpha := range s.P.Stages {
		if q > 0 {
			if err := s.gatherW(lev); err != nil {
				return 0, err
			}
			s.forAll(func(p int) { s.pressuresProc(lev, p) })
		}
		if err := s.convective(lev); err != nil {
			return 0, err
		}
		if q < euler.DissipStages {
			if err := s.dissipation(lev); err != nil {
				return 0, err
			}
		}
		s.forAll(func(p int) { s.combineResProc(lev, p, withForcing) })
		if q == 0 {
			sum := 0.0
			for p := 0; p < s.NProc; p++ {
				sum += s.normPartialProc(lev, p)
			}
			norm = math.Sqrt(sum / float64(lev.M.NV()))
		}
		if err := s.smooth(lev, lev.Res); err != nil {
			return 0, err
		}
		s.forAll(func(p int) { s.updateProc(lev, p, alpha) })
	}
	return norm, nil
}

// Cycle performs one multigrid cycle (or a plain time step for a single
// level) and returns the fine-grid residual norm.
func (s *Solver) Cycle() (float64, error) {
	return s.cycle(0)
}

func (s *Solver) cycle(l int) (float64, error) {
	norm, err := s.step(l)
	if err != nil || l == len(s.Levels)-1 {
		return norm, err
	}
	lev, next := s.Levels[l], s.Levels[l+1]

	// Residual of the post-step solution (with forcing on coarse levels).
	if err := s.residual(lev, l > 0); err != nil {
		return 0, err
	}

	// Restrict flow variables: refresh fine ghosts through both the
	// edge-loop schedule and the incremental restriction schedule, then
	// interpolate onto coarse-owned vertices.
	if err := s.gatherW(lev); err != nil {
		return 0, err
	}
	if err := s.seqGatherStates(next.SchedFine, lev, lev.W); err != nil {
		return 0, err
	}
	s.forAll(func(p int) { s.restrictInterpProc(lev, next, p) })

	// Restrict residuals conservatively. The prolongation addresses reuse
	// coarse ghost slots already allocated by the coarse edge-loop
	// schedule where possible (incremental schedules); accumulated
	// contributions return to their owners through both schedules.
	s.forAll(func(p int) { s.residualScatterProc(lev, next, p) })
	if err := s.seqScatterAddStates(next.SchedCoarse, next, next.Forcing); err != nil {
		return 0, err
	}
	if err := s.seqScatterAddStates(next.SchedW, next, next.Forcing); err != nil {
		return 0, err
	}

	// Forcing P = R' - R(w').
	if err := s.residual(next, false); err != nil {
		return 0, err
	}
	s.forAll(func(p int) { s.forcingCombineProc(next, p) })

	visits := s.Gamma
	if l+1 == len(s.Levels)-1 {
		visits = 1
	}
	for v := 0; v < visits; v++ {
		if _, err := s.cycle(l + 1); err != nil {
			return 0, err
		}
	}

	// Correction: coarse delta, ghost refresh through both schedules,
	// interpolate to fine, smooth, apply.
	s.forAll(func(p int) { s.corrDeltaProc(next, p) })
	if err := s.seqGatherStates(next.SchedCoarse, next, next.Corr); err != nil {
		return 0, err
	}
	if err := s.seqGatherStates(next.SchedW, next, next.Corr); err != nil {
		return 0, err
	}
	s.forAll(func(p int) { s.corrInterpProc(lev, next, p) })
	if err := s.smooth(lev, lev.Corr); err != nil {
		return 0, err
	}
	s.forAll(func(p int) { s.applyCorrProc(lev, p) })
	return norm, nil
}
