package dmsolver

import (
	"math"
	"sync"
	"time"

	"eul3d/internal/euler"
	"eul3d/internal/parti"
	"eul3d/internal/simnet"
)

// Concurrent MIMD execution: every simulated processor runs the whole
// cycle in its own goroutine — the same per-processor loop bodies as the
// sequential orchestration — exchanging data through per-processor
// schedule halves separated by a barrier (all sends complete before any
// receive matches, the bulk-synchronous discipline of the NX message
// layer). Because message contents and per-processor arithmetic are
// identical to the sequential mode, CycleConcurrent produces bitwise
// identical results to Cycle.

// concRun holds the shared state of one concurrent cycle.
type concRun struct {
	s        *Solver
	bar      *simnet.Barrier
	mu       sync.Mutex
	err      error
	partials []float64
}

// fail records the first error.
func (r *concRun) fail(err error) {
	if err == nil {
		return
	}
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.mu.Unlock()
}

// sync joins the barrier and reports whether the run is still healthy.
// The health verdict is evaluated once, by the last processor to arrive,
// and shared with all (Barrier.AwaitCheck), so every processor takes the
// same continue/bail decision and the bulk-synchronous control flow stays
// in lockstep even when an error lands mid-phase.
func (r *concRun) sync() bool {
	return r.bar.AwaitCheck(func() bool {
		r.mu.Lock()
		ok := r.err == nil
		r.mu.Unlock()
		return ok
	})
}

// exchange runs one send-half, a barrier, then one receive-half. With a
// tracer attached it lays processor p's timeline down as it goes: the
// compute span closing the gap since p's previous exchange, the send and
// receive halves, and the bulk-synchronous barrier waits between them.
func (r *concRun) exchange(p, kind int, send, recv func() error) bool {
	st := r.s.st
	if st == nil {
		r.fail(send())
		if !r.sync() {
			return false
		}
		r.fail(recv())
		return r.sync()
	}
	tk := st.procs[p]
	t0 := time.Now()
	if !st.lastProc[p].IsZero() {
		tk.Span(st.phComp, st.lastProc[p], t0, 0)
	}
	r.fail(send())
	t1 := time.Now()
	tk.Span(st.sendPh[kind], t0, t1, 0)
	ok := r.sync()
	t2 := time.Now()
	tk.Span(st.phBar, t1, t2, 0)
	if !ok {
		st.lastProc[p] = t2
		return false
	}
	r.fail(recv())
	t3 := time.Now()
	tk.Span(st.recvPh[kind], t2, t3, 0)
	ok = r.sync()
	t4 := time.Now()
	tk.Span(st.phBar, t3, t4, 0)
	st.lastProc[p] = t4
	return ok
}

func (r *concRun) gatherStates(sch *parti.Schedule, p int, data [][]euler.State) bool {
	f := r.s.Fabric
	return r.exchange(p, exGatherState,
		func() error { return sch.SendGatherStates(f, p, data) },
		func() error { return sch.RecvGatherStates(f, p, data) },
	)
}

func (r *concRun) scatterStates(sch *parti.Schedule, p int, data [][]euler.State) bool {
	f := r.s.Fabric
	return r.exchange(p, exScatterState,
		func() error { return sch.SendScatterStates(f, p, data) },
		func() error { return sch.RecvScatterStates(f, p, data) },
	)
}

func (r *concRun) gatherFloats(sch *parti.Schedule, p int, data [][]float64) bool {
	f := r.s.Fabric
	return r.exchange(p, exGatherFloat,
		func() error { return sch.SendGatherFloats(f, p, data) },
		func() error { return sch.RecvGatherFloats(f, p, data) },
	)
}

func (r *concRun) scatterFloats(sch *parti.Schedule, p int, data [][]float64) bool {
	f := r.s.Fabric
	return r.exchange(p, exScatterFloat,
		func() error { return sch.SendScatterFloats(f, p, data) },
		func() error { return sch.RecvScatterFloats(f, p, data) },
	)
}

// count bumps the communication counters once per collective (processor 0
// stands in for the bookkeeping the sequential mode does globally).
func (r *concRun) count(p int, f func(c *CommCounters)) {
	if p == 0 {
		f(&r.s.Comm)
	}
}

// dissipationProc is the per-processor dissipation phase with exchanges.
func (r *concRun) dissipationProc(lev *Level, p int) bool {
	s := r.s
	s.dissPass1Proc(lev, p)
	r.count(p, func(c *CommCounters) { c.ScatterState++; c.ScatterFloat += 2 })
	if !r.scatterStates(lev.SchedW, p, lev.Lapl) {
		return false
	}
	if !r.scatterFloats(lev.SchedW, p, lev.Num) {
		return false
	}
	if !r.scatterFloats(lev.SchedW, p, lev.Den) {
		return false
	}
	s.nuProc(lev, p)
	r.count(p, func(c *CommCounters) { c.GatherState++; c.GatherFloat++ })
	if !r.gatherStates(lev.SchedW, p, lev.Lapl) {
		return false
	}
	if !r.gatherFloats(lev.SchedW, p, lev.Num) {
		return false
	}
	s.dissPass2Proc(lev, p)
	r.count(p, func(c *CommCounters) { c.ScatterState++ })
	return r.scatterStates(lev.SchedW, p, lev.Diss)
}

// smoothProc is the per-processor residual averaging with exchanges.
func (r *concRun) smoothProc(lev *Level, p int, arr [][]euler.State) bool {
	s := r.s
	eps := s.P.EpsSmooth
	if eps == 0 || s.P.NSmooth == 0 {
		return true
	}
	s.smoothRHSProc(lev, p, arr)
	cur, next := arr, lev.Smooth
	for sweep := 0; sweep < s.P.NSmooth; sweep++ {
		r.count(p, func(c *CommCounters) { c.GatherState++; c.ScatterState++ })
		if !r.gatherStates(lev.SchedW, p, cur) {
			return false
		}
		s.smoothAccumProc(lev, p, cur, next)
		if !r.scatterStates(lev.SchedW, p, next) {
			return false
		}
		s.smoothCombineProc(lev, p, next, eps)
		cur, next = next, cur
	}
	if &cur[0] != &arr[0] {
		s.smoothWritebackProc(lev, p, arr, cur)
	}
	return true
}

// residualProc computes R = Q - D (+forcing) for processor p's share.
func (r *concRun) residualProc(lev *Level, p int, withForcing bool) bool {
	s := r.s
	r.count(p, func(c *CommCounters) { c.GatherState++ })
	if !r.gatherStates(lev.SchedW, p, lev.W) {
		return false
	}
	s.pressuresProc(lev, p)
	s.convectiveProc(lev, p)
	r.count(p, func(c *CommCounters) { c.ScatterState++ })
	if !r.scatterStates(lev.SchedW, p, lev.Conv) {
		return false
	}
	if !r.dissipationProc(lev, p) {
		return false
	}
	s.combineResProc(lev, p, withForcing)
	return true
}

// stepProc runs one multistage time step for processor p and returns the
// global first-stage residual norm (identical on every processor).
func (r *concRun) stepProc(l, p int) (float64, bool) {
	s := r.s
	lev := s.Levels[l]
	withForcing := l > 0
	s.copyW0Proc(lev, p)
	r.count(p, func(c *CommCounters) { c.GatherState++ })
	if !r.gatherStates(lev.SchedW, p, lev.W) {
		return 0, false
	}
	s.pressuresProc(lev, p)
	s.lamProc(lev, p)
	r.count(p, func(c *CommCounters) { c.ScatterFloat++ })
	if !r.scatterFloats(lev.SchedW, p, lev.Lam) {
		return 0, false
	}
	s.dtProc(lev, p)

	norm := 0.0
	for q, alpha := range s.P.Stages {
		if q > 0 {
			r.count(p, func(c *CommCounters) { c.GatherState++ })
			if !r.gatherStates(lev.SchedW, p, lev.W) {
				return 0, false
			}
			s.pressuresProc(lev, p)
		}
		s.convectiveProc(lev, p)
		r.count(p, func(c *CommCounters) { c.ScatterState++ })
		if !r.scatterStates(lev.SchedW, p, lev.Conv) {
			return 0, false
		}
		if q < euler.DissipStages {
			if !r.dissipationProc(lev, p) {
				return 0, false
			}
		}
		s.combineResProc(lev, p, withForcing)
		if q == 0 {
			r.partials[p] = s.normPartialProc(lev, p)
			if !r.sync() {
				return 0, false
			}
			sum := 0.0
			for _, v := range r.partials {
				sum += v
			}
			norm = math.Sqrt(sum / float64(lev.M.NV()))
			if !r.sync() { // partials may be reused next cycle
				return 0, false
			}
		}
		if !r.smoothProc(lev, p, lev.Res) {
			return 0, false
		}
		s.updateProc(lev, p, alpha)
	}
	return norm, true
}

// cycleProc is the per-processor FAS multigrid cycle.
func (r *concRun) cycleProc(l, p int) (float64, bool) {
	s := r.s
	norm, ok := r.stepProc(l, p)
	if !ok || l == len(s.Levels)-1 {
		return norm, ok
	}
	lev, next := s.Levels[l], s.Levels[l+1]

	if !r.residualProc(lev, p, l > 0) {
		return 0, false
	}
	r.count(p, func(c *CommCounters) { c.GatherState += 2 })
	if !r.gatherStates(lev.SchedW, p, lev.W) {
		return 0, false
	}
	if !r.gatherStates(next.SchedFine, p, lev.W) {
		return 0, false
	}
	s.restrictInterpProc(lev, next, p)

	s.residualScatterProc(lev, next, p)
	r.count(p, func(c *CommCounters) { c.ScatterState += 2 })
	if !r.scatterStates(next.SchedCoarse, p, next.Forcing) {
		return 0, false
	}
	if !r.scatterStates(next.SchedW, p, next.Forcing) {
		return 0, false
	}

	if !r.residualProc(next, p, false) {
		return 0, false
	}
	s.forcingCombineProc(next, p)

	visits := s.Gamma
	if l+1 == len(s.Levels)-1 {
		visits = 1
	}
	for v := 0; v < visits; v++ {
		if _, ok := r.cycleProc(l+1, p); !ok {
			return 0, false
		}
	}

	s.corrDeltaProc(next, p)
	r.count(p, func(c *CommCounters) { c.GatherState += 2 })
	if !r.gatherStates(next.SchedCoarse, p, next.Corr) {
		return 0, false
	}
	if !r.gatherStates(next.SchedW, p, next.Corr) {
		return 0, false
	}
	s.corrInterpProc(lev, next, p)
	if !r.smoothProc(lev, p, lev.Corr) {
		return 0, false
	}
	s.applyCorrProc(lev, p)
	return norm, true
}

// CycleConcurrent performs one solver cycle with a goroutine per simulated
// processor, returning the fine-grid residual norm. Results are bitwise
// identical to Cycle.
func (s *Solver) CycleConcurrent() (float64, error) {
	r := &concRun{
		s:        s,
		bar:      simnet.NewBarrier(s.NProc),
		partials: make([]float64, s.NProc),
	}
	norms := make([]float64, s.NProc)
	var wg sync.WaitGroup
	for p := 0; p < s.NProc; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			norms[p], _ = r.cycleProc(0, p)
		}(p)
	}
	wg.Wait()
	return norms[0], r.err
}
