package dmsolver

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eul3d/internal/simnet"
	"eul3d/internal/trace"
)

// phaseCounts tallies phase names over one track.
func phaseCounts(tr *trace.Tracer, tk *trace.Track) map[string]int {
	out := map[string]int{}
	for _, ev := range tk.Events() {
		out[tr.PhaseName(ev.Phase)]++
	}
	return out
}

func traceTracks(tr *trace.Tracer) map[string]*trace.Track {
	out := map[string]*trace.Track{}
	for _, tk := range tr.Tracks() {
		out[tk.Name()] = tk
	}
	return out
}

// TestTracedSequentialCycle checks the sequential orchestration's comm
// timeline: collective spans interleaved with the gap-filling compute
// spans on the "comm" track, and the replayed schedule-build spans.
func TestTracedSequentialCycle(t *testing.T) {
	s := chaosSolver(t)
	tr := trace.New(2048)
	s.SetTrace(tr)
	if _, err := s.Cycle(); err != nil {
		t.Fatal(err)
	}
	tks := traceTracks(tr)
	if tks["comm"] == nil || tks["build"] == nil || tks["events"] == nil {
		t.Fatalf("missing tracks; have %v", len(tr.Tracks()))
	}
	comm := phaseCounts(tr, tks["comm"])
	for _, ph := range []string{"gather-states", "scatter-states", "gather-floats", "scatter-floats", "compute"} {
		if comm[ph] == 0 {
			t.Errorf("comm track has no %q spans (%v)", ph, comm)
		}
	}
	build := phaseCounts(tr, tks["build"])
	if build["schedule-build"] == 0 {
		t.Errorf("build track has no schedule-build spans (%v)", build)
	}
}

// TestTracedConcurrentCycle checks the MIMD timeline: every simulated
// processor's track carries send/recv exchange halves, barrier waits and
// compute spans — the per-node comm/comp breakdown of the Delta port.
func TestTracedConcurrentCycle(t *testing.T) {
	s := chaosSolver(t)
	tr := trace.New(4096)
	s.SetTrace(tr)
	if _, err := s.CycleConcurrent(); err != nil {
		t.Fatal(err)
	}
	tks := traceTracks(tr)
	for _, name := range []string{"p0", "p1", "p2"} {
		tk := tks[name]
		if tk == nil {
			t.Fatalf("missing processor track %s", name)
		}
		got := phaseCounts(tr, tk)
		for _, ph := range []string{"send-gather", "recv-gather", "send-scatter", "recv-scatter", "barrier", "compute"} {
			if got[ph] == 0 {
				t.Errorf("track %s has no %q spans (%v)", name, ph, got)
			}
		}
	}
	var b strings.Builder
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Validate(strings.NewReader(b.String())); err != nil {
		t.Fatalf("export fails Validate: %v", err)
	}
}

// TestIncidentDumpOnCrash is the flight-recorder acceptance path: a seeded
// node crash must fire an automatic dump whose ring contains the events
// leading up to the recovery — exchange spans before the crash plus the
// node-crash and recovery instants.
func TestIncidentDumpOnCrash(t *testing.T) {
	s := chaosSolver(t)
	s.Fabric.SetFaultPlan(simnet.NewFaultPlan(
		simnet.FaultEvent{Kind: simnet.FaultCrash, Node: 1, Cycle: 4}))
	tr := trace.New(1024)
	s.SetTrace(tr)

	dump := filepath.Join(t.TempDir(), "incident.json")
	var log bytes.Buffer
	res, err := s.Run(RunOptions{MaxCycles: 8, CheckpointEvery: 2, IncidentPath: dump, Log: &log})
	if err != nil {
		t.Fatalf("run failed: %v\nlog:\n%s", err, log.String())
	}
	if res.Recoveries != 1 {
		t.Fatalf("expected 1 recovery, got %d", res.Recoveries)
	}
	if !strings.Contains(log.String(), "incident trace dumped") {
		t.Errorf("dump not reported in log:\n%s", log.String())
	}

	f, err := os.Open(dump)
	if err != nil {
		t.Fatalf("incident dump missing: %v", err)
	}
	defer f.Close()
	if n, err := trace.Validate(f); err != nil {
		t.Fatalf("incident dump fails Validate: %v", err)
	} else if n == 0 {
		t.Fatal("incident dump is empty")
	}

	// The events track must hold the incident markers, and the comm ring
	// the exchanges leading up to them.
	tks := traceTracks(tr)
	events := phaseCounts(tr, tks["events"])
	if events["node-crash"] == 0 || events["recovery"] == 0 {
		t.Errorf("events track missing crash/recovery instants (%v)", events)
	}
	if events["checkpoint"] == 0 {
		t.Errorf("events track missing checkpoint instants (%v)", events)
	}
	comm := phaseCounts(tr, tks["comm"])
	if comm["gather-states"] == 0 {
		t.Errorf("comm ring does not hold the exchanges before the incident (%v)", comm)
	}
}
