package dmsolver

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"eul3d/internal/euler"
	"eul3d/internal/meshio"
	"eul3d/internal/simnet"
)

// chaosSolver builds a 3-processor distributed solver over the standard
// channel fixture.
func chaosSolver(t *testing.T) *Solver {
	t.Helper()
	m, part := channelAndPartition(t, 10, 6, 4, 3)
	s, err := NewSingle(m, part, 3, euler.DefaultParams(0.675, 0))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// chaosPlan schedules at least one of every message fault plus a mid-run
// node crash. Sequence numbers 0..4 all occur within the first cycle (a
// single cycle exchanges many messages per processor pair), so every
// message fault fires before the first periodic checkpoint.
func chaosPlan(crashNode, crashCycle int) *simnet.FaultPlan {
	return simnet.NewFaultPlan(
		simnet.FaultEvent{Kind: simnet.FaultDrop, Src: -1, Dst: -1, Seq: 0},
		simnet.FaultEvent{Kind: simnet.FaultCorrupt, Src: -1, Dst: -1, Seq: 1},
		simnet.FaultEvent{Kind: simnet.FaultDuplicate, Src: -1, Dst: -1, Seq: 2},
		simnet.FaultEvent{Kind: simnet.FaultDelay, Src: -1, Dst: -1, Seq: 3, Delay: 2},
		simnet.FaultEvent{Kind: simnet.FaultReorder, Src: -1, Dst: -1, Seq: 4},
		simnet.FaultEvent{Kind: simnet.FaultCrash, Node: crashNode, Cycle: crashCycle},
	)
}

// TestChaosRecoversBitwise is the acceptance test of the fault-tolerance
// stack: under a seeded plan with drops, corruption, duplication, delay,
// reordering AND a node crash mid-run, the distributed solve must recover
// and produce a residual history and final solution bitwise identical to
// the fault-free run.
func TestChaosRecoversBitwise(t *testing.T) {
	const cycles = 10

	ref, err := chaosSolver(t).Run(RunOptions{MaxCycles: cycles})
	if err != nil {
		t.Fatal(err)
	}

	s := chaosSolver(t)
	plan := chaosPlan(1, 5)
	s.Fabric.SetFaultPlan(plan)
	var log bytes.Buffer
	res, err := s.Run(RunOptions{MaxCycles: cycles, CheckpointEvery: 3, Log: &log})
	if err != nil {
		t.Fatalf("chaos run failed: %v\nlog:\n%s", err, log.String())
	}

	if res.Recoveries < 1 {
		t.Errorf("crash never triggered a recovery (log:\n%s)", log.String())
	}
	if n := plan.Unfired(); n != 0 {
		t.Errorf("%d scheduled faults never fired", n)
	}
	st := plan.Stats()
	if st.Drops < 1 || st.Corruptions < 1 || st.Crashes < 1 {
		t.Errorf("fault mix incomplete: %+v", st)
	}
	if s.Fabric.Resends() == 0 {
		t.Error("no message healing took place")
	}

	if len(res.History) != len(ref.History) {
		t.Fatalf("chaos run has %d history entries, fault-free %d", len(res.History), len(ref.History))
	}
	for i := range ref.History {
		if res.History[i] != ref.History[i] {
			t.Fatalf("history[%d] = %v under faults, want %v (bitwise)", i, res.History[i], ref.History[i])
		}
	}
	if len(res.FineSolution) != len(ref.FineSolution) {
		t.Fatal("solution size mismatch")
	}
	for i := range ref.FineSolution {
		if res.FineSolution[i] != ref.FineSolution[i] {
			t.Fatalf("solution vertex %d differs from fault-free run", i)
		}
	}
}

// The same contract must hold in true MIMD mode, where every simulated
// processor heals its own exchanges concurrently.
func TestChaosRecoversBitwiseConcurrent(t *testing.T) {
	const cycles = 8

	ref, err := chaosSolver(t).Run(RunOptions{MaxCycles: cycles, Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}

	s := chaosSolver(t)
	s.Fabric.SetFaultPlan(chaosPlan(2, 4))
	res, err := s.Run(RunOptions{MaxCycles: cycles, Concurrent: true, CheckpointEvery: 2})
	if err != nil {
		t.Fatalf("concurrent chaos run failed: %v", err)
	}
	if res.Recoveries < 1 {
		t.Error("crash never triggered a recovery")
	}
	for i := range ref.History {
		if res.History[i] != ref.History[i] {
			t.Fatalf("history[%d] = %v under faults, want %v", i, res.History[i], ref.History[i])
		}
	}
	for i := range ref.FineSolution {
		if res.FineSolution[i] != ref.FineSolution[i] {
			t.Fatalf("solution vertex %d differs from fault-free run", i)
		}
	}
}

// Crash recovery disabled: the node failure must surface as ErrNodeDown.
func TestCrashWithoutRecoveryFails(t *testing.T) {
	s := chaosSolver(t)
	s.Fabric.SetFaultPlan(simnet.NewFaultPlan(simnet.FaultEvent{Kind: simnet.FaultCrash, Node: 0, Cycle: 2}))
	_, err := s.Run(RunOptions{MaxCycles: 6, CheckpointEvery: 1, MaxRecoveries: -1})
	if !errors.Is(err, simnet.ErrNodeDown) {
		t.Fatalf("run returned %v, want ErrNodeDown", err)
	}
}

// Disk checkpoints: a fresh solver resumed from the saved file must replay
// to the exact state of an uninterrupted run.
func TestRunCheckpointResumeFromDisk(t *testing.T) {
	const cycles, every = 10, 3

	ref, err := chaosSolver(t).Run(RunOptions{MaxCycles: cycles})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "dm.ckpt")
	if _, err := chaosSolver(t).Run(RunOptions{
		MaxCycles: 2 * every, CheckpointEvery: every, CheckpointPath: path,
		Mach: 0.675,
	}); err != nil {
		t.Fatal(err)
	}
	ck, err := meshio.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Cycle != 2*every {
		t.Fatalf("disk checkpoint at cycle %d, want %d", ck.Cycle, 2*every)
	}

	res, err := chaosSolver(t).Run(RunOptions{MaxCycles: cycles, Resume: ck})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != cycles || len(res.History) != len(ref.History) {
		t.Fatalf("resumed run: %d cycles, %d history entries", res.Cycles, len(res.History))
	}
	for i := range ref.History {
		if res.History[i] != ref.History[i] {
			t.Fatalf("history[%d] = %v after resume, want %v (bitwise)", i, res.History[i], ref.History[i])
		}
	}
	for i := range ref.FineSolution {
		if res.FineSolution[i] != ref.FineSolution[i] {
			t.Fatalf("solution vertex %d differs after resume", i)
		}
	}
}

// The divergence watchdog halves the CFL and rewinds; when retries are
// exhausted the run fails with a diagnosable error rather than NaNs.
func TestDivergenceWatchdogBacksOffCFL(t *testing.T) {
	s := chaosSolver(t)
	cfl0 := s.P.CFL
	var log bytes.Buffer
	// A blow-up factor below any realistic residual ratio makes every
	// cycle-1 residual look like a divergence, exercising the rewind path.
	_, err := s.Run(RunOptions{
		MaxCycles: 5, CheckpointEvery: 1, MaxCFLBackoffs: 2,
		BlowupFactor: 1e-6, Log: &log,
	})
	if err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("run returned %v, want divergence error", err)
	}
	if !strings.Contains(log.String(), "CFL") {
		t.Errorf("no CFL backoff logged:\n%s", log.String())
	}
	if want := cfl0 * 0.25; s.P.CFL != want {
		t.Errorf("CFL after two backoffs = %g, want %g", s.P.CFL, want)
	}
}
