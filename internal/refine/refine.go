// Package refine implements the mesh-refinement capability the paper
// points to in Section 2.3 — "since no relation is assumed between the
// various meshes in the multigrid sequence, new finer meshes can be
// introduced by adaptive refinement" — and lists as future work. Uniform
// regular (red) refinement splits every tetrahedron into eight: four
// corner tets plus an interior octahedron cut into four along its shortest
// diagonal. Edge midpoints are shared, so the refined mesh is conforming,
// and every boundary triangle splits into four children that inherit their
// parent's boundary kind. The refined mesh slots directly on top of an
// existing multigrid sequence through the standard (non-nested) transfer
// operators.
package refine

import (
	"fmt"
	"math"

	"eul3d/internal/geom"
	"eul3d/internal/mesh"
)

// midpointTable assigns one new vertex per unique parent edge.
type midpointTable struct {
	ids  map[uint64]int32
	next int32
}

func edgeKey(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

func (t *midpointTable) id(a, b int32) int32 {
	k := edgeKey(a, b)
	if id, ok := t.ids[k]; ok {
		return id
	}
	id := t.next
	t.ids[k] = id
	t.next++
	return id
}

// Uniform returns the regular refinement of m: 8x the tetrahedra, 4x the
// boundary faces, with vertices = parent vertices followed by edge
// midpoints. The output mesh is finished and conforming.
func Uniform(m *mesh.Mesh) (*mesh.Mesh, error) {
	if m.NT() == 0 {
		return nil, fmt.Errorf("refine: empty mesh")
	}
	nv := int32(m.NV())
	mt := &midpointTable{ids: make(map[uint64]int32, 7*m.NV()), next: nv}
	mid := func(a, b int32) geom.Vec3 { return m.X[a].Add(m.X[b]).Scale(0.5) }

	out := &mesh.Mesh{Tets: make([][4]int32, 0, 8*m.NT())}
	for _, tet := range m.Tets {
		a, b, c, d := tet[0], tet[1], tet[2], tet[3]
		ab, ac, ad := mt.id(a, b), mt.id(a, c), mt.id(a, d)
		bc, bd, cd := mt.id(b, c), mt.id(b, d), mt.id(c, d)

		// Four corner tets.
		out.Tets = append(out.Tets,
			[4]int32{a, ab, ac, ad},
			[4]int32{ab, b, bc, bd},
			[4]int32{ac, bc, c, cd},
			[4]int32{ad, bd, cd, d},
		)

		// Interior octahedron: cut along its shortest diagonal. For a
		// diagonal (m1,m2) the other four midpoints form an equatorial
		// 4-cycle (e1,e2,e3,e4); the cut yields tets (m1,m2,ei,ei+1).
		dAB := mid(a, b).Sub(mid(c, d)).Norm()
		dAC := mid(a, c).Sub(mid(b, d)).Norm()
		dAD := mid(a, d).Sub(mid(b, c)).Norm()
		var m1, m2 int32
		var eq [4]int32
		switch {
		case dAB <= dAC && dAB <= dAD:
			m1, m2, eq = ab, cd, [4]int32{ac, ad, bd, bc}
		case dAC <= dAB && dAC <= dAD:
			m1, m2, eq = ac, bd, [4]int32{ab, ad, cd, bc}
		default:
			m1, m2, eq = ad, bc, [4]int32{ab, ac, cd, bd}
		}
		for k := 0; k < 4; k++ {
			out.Tets = append(out.Tets, [4]int32{m1, m2, eq[k], eq[(k+1)%4]})
		}
	}

	// Coordinates: parents then midpoints.
	out.X = make([]geom.Vec3, mt.next)
	copy(out.X, m.X)
	for k, id := range mt.ids {
		a := int32(k >> 32)
		b := int32(k & 0xffffffff)
		out.X[id] = m.X[a].Add(m.X[b]).Scale(0.5)
	}

	// Orientation repair: the equator ordering fixes the topology but not
	// the sign; flip children with negative volume.
	for ti, tet := range out.Tets {
		if geom.TetVolume(out.X[tet[0]], out.X[tet[1]], out.X[tet[2]], out.X[tet[3]]) < 0 {
			out.Tets[ti][0], out.Tets[ti][1] = out.Tets[ti][1], out.Tets[ti][0]
		}
	}

	// Boundary faces: quarter each triangle, inheriting the kind and the
	// outward orientation.
	out.BFaces = make([]mesh.BFace, 0, 4*len(m.BFaces))
	for _, f := range m.BFaces {
		a, b, c := f.V[0], f.V[1], f.V[2]
		ab, bc, ca := mt.id(a, b), mt.id(b, c), mt.id(c, a)
		for _, child := range [4][3]int32{
			{a, ab, ca},
			{ab, b, bc},
			{ca, bc, c},
			{ab, bc, ca},
		} {
			out.BFaces = append(out.BFaces, mesh.BFace{V: child, Kind: f.Kind})
		}
	}

	if err := out.Finish(); err != nil {
		return nil, fmt.Errorf("refine: %w", err)
	}
	return out, nil
}

// QualityStats summarizes tetrahedron shape quality.
type QualityStats struct {
	Min, Mean float64
}

// Quality computes shape-quality statistics using the volume-to-edge
// measure q = 6*sqrt(2)*V / l_rms^3, which equals 1 for the regular
// tetrahedron and approaches 0 for slivers. Regular refinement must not
// degrade the minimum quality by more than a bounded factor.
func Quality(m *mesh.Mesh) QualityStats {
	norm := 6 * math.Sqrt2
	stats := QualityStats{Min: math.Inf(1)}
	for _, tet := range m.Tets {
		a, b, c, d := m.X[tet[0]], m.X[tet[1]], m.X[tet[2]], m.X[tet[3]]
		v := math.Abs(geom.TetVolume(a, b, c, d))
		l2 := a.Sub(b).Dot(a.Sub(b)) + a.Sub(c).Dot(a.Sub(c)) + a.Sub(d).Dot(a.Sub(d)) +
			b.Sub(c).Dot(b.Sub(c)) + b.Sub(d).Dot(b.Sub(d)) + c.Sub(d).Dot(c.Sub(d))
		lrms := math.Sqrt(l2 / 6)
		q := norm * v / (lrms * lrms * lrms)
		if q < stats.Min {
			stats.Min = q
		}
		stats.Mean += q
	}
	if n := len(m.Tets); n > 0 {
		stats.Mean /= float64(n)
	} else {
		stats.Min = 0
	}
	return stats
}
