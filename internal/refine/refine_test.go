package refine

import (
	"math"
	"testing"

	"eul3d/internal/euler"
	"eul3d/internal/geom"
	"eul3d/internal/mesh"
	"eul3d/internal/meshgen"
	"eul3d/internal/multigrid"
)

func parent(t *testing.T) *mesh.Mesh {
	t.Helper()
	m, err := meshgen.Channel(meshgen.DefaultChannel(8, 5, 4, 17))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestUniformCounts(t *testing.T) {
	m := parent(t)
	r, err := Uniform(m)
	if err != nil {
		t.Fatal(err)
	}
	if r.NT() != 8*m.NT() {
		t.Errorf("tets: %d, want %d", r.NT(), 8*m.NT())
	}
	if r.NV() != m.NV()+m.NE() {
		t.Errorf("vertices: %d, want %d", r.NV(), m.NV()+m.NE())
	}
	if len(r.BFaces) != 4*len(m.BFaces) {
		t.Errorf("bfaces: %d, want %d", len(r.BFaces), 4*len(m.BFaces))
	}
}

func TestUniformConservesVolume(t *testing.T) {
	m := parent(t)
	r, err := Uniform(m)
	if err != nil {
		t.Fatal(err)
	}
	volOf := func(mm *mesh.Mesh) float64 {
		s := 0.0
		for _, v := range mm.Vol {
			s += v
		}
		return s
	}
	vp, vr := volOf(m), volOf(r)
	if math.Abs(vp-vr) > 1e-10*vp {
		t.Errorf("volume not conserved: %g vs %g", vp, vr)
	}
}

func TestUniformConforming(t *testing.T) {
	// The dual-cell closure check fails on non-conforming meshes or wrong
	// boundary orientation, so Validate is the conformity test.
	m := parent(t)
	r, err := Uniform(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestUniformPreservesBoundaryKinds(t *testing.T) {
	m := parent(t)
	r, err := Uniform(m)
	if err != nil {
		t.Fatal(err)
	}
	counts := func(mm *mesh.Mesh) map[mesh.BCKind]int {
		c := map[mesh.BCKind]int{}
		for _, f := range mm.BFaces {
			c[f.Kind]++
		}
		return c
	}
	cp, cr := counts(m), counts(r)
	for k, n := range cp {
		if cr[k] != 4*n {
			t.Errorf("kind %v: %d children, want %d", k, cr[k], 4*n)
		}
	}
}

func TestUniformQualityBounded(t *testing.T) {
	m := parent(t)
	qp := Quality(m)
	r, err := Uniform(m)
	if err != nil {
		t.Fatal(err)
	}
	qr := Quality(r)
	if qr.Min <= 0 {
		t.Fatalf("refined mesh contains degenerate tets: min quality %g", qr.Min)
	}
	// Regular refinement cannot collapse quality arbitrarily; allow a
	// factor-3 degradation margin over the parent.
	if qr.Min < qp.Min/3 {
		t.Errorf("quality collapsed: parent min %.3f, refined min %.3f", qp.Min, qr.Min)
	}
	t.Logf("quality: parent min/mean %.3f/%.3f -> refined %.3f/%.3f", qp.Min, qp.Mean, qr.Min, qr.Mean)
}

func TestRefinedMeshAsNewFinestLevel(t *testing.T) {
	// Section 2.3's scenario: introduce a refined mesh on top of an
	// existing sequence and run multigrid with the standard non-nested
	// transfers.
	spec := meshgen.DefaultChannel(6, 4, 3, 17)
	coarse, err := meshgen.Channel(spec)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Uniform(coarse)
	if err != nil {
		t.Fatal(err)
	}
	mg, err := multigrid.New([]*mesh.Mesh{fine, coarse}, euler.DefaultParams(0.5, 0), 2)
	if err != nil {
		t.Fatal(err)
	}
	var norm float64
	for c := 0; c < 5; c++ {
		norm = mg.Cycle()
	}
	if math.IsNaN(norm) || math.IsInf(norm, 0) {
		t.Fatalf("solver diverged on refined sequence: %v", norm)
	}
}

func TestUniformEmptyMesh(t *testing.T) {
	if _, err := Uniform(&mesh.Mesh{}); err == nil {
		t.Error("accepted empty mesh")
	}
}

func TestQualityRegularTet(t *testing.T) {
	// A regular tetrahedron has quality 1 by construction of the measure.
	s := 1 / math.Sqrt2
	m := &mesh.Mesh{
		X: []geom.Vec3{
			{X: 1, Y: 0, Z: -s},
			{X: -1, Y: 0, Z: -s},
			{X: 0, Y: 1, Z: s},
			{X: 0, Y: -1, Z: s},
		},
		Tets: [][4]int32{{0, 1, 2, 3}},
	}
	q := Quality(m)
	if math.Abs(q.Min-1) > 1e-12 || math.Abs(q.Mean-1) > 1e-12 {
		t.Errorf("regular tet quality = %+v", q)
	}
	if e := Quality(&mesh.Mesh{}); e.Min != 0 {
		t.Errorf("empty mesh quality = %+v", e)
	}
}

// TestGridConvergenceEntropyError is the classical accuracy validation:
// subcritical inviscid flow is isentropic, so any deviation of p/rho^gamma
// from its freestream value is discretization error. One round of regular
// refinement must shrink the L2 entropy error substantially (the scheme is
// nominally second order; boundary lumping reduces the observed rate).
func TestGridConvergenceEntropyError(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	spec := meshgen.DefaultChannel(12, 8, 6, 3)
	spec.BumpHeight = 0.03 // gentle, well-resolved, subcritical at M=0.5
	coarse, err := meshgen.Channel(spec)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Uniform(coarse)
	if err != nil {
		t.Fatal(err)
	}
	p := euler.DefaultParams(0.5, 0)
	g := p.Gas
	sFree := g.Pressure(p.Freestream) // rho=1 so s = p/rho^gamma = p

	// Measure away from the walls: the weak wall boundary condition
	// produces a first-order entropy layer (a known property of
	// vertex-centered central schemes) that would mask the interior
	// order of accuracy.
	entropyErr := func(m *mesh.Mesh, w []euler.State) float64 {
		num, den := 0.0, 0.0
		for i := range w {
			x := m.X[i]
			if x.Y < 0.3 || x.Y > 0.85 || x.X < 0.5 || x.X > 2.5 {
				continue
			}
			s := g.Pressure(w[i]) / math.Pow(w[i][0], g.Gamma)
			d := s - sFree
			num += d * d * m.Vol[i]
			den += m.Vol[i]
		}
		return math.Sqrt(num / den)
	}

	solve := func(meshes []*mesh.Mesh) []euler.State {
		mg, err := multigrid.New(meshes, p, 2)
		if err != nil {
			t.Fatal(err)
		}
		var first, norm float64
		for c := 0; c < 600; c++ {
			norm = mg.Cycle()
			if c == 0 {
				first = norm
			}
			if norm < 1e-8*first {
				break
			}
		}
		if norm > 1e-6*first {
			t.Fatalf("solve did not converge: %g of %g", norm, first)
		}
		return mg.Fine().W
	}

	coarseErr := entropyErr(coarse, solve([]*mesh.Mesh{coarse}))
	fineErr := entropyErr(fine, solve([]*mesh.Mesh{fine, coarse}))
	order := math.Log2(coarseErr / fineErr)
	t.Logf("entropy error: h %.3e -> h/2 %.3e (observed order %.2f)", coarseErr, fineErr, order)
	if !(fineErr < coarseErr/1.7) {
		t.Errorf("refinement did not reduce entropy error enough: %g -> %g", coarseErr, fineErr)
	}
}
