package refine

import (
	"fmt"

	"eul3d/internal/geom"
	"eul3d/internal/mesh"
)

// Selective refinement with a red-green conformity closure.
//
// Marked tetrahedra are refined regularly (red, 1:8, identical to Uniform).
// Unmarked tetrahedra whose edges were split by red neighbors are cut by a
// green template chosen from their global split-edge pattern; patterns no
// green template covers promote the tet to red, and the promotion iterates
// to a fixpoint (the split set only grows, so it terminates). Every face's
// triangulation is a function of that face's own split edges plus one
// deterministic diagonal rule, so the two tets sharing a face always agree
// and the output mesh is conforming — mesh.Finish builds a closed dual.
//
// The alternative closure — re-refining marked neighbors red until
// conformity — was rejected: with no irregular templates a single red tet
// forces its edge-neighbors red, and on the compact meshes this solver
// targets the cascade degenerates into uniform refinement.

// localEdges orders a tet's six edges as vertex-index pairs; bit e of a
// pattern mask below refers to localEdges[e].
var localEdges = [6][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}

// localFaces lists each tet face with the bitmask of its three edges.
var localFaces = [4]struct {
	v    [3]int
	mask uint8
}{
	{[3]int{0, 1, 2}, 1<<0 | 1<<1 | 1<<3},
	{[3]int{0, 1, 3}, 1<<0 | 1<<2 | 1<<4},
	{[3]int{0, 2, 3}, 1<<1 | 1<<2 | 1<<5},
	{[3]int{1, 2, 3}, 1<<3 | 1<<4 | 1<<5},
}

// greenOK marks the split-edge patterns the green templates cover: no split
// edges, one split edge, two split edges (opposite or adjacent), or the
// three edges of one face. Everything else promotes to red.
var greenOK = func() (ok [64]bool) {
	ok[0] = true
	for e := 0; e < 6; e++ {
		ok[1<<e] = true
	}
	for a := 0; a < 6; a++ {
		for b := a + 1; b < 6; b++ {
			ok[1<<a|1<<b] = true
		}
	}
	for _, f := range localFaces {
		ok[f.mask] = true
	}
	return
}()

// Refined is the result of a Selective call: the conforming refined mesh
// plus the provenance needed to transfer a solution onto it. Vertices
// [0,NVOld) are the parent vertices under their old indices; vertex
// NVOld+k is the midpoint of parent edge MidParents[k].
type Refined struct {
	Mesh       *mesh.Mesh
	NVOld      int
	MidParents [][2]int32

	Red    int // tets refined 1:8 (marked plus closure promotions)
	Green  int // tets cut by a green template (1:2 .. 1:4)
	Copied int // tets carried over unchanged
}

// Selective refines the marked tets of m red and closes the mesh back to
// conformity with green templates, returning the refined mesh (finished)
// and the transfer provenance. marked must have one entry per tet. With
// nothing marked the result is a plain copy.
func Selective(m *mesh.Mesh, marked []bool) (*Refined, error) {
	if m == nil || m.NT() == 0 {
		return nil, fmt.Errorf("refine: empty mesh")
	}
	if len(marked) != m.NT() {
		return nil, fmt.Errorf("refine: %d marks for %d tets", len(marked), m.NT())
	}

	nv := int32(m.NV())
	red := make([]bool, m.NT())
	split := make(map[uint64]bool)
	splitAll := func(tet [4]int32) {
		for _, le := range localEdges {
			split[edgeKey(tet[le[0]], tet[le[1]])] = true
		}
	}
	for t, mk := range marked {
		if mk {
			red[t] = true
			splitAll(m.Tets[t])
		}
	}
	pattern := func(tet [4]int32) uint8 {
		var p uint8
		for e, le := range localEdges {
			if split[edgeKey(tet[le[0]], tet[le[1]])] {
				p |= 1 << e
			}
		}
		return p
	}

	// Closure: promote tets whose pattern no green template covers. Each
	// promotion only adds split edges, so the sweep reaches a fixpoint.
	for changed := true; changed; {
		changed = false
		for t, tet := range m.Tets {
			if red[t] || greenOK[pattern(tet)] {
				continue
			}
			red[t] = true
			splitAll(tet)
			changed = true
		}
	}

	// Midpoint ids in deterministic first-encounter order over the tets.
	mt := &midpointTable{ids: make(map[uint64]int32, len(split)), next: nv}
	for _, tet := range m.Tets {
		for _, le := range localEdges {
			a, b := tet[le[0]], tet[le[1]]
			if split[edgeKey(a, b)] {
				mt.id(a, b)
			}
		}
	}

	r := &Refined{NVOld: int(nv)}
	out := &mesh.Mesh{Tets: make([][4]int32, 0, m.NT()+8*len(split)/6)}
	for t, tet := range m.Tets {
		if red[t] {
			appendRedTets(out, m, mt, tet)
			r.Red++
			continue
		}
		switch p := pattern(tet); {
		case p == 0:
			out.Tets = append(out.Tets, tet)
			r.Copied++
		default:
			appendGreenTets(out, mt, tet, p)
			r.Green++
		}
	}

	// Coordinates: parents then midpoints (indexed writes, so the map
	// iteration order is immaterial), plus the transfer provenance.
	out.X = make([]geom.Vec3, mt.next)
	copy(out.X, m.X)
	r.MidParents = make([][2]int32, mt.next-nv)
	for k, id := range mt.ids {
		a := int32(k >> 32)
		b := int32(k & 0xffffffff)
		out.X[id] = m.X[a].Add(m.X[b]).Scale(0.5)
		r.MidParents[id-nv] = [2]int32{a, b}
	}

	// Orientation repair, exactly as in Uniform: the templates fix the
	// topology, the sign is repaired per child.
	for ti, tet := range out.Tets {
		if geom.TetVolume(out.X[tet[0]], out.X[tet[1]], out.X[tet[2]], out.X[tet[3]]) < 0 {
			out.Tets[ti][0], out.Tets[ti][1] = out.Tets[ti][1], out.Tets[ti][0]
		}
	}

	out.BFaces = make([]mesh.BFace, 0, len(m.BFaces))
	for _, f := range m.BFaces {
		appendBFaceChildren(out, mt, split, f)
	}

	if err := out.Finish(); err != nil {
		return nil, fmt.Errorf("refine: %w", err)
	}
	r.Mesh = out
	return r, nil
}

// appendRedTets emits the regular 1:8 template (Uniform's): four corner
// tets plus the interior octahedron cut along its shortest diagonal.
func appendRedTets(out *mesh.Mesh, m *mesh.Mesh, mt *midpointTable, tet [4]int32) {
	a, b, c, d := tet[0], tet[1], tet[2], tet[3]
	ab, ac, ad := mt.id(a, b), mt.id(a, c), mt.id(a, d)
	bc, bd, cd := mt.id(b, c), mt.id(b, d), mt.id(c, d)
	out.Tets = append(out.Tets,
		[4]int32{a, ab, ac, ad},
		[4]int32{ab, b, bc, bd},
		[4]int32{ac, bc, c, cd},
		[4]int32{ad, bd, cd, d},
	)
	mid := func(p, q int32) geom.Vec3 { return m.X[p].Add(m.X[q]).Scale(0.5) }
	dAB := mid(a, b).Sub(mid(c, d)).Norm()
	dAC := mid(a, c).Sub(mid(b, d)).Norm()
	dAD := mid(a, d).Sub(mid(b, c)).Norm()
	var m1, m2 int32
	var eq [4]int32
	switch {
	case dAB <= dAC && dAB <= dAD:
		m1, m2, eq = ab, cd, [4]int32{ac, ad, bd, bc}
	case dAC <= dAB && dAC <= dAD:
		m1, m2, eq = ac, bd, [4]int32{ab, ad, cd, bc}
	default:
		m1, m2, eq = ad, bc, [4]int32{ab, ac, cd, bd}
	}
	for k := 0; k < 4; k++ {
		out.Tets = append(out.Tets, [4]int32{m1, m2, eq[k], eq[(k+1)%4]})
	}
}

// appendGreenTets emits the green template for a tet whose split-edge
// pattern p is covered by greenOK (and nonzero).
func appendGreenTets(out *mesh.Mesh, mt *midpointTable, tet [4]int32, p uint8) {
	switch popcount6(p) {
	case 1:
		// Bisect across the one split edge.
		e := firstBit(p)
		a, b := tet[localEdges[e][0]], tet[localEdges[e][1]]
		mab := mt.id(a, b)
		c1, c2 := tet, tet
		c1[localEdges[e][1]] = mab // a side keeps a
		c2[localEdges[e][0]] = mab // b side keeps b
		out.Tets = append(out.Tets, c1, c2)
	case 2:
		e1 := firstBit(p)
		e2 := firstBit(p &^ (1 << e1))
		l1, l2 := localEdges[e1], localEdges[e2]
		if l1[0] != l2[0] && l1[0] != l2[1] && l1[1] != l2[0] && l1[1] != l2[1] {
			// Opposite edges (pq) and (rs): two successive bisections.
			pq0, pq1 := tet[l1[0]], tet[l1[1]]
			rs0, rs1 := tet[l2[0]], tet[l2[1]]
			mpq, mrs := mt.id(pq0, pq1), mt.id(rs0, rs1)
			out.Tets = append(out.Tets,
				[4]int32{pq0, mpq, rs0, mrs},
				[4]int32{pq0, mpq, mrs, rs1},
				[4]int32{mpq, pq1, rs0, mrs},
				[4]int32{mpq, pq1, mrs, rs1},
			)
			return
		}
		// Adjacent edges (u,v) and (u,w): corner tet at u plus the quad
		// pyramid under apex z, its diagonal fixed by quadDiag.
		u, v, w := sharedVertex(tet, l1, l2)
		z := tet[0] + tet[1] + tet[2] + tet[3] - u - v - w
		appendQuadCone(out, mt, u, v, w, z)
	case 3:
		// Three edges of one face (u,v,w), apex z: quarter the face and
		// cone each piece to z.
		var fv [3]int32
		for _, f := range localFaces {
			if f.mask == p {
				fv = [3]int32{tet[f.v[0]], tet[f.v[1]], tet[f.v[2]]}
			}
		}
		u, v, w := fv[0], fv[1], fv[2]
		z := tet[0] + tet[1] + tet[2] + tet[3] - u - v - w
		muv, muw, mvw := mt.id(u, v), mt.id(u, w), mt.id(v, w)
		out.Tets = append(out.Tets,
			[4]int32{u, muv, muw, z},
			[4]int32{muv, v, mvw, z},
			[4]int32{muw, mvw, w, z},
			[4]int32{muv, mvw, muw, z},
		)
	}
}

// sharedVertex resolves two adjacent local edges of tet into (u, v, w):
// the shared vertex and the two free endpoints.
func sharedVertex(tet [4]int32, l1, l2 [2]int) (u, v, w int32) {
	switch {
	case l1[0] == l2[0]:
		return tet[l1[0]], tet[l1[1]], tet[l2[1]]
	case l1[0] == l2[1]:
		return tet[l1[0]], tet[l1[1]], tet[l2[0]]
	case l1[1] == l2[0]:
		return tet[l1[1]], tet[l1[0]], tet[l2[1]]
	default:
		return tet[l1[1]], tet[l1[0]], tet[l2[0]]
	}
}

// quadDiag fixes the diagonal of the quad (m_uv, v, w, m_uw) left when a
// face (u,v,w) has exactly its two u-edges split. The rule — cut from the
// midpoint of (u, min(v,w)) to max(v,w) — depends only on global vertex
// indices, so the two tets (or the tet and the boundary face) sharing the
// face triangulate it identically.
func quadDiag(u, v, w int32) (vmin, vmax int32) {
	if v < w {
		return v, w
	}
	return w, v
}

// appendQuadCone emits the 2-adjacent-edge template: corner tet at u plus
// the quad pyramid under z, split by the quadDiag rule.
func appendQuadCone(out *mesh.Mesh, mt *midpointTable, u, v, w, z int32) {
	muv, muw := mt.id(u, v), mt.id(u, w)
	out.Tets = append(out.Tets, [4]int32{u, muv, muw, z})
	vmin, vmax := quadDiag(u, v, w)
	mmin, mmax := mt.id(u, vmin), mt.id(u, vmax)
	out.Tets = append(out.Tets,
		[4]int32{mmin, vmin, vmax, z},
		[4]int32{mmin, vmax, mmax, z},
	)
}

// appendBFaceChildren splits one boundary triangle by its global split
// edges, preserving the parent's winding (Finish derives the outward
// normal from it) and inheriting the boundary kind.
func appendBFaceChildren(out *mesh.Mesh, mt *midpointTable, split map[uint64]bool, f mesh.BFace) {
	a, b, c := f.V[0], f.V[1], f.V[2]
	sab := split[edgeKey(a, b)]
	sbc := split[edgeKey(b, c)]
	sca := split[edgeKey(c, a)]
	emit := func(tris ...[3]int32) {
		for _, tv := range tris {
			out.BFaces = append(out.BFaces, mesh.BFace{V: tv, Kind: f.Kind})
		}
	}
	ns := 0
	for _, s := range []bool{sab, sbc, sca} {
		if s {
			ns++
		}
	}
	switch ns {
	case 0:
		emit(f.V)
	case 1:
		// Rotate so the split edge is (a,b); bisect it.
		switch {
		case sbc:
			a, b, c = b, c, a
		case sca:
			a, b, c = c, a, b
		}
		m := mt.id(a, b)
		emit([3]int32{a, m, c}, [3]int32{m, b, c})
	case 2:
		// Rotate so the unsplit edge is (b,c); u=a is the shared vertex.
		switch {
		case !sab:
			a, b, c = c, a, b
		case !sca:
			a, b, c = b, c, a
		}
		mab, mac := mt.id(a, b), mt.id(a, c)
		emit([3]int32{a, mab, mac})
		if vmin, _ := quadDiag(a, b, c); vmin == b {
			// Diagonal (m_ab, c) on the quad (mab, b, c, mac).
			emit([3]int32{mab, b, c}, [3]int32{mab, c, mac})
		} else {
			// Diagonal (b, m_ac).
			emit([3]int32{mab, b, mac}, [3]int32{b, c, mac})
		}
	case 3:
		mab, mbc, mca := mt.id(a, b), mt.id(b, c), mt.id(c, a)
		emit([3]int32{a, mab, mca}, [3]int32{mab, b, mbc},
			[3]int32{mca, mbc, c}, [3]int32{mab, mbc, mca})
	}
}

func popcount6(p uint8) int {
	n := 0
	for ; p != 0; p &= p - 1 {
		n++
	}
	return n
}

func firstBit(p uint8) int {
	for e := 0; e < 6; e++ {
		if p&(1<<e) != 0 {
			return e
		}
	}
	return -1
}
