package refine

import (
	"math"
	"math/rand"
	"testing"

	"eul3d/internal/geom"
	"eul3d/internal/mesh"
	"eul3d/internal/meshgen"
)

func channelMesh(t *testing.T, nx, ny, nz int) *mesh.Mesh {
	t.Helper()
	m, err := meshgen.Channel(meshgen.ChannelSpec{NX: nx, NY: ny, NZ: nz, LX: 3, LY: 1, LZ: 1})
	if err != nil {
		t.Fatalf("meshgen: %v", err)
	}
	return m
}

func totalVolume(m *mesh.Mesh) float64 {
	v := 0.0
	for _, tet := range m.Tets {
		v += math.Abs(geom.TetVolume(m.X[tet[0]], m.X[tet[1]], m.X[tet[2]], m.X[tet[3]]))
	}
	return v
}

// faceCounts tallies how many tets share each (sorted) vertex triple.
func faceCounts(m *mesh.Mesh) map[[3]int32]int {
	cnt := make(map[[3]int32]int)
	for _, tet := range m.Tets {
		for _, f := range [4][3]int{{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}} {
			key := [3]int32{tet[f[0]], tet[f[1]], tet[f[2]]}
			if key[0] > key[1] {
				key[0], key[1] = key[1], key[0]
			}
			if key[1] > key[2] {
				key[1], key[2] = key[2], key[1]
			}
			if key[0] > key[1] {
				key[0], key[1] = key[1], key[0]
			}
			cnt[key]++
		}
	}
	return cnt
}

// checkRefined asserts the structural properties selective refinement must
// preserve: a valid closed dual, every face shared by at most two tets with
// boundary faces claimed by exactly one, total volume, and boundary-kind
// inheritance on the children.
func checkRefined(t *testing.T, m *mesh.Mesh, r *Refined) {
	t.Helper()
	if err := r.Mesh.Validate(1e-9); err != nil {
		t.Fatalf("refined mesh invalid: %v", err)
	}
	if got, want := totalVolume(r.Mesh), totalVolume(m); math.Abs(got-want) > 1e-12*math.Abs(want) {
		t.Fatalf("total volume changed: %.17g -> %.17g", want, got)
	}
	cnt := faceCounts(r.Mesh)
	bf := make(map[[3]int32]mesh.BCKind, len(r.Mesh.BFaces))
	for _, f := range r.Mesh.BFaces {
		key := [3]int32{f.V[0], f.V[1], f.V[2]}
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		if key[1] > key[2] {
			key[1], key[2] = key[2], key[1]
		}
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		bf[key] = f.Kind
	}
	for key, n := range cnt {
		_, isB := bf[key]
		switch {
		case n > 2:
			t.Fatalf("face %v shared by %d tets", key, n)
		case n == 2 && isB:
			t.Fatalf("boundary face %v shared by two tets", key)
		case n == 1 && !isB:
			t.Fatalf("interior face %v has one tet and no boundary record (hanging node)", key)
		}
	}
	for key := range bf {
		if cnt[key] != 1 {
			t.Fatalf("boundary face %v belongs to %d tets", key, cnt[key])
		}
	}
	// Children on the original boundary planes inherit the parent kind:
	// every refined boundary face must sit on a plane some parent face of
	// the same kind spanned. Cheap proxy: kinds present must match.
	kinds := func(fs []mesh.BFace) map[mesh.BCKind]bool {
		ks := make(map[mesh.BCKind]bool)
		for _, f := range fs {
			ks[f.Kind] = true
		}
		return ks
	}
	pk, ck := kinds(m.BFaces), kinds(r.Mesh.BFaces)
	for k := range pk {
		if !ck[k] {
			t.Fatalf("boundary kind %v lost by refinement", k)
		}
	}
	for k := range ck {
		if !pk[k] {
			t.Fatalf("boundary kind %v invented by refinement", k)
		}
	}
}

func TestSelectiveSingleMark(t *testing.T) {
	m := channelMesh(t, 4, 3, 2)
	marked := make([]bool, m.NT())
	marked[7] = true
	r, err := Selective(m, marked)
	if err != nil {
		t.Fatalf("Selective: %v", err)
	}
	if r.Red < 1 {
		t.Fatalf("no red tets for one mark")
	}
	if r.Green == 0 {
		t.Fatalf("no green closure around a red tet")
	}
	if r.Mesh.NT() <= m.NT() {
		t.Fatalf("refinement did not grow the mesh: %d -> %d", m.NT(), r.Mesh.NT())
	}
	checkRefined(t, m, r)
}

func TestSelectiveNothingMarked(t *testing.T) {
	m := channelMesh(t, 3, 2, 2)
	r, err := Selective(m, make([]bool, m.NT()))
	if err != nil {
		t.Fatalf("Selective: %v", err)
	}
	if r.Copied != m.NT() || r.Red != 0 || r.Green != 0 {
		t.Fatalf("expected pure copy, got red=%d green=%d copied=%d", r.Red, r.Green, r.Copied)
	}
	if r.Mesh.NT() != m.NT() || r.Mesh.NV() != m.NV() {
		t.Fatalf("copy changed mesh size")
	}
	checkRefined(t, m, r)
}

func TestSelectiveAllMarkedMatchesUniform(t *testing.T) {
	m := channelMesh(t, 3, 2, 2)
	marked := make([]bool, m.NT())
	for i := range marked {
		marked[i] = true
	}
	r, err := Selective(m, marked)
	if err != nil {
		t.Fatalf("Selective: %v", err)
	}
	u, err := Uniform(m)
	if err != nil {
		t.Fatalf("Uniform: %v", err)
	}
	if r.Mesh.NT() != u.NT() || r.Mesh.NV() != u.NV() || len(r.Mesh.BFaces) != len(u.BFaces) {
		t.Fatalf("all-marked Selective (%d tets, %d verts) != Uniform (%d tets, %d verts)",
			r.Mesh.NT(), r.Mesh.NV(), u.NT(), u.NV())
	}
	checkRefined(t, m, r)
}

// TestSelectiveRandomMarksProperty is the conformity/volume property test:
// random mark sets on several mesh shapes must always produce a valid,
// volume-preserving, conforming mesh.
func TestSelectiveRandomMarksProperty(t *testing.T) {
	shapes := [][3]int{{4, 2, 2}, {3, 3, 3}, {6, 2, 1}}
	rng := rand.New(rand.NewSource(42))
	for _, sh := range shapes {
		m := channelMesh(t, sh[0], sh[1], sh[2])
		for trial := 0; trial < 8; trial++ {
			marked := make([]bool, m.NT())
			frac := 0.02 + 0.3*rng.Float64()
			for i := range marked {
				marked[i] = rng.Float64() < frac
			}
			r, err := Selective(m, marked)
			if err != nil {
				t.Fatalf("shape %v trial %d: %v", sh, trial, err)
			}
			checkRefined(t, m, r)
			if got := len(r.MidParents) + r.NVOld; got != r.Mesh.NV() {
				t.Fatalf("provenance covers %d vertices, mesh has %d", got, r.Mesh.NV())
			}
			for k, pr := range r.MidParents {
				a, b := pr[0], pr[1]
				if a < 0 || b < 0 || int(a) >= r.NVOld || int(b) >= r.NVOld || a == b {
					t.Fatalf("midpoint %d has bad parents (%d,%d)", k, a, b)
				}
				want := m.X[a].Add(m.X[b]).Scale(0.5)
				if got := r.Mesh.X[r.NVOld+k]; got != want {
					t.Fatalf("midpoint %d not at parent-edge midpoint", k)
				}
			}
		}
	}
}

func TestSelectiveDeterministic(t *testing.T) {
	m := channelMesh(t, 4, 3, 2)
	marked := make([]bool, m.NT())
	for i := 0; i < len(marked); i += 5 {
		marked[i] = true
	}
	r1, err := Selective(m, marked)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Selective(m, marked)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Mesh.NT() != r2.Mesh.NT() || r1.Mesh.NV() != r2.Mesh.NV() {
		t.Fatalf("nondeterministic sizes")
	}
	for i := range r1.Mesh.Tets {
		if r1.Mesh.Tets[i] != r2.Mesh.Tets[i] {
			t.Fatalf("tet %d differs between identical calls", i)
		}
	}
	for i := range r1.Mesh.X {
		if r1.Mesh.X[i] != r2.Mesh.X[i] {
			t.Fatalf("vertex %d differs between identical calls", i)
		}
	}
}

func TestSelectiveRejectsDegenerateInputs(t *testing.T) {
	if _, err := Selective(nil, nil); err == nil {
		t.Fatal("nil mesh accepted")
	}
	if _, err := Selective(&mesh.Mesh{}, nil); err == nil {
		t.Fatal("empty mesh accepted")
	}
	m := channelMesh(t, 2, 2, 2)
	if _, err := Selective(m, make([]bool, m.NT()-1)); err == nil {
		t.Fatal("short mark slice accepted")
	}
	if _, err := Selective(m, make([]bool, m.NT()+3)); err == nil {
		t.Fatal("long mark slice accepted")
	}
}

// FuzzMidpointTable fuzzes the midpoint id allocator: ids must be stable,
// symmetric, dense from the base, and distinct per undirected edge.
func FuzzMidpointTable(f *testing.F) {
	f.Add(int32(0), int32(1), int32(2), int32(3))
	f.Add(int32(5), int32(5), int32(0), int32(7))
	f.Add(int32(1<<30), int32(3), int32(-4), int32(2))
	f.Fuzz(func(t *testing.T, a, b, c, d int32) {
		base := int32(100)
		mt := &midpointTable{ids: make(map[uint64]int32), next: base}
		id1 := mt.id(a, b)
		if id2 := mt.id(b, a); id2 != id1 {
			t.Fatalf("id(%d,%d)=%d but id(%d,%d)=%d", a, b, id1, b, a, id2)
		}
		id3 := mt.id(c, d)
		if (edgeKey(a, b) == edgeKey(c, d)) != (id3 == id1) {
			t.Fatalf("distinctness violated: (%d,%d)->%d, (%d,%d)->%d", a, b, id1, c, d, id3)
		}
		if mt.id(a, b) != id1 || mt.id(c, d) != id3 {
			t.Fatalf("ids not stable on re-query")
		}
		if int(mt.next)-int(base) != len(mt.ids) {
			t.Fatalf("allocator skipped ids: next=%d base=%d count=%d", mt.next, base, len(mt.ids))
		}
		for _, id := range []int32{id1, id3} {
			if id < base || id >= mt.next {
				t.Fatalf("id %d outside [%d,%d)", id, base, mt.next)
			}
		}
	})
}
