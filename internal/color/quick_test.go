package color

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickGreedyAlwaysValid colors random multigraphs and verifies the
// no-shared-vertex invariant through Verify.
func TestQuickGreedyAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 2 + rng.Intn(80)
		ne := rng.Intn(200)
		edges := make([][2]int32, 0, ne)
		for k := 0; k < ne; k++ {
			a := int32(rng.Intn(nv))
			b := int32(rng.Intn(nv))
			if a == b {
				continue
			}
			edges = append(edges, [2]int32{a, b})
		}
		c, err := Greedy(nv, edges)
		if err != nil {
			return false
		}
		return Verify(c, nv, edges) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickGreedyFacesAlwaysValid does the same for boundary-face
// colorings.
func TestQuickGreedyFacesAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 3 + rng.Intn(60)
		nf := rng.Intn(120)
		faces := make([][3]int32, 0, nf)
		for k := 0; k < nf; k++ {
			a := int32(rng.Intn(nv))
			b := int32(rng.Intn(nv))
			c := int32(rng.Intn(nv))
			if a == b || b == c || a == c {
				continue
			}
			faces = append(faces, [3]int32{a, b, c})
		}
		c, err := GreedyFaces(nv, faces)
		if err != nil {
			return false
		}
		return VerifyFaces(c, nv, faces) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickColorCountBounded: greedy edge coloring needs at most
// 2*maxDegree - 1 colors.
func TestQuickColorCountBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 2 + rng.Intn(50)
		edges := make([][2]int32, 0)
		seen := map[[2]int32]bool{}
		for k := 0; k < 150; k++ {
			a := int32(rng.Intn(nv))
			b := int32(rng.Intn(nv))
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			if seen[[2]int32{a, b}] {
				continue
			}
			seen[[2]int32{a, b}] = true
			edges = append(edges, [2]int32{a, b})
		}
		deg := make([]int, nv)
		maxDeg := 0
		for _, e := range edges {
			deg[e[0]]++
			deg[e[1]]++
			if deg[e[0]] > maxDeg {
				maxDeg = deg[e[0]]
			}
			if deg[e[1]] > maxDeg {
				maxDeg = deg[e[1]]
			}
		}
		c, err := Greedy(nv, edges)
		if err != nil {
			return false
		}
		if len(edges) == 0 {
			return c.NumColors() == 0
		}
		return c.NumColors() <= 2*maxDeg-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
