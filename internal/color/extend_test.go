package color

import (
	"testing"

	"eul3d/internal/meshgen"
	"eul3d/internal/refine"
)

// refinedPair builds a channel mesh, colors it, selectively refines a
// deterministic mark set, and returns (old mesh coloring, old edges, new
// mesh) for extension tests.
func refinedPair(t *testing.T) (*Coloring, [][2]int32, *refine.Refined) {
	t.Helper()
	m, err := meshgen.Channel(meshgen.ChannelSpec{NX: 5, NY: 3, NZ: 2, LX: 3, LY: 1, LZ: 1})
	if err != nil {
		t.Fatal(err)
	}
	prev, err := Greedy(m.NV(), m.Edges)
	if err != nil {
		t.Fatal(err)
	}
	marked := make([]bool, m.NT())
	for i := 0; i < len(marked); i += 7 {
		marked[i] = true
	}
	r, err := refine.Selective(m, marked)
	if err != nil {
		t.Fatal(err)
	}
	return prev, m.Edges, r
}

func TestExtendGreedyValidAndReuses(t *testing.T) {
	prev, prevEdges, r := refinedPair(t)
	m := r.Mesh
	c, reused, err := ExtendGreedy(m.NV(), m.Edges, prev, prevEdges)
	if err != nil {
		t.Fatalf("ExtendGreedy: %v", err)
	}
	if err := Verify(c, m.NV(), m.Edges); err != nil {
		t.Fatalf("extended coloring invalid: %v", err)
	}
	if reused == 0 {
		t.Fatal("no edges kept their previous color")
	}
	if reused > len(m.Edges) {
		t.Fatalf("reused %d of %d edges", reused, len(m.Edges))
	}
	// Surviving edges (both endpoints below the old vertex count) must all
	// have been reused: they existed in the parent mesh.
	surviving := 0
	for _, e := range m.Edges {
		if int(e[0]) < r.NVOld && int(e[1]) < r.NVOld {
			surviving++
		}
	}
	if reused != surviving {
		t.Fatalf("reused %d colors but %d edges survive", reused, surviving)
	}
}

func TestExtendGreedyKeepsOldColors(t *testing.T) {
	prev, prevEdges, r := refinedPair(t)
	m := r.Mesh
	c, _, err := ExtendGreedy(m.NV(), m.Edges, prev, prevEdges)
	if err != nil {
		t.Fatal(err)
	}
	oldColor := make(map[[2]int32]int32)
	for g := 0; g < prev.NumColors(); g++ {
		for _, ei := range prev.Group(g) {
			e := prevEdges[ei]
			if e[0] > e[1] {
				e[0], e[1] = e[1], e[0]
			}
			oldColor[e] = int32(g)
		}
	}
	// Color indices may be compacted, but the partition must refine the old
	// one on survivors: two surviving edges share a new color iff they
	// shared an old one is too strong (compaction is monotone), so check
	// the monotone renumbering directly.
	newOfOld := make(map[int32]int32)
	for g := 0; g < c.NumColors(); g++ {
		for _, ei := range c.Group(g) {
			e := m.Edges[ei]
			if e[0] > e[1] {
				e[0], e[1] = e[1], e[0]
			}
			oc, ok := oldColor[e]
			if !ok {
				continue
			}
			if prevG, seen := newOfOld[oc]; seen && prevG != int32(g) {
				t.Fatalf("old color %d split across new colors %d and %d", oc, prevG, g)
			}
			newOfOld[oc] = int32(g)
		}
	}
	if len(newOfOld) == 0 {
		t.Fatal("no surviving edges found")
	}
}

func TestExtendGreedyDeterministic(t *testing.T) {
	prev, prevEdges, r := refinedPair(t)
	m := r.Mesh
	c1, r1, err := ExtendGreedy(m.NV(), m.Edges, prev, prevEdges)
	if err != nil {
		t.Fatal(err)
	}
	c2, r2, err := ExtendGreedy(m.NV(), m.Edges, prev, prevEdges)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("reuse counts differ: %d vs %d", r1, r2)
	}
	if len(c1.Order) != len(c2.Order) || len(c1.Start) != len(c2.Start) {
		t.Fatal("coloring shapes differ between identical calls")
	}
	for i := range c1.Order {
		if c1.Order[i] != c2.Order[i] {
			t.Fatalf("order[%d] differs", i)
		}
	}
	for i := range c1.Start {
		if c1.Start[i] != c2.Start[i] {
			t.Fatalf("start[%d] differs", i)
		}
	}
}

func TestExtendGreedyNilPrevFallsBack(t *testing.T) {
	m, err := meshgen.Channel(meshgen.ChannelSpec{NX: 3, NY: 2, NZ: 2, LX: 3, LY: 1, LZ: 1})
	if err != nil {
		t.Fatal(err)
	}
	c, reused, err := ExtendGreedy(m.NV(), m.Edges, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if reused != 0 {
		t.Fatalf("nil prev reused %d", reused)
	}
	if err := Verify(c, m.NV(), m.Edges); err != nil {
		t.Fatal(err)
	}
	g, err := Greedy(m.NV(), m.Edges)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumColors() != c.NumColors() {
		t.Fatalf("fallback disagrees with Greedy: %d vs %d colors", c.NumColors(), g.NumColors())
	}
}

func TestExtendGreedyRejectsBadInput(t *testing.T) {
	prev, prevEdges, r := refinedPair(t)
	m := r.Mesh
	if _, _, err := ExtendGreedy(m.NV(), m.Edges, prev, prevEdges[:len(prevEdges)-1]); err == nil {
		t.Fatal("mismatched prev coloring accepted")
	}
	bad := [][2]int32{{0, 0}}
	if _, _, err := ExtendGreedy(m.NV(), bad, prev, prevEdges); err == nil {
		t.Fatal("self-loop accepted")
	}
	bad = [][2]int32{{0, int32(m.NV())}}
	if _, _, err := ExtendGreedy(m.NV(), bad, prev, prevEdges); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}
