package color

import (
	"testing"

	"eul3d/internal/meshgen"
)

func TestGreedyOnMesh(t *testing.T) {
	m, err := meshgen.Channel(meshgen.DefaultChannel(8, 6, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Greedy(m.NV(), m.Edges)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(c, m.NV(), m.Edges); err != nil {
		t.Fatal(err)
	}
	if nc := c.NumColors(); nc < 10 || nc > 64 {
		t.Errorf("colors = %d, expected a few tens on a tet mesh", nc)
	}
	total := 0
	for _, s := range c.GroupSizes() {
		total += s
	}
	if total != m.NE() {
		t.Errorf("group sizes sum to %d, want %d", total, m.NE())
	}
}

func TestGreedySmall(t *testing.T) {
	// Triangle: three mutually adjacent edges need three colors.
	edges := [][2]int32{{0, 1}, {1, 2}, {0, 2}}
	c, err := Greedy(3, edges)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumColors() != 3 {
		t.Errorf("triangle colors = %d, want 3", c.NumColors())
	}
	if err := Verify(c, 3, edges); err != nil {
		t.Error(err)
	}
}

func TestGreedyStar(t *testing.T) {
	// Star K(1,5): all edges share the hub, so five colors, one edge each.
	edges := [][2]int32{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}}
	c, err := Greedy(6, edges)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumColors() != 5 {
		t.Errorf("star colors = %d, want 5", c.NumColors())
	}
	for g := 0; g < 5; g++ {
		if len(c.Group(g)) != 1 {
			t.Errorf("group %d has %d edges", g, len(c.Group(g)))
		}
	}
}

func TestGreedyMatching(t *testing.T) {
	// Disjoint edges form a matching: one color.
	edges := [][2]int32{{0, 1}, {2, 3}, {4, 5}}
	c, err := Greedy(6, edges)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumColors() != 1 {
		t.Errorf("matching colors = %d, want 1", c.NumColors())
	}
}

func TestGreedyRejectsBadEdges(t *testing.T) {
	if _, err := Greedy(3, [][2]int32{{0, 7}}); err == nil {
		t.Error("accepted out-of-range edge")
	}
	if _, err := Greedy(3, [][2]int32{{1, 1}}); err == nil {
		t.Error("accepted self-loop")
	}
}

func TestGreedyManyColors(t *testing.T) {
	// A star with 100 leaves exercises the >=64-color fallback path.
	n := 101
	edges := make([][2]int32, 100)
	for i := range edges {
		edges[i] = [2]int32{0, int32(i + 1)}
	}
	c, err := Greedy(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumColors() != 100 {
		t.Errorf("colors = %d, want 100", c.NumColors())
	}
	if err := Verify(c, n, edges); err != nil {
		t.Error(err)
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	edges := [][2]int32{{0, 1}, {1, 2}}
	// Both edges in one group share vertex 1.
	bad := &Coloring{Order: []int32{0, 1}, Start: []int32{0, 2}}
	if err := Verify(bad, 3, edges); err == nil {
		t.Error("Verify accepted a conflicting group")
	}
	// Duplicated edge index.
	dup := &Coloring{Order: []int32{0, 0}, Start: []int32{0, 1, 2}}
	if err := Verify(dup, 3, edges); err == nil {
		t.Error("Verify accepted duplicate edge")
	}
	// Wrong length.
	short := &Coloring{Order: []int32{0}, Start: []int32{0, 1}}
	if err := Verify(short, 3, edges); err == nil {
		t.Error("Verify accepted short order")
	}
	// Out-of-range edge index.
	oor := &Coloring{Order: []int32{0, 5}, Start: []int32{0, 1, 2}}
	if err := Verify(oor, 3, edges); err == nil {
		t.Error("Verify accepted out-of-range index")
	}
}
