package color

import "fmt"

// Incremental recoloring for adaptive refinement. Selective refinement
// keeps every surviving vertex under its old index, and every edge of the
// refined mesh joining two old vertices existed in the parent mesh (a
// child edge between parent vertices is always a parent edge that was not
// split). ExtendGreedy exploits that: surviving edges keep their old
// color — a conflict would require two old edges sharing a vertex to have
// shared a color, which the old coloring forbids — and only the new edges
// (those touching a midpoint vertex) pay the greedy lowest-free search.
// The result depends only on the meshes and the previous coloring, never
// on the worker count, so rebuilt engines stay bitwise deterministic.

// ExtendGreedy colors edges by extending prev, the coloring of prevEdges
// (the edge list of the mesh this one was refined from). It returns the
// new coloring and the number of edges that kept their previous color.
func ExtendGreedy(nv int, edges [][2]int32, prev *Coloring, prevEdges [][2]int32) (*Coloring, int, error) {
	if prev == nil {
		c, err := Greedy(nv, edges)
		return c, 0, err
	}
	if len(prev.Order) != len(prevEdges) {
		return nil, 0, fmt.Errorf("color: previous coloring covers %d edges, previous mesh has %d", len(prev.Order), len(prevEdges))
	}

	// The highest old vertex index bounds the survivor search: refinement
	// appends midpoint vertices after the survivors, so any edge touching
	// a vertex above maxOld is new and skips the lookup entirely.
	maxOld := int32(-1)
	for _, e := range prevEdges {
		if e[0] < 0 || int(e[0]) >= nv || e[1] < 0 || int(e[1]) >= nv {
			return nil, 0, fmt.Errorf("color: previous edge (%d,%d) outside [0,%d)", e[0], e[1], nv)
		}
		if e[0] > maxOld {
			maxOld = e[0]
		}
		if e[1] > maxOld {
			maxOld = e[1]
		}
	}
	nOld := int(maxOld + 1)

	// Old colors per old edge, then a CSR adjacency of the old mesh with
	// the edge color attached, for O(degree) surviving-edge lookups.
	oldColor := make([]int32, len(prevEdges))
	for g := 0; g < prev.NumColors(); g++ {
		for _, ei := range prev.Group(g) {
			oldColor[ei] = int32(g)
		}
	}
	// Forward-only rows: edges are stored (i, j) with i < j in both
	// meshes, and every lookup comes from a new-mesh edge in that same
	// orientation, so each old edge needs only its i-side row entry —
	// half the build work and half the scan length of a full adjacency.
	adjStart := make([]int32, nOld+1)
	for _, e := range prevEdges {
		lo := e[0]
		if e[1] < lo {
			lo = e[1]
		}
		adjStart[lo+1]++
	}
	for v := 0; v < nOld; v++ {
		adjStart[v+1] += adjStart[v]
	}
	adjVert := make([]int32, len(prevEdges))
	adjColor := make([]int32, len(prevEdges))
	fill := make([]int32, nOld)
	for ei, e := range prevEdges {
		lo, hi := e[0], e[1]
		if hi < lo {
			lo, hi = hi, lo
		}
		at := adjStart[lo] + fill[lo]
		adjVert[at], adjColor[at] = hi, oldColor[ei]
		fill[lo]++
	}
	lookup := func(a, b int32) (int32, bool) {
		if a > b {
			a, b = b, a
		}
		for at := adjStart[a]; at < adjStart[a+1]; at++ {
			if adjVert[at] == b {
				return adjColor[at], true
			}
		}
		return 0, false
	}

	// Per-vertex occupied-color sets: a bitmask for colors < 64 (the
	// overwhelmingly common case) with a lazy spill map above that.
	vcMask := make([]uint64, nv)
	var vcExt map[int32][]int32
	has := func(v int32, c int32) bool {
		if c < 64 {
			return vcMask[v]&(1<<uint(c)) != 0
		}
		for _, e := range vcExt[v] {
			if e == c {
				return true
			}
		}
		return false
	}
	add := func(v int32, c int32) {
		if c < 64 {
			vcMask[v] |= 1 << uint(c)
		} else {
			if vcExt == nil {
				vcExt = make(map[int32][]int32)
			}
			vcExt[v] = append(vcExt[v], c)
		}
	}

	const none = int32(-1)
	colorOf := make([]int32, len(edges))
	reused := 0
	maxColor := none
	// Pass 1: surviving edges keep their old color. They are claimed
	// before any greedy assignment so a new edge can never shadow an old
	// color at a shared vertex.
	for ei, e := range edges {
		a, b := e[0], e[1]
		if a < 0 || int(a) >= nv || b < 0 || int(b) >= nv {
			return nil, 0, fmt.Errorf("color: edge %d (%d,%d) out of range [0,%d)", ei, a, b, nv)
		}
		if a == b {
			return nil, 0, fmt.Errorf("color: edge %d is a self-loop at vertex %d", ei, a)
		}
		colorOf[ei] = none
		if a <= maxOld && b <= maxOld {
			if c, ok := lookup(a, b); ok {
				colorOf[ei] = c
				add(a, c)
				add(b, c)
				reused++
				if c > maxColor {
					maxColor = c
				}
			}
		}
	}
	for ei, e := range edges {
		if colorOf[ei] != none {
			continue
		}
		a, b := e[0], e[1]
		c := int32(0)
		for has(a, c) || has(b, c) {
			c++
		}
		colorOf[ei] = c
		add(a, c)
		add(b, c)
		if c > maxColor {
			maxColor = c
		}
	}

	// Compact away colors left empty (a parent color whose every edge was
	// split), so the engine never forks an empty group.
	counts := make([]int32, maxColor+1)
	for _, c := range colorOf {
		counts[c]++
	}
	remap := make([]int32, maxColor+1)
	nc := int32(0)
	for c, n := range counts {
		if n > 0 {
			remap[c] = nc
			nc++
		}
	}
	start := make([]int32, nc+1)
	for _, c := range colorOf {
		start[remap[c]+1]++
	}
	for g := int32(0); g < nc; g++ {
		start[g+1] += start[g]
	}
	order := make([]int32, len(edges))
	gfill := make([]int32, nc)
	for ei, c := range colorOf {
		g := remap[c]
		order[start[g]+gfill[g]] = int32(ei)
		gfill[g]++
	}
	return &Coloring{Order: order, Start: start}, reused, nil
}
