package color

import "fmt"

// GreedyFaces colors boundary triangles so that within a group no two
// faces share a vertex — the boundary-loop analogue of the edge coloring,
// needed because the boundary flux scatters to all three face vertices.
func GreedyFaces(nv int, faces [][3]int32) (*Coloring, error) {
	type vertexColors struct {
		mask uint64
		ext  []int32
	}
	vc := make([]vertexColors, nv)
	has := func(v, c int32) bool {
		if c < 64 {
			return vc[v].mask&(1<<uint(c)) != 0
		}
		for _, e := range vc[v].ext {
			if e == c {
				return true
			}
		}
		return false
	}
	add := func(v, c int32) {
		if c < 64 {
			vc[v].mask |= 1 << uint(c)
		} else {
			vc[v].ext = append(vc[v].ext, c)
		}
	}

	colorOf := make([]int32, len(faces))
	maxColor := int32(-1)
	for fi, f := range faces {
		for _, v := range f {
			if v < 0 || int(v) >= nv {
				return nil, fmt.Errorf("color: face %d vertex %d out of range [0,%d)", fi, v, nv)
			}
		}
		if f[0] == f[1] || f[1] == f[2] || f[0] == f[2] {
			return nil, fmt.Errorf("color: face %d has repeated vertices", fi)
		}
		c := int32(0)
		for has(f[0], c) || has(f[1], c) || has(f[2], c) {
			c++
		}
		colorOf[fi] = c
		for _, v := range f {
			add(v, c)
		}
		if c > maxColor {
			maxColor = c
		}
	}

	nc := int(maxColor + 1)
	start := make([]int32, nc+1)
	for _, c := range colorOf {
		start[c+1]++
	}
	for g := 0; g < nc; g++ {
		start[g+1] += start[g]
	}
	order := make([]int32, len(faces))
	fill := make([]int32, nc)
	for fi, c := range colorOf {
		order[start[c]+fill[c]] = int32(fi)
		fill[c]++
	}
	return &Coloring{Order: order, Start: start}, nil
}

// VerifyFaces checks that no two faces within a group share a vertex and
// the coloring is a permutation of the face list.
func VerifyFaces(c *Coloring, nv int, faces [][3]int32) error {
	if len(c.Order) != len(faces) {
		return fmt.Errorf("color: order length %d != face count %d", len(c.Order), len(faces))
	}
	seen := make([]bool, len(faces))
	for _, fi := range c.Order {
		if fi < 0 || int(fi) >= len(faces) {
			return fmt.Errorf("color: face index %d out of range", fi)
		}
		if seen[fi] {
			return fmt.Errorf("color: face %d appears twice", fi)
		}
		seen[fi] = true
	}
	touched := make([]int32, nv)
	for i := range touched {
		touched[i] = -1
	}
	for g := 0; g < c.NumColors(); g++ {
		for _, fi := range c.Group(g) {
			for _, v := range faces[fi] {
				if touched[v] == int32(g) {
					return fmt.Errorf("color: vertex %d touched twice in face group %d", v, g)
				}
				touched[v] = int32(g)
			}
		}
	}
	return nil
}
