// Package color implements the edge-coloring preprocessing step used by
// EUL3D on vector/parallel shared-memory machines. The edge loop is divided
// into groups ("colors") such that within a group no two edges touch the
// same vertex, so each group is free of data recurrences and can be
// vectorized and further chunked across processors (Cray autotasking).
package color

import "fmt"

// Coloring holds a partition of the edge list into recurrence-free groups.
// Group g occupies Order[Start[g]:Start[g+1]], where Order is a permutation
// of edge indices.
type Coloring struct {
	Order []int32 // edge indices grouped by color
	Start []int32 // group boundaries, len = NumColors+1
}

// NumColors returns the number of groups.
func (c *Coloring) NumColors() int { return len(c.Start) - 1 }

// Group returns the edge indices of color g.
func (c *Coloring) Group(g int) []int32 { return c.Order[c.Start[g]:c.Start[g+1]] }

// GroupSizes returns the number of edges in each color.
func (c *Coloring) GroupSizes() []int {
	s := make([]int, c.NumColors())
	for g := range s {
		s[g] = int(c.Start[g+1] - c.Start[g])
	}
	return s
}

// Greedy colors the edges of a mesh with nv vertices greedily in a single
// sweep: each edge takes the lowest color not already incident on either
// endpoint. By Vizing-type arguments the number of colors is bounded by
// roughly twice the maximum vertex degree; on EUL3D-style tetrahedral
// meshes it lands in the 20–40 range the paper reports ("the typical number
// of groups is ... say 20 to 30").
func Greedy(nv int, edges [][2]int32) (*Coloring, error) {
	const none = int32(-1)
	// used[v] holds the last edge color seen at vertex v, stamped per color
	// scan via a versioned bitset. To keep it O(E * avgColors) without a
	// per-edge allocation, track for each vertex a bitmask of small colors
	// and fall back to a slice for the rare high colors.
	type vertexColors struct {
		mask uint64  // colors 0..63
		ext  []int32 // colors >= 64 (rare)
	}
	vc := make([]vertexColors, nv)
	has := func(v int32, c int32) bool {
		if c < 64 {
			return vc[v].mask&(1<<uint(c)) != 0
		}
		for _, e := range vc[v].ext {
			if e == c {
				return true
			}
		}
		return false
	}
	add := func(v int32, c int32) {
		if c < 64 {
			vc[v].mask |= 1 << uint(c)
		} else {
			vc[v].ext = append(vc[v].ext, c)
		}
	}

	colorOf := make([]int32, len(edges))
	maxColor := none
	for ei, e := range edges {
		a, b := e[0], e[1]
		if a < 0 || int(a) >= nv || b < 0 || int(b) >= nv {
			return nil, fmt.Errorf("color: edge %d (%d,%d) out of range [0,%d)", ei, a, b, nv)
		}
		if a == b {
			return nil, fmt.Errorf("color: edge %d is a self-loop at vertex %d", ei, a)
		}
		c := int32(0)
		for has(a, c) || has(b, c) {
			c++
		}
		colorOf[ei] = c
		add(a, c)
		add(b, c)
		if c > maxColor {
			maxColor = c
		}
	}

	nc := int(maxColor + 1)
	start := make([]int32, nc+1)
	for _, c := range colorOf {
		start[c+1]++
	}
	for g := 0; g < nc; g++ {
		start[g+1] += start[g]
	}
	order := make([]int32, len(edges))
	fill := make([]int32, nc)
	for ei, c := range colorOf {
		order[start[c]+fill[c]] = int32(ei)
		fill[c]++
	}
	return &Coloring{Order: order, Start: start}, nil
}

// IdentityRuns returns the coloring whose group g is the contiguous
// identity range [start[g], start[g+1]) — for element lists already
// stored in color-grouped order (reorder.ColorCanonical), where iterating
// the elements in index order IS iterating them in color order.
func IdentityRuns(start []int32) *Coloring {
	n := int(start[len(start)-1])
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	return &Coloring{Order: order, Start: append([]int32(nil), start...)}
}

// Verify checks that the coloring is a permutation of the edge list and
// that no two edges within a group share a vertex.
func Verify(c *Coloring, nv int, edges [][2]int32) error {
	if len(c.Order) != len(edges) {
		return fmt.Errorf("color: order length %d != edge count %d", len(c.Order), len(edges))
	}
	seen := make([]bool, len(edges))
	for _, ei := range c.Order {
		if ei < 0 || int(ei) >= len(edges) {
			return fmt.Errorf("color: edge index %d out of range", ei)
		}
		if seen[ei] {
			return fmt.Errorf("color: edge %d appears twice", ei)
		}
		seen[ei] = true
	}
	touched := make([]int32, nv)
	for i := range touched {
		touched[i] = -1
	}
	for g := 0; g < c.NumColors(); g++ {
		for _, ei := range c.Group(g) {
			for _, v := range edges[ei] {
				if touched[v] == int32(g) {
					return fmt.Errorf("color: vertex %d touched twice in group %d", v, g)
				}
				touched[v] = int32(g)
			}
		}
	}
	return nil
}
