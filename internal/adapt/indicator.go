package adapt

import (
	"fmt"
	"math"
	"sort"

	"eul3d/internal/euler"
	"eul3d/internal/mesh"
)

// indicator computes the per-cell refinement indicator eta. The three
// kinds share one contract: eta depends only on the mesh, the solution and
// the parameters, and is computed sequentially in mesh order, so a fixed
// adaptation schedule marks identical cells at every worker count.
//
//   - "density": max undivided density difference |rho_i - rho_j| over the
//     cell's six vertex pairs. The undivided (not divided by h) difference
//     deliberately biases toward larger cells crossing a feature — the
//     classic feature-detection indicator for shock-capturing schemes.
//   - "pressure": max relative pressure difference |p_i - p_j|/(p_i + p_j),
//     the same normalized switch the JST dissipation sensor uses; picks up
//     shocks while ignoring contact discontinuities.
//   - "residual": max |R_rho(v)|/V_v over the cell's vertices, from a
//     sequential steady-residual evaluation — the multigrid-style
//     indicator, concentrating cells where the discrete equations are
//     least satisfied.
type indicator struct {
	kind string

	// residual-kind scratch, built lazily and retargeted per epoch
	d   *euler.Disc
	res []euler.State

	pres []float64 // pressure-kind scratch
	eta  []float64
}

func newIndicator(kind string) (*indicator, error) {
	switch kind {
	case "", "density":
		return &indicator{kind: "density"}, nil
	case "pressure", "residual":
		return &indicator{kind: kind}, nil
	default:
		return nil, fmt.Errorf("adapt: unknown indicator %q (want density, pressure or residual)", kind)
	}
}

// ValidIndicator reports whether name selects a known error indicator
// ("" selects the default). It lets callers validate a request without
// building the indicator's scratch state.
func ValidIndicator(name string) bool {
	_, err := newIndicator(name)
	return err == nil
}

// tetPairs enumerates the six vertex pairs (edges) of a tet by local index.
var tetPairs = [6][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}

// compute returns the per-cell indicator on m for solution w. The returned
// slice is owned by the indicator and valid until the next compute call.
func (in *indicator) compute(m *mesh.Mesh, w []euler.State, p euler.Params) []float64 {
	nt := m.NT()
	if cap(in.eta) < nt {
		in.eta = make([]float64, nt)
	}
	eta := in.eta[:nt]

	switch in.kind {
	case "density":
		for t, tet := range m.Tets {
			max := 0.0
			for _, pr := range tetPairs {
				d := math.Abs(w[tet[pr[0]]][0] - w[tet[pr[1]]][0])
				if d > max {
					max = d
				}
			}
			eta[t] = max
		}
	case "pressure":
		nv := m.NV()
		if cap(in.pres) < nv {
			in.pres = make([]float64, nv)
		}
		pres := in.pres[:nv]
		for i := 0; i < nv; i++ {
			pres[i] = p.Gas.Pressure(w[i])
		}
		for t, tet := range m.Tets {
			max := 0.0
			for _, pr := range tetPairs {
				pi, pj := pres[tet[pr[0]]], pres[tet[pr[1]]]
				if s := pi + pj; s > 0 {
					if d := math.Abs(pi-pj) / s; d > max {
						max = d
					}
				}
			}
			eta[t] = max
		}
	case "residual":
		if in.d == nil {
			in.d = euler.NewDisc(m, p)
		} else {
			in.d.Retarget(m, p)
		}
		nv := m.NV()
		if cap(in.res) < nv {
			in.res = make([]euler.State, nv)
		}
		in.res = in.res[:nv]
		in.d.Residual(w, in.res)
		for t, tet := range m.Tets {
			max := 0.0
			for _, v := range tet {
				if r := math.Abs(in.res[v][0]) / m.Vol[v]; r > max {
					max = r
				}
			}
			eta[t] = max
		}
	}
	return eta
}

// markCells selects the refinement set: cells with eta within theta of the
// maximum, strongest first, capped both by frac of the current cell count
// and by the headroom the budget leaves (each red cell adds at least seven
// children net, so (budget-nt)/8 marks can never blow through it by more
// than the green closure). Ties break toward the lower cell index, so the
// selection is a deterministic function of eta alone.
func markCells(eta []float64, frac, theta float64, budget, nt int) ([]bool, int) {
	etaMax := 0.0
	for _, e := range eta {
		if e > etaMax {
			etaMax = e
		}
	}
	if etaMax <= 0 {
		return nil, 0
	}
	cut := theta * etaMax
	cand := make([]int32, 0, nt/4)
	for t, e := range eta {
		if e >= cut {
			cand = append(cand, int32(t))
		}
	}
	sort.SliceStable(cand, func(a, b int) bool {
		ea, eb := eta[cand[a]], eta[cand[b]]
		if ea != eb {
			return ea > eb
		}
		return cand[a] < cand[b]
	})
	k := int(frac * float64(nt))
	if head := (budget - nt) / 8; head < k {
		k = head
	}
	if k < 1 {
		k = 1
	}
	if k > len(cand) {
		k = len(cand)
	}
	marked := make([]bool, nt)
	for _, t := range cand[:k] {
		marked[t] = true
	}
	return marked, k
}
