// Package adapt drives error-indicator-driven mesh refinement *during* a
// solve — the adaptive loop the paper's Section 2.3 leaves as the open
// door ("new finer meshes can be introduced by adaptive refinement").
//
// The driver alternates solve intervals with adaptation epochs. Each
// epoch:
//
//  1. computes a per-cell error indicator from the running solution
//     (undivided density or relative pressure differences over the cell's
//     edges, or the density residual; indicator.go),
//  2. marks the strongest cells under a cell budget and refines them
//     selectively with red-green closure (refine.Selective),
//  3. transfers the solution to the new mesh — surviving vertices keep
//     their state, edge midpoints average their parents, with a defensive
//     admissibility clamp (transfer.go),
//  4. recomputes the stable time step (time-accurate runs shrink GlobalDt
//     to the refined mesh's CFL bound and re-mesh the remaining time so
//     the run still lands exactly on the final time), and
//  5. rebuilds the solve engine incrementally (smsolver.Rebuild /
//     euler.Disc.Retarget): colorings extended rather than recomputed,
//     scratch grown in place, the worker pool untouched.
//
// Every stage runs sequentially in mesh order and depends only on the
// mesh, the solution and the options — never on the worker count — so a
// fixed adaptation schedule produces bitwise-identical results at every
// pooled worker count (the solver engines already guarantee this for the
// solve intervals; the golden Sod test asserts it end to end).
package adapt

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"eul3d/internal/euler"
	"eul3d/internal/mesh"
	"eul3d/internal/perf"
	"eul3d/internal/refine"
	"eul3d/internal/smsolver"
	"eul3d/internal/trace"
)

// Options configures an adaptive run.
type Options struct {
	Mesh   *mesh.Mesh    // starting mesh (ignored when Resume is set)
	Init   []euler.State // initial condition on Mesh (taken over by the driver)
	Params euler.Params

	Engine  string // "single" (default) or "sm"
	Workers int    // sm worker count; <=0 selects GOMAXPROCS

	// Steps is the total step budget. Time-accurate runs (Params.GlobalDt
	// > 0) integrate to the fixed final time Steps*GlobalDt; adaptation
	// shrinks the step and raises the step count to land exactly there.
	Steps     int
	Tolerance float64 // steady runs: stop when norm/initial falls below this

	Budget    int     // cell budget; 0 = 4x the starting cell count
	Interval  int     // steps between adaptation epochs (default 50)
	MaxEpochs int     // refinement epochs allowed (default 2)
	Indicator string  // "density" (default), "pressure", "residual"
	Frac      float64 // fraction of cells marked per epoch (default 0.1)
	Theta     float64 // relative indicator threshold in (0,1] (default 0.25)

	LogEvery int
	Log      io.Writer

	// Context, when non-nil, is checked before every step; cancellation
	// stops the run with Result.Cancelled set and a resumable Snapshot.
	Context  context.Context
	Progress func(step int, norm float64)

	// Trace, when non-nil, records an "adapt" track with one span per
	// adaptation epoch and a nested rebuild span.
	Trace *trace.Tracer

	// CheckpointEvery > 0 invokes OnCheckpoint with a fresh Snapshot every
	// that many steps (and after every adaptation epoch, so a resume never
	// replays a refinement).
	CheckpointEvery int
	OnCheckpoint    func(*Snapshot) error

	// Resume continues a run from a Snapshot (produced by cancellation or
	// OnCheckpoint) instead of starting from Mesh/Init.
	Resume *Snapshot
}

// EpochStat records one adaptation epoch.
type EpochStat struct {
	Step         int     `json:"step"` // step count when the epoch ran
	Marked       int     `json:"marked"`
	Red          int     `json:"red"`
	Green        int     `json:"green"`
	CellsBefore  int     `json:"cells_before"`
	CellsAfter   int     `json:"cells_after"`
	NewVerts     int     `json:"new_verts"`
	ReusedColors int     `json:"reused_colors"`
	Dt           float64 `json:"dt,omitempty"` // dt after the epoch; 0 on steady runs
	RebuildNS    int64   `json:"rebuild_ns"`
	ScratchNS    int64   `json:"scratch_ns,omitempty"` // from-scratch build, measured on the first epoch
}

// Result summarizes an adaptive run.
type Result struct {
	Steps       int
	History     []float64
	InitialNorm float64
	FinalNorm   float64
	Converged   bool
	Cancelled   bool

	Mesh     *mesh.Mesh    // final (adapted) mesh
	Solution []euler.State // solution on Mesh

	Epochs       []EpochStat
	CellsRefined int        // total cells added across all epochs
	Stats        perf.Stats // driver phases: solve/indicator/refine/transfer/rebuild

	Snap *Snapshot // set when Cancelled: resume point
}

// Snapshot is the resumable state of an adaptive run: unlike a plain
// solver checkpoint it carries the current (adapted) mesh and the
// adaptation counters.
type Snapshot struct {
	Mesh         *mesh.Mesh
	W            []euler.State
	History      []float64
	Step         int
	EpochsDone   int
	Dt           float64 // current global dt (0 on steady runs)
	StepsLeft    int
	SinceEpoch   int
	CellsRefined int
}

// Driver phase slots of the perf accumulator.
const (
	phSolve = iota
	phIndicator
	phRefine
	phTransfer
	phRebuild
	phScratch
	nPhases
)

var phaseNames = [nPhases]string{"solve", "indicator", "refine", "transfer", "rebuild", "build-scratch"}

// engine abstracts the two solve backends the driver can rebuild
// incrementally between epochs.
type engine interface {
	step(w []euler.State) float64
	rebuild(m *mesh.Mesh, p euler.Params) (reusedColors int, err error)
	close()
}

type singleEngine struct {
	d  *euler.Disc
	ws *euler.StepWorkspace
}

func (e *singleEngine) step(w []euler.State) float64 { return e.d.Step(w, nil, e.ws) }
func (e *singleEngine) rebuild(m *mesh.Mesh, p euler.Params) (int, error) {
	e.d.Retarget(m, p)
	e.ws.Resize(m.NV())
	return 0, nil
}
func (e *singleEngine) close() {}

type smEngine struct{ s *smsolver.Solver }

func (e *smEngine) step(w []euler.State) float64 { return e.s.Step(w, nil) }
func (e *smEngine) rebuild(m *mesh.Mesh, p euler.Params) (int, error) {
	return e.s.Rebuild(m, p)
}
func (e *smEngine) close() { e.s.Close() }

func newEngine(kind string, m *mesh.Mesh, p euler.Params, workers int) (engine, error) {
	switch kind {
	case "", "single":
		return &singleEngine{d: euler.NewDisc(m, p), ws: euler.NewStepWorkspace(m.NV())}, nil
	case "sm":
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		s, err := smsolver.New(m, p, workers)
		if err != nil {
			return nil, err
		}
		return &smEngine{s: s}, nil
	default:
		return nil, fmt.Errorf("adapt: unknown engine %q (want single or sm)", kind)
	}
}

// Run executes an adaptive solve.
func Run(opt Options) (*Result, error) {
	m, w, p := opt.Mesh, opt.Init, opt.Params
	step, epochs, since, cellsRefined := 0, 0, 0, 0
	dt := p.GlobalDt
	timeAccurate := dt > 0
	var history []float64
	stepsLeft := opt.Steps
	if rs := opt.Resume; rs != nil {
		m, w = rs.Mesh, rs.W
		history = append(history, rs.History...)
		step, epochs, since = rs.Step, rs.EpochsDone, rs.SinceEpoch
		cellsRefined = rs.CellsRefined
		if timeAccurate {
			dt, stepsLeft = rs.Dt, rs.StepsLeft
			p.GlobalDt = dt
		} else {
			stepsLeft = opt.Steps - step
		}
	}
	if m == nil || m.NV() == 0 {
		return nil, errors.New("adapt: nil or empty mesh")
	}
	if len(w) != m.NV() {
		return nil, fmt.Errorf("adapt: %d states for %d vertices", len(w), m.NV())
	}
	if opt.Steps <= 0 {
		return nil, errors.New("adapt: Steps must be positive")
	}
	interval := opt.Interval
	if interval <= 0 {
		interval = 50
	}
	maxEpochs := opt.MaxEpochs
	if maxEpochs <= 0 {
		maxEpochs = 2
	}
	budget := opt.Budget
	if budget <= 0 {
		budget = 4 * m.NT()
	}
	frac := opt.Frac
	if frac <= 0 || frac > 0.5 {
		frac = 0.1
	}
	theta := opt.Theta
	if theta <= 0 || theta > 1 {
		theta = 0.25
	}

	ind, err := newIndicator(opt.Indicator)
	if err != nil {
		return nil, err
	}
	eng, err := newEngine(opt.Engine, m, p, opt.Workers)
	if err != nil {
		return nil, err
	}
	defer eng.close()

	var atrack *trace.Track
	var phEpoch, phRebuildTr trace.PhaseID
	if opt.Trace != nil {
		atrack = opt.Trace.Track("adapt")
		phEpoch = opt.Trace.Phase("epoch")
		phRebuildTr = opt.Trace.Phase("rebuild")
	}

	acc := perf.NewAccum(phaseNames[:]...)
	res := &Result{}
	snapshot := func() *Snapshot {
		return &Snapshot{
			Mesh:         m,
			W:            append([]euler.State(nil), w...),
			History:      append([]float64(nil), history...),
			Step:         step,
			EpochsDone:   epochs,
			Dt:           dt,
			StepsLeft:    stepsLeft,
			SinceEpoch:   since,
			CellsRefined: cellsRefined,
		}
	}

	for stepsLeft > 0 {
		if ctx := opt.Context; ctx != nil {
			select {
			case <-ctx.Done():
				res.Cancelled = true
				res.Snap = snapshot()
				stepsLeft = 0
			default:
			}
			if res.Cancelled {
				break
			}
		}
		t0 := time.Now()
		norm := eng.step(w)
		acc.Add(phSolve, time.Since(t0), 0)
		step++
		stepsLeft--
		since++
		history = append(history, norm)
		if opt.Progress != nil {
			opt.Progress(step, norm)
		}
		if opt.LogEvery > 0 && opt.Log != nil && step%opt.LogEvery == 0 {
			fmt.Fprintf(opt.Log, "step %5d  res %.6e  cells %d  epochs %d\n", step, norm, m.NT(), epochs)
		}
		if !timeAccurate && opt.Tolerance > 0 && len(history) > 0 && norm/history[0] < opt.Tolerance {
			res.Converged = true
			break
		}

		if since >= interval && epochs < maxEpochs && m.NT() < budget && stepsLeft > 0 {
			epochStart := time.Now()
			t0 = epochStart
			eta := ind.compute(m, w, p)
			marked, nmark := markCells(eta, frac, theta, budget, m.NT())
			acc.Add(phIndicator, time.Since(t0), 0)
			since = 0
			if nmark == 0 {
				continue // nothing exceeds the threshold; check again next interval
			}

			t0 = time.Now()
			r, err := refine.Selective(m, marked)
			if err != nil {
				return nil, fmt.Errorf("adapt: epoch %d: %w", epochs+1, err)
			}
			if err := r.Mesh.Validate(1e-9); err != nil {
				return nil, fmt.Errorf("adapt: epoch %d produced invalid mesh: %w", epochs+1, err)
			}
			acc.Add(phRefine, time.Since(t0), 0)

			t0 = time.Now()
			wNew := Transfer(r, w, &p)
			acc.Add(phTransfer, time.Since(t0), 0)

			st := EpochStat{
				Step: step, Marked: nmark,
				Red: r.Red, Green: r.Green,
				CellsBefore: m.NT(), CellsAfter: r.Mesh.NT(),
				NewVerts: r.Mesh.NV() - r.NVOld,
			}

			if timeAccurate {
				// Rescale the global step to the refined mesh's stability
				// bound and re-mesh the remaining time R = dt*stepsLeft into
				// equal steps, so the run still ends exactly at the final
				// time. dt never grows: coarsening is not implemented, and a
				// larger step would leave the committed stability margin.
				stableOld := euler.MinStableDt(m, p, w)
				stableNew := euler.MinStableDt(r.Mesh, p, wNew)
				ratio := 1.0
				if stableOld > 0 && stableNew < stableOld {
					ratio = stableNew / stableOld
				}
				remaining := dt * float64(stepsLeft)
				n := int(math.Ceil(remaining/(dt*ratio) - 1e-12))
				if n < stepsLeft {
					n = stepsLeft
				}
				dt = remaining / float64(n)
				stepsLeft = n
				p.GlobalDt = dt
				st.Dt = dt
			}

			tR := time.Now()
			reused, err := eng.rebuild(r.Mesh, p)
			rebuildDur := time.Since(tR)
			if err != nil {
				return nil, fmt.Errorf("adapt: epoch %d rebuild: %w", epochs+1, err)
			}
			acc.Add(phRebuild, rebuildDur, 0)
			st.ReusedColors = reused
			st.RebuildNS = int64(rebuildDur)

			if len(res.Epochs) == 0 {
				// Measure the cost a from-scratch engine build would have
				// paid on the adapted mesh, once, for the incremental-vs-
				// scratch comparison the run reports. The throwaway engine
				// never steps, so results are unaffected.
				tS := time.Now()
				scratch, err := newEngine(opt.Engine, r.Mesh, p, opt.Workers)
				scratchDur := time.Since(tS)
				if err == nil {
					scratch.close()
					acc.Add(phScratch, scratchDur, 0)
					st.ScratchNS = int64(scratchDur)
				}
			}

			cellsRefined += r.Mesh.NT() - m.NT()
			m, w = r.Mesh, wNew
			epochs++
			res.Epochs = append(res.Epochs, st)
			if atrack != nil {
				now := time.Now()
				atrack.Span(phEpoch, epochStart, now, int64(epochs))
				atrack.Span(phRebuildTr, tR, tR.Add(rebuildDur), int64(reused))
			}
			if opt.Log != nil {
				fmt.Fprintf(opt.Log, "epoch %d @ step %d: %d marked, cells %d -> %d (red %d, green %d), %d colors reused, rebuild %.2fms\n",
					epochs, step, nmark, st.CellsBefore, st.CellsAfter, r.Red, r.Green, reused,
					float64(st.RebuildNS)/1e6)
			}
			if opt.CheckpointEvery > 0 && opt.OnCheckpoint != nil {
				if err := opt.OnCheckpoint(snapshot()); err != nil {
					return nil, fmt.Errorf("adapt: checkpoint after epoch %d: %w", epochs, err)
				}
			}
			continue
		}

		if opt.CheckpointEvery > 0 && opt.OnCheckpoint != nil && step%opt.CheckpointEvery == 0 && stepsLeft > 0 {
			if err := opt.OnCheckpoint(snapshot()); err != nil {
				return nil, fmt.Errorf("adapt: checkpoint at step %d: %w", step, err)
			}
		}
	}

	res.Steps = step
	res.History = history
	if len(history) > 0 {
		res.InitialNorm = history[0]
		res.FinalNorm = history[len(history)-1]
	}
	res.Mesh = m
	res.Solution = w
	res.CellsRefined = cellsRefined
	res.Stats = acc.Stats()
	return res, nil
}
