package adapt

import (
	"eul3d/internal/euler"
	"eul3d/internal/refine"
)

// Transfer maps a solution from the parent mesh onto the selectively
// refined one. In this vertex-centered median-dual scheme the refined
// dual control volumes partition the parent ones, so injection at the
// surviving vertices plus the parent-edge average at each midpoint *is*
// the volume-weighted conservative transfer up to the dual
// re-tessellation: a vertex state is the control-volume average, surviving
// vertices keep theirs, and a midpoint's new control volume straddles the
// two parent volumes symmetrically.
//
// Admissibility: the average of two admissible conserved states has
// positive density (linear) and positive pressure (pressure is concave in
// the conserved variables, so it is at least the endpoint minimum).
// Params.Repair is still applied defensively — it is the identity on
// admissible states, so in exact arithmetic it never fires; it exists to
// clamp the one-ULP excursions of floating point near the floors, the
// same ConvexLimit-style guarantee the stage updates get.
func Transfer(r *refine.Refined, w []euler.State, p *euler.Params) []euler.State {
	out := make([]euler.State, r.Mesh.NV())
	copy(out, w[:r.NVOld])
	for k, pr := range r.MidParents {
		var st euler.State
		for c := 0; c < euler.NVar; c++ {
			st[c] = 0.5 * (w[pr[0]][c] + w[pr[1]][c])
		}
		out[r.NVOld+k] = p.Repair(st)
	}
	return out
}
