package adapt

import (
	"testing"

	"eul3d/internal/dmsolver"
	"eul3d/internal/graph"
	"eul3d/internal/partition"
	"eul3d/internal/refine"
	"eul3d/internal/scenario"
)

// TestAdaptedMeshRepartition is the distributed half of the rebuild
// contract: after an adaptation epoch the adapted mesh must repartition
// cleanly and a distributed solver built on it (partitioner + fresh PARTI
// gather/scatter schedules, rebuilt by construction) must accept the
// transferred solution and keep integrating.
func TestAdaptedMeshRepartition(t *testing.T) {
	sc := scenario.Sod
	ms, err := sc.Meshes(1)
	if err != nil {
		t.Fatal(err)
	}
	m := ms[0]
	p := sc.Params()
	w := sc.InitialState(m)

	ind, err := newIndicator("density")
	if err != nil {
		t.Fatal(err)
	}
	eta := ind.compute(m, w, p)
	marked, n := markCells(eta, 0.1, 0.25, 4*m.NT(), m.NT())
	if n == 0 {
		t.Fatal("nothing marked on the Sod diaphragm")
	}
	r, err := refine.Selective(m, marked)
	if err != nil {
		t.Fatal(err)
	}
	wNew := Transfer(r, w, &p)

	g, err := graph.FromEdges(r.Mesh.NV(), r.Mesh.Edges)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Partition(g, r.Mesh.X, 4, partition.Spectral, 1)
	if err != nil {
		t.Fatalf("repartition of adapted mesh: %v", err)
	}
	s, err := dmsolver.NewSingle(r.Mesh, part, 4, p)
	if err != nil {
		t.Fatalf("distributed solver on adapted mesh: %v", err)
	}
	if err := s.SetFineSolution(wNew); err != nil {
		t.Fatalf("transferred solution rejected: %v", err)
	}
	res, err := s.Run(dmsolver.RunOptions{MaxCycles: 5})
	if err != nil {
		t.Fatalf("run on adapted partitions: %v", err)
	}
	if len(res.History) != 5 {
		t.Fatalf("ran %d cycles, want 5", len(res.History))
	}
	for i, h := range res.History {
		if !(h > 0) || h != h {
			t.Fatalf("cycle %d norm %g not finite/positive", i, h)
		}
	}
	sol := s.GatherSolution()
	for i, st := range sol {
		if !(st[0] > 0) || !(p.Gas.Pressure(st) > 0) {
			t.Fatalf("vertex %d inadmissible after distributed steps: rho=%g", i, st[0])
		}
	}
}
