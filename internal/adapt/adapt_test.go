package adapt

import (
	"context"
	"testing"

	"eul3d/internal/euler"
	"eul3d/internal/refine"
	"eul3d/internal/scenario"
	"eul3d/internal/smsolver"
)

func sodRun(t *testing.T, engine string, workers int) *Result {
	t.Helper()
	sc := scenario.Sod
	ms, err := sc.Meshes(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{
		Mesh:      ms[0],
		Init:      sc.InitialState(ms[0]),
		Params:    sc.Params(),
		Engine:    engine,
		Workers:   workers,
		Steps:     sc.Steps,
		Interval:  50,
		MaxEpochs: 2,
		Indicator: "density",
		Frac:      0.1,
	})
	if err != nil {
		t.Fatalf("adaptive sod (%s/%d): %v", engine, workers, err)
	}
	return res
}

// TestAdaptiveSodGolden is the golden regression: the adaptive Sod run
// must refine at least two epochs, produce a conforming mesh, stay
// bitwise-deterministic across pooled worker counts at the fixed
// adaptation schedule, pass the scenario physics check, and beat the
// fixed-mesh L1 tolerance.
func TestAdaptiveSodGolden(t *testing.T) {
	old := smsolver.SerialCutoffEdges
	smsolver.SerialCutoffEdges = 0
	defer func() { smsolver.SerialCutoffEdges = old }()

	sc := scenario.Sod
	var ref *Result
	for _, nw := range []int{1, 2, 4} {
		res := sodRun(t, "sm", nw)
		if len(res.Epochs) < 2 {
			t.Fatalf("nw=%d: only %d adaptation epochs, want >= 2", nw, len(res.Epochs))
		}
		for i, ep := range res.Epochs {
			if ep.CellsAfter <= ep.CellsBefore {
				t.Fatalf("nw=%d epoch %d did not grow the mesh: %d -> %d", nw, i, ep.CellsBefore, ep.CellsAfter)
			}
		}
		if err := res.Mesh.Validate(1e-9); err != nil {
			t.Fatalf("nw=%d: adapted mesh invalid: %v", nw, err)
		}
		if ref == nil {
			ref = res
			d := sc.Diagnose(res.Mesh, res.Solution, res.FinalNorm)
			if err := sc.Check(d); err != nil {
				t.Fatalf("physics check failed on adapted run: %v", err)
			}
			if d.L1Density > sc.L1Tol {
				t.Fatalf("adaptive L1 density error %.6g exceeds fixed-mesh tolerance %g", d.L1Density, sc.L1Tol)
			}
			t.Logf("adaptive sod: %d steps, %d cells (from %d), L1 %.6g (tol %g)",
				res.Steps, res.Mesh.NT(), ref.Epochs[0].CellsBefore, d.L1Density, sc.L1Tol)
			continue
		}
		if res.Steps != ref.Steps || len(res.History) != len(ref.History) {
			t.Fatalf("nw=%d: schedule diverged: %d steps vs %d", nw, res.Steps, ref.Steps)
		}
		for i := range res.History {
			if res.History[i] != ref.History[i] {
				t.Fatalf("nw=%d: history[%d] differs: %.17g vs %.17g", nw, i, res.History[i], ref.History[i])
			}
		}
		if res.Mesh.NT() != ref.Mesh.NT() || res.Mesh.NV() != ref.Mesh.NV() {
			t.Fatalf("nw=%d: adapted mesh differs in size", nw)
		}
		for i := range res.Solution {
			if res.Solution[i] != ref.Solution[i] {
				t.Fatalf("nw=%d: solution vertex %d differs", nw, i)
			}
		}
	}
}

// TestAdaptiveSodSingle runs the sequential engine through the same
// schedule: it must refine the same two epochs, pass the physics check
// (not bitwise against sm — the colored engine reorders accumulations),
// shrink the global step when refinement shrinks the smallest cells, and
// still land exactly on the final time (sum of steps*dt == Steps*dt0).
func TestAdaptiveSodSingle(t *testing.T) {
	sc := scenario.Sod
	res := sodRun(t, "single", 0)
	if len(res.Epochs) < 2 {
		t.Fatalf("single engine: %d epochs, want >= 2", len(res.Epochs))
	}
	d := sc.Diagnose(res.Mesh, res.Solution, res.FinalNorm)
	if err := sc.Check(d); err != nil {
		t.Fatalf("physics check failed: %v", err)
	}
	p := sc.Params()
	for i, ep := range res.Epochs {
		if !(ep.Dt > 0 && ep.Dt < p.GlobalDt) {
			t.Fatalf("epoch %d: dt %.6g not shrunk below %g", i, ep.Dt, p.GlobalDt)
		}
	}
	if res.Steps <= sc.Steps {
		t.Fatalf("refined run took %d steps, want more than the fixed-mesh %d", res.Steps, sc.Steps)
	}
	// Reconstruct total integrated time from the epoch schedule: steps
	// before the first epoch at dt0, between epochs at each epoch's dt.
	total := 0.0
	prevStep, prevDt := 0, p.GlobalDt
	for _, ep := range res.Epochs {
		total += float64(ep.Step-prevStep) * prevDt
		prevStep, prevDt = ep.Step, ep.Dt
	}
	total += float64(res.Steps-prevStep) * prevDt
	want := float64(sc.Steps) * p.GlobalDt
	if diff := total - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("integrated time %.17g != final time %.17g", total, want)
	}
}

// TestAdaptResume: cancelling mid-run and resuming from the snapshot
// reproduces the uninterrupted run bitwise, including across an
// adaptation epoch boundary.
func TestAdaptResume(t *testing.T) {
	sc := scenario.Sod
	ms, err := sc.Meshes(1)
	if err != nil {
		t.Fatal(err)
	}
	base := Options{
		Params:    sc.Params(),
		Engine:    "single",
		Steps:     sc.Steps,
		Interval:  40,
		MaxEpochs: 2,
		Indicator: "density",
		Frac:      0.08,
	}

	full := base
	full.Mesh, full.Init = ms[0], sc.InitialState(ms[0])
	refRes, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}
	if len(refRes.Epochs) < 2 {
		t.Fatalf("reference run had %d epochs", len(refRes.Epochs))
	}

	// Cancel partway through (after the first epoch has fired).
	ctx, cancel := context.WithCancel(context.Background())
	cut := refRes.Epochs[0].Step + 10
	interrupted := base
	interrupted.Mesh, interrupted.Init = ms[0], sc.InitialState(ms[0])
	interrupted.Context = ctx
	interrupted.Progress = func(step int, _ float64) {
		if step == cut {
			cancel()
		}
	}
	part, err := Run(interrupted)
	if err != nil {
		t.Fatal(err)
	}
	if !part.Cancelled || part.Snap == nil {
		t.Fatal("cancelled run did not return a snapshot")
	}
	if part.Snap.EpochsDone != 1 {
		t.Fatalf("snapshot at step %d has %d epochs, want 1", part.Snap.Step, part.Snap.EpochsDone)
	}

	resumed := base
	resumed.Resume = part.Snap
	res2, err := Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Steps != refRes.Steps || len(res2.History) != len(refRes.History) {
		t.Fatalf("resumed run: %d steps vs %d uninterrupted", res2.Steps, refRes.Steps)
	}
	for i := range res2.History {
		if res2.History[i] != refRes.History[i] {
			t.Fatalf("history[%d] differs after resume: %.17g vs %.17g", i, res2.History[i], refRes.History[i])
		}
	}
	for i := range res2.Solution {
		if res2.Solution[i] != refRes.Solution[i] {
			t.Fatalf("solution vertex %d differs after resume", i)
		}
	}
}

func TestIndicatorKinds(t *testing.T) {
	sc := scenario.Sod
	ms, err := sc.Meshes(1)
	if err != nil {
		t.Fatal(err)
	}
	m := ms[0]
	w := sc.InitialState(m)
	p := sc.Params()
	for _, kind := range []string{"density", "pressure", "residual"} {
		ind, err := newIndicator(kind)
		if err != nil {
			t.Fatal(err)
		}
		eta := ind.compute(m, w, p)
		if len(eta) != m.NT() {
			t.Fatalf("%s: %d values for %d cells", kind, len(eta), m.NT())
		}
		max, nonzero := 0.0, 0
		for _, e := range eta {
			if e < 0 {
				t.Fatalf("%s: negative indicator %g", kind, e)
			}
			if e > 0 {
				nonzero++
			}
			if e > max {
				max = e
			}
		}
		// The Sod diaphragm is a density+pressure jump with a nonzero
		// residual: every indicator must light up somewhere, and only near
		// the discontinuity.
		if max <= 0 || nonzero == 0 {
			t.Fatalf("%s: indicator flat on a shock tube", kind)
		}
		if nonzero > m.NT()/2 {
			t.Fatalf("%s: %d of %d cells flagged on a single discontinuity", kind, nonzero, m.NT())
		}
		marked, n := markCells(eta, 0.1, 0.25, 4*m.NT(), m.NT())
		if n == 0 || n > m.NT()/10+1 {
			t.Fatalf("%s: marked %d cells", kind, n)
		}
		cnt := 0
		for _, mk := range marked {
			if mk {
				cnt++
			}
		}
		if cnt != n {
			t.Fatalf("%s: mark count mismatch %d vs %d", kind, cnt, n)
		}
	}
	if _, err := newIndicator("bogus"); err == nil {
		t.Fatal("unknown indicator accepted")
	}
}

func TestTransferAdmissible(t *testing.T) {
	sc := scenario.Sod
	ms, err := sc.Meshes(1)
	if err != nil {
		t.Fatal(err)
	}
	m := ms[0]
	w := sc.InitialState(m)
	p := sc.Params()
	marked := make([]bool, m.NT())
	for i := 0; i < len(marked); i += 4 {
		marked[i] = true
	}
	r, err := refine.Selective(m, marked)
	if err != nil {
		t.Fatal(err)
	}
	out := Transfer(r, w, &p)
	if len(out) != r.Mesh.NV() {
		t.Fatalf("transfer produced %d states for %d vertices", len(out), r.Mesh.NV())
	}
	for i := 0; i < r.NVOld; i++ {
		if out[i] != w[i] {
			t.Fatalf("surviving vertex %d changed state", i)
		}
	}
	for i, st := range out {
		if !(st[0] > 0) || !(p.Gas.Pressure(st) > 0) {
			t.Fatalf("vertex %d inadmissible after transfer: rho=%g p=%g", i, st[0], p.Gas.Pressure(st))
		}
	}
	var em euler.State
	for k, pr := range r.MidParents {
		for c := 0; c < euler.NVar; c++ {
			em[c] = 0.5 * (w[pr[0]][c] + w[pr[1]][c])
		}
		if out[r.NVOld+k] != p.Repair(em) {
			t.Fatalf("midpoint %d not the repaired parent average", k)
		}
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	sc := scenario.Sod
	ms, err := sc.Meshes(1)
	if err != nil {
		t.Fatal(err)
	}
	m := ms[0]
	w := sc.InitialState(m)
	p := sc.Params()
	cases := []Options{
		{Mesh: nil, Init: w, Params: p, Steps: 10},
		{Mesh: m, Init: w[:3], Params: p, Steps: 10},
		{Mesh: m, Init: w, Params: p, Steps: 0},
		{Mesh: m, Init: w, Params: p, Steps: 10, Engine: "warp"},
		{Mesh: m, Init: w, Params: p, Steps: 10, Indicator: "entropy"},
	}
	for i, opt := range cases {
		if _, err := Run(opt); err == nil {
			t.Fatalf("case %d: bad options accepted", i)
		}
	}
}
