package meshio

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eul3d/internal/euler"
	"eul3d/internal/geom"
	"eul3d/internal/mesh"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// vtkMesh builds the reference unit tetrahedron used by the golden test:
// small enough to eyeball the emitted file, deterministic by construction.
func vtkMesh(t *testing.T) *mesh.Mesh {
	t.Helper()
	m := &mesh.Mesh{
		X: []geom.Vec3{
			{X: 0, Y: 0, Z: 0},
			{X: 1, Y: 0, Z: 0},
			{X: 0, Y: 1, Z: 0},
			{X: 0, Y: 0, Z: 1},
		},
		Tets: [][4]int32{{0, 1, 2, 3}},
	}
	if err := m.Finish(); err != nil {
		t.Fatal(err)
	}
	return m
}

func vtkSol(g euler.Gas, n int) []euler.State {
	sol := make([]euler.State, n)
	for i := range sol {
		// Distinct, exactly-representable primitives per vertex so the
		// golden bytes are stable across platforms.
		sol[i] = g.FromPrimitive(1+0.25*float64(i), 0.5, 0.125*float64(i), -0.25, 1+0.5*float64(i))
	}
	return sol
}

// The full writer output — mesh, flow scalars/vectors, and an extra vertex
// field — matches the checked-in golden file byte for byte.
func TestWriteVTKGolden(t *testing.T) {
	m := vtkMesh(t)
	g := euler.Air
	sol := vtkSol(g, m.NV())
	extra := []float64{0, 1, 1, 2}

	var buf bytes.Buffer
	if err := WriteVTK(&buf, m, g, sol, "part", extra); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "single_tet.vtk")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("VTK output drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}

	// The writer is deterministic: a second pass emits identical bytes.
	var buf2 bytes.Buffer
	if err := WriteVTK(&buf2, m, g, sol, "part", extra); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two writes of the same mesh differ")
	}
}

// Mesh-only output (no solution, no extra field) carries the grid sections
// and nothing else; an unnamed extra field falls back to "extra".
func TestWriteVTKSections(t *testing.T) {
	m := vtkMesh(t)
	var buf bytes.Buffer
	if err := WriteVTK(&buf, m, euler.Air, nil, "", nil); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"POINTS 4 double", "CELLS 1 5", "CELL_TYPES 1"} {
		if !strings.Contains(s, want) {
			t.Errorf("mesh-only output missing %q", want)
		}
	}
	if strings.Contains(s, "POINT_DATA") {
		t.Error("mesh-only output should have no POINT_DATA section")
	}

	buf.Reset()
	if err := WriteVTK(&buf, m, euler.Air, nil, "", []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SCALARS extra double 1") {
		t.Error("unnamed extra field did not default to \"extra\"")
	}
}

// Malformed inputs: field lengths that disagree with the vertex count are
// rejected before anything is written.
func TestWriteVTKBadLengths(t *testing.T) {
	m := vtkMesh(t)
	g := euler.Air

	var buf bytes.Buffer
	if err := WriteVTK(&buf, m, g, vtkSol(g, 3), "", nil); err == nil {
		t.Error("short solution slice accepted")
	} else if !strings.Contains(err.Error(), "3 states for 4 vertices") {
		t.Errorf("unhelpful solution-length error: %v", err)
	}
	if buf.Len() != 0 {
		t.Error("partial output written despite invalid solution")
	}

	if err := WriteVTK(&buf, m, g, nil, "part", []float64{1, 2}); err == nil {
		t.Error("short extra slice accepted")
	} else if !strings.Contains(err.Error(), "2 values for 4 vertices") {
		t.Errorf("unhelpful extra-length error: %v", err)
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }

// Writer errors surface instead of being swallowed by the buffer.
func TestWriteVTKWriterError(t *testing.T) {
	m := vtkMesh(t)
	err := WriteVTK(failWriter{}, m, euler.Air, nil, "", nil)
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Errorf("writer error lost: %v", err)
	}
}

// SaveVTK round-trips through a real file and reports unwritable paths.
func TestSaveVTK(t *testing.T) {
	m := vtkMesh(t)
	g := euler.Air
	sol := vtkSol(g, m.NV())

	path := filepath.Join(t.TempDir(), "out.vtk")
	if err := SaveVTK(path, m, g, sol, "", nil); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteVTK(&buf, m, g, sol, "", nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, buf.Bytes()) {
		t.Error("SaveVTK file differs from WriteVTK bytes")
	}

	if err := SaveVTK(filepath.Join(t.TempDir(), "no", "such", "dir", "x.vtk"), m, g, nil, "", nil); err == nil {
		t.Error("SaveVTK to a missing directory should fail")
	}
	if err := SaveVTK(path, m, g, vtkSol(g, 1), "", nil); err == nil {
		t.Error("SaveVTK with a bad solution should fail")
	}
}
