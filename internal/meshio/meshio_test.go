package meshio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"eul3d/internal/euler"
	"eul3d/internal/meshgen"
)

func TestMeshRoundTrip(t *testing.T) {
	m, err := meshgen.Channel(meshgen.DefaultChannel(6, 4, 3, 9))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMesh(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadMesh(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NV() != m.NV() || m2.NT() != m.NT() || m2.NE() != m.NE() || len(m2.BFaces) != len(m.BFaces) {
		t.Fatalf("counts differ: %d/%d/%d/%d vs %d/%d/%d/%d",
			m2.NV(), m2.NT(), m2.NE(), len(m2.BFaces), m.NV(), m.NT(), m.NE(), len(m.BFaces))
	}
	for i := range m.X {
		if m.X[i] != m2.X[i] {
			t.Fatalf("vertex %d differs", i)
		}
	}
	for i := range m.Vol {
		if m.Vol[i] != m2.Vol[i] {
			t.Fatalf("dual volume %d differs (Finish not reproducible?)", i)
		}
	}
	for i := range m.BFaces {
		if m.BFaces[i].Kind != m2.BFaces[i].Kind {
			t.Fatalf("bface %d kind differs", i)
		}
	}
	if err := m2.Validate(1e-10); err != nil {
		t.Errorf("loaded mesh invalid: %v", err)
	}
}

func TestSolutionRoundTrip(t *testing.T) {
	g := euler.Air
	sol := []euler.State{
		g.Freestream(0.7, 1),
		g.FromPrimitive(1.2, 0.3, -0.1, 0.05, 0.8),
	}
	var buf bytes.Buffer
	if err := WriteSolution(&buf, 0.7, 1.0, sol); err != nil {
		t.Fatal(err)
	}
	mach, alpha, got, err := ReadSolution(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if mach != 0.7 || alpha != 1.0 {
		t.Errorf("reference condition %v %v", mach, alpha)
	}
	for i := range sol {
		if got[i] != sol[i] {
			t.Fatalf("state %d differs", i)
		}
	}
}

func TestSolutionRejectsUnphysical(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSolution(&buf, 0.5, 0, []euler.State{{-1, 0, 0, 0, 1}}); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReadSolution(&buf); err == nil {
		t.Error("accepted negative density")
	}
}

func TestPartitionRoundTrip(t *testing.T) {
	part := []int32{0, 1, 2, 1, 0, 2, 2}
	var buf bytes.Buffer
	if err := WritePartition(&buf, 3, part); err != nil {
		t.Fatal(err)
	}
	nproc, got, err := ReadPartition(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if nproc != 3 || len(got) != len(part) {
		t.Fatalf("header: %d %d", nproc, len(got))
	}
	for i := range part {
		if got[i] != part[i] {
			t.Fatal("partition differs")
		}
	}
}

func TestPartitionRejectsBadProc(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePartition(&buf, 2, []int32{0, 5}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadPartition(&buf); err == nil {
		t.Error("accepted out-of-range processor")
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := ReadMesh(strings.NewReader("NOTMAGIC-whatever")); err == nil {
		t.Error("accepted bad mesh magic")
	}
	if _, _, _, err := ReadSolution(strings.NewReader("NOTMAGIC")); err == nil {
		t.Error("accepted bad solution magic")
	}
	if _, _, err := ReadPartition(strings.NewReader("")); err == nil {
		t.Error("accepted empty partition file")
	}
}

func TestTruncatedMeshRejected(t *testing.T) {
	m, err := meshgen.Channel(meshgen.DefaultChannel(3, 3, 3, 9))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMesh(&buf, m); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadMesh(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("accepted truncated mesh")
	}
}

func TestFileHelpers(t *testing.T) {
	dir := t.TempDir()
	m, err := meshgen.Channel(meshgen.DefaultChannel(4, 3, 3, 9))
	if err != nil {
		t.Fatal(err)
	}
	mp := filepath.Join(dir, "mesh.bin")
	if err := SaveMesh(mp, m); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadMesh(mp)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NV() != m.NV() {
		t.Error("mesh helper round trip")
	}

	sol := make([]euler.State, m.NV())
	for i := range sol {
		sol[i] = euler.Air.Freestream(0.6, 0)
	}
	sp := filepath.Join(dir, "sol.bin")
	if err := SaveSolution(sp, 0.6, 0, sol); err != nil {
		t.Fatal(err)
	}
	if _, _, got, err := LoadSolution(sp); err != nil || len(got) != len(sol) {
		t.Errorf("solution helper: %v %d", err, len(got))
	}

	pp := filepath.Join(dir, "part.bin")
	part := make([]int32, m.NV())
	if err := SavePartition(pp, 1, part); err != nil {
		t.Fatal(err)
	}
	if np, got, err := LoadPartition(pp); err != nil || np != 1 || len(got) != m.NV() {
		t.Errorf("partition helper: %v %d %d", err, np, len(got))
	}

	if _, err := LoadMesh(filepath.Join(dir, "missing.bin")); err == nil {
		t.Error("loaded missing file")
	}
}

func TestWriteVTK(t *testing.T) {
	m, err := meshgen.Channel(meshgen.DefaultChannel(3, 3, 3, 9))
	if err != nil {
		t.Fatal(err)
	}
	sol := make([]euler.State, m.NV())
	extra := make([]float64, m.NV())
	for i := range sol {
		sol[i] = euler.Air.Freestream(0.6, 0)
		extra[i] = float64(i % 4)
	}
	var buf bytes.Buffer
	if err := WriteVTK(&buf, m, euler.Air, sol, "partition", extra); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# vtk DataFile Version 3.0",
		"DATASET UNSTRUCTURED_GRID",
		"SCALARS mach double 1",
		"VECTORS velocity double",
		"SCALARS partition double 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VTK output missing %q", want)
		}
	}
	if got := strings.Count(out, "\n4 "); got != m.NT() {
		t.Errorf("tet lines = %d, want %d", got, m.NT())
	}
	// Mesh-only output works too.
	buf.Reset()
	if err := WriteVTK(&buf, m, euler.Air, nil, "", nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "POINT_DATA") {
		t.Error("mesh-only VTK should not emit point data")
	}
	// Size validation.
	if err := WriteVTK(&buf, m, euler.Air, sol[:2], "", nil); err == nil {
		t.Error("accepted short solution")
	}
	if err := WriteVTK(&buf, m, euler.Air, nil, "", extra[:1]); err == nil {
		t.Error("accepted short extra field")
	}
}
